.PHONY: all build test lint lint-mli lint-dsafe lint-dsafe-growth check replay-smoke soak-smoke prof-smoke bench bench-full bench-json bench-gate examples demo clean

EXE := _build/default/bin/expfinder.exe

all: build

build:
	dune build @all

test:
	dune runtest

# Lint gate: refuse staged build artifacts (they are gitignored, but a
# forced add would still slip through), then build everything under the
# dev profile, whose env stanza promotes all warnings to errors.
lint:
	@staged=$$(git diff --cached --name-only --diff-filter=d | grep -E '^(_build/|bench_output_full\.txt$$)' || true); \
	if [ -n "$$staged" ]; then \
	  echo "error: build artifacts staged for commit:"; echo "$$staged"; exit 1; \
	fi
	dune build @all --profile dev

# Strict interface lint (odoc is not in the container, so this stands in
# for `dune build @doc`): every library module must ship an explicit
# .mli, and every .mli must carry at least one (** ... *) doc comment.
# Sanctioned exceptions (signature-only modules) live in lint/mli.allow,
# shared with the dsafe gate below.
lint-mli:
	@missing=0; \
	for f in lib/*/*.ml; do \
	  if grep -q "^$$f\([[:space:]]\|$$\)" lint/mli.allow; then continue; fi; \
	  if [ ! -f "$${f}i" ]; then echo "lint-mli: missing interface $${f}i"; missing=1; fi; \
	done; \
	for f in lib/*/*.mli; do \
	  if ! grep -q '(\*\*' "$$f"; then echo "lint-mli: no doc comment in $$f"; missing=1; fi; \
	done; \
	[ $$missing -eq 0 ] && echo "lint-mli: ok"

# Domain-safety ratchet: dlint walks the .cmt typedtrees under _build,
# inventories every module-level mutable binding, sweeps for banned
# constructs (Obj.magic, Marshal.from_*, Random.self_init) and audits
# the read-path signatures, then gates all findings against
# lint/dsafe.allow.  Fails on any unallowlisted finding (new shared
# mutable state) and on stale allowlist entries (the list only shrinks).
# The JSON report lands in _build/dsafe-report.json (CI uploads it).
lint-dsafe: build
	_build/default/bin/dlint.exe \
	  --allow lint/dsafe.allow --mli-allow lint/mli.allow \
	  --json _build/dsafe-report.json \
	  _build/default/lib _build/default/bin

# Allowlist growth guard: lint-dsafe already fails on stale entries, so
# the list cannot carry dead weight; this half of the ratchet fails the
# gate when the list gains net entries over the committed baseline.  New
# shared mutable state must displace old entries (or genuinely new
# infrastructure must lower the baseline elsewhere first) — never grow
# the total.  Lower the baseline whenever entries are paid off.
DSAFE_ALLOW_BASELINE := 110
lint-dsafe-growth:
	@n=$$(grep -cv '^[[:space:]]*\#\|^[[:space:]]*$$' lint/dsafe.allow); \
	if [ "$$n" -gt $(DSAFE_ALLOW_BASELINE) ]; then \
	  echo "lint-dsafe-growth: lint/dsafe.allow holds $$n entries, baseline is $(DSAFE_ALLOW_BASELINE) — the allowlist only shrinks"; \
	  exit 1; \
	else \
	  echo "lint-dsafe-growth: ok ($$n entries <= baseline $(DSAFE_ALLOW_BASELINE))"; \
	fi

# Pre-merge gate: lint + tests, then the whole suite again with the
# differential self-checker on (every cached/compressed/indexed answer
# re-verified against direct evaluation; <1s overhead), then again with
# a 2-domain execution model forced through every ?domains default (the
# pool serving path, parallel evaluation and the writer-domain routing
# all switch on), then the serving-path smokes — including the
# parallel-vs-sequential replay differential — and finally a soft
# perf-regression check against the committed baseline (warn-only here:
# quick-mode medians are too noisy to block a merge on; run bench-gate
# directly for a hard verdict).
check: lint lint-mli lint-dsafe lint-dsafe-growth
	dune runtest
	EXPFINDER_CHECK=1 dune runtest --force
	$(MAKE) --no-print-directory test-domains
	$(MAKE) --no-print-directory replay-smoke
	$(MAKE) --no-print-directory soak-smoke
	$(MAKE) --no-print-directory par-diff-smoke
	$(MAKE) --no-print-directory prof-smoke
	-@if [ -f BENCH_baseline.json ]; then $(MAKE) --no-print-directory bench-gate; fi

# The full suite under a multicore execution model: EXPFINDER_DOMAINS=2
# flips every ?domains default (server pool size, evaluate_batch,
# compute_batch, the refinement fixpoints), so the sequential oracles
# and their parallel twins both run everywhere the suite reaches.
test-domains:
	EXPFINDER_DOMAINS=2 dune runtest --force

# Serving-path smoke gate: serve the committed smoke workload over a
# unix socket with qlog capture on, drive it through the client, shut
# the server down cleanly, then replay the captured log against a fresh
# engine — the replay command exits non-zero unless every answer digest
# is byte-identical to the one recorded at capture time. Invokes the
# built binary directly: `dune exec` takes the build lock, which would
# deadlock the backgrounded server against the foreground client.
replay-smoke: build
	@rm -rf _build/replay_smoke && mkdir -p _build/replay_smoke
	@EXPFINDER_QLOG=_build/replay_smoke/qlog.jsonl \
	  $(EXE) serve -g workloads/smoke/collab.graph \
	    --socket _build/replay_smoke/sock >/dev/null & \
	pid=$$!; \
	for i in $$(seq 1 100); do \
	  [ -S _build/replay_smoke/sock ] && break; sleep 0.05; \
	done; \
	$(EXE) client --socket _build/replay_smoke/sock --ping \
	  -q workloads/smoke/paper.pattern -q workloads/smoke/sa.pattern \
	  --batch workloads/smoke/queries.batch --repeat 3 --shutdown \
	  >/dev/null \
	  || { kill $$pid 2>/dev/null; echo "replay-smoke: client failed"; exit 1; }; \
	wait $$pid; \
	$(EXE) replay _build/replay_smoke/qlog.jsonl -g workloads/smoke/collab.graph

# Long-horizon telemetry smoke gate. A healthy soak first: query and
# update clients run concurrently with the sampler on a 0.2s period and
# compressed SLO windows, then the live endpoints are scraped — the
# timeseries document must carry all three retention resolutions, no
# alert may fire on a healthy run, and a latency exemplar advertised in
# /stats.json must resolve to a stored trace in /traces.json (and render
# through the trace explorer). Then the crash path: SIGTERM the
# server while a query client is mid-flight and require a readable
# postmortem artifact (exit 143 = 128+SIGTERM, reason recorded).
# Invokes $(EXE) directly for the same build-lock reason as
# replay-smoke.
soak-smoke: build
	@rm -rf _build/soak_smoke && mkdir -p _build/soak_smoke/pm
	@EXPFINDER_QLOG=_build/soak_smoke/qlog.jsonl \
	 EXPFINDER_TIMESERIES=_build/soak_smoke/ts.jsonl \
	 EXPFINDER_POSTMORTEM_DIR=_build/soak_smoke/pm \
	 EXPFINDER_SAMPLE_PERIOD_S=0.2 \
	 EXPFINDER_SLO_FAST_S=5 EXPFINDER_SLO_SLOW_S=20 \
	  $(EXE) serve -g workloads/smoke/collab.graph \
	    --socket _build/soak_smoke/sock >/dev/null & \
	pid=$$!; \
	for i in $$(seq 1 100); do \
	  [ -S _build/soak_smoke/sock ] && break; sleep 0.05; \
	done; \
	$(EXE) client --socket _build/soak_smoke/sock \
	  --insert 1,5 --delete 1,5 --repeat 10 >/dev/null & \
	cpid=$$!; \
	$(EXE) client --socket _build/soak_smoke/sock --ping \
	  -q workloads/smoke/paper.pattern -q workloads/smoke/sa.pattern \
	  --repeat 10 >/dev/null \
	  || { kill $$pid $$cpid 2>/dev/null; echo "soak-smoke: query client failed"; exit 1; }; \
	wait $$cpid \
	  || { kill $$pid 2>/dev/null; echo "soak-smoke: update client failed"; exit 1; }; \
	sleep 1; \
	rings=$$($(EXE) get --socket _build/soak_smoke/sock /timeseries.json \
	  | grep -c '"res_s"'); \
	[ "$$rings" -ge 3 ] \
	  || { kill $$pid 2>/dev/null; echo "soak-smoke: want >=3 timeseries resolutions, got $$rings"; exit 1; }; \
	if $(EXE) get --socket _build/soak_smoke/sock /alerts.json \
	  | grep -q '"firing": true'; then \
	  kill $$pid 2>/dev/null; echo "soak-smoke: alert firing on a healthy run"; exit 1; fi; \
	ex=$$($(EXE) get --socket _build/soak_smoke/sock /stats.json \
	  | grep -A1 '"le":' | grep -o '[0-9a-f]\{32\}' | head -n1); \
	[ -n "$$ex" ] \
	  || { kill $$pid 2>/dev/null; echo "soak-smoke: no latency exemplar in /stats.json"; exit 1; }; \
	$(EXE) get --socket _build/soak_smoke/sock /traces.json | grep -q "$$ex" \
	  || { kill $$pid 2>/dev/null; echo "soak-smoke: exemplar $$ex unresolvable in /traces.json"; exit 1; }; \
	$(EXE) trace --socket _build/soak_smoke/sock show "$$ex" >/dev/null \
	  || { kill $$pid 2>/dev/null; echo "soak-smoke: expfinder trace show $$ex failed"; exit 1; }; \
	( $(EXE) client --socket _build/soak_smoke/sock \
	    -q workloads/smoke/paper.pattern --repeat 200 >/dev/null 2>&1 & ); \
	sleep 0.2; \
	kill -TERM $$pid; \
	wait $$pid; code=$$?; \
	[ $$code -eq 143 ] \
	  || { echo "soak-smoke: server exit $$code, want 143"; exit 1; }; \
	pm=$$(ls _build/soak_smoke/pm/postmortem-*.json 2>/dev/null | head -n1); \
	[ -n "$$pm" ] \
	  || { echo "soak-smoke: no postmortem artifact written"; exit 1; }; \
	$(EXE) postmortem "$$pm" | grep -q "SIGTERM" \
	  || { echo "soak-smoke: postmortem unreadable or missing its reason"; exit 1; }; \
	echo "soak-smoke: ok ($$pm)"

# Multicore differential gate: the same smoke workload served by a
# 2-domain pool (worker domains + the dedicated writer domain) with
# qlog capture on — first a read-only soak from two concurrent client
# worker domains, then a sequential query/update/query round routed
# through the writer — and the captured log replayed against a fresh
# single-domain engine.  The replay command exits non-zero unless every
# parallel-served answer digest is byte-identical to its sequential
# re-evaluation, so the pool cannot drift from the sequential oracle
# unnoticed.  Invokes $(EXE) directly for the same build-lock reason as
# replay-smoke.
par-diff-smoke: build
	@rm -rf _build/par_smoke && mkdir -p _build/par_smoke
	@EXPFINDER_QLOG=_build/par_smoke/qlog.jsonl EXPFINDER_DOMAINS=2 \
	  $(EXE) serve -g workloads/smoke/collab.graph \
	    --socket _build/par_smoke/sock >/dev/null & \
	pid=$$!; \
	for i in $$(seq 1 100); do \
	  [ -S _build/par_smoke/sock ] && break; sleep 0.05; \
	done; \
	$(EXE) client --socket _build/par_smoke/sock \
	  -q workloads/smoke/paper.pattern -q workloads/smoke/sa.pattern \
	  --batch workloads/smoke/queries.batch --repeat 3 --concurrency 2 \
	  || { kill $$pid 2>/dev/null; echo "par-diff-smoke: soak client failed"; exit 1; }; \
	$(EXE) client --socket _build/par_smoke/sock \
	  -q workloads/smoke/paper.pattern -q workloads/smoke/sa.pattern \
	  --insert 1,5 --delete 1,5 --repeat 2 --shutdown >/dev/null \
	  || { kill $$pid 2>/dev/null; echo "par-diff-smoke: update client failed"; exit 1; }; \
	wait $$pid; \
	$(EXE) replay _build/par_smoke/qlog.jsonl -g workloads/smoke/collab.graph

# Multicore observability smoke gate: serve a short workload on a
# 2-domain pool, then require the new surfaces to be live and
# well-formed — /profile.folded must hold domain-prefixed collapsed
# stacks with integer self-ns values (the flamegraph.pl contract),
# /domains.json must carry the pool/worker/gc sections, /stats.json the
# pool summary, and `top --once --json` / `profile --top` must scrape
# them end-to-end.  The folded profile is kept under _build/prof_smoke/
# for CI to upload next to the dsafe report.  Invokes $(EXE) directly
# for the same build-lock reason as replay-smoke.
prof-smoke: build
	@rm -rf _build/prof_smoke && mkdir -p _build/prof_smoke
	@EXPFINDER_DOMAINS=2 EXPFINDER_SAMPLE_PERIOD_S=0.2 \
	  $(EXE) serve -g workloads/smoke/collab.graph \
	    --socket _build/prof_smoke/sock >/dev/null & \
	pid=$$!; \
	for i in $$(seq 1 100); do \
	  [ -S _build/prof_smoke/sock ] && break; sleep 0.05; \
	done; \
	$(EXE) client --socket _build/prof_smoke/sock --ping \
	  -q workloads/smoke/paper.pattern -q workloads/smoke/sa.pattern \
	  --batch workloads/smoke/queries.batch \
	  --insert 1,5 --delete 1,5 --repeat 5 >/dev/null \
	  || { kill $$pid 2>/dev/null; echo "prof-smoke: client failed"; exit 1; }; \
	sleep 0.5; \
	$(EXE) get --socket _build/prof_smoke/sock /profile.folded \
	  > _build/prof_smoke/profile.folded \
	  || { kill $$pid 2>/dev/null; echo "prof-smoke: /profile.folded scrape failed"; exit 1; }; \
	grep -q '^domain-[0-9][0-9]*;' _build/prof_smoke/profile.folded \
	  || { kill $$pid 2>/dev/null; echo "prof-smoke: no domain-prefixed stacks in /profile.folded"; exit 1; }; \
	grep -qv '^domain-[0-9][0-9]*;[^ ]* [0-9][0-9]*$$' _build/prof_smoke/profile.folded \
	  && { kill $$pid 2>/dev/null; echo "prof-smoke: malformed folded line (want 'stack <self-ns>')"; exit 1; }; \
	$(EXE) get --socket _build/prof_smoke/sock /domains.json \
	  > _build/prof_smoke/domains.json \
	  || { kill $$pid 2>/dev/null; echo "prof-smoke: /domains.json scrape failed"; exit 1; }; \
	for key in '"workers"' '"queue_depth"' '"by_domain"' '"stale_reads"' '"folded"'; do \
	  grep -q "$$key" _build/prof_smoke/domains.json \
	    || { kill $$pid 2>/dev/null; echo "prof-smoke: /domains.json missing $$key"; exit 1; }; \
	done; \
	$(EXE) get --socket _build/prof_smoke/sock /stats.json \
	  | grep -q '"pool"' \
	  || { kill $$pid 2>/dev/null; echo "prof-smoke: /stats.json missing the pool summary"; exit 1; }; \
	$(EXE) top --socket _build/prof_smoke/sock --once --json \
	  | grep -q '"domains"' \
	  || { kill $$pid 2>/dev/null; echo "prof-smoke: top --once --json missing domains doc"; exit 1; }; \
	$(EXE) profile --socket _build/prof_smoke/sock --top 5 \
	  | grep -q 'domain-' \
	  || { kill $$pid 2>/dev/null; echo "prof-smoke: expfinder profile --top failed"; exit 1; }; \
	$(EXE) client --socket _build/prof_smoke/sock \
	  -q workloads/smoke/paper.pattern --shutdown >/dev/null \
	  || { kill $$pid 2>/dev/null; echo "prof-smoke: shutdown failed"; exit 1; }; \
	wait $$pid; \
	echo "prof-smoke: ok ($$(grep -c . _build/prof_smoke/profile.folded) folded stacks)"

bench:
	dune exec bench/main.exe

bench-full:
	dune exec bench/main.exe -- --full --bechamel

# Machine-readable quick-mode report (schema consumed by bench-diff).
# Writes the committed baseline directly: run before a release (or after
# an intentional perf change) and commit the result so bench-gate and
# bench-diff compare against it.
bench-json:
	dune exec bench/main.exe -- --json BENCH_baseline.json

# Regression gate: re-run the quick benchmarks and diff against the
# committed baseline. Non-zero exit iff some experiment's median
# regressed beyond the noise rule (see `expfinder bench-diff --help`).
# The gate uses a +100% threshold (vs the manual default of +50%):
# quick-mode runs on a shared machine see bursty 1.5x swings that
# would otherwise self-flag across sessions.
bench-gate:
	dune exec bench/main.exe -- --json BENCH_scratch.json
	dune exec bin/expfinder.exe -- bench-diff --threshold 1.0 BENCH_baseline.json BENCH_scratch.json

examples:
	dune exec examples/quickstart.exe
	dune exec examples/team_formation.exe
	dune exec examples/twitter_influencers.exe
	dune exec examples/dynamic_collaboration.exe
	dune exec examples/compression_pipeline.exe
	dune exec examples/movie_recommendation.exe

demo:
	dune exec bin/expfinder.exe -- demo

clean:
	dune clean
