.PHONY: all build test bench bench-full examples demo clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

bench-full:
	dune exec bench/main.exe -- --full --bechamel

examples:
	dune exec examples/quickstart.exe
	dune exec examples/team_formation.exe
	dune exec examples/twitter_influencers.exe
	dune exec examples/dynamic_collaboration.exe
	dune exec examples/compression_pipeline.exe
	dune exec examples/movie_recommendation.exe

demo:
	dune exec bin/expfinder.exe -- demo

clean:
	dune clean
