.PHONY: all build test lint check bench bench-full examples demo clean

all: build

build:
	dune build @all

test:
	dune runtest

# Lint gate: refuse staged build artifacts (they are gitignored, but a
# forced add would still slip through), then build everything under the
# dev profile, whose env stanza promotes all warnings to errors.
lint:
	@staged=$$(git diff --cached --name-only --diff-filter=d | grep -E '^(_build/|bench_output_full\.txt$$)' || true); \
	if [ -n "$$staged" ]; then \
	  echo "error: build artifacts staged for commit:"; echo "$$staged"; exit 1; \
	fi
	dune build @all --profile dev

# Pre-merge gate: lint + tests, then the whole suite again with the
# differential self-checker on (every cached/compressed/indexed answer
# re-verified against direct evaluation; <1s overhead).
check: lint
	dune runtest
	EXPFINDER_CHECK=1 dune runtest --force

bench:
	dune exec bench/main.exe

bench-full:
	dune exec bench/main.exe -- --full --bechamel

examples:
	dune exec examples/quickstart.exe
	dune exec examples/team_formation.exe
	dune exec examples/twitter_influencers.exe
	dune exec examples/dynamic_collaboration.exe
	dune exec examples/compression_pipeline.exe
	dune exec examples/movie_recommendation.exe

demo:
	dune exec bin/expfinder.exe -- demo

clean:
	dune clean
