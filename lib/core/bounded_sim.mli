open Expfinder_graph
open Expfinder_pattern

(** Bounded simulation (edge-to-path matching).

    The cubic-time algorithm of Fan et al. (PVLDB 2010): a candidate [v]
    of pattern node [u] survives iff for every pattern edge [(u,u')] with
    bound [k] some node of [sim(u')] lies within a nonempty path of
    length [<= k] from [v] (unbounded edges: within any nonempty path).
    As with {!Simulation}, the result is the kernel; apply
    {!Match_relation.is_total} for the paper's M(Q,G).

    Two refinement strategies are provided (ablation EXP-A1):

    - [Counters]: precompute, per pattern edge, reverse balls of radius
      [k] and maintain "witnesses within reach" counters; removals
      propagate like Henzinger–Henzinger–Kopke.  Fastest from scratch.
    - [Naive]: sweep candidates re-checking each constraint with a
      bounded BFS until a sweep removes nothing.  Slower from scratch but
      its cost is proportional to the candidate area, which makes it the
      right engine for incremental recomputation over small areas. *)

type strategy = Naive | Counters

val default_strategy : strategy

val run : ?strategy:strategy -> Pattern.t -> Snapshot.t -> Match_relation.t

val run_constrained :
  ?strategy:strategy ->
  ?domains:int ->
  Pattern.t ->
  Snapshot.t ->
  initial:Match_relation.t ->
  mutable_set:Bitset.t option ->
  Match_relation.t
(** Greatest fixpoint below [initial] touching only nodes of
    [mutable_set]; see {!Simulation.run_constrained}.

    [?domains] (default 1, the sequential oracle) parallelises the
    reverse-ball counter initialisation ([Counters]) or each sweep's
    constraint checks ([Naive]); every chunk works on private scratch
    and private tallies with a deterministic merge, so the result and
    the counter totals are identical for any domain count. *)

val consistent : Pattern.t -> Snapshot.t -> Match_relation.t -> bool
(** Every pair satisfies its bound constraints w.r.t. the relation. *)

val strategy_name : strategy -> string
