open Expfinder_graph
open Expfinder_pattern

(** Unified result checking — the self-check sanitizer behind
    [EXPFINDER_CHECK=1].

    {!check} validates a computed kernel against the definition,
    generalizing {!Simulation.consistent} / {!Bounded_sim.consistent}:

    - {e pair validity}: every pair [(u,v)] of the relation satisfies
      [u]'s label requirement and predicate, and every pattern edge
      [(u,u')] with bound [k] has a witness [v'] in [sim(u')] within a
      nonempty path of length [<= k] from [v];
    - {e maximality spot checks}: sampled candidate pairs {e outside}
      the relation must each violate some edge constraint — if one
      satisfies them all, the relation is not the maximal kernel.
      Only run when the relation is total: a non-total kernel means
      [M(Q,G) = ∅], and different evaluation paths legitimately return
      different (all semantically empty) non-total relations.

    {!differential} gates the engine's differential mode: every answer
    served from the cache, the compressed graph, the ball index, a
    registered query or containment reuse is re-evaluated via the
    direct path and compared with {!semantically_equal}; a mismatch
    raises.  Enabled by [EXPFINDER_CHECK=1] in the environment (read at
    startup) or {!set_differential} (tests, the CLI's [--check]). *)

type report = {
  checked_pairs : int;
  checked_candidates : int;  (** excluded pairs probed for maximality *)
  errors : string list;  (** empty iff the relation passed *)
}

val check :
  ?max_pairs:int -> ?max_candidates:int -> Pattern.t -> Snapshot.t -> Match_relation.t -> report
(** Sampling is deterministic (evenly strided); [max_pairs] (default
    512) bounds validity checks, [max_candidates] (default 512) bounds
    maximality probes. *)

val check_exn :
  ?max_pairs:int -> ?max_candidates:int -> Pattern.t -> Snapshot.t -> Match_relation.t -> unit
(** @raise Failure with the first errors when {!check} finds any. *)

val semantically_equal : Match_relation.t -> Match_relation.t -> bool
(** Equal as query answers: structurally equal, or both non-total
    (both denote [M(Q,G) = ∅]). *)

val differential : unit -> bool

val set_differential : bool -> unit
