open Expfinder_graph
open Expfinder_pattern

(** Result graphs.

    The paper represents M(Q,G) as a weighted {e result graph} Gr: one
    node per matched data node, and, for every pattern edge [(u,u')] with
    bound [k] and matches [v ∈ sim(u)], [v' ∈ sim(u')] with
    [0 < dist(v,v') <= k], an edge [(v,v')] weighted by the shortest-path
    length [dist(v,v')].  Gr is both what the GUI visualises and the
    input of the social-impact ranking. *)

type t

val build : Pattern.t -> Snapshot.t -> Match_relation.t -> t
(** Builds Gr for a kernel relation (empty relation gives an empty Gr). *)

val node_count : t -> int

val edge_count : t -> int

val data_nodes : t -> int list
(** The matched data nodes, ascending. *)

val mem_data_node : t -> int -> bool

val index_of : t -> int -> int option
(** Compact index of a data node in the underlying weighted graph. *)

val data_node_of : t -> int -> int
(** Inverse of {!index_of}. *)

val pattern_nodes_of : t -> int -> int list
(** Which pattern nodes a data node matches. *)

val wgraph : t -> Wgraph.t
(** The underlying weighted graph over compact indices (shared). *)

val iter_edges : t -> (int -> int -> int -> unit) -> unit
(** [f v v' d] over data-node ids and shortest-path weights. *)

val weight : t -> int -> int -> int option
(** Weight between two data nodes, if the edge exists. *)

val to_dot : ?name:string -> ?highlight:int list -> Pattern.t -> Snapshot.t -> t -> string
(** GraphViz rendering with match names and distances (Fig. 5 style);
    [highlight] lists data nodes to fill red (e.g. the top-1 expert). *)

(** Roll-up / drill-down views (§III: "the users can drill down to see
    detailed information in a result graph, and can roll up to view its
    global structure"). *)

type edge_stats = {
  source : int;  (** pattern node *)
  target : int;  (** pattern node *)
  realised : int;  (** result edges witnessing this pattern edge *)
  min_dist : int;  (** shortest witness path (0 when none) *)
  avg_dist : float;
}

type summary = {
  match_counts : int array;  (** per pattern node *)
  edge_summaries : edge_stats list;  (** one per pattern edge *)
}

val roll_up : Pattern.t -> t -> summary
(** The global structure: match counts per pattern node and witness
    statistics per pattern edge. *)

val pp_summary : Pattern.t -> Format.formatter -> summary -> unit

type detail = {
  data_node : int;
  display : string;  (** the node's ["name"] attribute or ["#id"] *)
  roles : int list;  (** pattern nodes it matches *)
  out_edges : (int * int) list;  (** (data node, distance) in Gr *)
  in_edges : (int * int) list;
}

val drill_down : Pattern.t -> Snapshot.t -> t -> int -> detail list
(** Per-match detail for one pattern node's matches, ascending by data
    node id. *)

val pp_detail : Format.formatter -> detail -> unit
