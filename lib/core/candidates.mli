open Expfinder_graph
open Expfinder_pattern

(** Candidate-set construction.

    The starting point of every matching algorithm: for each pattern node
    [u], the set of data nodes whose label and attributes satisfy [u]'s
    search conditions (condition (2)(a) of the bounded-simulation
    definition).  Uses the snapshot's label index when the pattern node
    has a concrete label. *)

val compute : Pattern.t -> Snapshot.t -> Match_relation.t
(** The full candidate relation (not yet refined by edge constraints). *)

val compute_batch :
  ?domains:int -> Pattern.t array -> Snapshot.t -> Match_relation.t array
(** Candidate relations for a whole batch of queries in one pass: the
    (query, pattern-node) specs of all queries are grouped by label, so
    each label bucket — and the full node table, when some spec is
    unlabelled — is traversed once for the batch instead of once per
    spec.  Result [i] equals [compute patterns.(i) g]; the saving shows
    up in the [candidates.scans] counter.

    [?domains] (default 1 — the sequential oracle) partitions the label
    buckets across that many domains.  Every (query, pattern-node) spec
    belongs to exactly one bucket, so the partition is write-disjoint
    over relation rows; results and counter totals are identical to the
    sequential run for any domain count. *)

val compute_for_nodes : Pattern.t -> Snapshot.t -> Bitset.t -> Match_relation.t
(** Candidates restricted to data nodes in the given set; other nodes are
    left out regardless of their labels (used by incremental matching to
    limit recomputation to an affected area). *)
