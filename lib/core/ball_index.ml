open Expfinder_graph
open Expfinder_pattern
open Expfinder_telemetry

let m_builds = Metrics.counter "ball_index.builds"

let m_evaluations = Metrics.counter "ball_index.evaluations"

let m_sweeps = Metrics.counter "ball_index.sweeps"

let g_entries = Metrics.gauge "ball_index.entries"

type t = {
  radius : int;
  source : Snapshot.identity;
  offsets : int array; (* length n+1 *)
  members : int array;
  dists : int array;
}

let build g ~radius =
  if radius < 1 then invalid_arg "Ball_index.build";
  Counter.incr m_builds;
  let n = Snapshot.node_count g in
  let scratch = Distance.make_scratch g in
  let members = Vec.create ~capacity:(4 * n) ~dummy:0 () in
  let dists = Vec.create ~capacity:(4 * n) ~dummy:0 () in
  let offsets = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    (* BFS visits in nondecreasing distance order, so each slice is
       sorted by distance. *)
    Distance.ball scratch g v radius (fun w d ->
        Vec.push members w;
        Vec.push dists d);
    offsets.(v + 1) <- Vec.length members
  done;
  Gauge.set g_entries (Vec.length members);
  {
    radius;
    source = Snapshot.id g;
    offsets;
    members = Vec.to_array members;
    dists = Vec.to_array dists;
  }

let radius t = t.radius

let source t = t.source

let memory_entries t = Array.length t.members

let iter_ball t v f =
  if v < 0 || v + 1 >= Array.length t.offsets then invalid_arg "Ball_index.iter_ball";
  for i = t.offsets.(v) to t.offsets.(v + 1) - 1 do
    f t.members.(i) t.dists.(i)
  done

let supports t pattern =
  (not (Pattern.has_unbounded_edge pattern))
  && match Pattern.max_bound pattern with Some k -> k <= t.radius | None -> true

(* The ball slice is distance-sorted, so a bound-k scan can stop at the
   first entry beyond k. *)
let exists_within t v k p =
  let lo = t.offsets.(v) and hi = t.offsets.(v + 1) in
  let rec scan i =
    i < hi && t.dists.(i) <= k && (p t.members.(i) || scan (i + 1))
  in
  scan lo

let evaluate t pattern g =
  if not (supports t pattern) then
    invalid_arg "Ball_index.evaluate: pattern bounds exceed the index radius";
  if not (Snapshot.identity_equal (Snapshot.id g) t.source) then
    invalid_arg "Ball_index.evaluate: snapshot differs from the indexed one";
  Counter.incr m_evaluations;
  let sim = with_span "candidates" (fun () -> Candidates.compute pattern g) in
  let satisfies u v =
    List.for_all
      (fun (u', b) ->
        let targets = Match_relation.matches_set sim u' in
        match b with
        | Pattern.Unbounded -> assert false
        | Pattern.Bounded k -> exists_within t v k (fun w -> Bitset.mem targets w))
      (Pattern.out_edges pattern u)
  in
  with_span "refine" ~attrs:[ ("strategy", "ball-index") ] (fun () ->
      let changed = ref true in
      while !changed do
        Counter.incr m_sweeps;
        changed := false;
        for u = 0 to Pattern.size pattern - 1 do
          let victims = ref [] in
          Bitset.iter
            (fun v -> if not (satisfies u v) then victims := v :: !victims)
            (Match_relation.matches_set sim u);
          if !victims <> [] then begin
            changed := true;
            List.iter (fun v -> Match_relation.remove sim u v) !victims
          end
        done
      done;
      sim)
