open Expfinder_graph
open Expfinder_pattern
open Expfinder_telemetry

let m_considered = Metrics.counter "candidates.considered"

let m_kept = Metrics.counter "candidates.kept"

let compute pattern g =
  let m =
    Match_relation.create ~pattern_size:(Pattern.size pattern)
      ~graph_size:(Csr.node_count g)
  in
  let considered = ref 0 and kept = ref 0 in
  for u = 0 to Pattern.size pattern - 1 do
    let spec = Pattern.node_spec pattern u in
    let consider v =
      incr considered;
      if Predicate.eval spec.Pattern.pred (Csr.attrs g v) then begin
        incr kept;
        Match_relation.add m u v
      end
    in
    match spec.Pattern.label with
    | Some l -> List.iter consider (Csr.nodes_with_label g l)
    | None -> Csr.iter_nodes g consider
  done;
  Counter.add m_considered !considered;
  Counter.add m_kept !kept;
  m

let compute_for_nodes pattern g area =
  let m =
    Match_relation.create ~pattern_size:(Pattern.size pattern)
      ~graph_size:(Csr.node_count g)
  in
  for u = 0 to Pattern.size pattern - 1 do
    Bitset.iter
      (fun v ->
        if Pattern.matches_node pattern u (Csr.label g v) (Csr.attrs g v) then
          Match_relation.add m u v)
      area
  done;
  m
