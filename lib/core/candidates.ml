open Expfinder_graph
open Expfinder_pattern
open Expfinder_telemetry
module Parallel = Expfinder_parallel

let m_considered = Metrics.counter "candidates.considered"

let m_kept = Metrics.counter "candidates.kept"

(* One increment per traversal of a label bucket (or of the whole node
   table for an unlabelled spec).  Batch extraction shares traversals
   across queries, so the batch/sequential difference is visible here. *)
let m_scans = Metrics.counter "candidates.scans"

let compute pattern g =
  let m =
    Match_relation.create ~pattern_size:(Pattern.size pattern)
      ~graph_size:(Snapshot.node_count g)
  in
  let considered = ref 0 and kept = ref 0 and scans = ref 0 in
  for u = 0 to Pattern.size pattern - 1 do
    let spec = Pattern.node_spec pattern u in
    let consider v =
      incr considered;
      if Predicate.eval spec.Pattern.pred (Snapshot.attrs g v) then begin
        incr kept;
        Match_relation.add m u v
      end
    in
    incr scans;
    match spec.Pattern.label with
    | Some l -> List.iter consider (Snapshot.nodes_with_label g l)
    | None -> Snapshot.iter_nodes g consider
  done;
  Counter.add m_considered !considered;
  Counter.add m_kept !kept;
  Counter.add m_scans !scans;
  m

let compute_batch ?(domains = 1) patterns g =
  let ms =
    Array.map
      (fun p ->
        Match_relation.create ~pattern_size:(Pattern.size p)
          ~graph_size:(Snapshot.node_count g))
      patterns
  in
  (* Group every (query, pattern-node) spec by its label so each label
     bucket is traversed once for the whole batch; unlabelled specs
     share a single full-table scan. *)
  let by_label : (Label.t, (int * int) list ref) Hashtbl.t = Hashtbl.create 16 in
  let unlabelled = ref [] in
  Array.iteri
    (fun q p ->
      for u = 0 to Pattern.size p - 1 do
        match (Pattern.node_spec p u).Pattern.label with
        | Some l -> (
          match Hashtbl.find_opt by_label l with
          | Some specs -> specs := (q, u) :: !specs
          | None -> Hashtbl.add by_label l (ref [ (q, u) ]))
        | None -> unlabelled := (q, u) :: !unlabelled
      done)
    patterns;
  (* [consider] writes row (q, u) of ms.(q); every (q, u) spec sits in
     exactly one label bucket (or in [unlabelled]), so two domains
     working distinct buckets never touch the same relation row — the
     partition below is write-disjoint by construction. *)
  let consider ~considered ~kept specs v =
    let a = Snapshot.attrs g v in
    List.iter
      (fun (q, u) ->
        incr considered;
        if Predicate.eval (Pattern.node_spec patterns.(q) u).Pattern.pred a then begin
          incr kept;
          Match_relation.add ms.(q) u v
        end)
      specs
  in
  let buckets =
    Array.of_list
      (Hashtbl.fold (fun l specs acc -> (l, !specs) :: acc) by_label [])
  in
  let nb = Array.length buckets in
  let domains = max 1 (min domains nb) in
  (* Each chunk tallies privately and the caller flushes once, so the
     registered counter totals are exactly the sequential ones whatever
     the domain count. *)
  let ranges = Parallel.ranges ~domains nb in
  let tallies =
    Parallel.run ~domains (fun i ->
        let lo, hi = ranges.(i) in
        let considered = ref 0 and kept = ref 0 and scans = ref 0 in
        for b = lo to hi - 1 do
          let l, specs = buckets.(b) in
          incr scans;
          List.iter (consider ~considered ~kept specs) (Snapshot.nodes_with_label g l)
        done;
        (!considered, !kept, !scans))
  in
  let considered = ref 0 and kept = ref 0 and scans = ref 0 in
  Array.iter
    (fun (c, k, s) ->
      considered := !considered + c;
      kept := !kept + k;
      scans := !scans + s)
    tallies;
  if !unlabelled <> [] then begin
    incr scans;
    Snapshot.iter_nodes g (consider ~considered ~kept !unlabelled)
  end;
  Counter.add m_considered !considered;
  Counter.add m_kept !kept;
  Counter.add m_scans !scans;
  ms

let compute_for_nodes pattern g area =
  let m =
    Match_relation.create ~pattern_size:(Pattern.size pattern)
      ~graph_size:(Snapshot.node_count g)
  in
  for u = 0 to Pattern.size pattern - 1 do
    Bitset.iter
      (fun v ->
        if Pattern.matches_node pattern u (Snapshot.label g v) (Snapshot.attrs g v) then
          Match_relation.add m u v)
      area
  done;
  m
