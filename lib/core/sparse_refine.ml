open Expfinder_graph
open Expfinder_pattern
open Expfinder_telemetry
module Parallel = Expfinder_parallel

let m_pops = Metrics.counter "sparse.worklist_pops"

let m_removals = Metrics.counter "sparse.removals"

let m_balls = Metrics.counter "sparse.ball_expansions"

module Make (G : Graph_intf.GRAPH) = struct
  module Dist = Distance.Make (G)

  (* Materialise the area for range partitioning across domains.  The
     array is in increasing node order (Bitset iteration order), so
     chunking it is deterministic. *)
  let area_array area =
    let nodes = Vec.create ~dummy:(-1) () in
    Bitset.iter (fun v -> Vec.push nodes v) area;
    Array.init (Vec.length nodes) (Vec.get nodes)

  type edge_index = {
    edge_array : (int * int * Pattern.bound) array;
    out_of : int list array;
    in_of : int list array;
  }

  let index_edges pattern =
    let edge_array = Array.of_list (Pattern.edges pattern) in
    let out_of = Array.make (Pattern.size pattern) [] in
    let in_of = Array.make (Pattern.size pattern) [] in
    Array.iteri
      (fun e (u, u', _) ->
        out_of.(u) <- e :: out_of.(u);
        in_of.(u') <- e :: in_of.(u'))
      edge_array;
    { edge_array; out_of; in_of }

  let simulation ?(domains = 1) pattern g ~initial ~area =
    let n = G.node_count g in
    let sim = Match_relation.copy initial in
    let idx = index_edges pattern in
    let ne = Array.length idx.edge_array in
    (* cnt: (pattern edge, area node) -> |succ(v) ∩ sim(u')|. *)
    let cnt : (int, int) Hashtbl.t = Hashtbl.create 256 in
    let key e v = (e * n) + v in
    (* The init phase is the bulk of the work (one successor scan per
       (edge, area node) pair) and is embarrassingly parallel: [sim] is
       read-only until the worklist phase, and each area node owns its
       cnt keys.  Chunks build private tables, merged below — the keys
       are disjoint across chunks, so the merged table is the one the
       sequential loop builds, and the worklist phase (sequential: the
       fixpoint is unique, so it doesn't need to scale) proceeds
       identically. *)
    let init_counts v local =
      for e = 0 to ne - 1 do
        let _, u', _ = idx.edge_array.(e) in
        let target = Match_relation.matches_set sim u' in
        let c =
          G.fold_succ g v (fun acc w -> if Bitset.mem target w then acc + 1 else acc) 0
        in
        Hashtbl.replace local (key e v) c
      done
    in
    if domains <= 1 then Bitset.iter (fun v -> init_counts v cnt) area
    else begin
      let nodes = area_array area in
      let nn = Array.length nodes in
      let domains = max 1 (min domains nn) in
      let ranges = Parallel.ranges ~domains nn in
      Parallel.run ~domains (fun i ->
          let lo, hi = ranges.(i) in
          let local : (int, int) Hashtbl.t = Hashtbl.create (max 16 ((hi - lo) * ne)) in
          for j = lo to hi - 1 do
            init_counts nodes.(j) local
          done;
          local)
      |> Array.iter (fun local -> Hashtbl.iter (Hashtbl.replace cnt) local)
    end;
    let worklist = Vec.create ~dummy:(-1) () in
    (* Counted locally and flushed once, keeping the gated-counter check
       out of the refinement hot path. *)
    let n_removals = ref 0 and n_pops = ref 0 in
    let remove u v =
      incr n_removals;
      Match_relation.remove sim u v;
      Vec.push worklist ((u * n) + v)
    in
    Bitset.iter
      (fun v ->
        for u = 0 to Pattern.size pattern - 1 do
          if
            Match_relation.mem sim u v
            && List.exists (fun e -> Hashtbl.find cnt (key e v) = 0) idx.out_of.(u)
          then remove u v
        done)
      area;
    while not (Vec.is_empty worklist) do
      incr n_pops;
      let code = Vec.pop worklist in
      let u' = code / n and w = code mod n in
      List.iter
        (fun e ->
          let u, _, _ = idx.edge_array.(e) in
          G.iter_pred g w (fun p ->
              match Hashtbl.find_opt cnt (key e p) with
              | None -> () (* p outside the area: frozen *)
              | Some c ->
                Hashtbl.replace cnt (key e p) (c - 1);
                if c - 1 = 0 && Match_relation.mem sim u p then remove u p))
        idx.in_of.(u')
    done;
    Counter.add m_removals !n_removals;
    Counter.add m_pops !n_pops;
    sim

  let bounded ?(domains = 1) pattern g ~initial ~area =
    if Pattern.has_unbounded_edge pattern then
      invalid_arg "Sparse_refine.bounded: unbounded pattern edge";
    let n = G.node_count g in
    let sim = Match_relation.copy initial in
    let idx = index_edges pattern in
    let ne = Array.length idx.edge_array in
    let bound_of e =
      match idx.edge_array.(e) with
      | _, _, Pattern.Bounded k -> k
      | _, _, Pattern.Unbounded -> assert false
    in
    let kmax = Option.value ~default:1 (Pattern.max_bound pattern) in
    (* cnt: (pattern edge, area node) -> |ball(v,k) ∩ sim(u')|, built with
       one BFS of radius kmax per area node covering every pattern
       edge.  The per-node BFS is the dominant cost, so this is the loop
       the [?domains] partition spreads out: each chunk gets its own BFS
       scratch and private table (keys are per-node, hence disjoint),
       and ball expansions are tallied locally and flushed once so the
       counter total matches the sequential run exactly. *)
    let cnt : (int, int) Hashtbl.t = Hashtbl.create 256 in
    let key e v = (e * n) + v in
    let init_counts ~scratch ~counts v local =
      Array.fill counts 0 ne 0;
      Dist.ball scratch g v kmax (fun w d ->
          for e = 0 to ne - 1 do
            if d <= bound_of e then begin
              let _, u', _ = idx.edge_array.(e) in
              if Bitset.mem (Match_relation.matches_set sim u') w then
                counts.(e) <- counts.(e) + 1
            end
          done);
      for e = 0 to ne - 1 do
        Hashtbl.replace local (key e v) counts.(e)
      done
    in
    let nodes = area_array area in
    let nn = Array.length nodes in
    let domains = max 1 (min domains nn) in
    let ranges = Parallel.ranges ~domains nn in
    let chunk_tables =
      Parallel.run ~domains (fun i ->
          let lo, hi = ranges.(i) in
          let scratch = Dist.make_scratch g in
          let counts = Array.make (max ne 1) 0 in
          let local =
            if domains = 1 then cnt
            else Hashtbl.create (max 16 ((hi - lo) * ne))
          in
          for j = lo to hi - 1 do
            init_counts ~scratch ~counts nodes.(j) local
          done;
          (local, hi - lo))
    in
    let balls = ref 0 in
    Array.iter
      (fun (local, expanded) ->
        balls := !balls + expanded;
        if local != cnt then Hashtbl.iter (Hashtbl.replace cnt) local)
      chunk_tables;
    Counter.add m_balls !balls;
    (* Fresh scratch for the (sequential) propagation phase; the chunk
       scratches above are private to their domains. *)
    let scratch = Dist.make_scratch g in
    let worklist = Vec.create ~dummy:(-1) () in
    let n_removals = ref 0 and n_pops = ref 0 in
    let remove u v =
      incr n_removals;
      Match_relation.remove sim u v;
      Vec.push worklist ((u * n) + v)
    in
    Bitset.iter
      (fun v ->
        for u = 0 to Pattern.size pattern - 1 do
          if
            Match_relation.mem sim u v
            && List.exists (fun e -> Hashtbl.find cnt (key e v) = 0) idx.out_of.(u)
          then remove u v
        done)
      area;
    (* One reverse BFS of radius kmax per removal, decrementing every
       incoming pattern edge whose bound covers the distance. *)
    while not (Vec.is_empty worklist) do
      incr n_pops;
      let code = Vec.pop worklist in
      let u' = code / n and w = code mod n in
      match idx.in_of.(u') with
      | [] -> ()
      | incoming ->
        Counter.incr m_balls;
        Dist.reverse_ball scratch g w kmax (fun p d ->
            List.iter
              (fun e ->
                if d <= bound_of e then
                  match Hashtbl.find_opt cnt (key e p) with
                  | None -> ()
                  | Some c ->
                    let u, _, _ = idx.edge_array.(e) in
                    Hashtbl.replace cnt (key e p) (c - 1);
                    if c - 1 = 0 && Match_relation.mem sim u p then remove u p)
              incoming)
    done;
    Counter.add m_removals !n_removals;
    Counter.add m_pops !n_pops;
    sim
end
