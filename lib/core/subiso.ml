open Expfinder_graph
open Expfinder_pattern

type embedding = int array

exception Enough

(* Backtracking over pattern nodes in ascending-candidate-count order;
   at each step the partial mapping must realise every pattern edge
   between already-placed nodes as a data edge, injectively. *)
let search ?(max_embeddings = 1000) pattern g ~on_embedding =
  let psize = Pattern.size pattern in
  let candidates =
    Array.init psize (fun u ->
        let spec = Pattern.node_spec pattern u in
        let pool =
          match spec.Pattern.label with
          | Some l -> Snapshot.nodes_with_label g l
          | None -> List.init (Snapshot.node_count g) Fun.id
        in
        Array.of_list
          (List.filter (fun v -> Predicate.eval spec.Pattern.pred (Snapshot.attrs g v)) pool))
  in
  let order = Array.init psize Fun.id in
  Array.sort (fun a b -> compare (Array.length candidates.(a)) (Array.length candidates.(b))) order;
  let assignment = Array.make psize (-1) in
  let used = Hashtbl.create 16 in
  let found = ref 0 in
  let consistent u v =
    (* every pattern edge between u and an already-placed node must be a
       data edge *)
    List.for_all
      (fun (u', _) -> assignment.(u') < 0 || Snapshot.has_edge g v assignment.(u'))
      (Pattern.out_edges pattern u)
    && List.for_all
         (fun (u', _) -> assignment.(u') < 0 || Snapshot.has_edge g assignment.(u') v)
         (Pattern.in_edges pattern u)
  in
  let rec place depth =
    if depth = psize then begin
      on_embedding (Array.copy assignment);
      incr found;
      if !found >= max_embeddings then raise Enough
    end
    else begin
      let u = order.(depth) in
      Array.iter
        (fun v ->
          if (not (Hashtbl.mem used v)) && consistent u v then begin
            assignment.(u) <- v;
            Hashtbl.add used v ();
            place (depth + 1);
            Hashtbl.remove used v;
            assignment.(u) <- -1
          end)
        candidates.(u)
    end
  in
  (try place 0 with Enough -> ());
  !found

let embeddings ?max_embeddings pattern g =
  let out = ref [] in
  ignore (search ?max_embeddings pattern g ~on_embedding:(fun e -> out := e :: !out) : int);
  List.rev !out

let exists pattern g =
  search ~max_embeddings:1 pattern g ~on_embedding:(fun _ -> ()) > 0

let matched_pairs ?max_embeddings pattern g =
  let seen = Hashtbl.create 64 in
  ignore
    (search ?max_embeddings pattern g ~on_embedding:(fun e ->
         Array.iteri (fun u v -> Hashtbl.replace seen (u, v) ()) e)
      : int);
  List.sort compare (Hashtbl.fold (fun p () acc -> p :: acc) seen [])
