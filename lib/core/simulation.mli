open Expfinder_graph
open Expfinder_pattern

(** Graph simulation (edge-to-edge matching).

    The worklist algorithm of Henzinger, Henzinger & Kopke (FOCS 1995):
    start from the predicate candidate sets and repeatedly remove a
    candidate [v] of pattern node [u] when some pattern edge [(u,u')] has
    no witness successor of [v] left in [sim(u')].  Per-(edge, node)
    successor counters make each removal O(in-degree), for O(|Q|·|G|)
    total.

    All functions return the {e kernel}: the maximal relation satisfying
    the per-pair conditions (2a)/(2b) of the paper's definition.  The
    paper's M(Q,G) is the kernel when it is total (every pattern node has
    a match, condition (1)) and the empty relation otherwise — use
    {!Match_relation.is_total}.  Edge bounds are ignored; callers
    dispatch on {!Pattern.is_simulation_pattern}. *)

val run : Pattern.t -> Snapshot.t -> Match_relation.t
(** Simulation kernel from scratch. *)

val run_constrained :
  ?domains:int ->
  Pattern.t ->
  Snapshot.t ->
  initial:Match_relation.t ->
  mutable_set:Bitset.t option ->
  Match_relation.t
(** Greatest fixpoint below [initial], removing only pairs whose data
    node lies in [mutable_set] ([None] = all nodes mutable).  Pairs on
    frozen nodes are kept even if their constraints fail — the caller
    guarantees they are consistent (see the incremental module).  The
    input is not mutated.

    [?domains] (default 1, the sequential oracle) range-partitions the
    counter-initialisation scan across domains; the worklist phase is
    sequential and the greatest fixpoint unique, so the result is
    identical for any domain count. *)

val consistent : Pattern.t -> Snapshot.t -> Match_relation.t -> bool
(** Check (for tests) that every pair of the relation satisfies the
    simulation conditions w.r.t. the relation itself. *)
