open Expfinder_graph
open Expfinder_pattern

type t = {
  wg : Wgraph.t;
  node_of_index : int array;
  index_table : (int, int) Hashtbl.t;
  pnodes_of : int list array; (* per compact index *)
}

let build pattern g m =
  let psize = Pattern.size pattern in
  (* Collect matched data nodes into a compact index space. *)
  let index_table = Hashtbl.create 64 in
  let order = Vec.create ~dummy:(-1) () in
  for u = 0 to psize - 1 do
    List.iter
      (fun v ->
        if not (Hashtbl.mem index_table v) then begin
          Hashtbl.add index_table v (Vec.length order);
          Vec.push order v
        end)
      (Match_relation.matches m u)
  done;
  let node_of_index = Vec.to_array order in
  let count = Array.length node_of_index in
  let pnodes_of = Array.make (max count 1) [] in
  for u = psize - 1 downto 0 do
    List.iter
      (fun v ->
        let i = Hashtbl.find index_table v in
        pnodes_of.(i) <- u :: pnodes_of.(i))
      (Match_relation.matches m u)
  done;
  let wg = Wgraph.create count in
  let scratch = Distance.make_scratch g in
  List.iter
    (fun (u, u', b) ->
      let k = match b with Pattern.Bounded k -> k | Pattern.Unbounded -> Distance.eccentricity_bound g in
      let targets = Match_relation.matches_set m u' in
      List.iter
        (fun v ->
          let vi = Hashtbl.find index_table v in
          Distance.ball scratch g v k (fun w d ->
              if Bitset.mem targets w then
                Wgraph.add_edge wg vi (Hashtbl.find index_table w) d))
        (Match_relation.matches m u))
    (Pattern.edges pattern);
  { wg; node_of_index; index_table; pnodes_of }

let node_count t = Array.length t.node_of_index

let edge_count t = Wgraph.edge_count t.wg

let data_nodes t = List.sort compare (Array.to_list t.node_of_index)

let index_of t v = Hashtbl.find_opt t.index_table v

let mem_data_node t v = Hashtbl.mem t.index_table v

let data_node_of t i =
  if i < 0 || i >= node_count t then invalid_arg "Result_graph.data_node_of";
  t.node_of_index.(i)

let pattern_nodes_of t v =
  match index_of t v with
  | None -> []
  | Some i -> t.pnodes_of.(i)

let wgraph t = t.wg

let iter_edges t f =
  Wgraph.iter_edges t.wg (fun i j d -> f t.node_of_index.(i) t.node_of_index.(j) d)

let weight t v v' =
  match (index_of t v, index_of t v') with
  | Some i, Some j -> Wgraph.weight t.wg i j
  | _ -> None

let to_dot ?(name = "Gr") ?(highlight = []) pattern g t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  Buffer.add_string buf "  node [shape=box, fontname=\"Helvetica\"];\n";
  let hl = Hashtbl.create 8 in
  List.iter (fun v -> Hashtbl.replace hl v ()) highlight;
  Array.iteri
    (fun i v ->
      let roles =
        String.concat "," (List.map (Pattern.name pattern) t.pnodes_of.(i))
      in
      let display =
        match Attrs.find (Snapshot.attrs g v) "name" with
        | Some (Attr.String s) -> s
        | _ -> Printf.sprintf "#%d" v
      in
      let style = if Hashtbl.mem hl v then ", style=filled, fillcolor=red" else "" in
      Buffer.add_string buf
        (Printf.sprintf "  r%d [label=\"%s\\n(%s:%s)\"%s];\n" i display roles
           (Label.to_string (Snapshot.label g v)) style))
    t.node_of_index;
  Wgraph.iter_edges t.wg (fun i j d ->
      Buffer.add_string buf (Printf.sprintf "  r%d -> r%d [label=\"%d\"];\n" i j d));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

type edge_stats = {
  source : int;
  target : int;
  realised : int;
  min_dist : int;
  avg_dist : float;
}

type summary = { match_counts : int array; edge_summaries : edge_stats list }

let roll_up pattern t =
  let psize = Pattern.size pattern in
  let match_counts = Array.make psize 0 in
  Array.iteri
    (fun i _ -> List.iter (fun u -> match_counts.(u) <- match_counts.(u) + 1) t.pnodes_of.(i))
    t.node_of_index;
  let edge_summaries =
    List.map
      (fun (u, u', b) ->
        let bound =
          match b with Pattern.Bounded k -> k | Pattern.Unbounded -> max_int
        in
        let realised = ref 0 and total = ref 0 and min_dist = ref max_int in
        Wgraph.iter_edges t.wg (fun i j d ->
            if
              d <= bound
              && List.mem u t.pnodes_of.(i)
              && List.mem u' t.pnodes_of.(j)
            then begin
              incr realised;
              total := !total + d;
              if d < !min_dist then min_dist := d
            end);
        {
          source = u;
          target = u';
          realised = !realised;
          min_dist = (if !realised = 0 then 0 else !min_dist);
          avg_dist =
            (if !realised = 0 then 0.0 else float_of_int !total /. float_of_int !realised);
        })
      (Pattern.edges pattern)
  in
  { match_counts; edge_summaries }

let pp_summary pattern ppf s =
  Format.fprintf ppf "@[<v>matches:";
  Array.iteri
    (fun u c -> Format.fprintf ppf "@,  %-12s %d" (Pattern.name pattern u) c)
    s.match_counts;
  Format.fprintf ppf "@,pattern edges:";
  List.iter
    (fun e ->
      Format.fprintf ppf "@,  %s -> %s: %d witness edges%s" (Pattern.name pattern e.source)
        (Pattern.name pattern e.target) e.realised
        (if e.realised = 0 then ""
         else Format.asprintf " (min %d, avg %.1f)" e.min_dist e.avg_dist))
    s.edge_summaries;
  Format.fprintf ppf "@]"

type detail = {
  data_node : int;
  display : string;
  roles : int list;
  out_edges : (int * int) list;
  in_edges : (int * int) list;
}

let drill_down pattern g t u =
  if u < 0 || u >= Pattern.size pattern then invalid_arg "Result_graph.drill_down";
  let details = ref [] in
  Array.iteri
    (fun i v ->
      if List.mem u t.pnodes_of.(i) then begin
        let display =
          match Attrs.find (Snapshot.attrs g v) "name" with
          | Some (Attr.String s) -> s
          | Some _ | None -> Printf.sprintf "#%d" v
        in
        let out_edges = ref [] and in_edges = ref [] in
        Wgraph.iter_succ t.wg i (fun j d -> out_edges := (t.node_of_index.(j), d) :: !out_edges);
        Wgraph.iter_pred t.wg i (fun j d -> in_edges := (t.node_of_index.(j), d) :: !in_edges);
        details :=
          {
            data_node = v;
            display;
            roles = t.pnodes_of.(i);
            out_edges = List.sort compare !out_edges;
            in_edges = List.sort compare !in_edges;
          }
          :: !details
      end)
    t.node_of_index;
  List.sort (fun a b -> compare a.data_node b.data_node) !details

let pp_detail ppf d =
  Format.fprintf ppf "@[<v>%s (node %d)" d.display d.data_node;
  List.iter (fun (v, dist) -> Format.fprintf ppf "@,  -> node %d (distance %d)" v dist) d.out_edges;
  List.iter (fun (v, dist) -> Format.fprintf ppf "@,  <- node %d (distance %d)" v dist) d.in_edges;
  Format.fprintf ppf "@]"
