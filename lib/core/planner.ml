open Expfinder_graph
open Expfinder_pattern
open Expfinder_telemetry

let m_plans = Metrics.counter "planner.plans"

let m_early_exits = Metrics.counter "planner.early_exits"

let m_pruned_sinks = Metrics.counter "planner.pruned_sinks"

let m_static_empty = Metrics.counter "planner.static_empty"

let m_misestimates = Metrics.counter "planner.misestimate"

(* Shared with [Candidates]: every label-bucket (or full-table)
   traversal counts as one scan, whichever layer performs it. *)
let m_scans = Metrics.counter "candidates.scans"

type strategy_choice = Use_simulation | Use_bounded of Bounded_sim.strategy

let strategy_name = function
  | Use_simulation -> "simulation"
  | Use_bounded s -> "bounded/" ^ Bounded_sim.strategy_name s

type actuals = { candidates : int array; matched : int array }

type t = {
  candidate_order : int array;
  estimates : float array;
  strategy : strategy_choice;
  prunable : bool array;
  static_empty : bool;
  preds : Predicate.t array;
  mutable actuals : actuals option;
}

(* Estimated candidate count of a pattern node: population under its
   label requirement, scaled by the predicate selectivity measured on a
   bounded, evenly spread sample of that population.  [pred] is the
   implication-tightened predicate from the static analysis. *)
let estimate_candidates ~sample ~preds pattern g u =
  let spec = Pattern.node_spec pattern u in
  let pred = preds.(u) in
  (* Population size from the snapshot's cached label histogram — O(1),
     no bucket walk when the predicate needs no sampling. *)
  let size =
    match spec.Pattern.label with
    | Some l -> Snapshot.label_count g l
    | None -> Snapshot.node_count g
  in
  if size = 0 then 0.0
  else if Predicate.is_always pred then float_of_int size
  else begin
    let population =
      match spec.Pattern.label with
      | Some l -> Snapshot.nodes_with_label g l
      | None -> List.init (Snapshot.node_count g) Fun.id
    in
    let stride = max 1 (size / sample) in
    let probed = ref 0 and satisfied = ref 0 in
    List.iteri
      (fun i v ->
        if i mod stride = 0 && !probed < sample then begin
          incr probed;
          if Predicate.eval pred (Snapshot.attrs g v) then incr satisfied
        end)
      population;
    if !probed = 0 then float_of_int size
    else float_of_int size *. (float_of_int !satisfied /. float_of_int !probed)
  end

let plan ?(sample = 64) pattern g =
  let psize = Pattern.size pattern in
  (* Qlint first: an unsatisfiable node empties the answer on every
     graph, and implication-tightened predicates are cheaper to sample
     and to materialise against. *)
  let static_empty = Pattern_analysis.statically_empty pattern in
  let preds =
    Array.init psize (fun u ->
        Pattern_analysis.simplify (Pattern.node_spec pattern u).Pattern.pred)
  in
  let estimates =
    if static_empty then Array.make psize 0.0
    else Array.init psize (estimate_candidates ~sample ~preds pattern g)
  in
  let candidate_order = Array.init psize Fun.id in
  Array.sort (fun a b -> compare estimates.(a) estimates.(b)) candidate_order;
  (* A candidate with no outgoing data edge cannot satisfy any outgoing
     pattern edge (bounds are >= 1, paths are nonempty). *)
  let prunable = Array.init psize (fun u -> Pattern.out_edges pattern u <> []) in
  let strategy =
    if Pattern.is_simulation_pattern pattern then Use_simulation
    else begin
      (* Few candidates -> the naive engine's per-candidate balls beat
         the counter engine's global reverse-ball initialisation. *)
      let total = Array.fold_left ( +. ) 0.0 estimates in
      let threshold = float_of_int (Snapshot.node_count g) /. 50.0 in
      if total < threshold then Use_bounded Bounded_sim.Naive
      else Use_bounded Bounded_sim.Counters
    end
  in
  { candidate_order; estimates; strategy; prunable; static_empty; preds; actuals = None }

(* Alongside the relation, report per-node materialised candidate-set
   sizes (-1 = never materialised, after an earlier node exited empty) —
   the "actual" column of EXPLAIN ANALYZE. *)
let materialise_candidates plan pattern g =
  let m =
    Match_relation.create ~pattern_size:(Pattern.size pattern)
      ~graph_size:(Snapshot.node_count g)
  in
  let sizes = Array.make (Pattern.size pattern) (-1) in
  let ok = ref true in
  let kept = ref 0 and pruned = ref 0 in
  Array.iter
    (fun u ->
      if !ok then begin
        let spec = Pattern.node_spec pattern u in
        let pred = plan.preds.(u) in
        let kept_u = ref 0 in
        let consider v =
          if Predicate.eval pred (Snapshot.attrs g v) then
            if (not plan.prunable.(u)) || Snapshot.out_degree g v > 0 then begin
              Match_relation.add m u v;
              incr kept;
              incr kept_u
            end
            else incr pruned
        in
        Counter.incr m_scans;
        (match spec.Pattern.label with
        | Some l -> List.iter consider (Snapshot.nodes_with_label g l)
        | None -> Snapshot.iter_nodes g consider);
        sizes.(u) <- !kept_u;
        (* Early exit: an empty candidate set empties the whole kernel. *)
        if !kept_u = 0 then begin
          ok := false;
          annotate "empty" (Pattern.name pattern u)
        end
      end)
    plan.candidate_order;
  Counter.add m_pruned_sinks !pruned;
  annotate_int "kept" !kept;
  annotate_int "pruned_sinks" !pruned;
  ((if !ok then Some m else None), sizes)

let empty_relation pattern g =
  Match_relation.create ~pattern_size:(Pattern.size pattern)
    ~graph_size:(Snapshot.node_count g)

(* Store the execution actuals on the plan and bump [planner.misestimate]
   for every materialised node whose estimate was off by more than 4x in
   either direction (the smoothing +1 keeps empty sets comparable). *)
let note_actuals plan ~candidates ~matched =
  plan.actuals <- Some { candidates; matched };
  Array.iteri
    (fun u act ->
      if act >= 0 then begin
        let f = (plan.estimates.(u) +. 1.0) /. (float_of_int act +. 1.0) in
        if f > 4.0 || f < 0.25 then Counter.incr m_misestimates
      end)
    candidates

let execute plan pattern g =
  let psize = Pattern.size pattern in
  if plan.static_empty then begin
    (* Qlint fast path: some node's conditions are contradictory, so the
       kernel is empty without touching the data graph. *)
    Counter.incr m_static_empty;
    plan.actuals <-
      Some { candidates = Array.make psize (-1); matched = Array.make psize 0 };
    empty_relation pattern g
  end
  else
  let initial, cand_sizes =
    with_span "candidates" (fun () -> materialise_candidates plan pattern g)
  in
  match initial with
  | None ->
    Counter.incr m_early_exits;
    note_actuals plan ~candidates:cand_sizes ~matched:(Array.make psize 0);
    empty_relation pattern g
  | Some initial ->
    let rel =
      with_span
        ~attrs:[ ("strategy", strategy_name plan.strategy) ]
        "refine"
        (fun () ->
          match plan.strategy with
          | Use_simulation ->
            Simulation.run_constrained pattern g ~initial ~mutable_set:None
          | Use_bounded strategy ->
            Bounded_sim.run_constrained ~strategy pattern g ~initial ~mutable_set:None)
    in
    note_actuals plan ~candidates:cand_sizes
      ~matched:(Array.init psize (Match_relation.count rel));
    rel

let run_with_plan ?sample pattern g =
  let p =
    with_span "plan" (fun () ->
        let p = plan ?sample pattern g in
        Counter.incr m_plans;
        if p.static_empty then annotate "static_empty" "true";
        annotate "strategy" (strategy_name p.strategy);
        annotate "order"
          (String.concat ">"
             (Array.to_list (Array.map (Pattern.name pattern) p.candidate_order)));
        p)
  in
  (execute p pattern g, p)

let run ?sample pattern g = fst (run_with_plan ?sample pattern g)

let explain pattern plan =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "plan:\n";
  if plan.static_empty then
    Buffer.add_string buf
      "  statically empty: a node's conditions are unsatisfiable (see `expfinder analyze`);\n\
      \  the answer is empty without evaluation\n";
  Buffer.add_string buf
    (Printf.sprintf "  strategy: %s\n"
       (match plan.strategy with
       | Use_simulation -> "graph simulation (all bounds = 1)"
       | Use_bounded s -> "bounded simulation, " ^ Bounded_sim.strategy_name s));
  Buffer.add_string buf "  candidate order (cheapest first):\n";
  Array.iter
    (fun u ->
      Buffer.add_string buf
        (Printf.sprintf "    %-12s ~%.0f candidates%s\n" (Pattern.name pattern u)
           plan.estimates.(u)
           (if plan.prunable.(u) then ", sinks pruned" else "")))
    plan.candidate_order;
  Buffer.contents buf

let explain_analyze pattern plan =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (explain pattern plan);
  (match plan.actuals with
  | None ->
    Buffer.add_string buf "analysis: plan not executed (no actuals recorded)\n"
  | Some { candidates; matched } ->
    Buffer.add_string buf "analysis (estimated vs actual):\n";
    Buffer.add_string buf
      (Printf.sprintf "  %-12s %12s %12s %10s %10s\n" "node" "est.cand"
         "act.cand" "matched" "removed");
    let misses = ref 0 in
    Array.iter
      (fun u ->
        let est = plan.estimates.(u) in
        let act = candidates.(u) in
        let mat = matched.(u) in
        if act < 0 then
          (* Earlier node exited empty: this set was never materialised. *)
          Buffer.add_string buf
            (Printf.sprintf "  %-12s %12.0f %12s %10s %10s\n"
               (Pattern.name pattern u) est "-" "-" "-")
        else begin
          let f = (est +. 1.0) /. (float_of_int act +. 1.0) in
          let off = f > 4.0 || f < 0.25 in
          if off then incr misses;
          Buffer.add_string buf
            (Printf.sprintf "  %-12s %12.0f %12d %10d %10d%s\n"
               (Pattern.name pattern u) est act mat (act - mat)
               (if off then "   <- misestimate" else ""))
        end)
      plan.candidate_order;
    if !misses > 0 then
      Buffer.add_string buf
        (Printf.sprintf
           "  %d node(s) misestimated by >4x (counter planner.misestimate)\n"
           !misses));
  Buffer.contents buf
