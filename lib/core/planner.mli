open Expfinder_graph
open Expfinder_pattern

(** Query planning (§III: "how (bounded) simulation queries are processed
    on large graphs by generating optimized query plans").

    A plan fixes, before evaluation:

    - the {e candidate order}: pattern nodes sorted by estimated
      candidate count (label frequency × sampled predicate selectivity).
      Candidate sets are materialised in that order, so queries that
      cannot match (some pattern node has no candidate) exit before any
      refinement work — the common case for selective expert queries;
    - {e degree pruning}: a candidate of a pattern node with outgoing
      edges needs at least one outgoing data edge, so sinks are pruned
      from its candidate set up front;
    - the {e refinement strategy}: plain simulation for bound-1 patterns;
      for bounded patterns, the naive engine when the candidate sets are
      tiny (few balls beat a global counter initialisation) and the
      counter engine otherwise;
    - the {e static fast path}: Qlint ({!Pattern_analysis}) runs over
      the pattern first.  A node with contradictory conditions makes
      the kernel empty on every graph, so execution returns immediately
      (counted by [planner.static_empty], no [candidates]/[refine]
      spans); satisfiable predicates are implication-tightened before
      selectivity sampling and candidate materialisation.

    Executing a plan returns exactly the kernel the unplanned engines
    produce; planning only changes the work spent getting there. *)

type strategy_choice = Use_simulation | Use_bounded of Bounded_sim.strategy

val strategy_name : strategy_choice -> string
(** Short strategy label, e.g. ["simulation"] or ["bounded/counters"]
    (the flight recorder's and span tracer's strategy tag). *)

type actuals = {
  candidates : int array;
      (** materialised candidate-set size per pattern node; [-1] when the
          set was never materialised (an earlier node exited empty, or
          the static fast path fired) *)
  matched : int array;  (** final kernel matches per pattern node *)
}

type t = {
  candidate_order : int array;  (** pattern nodes, cheapest first *)
  estimates : float array;  (** estimated candidate count per pattern node *)
  strategy : strategy_choice;
  prunable : bool array;  (** pattern nodes whose sink candidates are pruned *)
  static_empty : bool;  (** Qlint proved the kernel empty on every graph *)
  preds : Predicate.t array;  (** implication-tightened per-node predicates *)
  mutable actuals : actuals option;
      (** execution feedback, filled in by {!execute} (EXPLAIN ANALYZE);
          [None] until the plan has been executed *)
}

val plan : ?sample:int -> Pattern.t -> Snapshot.t -> t
(** Build a plan from snapshot statistics.  [sample] (default 64) bounds
    the nodes probed per pattern node for predicate selectivity. *)

val execute : t -> Pattern.t -> Snapshot.t -> Match_relation.t
(** Evaluate the query according to the plan (kernel semantics, like
    {!Simulation.run} / {!Bounded_sim.run}).  Also records {!actuals} on
    the plan and bumps [planner.misestimate] for every materialised node
    whose estimate was off by more than 4x in either direction. *)

val run : ?sample:int -> Pattern.t -> Snapshot.t -> Match_relation.t
(** [execute (plan p g) p g]. *)

val run_with_plan : ?sample:int -> Pattern.t -> Snapshot.t -> Match_relation.t * t
(** Like {!run}, but also return the executed plan (with its
    {!actuals}) — the engine's EXPLAIN ANALYZE entry point. *)

val explain : Pattern.t -> t -> string
(** Human-readable plan description (the CLI's query-plan display). *)

val explain_analyze : Pattern.t -> t -> string
(** {!explain} plus a per-node estimated-vs-actual table (candidate-set
    sizes, matches, refinement removals, misestimate flags) when the
    plan has been executed. *)
