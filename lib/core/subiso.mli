open Expfinder_graph
open Expfinder_pattern

(** Subgraph-isomorphism baseline (§I of the paper).

    The traditional semantics ExpFinder argues against: every pattern
    node maps to a {e distinct} data node (injective), every pattern
    edge to a {e single} data edge, labels and search conditions
    respected; bounds are ignored (an edge is an edge).  NP-complete in
    general — the backtracking search below (VF2-flavoured: iterative
    candidate ordering + pruning) is meant for the small patterns of
    expert queries, and [max_embeddings] caps enumeration.

    Used by the semantics-comparison experiment (EXP-B1) to reproduce
    the paper's Example 1 discussion: on Fig. 1, isomorphism cannot map
    SD to both Mat and Pat, and cannot match SA→BA across a path, so it
    misses the experts bounded simulation finds. *)

type embedding = int array
(** [embedding.(u)] is the data node pattern node [u] maps to. *)

val embeddings : ?max_embeddings:int -> Pattern.t -> Snapshot.t -> embedding list
(** All embeddings (up to the cap, default 1000), in discovery order. *)

val exists : Pattern.t -> Snapshot.t -> bool
(** Is there at least one embedding?  Stops at the first. *)

val matched_pairs : ?max_embeddings:int -> Pattern.t -> Snapshot.t -> (int * int) list
(** The (pattern node, data node) pairs covered by some embedding —
    directly comparable to {!Match_relation.pairs}. *)
