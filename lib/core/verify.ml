open Expfinder_graph
open Expfinder_pattern
open Expfinder_telemetry

let m_checks = Metrics.counter "verify.checks"

let m_errors = Metrics.counter "verify.errors"

type report = {
  checked_pairs : int;
  checked_candidates : int;
  errors : string list;
}

(* A pair's edge constraints w.r.t. the relation itself: for every
   pattern edge (u,u') with bound k, a witness of sim(u') within a
   nonempty path of length <= k (unbounded: any finite length). *)
let edge_constraints_hold pattern g scratch m u v =
  List.for_all
    (fun (u', b) ->
      let k =
        match b with
        | Pattern.Bounded k -> k
        | Pattern.Unbounded -> Distance.eccentricity_bound g
      in
      let targets = Match_relation.matches_set m u' in
      Distance.exists_within scratch g v k (fun w -> Bitset.mem targets w))
    (Pattern.out_edges pattern u)

let check ?(max_pairs = 512) ?(max_candidates = 512) pattern g m =
  Counter.incr m_checks;
  let scratch = Distance.make_scratch g in
  let errors = ref [] in
  let error fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  (* Pair validity, evenly strided over the pairs of each pattern node. *)
  let checked_pairs = ref 0 in
  let total = Match_relation.total m in
  let stride = max 1 (total / max_pairs) in
  let position = ref 0 in
  for u = 0 to Pattern.size pattern - 1 do
    List.iter
      (fun v ->
        if !position mod stride = 0 && !checked_pairs < max_pairs then begin
          incr checked_pairs;
          if not (Pattern.matches_node pattern u (Snapshot.label g v) (Snapshot.attrs g v)) then
            error "invalid pair (%s, %d): node fails the label/predicate check"
              (Pattern.name pattern u) v;
          if not (edge_constraints_hold pattern g scratch m u v) then
            error "invalid pair (%s, %d): some pattern edge has no witness in range"
              (Pattern.name pattern u) v
        end;
        incr position)
      (Match_relation.matches m u)
  done;
  (* Maximality spot checks: a candidate outside a *total* relation that
     satisfies every constraint would extend the kernel (constraints are
     monotone, so the union would still be a valid simulation). *)
  let checked_candidates = ref 0 in
  if Match_relation.is_total m then begin
    let n = Snapshot.node_count g in
    let stride = max 1 (n * Pattern.size pattern / max_candidates) in
    let position = ref 0 in
    for u = 0 to Pattern.size pattern - 1 do
      let spec = Pattern.node_spec pattern u in
      let consider v =
        if
          !position mod stride = 0
          && !checked_candidates < max_candidates
          && (not (Match_relation.mem m u v))
          && Predicate.eval spec.Pattern.pred (Snapshot.attrs g v)
        then begin
          incr checked_candidates;
          if edge_constraints_hold pattern g scratch m u v then
            error "relation is not maximal: candidate (%s, %d) satisfies every constraint"
              (Pattern.name pattern u) v
        end;
        incr position
      in
      match spec.Pattern.label with
      | Some l -> List.iter consider (Snapshot.nodes_with_label g l)
      | None -> Snapshot.iter_nodes g consider
    done
  end;
  Counter.add m_errors (List.length !errors);
  {
    checked_pairs = !checked_pairs;
    checked_candidates = !checked_candidates;
    errors = List.rev !errors;
  }

let check_exn ?max_pairs ?max_candidates pattern g m =
  match (check ?max_pairs ?max_candidates pattern g m).errors with
  | [] -> ()
  | errors ->
    failwith
      (Printf.sprintf "Verify.check: %d error(s): %s" (List.length errors)
         (String.concat "; " errors))

let semantically_equal a b =
  Match_relation.equal a b
  || ((not (Match_relation.is_total a)) && not (Match_relation.is_total b))

let differential_flag =
  ref
    (match Sys.getenv_opt "EXPFINDER_CHECK" with
    | Some ("1" | "true" | "yes" | "on") -> true
    | Some _ | None -> false)

let differential () = !differential_flag

let set_differential v = differential_flag := v
