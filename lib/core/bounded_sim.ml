open Expfinder_graph
open Expfinder_pattern
open Expfinder_telemetry
module Parallel = Expfinder_parallel

let m_pops = Metrics.counter "bsim.worklist_pops"

let m_removals = Metrics.counter "bsim.removals"

let m_balls = Metrics.counter "bsim.ball_expansions"

let m_sweeps = Metrics.counter "bsim.sweeps"

type strategy = Naive | Counters

let default_strategy = Counters

let strategy_name = function Naive -> "naive" | Counters -> "counters"

let effective_bound g = function
  | Pattern.Bounded k -> k
  | Pattern.Unbounded -> Distance.eccentricity_bound g

(* ------------------------------------------------------------------ *)
(* Counter strategy: cnt.(e).(v) = #{w ∈ sim(u') | 0 < dist(v,w) <= k}  *)
(* maintained under removals via reverse balls.                         *)
(* ------------------------------------------------------------------ *)

let run_counters ?(domains = 1) pattern g ~initial ~mutable_set =
  let n = Snapshot.node_count g in
  let sim = Match_relation.copy initial in
  let edge_array = Array.of_list (Pattern.edges pattern) in
  let ne = Array.length edge_array in
  let out_of = Array.make (Pattern.size pattern) [] in
  let in_of = Array.make (Pattern.size pattern) [] in
  Array.iteri
    (fun e (u, u', _) ->
      out_of.(u) <- e :: out_of.(u);
      in_of.(u') <- e :: in_of.(u'))
    edge_array;
  let is_mutable v =
    match mutable_set with None -> true | Some s -> Bitset.mem s v
  in
  let scratch = Distance.make_scratch g in
  let cnt = Array.init (max ne 1) (fun _ -> Array.make (max n 1) 0) in
  (* Counter init: one reverse ball per (pattern edge, witness) pair.
     A ball touches arbitrary rows, so chunks cannot share [cnt];
     instead the pair list is range-partitioned and each chunk
     accumulates into private rows, summed below — integer addition is
     commutative, so the merged counters are exactly the sequential
     ones. *)
  let work = ref [] in
  for e = ne - 1 downto 0 do
    let _, u', b = edge_array.(e) in
    let k = effective_bound g b in
    List.iter (fun w -> work := (e, k, w) :: !work) (Match_relation.matches sim u')
  done;
  let work = Array.of_list !work in
  let nw = Array.length work in
  let domains = max 1 (min domains (max 1 nw)) in
  if domains = 1 then begin
    Counter.add m_balls nw;
    Array.iter
      (fun (e, k, w) ->
        let row = cnt.(e) in
        Distance.reverse_ball scratch g w k (fun v _ -> row.(v) <- row.(v) + 1))
      work
  end
  else begin
    let ranges = Parallel.ranges ~domains nw in
    Counter.add m_balls nw;
    Parallel.run ~domains (fun i ->
        let lo, hi = ranges.(i) in
        let scratch = Distance.make_scratch g in
        let local = Array.init (max ne 1) (fun _ -> Array.make (max n 1) 0) in
        for j = lo to hi - 1 do
          let e, k, w = work.(j) in
          let row = local.(e) in
          Distance.reverse_ball scratch g w k (fun v _ -> row.(v) <- row.(v) + 1)
        done;
        local)
    |> Array.iter (fun local ->
           for e = 0 to ne - 1 do
             let dst = cnt.(e) and src = local.(e) in
             for v = 0 to n - 1 do
               dst.(v) <- dst.(v) + src.(v)
             done
           done)
  end;
  let worklist = Vec.create ~dummy:(-1) () in
  let push u v = Vec.push worklist ((u * n) + v) in
  (* Counted locally and flushed once: the gated-counter check stays out
     of the refinement hot path. *)
  let n_removals = ref 0 and n_pops = ref 0 in
  let remove u v =
    incr n_removals;
    Match_relation.remove sim u v;
    push u v
  in
  for u = 0 to Pattern.size pattern - 1 do
    let victims = ref [] in
    Bitset.iter
      (fun v ->
        if is_mutable v && List.exists (fun e -> cnt.(e).(v) = 0) out_of.(u) then
          victims := v :: !victims)
      (Match_relation.matches_set sim u);
    List.iter (fun v -> remove u v) !victims
  done;
  while not (Vec.is_empty worklist) do
    incr n_pops;
    let code = Vec.pop worklist in
    let u' = code / n and w = code mod n in
    List.iter
      (fun e ->
        let u, _, b = edge_array.(e) in
        let k = effective_bound g b in
        let row = cnt.(e) in
        Counter.incr m_balls;
        Distance.reverse_ball scratch g w k (fun p _ ->
            row.(p) <- row.(p) - 1;
            if row.(p) = 0 && is_mutable p && Match_relation.mem sim u p then
              remove u p))
      in_of.(u')
  done;
  Counter.add m_removals !n_removals;
  Counter.add m_pops !n_pops;
  sim

(* ------------------------------------------------------------------ *)
(* Naive strategy: sweep-and-recheck until a sweep removes nothing.     *)
(* Unbounded edges consult an SCC-based reachability oracle.            *)
(* ------------------------------------------------------------------ *)

let run_naive ?(domains = 1) pattern g ~initial ~mutable_set =
  let sim = Match_relation.copy initial in
  let scratch = Distance.make_scratch g in
  let reach =
    if Pattern.has_unbounded_edge pattern then Some (Reach.compute g) else None
  in
  let satisfies scratch u v =
    List.for_all
      (fun (u', b) ->
        let targets = Match_relation.matches_set sim u' in
        match (b, reach) with
        | Pattern.Unbounded, Some r ->
          (* Any witness of sim(u') reachable by a nonempty path. *)
          List.exists (fun w -> Reach.reaches r v w) (Match_relation.matches sim u')
        | Pattern.Unbounded, None -> assert false
        | Pattern.Bounded k, _ ->
          Distance.exists_within scratch g v k (fun w -> Bitset.mem targets w))
      (Pattern.out_edges pattern u)
  in
  (* Sweep only the removable nodes: the whole relation in batch mode, the
     affected area in constrained mode — the latter keeps each sweep
     proportional to the area size. *)
  let sweep_nodes f =
    match mutable_set with
    | None ->
      for u = 0 to Pattern.size pattern - 1 do
        Bitset.iter (fun v -> f u v) (Match_relation.matches_set sim u)
      done
    | Some area ->
      Bitset.iter
        (fun v ->
          for u = 0 to Pattern.size pattern - 1 do
            if Match_relation.mem sim u v then f u v
          done)
        area
  in
  let changed = ref true in
  while !changed do
    Counter.incr m_sweeps;
    changed := false;
    (* Within a sweep [sim] is constant (victims are removed only after
       the sweep), so the constraint checks are independent and can be
       fanned out: materialise the pairs to check, partition, and
       concatenate each chunk's victims in chunk order — the victim set
       (and hence the fixpoint) is exactly the sequential one. *)
    let victims =
      if domains <= 1 then begin
        let acc = ref [] in
        sweep_nodes (fun u v ->
            if not (satisfies scratch u v) then acc := (u, v) :: !acc);
        List.rev !acc
      end
      else begin
        let pairs = Vec.create ~dummy:(-1, -1) () in
        sweep_nodes (fun u v -> Vec.push pairs (u, v));
        let np = Vec.length pairs in
        let domains = max 1 (min domains (max 1 np)) in
        let ranges = Parallel.ranges ~domains np in
        Parallel.run ~domains (fun i ->
            let lo, hi = ranges.(i) in
            let scratch = Distance.make_scratch g in
            let acc = ref [] in
            for j = hi - 1 downto lo do
              let u, v = Vec.get pairs j in
              if not (satisfies scratch u v) then acc := (u, v) :: !acc
            done;
            !acc)
        |> Array.to_list |> List.concat
      end
    in
    if victims <> [] then begin
      changed := true;
      Counter.add m_removals (List.length victims);
      List.iter (fun (u, v) -> Match_relation.remove sim u v) victims
    end
  done;
  sim

let run_constrained ?(strategy = default_strategy) ?(domains = 1) pattern g
    ~initial ~mutable_set =
  match strategy with
  | Counters -> run_counters ~domains pattern g ~initial ~mutable_set
  | Naive -> run_naive ~domains pattern g ~initial ~mutable_set

let run ?(strategy = default_strategy) pattern g =
  let initial = Candidates.compute pattern g in
  run_constrained ~strategy pattern g ~initial ~mutable_set:None

let consistent pattern g m =
  let scratch = Distance.make_scratch g in
  let reach =
    if Pattern.has_unbounded_edge pattern then Some (Reach.compute g) else None
  in
  let ok = ref true in
  for u = 0 to Pattern.size pattern - 1 do
    List.iter
      (fun v ->
        if not (Pattern.matches_node pattern u (Snapshot.label g v) (Snapshot.attrs g v)) then
          ok := false;
        List.iter
          (fun (u', b) ->
            let targets = Match_relation.matches_set m u' in
            let holds =
              match (b, reach) with
              | Pattern.Unbounded, Some r ->
                List.exists (fun w -> Reach.reaches r v w) (Match_relation.matches m u')
              | Pattern.Unbounded, None -> false
              | Pattern.Bounded k, _ ->
                Distance.exists_within scratch g v k (fun w -> Bitset.mem targets w)
            in
            if not holds then ok := false)
          (Pattern.out_edges pattern u))
      (Match_relation.matches m u)
  done;
  !ok
