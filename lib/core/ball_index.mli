open Expfinder_graph
open Expfinder_pattern

(** Precomputed bounded-distance index (the "distance matrix" of the
    PVLDB 2010 algorithm, restricted to a radius).

    For a query workload against a static snapshot, the bounded-BFS
    balls that dominate bounded-simulation checks can be computed once:
    [build g ~radius] stores, per node, the nodes within [radius]
    nonempty-path hops together with their distances (CSR-style flat
    arrays).  {!evaluate} then runs bounded simulation with indexed ball
    scans instead of BFS.  Memory is Σ|ball(v, radius)| entries, which
    is why this is an opt-in for radius ≤ 3-ish on sparse graphs. *)

type t

val build : Snapshot.t -> radius:int -> t
(** @raise Invalid_argument when [radius < 1]. *)

val radius : t -> int

val source : t -> Snapshot.identity
(** The identity of the snapshot the index was built from; {!evaluate}
    refuses any other snapshot, including same-version snapshots of a
    different graph. *)

val memory_entries : t -> int
(** Total stored (node, distance) pairs — the index's footprint. *)

val iter_ball : t -> int -> (int -> int -> unit) -> unit
(** [iter_ball idx v f] calls [f w d] for each [w] with
    [0 < dist(v,w) <= radius], ascending in [d]. *)

val supports : t -> Pattern.t -> bool
(** All edge bounds finite and within the index radius. *)

val evaluate : t -> Pattern.t -> Snapshot.t -> Match_relation.t
(** Bounded-simulation kernel via indexed checks.  The snapshot must be
    the one the index was built from.
    @raise Invalid_argument when the pattern is not {!supports}-ed or
    the snapshot identity differs. *)
