open Expfinder_graph
open Expfinder_pattern

(** The match relation M(Q,G).

    A relation between pattern nodes and data nodes, stored as one dense
    bitset of data nodes per pattern node.  The relation computed by the
    matching algorithms is the {e maximum} (bounded) simulation; by
    definition it is nonempty for every pattern node, or empty for all of
    them ("no match"). *)

type t

val create : pattern_size:int -> graph_size:int -> t
(** Empty relation. *)

val pattern_size : t -> int

val graph_size : t -> int

val mem : t -> int -> int -> bool
(** [mem m u v]: does pattern node [u] match data node [v]? *)

val add : t -> int -> int -> unit

val remove : t -> int -> int -> unit

val matches : t -> int -> int list
(** Data nodes matching pattern node [u], ascending. *)

val matches_set : t -> int -> Bitset.t
(** The underlying bitset (shared, do not mutate). *)

val count : t -> int -> int
(** Number of matches of pattern node [u]. *)

val total : t -> int
(** Total number of (u,v) pairs. *)

val is_total : t -> bool
(** Every pattern node has at least one match. *)

val clear : t -> unit
(** Make the relation empty (used when some pattern node lost all its
    matches: the paper's semantics then make the whole result empty). *)

val pairs : t -> (int * int) list
(** All (pattern node, data node) pairs, lexicographic. *)

val of_pairs : pattern_size:int -> graph_size:int -> (int * int) list -> t

val digest : t -> string
(** Hex MD5 of the canonical content (pattern size plus all pairs in
    lexicographic order): stable across processes and independent of
    [graph_size] padding.  The answer digest recorded in the query log
    and re-checked by [expfinder replay]. *)

val copy : t -> t

val equal : t -> t -> bool

val pp : Pattern.t -> Format.formatter -> t -> unit
(** Named rendering: [{SA -> [3; 7]; SD -> [1; 2; 5]}]. *)
