open Expfinder_graph
open Expfinder_pattern
open Expfinder_telemetry
module Parallel = Expfinder_parallel

let m_pops = Metrics.counter "sim.worklist_pops"

let m_removals = Metrics.counter "sim.removals"

(* Pattern-edge indexing shared by both refinement paths. *)
type edge_index = {
  edge_array : (int * int * Pattern.bound) array;
  out_of : int list array; (* pattern node -> outgoing pattern-edge ids *)
  in_of : int list array; (* pattern node -> incoming pattern-edge ids *)
}

let index_edges pattern =
  let edge_array = Array.of_list (Pattern.edges pattern) in
  let out_of = Array.make (Pattern.size pattern) [] in
  let in_of = Array.make (Pattern.size pattern) [] in
  Array.iteri
    (fun e (u, u', _) ->
      out_of.(u) <- e :: out_of.(u);
      in_of.(u') <- e :: in_of.(u'))
    edge_array;
  { edge_array; out_of; in_of }

(* ------------------------------------------------------------------ *)
(* Dense path (batch): counters for every node, O(|Q|·|G|).             *)
(* ------------------------------------------------------------------ *)

let run_dense ?(domains = 1) pattern g ~initial =
  let n = Snapshot.node_count g in
  let sim = Match_relation.copy initial in
  let idx = index_edges pattern in
  let ne = Array.length idx.edge_array in
  (* cnt.(e).(v) = |succ(v) ∩ sim(u')| for pattern edge e = (u,u').
     The init scan is O(|Q|·|E|) and write-disjoint over v, so it is
     range-partitioned across [?domains]; [sim] is read-only until the
     (sequential) worklist phase, whose unique greatest fixpoint makes
     the result identical for any domain count. *)
  let cnt = Array.init (max ne 1) (fun _ -> Array.make (max n 1) 0) in
  let domains = max 1 (min domains (max 1 n)) in
  let ranges = Parallel.ranges ~domains n in
  ignore
    (Parallel.run ~domains (fun i ->
         let lo, hi = ranges.(i) in
         for e = 0 to ne - 1 do
           let _, u', _ = idx.edge_array.(e) in
           let target = Match_relation.matches_set sim u' in
           let row = cnt.(e) in
           for v = lo to hi - 1 do
             Snapshot.iter_succ g v (fun w ->
                 if Bitset.mem target w then row.(v) <- row.(v) + 1)
           done
         done));
  let worklist = Vec.create ~dummy:(-1) () in
  (* Counted locally and flushed once: the gated-counter check stays out
     of the refinement hot path. *)
  let n_removals = ref 0 and n_pops = ref 0 in
  let remove u v =
    incr n_removals;
    Match_relation.remove sim u v;
    Vec.push worklist ((u * n) + v)
  in
  for u = 0 to Pattern.size pattern - 1 do
    let victims = ref [] in
    Bitset.iter
      (fun v ->
        if List.exists (fun e -> cnt.(e).(v) = 0) idx.out_of.(u) then
          victims := v :: !victims)
      (Match_relation.matches_set sim u);
    List.iter (fun v -> remove u v) !victims
  done;
  while not (Vec.is_empty worklist) do
    incr n_pops;
    let code = Vec.pop worklist in
    let u' = code / n and w = code mod n in
    List.iter
      (fun e ->
        let u, _, _ = idx.edge_array.(e) in
        let row = cnt.(e) in
        Snapshot.iter_pred g w (fun p ->
            row.(p) <- row.(p) - 1;
            if row.(p) = 0 && Match_relation.mem sim u p then remove u p))
      idx.in_of.(u')
  done;
  Counter.add m_removals !n_removals;
  Counter.add m_pops !n_pops;
  sim

(* The sparse path (only nodes of [area] may be removed, counters exist
   only for them) is shared with the incremental module's Digraph
   instance. *)
module Snap_refine = Sparse_refine.Make (Snapshot)

let run_constrained ?(domains = 1) pattern g ~initial ~mutable_set =
  match mutable_set with
  | None -> run_dense ~domains pattern g ~initial
  | Some area -> Snap_refine.simulation ~domains pattern g ~initial ~area

let run pattern g =
  let initial = Candidates.compute pattern g in
  run_dense pattern g ~initial

let consistent pattern g m =
  let ok = ref true in
  for u = 0 to Pattern.size pattern - 1 do
    List.iter
      (fun v ->
        if not (Pattern.matches_node pattern u (Snapshot.label g v) (Snapshot.attrs g v)) then
          ok := false;
        List.iter
          (fun (u', _) ->
            if not (Snapshot.exists_succ g v (fun w -> Match_relation.mem m u' w)) then
              ok := false)
          (Pattern.out_edges pattern u))
      (Match_relation.matches m u)
  done;
  !ok
