open Expfinder_graph
open Expfinder_pattern

type t = { sets : Bitset.t array; graph_size : int }

let create ~pattern_size ~graph_size =
  if pattern_size < 1 then invalid_arg "Match_relation.create";
  { sets = Array.init pattern_size (fun _ -> Bitset.create graph_size); graph_size }

let pattern_size t = Array.length t.sets

let graph_size t = t.graph_size

let check t u = if u < 0 || u >= pattern_size t then invalid_arg "Match_relation: bad pattern node"

let mem t u v =
  check t u;
  Bitset.mem t.sets.(u) v

let add t u v =
  check t u;
  Bitset.add t.sets.(u) v

let remove t u v =
  check t u;
  Bitset.remove t.sets.(u) v

let matches t u =
  check t u;
  Bitset.to_list t.sets.(u)

let matches_set t u =
  check t u;
  t.sets.(u)

let count t u =
  check t u;
  Bitset.cardinal t.sets.(u)

let total t = Array.fold_left (fun acc s -> acc + Bitset.cardinal s) 0 t.sets

let is_total t = Array.for_all (fun s -> not (Bitset.is_empty s)) t.sets

let clear t = Array.iter Bitset.clear t.sets

let pairs t =
  let out = ref [] in
  for u = 0 to pattern_size t - 1 do
    List.iter (fun v -> out := (u, v) :: !out) (matches t u)
  done;
  List.rev !out

let of_pairs ~pattern_size ~graph_size pair_list =
  let t = create ~pattern_size ~graph_size in
  List.iter (fun (u, v) -> add t u v) pair_list;
  t

(* Canonical content digest: pattern size plus every (u, v) pair in
   lexicographic order, hashed with MD5.  Two relations digest equally
   iff they hold the same pairs over the same pattern size, regardless
   of graph_size padding — the stability the qlog/replay loop needs
   across processes. *)
let digest t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (string_of_int (pattern_size t));
  for u = 0 to pattern_size t - 1 do
    Buffer.add_char buf '|';
    Buffer.add_string buf (string_of_int u);
    List.iter
      (fun v ->
        Buffer.add_char buf ',';
        Buffer.add_string buf (string_of_int v))
      (matches t u)
  done;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let copy t = { sets = Array.map Bitset.copy t.sets; graph_size = t.graph_size }

let equal a b =
  pattern_size a = pattern_size b
  && Array.for_all2 Bitset.equal a.sets b.sets

let pp pattern ppf t =
  Format.fprintf ppf "{@[<hv>";
  for u = 0 to pattern_size t - 1 do
    if u > 0 then Format.fprintf ppf ";@ ";
    Format.fprintf ppf "%s -> [%a]" (Pattern.name pattern u)
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
         Format.pp_print_int)
      (matches t u)
  done;
  Format.fprintf ppf "@]}"
