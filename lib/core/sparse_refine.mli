open Expfinder_graph
open Expfinder_pattern

(** Area-restricted greatest-fixpoint refinement, generic over the graph
    representation.

    Used by incremental maintenance: only pairs on nodes of [area] may be
    removed; everything else is frozen and trusted.  Counters exist only
    for area nodes, so the cost is proportional to the area (and, for
    bounded patterns, to the dependency balls of its nodes), never to
    |G|.  Batch evaluation keeps its dense engines in {!Simulation} and
    {!Bounded_sim}. *)

module Make (G : Graph_intf.GRAPH) : sig
  val simulation :
    ?domains:int ->
    Pattern.t ->
    G.t ->
    initial:Match_relation.t ->
    area:Bitset.t ->
    Match_relation.t
  (** Simulation constraints (bounds ignored; caller dispatches).

      [?domains] (default 1, the sequential oracle) partitions the
      counter-initialisation scan over the area across that many
      domains; per-node counter keys are disjoint across chunks and the
      worklist phase stays sequential, so the greatest fixpoint — which
      is unique — is identical for any domain count. *)

  val bounded :
    ?domains:int ->
    Pattern.t ->
    G.t ->
    initial:Match_relation.t ->
    area:Bitset.t ->
    Match_relation.t
  (** Bounded-simulation constraints via per-pair ball counters.
      [?domains] parallelises the per-area-node BFS ball expansions of
      the initialisation phase (each chunk gets its own scratch);
      results and counter totals are identical to the sequential run.
      @raise Invalid_argument on a pattern with unbounded edges (callers
      fall back to recomputation for those). *)
end
