open Expfinder_telemetry

(** Pure rendering for the [expfinder top] terminal dashboard.

    All functions map already-parsed JSON documents — the bodies of
    [/stats.json], [/timeseries.json] and [/alerts.json] — to plain
    strings, so the dashboard is unit-testable from canned documents
    without a live server or a TTY.  The CLI loop in [bin/expfinder]
    only polls the endpoints and repaints with {!render}. *)

val sparkline : ?width:int -> float list -> string
(** Render values as a row of eight-level block characters
    (▁▂▃▄▅▆▇█), min-max normalised over the shown tail.  Keeps the last
    [width] (default 40) finite values; an empty/all-NaN input yields
    [""]; a constant series renders flat (low when zero). *)

val series_tail : Json.t -> string -> float list
(** Extract the "last" column of the named series from a parsed
    [/timeseries.json] document, using the finest resolution that
    carries the series.  Points come back oldest-first. *)

val firing_alerts : Json.t -> Json.t list
(** The alert objects with ["firing": true] from a parsed
    [/alerts.json] (or the [alerts] member of [/stats.json]). *)

val render :
  ?width:int ->
  ?stats:Json.t ->
  ?timeseries:Json.t ->
  ?alerts:Json.t ->
  ?domains:Json.t ->
  unit ->
  string
(** Compose the full dashboard frame: header (graph/epoch/uptime),
    alert status lines, a per-op-class table (qps, error rate, p99 and
    a qps sparkline), memory/GC gauges with trends and — when a parsed
    [/domains.json] is supplied — a domains pane (pool summary,
    per-worker utilization, queue-depth and writer-backlog
    sparklines).  Every input is optional; missing documents degrade
    to ["-"] placeholders so the dashboard still paints while the
    server is warming up or an endpoint is unavailable. *)
