(* Pure rendering for the `expfinder top` terminal dashboard.  Every
   function here maps already-parsed JSON documents (the bodies of
   /stats.json, /timeseries.json and /alerts.json) to strings, so the
   whole dashboard is unit-testable from canned documents without a
   server or a TTY. *)

open Expfinder_telemetry

let blocks = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
                "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]

let sparkline ?(width = 40) values =
  let values = List.filter (fun v -> Float.is_finite v) values in
  let n = List.length values in
  let values = if n > width then List.filteri (fun i _ -> i >= n - width) values else values in
  match values with
  | [] -> ""
  | vs ->
    let vmin = List.fold_left min infinity vs in
    let vmax = List.fold_left max neg_infinity vs in
    let range = vmax -. vmin in
    let cell v =
      if range <= 0.0 then if vmax > 0.0 then blocks.(3) else blocks.(0)
      else
        let i = int_of_float ((v -. vmin) /. range *. 7.0 +. 0.5) in
        blocks.(max 0 (min 7 i))
    in
    String.concat "" (List.map cell vs)

(* {2 Document accessors} *)

let member_or path doc =
  List.fold_left (fun acc k -> Option.bind acc (Json.member k)) (Some doc) path

let float_at path doc = Option.bind (member_or path doc) Json.float_opt
let int_at path doc = Option.bind (member_or path doc) Json.int_opt

(* A /timeseries.json point is the array [t_unix; last; sum; min; max;
   count]; the dashboard trends the "last" slot_close values. *)
let point_last p =
  match Json.list_opt p with
  | Some (_ :: last :: _) -> Json.float_opt last
  | _ -> None

let series_tail doc name =
  match Option.bind (Json.member "resolutions" doc) Json.list_opt with
  | None -> []
  | Some resolutions ->
    (* Resolutions are emitted finest-first; the finest ring that
       carries the series gives the liveliest trend. *)
    let rec pick = function
      | [] -> []
      | r :: rest -> (
        match member_or [ "series"; name ] r with
        | Some points ->
          (match Json.list_opt points with
          | Some ps -> List.filter_map point_last ps
          | None -> [])
        | None -> pick rest)
    in
    pick resolutions

let firing_alerts alerts_doc =
  match Option.bind (Json.member "alerts" alerts_doc) Json.list_opt with
  | None -> []
  | Some alerts ->
    List.filter
      (fun a -> match Json.member "firing" a with Some (Json.Bool b) -> b | _ -> false)
      alerts

let configured_alerts alerts_doc =
  match Option.bind (Json.member "alerts" alerts_doc) Json.list_opt with
  | None -> 0
  | Some l -> List.length l

(* {2 Rendering} *)

let fmt_bytes b =
  if b >= 1024.0 *. 1024.0 *. 1024.0 then Printf.sprintf "%.1fGiB" (b /. (1024.0 ** 3.0))
  else if b >= 1024.0 *. 1024.0 then Printf.sprintf "%.1fMiB" (b /. (1024.0 ** 2.0))
  else if b >= 1024.0 then Printf.sprintf "%.1fKiB" (b /. 1024.0)
  else Printf.sprintf "%.0fB" b

let fmt_uptime s =
  let s = int_of_float s in
  if s >= 3600 then Printf.sprintf "%dh%02dm" (s / 3600) (s mod 3600 / 60)
  else if s >= 60 then Printf.sprintf "%dm%02ds" (s / 60) (s mod 60)
  else Printf.sprintf "%ds" s

let fmt_opt fmt = function Some v -> fmt v | None -> "-"

let op_row ~width ~timeseries op stats =
  let win field = Option.bind stats (float_at [ "windows"; op; field ]) in
  let spark =
    match timeseries with
    | None -> ""
    | Some ts -> sparkline ~width (series_tail ts (Printf.sprintf "win.%s.qps" op))
  in
  Printf.sprintf "  %-7s %8s %7s %9s  %s" op
    (fmt_opt (Printf.sprintf "%.1f") (win "qps"))
    (fmt_opt (fun v -> Printf.sprintf "%.2f%%" (100.0 *. v)) (win "error_rate"))
    (fmt_opt
       (fun v -> if Float.is_finite v then Printf.sprintf "%.2fms" v else "-")
       (win "p99_ms"))
    spark

let alert_lines alerts =
  match alerts with
  | None -> [ "  alerts: (unavailable)" ]
  | Some doc -> (
    let firing = firing_alerts doc in
    match firing with
    | [] -> [ Printf.sprintf "  alerts: %d configured, none firing" (configured_alerts doc) ]
    | fs ->
      List.map
        (fun a ->
          let name =
            match Option.bind (Json.member "name" a) Json.str_opt with
            | Some n -> n
            | None -> "?"
          in
          Printf.sprintf "  ALERT %-28s burn fast %.1fx  slow %.1fx" name
            (Option.value ~default:nan (float_at [ "burn_fast" ] a))
            (Option.value ~default:nan (float_at [ "burn_slow" ] a)))
        fs)

(* One row per pool worker from a parsed /domains.json: utilization is
   busy/(busy+idle) over the worker's whole life, tasks its throughput. *)
let domain_lines ~width ~timeseries domains =
  match domains with
  | None -> []
  | Some doc ->
    let pool field = int_at [ "pool"; field ] doc in
    let header =
      Printf.sprintf "  domains: %s worker(s)  busy %s  queue %s/%s  writer backlog %s"
        (fmt_opt string_of_int (pool "workers"))
        (fmt_opt string_of_int (pool "busy"))
        (fmt_opt string_of_int (pool "queue_depth"))
        (fmt_opt string_of_int (pool "queue_capacity"))
        (fmt_opt string_of_int (pool "writer_backlog"))
    in
    let workers =
      match Option.bind (Json.member "workers" doc) Json.list_opt with
      | None -> []
      | Some ws ->
        List.map
          (fun w ->
            Printf.sprintf "    worker %s  domain %s  tasks %-7s util %s"
              (fmt_opt string_of_int (int_at [ "worker" ] w))
              (fmt_opt string_of_int (int_at [ "domain_id" ] w))
              (fmt_opt string_of_int (int_at [ "tasks" ] w))
              (fmt_opt
                 (fun u -> Printf.sprintf "%.0f%%" (100.0 *. u))
                 (float_at [ "utilization" ] w)))
          ws
    in
    let trends =
      match timeseries with
      | None -> []
      | Some ts ->
        List.filter_map
          (fun (label, series) ->
            match sparkline ~width (series_tail ts series) with
            | "" -> None
            | s -> Some (Printf.sprintf "    %-14s %s" label s))
          [
            ("queue depth", "m.chan.pool.jobs.depth");
            ("writer backlog", "m.chan.serial.jobs.depth");
          ]
    in
    (header :: workers) @ trends

let render ?(width = 40) ?stats ?timeseries ?alerts ?domains () =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  let proc field = Option.bind stats (float_at [ "process"; field ]) in
  line "expfinder top — graph %s  epoch %s  uptime %s"
    (fmt_opt string_of_int (Option.bind stats (int_at [ "graph_id" ])))
    (fmt_opt string_of_int (Option.bind stats (int_at [ "epoch" ])))
    (fmt_opt fmt_uptime (proc "uptime.seconds"));
  List.iter (line "%s") (alert_lines (match alerts with
    | Some _ as a -> a
    | None -> Option.bind stats (Json.member "alerts")));
  line "";
  line "  %-7s %8s %7s %9s  %s" "op" "qps" "err" "p99" "trend";
  List.iter (fun op -> line "%s" (op_row ~width ~timeseries op stats)) [ "query"; "batch"; "update" ];
  line "";
  let rss = proc "process.rss_bytes" in
  let heap_bytes = Option.map (fun w -> w *. float_of_int (Sys.word_size / 8)) (proc "process.heap_words") in
  line "  rss %s  heap %s  gc pause max %s"
    (fmt_opt fmt_bytes rss)
    (fmt_opt fmt_bytes heap_bytes)
    (fmt_opt (fun us -> Printf.sprintf "%.0fus" us) (proc "process.gc_pause_us_max"));
  (match timeseries with
  | None -> ()
  | Some ts ->
    let rss_trend = sparkline ~width (series_tail ts "process.rss_bytes") in
    let pause_trend = sparkline ~width (series_tail ts "process.gc_pause_us_max") in
    if rss_trend <> "" then line "  rss trend      %s" rss_trend;
    if pause_trend <> "" then line "  gc pause trend %s" pause_trend);
  (match domain_lines ~width ~timeseries domains with
  | [] -> ()
  | ls ->
    line "";
    List.iter (line "%s") ls);
  Buffer.contents b
