open Expfinder_graph
open Expfinder_pattern
open Expfinder_core
open Expfinder_incremental
open Expfinder_engine
open Expfinder_telemetry
module Parallel = Expfinder_parallel

let src = Logs.Src.create "expfinder.server" ~doc:"ExpFinder serving loop"

module Log = (val Logs.src_log src : Logs.LOG)

(* ------------------------------------------------------------------ *)
(* Endpoints *)

type endpoint = Unix_socket of string | Tcp of string * int

let endpoint_of_string spec =
  if spec = "" then Error "endpoint: empty spec"
  else if String.contains spec '/' || spec.[0] = '.' then
    (* Anything path-shaped is a Unix socket, before host:port parsing:
       "/tmp/expfinder:1" is a socket named with a colon, not host
       "/tmp/expfinder" port 1, and "./8080" lets an all-digit name be a
       socket path at all. *)
    Ok (Unix_socket spec)
  else
    match int_of_string_opt spec with
    | Some port when port > 0 && port < 65536 -> Ok (Tcp ("127.0.0.1", port))
    | Some port -> Error (Printf.sprintf "endpoint: port %d out of range" port)
    | None -> (
      match String.rindex_opt spec ':' with
      | Some i when i < String.length spec - 1 -> (
        let host = String.sub spec 0 i in
        let rest = String.sub spec (i + 1) (String.length spec - i - 1) in
        match int_of_string_opt rest with
        | Some port when port > 0 && port < 65536 ->
          Ok (Tcp ((if host = "" then "127.0.0.1" else host), port))
        | Some port -> Error (Printf.sprintf "endpoint: port %d out of range" port)
        | None -> Ok (Unix_socket spec))
      | _ -> Ok (Unix_socket spec))

let endpoint_to_string = function
  | Unix_socket path -> path
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port

let sockaddr = function
  | Unix_socket path -> Unix.ADDR_UNIX path
  | Tcp (host, port) ->
    let addr =
      match Unix.inet_addr_of_string host with
      | addr -> addr
      | exception _ -> (
        match (Unix.gethostbyname host).h_addr_list with
        | [||] -> failwith (Printf.sprintf "endpoint: cannot resolve %S" host)
        | addrs -> addrs.(0)
        | exception Not_found -> failwith (Printf.sprintf "endpoint: cannot resolve %S" host))
    in
    Unix.ADDR_INET (addr, port)

(* ------------------------------------------------------------------ *)
(* Stats document *)

(* Pool / writer summary read back from the always-on registry cells
   the parallel primitives publish.  Reading through [Metrics.gauge]
   mints a zero cell when the pool was never started (single-domain
   serving), which reads as the honest "no workers" answer. *)
let reg_gauge name = Gauge.value (Metrics.gauge ~always:true name)

let reg_counter name = Counter.value (Metrics.counter ~always:true name)

let pool_json () =
  Json.Obj
    [
      ("workers", Json.Int (reg_gauge "pool.workers"));
      ("busy", Json.Int (reg_gauge "pool.busy"));
      ("queue_depth", Json.Int (reg_gauge "chan.pool.jobs.depth"));
      ("queue_capacity", Json.Int (reg_gauge "pool.queue_capacity"));
      ("tasks", Json.Int (reg_counter "pool.tasks"));
      ("writer_backlog", Json.Int (reg_gauge "chan.serial.jobs.depth"));
      ("writer_submitted", Json.Int (reg_counter "serial.submitted"));
    ]

let stats_json engine =
  let snap = Engine.snapshot engine in
  let windows =
    List.map (fun (name, w) -> (name, Window.to_json w)) (Window.all ())
  in
  Json.Obj
    [
      ("graph_id", Json.Int (Snapshot.graph_id snap));
      ("epoch", Json.Int (Snapshot.epoch snap));
      ("windows", Json.Obj windows);
      ("pool", pool_json ());
      ("process", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (process_stats ())));
      ("alerts", Slo.to_json ());
      ("metrics", Metrics.to_json ());
      ("recorder", Recorder.to_json ());
    ]

(* Per-domain document behind [/domains.json]: worker utilization
   split per pool domain, per-domain GC pause totals, the engine's
   contention counters, and the continuous profiler's health. *)
let domains_json engine =
  let snap = Engine.snapshot engine in
  let worker i =
    let p field = Printf.sprintf "pool.worker%d.%s" i field in
    let busy = reg_counter (p "busy_us") and idle = reg_counter (p "idle_us") in
    let util =
      if busy + idle <= 0 then 0.0
      else float_of_int busy /. float_of_int (busy + idle)
    in
    Json.Obj
      [
        ("worker", Json.Int i);
        ("domain_id", Json.Int (reg_gauge (p "domain_id")));
        ("tasks", Json.Int (reg_counter (p "tasks")));
        ("busy_us", Json.Int busy);
        ("idle_us", Json.Int idle);
        ("utilization", Json.Float util);
      ]
  in
  let gc_domain (d : Gcpause.domain_totals) =
    Json.Obj
      [
        ("domain", Json.Int d.Gcpause.domain);
        ("pause_us_total", Json.Int d.Gcpause.pause_us_total);
        ("pause_us_max", Json.Int d.Gcpause.pause_us_max);
        ("slices", Json.Int d.Gcpause.slices);
      ]
  in
  Json.Obj
    [
      ("graph_id", Json.Int (Snapshot.graph_id snap));
      ("epoch", Json.Int (Snapshot.epoch snap));
      ("pool", pool_json ());
      ("workers", Json.Arr (List.init (max 0 (reg_gauge "pool.workers")) worker));
      ( "gc",
        Json.Obj
          [
            ("domain_spawns", Json.Int (Gcpause.domain_spawns ()));
            ("domain_stops", Json.Int (Gcpause.domain_stops ()));
            ("by_domain", Json.Arr (List.map gc_domain (Gcpause.by_domain ())));
          ] );
      ( "engine",
        Json.Obj
          [
            ("stale_reads", Json.Int (reg_counter "engine.snapshot.stale_reads"));
            ("staleness", Json.Int (reg_gauge "engine.snapshot.staleness"));
            ( "maint_skips_fastpath",
              Json.Int (reg_counter "engine.maint_skips.fastpath") );
            ( "maint_skips_ball_index",
              Json.Int (reg_counter "engine.maint_skips.ball_index") );
          ] );
      ("profile", Profile.to_json ());
    ]

(* ------------------------------------------------------------------ *)
(* Request handling (one JSON object per line) *)

let provenance_name : Engine.provenance -> string = function
  | From_cache -> "cache"
  | From_compressed -> "compressed"
  | From_index -> "index"
  | Direct -> "direct"

let error_response ?trace_id msg =
  Json.Obj
    (("ok", Json.Bool false)
    :: ("error", Json.Str msg)
    :: (match trace_id with Some t -> [ ("trace_id", Json.Str t) ] | None -> []))

(* The request's trace context: adopt a well-formed "trace" field (the
   compact or W3C traceparent wire form), mint a fresh context for
   everything else — including malformed values, because tracing must
   never fail a request.  Serving-path requests are always sampled:
   span trees must not depend on the process-wide telemetry flag, and
   only traces admitted by the store retain theirs. *)
let ctx_of_request req =
  match Option.bind (Json.member "trace" req) Json.str_opt with
  | Some s -> (
    match Trace.of_wire ~sampled:true s with
    | Some ctx -> ctx
    | None -> Trace.make ~sampled:true ())
  | None -> Trace.make ~sampled:true ()

let answer_fields (a : Engine.answer) =
  [
    ("pairs", Json.Int (Match_relation.total a.relation));
    ("total", Json.Bool a.total);
    ("provenance", Json.Str (provenance_name a.provenance));
    ("digest", Json.Str (Match_relation.digest a.relation));
  ]

type reply = Reply of Json.t | Reply_and_stop of Json.t

(* [apply] is how update batches reach the engine: the sequential server
   calls [Engine.apply_updates] in place, the domain-pool server routes
   them through the dedicated writer domain so exactly one domain ever
   advances the epoch. *)
let handle_request engine ~apply line =
  match Json.of_string line with
  | Error e -> Reply (error_response ("bad request: " ^ e))
  | Ok req -> (
    let op =
      match Option.bind (Json.member "op" req) Json.str_opt with
      | Some op -> op
      | None -> "query" (* bare {"pattern": ...} defaults to a query *)
    in
    match op with
    | "ping" -> Reply (Json.Obj [ ("ok", Json.Bool true); ("pong", Json.Bool true) ])
    | "stats" -> Reply (stats_json engine)
    | "shutdown" ->
      Reply_and_stop (Json.Obj [ ("ok", Json.Bool true); ("shutdown", Json.Bool true) ])
    | "query" -> (
      match Option.bind (Json.member "pattern" req) Json.str_opt with
      | None -> Reply (error_response "query: missing string field \"pattern\"")
      | Some text -> (
        match Pattern_io.of_string text with
        | Error e -> Reply (error_response ("query: " ^ e))
        | Ok pattern -> (
          let ctx = ctx_of_request req in
          let trace_id = ctx.Trace.trace_id in
          match Engine.evaluate ~trace:ctx engine pattern with
          | answer ->
            Reply
              (Json.Obj
                 (("ok", Json.Bool true)
                 :: ("trace_id", Json.Str trace_id)
                 :: answer_fields answer))
          | exception e ->
            Reply (error_response ~trace_id ("query: " ^ Printexc.to_string e)))))
    | "batch" -> (
      let patterns =
        match Option.bind (Json.member "patterns" req) Json.list_opt with
        | None -> Error "batch: missing array field \"patterns\""
        | Some items ->
          List.fold_left
            (fun acc item ->
              match (acc, Json.str_opt item) with
              | Error e, _ -> Error e
              | Ok _, None -> Error "batch: patterns must be strings"
              | Ok l, Some text -> (
                match Pattern_io.of_string text with
                | Ok p -> Ok (p :: l)
                | Error e -> Error ("batch: " ^ e)))
            (Ok []) items
          |> Result.map List.rev
      in
      match patterns with
      | Error e -> Reply (error_response e)
      | Ok patterns -> (
        let ctx = ctx_of_request req in
        let trace_id = ctx.Trace.trace_id in
        match Engine.evaluate_batch ~trace:ctx engine patterns with
        | answers ->
          Reply
            (Json.Obj
               [
                 ("ok", Json.Bool true);
                 ("trace_id", Json.Str trace_id);
                 ("answers", Json.Arr (List.map (fun a -> Json.Obj (answer_fields a)) answers));
               ])
        | exception e -> Reply (error_response ~trace_id ("batch: " ^ Printexc.to_string e))))
    | "update" -> (
      let ops =
        match Option.bind (Json.member "ops" req) Json.list_opt with
        | None -> Error "update: missing array field \"ops\""
        | Some items ->
          List.fold_left
            (fun acc item ->
              match acc with
              | Error e -> Error e
              | Ok l -> Result.map (fun u -> u :: l) (Update.of_json item))
            (Ok []) items
          |> Result.map List.rev
      in
      match ops with
      | Error e -> Reply (error_response e)
      | Ok ops -> (
        let ctx = ctx_of_request req in
        let trace_id = ctx.Trace.trace_id in
        match apply ctx ops with
        | reports ->
          Reply
            (Json.Obj
               [
                 ("ok", Json.Bool true);
                 ("trace_id", Json.Str trace_id);
                 ("epoch", Json.Int (Snapshot.epoch (Engine.snapshot engine)));
                 ("maintained", Json.Int (List.length reports));
               ])
        | exception e -> Reply (error_response ~trace_id ("update: " ^ Printexc.to_string e))))
    | op -> Reply (error_response (Printf.sprintf "unknown op %S" op)))

(* ------------------------------------------------------------------ *)
(* Minimal HTTP responder (GET/HEAD only) *)

let http_response ~status ~content_type ?(headers = []) body =
  let reason = match status with
    | 200 -> "OK"
    | 404 -> "Not Found"
    | 405 -> "Method Not Allowed"
    | _ -> "Error"
  in
  Printf.sprintf
    "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n%sConnection: close\r\n\r\n%s"
    status reason content_type (String.length body)
    (String.concat "" (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) headers))
    body

let http_reply engine ~meth ~path ~ctx =
  (* Split off a query string: only /profile.folded?reset=1 uses one
     today, but every path tolerates it. *)
  let path, query =
    match String.index_opt path '?' with
    | Some i ->
      ( String.sub path 0 i,
        String.sub path (i + 1) (String.length path - i - 1) )
    | None -> (path, "")
  in
  let query_flag name =
    List.exists
      (fun kv -> kv = name || kv = name ^ "=1" || kv = name ^ "=true")
      (String.split_on_char '&' query)
  in
  let status, content_type, body =
    match path with
    | "/metrics" -> (200, "text/plain; version=0.0.4; charset=utf-8", Prometheus.render ())
    | "/healthz" -> (200, "text/plain; charset=utf-8", "ok\n")
    | "/stats.json" ->
      (200, "application/json; charset=utf-8", Json.to_string ~pretty:true (stats_json engine))
    | "/traces.json" ->
      ( 200,
        "application/json; charset=utf-8",
        Json.to_string ~pretty:true (Tracestore.to_json ()) )
    | "/timeseries.json" ->
      (* Cap the per-series tails so the document stays a few hundred
         KB even after hours of retention; postmortems carry the same
         cap, and the full history lives in the JSONL sink. *)
      ( 200,
        "application/json; charset=utf-8",
        Json.to_string ~pretty:true (Timeseries.to_json ~max_points:120 Timeseries.shared) )
    | "/alerts.json" ->
      (200, "application/json; charset=utf-8", Json.to_string ~pretty:true (Slo.to_json ()))
    | "/domains.json" ->
      ( 200,
        "application/json; charset=utf-8",
        Json.to_string ~pretty:true (domains_json engine) )
    | "/profile.folded" ->
      (* Collapsed-stack text for flamegraph.pl / speedscope.  With
         ?reset=1 the accumulated profile is returned, then cleared —
         so a scraper gets interval profiles without losing data. *)
      let body = Profile.to_folded () in
      if query_flag "reset" then Profile.reset ();
      (200, "text/plain; charset=utf-8", body)
    | _ -> (404, "text/plain; charset=utf-8", Printf.sprintf "no such path: %s\n" path)
  in
  let body = if meth = "HEAD" then "" else body in
  (* Echo the request's context (adopted or freshly minted) so a caller
     that propagated a traceparent can correlate the scrape. *)
  http_response ~status ~content_type ~headers:[ ("traceparent", Trace.to_traceparent ctx) ]
    body

(* ------------------------------------------------------------------ *)
(* Connection loop *)

let write_all fd s =
  let len = String.length s in
  let bytes = Bytes.of_string s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd bytes !off (len - !off)
  done

(* Serve one connection.  The first line decides the protocol: an HTTP
   request line ("GET /metrics HTTP/1.1") gets a one-shot HTTP answer;
   anything else starts a JSONL request loop that runs until the client
   closes or sends {"op": "shutdown"}.  Returns [false] when the server
   should stop accepting. *)
let handle_connection engine ~apply fd =
  let ic = Unix.in_channel_of_descr fd in
  let continue = ref true in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      try
        match In_channel.input_line ic with
        | None -> ()
        | Some first ->
          let words = String.split_on_char ' ' (String.trim first) in
          (match words with
          | [ meth; path; _version ] when meth = "GET" || meth = "HEAD" ->
            (* Drain the request headers (so the client sees a clean
               close), keeping the traceparent value if one arrives: a
               well-formed header is adopted as the scrape's context, a
               malformed one falls back to a freshly minted context —
               never an error. *)
            let rec drain traceparent =
              match In_channel.input_line ic with
              | None -> traceparent
              | Some line when String.trim line = "" -> traceparent
              | Some line -> (
                match String.index_opt line ':' with
                | Some i
                  when String.lowercase_ascii (String.trim (String.sub line 0 i))
                       = "traceparent" ->
                  drain
                    (Some (String.trim (String.sub line (i + 1) (String.length line - i - 1))))
                | Some _ | None -> drain traceparent)
            in
            let ctx =
              match drain None with
              | Some v -> (
                match Trace.of_wire v with Some c -> c | None -> Trace.make ())
              | None -> Trace.make ()
            in
            write_all fd (http_reply engine ~meth ~path ~ctx)
          | (("GET" | "HEAD" | "POST" | "PUT" | "DELETE") :: _) ->
            write_all fd
              (http_response ~status:405 ~content_type:"text/plain" "GET or HEAD only\n")
          | _ ->
            let rec loop line =
              if String.trim line <> "" then begin
                match handle_request engine ~apply line with
                | Reply json -> write_all fd (Json.to_string json ^ "\n")
                | Reply_and_stop json ->
                  write_all fd (Json.to_string json ^ "\n");
                  continue := false
              end;
              if !continue then
                match In_channel.input_line ic with
                | Some next -> loop next
                | None -> ()
            in
            loop first)
      with
      (* A dead, wedged or misbehaving client must only cost its own
         connection.  Channel reads surface the SO_RCVTIMEO receive
         timeout as Sys_blocked_io or Sys_error (not Unix_error), so
         both must land here rather than escape and kill the accept
         loop. *)
      | End_of_file | Sys_blocked_io -> ()
      | Sys_error _ -> ()
      | Unix.Unix_error _ -> ());
  !continue

let serve ?(max_connections = max_int) ?(sample_period = 1.0)
    ?(domains = Parallel.default_pool_domains ()) ?on_listen engine endpoint =
  let sock = Unix.socket (Unix.domain_of_sockaddr (sockaddr endpoint)) Unix.SOCK_STREAM 0 in
  (match endpoint with
  | Unix_socket path -> if Sys.file_exists path then Sys.remove path
  | Tcp _ -> Unix.setsockopt sock Unix.SO_REUSEADDR true);
  Unix.bind sock (sockaddr endpoint);
  Unix.listen sock 16;
  (* The sampler thread drives long-horizon telemetry: one tick per
     period pulls windows, process gauges, counters and allocation
     attribution into the shared timeseries, then re-evaluates the SLO
     burn rates.  A tick must never take the serving loop down, so it
     swallows everything.  It is joined on shutdown (the stop flag is
     polled in <= 0.1s slices so the join is prompt even with long
     sample periods). *)
  let stop_sampler = Atomic.make false in
  let sampler =
    if sample_period <= 0.0 then None
    else
      Some
        (Thread.create
           (fun () ->
             while not (Atomic.get stop_sampler) do
               (try
                  ignore (Timeseries.sample Timeseries.shared : (string * float) list);
                  ignore (Slo.evaluate () : Slo.alert list)
                with _ -> ());
               let rec nap left =
                 if left > 0.0 && not (Atomic.get stop_sampler) then begin
                   let slice = if left < 0.1 then left else 0.1 in
                   Thread.delay slice;
                   nap (left -. slice)
                 end
               in
               nap sample_period
             done)
           ())
  in
  (match on_listen with Some f -> f () | None -> ());
  Log.info (fun m ->
      m "serving on %s (%d domain%s)" (endpoint_to_string endpoint) domains
        (if domains = 1 then "" else "s"));
  (* [stopping] is the cross-domain stop signal: a worker answering
     {"op": "shutdown"} sets it and wakes the accept loop with a dummy
     connection. *)
  let stopping = Atomic.make false in
  let served = ref 0 in
  (* With one domain the server behaves exactly as the historical
     single-threaded loop: connections handled in the accept loop,
     updates applied in place.  With more, connections are dispatched to
     a pool of worker domains over a bounded queue, and update batches
     are routed to one dedicated writer domain — the only domain that
     ever calls [Engine.apply_updates], publishing each new epoch
     atomically while readers keep serving their pinned snapshots. *)
  let writer = if domains > 1 then Some (Parallel.Serial.create ()) else None in
  let pool =
    if domains > 1 then
      Some
        (Parallel.Pool.create ~domains
           ~on_error:(fun e ->
             Log.err (fun m -> m "connection handler: %s" (Printexc.to_string e)))
           ())
    else None
  in
  let apply ctx ops =
    match writer with
    | Some w -> Parallel.Serial.submit w (fun () -> Engine.apply_updates ~trace:ctx engine ops)
    | None -> Engine.apply_updates ~trace:ctx engine ops
  in
  let wake () =
    match
      let addr = sockaddr endpoint in
      let s = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close s with Unix.Unix_error _ -> ())
        (fun () -> Unix.connect s addr)
    with
    | () -> ()
    | exception _ -> ()
  in
  let handle client =
    if not (handle_connection engine ~apply client) then begin
      Atomic.set stopping true;
      if pool <> None then wake ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      (* Drain in-flight connections before stopping the writer they may
         still be routing updates to; join the sampler last. *)
      (match pool with Some p -> Parallel.Pool.shutdown p | None -> ());
      (match writer with Some w -> Parallel.Serial.shutdown w | None -> ());
      Atomic.set stop_sampler true;
      (match sampler with Some th -> Thread.join th | None -> ());
      (try Unix.close sock with Unix.Unix_error _ -> ());
      match endpoint with
      | Unix_socket path -> ( try Sys.remove path with Sys_error _ -> ())
      | Tcp _ -> ())
    (fun () ->
      try
        while (not (Atomic.get stopping)) && !served < max_connections do
          match Unix.accept sock with
          | client, _addr ->
            incr served;
            (* A wedged client must not hang its handler forever. *)
            (try Unix.setsockopt_float client Unix.SO_RCVTIMEO 30.0 with Unix.Unix_error _ -> ());
            if Atomic.get stopping then (
              try Unix.close client with Unix.Unix_error _ -> ())
            else (
              match pool with
              | Some p -> Parallel.Pool.submit p (fun () -> handle client)
              | None -> handle client)
          | exception
              Unix.Unix_error
                ((Unix.EINTR | Unix.ECONNABORTED | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            (* Transient accept failures (interrupted, client gone before the
               handshake finished) must not stop the service. *)
            ()
        done
      with e ->
        (* An exception escaping the accept loop is a server crash:
           leave a postmortem artifact (when EXPFINDER_POSTMORTEM_DIR is
           configured) before letting it propagate. *)
        ignore
          (Postmortem.write ~reason:("uncaught exception: " ^ Printexc.to_string e) ()
            : string option);
        raise e)

(* ------------------------------------------------------------------ *)
(* Client side *)

let with_connection endpoint f =
  let addr = sockaddr endpoint in
  let sock = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock addr;
      f sock)

let request fd json =
  write_all fd (Json.to_string json ^ "\n");
  let ic = Unix.in_channel_of_descr fd in
  match In_channel.input_line ic with
  | None -> Error "connection closed before a response arrived"
  | Some line -> Json.of_string line

let http_get endpoint path =
  with_connection endpoint (fun fd ->
      write_all fd (Printf.sprintf "GET %s HTTP/1.1\r\nHost: expfinder\r\nConnection: close\r\n\r\n" path);
      let ic = Unix.in_channel_of_descr fd in
      match In_channel.input_line ic with
      | None -> Error "connection closed before a response arrived"
      | Some status_line -> (
        match String.split_on_char ' ' (String.trim status_line) with
        | _http :: code :: _ -> (
          match int_of_string_opt code with
          | None -> Error (Printf.sprintf "bad status line: %s" status_line)
          | Some status ->
            let rec drain_headers () =
              match In_channel.input_line ic with
              | None -> ()
              | Some line when String.trim line = "" -> ()
              | Some _ -> drain_headers ()
            in
            drain_headers ();
            let body = In_channel.input_all ic in
            Ok (status, body))
        | _ -> Error (Printf.sprintf "bad status line: %s" status_line)))
