open Expfinder_engine
open Expfinder_telemetry

(** The serving path: a socket server answering newline-delimited JSON
    requests against one {!Expfinder_engine} instance, plus a minimal
    HTTP responder for the observability endpoints.  With one domain
    (the default on a single-core host without [EXPFINDER_DOMAINS]) it
    is the historical single-threaded loop; with more it serves
    connections from a pool of worker domains over a bounded queue (see
    {!serve}).

    Protocol sniffing: the first line of each connection decides how it
    is handled.  [GET]/[HEAD] request lines get a one-shot HTTP answer
    ([/metrics] in Prometheus text format with OpenMetrics-style
    [# EXEMPLAR] annotations, [/healthz], [/stats.json],
    [/traces.json] — the in-process {!Tracestore} document —
    [/timeseries.json] — the multi-resolution retention rings, capped
    at 120 points per series per resolution — and [/alerts.json] — the
    current SLO burn-rate alert states) and the connection closes; any
    other first line starts a JSONL
    request loop — one JSON object per line in, one per line out —
    until the client disconnects or sends [{"op": "shutdown"}].

    Request ops: [query] (field [pattern]: {!Expfinder_pattern.Pattern_io}
    text), [batch] (field [patterns]: array of pattern texts), [update]
    (field [ops]: array of {!Expfinder_incremental.Update.to_json}
    objects), [ping], [stats] and [shutdown].  Every response carries
    ["ok": bool]; failures carry ["error": string] and never kill the
    server.  Query/batch responses include the answer [digest]
    ({!Expfinder_core.Match_relation.digest}), so clients can
    cross-check replays.

    Request tracing: every [query]/[batch]/[update] request runs under
    an explicit {!Trace.ctx}.  A request may propagate one in a
    ["trace"] field (the {!Trace.to_wire} or W3C traceparent form);
    anything absent or malformed means a freshly minted context —
    propagation failures never fail a request.  The trace id is
    returned as ["trace_id"] on both success and error responses,
    stamped into qlog/recorder events, offered to the {!Tracestore}
    and — when admitted — advertised as a latency-histogram exemplar.
    On the HTTP side a [traceparent] request header is honoured the
    same way (malformed → fresh mint) and the adopted-or-minted
    context is echoed back as a [traceparent] response header.

    Execution model: connections are dispatched to worker domains (one
    request at a time per connection), reads evaluate against the
    engine's atomically-published snapshot epoch without ever blocking
    on writers, and update batches are routed to one dedicated writer
    domain that serializes {!Engine.apply_updates} and publishes each
    new epoch.  With [domains = 1] everything runs in the accept loop,
    which is the historical sequential consistency model. *)

type endpoint = Unix_socket of string | Tcp of string * int

val endpoint_of_string : string -> (endpoint, string) result
(** A spec containing ['/'] or starting with ['.'] is always a
    Unix-domain socket path (so ["/tmp/x:1"] and ["./8080"] are
    sockets); otherwise ["8080"] and ["host:8080"] parse as TCP (the
    bare-port form binds [127.0.0.1]) and anything else is a socket
    path. *)

val endpoint_to_string : endpoint -> string

val stats_json : Engine.t -> Json.t
(** The live stats document served at [/stats.json]: snapshot identity
    ([graph_id]/[epoch]), one {!Window.to_json} per operation class
    under [windows] (summary plus exemplars), the domain-pool summary
    under [pool] (workers, busy, queue depth/capacity, tasks, writer
    backlog), process gauges, the current SLO alert document under
    [alerts], the metric registry and the flight-recorder ring. *)

val domains_json : Engine.t -> Json.t
(** The per-domain document served at [/domains.json]: the pool
    summary, one row per pool worker (domain id, tasks, busy/idle
    microseconds, utilization), per-domain GC pause totals with domain
    spawn/stop counts, the engine's contention counters (stale reads,
    snapshot staleness, maintenance-lock skips) and the continuous
    profiler's health block. *)

val serve :
  ?max_connections:int ->
  ?sample_period:float ->
  ?domains:int ->
  ?on_listen:(unit -> unit) ->
  Engine.t ->
  endpoint ->
  unit
(** Bind, listen and answer connections until a client sends
    [{"op": "shutdown"}] (or [max_connections] connections have been
    served — a test hook).  [on_listen] runs once the socket is bound
    and listening, before the first [accept] (the CLI prints its
    readiness line there).  A pre-existing Unix-socket path is removed
    before binding and the path is unlinked on exit; TCP sockets set
    [SO_REUSEADDR].  Per-connection read timeout: 30s.

    [?domains] (default [EXPFINDER_DOMAINS], else
    [Domain.recommended_domain_count () - 1], floored at 1) selects the
    execution model.  [1]: the historical single-threaded loop —
    connections handled inside [accept], updates applied in place.
    [> 1]: a pool of [domains] worker domains serves connections
    dispatched over a bounded work queue; update batches are routed to
    one dedicated writer domain (the only caller of
    {!Engine.apply_updates}), so readers never block on writers — they
    evaluate on the snapshot epoch pinned at request start.  On
    shutdown the pool is drained (in-flight connections finish), then
    the writer domain and the sampler thread are joined.

    A background sampler thread ticks every [sample_period] seconds
    (default 1.0; [<= 0.] disables it): each tick feeds the shared
    {!Timeseries} store (and its JSONL sink, when configured) and
    re-evaluates the {!Slo} burn-rate alerts.  The thread is joined on
    shutdown.  If an exception escapes the accept loop, a {!Postmortem}
    artifact is written (when [EXPFINDER_POSTMORTEM_DIR] is set) before
    the exception propagates.

    HTTP paths: [/metrics], [/healthz], [/stats.json], [/traces.json],
    [/timeseries.json], [/alerts.json], [/domains.json] and
    [/profile.folded] (collapsed-stack text; [?reset=1] returns the
    accumulated profile and then clears it). *)

(** {1 Client helpers} (used by [expfinder client]/[stats --server] and
    the serve tests) *)

val with_connection : endpoint -> (Unix.file_descr -> 'a) -> 'a
(** Connect, run, and always close the socket. *)

val request : Unix.file_descr -> Json.t -> (Json.t, string) result
(** Send one JSONL request on an open connection and read the one-line
    response. *)

val http_get : endpoint -> string -> (int * string, string) result
(** One-shot [GET path]: connect, request, drain headers, and return
    [(status, body)]. *)
