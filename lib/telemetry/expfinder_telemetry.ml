(* Global on/off switch.  Counters and spans check it through one
   dereference; nothing on a recording path allocates. *)

let on =
  ref
    (match Sys.getenv_opt "EXPFINDER_TELEMETRY" with
    | Some ("1" | "true" | "on") -> true
    | Some _ | None -> false)

let set_enabled b = on := b

let enabled () = !on

let now_us () = 1e6 *. Unix.gettimeofday ()

let time f =
  let t0 = now_us () in
  let result = f () in
  (result, (now_us () -. t0) /. 1000.0)

(* ------------------------------------------------------------------ *)
(* JSON                                                                 *)
(* ------------------------------------------------------------------ *)

(* A dependency-free JSON value, emitter and parser: everything the
   observability layer serializes (metric registries, span trees, bench
   reports, flight-recorder dumps) goes through this one module, and
   [bench-diff] reads reports back with the same code. *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  (* nan/inf have no JSON representation; emit null so consumers see an
     explicit absence instead of a parse error. *)
  let add_float buf f =
    if not (Float.is_finite f) then Buffer.add_string buf "null"
    else if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string buf (Printf.sprintf "%.1f" f)
    else Buffer.add_string buf (Printf.sprintf "%.12g" f)

  let to_string ?(pretty = false) v =
    let buf = Buffer.create 256 in
    let newline depth =
      Buffer.add_char buf '\n';
      for _ = 1 to depth do
        Buffer.add_string buf "  "
      done
    in
    let rec go depth = function
      | Null -> Buffer.add_string buf "null"
      | Bool b -> Buffer.add_string buf (string_of_bool b)
      | Int n -> Buffer.add_string buf (string_of_int n)
      | Float f -> add_float buf f
      | Str s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
      | Arr [] -> Buffer.add_string buf "[]"
      | Arr items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            if pretty then newline (depth + 1);
            go (depth + 1) item)
          items;
        if pretty then newline depth;
        Buffer.add_char buf ']'
      | Obj [] -> Buffer.add_string buf "{}"
      | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char buf ',';
            if pretty then newline (depth + 1);
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf "\":";
            if pretty then Buffer.add_char buf ' ';
            go (depth + 1) item)
          fields;
        if pretty then newline depth;
        Buffer.add_char buf '}'
    in
    go 0 v;
    if pretty then Buffer.add_char buf '\n';
    Buffer.contents buf

  exception Parse_error of string

  let of_string text =
    let n = String.length text in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some text.[!pos] else None in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        incr pos;
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> incr pos
      | _ -> fail (Printf.sprintf "expected '%c'" c)
    in
    let literal word v =
      if !pos + String.length word <= n && String.sub text !pos (String.length word) = word
      then begin
        pos := !pos + String.length word;
        v
      end
      else fail ("expected " ^ word)
    in
    let add_utf8 buf cp =
      if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
      else if cp < 0x800 then begin
        Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
        Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
      end
      else begin
        Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
        Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
        Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
      end
    in
    let hex4 () =
      if !pos + 4 > n then fail "truncated \\u escape";
      let s = String.sub text !pos 4 in
      pos := !pos + 4;
      match int_of_string_opt ("0x" ^ s) with
      | Some v -> v
      | None -> fail "bad \\u escape"
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec loop () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> incr pos
        | Some '\\' ->
          incr pos;
          (match peek () with
          | Some '"' ->
            incr pos;
            Buffer.add_char buf '"'
          | Some '\\' ->
            incr pos;
            Buffer.add_char buf '\\'
          | Some '/' ->
            incr pos;
            Buffer.add_char buf '/'
          | Some 'n' ->
            incr pos;
            Buffer.add_char buf '\n'
          | Some 'r' ->
            incr pos;
            Buffer.add_char buf '\r'
          | Some 't' ->
            incr pos;
            Buffer.add_char buf '\t'
          | Some 'b' ->
            incr pos;
            Buffer.add_char buf '\b'
          | Some 'f' ->
            incr pos;
            Buffer.add_char buf '\012'
          | Some 'u' ->
            incr pos;
            let cp = hex4 () in
            (* Surrogates would need pairing; we never emit them, so map
               a stray one to U+FFFD instead of producing bad UTF-8. *)
            add_utf8 buf (if cp >= 0xd800 && cp <= 0xdfff then 0xfffd else cp)
          | _ -> fail "bad escape");
          loop ()
        | Some c ->
          incr pos;
          Buffer.add_char buf c;
          loop ()
      in
      loop ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let numeric = function '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false in
      while (match peek () with Some c when numeric c -> true | _ -> false) do
        incr pos
      done;
      let tok = String.sub text start (!pos - start) in
      if String.exists (function '.' | 'e' | 'E' -> true | _ -> false) tok then
        match float_of_string_opt tok with Some f -> Float f | None -> fail "bad number"
      else
        match int_of_string_opt tok with
        | Some v -> Int v
        | None -> (
          match float_of_string_opt tok with Some f -> Float f | None -> fail "bad number")
    in
    let rec parse_value depth =
      if depth > 512 then fail "nesting too deep";
      skip_ws ();
      match peek () with
      | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
              incr pos;
              members ((key, v) :: acc)
            | Some '}' ->
              incr pos;
              Obj (List.rev ((key, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
      | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
              incr pos;
              elements (v :: acc)
            | Some ']' ->
              incr pos;
              Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
        end
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> parse_number ()
      | None -> fail "unexpected end of input"
    in
    match
      let v = parse_value 0 in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Parse_error msg -> Error msg

  let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

  let str_opt = function Str s -> Some s | _ -> None

  let int_opt = function Int n -> Some n | _ -> None

  let float_opt = function Float f -> Some f | Int n -> Some (float_of_int n) | _ -> None

  let list_opt = function Arr l -> Some l | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Counters and gauges                                                  *)
(* ------------------------------------------------------------------ *)

module Counter = struct
  type t = { cname : string; always : bool; mutable v : int }

  let create ?(always = false) cname = { cname; always; v = 0 }

  let name c = c.cname

  let add c n =
    if c.always || !on then
      c.v <- (if c.v > max_int - n then max_int else c.v + n)

  let incr c = add c 1

  let value c = c.v

  let reset c = c.v <- 0
end

module Gauge = struct
  type t = { gname : string; always : bool; mutable v : int }

  let create ?(always = false) gname = { gname; always; v = 0 }

  let name g = g.gname

  let set g n = if g.always || !on then g.v <- n

  let value g = g.v

  let reset g = g.v <- 0
end

(* ------------------------------------------------------------------ *)
(* Log-scale histograms                                                 *)
(* ------------------------------------------------------------------ *)

module Histogram = struct
  (* Geometric buckets, 8 per doubling, over [lo, lo * 2^(nbuckets/8)):
     bucket i holds samples in [lo * 2^(i/8), lo * 2^((i+1)/8)).  With
     lo = 1e-9 and 560 buckets the range spans 1e-9 .. ~1e12, enough
     for nanoseconds-as-seconds up to pair counts in the billions. *)
  let lo = 1e-9

  let per_doubling = 8.0

  let nbuckets = 560

  type t = {
    hname : string;
    always : bool;
    buckets : int array;
    mutable count : int;
    (* sum, min, max — kept in a float array so recording never boxes. *)
    state : float array;
  }

  let create ?(always = false) hname =
    { hname; always; buckets = Array.make nbuckets 0; count = 0; state = [| 0.0; 0.0; 0.0 |] }

  let name h = h.hname

  let bucket_of v =
    if v <= lo then 0
    else
      let i = int_of_float (Float.log2 (v /. lo) *. per_doubling) in
      if i < 0 then 0 else if i >= nbuckets then nbuckets - 1 else i

  let upper_bound i = lo *. Float.exp2 (float_of_int (i + 1) /. per_doubling)

  let observe h v =
    if h.always || !on then begin
      h.buckets.(bucket_of v) <- h.buckets.(bucket_of v) + 1;
      h.state.(0) <- h.state.(0) +. v;
      if h.count = 0 || v < h.state.(1) then h.state.(1) <- v;
      if h.count = 0 || v > h.state.(2) then h.state.(2) <- v;
      h.count <- h.count + 1
    end

  let count h = h.count

  let sum h = h.state.(0)

  let min_value h = if h.count = 0 then nan else h.state.(1)

  let max_value h = if h.count = 0 then nan else h.state.(2)

  (* Resolve a rank against an arbitrary log-bucket count array (shared
     with the sliding-window aggregator, which merges several per-second
     bucket arrays before asking for percentiles). *)
  let rank_in_buckets buckets ~rank ~mn ~mx =
    let seen = ref 0 and i = ref 0 in
    while !seen < rank && !i < nbuckets do
      seen := !seen + buckets.(!i);
      if !seen < rank then incr i
    done;
    Float.min mx (Float.max mn (upper_bound !i))

  let percentile h p =
    if h.count = 0 then nan
    else
      let p = Float.min 1.0 (Float.max 0.0 p) in
      (* The extremes are tracked exactly; only interior percentiles pay
         the bucket-resolution error. *)
      if p = 0.0 then min_value h
      else if p = 1.0 then max_value h
      else
        let rank = Stdlib.max 1 (int_of_float (ceil (p *. float_of_int h.count))) in
        rank_in_buckets h.buckets ~rank ~mn:(min_value h) ~mx:(max_value h)

  let reset h =
    Array.fill h.buckets 0 nbuckets 0;
    h.count <- 0;
    h.state.(0) <- 0.0;
    h.state.(1) <- 0.0;
    h.state.(2) <- 0.0
end

(* ------------------------------------------------------------------ *)
(* Registry                                                             *)
(* ------------------------------------------------------------------ *)

module Metrics = struct
  type metric =
    | M_counter of Counter.t
    | M_gauge of Gauge.t
    | M_histogram of Histogram.t

  let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

  let counter ?always name =
    match Hashtbl.find_opt registry name with
    | Some (M_counter c) -> c
    | Some _ -> invalid_arg ("Telemetry.Metrics.counter: " ^ name ^ " is not a counter")
    | None ->
      let c = Counter.create ?always name in
      Hashtbl.replace registry name (M_counter c);
      c

  let gauge ?always name =
    match Hashtbl.find_opt registry name with
    | Some (M_gauge g) -> g
    | Some _ -> invalid_arg ("Telemetry.Metrics.gauge: " ^ name ^ " is not a gauge")
    | None ->
      let g = Gauge.create ?always name in
      Hashtbl.replace registry name (M_gauge g);
      g

  let histogram ?always name =
    match Hashtbl.find_opt registry name with
    | Some (M_histogram h) -> h
    | Some _ ->
      invalid_arg ("Telemetry.Metrics.histogram: " ^ name ^ " is not a histogram")
    | None ->
      let h = Histogram.create ?always name in
      Hashtbl.replace registry name (M_histogram h);
      h

  let counters_snapshot () =
    Hashtbl.fold
      (fun name m acc ->
        match m with
        | M_counter c -> (name, Counter.value c) :: acc
        | M_gauge g -> (name, Gauge.value g) :: acc
        | M_histogram _ -> acc)
      registry []
    |> List.sort compare

  let delta ~before ~after =
    let base = Hashtbl.create 16 in
    List.iter (fun (name, v) -> Hashtbl.replace base name v) before;
    List.filter_map
      (fun (name, v) ->
        let d = v - Option.value ~default:0 (Hashtbl.find_opt base name) in
        if d = 0 then None else Some (name, d))
      after

  let reset_all () =
    Hashtbl.iter
      (fun _ -> function
        | M_counter c -> Counter.reset c
        | M_gauge g -> Gauge.reset g
        | M_histogram h -> Histogram.reset h)
      registry

  let to_json () =
    let rows =
      Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry [] |> List.sort compare
    in
    Json.Obj
      (List.map
         (fun (name, m) ->
           ( name,
             match m with
             | M_counter c -> Json.Obj [ ("kind", Json.Str "counter"); ("value", Json.Int (Counter.value c)) ]
             | M_gauge g -> Json.Obj [ ("kind", Json.Str "gauge"); ("value", Json.Int (Gauge.value g)) ]
             | M_histogram h ->
               Json.Obj
                 [
                   ("kind", Json.Str "histogram");
                   ("count", Json.Int (Histogram.count h));
                   ("sum", Json.Float (Histogram.sum h));
                   ("min", Json.Float (Histogram.min_value h));
                   ("max", Json.Float (Histogram.max_value h));
                   ("p50", Json.Float (Histogram.percentile h 0.50));
                   ("p95", Json.Float (Histogram.percentile h 0.95));
                   ("p99", Json.Float (Histogram.percentile h 0.99));
                 ] ))
         rows)

  let pp ppf () =
    let rows =
      Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry [] |> List.sort compare
    in
    List.iter
      (fun (name, m) ->
        match m with
        | M_counter c -> Format.fprintf ppf "%-40s %d@." name (Counter.value c)
        | M_gauge g -> Format.fprintf ppf "%-40s %d (gauge)@." name (Gauge.value g)
        | M_histogram h ->
          if Histogram.count h = 0 then Format.fprintf ppf "%-40s (empty)@." name
          else
            Format.fprintf ppf
              "%-40s count=%d sum=%.3f min=%.4f p50=%.4f p95=%.4f p99=%.4f max=%.4f@."
              name (Histogram.count h) (Histogram.sum h) (Histogram.min_value h)
              (Histogram.percentile h 0.50) (Histogram.percentile h 0.95)
              (Histogram.percentile h 0.99) (Histogram.max_value h))
      rows
end

(* ------------------------------------------------------------------ *)
(* Spans                                                                *)
(* ------------------------------------------------------------------ *)

module Span = struct
  type t = {
    sname : string;
    sstart : float; (* absolute epoch microseconds *)
    mutable dur_us : float;
    mutable rev_attrs : (string * string) list;
    mutable rev_kids : t list;
  }

  let make ?(attrs = []) sname =
    { sname; sstart = now_us (); dur_us = 0.0; rev_attrs = List.rev attrs; rev_kids = [] }

  let name s = s.sname

  let duration_ms s = s.dur_us /. 1000.0

  let attrs s = List.rev s.rev_attrs

  let children s = List.rev s.rev_kids

  (* Start time relative to an explicit origin (used by the exporter). *)
  let start_rel ~origin s = s.sstart -. origin

  let rec find s name =
    if s.sname = name then Some s
    else
      List.fold_left
        (fun acc kid -> match acc with Some _ -> acc | None -> find kid name)
        None (children s)

  let rec preorder_names s = s.sname :: List.concat_map preorder_names (children s)

  let pp_tree ppf s =
    let rec go indent s =
      Format.fprintf ppf "%s%-*s %8.3f ms" indent
        (Stdlib.max 1 (28 - String.length indent))
        s.sname (duration_ms s);
      List.iter (fun (k, v) -> Format.fprintf ppf "  %s=%s" k v) (attrs s);
      Format.pp_print_newline ppf ();
      List.iter (go (indent ^ "  ")) (children s)
    in
    go "" s

  let json_escape = Json.escape

  let rec to_json s =
    Json.Obj
      [
        ("name", Json.Str s.sname);
        ("duration_ms", Json.Float (duration_ms s));
        ("attrs", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) (attrs s)));
        ("children", Json.Arr (List.map to_json (children s)));
      ]

  let to_chrome_json s =
    let origin = s.sstart in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "[";
    let first = ref true in
    let rec emit sp =
      if not !first then Buffer.add_string buf ",\n";
      first := false;
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"expfinder\",\"ph\":\"X\",\"ts\":%.1f,\"dur\":%.1f,\"pid\":1,\"tid\":1"
           (json_escape sp.sname) (start_rel ~origin sp) sp.dur_us);
      (match attrs sp with
      | [] -> ()
      | kvs ->
        Buffer.add_string buf ",\"args\":{";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string buf ",";
            Buffer.add_string buf
              (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
          kvs;
        Buffer.add_string buf "}");
      Buffer.add_string buf "}";
      List.iter emit (children sp)
    in
    emit s;
    Buffer.add_string buf "]\n";
    Buffer.contents buf
end

(* The tracer: a stack of open spans.  Spans are only recorded while a
   [collect] is active, so an enabled-but-untraced process accumulates
   nothing. *)
let stack : Span.t list ref = ref []

let close (s : Span.t) = s.Span.dur_us <- now_us () -. s.Span.sstart

let with_span ?attrs name f =
  if (not !on) || !stack = [] then f ()
  else begin
    let s = Span.make ?attrs name in
    let parent = List.hd !stack in
    stack := s :: !stack;
    let finish () =
      close s;
      (match !stack with
      | top :: rest when top == s -> stack := rest
      | _ -> ());
      parent.Span.rev_kids <- s :: parent.Span.rev_kids
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

let annotate k v =
  match !stack with
  | [] -> ()
  | s :: _ -> s.Span.rev_attrs <- (k, v) :: s.Span.rev_attrs

let annotate_int k v = if !on && !stack <> [] then annotate k (string_of_int v)

let collect ?attrs name f =
  if not !on then (f (), None)
  else if !stack <> [] then (with_span ?attrs name f, None)
  else begin
    let s = Span.make ?attrs name in
    stack := [ s ];
    let finish () =
      close s;
      stack := []
    in
    match f () with
    | v ->
      finish ();
      (v, Some s)
    | exception e ->
      finish ();
      raise e
  end

(* ------------------------------------------------------------------ *)
(* Structured performance reports                                       *)
(* ------------------------------------------------------------------ *)

module Report = struct
  let schema_version = 1

  type sample_stats = {
    samples : float list;
    median : float;
    iqr : float;
    q1 : float;
    q3 : float;
  }

  (* Quartiles by linear interpolation between order statistics; the
     median of an even sample count is the mean of the middle pair. *)
  let stats_of_samples samples =
    match List.sort compare samples with
    | [] -> { samples = []; median = nan; iqr = nan; q1 = nan; q3 = nan }
    | sorted ->
      let arr = Array.of_list sorted in
      let n = Array.length arr in
      let quantile p =
        let pos = p *. float_of_int (n - 1) in
        let lo = int_of_float (Float.floor pos) in
        let hi = int_of_float (Float.ceil pos) in
        let frac = pos -. Float.floor pos in
        (arr.(lo) *. (1.0 -. frac)) +. (arr.(hi) *. frac)
      in
      let q1 = quantile 0.25 and q3 = quantile 0.75 in
      { samples; median = quantile 0.5; iqr = q3 -. q1; q1; q3 }

  type record = {
    id : string;
    experiment : string;
    units : string;
    params : (string * Json.t) list;
    stats : sample_stats;
  }

  type t = {
    tool : string;
    mode : string;
    created_unix : float;
    mutable rev_records : record list;
  }

  let create ?(tool = "expfinder-bench") ?(mode = "quick") () =
    { tool; mode; created_unix = Unix.time (); rev_records = [] }

  let experiment_of_id id =
    match String.index_opt id '.' with Some i -> String.sub id 0 i | None -> id

  let add t ~id ?experiment ?(units = "ms") ?(params = []) samples =
    let experiment =
      match experiment with Some e -> e | None -> experiment_of_id id
    in
    t.rev_records <-
      { id; experiment; units; params; stats = stats_of_samples samples } :: t.rev_records

  let records t = List.rev t.rev_records

  let record_json r =
    Json.Obj
      [
        ("id", Json.Str r.id);
        ("experiment", Json.Str r.experiment);
        ("unit", Json.Str r.units);
        ("params", Json.Obj r.params);
        ("samples", Json.Arr (List.map (fun s -> Json.Float s) r.stats.samples));
        ("median", Json.Float r.stats.median);
        ("iqr", Json.Float r.stats.iqr);
        ("q1", Json.Float r.stats.q1);
        ("q3", Json.Float r.stats.q3);
      ]

  let to_json t =
    Json.Obj
      [
        ("schema_version", Json.Int schema_version);
        ("tool", Json.Str t.tool);
        ("mode", Json.Str t.mode);
        ("created_unix", Json.Float t.created_unix);
        ("records", Json.Arr (List.map record_json (records t)));
      ]

  let write t path =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (Json.to_string ~pretty:true (to_json t)))

  let field_str json key default =
    Option.value ~default (Option.bind (Json.member key json) Json.str_opt)

  let parse_record item =
    match
      ( Option.bind (Json.member "id" item) Json.str_opt,
        Option.bind (Json.member "samples" item) Json.list_opt )
    with
    | Some id, Some sample_values -> (
      match List.filter_map Json.float_opt sample_values with
      | [] -> Error (Printf.sprintf "record %S has no numeric samples" id)
      | samples ->
        Ok
          {
            id;
            experiment = field_str item "experiment" (experiment_of_id id);
            units = field_str item "unit" "ms";
            params = (match Json.member "params" item with Some (Json.Obj kv) -> kv | _ -> []);
            (* Recomputed from the raw samples, so a report survives a
               hand edit of the derived fields. *)
            stats = stats_of_samples samples;
          }
      )
    | _ -> Error "record lacks an \"id\" or a \"samples\" array"

  let load path =
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | exception Sys_error e -> Error e
    | text -> (
      match Json.of_string text with
      | Error e -> Error ("invalid JSON: " ^ e)
      | Ok json -> (
        match Json.member "schema_version" json with
        | None -> Error "not a bench report (no schema_version)"
        | Some v when v <> Json.Int schema_version ->
          Error
            (Printf.sprintf "unsupported schema_version (this build reads version %d)"
               schema_version)
        | Some _ -> (
          match Option.bind (Json.member "records" json) Json.list_opt with
          | None -> Error "report has no records array"
          | Some items ->
            let rec build acc = function
              | [] ->
                Ok
                  {
                    tool = field_str json "tool" "?";
                    mode = field_str json "mode" "?";
                    created_unix =
                      Option.value ~default:0.0
                        (Option.bind (Json.member "created_unix" json) Json.float_opt);
                    rev_records = acc;
                  }
              | item :: rest -> (
                match parse_record item with
                | Ok r -> build (r :: acc) rest
                | Error e -> Error e)
            in
            build [] items)))

  type verdict = Regression | Improvement | Unchanged | Added | Removed

  type comparison = {
    cid : string;
    verdict : verdict;
    old_median : float;
    new_median : float;
    ratio : float;
  }

  let diff ?(threshold = 0.5) ?(min_ms = 0.05) ~baseline ~candidate () =
    let base_by_id = Hashtbl.create 64 in
    List.iter (fun r -> Hashtbl.replace base_by_id r.id r) (records baseline);
    let compared =
      List.map
        (fun nr ->
          match Hashtbl.find_opt base_by_id nr.id with
          | None ->
            { cid = nr.id; verdict = Added; old_median = nan; new_median = nr.stats.median; ratio = nan }
          | Some br ->
            Hashtbl.remove base_by_id nr.id;
            let om = br.stats.median and nm = nr.stats.median in
            let ratio = nm /. Float.max om 1e-9 in
            (* Noise rule: a shift only counts when the Tukey intervals
               [q1 - 1.5*iqr, q3 + 1.5*iqr] of the two runs do not
               overlap.  The raw [q1, q3] box is too narrow at the
               quick-mode sample counts (3 reps): two runs of the same
               binary routinely land disjoint under load jitter. *)
            let lo s = s.q1 -. (1.5 *. s.iqr) and hi s = s.q3 +. (1.5 *. s.iqr) in
            let overlap =
              lo br.stats <= hi nr.stats && lo nr.stats <= hi br.stats
            in
            let verdict =
              if om < min_ms && nm < min_ms then Unchanged
              else if ratio > 1.0 +. threshold && not overlap then Regression
              else if ratio < 1.0 /. (1.0 +. threshold) && not overlap then Improvement
              else Unchanged
            in
            { cid = nr.id; verdict; old_median = om; new_median = nm; ratio })
        (records candidate)
    in
    let removed =
      records baseline
      |> List.filter (fun r -> Hashtbl.mem base_by_id r.id)
      |> List.map (fun r ->
             { cid = r.id; verdict = Removed; old_median = r.stats.median; new_median = nan; ratio = nan })
    in
    compared @ removed

  let has_regression = List.exists (fun c -> c.verdict = Regression)

  let pp_diff ppf comps =
    let count v = List.length (List.filter (fun c -> c.verdict = v) comps) in
    List.iter
      (fun c ->
        match c.verdict with
        | Regression ->
          Format.fprintf ppf "  REGRESSION  %-42s %10.3f -> %10.3f ms  (%.2fx)@." c.cid
            c.old_median c.new_median c.ratio
        | Improvement ->
          Format.fprintf ppf "  improved    %-42s %10.3f -> %10.3f ms  (%.2fx)@." c.cid
            c.old_median c.new_median c.ratio
        | Added -> Format.fprintf ppf "  added       %-42s %10s -> %10.3f ms@." c.cid "-" c.new_median
        | Removed -> Format.fprintf ppf "  removed     %-42s %10.3f -> %10s ms@." c.cid c.old_median "-"
        | Unchanged -> ())
      comps;
    Format.fprintf ppf
      "bench-diff: %d record(s): %d regression(s), %d improvement(s), %d unchanged, %d added, \
       %d removed@."
      (List.length comps) (count Regression) (count Improvement) (count Unchanged) (count Added)
      (count Removed)
end

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                      *)
(* ------------------------------------------------------------------ *)

module Recorder = struct
  type event = {
    seq : int;
    query : string;
    strategy : string;
    duration_ms : float;
    slow : bool;
    counters : (string * int) list;
  }

  let default_capacity = 64

  (* The ring size is sized once at startup from EXPFINDER_RECORDER_CAP
     (floor 1) and resizable at runtime; resizing drops the buffered
     history, which is the honest semantics for a ring that just changed
     shape. *)
  let initial_capacity =
    match Option.bind (Sys.getenv_opt "EXPFINDER_RECORDER_CAP") int_of_string_opt with
    | Some n when n >= 1 -> n
    | Some _ | None -> default_capacity

  (* Unlike the metrics/span machinery the recorder is always on: one
     array store per query, so there is always a tail of recent history
     to dump when something goes wrong. *)
  let slow_ms = ref (Option.bind (Sys.getenv_opt "EXPFINDER_SLOW_MS") float_of_string_opt)

  let set_slow_threshold_ms v = slow_ms := v

  let slow_threshold_ms () = !slow_ms

  let buf : event option array ref = ref (Array.make initial_capacity None)

  let next_seq = ref 0

  let capacity () = Array.length !buf

  let set_capacity n =
    let n = Stdlib.max 1 n in
    if n <> Array.length !buf then buf := Array.make n None

  let record ~query ~strategy ~duration_ms ~counters =
    let seq = !next_seq in
    next_seq := seq + 1;
    let slow = match !slow_ms with Some t -> duration_ms >= t | None -> false in
    !buf.(seq mod Array.length !buf) <- Some { seq; query; strategy; duration_ms; slow; counters }

  let recent () =
    Array.to_list !buf
    |> List.filter_map Fun.id
    |> List.sort (fun a b -> compare a.seq b.seq)

  let slow_events () = List.filter (fun e -> e.slow) (recent ())

  let clear () =
    Array.fill !buf 0 (Array.length !buf) None;
    next_seq := 0

  let event_json e =
    Json.Obj
      [
        ("seq", Json.Int e.seq);
        ("query", Json.Str e.query);
        ("strategy", Json.Str e.strategy);
        ("duration_ms", Json.Float e.duration_ms);
        ("slow", Json.Bool e.slow);
        ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) e.counters));
      ]

  let to_json () = Json.Arr (List.map event_json (recent ()))

  let pp ppf () =
    match recent () with
    | [] -> Format.fprintf ppf "flight recorder: empty@."
    | events ->
      Format.fprintf ppf "flight recorder: %d event(s), capacity %d%s@." (List.length events)
        (capacity ())
        (match !slow_ms with
        | Some t -> Printf.sprintf ", slow >= %g ms" t
        | None -> ", no slow threshold (EXPFINDER_SLOW_MS unset)");
      List.iter
        (fun e ->
          Format.fprintf ppf "  #%-4d %s %9.3f ms  %-18s %s@." e.seq
            (if e.slow then "SLOW" else "    ")
            e.duration_ms e.strategy e.query;
          match e.counters with
          | [] -> ()
          | counters ->
            Format.fprintf ppf "        %s@."
              (String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s=%+d" k v) counters)))
        events
end

(* ------------------------------------------------------------------ *)
(* Process gauges                                                       *)
(* ------------------------------------------------------------------ *)

(* statm counts pages, and the kernel page size is not universally
   4 KiB (arm64 kernels commonly run 16K or 64K pages).  OCaml's stdlib
   has no sysconf binding, so ask getconf once; 4096 is only the
   fallback when that fails. *)
let page_size =
  lazy
    (match
       let ic = Unix.open_process_in "getconf PAGESIZE 2>/dev/null" in
       Fun.protect
         ~finally:(fun () -> ignore (Unix.close_process_in ic : Unix.process_status))
         (fun () -> input_line ic)
     with
    | exception _ -> 4096
    | line -> (
      match int_of_string_opt (String.trim line) with
      | Some n when n > 0 -> n
      | Some _ | None -> 4096))

(* Linux exposes resident pages in /proc/self/statm; elsewhere (or in a
   locked-down container) the read fails and rss is reported as 0 rather
   than an error — observability must not crash the service. *)
let rss_bytes () =
  match
    let ic = open_in "/proc/self/statm" in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> input_line ic)
  with
  | exception _ -> 0
  | line -> (
    match String.split_on_char ' ' line with
    | _ :: resident :: _ -> (
      match int_of_string_opt resident with
      | Some pages -> pages * Lazy.force page_size
      | None -> 0)
    | _ -> 0)

let process_stats () =
  let gc = Gc.quick_stat () in
  let stats =
    [
      ("process.rss_bytes", rss_bytes ());
      ("process.heap_words", gc.Gc.heap_words);
      ("process.gc_minor_collections", gc.Gc.minor_collections);
      ("process.gc_major_collections", gc.Gc.major_collections);
    ]
  in
  List.iter (fun (name, v) -> Gauge.set (Metrics.gauge ~always:true name) v) stats;
  stats

(* ------------------------------------------------------------------ *)
(* Sliding windows                                                      *)
(* ------------------------------------------------------------------ *)

module Window = struct
  let default_seconds = 60

  (* One bucket per wall-clock second, in a ring of [seconds] buckets
     indexed by [sec mod seconds].  A bucket is lazily reclaimed the
     first time its slot is written in a later second; reading skips any
     bucket whose stamp has fallen out of the window.  Latencies land in
     the same log-scale bucket layout as {!Histogram}, so merged-window
     percentiles share its resolution (~9% relative error) and its
     exact-min/max clamping. *)
  type bucket = {
    mutable sec : int;  (* unix second this bucket holds; -1 = empty *)
    mutable bcount : int;
    mutable berrors : int;
    mutable bsum : float;
    mutable bmin : float;
    mutable bmax : float;
    bhist : int array;
  }

  type t = { wname : string; wseconds : int; ring : bucket array }

  let fresh_bucket () =
    {
      sec = -1;
      bcount = 0;
      berrors = 0;
      bsum = 0.0;
      bmin = 0.0;
      bmax = 0.0;
      bhist = Array.make Histogram.nbuckets 0;
    }

  let create ?(seconds = default_seconds) wname =
    let seconds = Stdlib.max 1 seconds in
    { wname; wseconds = seconds; ring = Array.init seconds (fun _ -> fresh_bucket ()) }

  let name t = t.wname

  let seconds t = t.wseconds

  let reset t =
    Array.iter
      (fun b ->
        b.sec <- -1;
        b.bcount <- 0;
        b.berrors <- 0;
        b.bsum <- 0.0;
        b.bmin <- 0.0;
        b.bmax <- 0.0;
        Array.fill b.bhist 0 Histogram.nbuckets 0)
      t.ring

  let wall_seconds () = now_us () /. 1e6

  let observe t ?(error = false) ?now ms =
    let now = match now with Some n -> n | None -> wall_seconds () in
    let sec = int_of_float now in
    let b = t.ring.(sec mod t.wseconds) in
    if b.sec <> sec then begin
      b.sec <- sec;
      b.bcount <- 0;
      b.berrors <- 0;
      b.bsum <- 0.0;
      b.bmin <- 0.0;
      b.bmax <- 0.0;
      Array.fill b.bhist 0 Histogram.nbuckets 0
    end;
    if b.bcount = 0 || ms < b.bmin then b.bmin <- ms;
    if b.bcount = 0 || ms > b.bmax then b.bmax <- ms;
    b.bcount <- b.bcount + 1;
    if error then b.berrors <- b.berrors + 1;
    b.bsum <- b.bsum +. ms;
    let i = Histogram.bucket_of ms in
    b.bhist.(i) <- b.bhist.(i) + 1

  type summary = {
    window_s : int;
    count : int;
    errors : int;
    qps : float;
    error_rate : float;  (** 0 when the window is empty *)
    p50 : float;
    p95 : float;
    p99 : float;
    mean_ms : float;
    max_ms : float;
  }

  let summary ?now t =
    let now = match now with Some n -> n | None -> wall_seconds () in
    let now_sec = int_of_float now in
    let merged = Array.make Histogram.nbuckets 0 in
    let count = ref 0 and errors = ref 0 and sum = ref 0.0 in
    let mn = ref 0.0 and mx = ref 0.0 in
    Array.iter
      (fun b ->
        if b.sec > now_sec - t.wseconds && b.sec <= now_sec && b.bcount > 0 then begin
          if !count = 0 || b.bmin < !mn then mn := b.bmin;
          if !count = 0 || b.bmax > !mx then mx := b.bmax;
          count := !count + b.bcount;
          errors := !errors + b.berrors;
          sum := !sum +. b.bsum;
          Array.iteri (fun i c -> merged.(i) <- merged.(i) + c) b.bhist
        end)
      t.ring;
    let n = !count in
    let pct p =
      if n = 0 then nan
      else if p <= 0.0 then !mn
      else if p >= 1.0 then !mx
      else
        let rank = Stdlib.max 1 (int_of_float (ceil (p *. float_of_int n))) in
        Histogram.rank_in_buckets merged ~rank ~mn:!mn ~mx:!mx
    in
    {
      window_s = t.wseconds;
      count = n;
      errors = !errors;
      qps = float_of_int n /. float_of_int t.wseconds;
      error_rate = (if n = 0 then 0.0 else float_of_int !errors /. float_of_int n);
      p50 = pct 0.5;
      p95 = pct 0.95;
      p99 = pct 0.99;
      mean_ms = (if n = 0 then nan else !sum /. float_of_int n);
      max_ms = (if n = 0 then nan else !mx);
    }

  let summary_json s =
    Json.Obj
      [
        ("window_s", Json.Int s.window_s);
        ("count", Json.Int s.count);
        ("errors", Json.Int s.errors);
        ("qps", Json.Float s.qps);
        ("error_rate", Json.Float s.error_rate);
        ("p50_ms", Json.Float s.p50);
        ("p95_ms", Json.Float s.p95);
        ("p99_ms", Json.Float s.p99);
        ("mean_ms", Json.Float s.mean_ms);
        ("max_ms", Json.Float s.max_ms);
      ]

  (* Read the numbers back out of a /stats.json dump (the [expfinder
     stats --server] client side).  Missing latency fields (serialized
     [null] for an empty window) come back as nan. *)
  let summary_of_json json =
    let int_field k = Option.bind (Json.member k json) Json.int_opt in
    let float_field k =
      match Option.bind (Json.member k json) Json.float_opt with Some f -> f | None -> nan
    in
    match (int_field "window_s", int_field "count") with
    | Some window_s, Some count ->
      Some
        {
          window_s;
          count;
          errors = Option.value ~default:0 (int_field "errors");
          qps = float_field "qps";
          error_rate = float_field "error_rate";
          p50 = float_field "p50_ms";
          p95 = float_field "p95_ms";
          p99 = float_field "p99_ms";
          mean_ms = float_field "mean_ms";
          max_ms = float_field "max_ms";
        }
    | _ -> None

  let pp_summary ppf s =
    if s.count = 0 then Format.fprintf ppf "no requests in the last %ds" s.window_s
    else
      Format.fprintf ppf
        "%d request(s) in %ds: %.2f qps, errors %d (%.1f%%), p50 %.3f ms, p95 %.3f ms, p99 \
         %.3f ms, max %.3f ms"
        s.count s.window_s s.qps s.errors (100.0 *. s.error_rate) s.p50 s.p95 s.p99 s.max_ms

  (* Registry of operation-class windows (query/batch/update), mirroring
     the metrics registry: [get] creates on first use, the exporters
     enumerate with [all].  Windows record unconditionally — live SLOs
     must not depend on the telemetry flag. *)
  let windows : (string, t) Hashtbl.t = Hashtbl.create 8

  let get ?seconds name =
    match Hashtbl.find_opt windows name with
    | Some w -> w
    | None ->
      let w = create ?seconds name in
      Hashtbl.replace windows name w;
      w

  let all () =
    Hashtbl.fold (fun name w acc -> (name, w) :: acc) windows [] |> List.sort compare

  let reset_all () = Hashtbl.iter (fun _ w -> reset w) windows
end

(* ------------------------------------------------------------------ *)
(* Query log                                                            *)
(* ------------------------------------------------------------------ *)

module Qlog = struct
  let schema_version = 1

  type kind = Query | Batch | Update

  let kind_name = function Query -> "query" | Batch -> "batch" | Update -> "update"

  let kind_of_name = function
    | "query" -> Some Query
    | "batch" -> Some Batch
    | "update" -> Some Update
    | _ -> None

  type event = {
    seq : int;
    ts_unix : float;
    kind : kind;
    graph_id : int;
    epoch : int;
    query : string;
    strategy : string;
    duration_ms : float;
    counters : (string * int) list;
    pairs : int;
    digest : string;
    slow : bool;
    error : string option;
    payload : Json.t option;
  }

  (* Sink configuration: a path (env-seeded), a size ceiling, and one
     archived generation.  The channel opens lazily on the first emit so
     merely importing the library never touches the filesystem. *)
  (* An empty path means "no sink": EXPFINDER_QLOG= must behave like an
     unset variable, not like a log named "". *)
  let normalize_sink = function Some "" -> None | other -> other

  let sink_path = ref (normalize_sink (Sys.getenv_opt "EXPFINDER_QLOG"))

  let default_max_bytes = 64 * 1024 * 1024

  let max_bytes_ref =
    ref
      (match Option.bind (Sys.getenv_opt "EXPFINDER_QLOG_MAX_BYTES") int_of_string_opt with
      | Some n when n >= 4096 -> n
      | Some _ | None -> default_max_bytes)

  let max_bytes () = !max_bytes_ref

  let set_max_bytes n = max_bytes_ref := Stdlib.max 4096 n

  let chan : out_channel option ref = ref None

  let written = ref 0

  let next_seq = ref 0

  let close () =
    Option.iter close_out_noerr !chan;
    chan := None;
    written := 0

  (* Sink I/O failures (unwritable path, full disk) must not raise into
     the serving path: the sink is disabled with one stderr warning and
     queries keep being answered.  Pointing at a new sink re-arms the
     warning. *)
  let warned = ref false

  let disable_sink exn =
    if not !warned then begin
      warned := true;
      Printf.eprintf "expfinder: query log disabled: %s\n%!" (Printexc.to_string exn)
    end;
    close ();
    sink_path := None

  let set_sink path =
    close ();
    warned := false;
    sink_path := normalize_sink path

  let sink () = !sink_path

  let enabled () = !sink_path <> None

  let event_json e =
    Json.Obj
      (List.concat
         [
           [
             ("v", Json.Int schema_version);
             ("seq", Json.Int e.seq);
             ("ts_unix", Json.Float e.ts_unix);
             ("kind", Json.Str (kind_name e.kind));
             ("graph_id", Json.Int e.graph_id);
             ("epoch", Json.Int e.epoch);
             ("query", Json.Str e.query);
             ("strategy", Json.Str e.strategy);
             ("duration_ms", Json.Float e.duration_ms);
             ("pairs", Json.Int e.pairs);
             ("digest", Json.Str e.digest);
             ("slow", Json.Bool e.slow);
             ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) e.counters));
           ];
           (match e.error with None -> [] | Some m -> [ ("error", Json.Str m) ]);
           (match e.payload with None -> [] | Some p -> [ ("payload", p) ]);
         ])

  let event_of_json json =
    let str k = Option.bind (Json.member k json) Json.str_opt in
    let int k = Option.bind (Json.member k json) Json.int_opt in
    let float k = Option.bind (Json.member k json) Json.float_opt in
    match Json.member "v" json with
    | Some (Json.Int v) when v = schema_version -> (
      match (int "seq", Option.bind (str "kind") kind_of_name, str "query") with
      | Some seq, Some kind, Some query ->
        Ok
          {
            seq;
            ts_unix = Option.value ~default:0.0 (float "ts_unix");
            kind;
            graph_id = Option.value ~default:0 (int "graph_id");
            epoch = Option.value ~default:0 (int "epoch");
            query;
            strategy = Option.value ~default:"" (str "strategy");
            duration_ms = Option.value ~default:0.0 (float "duration_ms");
            counters =
              (match Json.member "counters" json with
              | Some (Json.Obj kv) ->
                List.filter_map (fun (k, v) -> Option.map (fun n -> (k, n)) (Json.int_opt v)) kv
              | _ -> []);
            pairs = Option.value ~default:0 (int "pairs");
            digest = Option.value ~default:"" (str "digest");
            slow =
              (match Json.member "slow" json with Some (Json.Bool b) -> b | _ -> false);
            error = str "error";
            payload = Json.member "payload" json;
          }
      | _ -> Error "qlog event lacks a seq, kind or query field"
      )
    | Some (Json.Int v) -> Error (Printf.sprintf "unsupported qlog schema version %d" v)
    | Some _ | None -> Error "not a qlog event (no integer \"v\" field)"

  let rotated_path path = path ^ ".1"

  let open_sink path =
    let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path in
    chan := Some oc;
    written := out_channel_length oc

  let rotate path =
    close ();
    (try Sys.remove (rotated_path path) with Sys_error _ -> ());
    (try Sys.rename path (rotated_path path) with Sys_error _ -> ());
    open_sink path

  let emit ~kind ~graph_id ~epoch ~query ~strategy ~duration_ms ~counters ~pairs ~digest
      ?error ?payload () =
    match !sink_path with
    | None -> ()
    | Some path ->
      let seq = !next_seq in
      next_seq := seq + 1;
      let slow =
        match Recorder.slow_threshold_ms () with Some t -> duration_ms >= t | None -> false
      in
      let e =
        {
          seq;
          ts_unix = Unix.gettimeofday ();
          kind;
          graph_id;
          epoch;
          query;
          strategy;
          duration_ms;
          counters;
          pairs;
          digest;
          slow;
          error;
          payload;
        }
      in
      let line = Json.to_string (event_json e) ^ "\n" in
      (try
         if !chan = None then open_sink path;
         if !written > 0 && !written + String.length line > !max_bytes_ref then rotate path;
         match !chan with
         | Some oc ->
           output_string oc line;
           flush oc;
           written := !written + String.length line
         | None -> ()
       with (Sys_error _ | Unix.Unix_error _) as exn -> disable_sink exn)

  let load path =
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | exception Sys_error e -> Error e
    | text ->
      let rec parse acc lineno = function
        | [] -> Ok (List.rev acc)
        | line :: rest ->
          if String.trim line = "" then parse acc (lineno + 1) rest
          else (
            match Json.of_string line with
            | Error e -> Error (Printf.sprintf "%s:%d: invalid JSON: %s" path lineno e)
            | Ok json -> (
              match event_of_json json with
              | Error e -> Error (Printf.sprintf "%s:%d: %s" path lineno e)
              | Ok ev -> parse (ev :: acc) (lineno + 1) rest))
      in
      parse [] 1 (String.split_on_char '\n' text)
end

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                           *)
(* ------------------------------------------------------------------ *)

module Prometheus = struct
  (* Prometheus metric names admit [a-zA-Z0-9_:] only; the registry's
     dotted names map '.' (and any other byte) to '_', under an
     "expfinder_" namespace prefix. *)
  let sanitize name =
    String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
      name

  let metric_name name = "expfinder_" ^ sanitize name

  let add_float buf f =
    if Float.is_nan f then Buffer.add_string buf "NaN"
    else if f = Float.infinity then Buffer.add_string buf "+Inf"
    else if f = Float.neg_infinity then Buffer.add_string buf "-Inf"
    else Buffer.add_string buf (Printf.sprintf "%.9g" f)

  let render () =
    ignore (process_stats () : (string * int) list);
    let buf = Buffer.create 4096 in
    let line_int name v =
      Buffer.add_string buf name;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int v);
      Buffer.add_char buf '\n'
    in
    let line_float name v =
      Buffer.add_string buf name;
      Buffer.add_char buf ' ';
      add_float buf v;
      Buffer.add_char buf '\n'
    in
    let typ name kind = Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind) in
    let rows =
      Hashtbl.fold (fun name m acc -> (name, m) :: acc) Metrics.registry []
      |> List.sort compare
    in
    List.iter
      (fun (name, m) ->
        let n = metric_name name in
        match m with
        | Metrics.M_counter c ->
          typ n "counter";
          line_int n (Counter.value c)
        | Metrics.M_gauge g ->
          typ n "gauge";
          line_int n (Gauge.value g)
        | Metrics.M_histogram h ->
          typ n "summary";
          if Histogram.count h > 0 then
            List.iter
              (fun (q, p) ->
                line_float (Printf.sprintf "%s{quantile=\"%s\"}" n q) (Histogram.percentile h p))
              [ ("0.5", 0.5); ("0.95", 0.95); ("0.99", 0.99) ];
          line_float (n ^ "_sum") (Histogram.sum h);
          line_int (n ^ "_count") (Histogram.count h))
      rows;
    (* Sliding windows: live QPS / error rate / latency quantiles per
       operation class, as gauges over the last [window_s] seconds. *)
    let windows = Window.all () in
    if windows <> [] then begin
      List.iter
        (fun tn -> typ tn "gauge")
        [
          "expfinder_window_seconds";
          "expfinder_window_requests";
          "expfinder_window_errors";
          "expfinder_qps";
          "expfinder_error_rate";
          "expfinder_latency_ms";
        ];
      List.iter
        (fun (op, w) ->
          let s = Window.summary w in
          let lbl fmt = Printf.sprintf fmt (sanitize op) in
          line_int (lbl "expfinder_window_seconds{op=\"%s\"}") s.Window.window_s;
          line_int (lbl "expfinder_window_requests{op=\"%s\"}") s.Window.count;
          line_int (lbl "expfinder_window_errors{op=\"%s\"}") s.Window.errors;
          line_float (lbl "expfinder_qps{op=\"%s\"}") s.Window.qps;
          line_float (lbl "expfinder_error_rate{op=\"%s\"}") s.Window.error_rate;
          if s.Window.count > 0 then begin
            line_float
              (Printf.sprintf "expfinder_latency_ms{op=\"%s\",quantile=\"0.5\"}" (sanitize op))
              s.Window.p50;
            line_float
              (Printf.sprintf "expfinder_latency_ms{op=\"%s\",quantile=\"0.95\"}" (sanitize op))
              s.Window.p95;
            line_float
              (Printf.sprintf "expfinder_latency_ms{op=\"%s\",quantile=\"0.99\"}" (sanitize op))
              s.Window.p99
          end)
        windows
    end;
    Buffer.contents buf
end
