(* Global on/off switch.  Counters and spans check it through one
   dereference; nothing on a recording path allocates. *)

let on =
  ref
    (match Sys.getenv_opt "EXPFINDER_TELEMETRY" with
    | Some ("1" | "true" | "on") -> true
    | Some _ | None -> false)

let set_enabled b = on := b

let enabled () = !on

let now_us () = 1e6 *. Unix.gettimeofday ()

let time f =
  let t0 = now_us () in
  let result = f () in
  (result, (now_us () -. t0) /. 1000.0)

(* ------------------------------------------------------------------ *)
(* Counters and gauges                                                  *)
(* ------------------------------------------------------------------ *)

module Counter = struct
  type t = { cname : string; always : bool; mutable v : int }

  let create ?(always = false) cname = { cname; always; v = 0 }

  let name c = c.cname

  let add c n =
    if c.always || !on then
      c.v <- (if c.v > max_int - n then max_int else c.v + n)

  let incr c = add c 1

  let value c = c.v

  let reset c = c.v <- 0
end

module Gauge = struct
  type t = { gname : string; always : bool; mutable v : int }

  let create ?(always = false) gname = { gname; always; v = 0 }

  let name g = g.gname

  let set g n = if g.always || !on then g.v <- n

  let value g = g.v

  let reset g = g.v <- 0
end

(* ------------------------------------------------------------------ *)
(* Log-scale histograms                                                 *)
(* ------------------------------------------------------------------ *)

module Histogram = struct
  (* Geometric buckets, 8 per doubling, over [lo, lo * 2^(nbuckets/8)):
     bucket i holds samples in [lo * 2^(i/8), lo * 2^((i+1)/8)).  With
     lo = 1e-9 and 560 buckets the range spans 1e-9 .. ~1e12, enough
     for nanoseconds-as-seconds up to pair counts in the billions. *)
  let lo = 1e-9

  let per_doubling = 8.0

  let nbuckets = 560

  type t = {
    hname : string;
    always : bool;
    buckets : int array;
    mutable count : int;
    (* sum, min, max — kept in a float array so recording never boxes. *)
    state : float array;
  }

  let create ?(always = false) hname =
    { hname; always; buckets = Array.make nbuckets 0; count = 0; state = [| 0.0; 0.0; 0.0 |] }

  let name h = h.hname

  let bucket_of v =
    if v <= lo then 0
    else
      let i = int_of_float (Float.log2 (v /. lo) *. per_doubling) in
      if i < 0 then 0 else if i >= nbuckets then nbuckets - 1 else i

  let upper_bound i = lo *. Float.exp2 (float_of_int (i + 1) /. per_doubling)

  let observe h v =
    if h.always || !on then begin
      h.buckets.(bucket_of v) <- h.buckets.(bucket_of v) + 1;
      h.state.(0) <- h.state.(0) +. v;
      if h.count = 0 || v < h.state.(1) then h.state.(1) <- v;
      if h.count = 0 || v > h.state.(2) then h.state.(2) <- v;
      h.count <- h.count + 1
    end

  let count h = h.count

  let sum h = h.state.(0)

  let min_value h = if h.count = 0 then nan else h.state.(1)

  let max_value h = if h.count = 0 then nan else h.state.(2)

  let percentile h p =
    if h.count = 0 then nan
    else begin
      let p = Float.min 1.0 (Float.max 0.0 p) in
      let rank = Stdlib.max 1 (int_of_float (ceil (p *. float_of_int h.count))) in
      let seen = ref 0 and i = ref 0 in
      while !seen < rank && !i < nbuckets do
        seen := !seen + h.buckets.(!i);
        if !seen < rank then incr i
      done;
      Float.min (max_value h) (Float.max (min_value h) (upper_bound !i))
    end

  let reset h =
    Array.fill h.buckets 0 nbuckets 0;
    h.count <- 0;
    h.state.(0) <- 0.0;
    h.state.(1) <- 0.0;
    h.state.(2) <- 0.0
end

(* ------------------------------------------------------------------ *)
(* Registry                                                             *)
(* ------------------------------------------------------------------ *)

module Metrics = struct
  type metric =
    | M_counter of Counter.t
    | M_gauge of Gauge.t
    | M_histogram of Histogram.t

  let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

  let counter ?always name =
    match Hashtbl.find_opt registry name with
    | Some (M_counter c) -> c
    | Some _ -> invalid_arg ("Telemetry.Metrics.counter: " ^ name ^ " is not a counter")
    | None ->
      let c = Counter.create ?always name in
      Hashtbl.replace registry name (M_counter c);
      c

  let gauge ?always name =
    match Hashtbl.find_opt registry name with
    | Some (M_gauge g) -> g
    | Some _ -> invalid_arg ("Telemetry.Metrics.gauge: " ^ name ^ " is not a gauge")
    | None ->
      let g = Gauge.create ?always name in
      Hashtbl.replace registry name (M_gauge g);
      g

  let histogram ?always name =
    match Hashtbl.find_opt registry name with
    | Some (M_histogram h) -> h
    | Some _ ->
      invalid_arg ("Telemetry.Metrics.histogram: " ^ name ^ " is not a histogram")
    | None ->
      let h = Histogram.create ?always name in
      Hashtbl.replace registry name (M_histogram h);
      h

  let counters_snapshot () =
    Hashtbl.fold
      (fun name m acc ->
        match m with
        | M_counter c -> (name, Counter.value c) :: acc
        | M_gauge g -> (name, Gauge.value g) :: acc
        | M_histogram _ -> acc)
      registry []
    |> List.sort compare

  let delta ~before ~after =
    let base = Hashtbl.create 16 in
    List.iter (fun (name, v) -> Hashtbl.replace base name v) before;
    List.filter_map
      (fun (name, v) ->
        let d = v - Option.value ~default:0 (Hashtbl.find_opt base name) in
        if d = 0 then None else Some (name, d))
      after

  let reset_all () =
    Hashtbl.iter
      (fun _ -> function
        | M_counter c -> Counter.reset c
        | M_gauge g -> Gauge.reset g
        | M_histogram h -> Histogram.reset h)
      registry

  let pp ppf () =
    let rows =
      Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry [] |> List.sort compare
    in
    List.iter
      (fun (name, m) ->
        match m with
        | M_counter c -> Format.fprintf ppf "%-40s %d@." name (Counter.value c)
        | M_gauge g -> Format.fprintf ppf "%-40s %d (gauge)@." name (Gauge.value g)
        | M_histogram h ->
          if Histogram.count h = 0 then Format.fprintf ppf "%-40s (empty)@." name
          else
            Format.fprintf ppf
              "%-40s count=%d sum=%.3f min=%.4f p50=%.4f p95=%.4f p99=%.4f max=%.4f@."
              name (Histogram.count h) (Histogram.sum h) (Histogram.min_value h)
              (Histogram.percentile h 0.50) (Histogram.percentile h 0.95)
              (Histogram.percentile h 0.99) (Histogram.max_value h))
      rows
end

(* ------------------------------------------------------------------ *)
(* Spans                                                                *)
(* ------------------------------------------------------------------ *)

module Span = struct
  type t = {
    sname : string;
    sstart : float; (* absolute epoch microseconds *)
    mutable dur_us : float;
    mutable rev_attrs : (string * string) list;
    mutable rev_kids : t list;
  }

  let make ?(attrs = []) sname =
    { sname; sstart = now_us (); dur_us = 0.0; rev_attrs = List.rev attrs; rev_kids = [] }

  let name s = s.sname

  let duration_ms s = s.dur_us /. 1000.0

  let attrs s = List.rev s.rev_attrs

  let children s = List.rev s.rev_kids

  (* Start time relative to an explicit origin (used by the exporter). *)
  let start_rel ~origin s = s.sstart -. origin

  let rec find s name =
    if s.sname = name then Some s
    else
      List.fold_left
        (fun acc kid -> match acc with Some _ -> acc | None -> find kid name)
        None (children s)

  let rec preorder_names s = s.sname :: List.concat_map preorder_names (children s)

  let pp_tree ppf s =
    let rec go indent s =
      Format.fprintf ppf "%s%-*s %8.3f ms" indent
        (Stdlib.max 1 (28 - String.length indent))
        s.sname (duration_ms s);
      List.iter (fun (k, v) -> Format.fprintf ppf "  %s=%s" k v) (attrs s);
      Format.pp_print_newline ppf ();
      List.iter (go (indent ^ "  ")) (children s)
    in
    go "" s

  let json_escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let to_chrome_json s =
    let origin = s.sstart in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "[";
    let first = ref true in
    let rec emit sp =
      if not !first then Buffer.add_string buf ",\n";
      first := false;
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"expfinder\",\"ph\":\"X\",\"ts\":%.1f,\"dur\":%.1f,\"pid\":1,\"tid\":1"
           (json_escape sp.sname) (start_rel ~origin sp) sp.dur_us);
      (match attrs sp with
      | [] -> ()
      | kvs ->
        Buffer.add_string buf ",\"args\":{";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string buf ",";
            Buffer.add_string buf
              (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
          kvs;
        Buffer.add_string buf "}");
      Buffer.add_string buf "}";
      List.iter emit (children sp)
    in
    emit s;
    Buffer.add_string buf "]\n";
    Buffer.contents buf
end

(* The tracer: a stack of open spans.  Spans are only recorded while a
   [collect] is active, so an enabled-but-untraced process accumulates
   nothing. *)
let stack : Span.t list ref = ref []

let close (s : Span.t) = s.Span.dur_us <- now_us () -. s.Span.sstart

let with_span ?attrs name f =
  if (not !on) || !stack = [] then f ()
  else begin
    let s = Span.make ?attrs name in
    let parent = List.hd !stack in
    stack := s :: !stack;
    let finish () =
      close s;
      (match !stack with
      | top :: rest when top == s -> stack := rest
      | _ -> ());
      parent.Span.rev_kids <- s :: parent.Span.rev_kids
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

let annotate k v =
  match !stack with
  | [] -> ()
  | s :: _ -> s.Span.rev_attrs <- (k, v) :: s.Span.rev_attrs

let annotate_int k v = if !on && !stack <> [] then annotate k (string_of_int v)

let collect ?attrs name f =
  if not !on then (f (), None)
  else if !stack <> [] then (with_span ?attrs name f, None)
  else begin
    let s = Span.make ?attrs name in
    stack := [ s ];
    let finish () =
      close s;
      stack := []
    in
    match f () with
    | v ->
      finish ();
      (v, Some s)
    | exception e ->
      finish ();
      raise e
  end
