(* Global on/off switch.  Counters and spans check it through one
   dereference; nothing on a recording path allocates. *)

let on =
  ref
    (match Sys.getenv_opt "EXPFINDER_TELEMETRY" with
    | Some ("1" | "true" | "on") -> true
    | Some _ | None -> false)

let set_enabled b = on := b

let enabled () = !on

(* Process start time, captured at module initialisation: the base of
   the uptime gauge and the postmortem header. *)
let start_unix = Unix.gettimeofday ()

let now_us () = 1e6 *. Unix.gettimeofday ()

let time f =
  let t0 = now_us () in
  let result = f () in
  (result, (now_us () -. t0) /. 1000.0)

(* ------------------------------------------------------------------ *)
(* JSON                                                                 *)
(* ------------------------------------------------------------------ *)

(* A dependency-free JSON value, emitter and parser: everything the
   observability layer serializes (metric registries, span trees, bench
   reports, flight-recorder dumps) goes through this one module, and
   [bench-diff] reads reports back with the same code. *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  (* nan/inf have no JSON representation; emit null so consumers see an
     explicit absence instead of a parse error. *)
  let add_float buf f =
    if not (Float.is_finite f) then Buffer.add_string buf "null"
    else if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string buf (Printf.sprintf "%.1f" f)
    else Buffer.add_string buf (Printf.sprintf "%.12g" f)

  let to_string ?(pretty = false) v =
    let buf = Buffer.create 256 in
    let newline depth =
      Buffer.add_char buf '\n';
      for _ = 1 to depth do
        Buffer.add_string buf "  "
      done
    in
    let rec go depth = function
      | Null -> Buffer.add_string buf "null"
      | Bool b -> Buffer.add_string buf (string_of_bool b)
      | Int n -> Buffer.add_string buf (string_of_int n)
      | Float f -> add_float buf f
      | Str s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
      | Arr [] -> Buffer.add_string buf "[]"
      | Arr items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            if pretty then newline (depth + 1);
            go (depth + 1) item)
          items;
        if pretty then newline depth;
        Buffer.add_char buf ']'
      | Obj [] -> Buffer.add_string buf "{}"
      | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char buf ',';
            if pretty then newline (depth + 1);
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf "\":";
            if pretty then Buffer.add_char buf ' ';
            go (depth + 1) item)
          fields;
        if pretty then newline depth;
        Buffer.add_char buf '}'
    in
    go 0 v;
    if pretty then Buffer.add_char buf '\n';
    Buffer.contents buf

  exception Parse_error of string

  let of_string text =
    let n = String.length text in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some text.[!pos] else None in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        incr pos;
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> incr pos
      | _ -> fail (Printf.sprintf "expected '%c'" c)
    in
    let literal word v =
      if !pos + String.length word <= n && String.sub text !pos (String.length word) = word
      then begin
        pos := !pos + String.length word;
        v
      end
      else fail ("expected " ^ word)
    in
    let add_utf8 buf cp =
      if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
      else if cp < 0x800 then begin
        Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
        Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
      end
      else begin
        Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
        Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
        Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
      end
    in
    let hex4 () =
      if !pos + 4 > n then fail "truncated \\u escape";
      let s = String.sub text !pos 4 in
      pos := !pos + 4;
      match int_of_string_opt ("0x" ^ s) with
      | Some v -> v
      | None -> fail "bad \\u escape"
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec loop () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> incr pos
        | Some '\\' ->
          incr pos;
          (match peek () with
          | Some '"' ->
            incr pos;
            Buffer.add_char buf '"'
          | Some '\\' ->
            incr pos;
            Buffer.add_char buf '\\'
          | Some '/' ->
            incr pos;
            Buffer.add_char buf '/'
          | Some 'n' ->
            incr pos;
            Buffer.add_char buf '\n'
          | Some 'r' ->
            incr pos;
            Buffer.add_char buf '\r'
          | Some 't' ->
            incr pos;
            Buffer.add_char buf '\t'
          | Some 'b' ->
            incr pos;
            Buffer.add_char buf '\b'
          | Some 'f' ->
            incr pos;
            Buffer.add_char buf '\012'
          | Some 'u' ->
            incr pos;
            let cp = hex4 () in
            (* Surrogates would need pairing; we never emit them, so map
               a stray one to U+FFFD instead of producing bad UTF-8. *)
            add_utf8 buf (if cp >= 0xd800 && cp <= 0xdfff then 0xfffd else cp)
          | _ -> fail "bad escape");
          loop ()
        | Some c ->
          incr pos;
          Buffer.add_char buf c;
          loop ()
      in
      loop ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let numeric = function '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false in
      while (match peek () with Some c when numeric c -> true | _ -> false) do
        incr pos
      done;
      let tok = String.sub text start (!pos - start) in
      if String.exists (function '.' | 'e' | 'E' -> true | _ -> false) tok then
        match float_of_string_opt tok with Some f -> Float f | None -> fail "bad number"
      else
        match int_of_string_opt tok with
        | Some v -> Int v
        | None -> (
          match float_of_string_opt tok with Some f -> Float f | None -> fail "bad number")
    in
    let rec parse_value depth =
      if depth > 512 then fail "nesting too deep";
      skip_ws ();
      match peek () with
      | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
              incr pos;
              members ((key, v) :: acc)
            | Some '}' ->
              incr pos;
              Obj (List.rev ((key, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
      | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
              incr pos;
              elements (v :: acc)
            | Some ']' ->
              incr pos;
              Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
        end
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> parse_number ()
      | None -> fail "unexpected end of input"
    in
    match
      let v = parse_value 0 in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Parse_error msg -> Error msg

  let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

  let str_opt = function Str s -> Some s | _ -> None

  let int_opt = function Int n -> Some n | _ -> None

  let float_opt = function Float f -> Some f | Int n -> Some (float_of_int n) | _ -> None

  let list_opt = function Arr l -> Some l | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Counters and gauges                                                  *)
(* ------------------------------------------------------------------ *)

module Counter = struct
  (* Atomic cell: counters are bumped from every worker domain (the
     parallel evaluation paths tally locally and flush once per region,
     but the serving pool still increments per-request counters
     concurrently).  fetch_and_add keeps totals exact — the old plain
     cell lost increments under concurrency. *)
  type t = { cname : string; always : bool; v : int Atomic.t }

  let create ?(always = false) cname = { cname; always; v = Atomic.make 0 }

  let name c = c.cname

  let add c n =
    if c.always || !on then
      let before = Atomic.fetch_and_add c.v n in
      (* Saturate instead of wrapping; the set races other adds but any
         interleaving still lands on max_int. *)
      if before > max_int - n then Atomic.set c.v max_int

  let incr c = add c 1

  let value c = Atomic.get c.v

  let reset c = Atomic.set c.v 0
end

module Gauge = struct
  type t = { gname : string; always : bool; v : int Atomic.t }

  let create ?(always = false) gname = { gname; always; v = Atomic.make 0 }

  let name g = g.gname

  let set g n = if g.always || !on then Atomic.set g.v n

  let value g = Atomic.get g.v

  let reset g = Atomic.set g.v 0
end

(* ------------------------------------------------------------------ *)
(* Log-scale histograms                                                 *)
(* ------------------------------------------------------------------ *)

module Histogram = struct
  (* Geometric buckets, 8 per doubling, over [lo, lo * 2^(nbuckets/8)):
     bucket i holds samples in [lo * 2^(i/8), lo * 2^((i+1)/8)).  With
     lo = 1e-9 and 560 buckets the range spans 1e-9 .. ~1e12, enough
     for nanoseconds-as-seconds up to pair counts in the billions. *)
  let lo = 1e-9

  let per_doubling = 8.0

  let nbuckets = 560

  type t = {
    hname : string;
    always : bool;
    buckets : int array;
    mutable count : int;
    (* sum, min, max — kept in a float array so recording never boxes. *)
    state : float array;
    (* Guards every field above: observations arrive from all worker
       domains, and min/max/count updates are read-modify-write, so a
       lone Atomic would not do.  Readers take the lock too — summaries
       are scrape-rate, not hot-path. *)
    hm : Mutex.t;
  }

  let create ?(always = false) hname =
    {
      hname;
      always;
      buckets = Array.make nbuckets 0;
      count = 0;
      state = [| 0.0; 0.0; 0.0 |];
      hm = Mutex.create ();
    }

  let name h = h.hname

  let bucket_of v =
    if v <= lo then 0
    else
      let i = int_of_float (Float.log2 (v /. lo) *. per_doubling) in
      if i < 0 then 0 else if i >= nbuckets then nbuckets - 1 else i

  let upper_bound i = lo *. Float.exp2 (float_of_int (i + 1) /. per_doubling)

  let observe h v =
    if h.always || !on then begin
      Mutex.lock h.hm;
      h.buckets.(bucket_of v) <- h.buckets.(bucket_of v) + 1;
      h.state.(0) <- h.state.(0) +. v;
      if h.count = 0 || v < h.state.(1) then h.state.(1) <- v;
      if h.count = 0 || v > h.state.(2) then h.state.(2) <- v;
      h.count <- h.count + 1;
      Mutex.unlock h.hm
    end

  let locked h f =
    Mutex.lock h.hm;
    let r = f () in
    Mutex.unlock h.hm;
    r

  let count h = locked h (fun () -> h.count)

  let sum h = locked h (fun () -> h.state.(0))

  let min_value h = locked h (fun () -> if h.count = 0 then nan else h.state.(1))

  let max_value h = locked h (fun () -> if h.count = 0 then nan else h.state.(2))

  (* Resolve a rank against an arbitrary log-bucket count array (shared
     with the sliding-window aggregator, which merges several per-second
     bucket arrays before asking for percentiles). *)
  let rank_in_buckets buckets ~rank ~mn ~mx =
    let seen = ref 0 and i = ref 0 in
    while !seen < rank && !i < nbuckets do
      seen := !seen + buckets.(!i);
      if !seen < rank then incr i
    done;
    Float.min mx (Float.max mn (upper_bound !i))

  let percentile h p =
    locked h (fun () ->
        if h.count = 0 then nan
        else
          let p = Float.min 1.0 (Float.max 0.0 p) in
          let mn = h.state.(1) and mx = h.state.(2) in
          (* The extremes are tracked exactly; only interior percentiles
             pay the bucket-resolution error. *)
          if p = 0.0 then mn
          else if p = 1.0 then mx
          else
            let rank =
              Stdlib.max 1 (int_of_float (ceil (p *. float_of_int h.count)))
            in
            rank_in_buckets h.buckets ~rank ~mn ~mx)

  let reset h =
    locked h (fun () ->
        Array.fill h.buckets 0 nbuckets 0;
        h.count <- 0;
        h.state.(0) <- 0.0;
        h.state.(1) <- 0.0;
        h.state.(2) <- 0.0)
end

(* ------------------------------------------------------------------ *)
(* Registry                                                             *)
(* ------------------------------------------------------------------ *)

module Metrics = struct
  type metric =
    | M_counter of Counter.t
    | M_gauge of Gauge.t
    | M_histogram of Histogram.t

  let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

  (* The sampler thread enumerates the registry on every tick while the
     connection handler registers gauges lazily; Hashtbl offers no
     atomicity whatsoever under that interleaving (a resize mid-fold is
     a crash).  Every touch of [registry] goes through this lock; the
     individual Counter/Gauge cells stay lock-free as before.  Callbacks
     run under the lock never re-enter the registry. *)
  let registry_mutex = Mutex.create ()

  let with_registry f = Mutex.protect registry_mutex f

  (* Sorted enumeration for the exporters (to_json/pp here, Prometheus
     render, timeseries sampling): the fold happens under the lock, the
     caller's rendering does not. *)
  let rows () =
    with_registry (fun () ->
        Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry [])
    |> List.sort compare

  let counter ?always name =
    with_registry (fun () ->
        match Hashtbl.find_opt registry name with
        | Some (M_counter c) -> c
        | Some _ ->
          invalid_arg ("Telemetry.Metrics.counter: " ^ name ^ " is not a counter")
        | None ->
          let c = Counter.create ?always name in
          Hashtbl.replace registry name (M_counter c);
          c)

  let gauge ?always name =
    with_registry (fun () ->
        match Hashtbl.find_opt registry name with
        | Some (M_gauge g) -> g
        | Some _ -> invalid_arg ("Telemetry.Metrics.gauge: " ^ name ^ " is not a gauge")
        | None ->
          let g = Gauge.create ?always name in
          Hashtbl.replace registry name (M_gauge g);
          g)

  let histogram ?always name =
    with_registry (fun () ->
        match Hashtbl.find_opt registry name with
        | Some (M_histogram h) -> h
        | Some _ ->
          invalid_arg ("Telemetry.Metrics.histogram: " ^ name ^ " is not a histogram")
        | None ->
          let h = Histogram.create ?always name in
          Hashtbl.replace registry name (M_histogram h);
          h)

  let counters_snapshot () =
    with_registry (fun () ->
        Hashtbl.fold
          (fun name m acc ->
            match m with
            | M_counter c -> (name, Counter.value c) :: acc
            | M_gauge g -> (name, Gauge.value g) :: acc
            | M_histogram _ -> acc)
          registry [])
    |> List.sort compare

  let delta ~before ~after =
    let base = Hashtbl.create 16 in
    List.iter (fun (name, v) -> Hashtbl.replace base name v) before;
    List.filter_map
      (fun (name, v) ->
        let d = v - Option.value ~default:0 (Hashtbl.find_opt base name) in
        if d = 0 then None else Some (name, d))
      after

  let reset_all () =
    with_registry (fun () ->
        Hashtbl.iter
          (fun _ -> function
            | M_counter c -> Counter.reset c
            | M_gauge g -> Gauge.reset g
            | M_histogram h -> Histogram.reset h)
          registry)

  let to_json () =
    let rows = rows () in
    Json.Obj
      (List.map
         (fun (name, m) ->
           ( name,
             match m with
             | M_counter c -> Json.Obj [ ("kind", Json.Str "counter"); ("value", Json.Int (Counter.value c)) ]
             | M_gauge g -> Json.Obj [ ("kind", Json.Str "gauge"); ("value", Json.Int (Gauge.value g)) ]
             | M_histogram h ->
               Json.Obj
                 [
                   ("kind", Json.Str "histogram");
                   ("count", Json.Int (Histogram.count h));
                   ("sum", Json.Float (Histogram.sum h));
                   ("min", Json.Float (Histogram.min_value h));
                   ("max", Json.Float (Histogram.max_value h));
                   ("p50", Json.Float (Histogram.percentile h 0.50));
                   ("p95", Json.Float (Histogram.percentile h 0.95));
                   ("p99", Json.Float (Histogram.percentile h 0.99));
                 ] ))
         rows)

  let pp ppf () =
    let rows = rows () in
    List.iter
      (fun (name, m) ->
        match m with
        | M_counter c -> Format.fprintf ppf "%-40s %d@." name (Counter.value c)
        | M_gauge g -> Format.fprintf ppf "%-40s %d (gauge)@." name (Gauge.value g)
        | M_histogram h ->
          if Histogram.count h = 0 then Format.fprintf ppf "%-40s (empty)@." name
          else
            Format.fprintf ppf
              "%-40s count=%d sum=%.3f min=%.4f p50=%.4f p95=%.4f p99=%.4f max=%.4f@."
              name (Histogram.count h) (Histogram.sum h) (Histogram.min_value h)
              (Histogram.percentile h 0.50) (Histogram.percentile h 0.95)
              (Histogram.percentile h 0.99) (Histogram.max_value h))
      rows
end

(* ------------------------------------------------------------------ *)
(* Spans                                                                *)
(* ------------------------------------------------------------------ *)

module Span = struct
  type t = {
    sname : string;
    sstart : float; (* absolute epoch microseconds *)
    mutable dur_us : float;
    mutable rev_attrs : (string * string) list;
    mutable rev_kids : t list;
  }

  let make ?(attrs = []) sname =
    { sname; sstart = now_us (); dur_us = 0.0; rev_attrs = List.rev attrs; rev_kids = [] }

  let name s = s.sname

  let duration_ms s = s.dur_us /. 1000.0

  let attrs s = List.rev s.rev_attrs

  let children s = List.rev s.rev_kids

  (* Start time relative to an explicit origin (used by the exporter). *)
  let start_rel ~origin s = s.sstart -. origin

  let rec find s name =
    if s.sname = name then Some s
    else
      List.fold_left
        (fun acc kid -> match acc with Some _ -> acc | None -> find kid name)
        None (children s)

  let rec preorder_names s = s.sname :: List.concat_map preorder_names (children s)

  let pp_tree ppf s =
    let rec go indent s =
      Format.fprintf ppf "%s%-*s %8.3f ms" indent
        (Stdlib.max 1 (28 - String.length indent))
        s.sname (duration_ms s);
      List.iter (fun (k, v) -> Format.fprintf ppf "  %s=%s" k v) (attrs s);
      Format.pp_print_newline ppf ();
      List.iter (go (indent ^ "  ")) (children s)
    in
    go "" s

  let json_escape = Json.escape

  let rec to_json s =
    Json.Obj
      [
        ("name", Json.Str s.sname);
        ("duration_ms", Json.Float (duration_ms s));
        ("attrs", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) (attrs s)));
        ("children", Json.Arr (List.map to_json (children s)));
      ]

  (* Inverse of [to_json], as far as the serialized shape allows: start
     times are not serialized, so reconstructed spans carry durations
     (and the tree shape) but a zero origin.  That is all the trace
     explorer needs — self-times and the critical path are functions of
     durations alone. *)
  let rec of_json json =
    match Option.bind (Json.member "name" json) Json.str_opt with
    | None -> None
    | Some sname ->
      let dur_ms =
        match Option.bind (Json.member "duration_ms" json) Json.float_opt with
        | Some f -> f
        | None -> 0.0
      in
      let attrs =
        match Json.member "attrs" json with
        | Some (Json.Obj kv) ->
          List.filter_map (fun (k, v) -> Option.map (fun s -> (k, s)) (Json.str_opt v)) kv
        | _ -> []
      in
      let kids =
        match Json.member "children" json with
        | Some (Json.Arr l) -> List.filter_map of_json l
        | _ -> []
      in
      Some
        {
          sname;
          sstart = 0.0;
          dur_us = dur_ms *. 1000.0;
          rev_attrs = List.rev attrs;
          rev_kids = List.rev kids;
        }

  (* Time spent in a span itself, outside any child span (clamped at 0:
     buckets of a torn read or rounding can make children sum past the
     parent). *)
  let self_ms s =
    Float.max 0.0
      (duration_ms s -. List.fold_left (fun acc k -> acc +. duration_ms k) 0.0 (children s))

  (* The critical path: from the root, repeatedly descend into the
     longest child.  With only one clock (durations, no concurrency
     inside a request yet) the longest chain is the chain that bounds
     the request's latency. *)
  let critical_path s =
    let rec go acc s =
      match children s with
      | [] -> List.rev (s :: acc)
      | kids ->
        let longest =
          List.fold_left (fun best k -> if duration_ms k > duration_ms best then k else best)
            (List.hd kids) kids
        in
        go (s :: acc) longest
    in
    go [] s

  let pp_annotated ppf s =
    let crit = critical_path s in
    let on_path sp = List.memq sp crit in
    let rec go indent sp =
      Format.fprintf ppf "%s%s %-*s %9.3f ms  self %9.3f ms"
        (if on_path sp then "*" else " ")
        indent
        (Stdlib.max 1 (30 - String.length indent))
        sp.sname (duration_ms sp) (self_ms sp);
      List.iter (fun (k, v) -> Format.fprintf ppf "  %s=%s" k v) (attrs sp);
      Format.pp_print_newline ppf ();
      List.iter (go (indent ^ "  ")) (children sp)
    in
    go "" s

  (* Chrome lanes: with a trace context, derive the process lane from
     the trace id and the thread lane from the root span id so exports
     from concurrent requests land in distinct lanes instead of
     interleaving.  Without one (single-query [explain --trace]) the
     output stays byte-identical to the historical pid/tid 1/1. *)
  let lane_of_hex hex =
    let n = Stdlib.min 8 (String.length hex) in
    let acc = ref 0 in
    String.iter
      (fun c ->
        let d =
          match c with
          | '0' .. '9' -> Char.code c - Char.code '0'
          | 'a' .. 'f' -> 10 + Char.code c - Char.code 'a'
          | 'A' .. 'F' -> 10 + Char.code c - Char.code 'A'
          | _ -> 0
        in
        acc := ((!acc * 16) + d) land 0x3FFFFFFF)
      (String.sub hex 0 n);
    1 + !acc

  let to_chrome_json ?trace_id ?span_id s =
    let pid = match trace_id with Some t when t <> "" -> lane_of_hex t | _ -> 1 in
    let tid = match span_id with Some i when i <> "" -> lane_of_hex i | _ -> pid in
    let origin = s.sstart in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "[";
    let first = ref true in
    let rec emit sp =
      if not !first then Buffer.add_string buf ",\n";
      first := false;
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"expfinder\",\"ph\":\"X\",\"ts\":%.1f,\"dur\":%.1f,\"pid\":%d,\"tid\":%d"
           (json_escape sp.sname) (start_rel ~origin sp) sp.dur_us pid tid);
      (match attrs sp with
      | [] -> ()
      | kvs ->
        Buffer.add_string buf ",\"args\":{";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string buf ",";
            Buffer.add_string buf
              (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
          kvs;
        Buffer.add_string buf "}");
      Buffer.add_string buf "}";
      List.iter emit (children sp)
    in
    emit s;
    Buffer.add_string buf "]\n";
    Buffer.contents buf
end

(* The tracer.  Request identity is an explicit, immutable context —
   128-bit trace id plus 64-bit root-span id, minted per request (or
   adopted from the wire) — and the chain of open spans under the
   active [collect] is domain-local state, not a process-global: two
   domains (the future multicore serving path) each trace their own
   request without ever observing the other's stack. *)
module Trace = struct
  type ctx = {
    trace_id : string;  (* 32 lowercase hex chars; "" for the ambient context *)
    span_id : string;  (* 16 lowercase hex chars; "" for the ambient context *)
    sampled : bool;  (* request asked for span recording even when tracing is off *)
  }

  (* Mixed into every minted id so two requests in the same microsecond
     still differ.  [Random.self_init] is banned (dsafe), so ids hash
     wall clock + pid + this counter through MD5 — not secure, but
     unique, which is all a correlation id needs. *)
  let seq = Atomic.make 0

  let hex_digest salt =
    Digest.to_hex
      (Digest.string
         (Printf.sprintf "%.6f|%d|%d|%d" (Unix.gettimeofday ()) (Unix.getpid ())
            (Atomic.fetch_and_add seq 1) salt))

  let mint_trace_id () = hex_digest 0

  let mint_span_id () = String.sub (hex_digest 1) 0 16

  let is_hex s =
    s <> "" && String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) s

  let all_zero s = String.for_all (fun c -> c = '0') s

  let valid_trace_id s = String.length s = 32 && is_hex s && not (all_zero s)

  let valid_span_id s = String.length s = 16 && is_hex s && not (all_zero s)

  (* The default root context: identity-free, never sampled.  The
     legacy ambient API is a shim over this, so pre-context call sites
     behave exactly as before — spans record only while a [collect] is
     active and the global flag is on, and nothing carries an id. *)
  let ambient = { trace_id = ""; span_id = ""; sampled = false }

  let make ?(sampled = false) ?trace_id () =
    let tid =
      match trace_id with
      | Some t when valid_trace_id t -> t
      | Some _ | None -> mint_trace_id ()
    in
    { trace_id = tid; span_id = mint_span_id (); sampled }

  (* Wire forms.  [to_wire] is the compact "traceid-spanid" carried in
     the newline-JSON protocol's "trace" field; [to_traceparent] is the
     W3C-style "00-traceid-spanid-01" used on the HTTP endpoints.
     [of_wire] accepts either, case-insensitively; anything else is
     None and the caller mints a fresh context instead of erroring. *)
  let to_wire ctx = ctx.trace_id ^ "-" ^ ctx.span_id

  let to_traceparent ctx = Printf.sprintf "00-%s-%s-01" ctx.trace_id ctx.span_id

  let of_wire ?(sampled = false) s =
    let s = String.lowercase_ascii (String.trim s) in
    let adopt tid = Some { trace_id = tid; span_id = mint_span_id (); sampled } in
    match String.split_on_char '-' s with
    | [ tid; sid ] when valid_trace_id tid && valid_span_id sid -> adopt tid
    | [ ver; tid; sid; flags ]
      when String.length ver = 2
           && is_hex ver
           && valid_trace_id tid
           && valid_span_id sid
           && String.length flags = 2
           && is_hex flags ->
      adopt tid
    | _ -> None

  (* The open-span chain of the *current domain's* in-flight [collect].
     [Domain.DLS] rather than a global ref: the chain is request-local
     by construction (one request per domain at a time), so confining
     it to the domain removes the cross-thread hazard outright — the
     remaining allowlist entry records the confinement, not a risk. *)
  let open_spans : Span.t list Domain.DLS.key = Domain.DLS.new_key (fun () -> [])

  let spans () = Domain.DLS.get open_spans

  let set_spans l = Domain.DLS.set open_spans l

  let close (s : Span.t) = s.Span.dur_us <- now_us () -. s.Span.sstart

  (* Child spans attach under the innermost open span; with no open
     root (this request is not being recorded) the body runs bare. *)
  let with_span _ctx ?attrs name f =
    match spans () with
    | [] -> f ()
    | parent :: _ ->
      let s = Span.make ?attrs name in
      set_spans (s :: spans ());
      let finish () =
        close s;
        (match spans () with
        | top :: rest when top == s -> set_spans rest
        | _ -> ());
        parent.Span.rev_kids <- s :: parent.Span.rev_kids
      in
      (match f () with
      | v ->
        finish ();
        v
      | exception e ->
        finish ();
        raise e)

  let annotate k v =
    match spans () with
    | [] -> ()
    | s :: _ -> s.Span.rev_attrs <- (k, v) :: s.Span.rev_attrs

  let annotate_int k v = if spans () <> [] then annotate k (string_of_int v)

  (* Open a root span for [ctx] and run [f] under it.  Records when the
     process-wide flag is on *or* the context itself asked to be
     sampled, so a single traced request on an otherwise-quiet server
     still yields a span tree.  Nested collects degrade to child
     spans. *)
  let collect ctx ?attrs name f =
    if not (!on || ctx.sampled) then (f (), None)
    else if spans () <> [] then (with_span ctx ?attrs name f, None)
    else begin
      let s = Span.make ?attrs name in
      set_spans [ s ];
      let finish () =
        close s;
        set_spans []
      in
      match f () with
      | v ->
        finish ();
        (v, Some s)
      | exception e ->
        finish ();
        raise e
    end
end

(* Legacy ambient tracer API: thin shims over {!Trace} with the default
   root context, kept so pre-context call sites (the instrumented
   library internals) keep compiling unchanged. *)
let with_span ?attrs name f = Trace.with_span Trace.ambient ?attrs name f

let annotate = Trace.annotate

let annotate_int = Trace.annotate_int

let collect ?attrs name f = Trace.collect Trace.ambient ?attrs name f

(* ------------------------------------------------------------------ *)
(* Continuous folded-stack profiler                                     *)
(* ------------------------------------------------------------------ *)

(* Always-on aggregation of completed span trees into collapsed-stack
   lines ("frame;frame;frame <self-ns>", the flamegraph.pl/speedscope
   input format).  Unlike the flight recorder this never stores whole
   spans: each finished root is folded immediately into a bounded table
   of stack -> {count, inclusive ns, self ns}, so memory is O(distinct
   stacks) regardless of traffic volume.  Stacks are prefixed with the
   recording domain so cross-domain time splits are visible. *)
module Profile = struct
  type entry = {
    mutable p_count : int;
    mutable p_incl_ns : float;
    mutable p_self_ns : float;
  }

  type row = { stack : string; count : int; incl_ns : float; self_ns : float }

  let default_max_stacks =
    match Sys.getenv_opt "EXPFINDER_PROFILE_STACKS" with
    | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 4096)
    | None -> 4096

  (* All profiler state behind one lock: the fold table plus fold/drop
     counters.  Folds are rare (one per completed root span) and each
     holds the lock for O(tree) small hash operations, so a plain
     mutex is cheap; readers (exporters, /profile.folded) snapshot
     under the same lock. *)
  type profile_state = {
    plock : Mutex.t;
    tbl : (string, entry) Hashtbl.t;
    mutable max_stacks : int;
    mutable folded : int;
    mutable dropped : int;
  }

  let state =
    {
      plock = Mutex.create ();
      tbl = Hashtbl.create 256;
      max_stacks = default_max_stacks;
      folded = 0;
      dropped = 0;
    }

  (* Frames may contain user-chosen span names; ';' and ' ' are the
     folded format's structural characters, so they are rewritten. *)
  let sanitize name =
    String.map (fun c -> if c = ';' || c = ' ' then '_' else c) name

  (* Called with [plock] held. *)
  let touch stack ~incl_ns ~self_ns =
    match Hashtbl.find_opt state.tbl stack with
    | Some e ->
      e.p_count <- e.p_count + 1;
      e.p_incl_ns <- e.p_incl_ns +. incl_ns;
      e.p_self_ns <- e.p_self_ns +. self_ns
    | None ->
      if Hashtbl.length state.tbl >= state.max_stacks then
        state.dropped <- state.dropped + 1
      else
        Hashtbl.replace state.tbl stack
          { p_count = 1; p_incl_ns = incl_ns; p_self_ns = self_ns }

  let record (root : Span.t) =
    let domain = (Domain.self () :> int) in
    let prefix0 = Printf.sprintf "domain-%d" domain in
    Mutex.protect state.plock (fun () ->
        state.folded <- state.folded + 1;
        let rec walk prefix (s : Span.t) =
          let stack = prefix ^ ";" ^ sanitize s.Span.sname in
          touch stack
            ~incl_ns:(s.Span.dur_us *. 1000.0)
            ~self_ns:(Span.self_ms s *. 1e6);
          List.iter (walk stack) (Span.children s)
        in
        walk prefix0 root)

  let rows () =
    Mutex.protect state.plock (fun () ->
        Hashtbl.fold
          (fun stack e acc ->
            { stack; count = e.p_count; incl_ns = e.p_incl_ns; self_ns = e.p_self_ns }
            :: acc)
          state.tbl [])
    |> List.sort (fun a b -> compare a.stack b.stack)

  let top ?(n = 10) () =
    rows ()
    |> List.sort (fun a b -> compare b.self_ns a.self_ns)
    |> List.filteri (fun i _ -> i < n)

  (* Values are self-nanoseconds: summing a frame's own lines and its
     descendants' reconstructs inclusive time, which is exactly the
     contract flamegraph.pl and speedscope expect. *)
  let to_folded () =
    let b = Buffer.create 4096 in
    List.iter
      (fun r -> Buffer.add_string b (Printf.sprintf "%s %.0f\n" r.stack r.self_ns))
      (rows ());
    Buffer.contents b

  let reset () =
    Mutex.protect state.plock (fun () ->
        Hashtbl.reset state.tbl;
        state.folded <- 0;
        state.dropped <- 0)

  let folds () = Mutex.protect state.plock (fun () -> state.folded)

  let dropped () = Mutex.protect state.plock (fun () -> state.dropped)

  let max_stacks () = Mutex.protect state.plock (fun () -> state.max_stacks)

  let set_max_stacks n =
    if n > 0 then Mutex.protect state.plock (fun () -> state.max_stacks <- n)

  let to_json () =
    let stacks, folded, dropped =
      Mutex.protect state.plock (fun () ->
          (Hashtbl.length state.tbl, state.folded, state.dropped))
    in
    Json.Obj
      [
        ("stacks", Json.Int stacks);
        ("max_stacks", Json.Int (max_stacks ()));
        ("folded", Json.Int folded);
        ("dropped", Json.Int dropped);
      ]
end

(* ------------------------------------------------------------------ *)
(* Structured performance reports                                       *)
(* ------------------------------------------------------------------ *)

module Report = struct
  let schema_version = 1

  type sample_stats = {
    samples : float list;
    median : float;
    iqr : float;
    q1 : float;
    q3 : float;
  }

  (* Quartiles by linear interpolation between order statistics; the
     median of an even sample count is the mean of the middle pair. *)
  let stats_of_samples samples =
    match List.sort compare samples with
    | [] -> { samples = []; median = nan; iqr = nan; q1 = nan; q3 = nan }
    | sorted ->
      let arr = Array.of_list sorted in
      let n = Array.length arr in
      let quantile p =
        let pos = p *. float_of_int (n - 1) in
        let lo = int_of_float (Float.floor pos) in
        let hi = int_of_float (Float.ceil pos) in
        let frac = pos -. Float.floor pos in
        (arr.(lo) *. (1.0 -. frac)) +. (arr.(hi) *. frac)
      in
      let q1 = quantile 0.25 and q3 = quantile 0.75 in
      { samples; median = quantile 0.5; iqr = q3 -. q1; q1; q3 }

  type record = {
    id : string;
    experiment : string;
    units : string;
    params : (string * Json.t) list;
    stats : sample_stats;
  }

  type t = {
    tool : string;
    mode : string;
    created_unix : float;
    mutable rev_records : record list;
  }

  let create ?(tool = "expfinder-bench") ?(mode = "quick") () =
    { tool; mode; created_unix = Unix.time (); rev_records = [] }

  let experiment_of_id id =
    match String.index_opt id '.' with Some i -> String.sub id 0 i | None -> id

  let add t ~id ?experiment ?(units = "ms") ?(params = []) samples =
    let experiment =
      match experiment with Some e -> e | None -> experiment_of_id id
    in
    t.rev_records <-
      { id; experiment; units; params; stats = stats_of_samples samples } :: t.rev_records

  let records t = List.rev t.rev_records

  let record_json r =
    Json.Obj
      [
        ("id", Json.Str r.id);
        ("experiment", Json.Str r.experiment);
        ("unit", Json.Str r.units);
        ("params", Json.Obj r.params);
        ("samples", Json.Arr (List.map (fun s -> Json.Float s) r.stats.samples));
        ("median", Json.Float r.stats.median);
        ("iqr", Json.Float r.stats.iqr);
        ("q1", Json.Float r.stats.q1);
        ("q3", Json.Float r.stats.q3);
      ]

  let to_json t =
    Json.Obj
      [
        ("schema_version", Json.Int schema_version);
        ("tool", Json.Str t.tool);
        ("mode", Json.Str t.mode);
        ("created_unix", Json.Float t.created_unix);
        ("records", Json.Arr (List.map record_json (records t)));
      ]

  let write t path =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (Json.to_string ~pretty:true (to_json t)))

  let field_str json key default =
    Option.value ~default (Option.bind (Json.member key json) Json.str_opt)

  let parse_record item =
    match
      ( Option.bind (Json.member "id" item) Json.str_opt,
        Option.bind (Json.member "samples" item) Json.list_opt )
    with
    | Some id, Some sample_values -> (
      match List.filter_map Json.float_opt sample_values with
      | [] -> Error (Printf.sprintf "record %S has no numeric samples" id)
      | samples ->
        Ok
          {
            id;
            experiment = field_str item "experiment" (experiment_of_id id);
            units = field_str item "unit" "ms";
            params = (match Json.member "params" item with Some (Json.Obj kv) -> kv | _ -> []);
            (* Recomputed from the raw samples, so a report survives a
               hand edit of the derived fields. *)
            stats = stats_of_samples samples;
          }
      )
    | _ -> Error "record lacks an \"id\" or a \"samples\" array"

  let load path =
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | exception Sys_error e -> Error e
    | text -> (
      match Json.of_string text with
      | Error e -> Error ("invalid JSON: " ^ e)
      | Ok json -> (
        match Json.member "schema_version" json with
        | None -> Error "not a bench report (no schema_version)"
        | Some v when v <> Json.Int schema_version ->
          Error
            (Printf.sprintf "unsupported schema_version (this build reads version %d)"
               schema_version)
        | Some _ -> (
          match Option.bind (Json.member "records" json) Json.list_opt with
          | None -> Error "report has no records array"
          | Some items ->
            let rec build acc = function
              | [] ->
                Ok
                  {
                    tool = field_str json "tool" "?";
                    mode = field_str json "mode" "?";
                    created_unix =
                      Option.value ~default:0.0
                        (Option.bind (Json.member "created_unix" json) Json.float_opt);
                    rev_records = acc;
                  }
              | item :: rest -> (
                match parse_record item with
                | Ok r -> build (r :: acc) rest
                | Error e -> Error e)
            in
            build [] items)))

  type verdict = Regression | Improvement | Unchanged | Added | Removed

  type comparison = {
    cid : string;
    verdict : verdict;
    old_median : float;
    new_median : float;
    ratio : float;
  }

  let diff ?(threshold = 0.5) ?(min_ms = 0.05) ~baseline ~candidate () =
    let base_by_id = Hashtbl.create 64 in
    List.iter (fun r -> Hashtbl.replace base_by_id r.id r) (records baseline);
    let compared =
      List.map
        (fun nr ->
          match Hashtbl.find_opt base_by_id nr.id with
          | None ->
            { cid = nr.id; verdict = Added; old_median = nan; new_median = nr.stats.median; ratio = nan }
          | Some br ->
            Hashtbl.remove base_by_id nr.id;
            let om = br.stats.median and nm = nr.stats.median in
            let ratio = nm /. Float.max om 1e-9 in
            (* Noise rule: a shift only counts when the Tukey intervals
               [q1 - 1.5*iqr, q3 + 1.5*iqr] of the two runs do not
               overlap.  The raw [q1, q3] box is too narrow at the
               quick-mode sample counts (3 reps): two runs of the same
               binary routinely land disjoint under load jitter. *)
            let lo s = s.q1 -. (1.5 *. s.iqr) and hi s = s.q3 +. (1.5 *. s.iqr) in
            let overlap =
              lo br.stats <= hi nr.stats && lo nr.stats <= hi br.stats
            in
            let verdict =
              if om < min_ms && nm < min_ms then Unchanged
              else if ratio > 1.0 +. threshold && not overlap then Regression
              else if ratio < 1.0 /. (1.0 +. threshold) && not overlap then Improvement
              else Unchanged
            in
            { cid = nr.id; verdict; old_median = om; new_median = nm; ratio })
        (records candidate)
    in
    let removed =
      records baseline
      |> List.filter (fun r -> Hashtbl.mem base_by_id r.id)
      |> List.map (fun r ->
             { cid = r.id; verdict = Removed; old_median = r.stats.median; new_median = nan; ratio = nan })
    in
    compared @ removed

  let has_regression = List.exists (fun c -> c.verdict = Regression)

  let pp_diff ppf comps =
    let count v = List.length (List.filter (fun c -> c.verdict = v) comps) in
    List.iter
      (fun c ->
        match c.verdict with
        | Regression ->
          Format.fprintf ppf "  REGRESSION  %-42s %10.3f -> %10.3f ms  (%.2fx)@." c.cid
            c.old_median c.new_median c.ratio
        | Improvement ->
          Format.fprintf ppf "  improved    %-42s %10.3f -> %10.3f ms  (%.2fx)@." c.cid
            c.old_median c.new_median c.ratio
        | Added -> Format.fprintf ppf "  added       %-42s %10s -> %10.3f ms@." c.cid "-" c.new_median
        | Removed -> Format.fprintf ppf "  removed     %-42s %10.3f -> %10s ms@." c.cid c.old_median "-"
        | Unchanged -> ())
      comps;
    Format.fprintf ppf
      "bench-diff: %d record(s): %d regression(s), %d improvement(s), %d unchanged, %d added, \
       %d removed@."
      (List.length comps) (count Regression) (count Improvement) (count Unchanged) (count Added)
      (count Removed)
end

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                      *)
(* ------------------------------------------------------------------ *)

module Recorder = struct
  type event = {
    seq : int;
    query : string;
    strategy : string;
    duration_ms : float;
    slow : bool;
    trace_id : string;  (** "" when the request carried no trace context *)
    counters : (string * int) list;
  }

  let default_capacity = 64

  (* The ring size is sized once at startup from EXPFINDER_RECORDER_CAP
     (floor 1) and resizable at runtime; resizing drops the buffered
     history, which is the honest semantics for a ring that just changed
     shape. *)
  let initial_capacity =
    match Option.bind (Sys.getenv_opt "EXPFINDER_RECORDER_CAP") int_of_string_opt with
    | Some n when n >= 1 -> n
    | Some _ | None -> default_capacity

  (* Unlike the metrics/span machinery the recorder is always on: one
     array store per query, so there is always a tail of recent history
     to dump when something goes wrong. *)
  let slow_ms = ref (Option.bind (Sys.getenv_opt "EXPFINDER_SLOW_MS") float_of_string_opt)

  let set_slow_threshold_ms v = slow_ms := v

  let slow_threshold_ms () = !slow_ms

  (* The ring is swapped wholesale on resize/clear and the sequence
     counter claims slots, so both live in [Atomic]s: a reader (the
     /stats handler, the postmortem writer) always sees a coherent
     array even while another thread is recording, and two recorders
     never claim the same slot.  Slot stores stay plain writes — an
     event is one immutable boxed record, so a racing reader sees
     either the old event or the new one, never a torn one. *)
  let buf : event option array Atomic.t = Atomic.make (Array.make initial_capacity None)

  let next_seq = Atomic.make 0

  let capacity () = Array.length (Atomic.get buf)

  let set_capacity n =
    let n = Stdlib.max 1 n in
    if n <> Array.length (Atomic.get buf) then Atomic.set buf (Array.make n None)

  let record ?(trace_id = "") ~query ~strategy ~duration_ms ~counters () =
    let seq = Atomic.fetch_and_add next_seq 1 in
    let slow = match !slow_ms with Some t -> duration_ms >= t | None -> false in
    let b = Atomic.get buf in
    b.(seq mod Array.length b) <-
      Some { seq; query; strategy; duration_ms; slow; trace_id; counters }

  let recent () =
    Array.to_list (Atomic.get buf)
    |> List.filter_map Fun.id
    |> List.sort (fun a b -> compare a.seq b.seq)

  let slow_events () = List.filter (fun e -> e.slow) (recent ())

  (* Swap in a fresh array rather than filling in place: a concurrent
     [record] keeps writing its old array, which is then unreachable —
     losing that one event is fine, corrupting a shared one is not. *)
  let clear () =
    Atomic.set buf (Array.make (capacity ()) None);
    Atomic.set next_seq 0

  let event_json e =
    Json.Obj
      [
        ("seq", Json.Int e.seq);
        ("query", Json.Str e.query);
        ("strategy", Json.Str e.strategy);
        ("duration_ms", Json.Float e.duration_ms);
        ("slow", Json.Bool e.slow);
        ("trace_id", Json.Str e.trace_id);
        ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) e.counters));
      ]

  let to_json () = Json.Arr (List.map event_json (recent ()))

  let pp ppf () =
    match recent () with
    | [] -> Format.fprintf ppf "flight recorder: empty@."
    | events ->
      Format.fprintf ppf "flight recorder: %d event(s), capacity %d%s@." (List.length events)
        (capacity ())
        (match !slow_ms with
        | Some t -> Printf.sprintf ", slow >= %g ms" t
        | None -> ", no slow threshold (EXPFINDER_SLOW_MS unset)");
      List.iter
        (fun e ->
          Format.fprintf ppf "  #%-4d %s %9.3f ms  %-18s %s@." e.seq
            (if e.slow then "SLOW" else "    ")
            e.duration_ms e.strategy e.query;
          match e.counters with
          | [] -> ()
          | counters ->
            Format.fprintf ppf "        %s@."
              (String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s=%+d" k v) counters)))
        events
end

(* ------------------------------------------------------------------ *)
(* GC pause observation                                                 *)
(* ------------------------------------------------------------------ *)

module Gcpause = struct
  (* Self-monitoring through [Runtime_events]: the OCaml runtime
     publishes begin/end pairs for GC phases into a per-process ring
     buffer which the sampler polls.  Everything is best-effort — if the
     ring cannot be created the module stays inert and the pause gauges
     read zero, because observability must never take the service down
     with it. *)
  type session = {
    cursor : Runtime_events.cursor;
    callbacks : Runtime_events.Callbacks.t;
  }

  let session : session option ref = ref None

  (* Per-ring (= per-domain slot) accounting: the runtime's begin/end
     pairs carry the ring index, so each domain's pauses are attributed
     separately in addition to the process aggregate.  Each slot also
     feeds an always-on registry histogram ([gc.domain<i>.pause_us]),
     which is what the exporters and /domains.json read. *)
  type domain_stats = {
    d_total_ns : int Atomic.t;
    d_max_ns : int Atomic.t;
    d_slices : int Atomic.t;
    d_hist : Histogram.t;
  }

  (* Every mutable accounting cell in one record: the aggregate totals
     stay atomic (the sampler thread and the /stats handler poll, and
     the gauges are read from yet another interleaving, so a reader
     must never see a torn sum), the per-domain table and the domain
     lifecycle counters ride along.  The table itself is written only
     from the poll callbacks (under [poll_lock]); readers snapshot it
     under the same lock. *)
  type totals = {
    total_ns : int Atomic.t;
    max_ns : int Atomic.t;
    slices : int Atomic.t;
    spawns : int Atomic.t;
    stops : int Atomic.t;
    per_domain : (int, domain_stats) Hashtbl.t;
  }

  let stats =
    {
      total_ns = Atomic.make 0;
      max_ns = Atomic.make 0;
      slices = Atomic.make 0;
      spawns = Atomic.make 0;
      stops = Atomic.make 0;
      per_domain = Hashtbl.create 8;
    }

  (* Open begin-events keyed by (domain, phase): minor and major slices
     can interleave across domains, so each pair is matched separately.
     Touched only from the poll callbacks, which run under [poll_lock]. *)
  let opens : (int * Runtime_events.runtime_phase, int64) Hashtbl.t = Hashtbl.create 8

  (* Draining the cursor is single-consumer by construction (each event
     must be matched to its begin exactly once), so polling is mutually
     exclusive.  Contenders skip rather than wait: the loser's events
     are simply picked up by the next tick, and a sampler beat must not
     block a request handler. *)
  let poll_lock = Mutex.create ()

  let interesting (phase : Runtime_events.runtime_phase) =
    match phase with Runtime_events.EV_MINOR | Runtime_events.EV_MAJOR -> true | _ -> false

  let on_begin domain ts phase =
    if interesting phase then
      Hashtbl.replace opens (domain, phase) (Runtime_events.Timestamp.to_int64 ts)

  let rec record_max cell dur =
    let cur = Atomic.get cell in
    if dur > cur && not (Atomic.compare_and_set cell cur dur) then record_max cell dur

  (* Runs under [poll_lock] (poll callbacks only), so lookup-or-create
     never races itself; the registry call takes only registry_mutex,
     which never waits on poll_lock. *)
  let domain_stats_for domain =
    match Hashtbl.find_opt stats.per_domain domain with
    | Some d -> d
    | None ->
      let d =
        {
          d_total_ns = Atomic.make 0;
          d_max_ns = Atomic.make 0;
          d_slices = Atomic.make 0;
          d_hist =
            Metrics.histogram ~always:true (Printf.sprintf "gc.domain%d.pause_us" domain);
        }
      in
      Hashtbl.replace stats.per_domain domain d;
      d

  let on_end domain ts phase =
    if interesting phase then
      match Hashtbl.find_opt opens (domain, phase) with
      | None -> ()
      | Some t0 ->
        Hashtbl.remove opens (domain, phase);
        let dur = Int64.to_int (Int64.sub (Runtime_events.Timestamp.to_int64 ts) t0) in
        if dur > 0 then begin
          ignore (Atomic.fetch_and_add stats.total_ns dur : int);
          record_max stats.max_ns dur;
          Atomic.incr stats.slices;
          let d = domain_stats_for domain in
          ignore (Atomic.fetch_and_add d.d_total_ns dur : int);
          record_max d.d_max_ns dur;
          Atomic.incr d.d_slices;
          Histogram.observe d.d_hist (float_of_int dur /. 1000.0)
        end

  let on_lifecycle _ring _ts (ev : Runtime_events.lifecycle) _arg =
    match ev with
    | Runtime_events.EV_DOMAIN_SPAWN -> Atomic.incr stats.spawns
    | Runtime_events.EV_DOMAIN_TERMINATE -> Atomic.incr stats.stops
    | _ -> ()

  let start () =
    Mutex.protect poll_lock (fun () ->
        match !session with
        | Some _ -> true
        | None -> (
          try
            (* The events ring is backed by a <pid>.events file; keep it out
               of the working directory unless the user picked a spot. *)
            if Sys.getenv_opt "OCAML_RUNTIME_EVENTS_DIR" = None then
              Unix.putenv "OCAML_RUNTIME_EVENTS_DIR" (Filename.get_temp_dir_name ());
            Runtime_events.start ();
            let cursor = Runtime_events.create_cursor None in
            let callbacks =
              Runtime_events.Callbacks.create ~runtime_begin:on_begin ~runtime_end:on_end
                ~lifecycle:on_lifecycle ()
            in
            session := Some { cursor; callbacks };
            true
          with _ -> false))

  let active () = !session <> None

  let poll () =
    if Mutex.try_lock poll_lock then
      Fun.protect
        ~finally:(fun () -> Mutex.unlock poll_lock)
        (fun () ->
          match !session with
          | None -> ()
          | Some s -> (
            try ignore (Runtime_events.read_poll s.cursor s.callbacks None : int) with _ -> ()))

  let pause_us_total () = Atomic.get stats.total_ns / 1000

  let pause_us_max () = Atomic.get stats.max_ns / 1000

  let observed_slices () = Atomic.get stats.slices

  let domain_spawns () = Atomic.get stats.spawns

  let domain_stops () = Atomic.get stats.stops

  type domain_totals = {
    domain : int;
    pause_us_total : int;
    pause_us_max : int;
    slices : int;
  }

  (* Snapshot under [poll_lock] so a concurrent poll never resizes the
     table mid-fold; the per-cell Atomics make each field itself
     untearable. *)
  let by_domain () =
    Mutex.protect poll_lock (fun () ->
        Hashtbl.fold
          (fun domain d acc ->
            {
              domain;
              pause_us_total = Atomic.get d.d_total_ns / 1000;
              pause_us_max = Atomic.get d.d_max_ns / 1000;
              slices = Atomic.get d.d_slices;
            }
            :: acc)
          stats.per_domain [])
    |> List.sort (fun a b -> compare a.domain b.domain)
end

(* ------------------------------------------------------------------ *)
(* Allocation attribution                                               *)
(* ------------------------------------------------------------------ *)

module Alloc = struct
  (* Statistical allocation attribution via [Gc.Memprof]: every sampled
     block is scaled by 1/rate words and charged to the innermost active
     label ("query", "batch", "update", or "other").  The estimate's
     relative error shrinks as allocation volume grows, which is exactly
     when attribution matters. *)
  let labels : string list ref = ref []

  let current_label () = match !labels with l :: _ -> l | [] -> "other"

  let pop () = labels := (match !labels with _ :: t -> t | [] -> [])

  let with_label label f =
    labels := label :: !labels;
    match f () with
    | v ->
      pop ();
      v
    | exception e ->
      pop ();
      raise e

  let table : (string, int ref) Hashtbl.t = Hashtbl.create 8

  (* The whole profiling session is one value: [Some rate] while
     memprof is attached, [None] otherwise.  One cell instead of a
     rate ref plus an on/off flag means a reader can never observe the
     flag and the rate out of sync. *)
  let session : float option ref = ref None

  let word_bytes = Sys.word_size / 8

  let charge (alloc : Gc.Memprof.allocation) =
    (match !session with
    | None -> ()
    | Some rate ->
      let words = float_of_int alloc.Gc.Memprof.n_samples /. rate in
      let bytes = int_of_float (words *. float_of_int word_bytes) in
      (match Hashtbl.find_opt table (current_label ()) with
      | Some cell -> cell := !cell + bytes
      | None -> Hashtbl.replace table (current_label ()) (ref bytes)));
    None

  let start ~rate () =
    if !session <> None || rate <= 0.0 || rate > 1.0 then false
    else begin
      let tracker =
        { Gc.Memprof.null_tracker with Gc.Memprof.alloc_minor = charge; alloc_major = charge }
      in
      session := Some rate;
      (* Some runtimes ship the [Gc.Memprof] interface but refuse to
         start it (OCaml 5.0/5.1 raise ["not implemented in multicore"];
         statmemprof returns in 5.2).  Attribution is an opt-in extra,
         so degrade to inert rather than failing the process that asked
         for it. *)
      match Gc.Memprof.start ~sampling_rate:rate ~callstack_size:0 tracker with
      | () -> true
      | exception _ ->
        session := None;
        false
    end

  let stop () =
    if !session <> None then begin
      Gc.Memprof.stop ();
      session := None
    end

  let active () = !session <> None

  let rate () = !session

  let start_from_env () =
    match Option.bind (Sys.getenv_opt "EXPFINDER_MEMPROF_RATE") float_of_string_opt with
    | Some r when r > 0.0 -> start ~rate:(Float.min 1.0 r) ()
    | Some _ | None -> false

  let bytes_by_label () =
    Hashtbl.fold (fun label cell acc -> (label, !cell) :: acc) table [] |> List.sort compare

  let reset () = Hashtbl.reset table

  let to_json () =
    Json.Obj
      [
        ("active", Json.Bool (active ()));
        ("rate", match !session with Some r -> Json.Float r | None -> Json.Null);
        ( "bytes_by_label",
          Json.Obj (List.map (fun (label, b) -> (label, Json.Int b)) (bytes_by_label ())) );
      ]
end

(* ------------------------------------------------------------------ *)
(* Process gauges                                                       *)
(* ------------------------------------------------------------------ *)

(* statm counts pages, and the kernel page size is not universally
   4 KiB (arm64 kernels commonly run 16K or 64K pages).  OCaml's stdlib
   has no sysconf binding, so ask getconf once, eagerly at load — an
   immutable int thereafter, so no lazy-force race to justify — with
   4096 as the fallback when that fails. *)
let page_size =
  match
    let ic = Unix.open_process_in "getconf PAGESIZE 2>/dev/null" in
    Fun.protect
      ~finally:(fun () -> ignore (Unix.close_process_in ic : Unix.process_status))
      (fun () -> input_line ic)
  with
  | exception _ -> 4096
  | line -> (
    match int_of_string_opt (String.trim line) with
    | Some n when n > 0 -> n
    | Some _ | None -> 4096)

(* Linux exposes resident pages in /proc/self/statm; elsewhere (or in a
   locked-down container) the read fails and rss is reported as 0 rather
   than an error — observability must not crash the service. *)
let rss_bytes () =
  match
    let ic = open_in "/proc/self/statm" in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> input_line ic)
  with
  | exception _ -> 0
  | line -> (
    match String.split_on_char ' ' line with
    | _ :: resident :: _ -> (
      match int_of_string_opt resident with
      | Some pages -> pages * page_size
      | None -> 0)
    | _ -> 0)

let process_stats () =
  Gcpause.poll ();
  let gc = Gc.quick_stat () in
  let stats =
    [
      ("process.rss_bytes", rss_bytes ());
      ("process.heap_words", gc.Gc.heap_words);
      ("process.minor_words", int_of_float gc.Gc.minor_words);
      ("process.major_words", int_of_float gc.Gc.major_words);
      ("process.gc_minor_collections", gc.Gc.minor_collections);
      ("process.gc_major_collections", gc.Gc.major_collections);
      ("process.gc_pause_us_total", Gcpause.pause_us_total ());
      ("process.gc_pause_us_max", Gcpause.pause_us_max ());
      ("process.start_time_unix", int_of_float start_unix);
      ("uptime.seconds", int_of_float (Float.max 0.0 (Unix.gettimeofday () -. start_unix)));
    ]
  in
  List.iter (fun (name, v) -> Gauge.set (Metrics.gauge ~always:true name) v) stats;
  stats

(* ------------------------------------------------------------------ *)
(* Sliding windows                                                      *)
(* ------------------------------------------------------------------ *)

module Window = struct
  let default_seconds = 60

  (* One bucket per wall-clock second, in a ring of [seconds] buckets
     indexed by [sec mod seconds].  A bucket is lazily reclaimed the
     first time its slot is written in a later second; reading skips any
     bucket whose stamp has fallen out of the window.  Latencies land in
     the same log-scale bucket layout as {!Histogram}, so merged-window
     percentiles share its resolution (~9% relative error) and its
     exact-min/max clamping. *)
  (* The stamp is the bucket's synchronisation point for the lock-free
     readers: they load it atomically to decide whether the bucket is
     inside the window, and the writer parks it at -1 across a reclaim
     so a reader never merges a half-reset bucket as current.  Writers
     are no longer single-threaded — any worker domain in the serving
     pool may observe into any op-class window — so the payload fields
     are serialized by the per-window mutex below.  Readers still skip
     the lock: a read torn against an in-flight observation moves a
     count by at most one, which the scrape path tolerates. *)
  type bucket = {
    sec : int Atomic.t;  (* unix second this bucket holds; -1 = empty *)
    mutable bcount : int;
    mutable berrors : int;
    mutable bsum : float;
    mutable bmin : float;
    mutable bmax : float;
    bhist : int array;
  }

  type t = {
    wname : string;
    wseconds : int;
    ring : bucket array;
    (* Lifetime totals, never reclaimed with the ring: the timeseries
       sampler differentiates them into per-tick request/error rates,
       reading from its own thread — hence atomic. *)
    total_count : int Atomic.t;
    total_errors : int Atomic.t;
    (* OpenMetrics-style exemplars: one recent trace id per latency
       bucket (the {!Histogram} log-bucket layout), so a scraped
       percentile can be chased down to a concrete stored trace.  Same
       mutex-serialized writer discipline as the bucket payload fields;
       a torn read pairs a trace id with a neighbouring observation's
       value, which is harmless for a drill-down hint. *)
    ex_trace : string array;
    ex_ms : float array;
    ex_unix : float array;
    (* Serializes writers ({!observe}/{!reset}).  Readers stay
       lock-free, synchronised only through the bucket stamps. *)
    wm : Mutex.t;
  }

  let fresh_bucket () =
    {
      sec = Atomic.make (-1);
      bcount = 0;
      berrors = 0;
      bsum = 0.0;
      bmin = 0.0;
      bmax = 0.0;
      bhist = Array.make Histogram.nbuckets 0;
    }

  let create ?(seconds = default_seconds) wname =
    let seconds = Stdlib.max 1 seconds in
    {
      wname;
      wseconds = seconds;
      ring = Array.init seconds (fun _ -> fresh_bucket ());
      total_count = Atomic.make 0;
      total_errors = Atomic.make 0;
      ex_trace = Array.make Histogram.nbuckets "";
      ex_ms = Array.make Histogram.nbuckets 0.0;
      ex_unix = Array.make Histogram.nbuckets 0.0;
      wm = Mutex.create ();
    }

  let name t = t.wname

  let seconds t = t.wseconds

  let reset t =
    Mutex.lock t.wm;
    Atomic.set t.total_count 0;
    Atomic.set t.total_errors 0;
    Array.fill t.ex_trace 0 Histogram.nbuckets "";
    Array.fill t.ex_ms 0 Histogram.nbuckets 0.0;
    Array.fill t.ex_unix 0 Histogram.nbuckets 0.0;
    Array.iter
      (fun b ->
        Atomic.set b.sec (-1);
        b.bcount <- 0;
        b.berrors <- 0;
        b.bsum <- 0.0;
        b.bmin <- 0.0;
        b.bmax <- 0.0;
        Array.fill b.bhist 0 Histogram.nbuckets 0)
      t.ring;
    Mutex.unlock t.wm

  let wall_seconds () = now_us () /. 1e6

  let observe t ?(error = false) ?now ?trace ms =
    let now = match now with Some n -> n | None -> wall_seconds () in
    let sec = int_of_float now in
    Mutex.lock t.wm;
    let b = t.ring.(sec mod t.wseconds) in
    if Atomic.get b.sec <> sec then begin
      (* Writers are serialized by [wm], so the reclaim needs no CAS;
         the stamp choreography is for the lock-free readers: park the
         stamp at -1, zero the payload, then publish, so a reader never
         merges a half-reset bucket as current. *)
      Atomic.set b.sec (-1);
      b.bcount <- 0;
      b.berrors <- 0;
      b.bsum <- 0.0;
      b.bmin <- 0.0;
      b.bmax <- 0.0;
      Array.fill b.bhist 0 Histogram.nbuckets 0;
      Atomic.set b.sec sec
    end;
    if b.bcount = 0 || ms < b.bmin then b.bmin <- ms;
    if b.bcount = 0 || ms > b.bmax then b.bmax <- ms;
    b.bcount <- b.bcount + 1;
    if error then b.berrors <- b.berrors + 1;
    b.bsum <- b.bsum +. ms;
    Atomic.incr t.total_count;
    if error then Atomic.incr t.total_errors;
    let i = Histogram.bucket_of ms in
    b.bhist.(i) <- b.bhist.(i) + 1;
    (match trace with
    | Some tid when tid <> "" ->
      t.ex_trace.(i) <- tid;
      t.ex_ms.(i) <- ms;
      t.ex_unix.(i) <- now
    | Some _ | None -> ());
    Mutex.unlock t.wm

  let totals t = (Atomic.get t.total_count, Atomic.get t.total_errors)

  type exemplar = {
    ex_le : float;  (** upper bound of the latency bucket, in ms *)
    ex_trace_id : string;
    ex_value_ms : float;
    ex_ts_unix : float;
  }

  let exemplars t =
    let acc = ref [] in
    for i = Histogram.nbuckets - 1 downto 0 do
      if t.ex_trace.(i) <> "" then
        acc :=
          {
            ex_le = Histogram.upper_bound i;
            ex_trace_id = t.ex_trace.(i);
            ex_value_ms = t.ex_ms.(i);
            ex_ts_unix = t.ex_unix.(i);
          }
          :: !acc
    done;
    !acc

  let exemplar_json e =
    Json.Obj
      [
        ("le", Json.Float e.ex_le);
        ("trace_id", Json.Str e.ex_trace_id);
        ("value_ms", Json.Float e.ex_value_ms);
        ("ts_unix", Json.Float e.ex_ts_unix);
      ]

  type summary = {
    window_s : int;
    count : int;
    errors : int;
    qps : float;
    error_rate : float;  (** 0 when the window is empty *)
    p50 : float;
    p95 : float;
    p99 : float;
    mean_ms : float;
    max_ms : float;
  }

  let summary ?now t =
    let now = match now with Some n -> n | None -> wall_seconds () in
    let now_sec = int_of_float now in
    let merged = Array.make Histogram.nbuckets 0 in
    let count = ref 0 and errors = ref 0 and sum = ref 0.0 in
    let mn = ref 0.0 and mx = ref 0.0 in
    Array.iter
      (fun b ->
        let bsec = Atomic.get b.sec in
        if bsec > now_sec - t.wseconds && bsec <= now_sec && b.bcount > 0 then begin
          if !count = 0 || b.bmin < !mn then mn := b.bmin;
          if !count = 0 || b.bmax > !mx then mx := b.bmax;
          count := !count + b.bcount;
          errors := !errors + b.berrors;
          sum := !sum +. b.bsum;
          Array.iteri (fun i c -> merged.(i) <- merged.(i) + c) b.bhist
        end)
      t.ring;
    let n = !count in
    let pct p =
      if n = 0 then nan
      else if p <= 0.0 then !mn
      else if p >= 1.0 then !mx
      else
        let rank = Stdlib.max 1 (int_of_float (ceil (p *. float_of_int n))) in
        Histogram.rank_in_buckets merged ~rank ~mn:!mn ~mx:!mx
    in
    {
      window_s = t.wseconds;
      count = n;
      errors = !errors;
      qps = float_of_int n /. float_of_int t.wseconds;
      error_rate = (if n = 0 then 0.0 else float_of_int !errors /. float_of_int n);
      p50 = pct 0.5;
      p95 = pct 0.95;
      p99 = pct 0.99;
      mean_ms = (if n = 0 then nan else !sum /. float_of_int n);
      max_ms = (if n = 0 then nan else !mx);
    }

  let summary_json s =
    Json.Obj
      [
        ("window_s", Json.Int s.window_s);
        ("count", Json.Int s.count);
        ("errors", Json.Int s.errors);
        ("qps", Json.Float s.qps);
        ("error_rate", Json.Float s.error_rate);
        ("p50_ms", Json.Float s.p50);
        ("p95_ms", Json.Float s.p95);
        ("p99_ms", Json.Float s.p99);
        ("mean_ms", Json.Float s.mean_ms);
        ("max_ms", Json.Float s.max_ms);
      ]

  (* Full window document for /stats.json: the summary fields plus the
     window's current exemplars.  [summary_of_json] below ignores the
     extra member, so older clients keep parsing it. *)
  let to_json ?now t =
    match summary_json (summary ?now t) with
    | Json.Obj fields ->
      Json.Obj (fields @ [ ("exemplars", Json.Arr (List.map exemplar_json (exemplars t))) ])
    | j -> j

  (* Read the numbers back out of a /stats.json dump (the [expfinder
     stats --server] client side).  Missing latency fields (serialized
     [null] for an empty window) come back as nan. *)
  let summary_of_json json =
    let int_field k = Option.bind (Json.member k json) Json.int_opt in
    let float_field k =
      match Option.bind (Json.member k json) Json.float_opt with Some f -> f | None -> nan
    in
    match (int_field "window_s", int_field "count") with
    | Some window_s, Some count ->
      Some
        {
          window_s;
          count;
          errors = Option.value ~default:0 (int_field "errors");
          qps = float_field "qps";
          error_rate = float_field "error_rate";
          p50 = float_field "p50_ms";
          p95 = float_field "p95_ms";
          p99 = float_field "p99_ms";
          mean_ms = float_field "mean_ms";
          max_ms = float_field "max_ms";
        }
    | _ -> None

  let pp_summary ppf s =
    if s.count = 0 then Format.fprintf ppf "no requests in the last %ds" s.window_s
    else
      Format.fprintf ppf
        "%d request(s) in %ds: %.2f qps, errors %d (%.1f%%), p50 %.3f ms, p95 %.3f ms, p99 \
         %.3f ms, max %.3f ms"
        s.count s.window_s s.qps s.errors (100.0 *. s.error_rate) s.p50 s.p95 s.p99 s.max_ms

  (* Registry of operation-class windows (query/batch/update), mirroring
     the metrics registry: [get] creates on first use, the exporters
     enumerate with [all].  Windows record unconditionally — live SLOs
     must not depend on the telemetry flag. *)
  let windows : (string, t) Hashtbl.t = Hashtbl.create 8

  (* Same story as {!Metrics.registry}: the handler creates windows
     lazily while the sampler enumerates them every tick, and a Hashtbl
     resize under a concurrent fold is a crash.  Lock the registry, not
     the windows themselves. *)
  let windows_mutex = Mutex.create ()

  let get ?seconds name =
    Mutex.protect windows_mutex (fun () ->
        match Hashtbl.find_opt windows name with
        | Some w -> w
        | None ->
          let w = create ?seconds name in
          Hashtbl.replace windows name w;
          w)

  let all () =
    Mutex.protect windows_mutex (fun () ->
        Hashtbl.fold (fun name w acc -> (name, w) :: acc) windows [])
    |> List.sort compare

  let reset_all () =
    List.iter (fun (_, w) -> reset w) (all ())
end

(* ------------------------------------------------------------------ *)
(* In-process trace store                                               *)
(* ------------------------------------------------------------------ *)

module Tracestore = struct
  (* A bounded ring of recently finished request traces, the backing
     store for GET /traces.json and the [expfinder trace] explorer.
     Admission is head + tail sampling: errored requests and requests
     at or beyond the op window's p99 are always kept (tail — decided
     from the outcome), and of the unremarkable rest one in
     [head_rate] is kept (head — decided by arrival count), so the
     store holds the interesting traces plus a thin representative
     sample without growing with traffic. *)
  type stored = {
    strace_id : string;
    sspan_id : string;
    sop : string;  (* window/op class: "query", "batch", "update" *)
    squery : string;
    sduration_ms : float;
    serror : bool;
    skept : string;  (* admission reason: "error" | "slow" | "sampled" *)
    sts_unix : float;
    sroot : Span.t option;  (* span tree, when one was recorded *)
  }

  let default_capacity = 128

  let initial_capacity =
    match Option.bind (Sys.getenv_opt "EXPFINDER_TRACE_CAP") int_of_string_opt with
    | Some n when n >= 1 -> n
    | Some _ | None -> default_capacity

  (* Of unremarkable traces, keep one in this many. *)
  let head_rate = 10

  (* Tail sampling consults the op window's p99 only once it has seen
     enough requests to mean something. *)
  let min_count_for_p99 = 20

  (* Unlike the windows (single writer per op class) the store is
     written by every op class and read by the HTTP handler, so the
     whole state — ring, cursor, arrival counter — sits behind one
     mutex.  Store operations are rare (sampled admissions) and tiny
     (a record write), so contention is immaterial. *)
  let lock = Mutex.create ()

  type state = {
    mutable ring : stored option array;
    mutable next : int;
    mutable seen : int;
  }

  let state = { ring = Array.make initial_capacity None; next = 0; seen = 0 }

  let capacity () = Mutex.protect lock (fun () -> Array.length state.ring)

  let set_capacity n =
    let n = Stdlib.max 1 n in
    Mutex.protect lock (fun () ->
        if n <> Array.length state.ring then begin
          state.ring <- Array.make n None;
          state.next <- 0
        end)

  let clear () =
    Mutex.protect lock (fun () ->
        state.ring <- Array.make (Array.length state.ring) None;
        state.next <- 0;
        state.seen <- 0)

  let seen () = Mutex.protect lock (fun () -> state.seen)

  (* Offer a finished request to the store; returns [true] iff it was
     admitted (the caller uses this to decide whether the trace id is
     worth advertising as a histogram exemplar — an exemplar must
     resolve to a stored trace).  Identity-free requests are never
     stored: there is nothing to look them up by. *)
  let record ~trace_id ~span_id ~op ~query ~duration_ms ~error ?root () =
    if trace_id = "" then false
    else begin
      let slow =
        let s = Window.summary (Window.get op) in
        s.Window.count >= min_count_for_p99
        && (not (Float.is_nan s.Window.p99))
        && duration_ms >= s.Window.p99
      in
      Mutex.protect lock (fun () ->
          state.seen <- state.seen + 1;
          let kept =
            if error then Some "error"
            else if slow then Some "slow"
            else if state.seen mod head_rate = 1 then Some "sampled"
            else None
          in
          match kept with
          | None -> false
          | Some skept ->
            state.ring.(state.next mod Array.length state.ring) <-
              Some
                {
                  strace_id = trace_id;
                  sspan_id = span_id;
                  sop = op;
                  squery = query;
                  sduration_ms = duration_ms;
                  serror = error;
                  skept;
                  sts_unix = Unix.gettimeofday ();
                  sroot = root;
                };
            state.next <- state.next + 1;
            true)
    end

  (* Newest first. *)
  let recent () =
    Mutex.protect lock (fun () ->
        Array.to_list state.ring |> List.filter_map Fun.id)
    |> List.sort (fun a b -> compare b.sts_unix a.sts_unix)

  (* Look a trace up by full id or by unique prefix (ids are long; the
     CLI lets humans paste a prefix). *)
  let find id =
    let id = String.lowercase_ascii (String.trim id) in
    if id = "" then None
    else
      match List.filter (fun s -> s.strace_id = id) (recent ()) with
      | hit :: _ -> Some hit
      | [] -> (
        match
          List.filter
            (fun s -> String.length s.strace_id >= String.length id
                      && String.sub s.strace_id 0 (String.length id) = id)
            (recent ())
        with
        | [ hit ] -> Some hit
        | _ -> None)

  let stored_json s =
    Json.Obj
      [
        ("trace_id", Json.Str s.strace_id);
        ("span_id", Json.Str s.sspan_id);
        ("op", Json.Str s.sop);
        ("query", Json.Str s.squery);
        ("duration_ms", Json.Float s.sduration_ms);
        ("error", Json.Bool s.serror);
        ("kept", Json.Str s.skept);
        ("ts_unix", Json.Float s.sts_unix);
        ("root", match s.sroot with Some sp -> Span.to_json sp | None -> Json.Null);
      ]

  let stored_of_json json =
    let str k = Option.bind (Json.member k json) Json.str_opt in
    let float k = Option.bind (Json.member k json) Json.float_opt in
    match str "trace_id" with
    | None -> None
    | Some strace_id ->
      Some
        {
          strace_id;
          sspan_id = Option.value ~default:"" (str "span_id");
          sop = Option.value ~default:"" (str "op");
          squery = Option.value ~default:"" (str "query");
          sduration_ms = Option.value ~default:0.0 (float "duration_ms");
          serror =
            (match Json.member "error" json with Some (Json.Bool b) -> b | _ -> false);
          skept = Option.value ~default:"" (str "kept");
          sts_unix = Option.value ~default:0.0 (float "ts_unix");
          sroot = Option.bind (Json.member "root" json) Span.of_json;
        }

  let to_json () =
    Json.Obj
      [
        ("capacity", Json.Int (capacity ()));
        ("seen", Json.Int (seen ()));
        ("traces", Json.Arr (List.map stored_json (recent ())));
      ]

  let pp_stored ppf s =
    Format.fprintf ppf "trace %s  %s %s  %.3f ms  kept=%s%s@." s.strace_id s.sop s.squery
      s.sduration_ms s.skept
      (if s.serror then "  ERROR" else "");
    match s.sroot with
    | None -> Format.fprintf ppf "  (no span tree recorded)@."
    | Some root -> Span.pp_annotated ppf root
end

(* ------------------------------------------------------------------ *)
(* Shared JSONL sink                                                    *)
(* ------------------------------------------------------------------ *)

(* Appending, size-capped JSONL writer shared by the query log and the
   timeseries log.  The channel opens lazily on the first emit so merely
   importing the library never touches the filesystem; crossing the size
   ceiling rotates the live file to "<path>.1" (one archived
   generation); I/O failures (unwritable path, full disk) disable the
   sink with one stderr warning instead of raising into the serving
   path.  Pointing at a new path re-arms the warning. *)
module Jsonl_sink = struct
  (* One mutex per sink: the SLO evaluator emits alert events from the
     sampler thread into the same query-log sink the handler writes, so
     open/rotate/write/disable must be a critical section or two writers
     can interleave half-lines into the log.  All mutation happens with
     [lock] held; the [_unlocked] helpers exist because disable-on-error
     fires from inside [emit], which already holds it. *)
  type t = {
    label : string;
    lock : Mutex.t;
    mutable path : string option;
    mutable chan : out_channel option;
    mutable written : int;
    mutable max_bytes : int;
    mutable warned : bool;
  }

  (* An empty path means "no sink": ENV= must behave like an unset
     variable, not like a log named "". *)
  let normalize = function Some "" -> None | other -> other

  let default_max_bytes = 64 * 1024 * 1024

  let create ?(max_bytes = default_max_bytes) ~label path =
    {
      label;
      lock = Mutex.create ();
      path = normalize path;
      chan = None;
      written = 0;
      max_bytes;
      warned = false;
    }

  let close_unlocked t =
    Option.iter close_out_noerr t.chan;
    t.chan <- None;
    t.written <- 0

  let close t = Mutex.protect t.lock (fun () -> close_unlocked t)

  let set_path t path =
    Mutex.protect t.lock (fun () ->
        close_unlocked t;
        t.warned <- false;
        t.path <- normalize path)

  let path t = t.path

  let enabled t = t.path <> None

  let set_max_bytes t n = Mutex.protect t.lock (fun () -> t.max_bytes <- Stdlib.max 4096 n)

  let max_bytes t = t.max_bytes

  let rotated_path p = p ^ ".1"

  let disable_unlocked t exn =
    if not t.warned then begin
      t.warned <- true;
      Printf.eprintf "expfinder: %s disabled: %s\n%!" t.label (Printexc.to_string exn)
    end;
    close_unlocked t;
    t.path <- None

  let open_chan t p =
    let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 p in
    t.chan <- Some oc;
    t.written <- out_channel_length oc

  let rotate t p =
    close_unlocked t;
    (try Sys.remove (rotated_path p) with Sys_error _ -> ());
    (try Sys.rename p (rotated_path p) with Sys_error _ -> ());
    open_chan t p

  (* [line] is one JSON document without the trailing newline. *)
  let emit t line =
    Mutex.protect t.lock (fun () ->
        match t.path with
        | None -> ()
        | Some p -> (
          try
            if t.chan = None then open_chan t p;
            if t.written > 0 && t.written + String.length line + 1 > t.max_bytes then
              rotate t p;
            match t.chan with
            | Some oc ->
              output_string oc line;
              output_char oc '\n';
              flush oc;
              t.written <- t.written + String.length line + 1
            | None -> ()
          with (Sys_error _ | Unix.Unix_error _) as exn -> disable_unlocked t exn))
end

(* ------------------------------------------------------------------ *)
(* Query log                                                            *)
(* ------------------------------------------------------------------ *)

module Qlog = struct
  (* v2 added the [trace_id] field.  [event_of_json] still accepts v1
     lines (trace ids default to "") so logs captured before the bump
     replay unchanged. *)
  let schema_version = 2

  let min_schema_version = 1

  type kind = Query | Batch | Update | Alert

  let kind_name = function
    | Query -> "query"
    | Batch -> "batch"
    | Update -> "update"
    | Alert -> "alert"

  let kind_of_name = function
    | "query" -> Some Query
    | "batch" -> Some Batch
    | "update" -> Some Update
    | "alert" -> Some Alert
    | _ -> None

  type event = {
    seq : int;
    ts_unix : float;
    kind : kind;
    graph_id : int;
    epoch : int;
    query : string;
    strategy : string;
    duration_ms : float;
    counters : (string * int) list;
    pairs : int;
    digest : string;
    slow : bool;
    trace_id : string;  (** "" when the request carried no trace context (or a v1 line) *)
    error : string option;
    payload : Json.t option;
  }

  (* Sink configuration (env-seeded path, size ceiling, one archived
     generation) lives in a {!Jsonl_sink}; this module only builds the
     event lines. *)
  let sink_t =
    Jsonl_sink.create ~label:"query log"
      ~max_bytes:
        (match Option.bind (Sys.getenv_opt "EXPFINDER_QLOG_MAX_BYTES") int_of_string_opt with
        | Some n when n >= 4096 -> n
        | Some _ | None -> Jsonl_sink.default_max_bytes)
      (Sys.getenv_opt "EXPFINDER_QLOG")

  let max_bytes () = Jsonl_sink.max_bytes sink_t

  let set_max_bytes n = Jsonl_sink.set_max_bytes sink_t n

  (* Claimed atomically: alert events (sampler thread) and query events
     (handler) share the sequence space. *)
  let next_seq = Atomic.make 0

  let close () = Jsonl_sink.close sink_t

  let set_sink path = Jsonl_sink.set_path sink_t path

  let sink () = Jsonl_sink.path sink_t

  let enabled () = Jsonl_sink.enabled sink_t

  let event_json e =
    Json.Obj
      (List.concat
         [
           [
             ("v", Json.Int schema_version);
             ("seq", Json.Int e.seq);
             ("ts_unix", Json.Float e.ts_unix);
             ("kind", Json.Str (kind_name e.kind));
             ("graph_id", Json.Int e.graph_id);
             ("epoch", Json.Int e.epoch);
             ("query", Json.Str e.query);
             ("strategy", Json.Str e.strategy);
             ("duration_ms", Json.Float e.duration_ms);
             ("pairs", Json.Int e.pairs);
             ("digest", Json.Str e.digest);
             ("slow", Json.Bool e.slow);
             ("trace_id", Json.Str e.trace_id);
             ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) e.counters));
           ];
           (match e.error with None -> [] | Some m -> [ ("error", Json.Str m) ]);
           (match e.payload with None -> [] | Some p -> [ ("payload", p) ]);
         ])

  let event_of_json json =
    let str k = Option.bind (Json.member k json) Json.str_opt in
    let int k = Option.bind (Json.member k json) Json.int_opt in
    let float k = Option.bind (Json.member k json) Json.float_opt in
    match Json.member "v" json with
    | Some (Json.Int v) when v >= min_schema_version && v <= schema_version -> (
      match (int "seq", Option.bind (str "kind") kind_of_name, str "query") with
      | Some seq, Some kind, Some query ->
        Ok
          {
            seq;
            ts_unix = Option.value ~default:0.0 (float "ts_unix");
            kind;
            graph_id = Option.value ~default:0 (int "graph_id");
            epoch = Option.value ~default:0 (int "epoch");
            query;
            strategy = Option.value ~default:"" (str "strategy");
            duration_ms = Option.value ~default:0.0 (float "duration_ms");
            counters =
              (match Json.member "counters" json with
              | Some (Json.Obj kv) ->
                List.filter_map (fun (k, v) -> Option.map (fun n -> (k, n)) (Json.int_opt v)) kv
              | _ -> []);
            pairs = Option.value ~default:0 (int "pairs");
            digest = Option.value ~default:"" (str "digest");
            slow =
              (match Json.member "slow" json with Some (Json.Bool b) -> b | _ -> false);
            trace_id = Option.value ~default:"" (str "trace_id");
            error = str "error";
            payload = Json.member "payload" json;
          }
      | _ -> Error "qlog event lacks a seq, kind or query field"
      )
    | Some (Json.Int v) -> Error (Printf.sprintf "unsupported qlog schema version %d" v)
    | Some _ | None -> Error "not a qlog event (no integer \"v\" field)"

  let emit ~kind ~graph_id ~epoch ~query ~strategy ~duration_ms ~counters ~pairs ~digest
      ?(trace_id = "") ?error ?payload () =
    if Jsonl_sink.enabled sink_t then begin
      let seq = Atomic.fetch_and_add next_seq 1 in
      let slow =
        match Recorder.slow_threshold_ms () with Some t -> duration_ms >= t | None -> false
      in
      let e =
        {
          seq;
          ts_unix = Unix.gettimeofday ();
          kind;
          graph_id;
          epoch;
          query;
          strategy;
          duration_ms;
          counters;
          pairs;
          digest;
          slow;
          trace_id;
          error;
          payload;
        }
      in
      Jsonl_sink.emit sink_t (Json.to_string (event_json e))
    end

  let load path =
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | exception Sys_error e -> Error e
    | text ->
      let rec parse acc lineno = function
        | [] -> Ok (List.rev acc)
        | line :: rest ->
          if String.trim line = "" then parse acc (lineno + 1) rest
          else (
            match Json.of_string line with
            | Error e -> Error (Printf.sprintf "%s:%d: invalid JSON: %s" path lineno e)
            | Ok json -> (
              match event_of_json json with
              | Error e -> Error (Printf.sprintf "%s:%d: %s" path lineno e)
              | Ok ev -> parse (ev :: acc) (lineno + 1) rest))
      in
      parse [] 1 (String.split_on_char '\n' text)
end

(* ------------------------------------------------------------------ *)
(* Time series retention                                                *)
(* ------------------------------------------------------------------ *)

module Timeseries = struct
  let schema_version = 1

  (* Rate series hold per-tick deltas of a cumulative source (requests,
     errors, allocated words); Level series hold instantaneous readings
     (qps, latency quantiles, rss).  The distinction matters on
     downsampling: a coarse slot's [sum] is the honest aggregate of a
     rate, while its [last]/[vmin]/[vmax] describe a level. *)
  type kind = Rate | Level

  let kind_name = function Rate -> "rate" | Level -> "level"

  type series = {
    skind : kind;
    scount : int array;
    ssum : float array;
    smin : float array;
    smax : float array;
    slast : float array;
  }

  (* One ring per resolution.  [stamp.(i)] holds the slot id
     (sec / res_s) currently stored at index i, so wrap-around
     invalidation is a single integer compare and stale slots are simply
     skipped on read; every record feeds all rings, which makes the
     coarse resolutions exact downsamples of the fine one. *)
  type ring = {
    res_s : int;
    slots : int;
    stamp : int array;
    sdata : (string, series) Hashtbl.t;
  }

  type t = {
    rings : ring array; (* ascending res_s *)
    mutable rev_names : string list; (* registration order, reversed *)
    kinds : (string, kind) Hashtbl.t;
    (* Sampler state: last value of each cumulative source, for rates. *)
    prev : (string, float) Hashtbl.t;
  }

  let default_resolutions = [ (1, 120); (10, 360); (60, 720) ]

  let create ?(resolutions = default_resolutions) () =
    let resolutions =
      List.sort_uniq compare (List.map (fun (r, s) -> (Stdlib.max 1 r, Stdlib.max 2 s)) resolutions)
    in
    let ring_of (res_s, slots) =
      { res_s; slots; stamp = Array.make slots (-1); sdata = Hashtbl.create 32 }
    in
    {
      rings = Array.of_list (List.map ring_of resolutions);
      rev_names = [];
      kinds = Hashtbl.create 32;
      prev = Hashtbl.create 32;
    }

  let resolutions t = Array.to_list (Array.map (fun r -> (r.res_s, r.slots)) t.rings)

  let names t = List.rev t.rev_names

  let kind_of t name = Hashtbl.find_opt t.kinds name

  let series_for t ring name kind =
    match Hashtbl.find_opt ring.sdata name with
    | Some s -> s
    | None ->
      if not (Hashtbl.mem t.kinds name) then begin
        Hashtbl.replace t.kinds name kind;
        t.rev_names <- name :: t.rev_names
      end;
      let n = ring.slots in
      let s =
        {
          skind = kind;
          scount = Array.make n 0;
          ssum = Array.make n 0.0;
          smin = Array.make n 0.0;
          smax = Array.make n 0.0;
          slast = Array.make n 0.0;
        }
      in
      Hashtbl.add ring.sdata name s;
      s

  let record ?now t kind name v =
    if Float.is_finite v then begin
      let sec = int_of_float (match now with Some n -> n | None -> Window.wall_seconds ()) in
      Array.iter
        (fun ring ->
          let slot = sec / ring.res_s in
          let idx = slot mod ring.slots in
          if ring.stamp.(idx) <> slot then begin
            (* The slot id moved on: reclaim this index in every series
               of the ring before the first write of the new slot. *)
            ring.stamp.(idx) <- slot;
            Hashtbl.iter
              (fun _ s ->
                s.scount.(idx) <- 0;
                s.ssum.(idx) <- 0.0;
                s.smin.(idx) <- 0.0;
                s.smax.(idx) <- 0.0;
                s.slast.(idx) <- 0.0)
              ring.sdata
          end;
          let s = series_for t ring name kind in
          if s.scount.(idx) = 0 || v < s.smin.(idx) then s.smin.(idx) <- v;
          if s.scount.(idx) = 0 || v > s.smax.(idx) then s.smax.(idx) <- v;
          s.scount.(idx) <- s.scount.(idx) + 1;
          s.ssum.(idx) <- s.ssum.(idx) +. v;
          s.slast.(idx) <- v)
        t.rings
    end

  type point = {
    t_unix : int; (* slot start, unix seconds *)
    res_s : int;
    n : int; (* samples merged into the slot *)
    sum : float;
    vmin : float;
    vmax : float;
    last : float;
  }

  let now_or now = match now with Some n -> n | None -> Window.wall_seconds ()

  (* All valid points of [name] in [ring], oldest first. *)
  let ring_points ?now t (ring : ring) name =
    ignore t;
    let sec = int_of_float (now_or now) in
    let cur = sec / ring.res_s in
    match Hashtbl.find_opt ring.sdata name with
    | None -> []
    | Some s ->
      let pts = ref [] in
      for k = 0 to ring.slots - 1 do
        let slot = cur - k in
        if slot >= 0 then begin
          let idx = slot mod ring.slots in
          if ring.stamp.(idx) = slot && s.scount.(idx) > 0 then
            pts :=
              {
                t_unix = slot * ring.res_s;
                res_s = ring.res_s;
                n = s.scount.(idx);
                sum = s.ssum.(idx);
                vmin = s.smin.(idx);
                vmax = s.smax.(idx);
                last = s.slast.(idx);
              }
              :: !pts
        end
      done;
      !pts

  (* Finest ring whose span covers [seconds]; the coarsest one when none
     does. *)
  let ring_for t ~seconds =
    let rec pick i =
      if i >= Array.length t.rings - 1 then t.rings.(Array.length t.rings - 1)
      else if t.rings.(i).res_s * t.rings.(i).slots >= seconds then t.rings.(i)
      else pick (i + 1)
    in
    pick 0

  let points ?now t ~seconds name =
    let nowf = now_or now in
    let sec = int_of_float nowf in
    let ring = ring_for t ~seconds in
    List.filter
      (fun p -> p.t_unix + p.res_s > sec - seconds)
      (ring_points ~now:nowf t ring name)

  let window_sum ?now t ~seconds name =
    List.fold_left (fun acc p -> acc +. p.sum) 0.0 (points ?now t ~seconds name)

  let point_json p =
    Json.Arr
      [
        Json.Int p.t_unix;
        Json.Float p.last;
        Json.Float p.sum;
        Json.Float p.vmin;
        Json.Float p.vmax;
        Json.Int p.n;
      ]

  let rec take_last n l = if List.length l <= n then l else take_last n (List.tl l)

  let to_json ?now ?(max_points = max_int) t =
    let nowf = now_or now in
    let names = names t in
    let ring_json (ring : ring) =
      Json.Obj
        [
          ("res_s", Json.Int ring.res_s);
          ("slots", Json.Int ring.slots);
          ("span_s", Json.Int (ring.res_s * ring.slots));
          ( "series",
            Json.Obj
              (List.filter_map
                 (fun name ->
                   match ring_points ~now:nowf t ring name with
                   | [] -> None
                   | pts ->
                     Some (name, Json.Arr (List.map point_json (take_last max_points pts))))
                 names) );
        ]
    in
    Json.Obj
      [
        ("v", Json.Int schema_version);
        ("now_unix", Json.Float nowf);
        ( "series_kinds",
          Json.Obj
            (List.map
               (fun n -> (n, Json.Str (kind_name (Hashtbl.find t.kinds n))))
               names) );
        ("point", Json.Str "[t_unix,last,sum,min,max,count]");
        ("resolutions", Json.Arr (Array.to_list (Array.map ring_json t.rings)));
      ]

  (* ---- the shared instance and the periodic sampler ---- *)

  let shared = create ()

  let sink_t =
    Jsonl_sink.create ~label:"timeseries log"
      ~max_bytes:
        (match
           Option.bind (Sys.getenv_opt "EXPFINDER_TIMESERIES_MAX_BYTES") int_of_string_opt
         with
        | Some n when n >= 4096 -> n
        | Some _ | None -> Jsonl_sink.default_max_bytes)
      (Sys.getenv_opt "EXPFINDER_TIMESERIES")

  let set_sink path = Jsonl_sink.set_path sink_t path

  let sink () = Jsonl_sink.path sink_t

  (* One sampler tick: pull every live source (op-class windows, process
     gauges, registry counters, allocation attribution) into [t] and
     append the tick to the JSONL sink.  Returns what was recorded so
     callers (tests, the sink line) see one consistent snapshot. *)
  let sample ?now ?(persist = true) t =
    let nowf = now_or now in
    let out = ref [] in
    let put kind name v =
      if Float.is_finite v then begin
        record ~now:nowf t kind name v;
        out := (name, v) :: !out
      end
    in
    (* Rate from a cumulative source: the first observation only primes
       [prev]; a value running backwards means the source was reset, in
       which case the new value is the honest delta.  Zero deltas are
       recorded only for series that already exist, so one-shot counters
       do not mint dead series every tick. *)
    let cum name v =
      let prev = Hashtbl.find_opt t.prev name in
      Hashtbl.replace t.prev name v;
      match prev with
      | None -> ()
      | Some p ->
        let d = if v >= p then v -. p else v in
        if d <> 0.0 || Hashtbl.mem t.kinds name then put Rate name d
    in
    List.iter
      (fun (op, w) ->
        let s = Window.summary ~now:nowf w in
        put Level ("win." ^ op ^ ".qps") s.Window.qps;
        put Level ("win." ^ op ^ ".error_rate") s.Window.error_rate;
        if s.Window.count > 0 then begin
          put Level ("win." ^ op ^ ".p50_ms") s.Window.p50;
          put Level ("win." ^ op ^ ".p95_ms") s.Window.p95;
          put Level ("win." ^ op ^ ".p99_ms") s.Window.p99
        end;
        let total, errors = Window.totals w in
        cum ("req." ^ op) (float_of_int total);
        cum ("err." ^ op) (float_of_int errors))
      (Window.all ());
    List.iter
      (fun (name, v) ->
        let v = float_of_int v in
        match name with
        | "process.rss_bytes" | "process.heap_words" | "process.gc_pause_us_max" ->
          put Level name v
        | "process.start_time_unix" | "uptime.seconds" -> ()
        | _ -> cum name v)
      (process_stats ());
    Metrics.rows ()
    |> List.iter (fun (name, m) ->
           match m with
           | Metrics.M_counter c -> cum ("m." ^ name) (float_of_int (Counter.value c))
           | Metrics.M_gauge g ->
             (* Gauges fold as levels so queue depths / backlogs get
                sparkline history.  process.* / uptime.* are already
                sampled above under their own names, and a gauge that
                has never left zero is suppressed (same policy as
                [cum]'s priming) to avoid dead series. *)
             if
               not
                 (String.length name >= 8 && String.sub name 0 8 = "process."
                 || String.length name >= 7 && String.sub name 0 7 = "uptime.")
             then begin
               let v = float_of_int (Gauge.value g) in
               let key = "m." ^ name in
               if v <> 0.0 || Hashtbl.mem t.kinds key then put Level key v
             end
           | Metrics.M_histogram _ -> ());
    List.iter
      (fun (label, bytes) -> cum ("alloc." ^ label) (float_of_int bytes))
      (Alloc.bytes_by_label ());
    let fields = List.rev !out in
    if persist && Jsonl_sink.enabled sink_t then
      Jsonl_sink.emit sink_t
        (Json.to_string
           (Json.Obj
              [
                ("v", Json.Int schema_version);
                ("ts_unix", Json.Float nowf);
                ( "fields",
                  Json.Obj (List.map (fun (name, v) -> (name, Json.Float v)) fields) );
              ]));
    fields

  (* ---- persisted-capture loading and Report conversion ---- *)

  type tick = { ts_unix : float; fields : (string * float) list }

  let tick_of_json json =
    match Json.member "v" json with
    | Some (Json.Int v) when v = schema_version -> (
      match
        ( Option.bind (Json.member "ts_unix" json) Json.float_opt,
          Json.member "fields" json )
      with
      | Some ts_unix, Some (Json.Obj kv) ->
        Ok
          {
            ts_unix;
            fields =
              List.filter_map (fun (k, v) -> Option.map (fun f -> (k, f)) (Json.float_opt v)) kv;
          }
      | _ -> Error "timeseries tick lacks a ts_unix or fields object")
    | Some (Json.Int v) -> Error (Printf.sprintf "unsupported timeseries schema version %d" v)
    | Some _ | None -> Error "not a timeseries tick (no integer \"v\" field)"

  let load path =
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | exception Sys_error e -> Error e
    | text ->
      let rec parse acc lineno = function
        | [] -> Ok (List.rev acc)
        | line :: rest ->
          if String.trim line = "" then parse acc (lineno + 1) rest
          else (
            match Json.of_string line with
            | Error e -> Error (Printf.sprintf "%s:%d: invalid JSON: %s" path lineno e)
            | Ok json -> (
              match tick_of_json json with
              | Error e -> Error (Printf.sprintf "%s:%d: %s" path lineno e)
              | Ok tick -> parse (tick :: acc) (lineno + 1) rest))
      in
      parse [] 1 (String.split_on_char '\n' text)

  (* Per-series samples over the capture, as a bench report: two soak
     captures then diff under [expfinder bench-diff] like any pair of
     bench runs. *)
  let report ?(mode = "timeseries") ticks =
    let r = Report.create ~tool:"expfinder timeseries" ~mode () in
    let order = ref [] in
    let groups : (string, float list ref) Hashtbl.t = Hashtbl.create 32 in
    List.iter
      (fun tick ->
        List.iter
          (fun (name, v) ->
            match Hashtbl.find_opt groups name with
            | Some cell -> cell := v :: !cell
            | None ->
              Hashtbl.add groups name (ref [ v ]);
              order := name :: !order)
          tick.fields)
      ticks;
    List.iter
      (fun name ->
        let samples = List.rev !(Hashtbl.find groups name) in
        Report.add r ~id:("TS." ^ name) ~experiment:"TS" ~units:"sample"
          ~params:[ ("ticks", Json.Int (List.length samples)) ]
          samples)
      (List.rev !order);
    r
end

(* ------------------------------------------------------------------ *)
(* SLO burn-rate alerts                                                 *)
(* ------------------------------------------------------------------ *)

module Slo = struct
  (* Multi-window burn-rate alerting in the SRE-workbook shape: an
     objective fires only when both a fast window (default 5m, high
     burn) and a slow window (default 1h, lower burn) agree the error
     budget is being spent too fast.  Both windows are evaluated from
     the {!Timeseries} rings, so alerting shares retention with the
     dashboard and costs no extra collection. *)
  type target =
    | Availability of { target : float }
    | Latency_p99 of { threshold_ms : float; target : float }

  type objective = {
    oname : string;
    op : string;
    otarget : target;
    fast_s : int;
    slow_s : int;
    fast_burn : float;
    slow_burn : float;
  }

  let availability ?(fast_s = 300) ?(slow_s = 3600) ?(fast_burn = 14.4) ?(slow_burn = 6.0)
      ~op ~target () =
    {
      oname = op ^ "-availability";
      op;
      otarget = Availability { target };
      fast_s;
      slow_s;
      fast_burn;
      slow_burn;
    }

  let latency_p99 ?(fast_s = 300) ?(slow_s = 3600) ?(fast_burn = 14.4) ?(slow_burn = 6.0)
      ~op ~threshold_ms ~target () =
    {
      oname = op ^ "-latency-p99";
      op;
      otarget = Latency_p99 { threshold_ms; target };
      fast_s;
      slow_s;
      fast_burn;
      slow_burn;
    }

  type state = Passing | Firing

  let state_name = function Passing -> "ok" | Firing -> "firing"

  type alert = {
    objective : objective;
    mutable state : state;
    mutable since_unix : float; (* when the current state began *)
    mutable burn_fast : float;
    mutable burn_slow : float;
    mutable bad_fast : float;
    mutable bad_slow : float;
  }

  (* The sampler thread swaps/updates the alert list; the /alerts.json
     handler reads it.  The list cells are immutable, so an atomic swap
     of the list head is the whole protocol; the per-alert mutable
     fields are written only by the sampler (single writer) and a torn
     read moves one burn-rate sample. *)
  let active : alert list Atomic.t = Atomic.make []

  let configured = ref false

  let fresh o =
    {
      objective = o;
      state = Passing;
      since_unix = start_unix;
      burn_fast = 0.0;
      burn_slow = 0.0;
      bad_fast = 0.0;
      bad_slow = 0.0;
    }

  let set_objectives objs =
    configured := true;
    Atomic.set active (List.map fresh objs)

  let env_float name default =
    match Option.bind (Sys.getenv_opt name) float_of_string_opt with
    | Some v -> v
    | None -> default

  let env_int name default =
    match Option.bind (Sys.getenv_opt name) int_of_string_opt with
    | Some v when v >= 1 -> v
    | Some _ | None -> default

  (* Default objective set: availability per op class, plus a p99
     latency objective when EXPFINDER_SLO_P99_MS names a threshold.  The
     window lengths and burn thresholds are env-tunable so a soak test
     can compress hours into seconds. *)
  let objectives_from_env () =
    let fast_s = env_int "EXPFINDER_SLO_FAST_S" 300 in
    let slow_s = env_int "EXPFINDER_SLO_SLOW_S" 3600 in
    let fast_burn = env_float "EXPFINDER_SLO_FAST_BURN" 14.4 in
    let slow_burn = env_float "EXPFINDER_SLO_SLOW_BURN" 6.0 in
    let target = env_float "EXPFINDER_SLO_AVAILABILITY" 0.99 in
    let ops = [ "query"; "batch"; "update" ] in
    let avail =
      List.map
        (fun op -> availability ~fast_s ~slow_s ~fast_burn ~slow_burn ~op ~target ())
        ops
    in
    let latency =
      match Option.bind (Sys.getenv_opt "EXPFINDER_SLO_P99_MS") float_of_string_opt with
      | Some ms when ms > 0.0 ->
        let target = env_float "EXPFINDER_SLO_LATENCY_TARGET" 0.95 in
        List.map
          (fun op ->
            latency_p99 ~fast_s ~slow_s ~fast_burn ~slow_burn ~op ~threshold_ms:ms ~target ())
          ops
      | Some _ | None -> []
    in
    avail @ latency

  let ensure () = if not !configured then set_objectives (objectives_from_env ())

  let alerts () =
    ensure ();
    Atomic.get active

  let firing () = List.filter (fun a -> a.state = Firing) (alerts ())

  let budget = function
    | Availability { target } | Latency_p99 { target; _ } -> Float.max 1e-9 (1.0 -. target)

  (* Fraction of the window spent out of objective.  Availability
     divides errors by requests; latency counts the fraction of slots
     whose worst p99 crossed the threshold, over the slots that have
     data — so a freshly started server can still fire within the fast
     window instead of waiting for the ring to fill. *)
  let bad_fraction ~now ts op target ~seconds =
    match target with
    | Availability _ ->
      let req = Timeseries.window_sum ~now ts ~seconds ("req." ^ op) in
      let err = Timeseries.window_sum ~now ts ~seconds ("err." ^ op) in
      if req <= 0.0 then 0.0 else Float.min 1.0 (err /. req)
    | Latency_p99 { threshold_ms; _ } -> (
      match Timeseries.points ~now ts ~seconds ("win." ^ op ^ ".p99_ms") with
      | [] -> 0.0
      | pts ->
        let bad =
          List.length (List.filter (fun p -> p.Timeseries.vmax > threshold_ms) pts)
        in
        float_of_int bad /. float_of_int (List.length pts))

  let alert_json a =
    let o = a.objective in
    Json.Obj
      ([ ("name", Json.Str o.oname); ("op", Json.Str o.op) ]
      @ (match o.otarget with
        | Availability { target } ->
          [ ("kind", Json.Str "availability"); ("target", Json.Float target) ]
        | Latency_p99 { threshold_ms; target } ->
          [
            ("kind", Json.Str "latency_p99");
            ("threshold_ms", Json.Float threshold_ms);
            ("target", Json.Float target);
          ])
      @ [
          ("fast_s", Json.Int o.fast_s);
          ("slow_s", Json.Int o.slow_s);
          ("fast_burn_threshold", Json.Float o.fast_burn);
          ("slow_burn_threshold", Json.Float o.slow_burn);
          ("state", Json.Str (state_name a.state));
          ("firing", Json.Bool (a.state = Firing));
          ("burn_fast", Json.Float a.burn_fast);
          ("burn_slow", Json.Float a.burn_slow);
          ("bad_fast", Json.Float a.bad_fast);
          ("bad_slow", Json.Float a.bad_slow);
          ("since_unix", Json.Float a.since_unix);
        ])

  let evaluate_one ~now ts a =
    let o = a.objective in
    a.bad_fast <- bad_fraction ~now ts o.op o.otarget ~seconds:o.fast_s;
    a.bad_slow <- bad_fraction ~now ts o.op o.otarget ~seconds:o.slow_s;
    let b = budget o.otarget in
    a.burn_fast <- a.bad_fast /. b;
    a.burn_slow <- a.bad_slow /. b;
    let next = if a.burn_fast >= o.fast_burn && a.burn_slow >= o.slow_burn then Firing else Passing in
    if next <> a.state then begin
      a.state <- next;
      a.since_unix <- now;
      (* Transitions land in the query log so a workload capture carries
         its own alert history. *)
      Qlog.emit ~kind:Qlog.Alert ~graph_id:0 ~epoch:0 ~query:o.oname
        ~strategy:(match next with Firing -> "firing" | Passing -> "resolved")
        ~duration_ms:0.0 ~counters:[] ~pairs:0 ~digest:"" ~payload:(alert_json a) ()
    end

  let evaluate ?now ?(ts = Timeseries.shared) () =
    ensure ();
    let now = match now with Some n -> n | None -> Window.wall_seconds () in
    let alerts = Atomic.get active in
    List.iter (evaluate_one ~now ts) alerts;
    alerts

  let to_json ?now () =
    let now = match now with Some n -> n | None -> Window.wall_seconds () in
    Json.Obj
      [
        ("v", Json.Int 1);
        ("now_unix", Json.Float now);
        ("alerts", Json.Arr (List.map alert_json (alerts ())));
      ]
end

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                           *)
(* ------------------------------------------------------------------ *)

module Prometheus = struct
  (* Prometheus metric names admit [a-zA-Z0-9_:] only; the registry's
     dotted names map '.' (and any other byte) to '_', under an
     "expfinder_" namespace prefix. *)
  let sanitize name =
    String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
      name

  let metric_name name = "expfinder_" ^ sanitize name

  (* Two registry names may sanitize to the same token ("a.b" and
     "a:b" both become "a_b"); exposing both under one name would emit
     duplicate series.  Every member of a colliding set gets a short
     digest of its original name appended, which is deterministic and
     independent of registration order. *)
  let exposition_name ~taken name =
    let n = metric_name name in
    if Option.value ~default:0 (Hashtbl.find_opt taken n) > 1 then
      n ^ "_" ^ String.sub (Digest.to_hex (Digest.string name)) 0 6
    else n

  (* HELP text and label values have their own escaping rules in the
     exposition format: backslash and newline (plus double-quote inside
     label values). *)
  let help_escape s =
    let buf = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let label_escape s =
    let buf = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string buf "\\\\"
        | '"' -> Buffer.add_string buf "\\\""
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let add_float buf f =
    if Float.is_nan f then Buffer.add_string buf "NaN"
    else if f = Float.infinity then Buffer.add_string buf "+Inf"
    else if f = Float.neg_infinity then Buffer.add_string buf "-Inf"
    else Buffer.add_string buf (Printf.sprintf "%.9g" f)

  let render () =
    ignore (process_stats () : (string * int) list);
    let buf = Buffer.create 4096 in
    let line_int name v =
      Buffer.add_string buf name;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int v);
      Buffer.add_char buf '\n'
    in
    let line_float name v =
      Buffer.add_string buf name;
      Buffer.add_char buf ' ';
      add_float buf v;
      Buffer.add_char buf '\n'
    in
    let typ name kind = Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind) in
    let help name text =
      Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name (help_escape text))
    in
    let rows = Metrics.rows () in
    let taken = Hashtbl.create 64 in
    List.iter
      (fun (name, _) ->
        let n = metric_name name in
        Hashtbl.replace taken n (1 + Option.value ~default:0 (Hashtbl.find_opt taken n)))
      rows;
    List.iter
      (fun (name, m) ->
        let n = exposition_name ~taken name in
        help n (Printf.sprintf "ExpFinder registry metric %s" name);
        match m with
        | Metrics.M_counter c ->
          typ n "counter";
          line_int n (Counter.value c)
        | Metrics.M_gauge g ->
          typ n "gauge";
          line_int n (Gauge.value g)
        | Metrics.M_histogram h ->
          typ n "summary";
          if Histogram.count h > 0 then
            List.iter
              (fun (q, p) ->
                line_float (Printf.sprintf "%s{quantile=\"%s\"}" n q) (Histogram.percentile h p))
              [ ("0.5", 0.5); ("0.95", 0.95); ("0.99", 0.99) ];
          line_float (n ^ "_sum") (Histogram.sum h);
          line_int (n ^ "_count") (Histogram.count h))
      rows;
    (* Sliding windows: live QPS / error rate / latency quantiles per
       operation class, as gauges over the last [window_s] seconds. *)
    let windows = Window.all () in
    if windows <> [] then begin
      List.iter
        (fun (tn, htext) ->
          help tn htext;
          typ tn "gauge")
        [
          ("expfinder_window_seconds", "Length of the sliding window, per op class");
          ("expfinder_window_requests", "Requests observed in the sliding window");
          ("expfinder_window_errors", "Errors observed in the sliding window");
          ("expfinder_qps", "Mean request rate over the sliding window");
          ("expfinder_error_rate", "Error fraction over the sliding window");
          ("expfinder_latency_ms", "Latency quantiles over the sliding window");
        ];
      List.iter
        (fun (op, w) ->
          let s = Window.summary w in
          let lbl fmt = Printf.sprintf fmt (sanitize op) in
          line_int (lbl "expfinder_window_seconds{op=\"%s\"}") s.Window.window_s;
          line_int (lbl "expfinder_window_requests{op=\"%s\"}") s.Window.count;
          line_int (lbl "expfinder_window_errors{op=\"%s\"}") s.Window.errors;
          line_float (lbl "expfinder_qps{op=\"%s\"}") s.Window.qps;
          line_float (lbl "expfinder_error_rate{op=\"%s\"}") s.Window.error_rate;
          if s.Window.count > 0 then begin
            line_float
              (Printf.sprintf "expfinder_latency_ms{op=\"%s\",quantile=\"0.5\"}" (sanitize op))
              s.Window.p50;
            line_float
              (Printf.sprintf "expfinder_latency_ms{op=\"%s\",quantile=\"0.95\"}" (sanitize op))
              s.Window.p95;
            line_float
              (Printf.sprintf "expfinder_latency_ms{op=\"%s\",quantile=\"0.99\"}" (sanitize op))
              s.Window.p99
          end;
          (* OpenMetrics-style exemplar annotations: each latency
             bucket that has seen an admitted trace advertises that
             trace's id so a scraped percentile can be chased to the
             stored span tree in /traces.json.  Rendered as comments —
             the classic text format has no exemplar syntax, and
             comments pass every Prometheus parser untouched. *)
          List.iter
            (fun (e : Window.exemplar) ->
              Buffer.add_string buf
                (Printf.sprintf
                   "# EXEMPLAR expfinder_latency_ms{op=\"%s\",le=\"%.9g\"} %.9g {trace_id=\"%s\"} %.3f\n"
                   (sanitize op) e.Window.ex_le e.Window.ex_value_ms
                   (label_escape e.Window.ex_trace_id) e.Window.ex_ts_unix))
            (Window.exemplars w))
        windows
    end;
    (* SLO alert state, as last evaluated by the sampler: render never
       re-evaluates, so scraping cannot mutate alert state. *)
    (match Slo.alerts () with
    | [] -> ()
    | alerts ->
      help "expfinder_alert_active" "1 while the SLO burn-rate alert is firing";
      typ "expfinder_alert_active" "gauge";
      help "expfinder_alert_burn" "Error-budget burn rate per alert window";
      typ "expfinder_alert_burn" "gauge";
      List.iter
        (fun (a : Slo.alert) ->
          let o = a.Slo.objective in
          let name = label_escape o.Slo.oname and op = label_escape o.Slo.op in
          line_int
            (Printf.sprintf "expfinder_alert_active{alert=\"%s\",op=\"%s\"}" name op)
            (match a.Slo.state with Slo.Firing -> 1 | Slo.Passing -> 0);
          line_float
            (Printf.sprintf "expfinder_alert_burn{alert=\"%s\",op=\"%s\",window=\"fast\"}" name op)
            a.Slo.burn_fast;
          line_float
            (Printf.sprintf "expfinder_alert_burn{alert=\"%s\",op=\"%s\",window=\"slow\"}" name op)
            a.Slo.burn_slow)
        alerts);
    Buffer.contents buf
end

(* ------------------------------------------------------------------ *)
(* Postmortem dumps                                                     *)
(* ------------------------------------------------------------------ *)

module Postmortem = struct
  let schema_version = 1

  let normalize = function Some "" -> None | other -> other

  let dir_ref = ref (normalize (Sys.getenv_opt "EXPFINDER_POSTMORTEM_DIR"))

  let set_dir d = dir_ref := normalize d

  let dir () = !dir_ref

  let expfinder_env () =
    Array.to_list (Unix.environment ())
    |> List.filter_map (fun binding ->
           match String.index_opt binding '=' with
           | Some i when String.length binding > 10 && String.sub binding 0 10 = "EXPFINDER_" ->
             Some
               ( String.sub binding 0 i,
                 Json.Str (String.sub binding (i + 1) (String.length binding - i - 1)) )
           | _ -> None)
    |> List.sort compare

  (* Everything a 3am debugging session wants in one artifact: identity
     and configuration, the op-class windows, active alerts, the full
     metrics registry, the flight-recorder tail, the last two minutes of
     every timeseries, GC totals and allocation attribution. *)
  let document ?(reason = "unspecified") () =
    let now = Unix.gettimeofday () in
    let gc = Gc.quick_stat () in
    Json.Obj
      [
        ("v", Json.Int schema_version);
        ("reason", Json.Str reason);
        ("ts_unix", Json.Float now);
        ("pid", Json.Int (Unix.getpid ()));
        ("ocaml", Json.Str Sys.ocaml_version);
        ("argv", Json.Arr (Array.to_list (Array.map (fun s -> Json.Str s) Sys.argv)));
        ("start_unix", Json.Float start_unix);
        ("uptime_s", Json.Float (Float.max 0.0 (now -. start_unix)));
        ("env", Json.Obj (expfinder_env ()));
        ( "gc",
          Json.Obj
            [
              ("heap_words", Json.Int gc.Gc.heap_words);
              ("minor_words", Json.Float gc.Gc.minor_words);
              ("major_words", Json.Float gc.Gc.major_words);
              ("minor_collections", Json.Int gc.Gc.minor_collections);
              ("major_collections", Json.Int gc.Gc.major_collections);
              ("compactions", Json.Int gc.Gc.compactions);
              ("pause_us_total", Json.Int (Gcpause.pause_us_total ()));
              ("pause_us_max", Json.Int (Gcpause.pause_us_max ()));
            ] );
        ("alloc", Alloc.to_json ());
        ( "windows",
          Json.Obj
            (List.map
               (fun (op, w) -> (op, Window.summary_json (Window.summary w)))
               (Window.all ())) );
        ("alerts", Slo.to_json ~now ());
        ("metrics", Metrics.to_json ());
        ("recorder", Recorder.to_json ());
        ("timeseries", Timeseries.to_json ~now ~max_points:120 Timeseries.shared);
      ]

  (* Atomic by construction: the document is written to a dot-tmp
     sibling and renamed into place, so a reader never sees a torn
     artifact.  Any failure returns None — a postmortem writer that
     raises during a crash would mask the original failure. *)
  let write ?reason () =
    match !dir_ref with
    | None -> None
    | Some dir -> (
      try
        (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        let name =
          Printf.sprintf "postmortem-%d-%.0f.json" (Unix.getpid ())
            (Unix.gettimeofday () *. 1000.0)
        in
        let path = Filename.concat dir name in
        let tmp = path ^ ".tmp" in
        let oc = open_out tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc (Json.to_string ~pretty:true (document ?reason ())));
        Sys.rename tmp path;
        Some path
      with _ -> None)

  let load path =
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | exception Sys_error e -> Error e
    | text -> (
      match Json.of_string text with
      | Error e -> Error ("invalid JSON: " ^ e)
      | Ok json -> (
        match Json.member "v" json with
        | Some (Json.Int v) when v = schema_version -> Ok json
        | Some (Json.Int v) ->
          Error (Printf.sprintf "unsupported postmortem schema version %d" v)
        | Some _ | None -> Error "not a postmortem artifact (no integer \"v\" field)"))

  let pp ppf doc =
    let str k = Option.bind (Json.member k doc) Json.str_opt in
    let float k = Option.bind (Json.member k doc) Json.float_opt in
    let int k = Option.bind (Json.member k doc) Json.int_opt in
    Format.fprintf ppf "@[<v>postmortem: %s@,"
      (Option.value ~default:"?" (str "reason"));
    (match (int "pid", float "uptime_s", str "ocaml") with
    | Some pid, Some up, Some ocaml ->
      Format.fprintf ppf "pid %d, up %.1f s, ocaml %s@," pid up ocaml
    | _ -> ());
    (match float "ts_unix" with
    | Some ts ->
      let tm = Unix.gmtime ts in
      Format.fprintf ppf "written %04d-%02d-%02dT%02d:%02d:%02dZ@," (tm.Unix.tm_year + 1900)
        (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec
    | None -> ());
    (match Option.bind (Json.member "alerts" doc) (Json.member "alerts") with
    | Some (Json.Arr alerts) ->
      let firing =
        List.filter
          (fun a -> Json.member "firing" a = Some (Json.Bool true))
          alerts
      in
      if firing = [] then Format.fprintf ppf "alerts: %d configured, none firing@," (List.length alerts)
      else
        List.iter
          (fun a ->
            Format.fprintf ppf "alerts: FIRING %s (burn fast %.1f / slow %.1f)@,"
              (Option.value ~default:"?" (Option.bind (Json.member "name" a) Json.str_opt))
              (Option.value ~default:nan
                 (Option.bind (Json.member "burn_fast" a) Json.float_opt))
              (Option.value ~default:nan
                 (Option.bind (Json.member "burn_slow" a) Json.float_opt)))
          firing
    | _ -> ());
    (match Json.member "windows" doc with
    | Some (Json.Obj windows) ->
      List.iter
        (fun (op, s) ->
          match Window.summary_of_json s with
          | Some s -> Format.fprintf ppf "%-8s %a@," op Window.pp_summary s
          | None -> ())
        windows
    | _ -> ());
    (match Json.member "gc" doc with
    | Some gc ->
      let gint k = Option.value ~default:0 (Option.bind (Json.member k gc) Json.int_opt) in
      Format.fprintf ppf
        "gc: heap %.1f MiB, %d minor / %d major collections, pauses %.1f ms total, %.2f ms max@,"
        (float_of_int (gint "heap_words" * (Sys.word_size / 8)) /. 1048576.0)
        (gint "minor_collections") (gint "major_collections")
        (float_of_int (gint "pause_us_total") /. 1000.0)
        (float_of_int (gint "pause_us_max") /. 1000.0)
    | None -> ());
    (match Option.bind (Json.member "recorder" doc) Json.list_opt with
    | Some events -> Format.fprintf ppf "flight recorder: %d event(s)@," (List.length events)
    | None -> ());
    (match Option.bind (Json.member "timeseries" doc) (Json.member "series_kinds") with
    | Some (Json.Obj kinds) -> Format.fprintf ppf "timeseries: %d series@," (List.length kinds)
    | _ -> ());
    Format.fprintf ppf "@]"
end
