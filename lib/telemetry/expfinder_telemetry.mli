(** Engine-wide observability: a metrics registry, a span tracer, and
    wall-clock helpers.

    The subsystem has two activity levels:

    - {e counters, gauges and histograms} record unconditionally only
      when created with [~always:true] (the cache's per-instance
      accounting); registered metrics are otherwise gated by the global
      flag.  Recording never allocates: counters and gauges are single
      mutable ints, histogram state lives in pre-allocated arrays.
    - {e spans} ({!with_span}, {!collect}) are fully disabled unless the
      runtime flag is on ({!set_enabled}); a disabled [with_span] is one
      branch around the wrapped function.

    Naming scheme (see DESIGN.md): metric and span names are dotted
    lowercase paths, [<module>.<event>] — e.g. [bsim.worklist_pops],
    [cache.evictions], spans [plan], [candidates], [refine], [rank]. *)

val set_enabled : bool -> unit
(** Turn telemetry on or off at runtime (default: off).  Also honoured
    at startup via the [EXPFINDER_TELEMETRY=1] environment variable. *)

val enabled : unit -> bool

(** {1 JSON}

    A dependency-free JSON value with an emitter and a parser: the
    serialization substrate for metric dumps, span trees, bench reports
    and flight-recorder dumps. *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val to_string : ?pretty:bool -> t -> string
  (** Serialize.  Non-finite floats become [null]; strings are escaped.
      [~pretty:true] indents with two spaces and ends with a newline. *)

  val of_string : string -> (t, string) result
  (** Parse a complete JSON document (trailing garbage is an error). *)

  val escape : string -> string
  (** The string-literal escaping used by the emitter (no quotes). *)

  val member : string -> t -> t option
  (** Field lookup on an [Obj]; [None] on other constructors. *)

  val str_opt : t -> string option

  val int_opt : t -> int option

  val float_opt : t -> float option
  (** Accepts both [Float] and [Int]. *)

  val list_opt : t -> t list option
end

(** {1 Metrics} *)

module Counter : sig
  type t

  val create : ?always:bool -> string -> t
  (** A standalone (unregistered) counter.  [~always:true] makes it
      record even when telemetry is disabled. *)

  val name : t -> string

  val incr : t -> unit

  val add : t -> int -> unit
  (** Monotonic: saturates at [max_int] instead of wrapping.  The cell
      is atomic, so concurrent increments from worker domains are never
      lost and totals stay exact. *)

  val value : t -> int

  val reset : t -> unit
end

module Gauge : sig
  type t

  val create : ?always:bool -> string -> t

  val name : t -> string

  val set : t -> int -> unit

  val value : t -> int
end

module Histogram : sig
  (** Log-scale histogram: geometric buckets with 8 buckets per doubling
      (~9% relative resolution), covering 1e-9 .. 1e12.  Count, sum, min
      and max are tracked exactly; percentiles are resolved to a bucket
      upper bound.  All operations are serialized by a per-histogram
      mutex, so observations may arrive from any domain. *)

  type t

  val create : ?always:bool -> string -> t

  val name : t -> string

  val observe : t -> float -> unit
  (** Record a sample (non-positive samples land in the lowest bucket).
      Allocation-free. *)

  val count : t -> int

  val sum : t -> float

  val min_value : t -> float
  (** [nan] when empty. *)

  val max_value : t -> float
  (** [nan] when empty. *)

  val percentile : t -> float -> float
  (** [percentile h p] for [0 <= p <= 1]; [nan] when empty.  Clamped to
      the exact [min]/[max]. *)

  val reset : t -> unit
end

module Metrics : sig
  (** The process-wide registry.  [counter]/[gauge]/[histogram] create
      or return the metric registered under that name; asking for an
      existing name with a different metric kind raises
      [Invalid_argument].

      Registry operations (lookup-or-create, enumeration, reset) are
      serialized by an internal mutex: the sampler thread scrapes the
      registry while connection handlers register metrics lazily.
      Bumping an already-obtained [Counter.t]/[Gauge.t] stays
      lock-free. *)

  val counter : ?always:bool -> string -> Counter.t

  val gauge : ?always:bool -> string -> Gauge.t

  val histogram : ?always:bool -> string -> Histogram.t

  val counters_snapshot : unit -> (string * int) list
  (** Current value of every registered counter and gauge, sorted by
      name (the per-query profile diff base). *)

  val delta :
    before:(string * int) list -> after:(string * int) list -> (string * int) list
  (** Nonzero differences [after - before], sorted by name. *)

  val reset_all : unit -> unit
  (** Reset every registered metric to zero (tests, [expfinder stats]). *)

  val pp : Format.formatter -> unit -> unit
  (** Dump the registry, one metric per line, sorted by name. *)

  val to_json : unit -> Json.t
  (** The registry as one object, sorted by name: counters and gauges as
      [{kind; value}], histograms as [{kind; count; sum; min; max; p50;
      p95; p99}] (the [expfinder stats --json] dump). *)
end

(** {1 Span tracing} *)

module Span : sig
  (** A completed timed span: a name, a duration, optional key/value
      annotations, and child spans in execution order. *)

  type t

  val name : t -> string

  val duration_ms : t -> float

  val attrs : t -> (string * string) list

  val children : t -> t list

  val find : t -> string -> t option
  (** First descendant (or the span itself) with the given name,
      depth-first. *)

  val preorder_names : t -> string list
  (** Every span name in the tree, depth-first, parents first. *)

  val pp_tree : Format.formatter -> t -> unit
  (** Human-readable indented stage tree with timings and
      annotations. *)

  val self_ms : t -> float
  (** Time spent in the span itself, outside any child span (clamped at
      zero). *)

  val critical_path : t -> t list
  (** Root-to-leaf chain obtained by descending into the longest child
      at each level — the chain that bounds the request's latency. *)

  val pp_annotated : Format.formatter -> t -> unit
  (** Like {!pp_tree} but each line also shows self-time, and spans on
      the {!critical_path} are marked with a leading ["*"] (the
      [expfinder trace show] rendering). *)

  val to_chrome_json : ?trace_id:string -> ?span_id:string -> t -> string
  (** The tree as a Chrome trace-event JSON array ([ph:"X"] complete
      events, microsecond timestamps), loadable in [chrome://tracing]
      or [ui.perfetto.dev].  When a trace/span id is supplied, the
      export's [pid]/[tid] lanes are derived from them so concurrent
      requests land in distinct lanes; without one the historical
      [pid:1, tid:1] output is preserved byte-for-byte. *)

  val to_json : t -> Json.t
  (** The tree as a nested [{name; duration_ms; attrs; children}]
      object (the report/profile serialization, unlike the flat
      Chrome-event array of {!to_chrome_json}). *)

  val of_json : Json.t -> t option
  (** Inverse of {!to_json} as far as the shape allows: durations,
      attrs and tree structure round-trip; start times are not
      serialized, so the reconstructed spans carry a zero origin
      (enough for {!self_ms}, {!critical_path} and the renderers). *)
end

(** {1 Request trace contexts}

    Explicit, immutable per-request identity: a 128-bit trace id plus a
    64-bit root-span id, minted when a request enters the system (or
    adopted from the wire) and threaded by value through the engine,
    the query log, the flight recorder and the trace store.  The chain
    of open spans under an active {!Trace.collect} lives in
    domain-local storage, so concurrent domains trace independently —
    there is no process-global span stack. *)

module Trace : sig
  type ctx = {
    trace_id : string;  (** 32 lowercase hex chars; [""] for {!ambient} *)
    span_id : string;  (** 16 lowercase hex chars; [""] for {!ambient} *)
    sampled : bool;  (** record spans for this request even when tracing is globally off *)
  }

  val ambient : ctx
  (** The default root context: identity-free, never sampled.  The
      top-level [with_span]/[collect] shims use it, giving pre-context
      call sites their historical behaviour. *)

  val make : ?sampled:bool -> ?trace_id:string -> unit -> ctx
  (** Mint a fresh context (fresh span id always; fresh trace id unless
      a valid one is supplied).  Ids are MD5-derived from wall clock,
      pid and a process counter — unique correlation ids, not secrets. *)

  val valid_trace_id : string -> bool
  (** 32 lowercase hex chars, not all zero. *)

  val valid_span_id : string -> bool
  (** 16 lowercase hex chars, not all zero. *)

  val to_wire : ctx -> string
  (** Compact ["traceid-spanid"] form carried in the newline-JSON
      protocol's ["trace"] field. *)

  val to_traceparent : ctx -> string
  (** W3C-style ["00-traceid-spanid-01"] form used in HTTP
      [traceparent] headers. *)

  val of_wire : ?sampled:bool -> string -> ctx option
  (** Parse either wire form (case-insensitive), adopting the trace id
      and minting a fresh local span id.  [None] on anything malformed
      — the caller mints a fresh context instead of erroring. *)

  val with_span : ctx -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
  (** Run the function inside a child span of the innermost open span
      of the current domain.  When no {!collect} is recording, this is
      just the function call. *)

  val annotate : string -> string -> unit
  (** Attach a key/value annotation to the innermost open span (dropped
      when none is open). *)

  val annotate_int : string -> int -> unit

  val collect :
    ctx -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a * Span.t option
  (** Run the function inside a {e root} span and return the completed
      tree.  Records when the process-wide flag is on or the context is
      [sampled]; returns [None] (plain nested span) otherwise, or when
      another collection is already active on this domain — the
      outermost caller owns the trace. *)
end

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [Trace.with_span Trace.ambient]: run the function inside a child
    span of the innermost open span.  When telemetry is disabled or no
    {!collect} is active, this is just the function call. *)

val annotate : string -> string -> unit
(** Attach a key/value annotation to the innermost open span (dropped
    when none is open). *)

val annotate_int : string -> int -> unit

val collect :
  ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a * Span.t option
(** [Trace.collect Trace.ambient]: run the function inside a {e root}
    span and return the completed tree.  Returns [None] (plain nested
    span) when telemetry is disabled or another collection is already
    active — so the outermost caller owns the trace. *)

(** {1 Clock} *)

val now_us : unit -> float
(** Wall-clock microseconds (the tracer's clock; epoch-based). *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] and returns its result with the elapsed wall time
    in milliseconds (the benchmark harness's timer). *)

(** {1 Continuous folded-stack profiler}

    Always-on aggregation of completed span trees into collapsed-stack
    lines (["frame;frame;frame <self-ns>"], the flamegraph.pl /
    speedscope input format).  Each finished root span is folded
    immediately into a bounded table of
    [stack -> (count, inclusive ns, self ns)], so memory stays
    O(distinct stacks) regardless of traffic volume.  Stacks are
    prefixed with [domain-<i>] (the recording domain), making
    cross-domain time splits visible.  Serves [GET /profile.folded]
    and [expfinder profile]. *)

module Profile : sig
  type row = {
    stack : string;  (** [;]-joined frames, [domain-<i>] first *)
    count : int;  (** times this exact stack completed *)
    incl_ns : float;  (** total inclusive nanoseconds *)
    self_ns : float;  (** total self nanoseconds (excl. children) *)
  }

  val record : Span.t -> unit
  (** Fold one completed root span tree into the profile.  Mutex-guarded
      and cheap (O(tree) hash updates); safe from any domain. *)

  val rows : unit -> row list
  (** All accumulated stacks, sorted lexicographically. *)

  val top : ?n:int -> unit -> row list
  (** The [n] (default 10) stacks with the most self time, hottest
      first. *)

  val to_folded : unit -> string
  (** Collapsed-stack text: one ["stack <self-ns>\n"] line per row.
      Summing a frame's own lines with its descendants' reconstructs
      inclusive time — the contract flamegraph renderers expect. *)

  val reset : unit -> unit
  (** Drop all accumulated stacks and counters (the bound is kept). *)

  val folds : unit -> int
  (** Root span trees folded since start/reset. *)

  val dropped : unit -> int
  (** Stacks discarded because the table was at [max_stacks]; a nonzero
      value means the profile under-reports tail stacks. *)

  val max_stacks : unit -> int
  (** Current bound on distinct stacks (default 4096, or
      [EXPFINDER_PROFILE_STACKS]). *)

  val set_max_stacks : int -> unit
  (** Raise or lower the bound (ignored unless positive); existing
      entries are kept even if now over the bound. *)

  val to_json : unit -> Json.t
  (** Profiler health: [{stacks; max_stacks; folded; dropped}] — the
      stats block of [/domains.json]. *)
end

(** {1 Structured performance reports}

    Machine-readable benchmark reports ([BENCH_<tag>.json]): one record
    per measured experiment — id, workload params, raw samples,
    median/IQR — under a schema version, plus the pairing/diffing logic
    behind [expfinder bench-diff]. *)

module Report : sig
  val schema_version : int
  (** Version of the on-disk report format (currently [1]); {!load}
      rejects reports written under any other version. *)

  type sample_stats = {
    samples : float list;  (** raw samples, as measured *)
    median : float;  (** true median (mean of the middle pair when even) *)
    iqr : float;  (** [q3 - q1] *)
    q1 : float;
    q3 : float;
  }

  val stats_of_samples : float list -> sample_stats
  (** Quartiles by linear interpolation between order statistics; all
      [nan] on an empty list. *)

  type record = {
    id : string;  (** unique within a report, e.g. ["EXP-Q1.bsim.n=2000"] *)
    experiment : string;  (** the owning experiment, e.g. ["EXP-Q1"] *)
    units : string;  (** the samples' unit (almost always ["ms"]) *)
    params : (string * Json.t) list;  (** workload parameters *)
    stats : sample_stats;
  }

  type t
  (** A mutable report under construction (or loaded from disk). *)

  val create : ?tool:string -> ?mode:string -> unit -> t
  (** Fresh empty report.  [mode] records quick vs full so reports from
      different sweep sizes are not diffed against each other blindly. *)

  val add :
    t -> id:string -> ?experiment:string -> ?units:string -> ?params:(string * Json.t) list ->
    float list -> unit
  (** Append a record.  [experiment] defaults to the [id] prefix before
      the first ['.']. *)

  val records : t -> record list
  (** In insertion order. *)

  val to_json : t -> Json.t

  val write : t -> string -> unit
  (** Pretty-printed JSON to the given path. *)

  val load : string -> (t, string) result
  (** Read a report back, checking the schema version; derived stats are
      recomputed from the raw samples. *)

  (** {2 Regression diffing} *)

  type verdict = Regression | Improvement | Unchanged | Added | Removed

  type comparison = {
    cid : string;  (** record id *)
    verdict : verdict;
    old_median : float;  (** [nan] for [Added] *)
    new_median : float;  (** [nan] for [Removed] *)
    ratio : float;  (** [new_median / old_median]; [nan] when unpaired *)
  }

  val diff :
    ?threshold:float -> ?min_ms:float -> baseline:t -> candidate:t -> unit -> comparison list
  (** Pair records by id and compare medians.  A pair is a regression
      when the median grew by more than [threshold] (default 0.5, i.e.
      +50%) {e and} the Tukey intervals [q1 - 1.5*iqr, q3 + 1.5*iqr]
      of the two runs do not overlap (the IQR noise rule; the wide
      fences keep low-rep quick-mode runs from self-flagging);
      symmetrically for improvements.  Pairs whose medians are both
      below [min_ms] (default 0.05 ms) are noise and always
      [Unchanged]. *)

  val has_regression : comparison list -> bool

  val pp_diff : Format.formatter -> comparison list -> unit
  (** One line per non-[Unchanged] comparison plus a summary line. *)
end

(** {1 Flight recorder}

    An always-on, fixed-size ring buffer of recent query events (the
    last {!Recorder.capacity} queries): pattern digest, strategy,
    duration and per-query counter deltas.  Queries at least
    [EXPFINDER_SLOW_MS] milliseconds long are flagged as slow.  Dumped
    by [expfinder stats --recent] and automatically when the
    differential self-check fails. *)

module Recorder : sig
  type event = {
    seq : int;  (** monotonic sequence number of the query *)
    query : string;  (** pattern fingerprint *)
    strategy : string;  (** provenance / refinement strategy *)
    duration_ms : float;
    slow : bool;  (** duration reached the slow threshold *)
    trace_id : string;  (** "" when the request carried no trace context *)
    counters : (string * int) list;  (** nonzero counter deltas *)
  }

  val capacity : unit -> int
  (** Current ring size; older events are overwritten.  Defaults to 64,
      overridable at startup via [EXPFINDER_RECORDER_CAP]. *)

  val set_capacity : int -> unit
  (** Resize the ring at runtime (floor 1).  Resizing to a different
      size drops the buffered history. *)

  val slow_threshold_ms : unit -> float option
  (** The slow-query threshold; initialised from [EXPFINDER_SLOW_MS],
      [None] when unset (nothing is flagged). *)

  val set_slow_threshold_ms : float option -> unit

  val record :
    ?trace_id:string ->
    query:string -> strategy:string -> duration_ms:float -> counters:(string * int) list ->
    unit -> unit
  (** Push an event (the engine calls this on every query).  Slots are
      claimed with an atomic sequence counter and the ring array itself
      is swapped atomically on resize/clear, so concurrent recorders
      never collide and a concurrent reader always sees a coherent
      (if momentarily stale) ring. *)

  val recent : unit -> event list
  (** Buffered events, oldest first. *)

  val slow_events : unit -> event list

  val clear : unit -> unit

  val pp : Format.formatter -> unit -> unit

  val to_json : unit -> Json.t
end

(** {1 GC pause observation}

    Best-effort self-monitoring of GC pause time through
    [Runtime_events]: {!Gcpause.start} subscribes to the runtime's own
    event ring, and each {!Gcpause.poll} (called from
    {!process_stats}) drains it, pairing minor/major slice begin/end
    events into cumulative pause totals.  If the ring cannot be created
    the module stays inert and the totals read zero. *)

module Gcpause : sig
  val start : unit -> bool
  (** Start runtime-event collection for this process (idempotent).
      Returns [false] — and leaves the module inert — when the runtime
      ring cannot be created.  The backing [<pid>.events] file is placed
      in the temp directory unless [OCAML_RUNTIME_EVENTS_DIR] says
      otherwise. *)

  val active : unit -> bool

  val poll : unit -> unit
  (** Drain pending runtime events into the totals (cheap; no-op when
      not started).  Single-consumer by construction: concurrent polls
      are serialized by a mutex, and a contended call returns
      immediately rather than blocking — the skipped events are picked
      up by the next tick.  The totals themselves are atomics, safe to
      read from any thread. *)

  val pause_us_total : unit -> int
  (** Cumulative microseconds spent in observed minor/major GC slices,
      summed over all domains. *)

  val pause_us_max : unit -> int
  (** Longest single observed slice across all domains, in
      microseconds. *)

  val observed_slices : unit -> int

  val domain_spawns : unit -> int
  (** [EV_DOMAIN_SPAWN] lifecycle events observed since start. *)

  val domain_stops : unit -> int
  (** [EV_DOMAIN_TERMINATE] lifecycle events observed since start. *)

  type domain_totals = {
    domain : int;  (** runtime ring index (= domain slot; slots are
                       reused after a domain terminates) *)
    pause_us_total : int;
    pause_us_max : int;
    slices : int;
  }

  val by_domain : unit -> domain_totals list
  (** Per-domain pause totals, sorted by domain slot.  Each domain also
      feeds an always-on registry histogram
      [gc.domain<i>.pause_us]. *)
end

(** {1 Allocation attribution}

    A [Gc.Memprof]-based statistical allocation profiler: while active,
    sampled allocations are scaled by [1/rate] and charged (in bytes) to
    the innermost {!Alloc.with_label} label — the engine labels its op
    classes ("query" / "batch" / "update"), everything else lands under
    "other".  Enabled in the server and bench via
    [EXPFINDER_MEMPROF_RATE]. *)

module Alloc : sig
  val with_label : string -> (unit -> 'a) -> 'a
  (** Run [f] with [label] as the current attribution label (labels
      nest; exception-safe). *)

  val current_label : unit -> string
  (** The innermost active label, or ["other"]. *)

  val start : rate:float -> unit -> bool
  (** Start sampling at [rate] samples per allocated word (0 < rate <=
      1; typical: 1e-4).  Returns [false] if already active, the rate
      is out of range, or the runtime ships the [Gc.Memprof] interface
      without implementing it (OCaml 5.0/5.1 multicore) — attribution
      then stays inert instead of failing the caller. *)

  val start_from_env : unit -> bool
  (** {!start} with [EXPFINDER_MEMPROF_RATE] (clamped to 1.0); [false]
      when unset or unparsable. *)

  val stop : unit -> unit
  (** Stop and discard the active profile (idempotent). *)

  val active : unit -> bool

  val rate : unit -> float option

  val bytes_by_label : unit -> (string * int) list
  (** Estimated bytes allocated per label since the last {!reset},
      sorted by label. *)

  val reset : unit -> unit

  val to_json : unit -> Json.t
end

(** {1 Process gauges} *)

val process_stats : unit -> (string * int) list
(** Sample the process: resident set size in bytes (0 where
    [/proc/self/statm] is unavailable), major-heap words, cumulative
    minor/major allocated words, GC minor/major collection counts
    ({!Gc.quick_stat}), cumulative and max GC pause microseconds
    ({!Gcpause}), the process start time and the uptime in seconds.
    Each sample is also published as an always-on gauge
    ([process.rss_bytes], [process.heap_words], ...,
    [uptime.seconds] — the latter surfacing in Prometheus as
    [expfinder_uptime_seconds]).  Polls {!Gcpause} first. *)

(** {1 Sliding windows}

    Bucketed sliding-window aggregation for the serving path: a ring of
    per-second buckets over the last N seconds, yielding live QPS, error
    rate and latency percentiles per operation class.  Unlike the
    metric registry, windows record unconditionally — the live SLO
    surface must not depend on the telemetry flag.  Latency samples use
    the same log-scale buckets as {!Histogram} (~9% relative
    resolution, exact min/max clamping). *)

module Window : sig
  type t

  val default_seconds : int
  (** 60. *)

  val create : ?seconds:int -> string -> t
  (** A standalone (unregistered) window over the last [seconds]
      (default {!default_seconds}, floor 1) seconds. *)

  val name : t -> string

  val seconds : t -> int

  val observe : t -> ?error:bool -> ?now:float -> ?trace:string -> float -> unit
  (** [observe w ms] records one request of [ms] milliseconds in the
      bucket of the current second.  [?now] (unix seconds) pins the
      clock for tests.  [?trace] (a non-empty trace id) additionally
      installs the request as the exemplar of its latency bucket —
      callers should only pass ids of traces admitted to the
      {!Tracestore}, so every advertised exemplar resolves.
      Allocation-free without [?trace].

      Writers are serialized by a per-window mutex, so any worker
      domain of the serving pool may observe into any op-class window;
      bucket stamps and the lifetime totals are atomic, so a concurrent
      {!summary}/{!totals} reader (the sampler, the SLO evaluator)
      stays lock-free and never merges a half-reclaimed bucket or
      reads a torn total. *)

  val totals : t -> int * int
  (** Lifetime [(requests, errors)] since creation (or {!reset}) —
      cumulative counters that outlive the ring, differentiated by the
      timeseries sampler into per-tick rates. *)

  val reset : t -> unit

  (** A merged view of the buckets still inside the window. *)
  type summary = {
    window_s : int;
    count : int;
    errors : int;
    qps : float;  (** [count / window_s] *)
    error_rate : float;  (** 0 when the window is empty *)
    p50 : float;  (** latency percentiles in ms; [nan] when empty *)
    p95 : float;
    p99 : float;
    mean_ms : float;
    max_ms : float;
  }

  val summary : ?now:float -> t -> summary

  val summary_json : summary -> Json.t
  (** As a flat object ([qps], [p95_ms], ...); [nan] fields serialize as
      [null]. *)

  val summary_of_json : Json.t -> summary option
  (** Parse a {!summary_json} dump back (the [stats --server] client
      side); [null]/missing latency fields come back as [nan]. *)

  val pp_summary : Format.formatter -> summary -> unit
  (** One human-readable line: count, QPS, error rate, p50/p95/p99. *)

  (** {2 Exemplars} — one recent trace id per latency bucket, linking
      scraped percentiles to stored traces. *)

  type exemplar = {
    ex_le : float;  (** upper bound of the latency bucket, in ms *)
    ex_trace_id : string;
    ex_value_ms : float;  (** the exemplar observation itself *)
    ex_ts_unix : float;  (** when it was observed *)
  }

  val exemplars : t -> exemplar list
  (** Current exemplars, ordered by bucket bound.  Exemplars persist
      until overwritten by a later traced observation in the same
      bucket (or {!reset}); they are a drill-down hint, not a windowed
      statistic. *)

  val exemplar_json : exemplar -> Json.t
  (** [{le; trace_id; value_ms; ts_unix}]. *)

  val to_json : ?now:float -> t -> Json.t
  (** {!summary_json} of the current summary plus an [exemplars] array
      (the [/stats.json] per-window document; {!summary_of_json}
      ignores the extra member). *)

  (** {2 Registry} — operation-class windows (query/batch/update),
      created on first use by the engine and enumerated by the
      exporters.  Mutex-protected, same contract as the metrics
      registry. *)

  val get : ?seconds:int -> string -> t
  (** The registered window under that name, created on first use
      ([?seconds] only applies to the creating call). *)

  val all : unit -> (string * t) list
  (** Sorted by name. *)

  val reset_all : unit -> unit
end

(** {1 In-process trace store}

    A bounded, mutex-guarded ring of recently finished request traces —
    the backing store for [GET /traces.json] and the [expfinder trace]
    explorer.  Admission combines tail sampling (errored requests and
    requests at or beyond their op window's p99 are always kept) with
    head sampling (one in ten of the unremarkable rest), so the store
    holds the interesting traces plus a thin representative sample at
    bounded memory. *)

module Tracestore : sig
  type stored = {
    strace_id : string;
    sspan_id : string;  (** the request's root span id *)
    sop : string;  (** op class: ["query"], ["batch"], ["update"] *)
    squery : string;  (** pattern fingerprint / batch label / ["update"] *)
    sduration_ms : float;
    serror : bool;
    skept : string;  (** admission reason: ["error"], ["slow"] or ["sampled"] *)
    sts_unix : float;
    sroot : Span.t option;  (** span tree, when one was recorded *)
  }

  val default_capacity : int
  (** 128; overridable at startup via [EXPFINDER_TRACE_CAP]. *)

  val capacity : unit -> int

  val set_capacity : int -> unit
  (** Resize the ring (floor 1); resizing drops the stored traces. *)

  val record :
    trace_id:string ->
    span_id:string ->
    op:string ->
    query:string ->
    duration_ms:float ->
    error:bool ->
    ?root:Span.t ->
    unit ->
    bool
  (** Offer a finished request; [true] iff it was admitted.  The engine
      uses the verdict to decide whether to advertise the trace id as a
      histogram exemplar, so exemplars always resolve to stored traces.
      Identity-free requests ([trace_id = ""]) are never stored. *)

  val recent : unit -> stored list
  (** Stored traces, newest first. *)

  val find : string -> stored option
  (** Look up by full trace id, or by unique prefix. *)

  val seen : unit -> int
  (** Requests offered (admitted or not) since the last {!clear}. *)

  val clear : unit -> unit

  val stored_json : stored -> Json.t

  val stored_of_json : Json.t -> stored option
  (** Parse one {!stored_json} object back (the [expfinder trace]
      client side). *)

  val to_json : unit -> Json.t
  (** The [/traces.json] document: [{capacity; seen; traces}]. *)

  val pp_stored : Format.formatter -> stored -> unit
  (** Header line (id, op, query, duration, admission reason) followed
      by the span tree via {!Span.pp_annotated}, critical path
      marked. *)
end

(** {1 Query log}

    An append-only JSONL log of serving-path events — one line per
    query, batch or update batch — with an env-configurable sink
    ([EXPFINDER_QLOG]) and size-based rotation
    ([EXPFINDER_QLOG_MAX_BYTES], one archived generation at
    [<sink>.1]).  Events carry the request id, the snapshot identity
    [(graph_id, epoch)] the request ran against, the pattern digest,
    strategy, duration, per-request counter deltas, answer size and
    digest, slow/error flags, and (when available) a replayable payload
    — enough for [expfinder replay] to re-run the workload and verify
    answer digests.  See DESIGN.md for the schema.

    The sink is mutex-guarded per sink and sequence numbers are claimed
    atomically: alert events emitted from the sampler thread interleave
    with the handler's query events line-atomically, never torn. *)

module Qlog : sig
  val schema_version : int
  (** Version of the per-line event format (currently [2], which added
      [trace_id]). *)

  val min_schema_version : int
  (** Oldest version {!load} still accepts (currently [1]; v1 events
      come back with [trace_id = ""]).  Anything outside
      [[min_schema_version, schema_version]] is rejected. *)

  type kind = Query | Batch | Update | Alert

  val kind_name : kind -> string
  (** ["query"], ["batch"], ["update"], ["alert"].  [Alert] events are
      SLO state transitions written by {!Slo.evaluate}; replay skips
      them. *)

  type event = {
    seq : int;  (** request id, monotonic within the process *)
    ts_unix : float;  (** wall-clock seconds at emission *)
    kind : kind;
    graph_id : int;  (** snapshot identity the request ran against *)
    epoch : int;
    query : string;  (** pattern fingerprint / batch label / ["update"] *)
    strategy : string;
    duration_ms : float;
    counters : (string * int) list;  (** nonzero counter deltas *)
    pairs : int;  (** answer size (update events: effective updates) *)
    digest : string;  (** answer digest; [""] when not applicable *)
    slow : bool;  (** duration reached [EXPFINDER_SLOW_MS] *)
    trace_id : string;  (** [""] when the request carried no trace context (or a v1 line) *)
    error : string option;
    payload : Json.t option;  (** replayable request body *)
  }

  val set_sink : string option -> unit
  (** Point the log at a path ([None] and [Some ""] disable).
      Initialised from
      [EXPFINDER_QLOG]; the file opens lazily on the first {!emit} and
      is appended to. *)

  val sink : unit -> string option

  val enabled : unit -> bool
  (** A sink is configured. *)

  val max_bytes : unit -> int

  val set_max_bytes : int -> unit
  (** Rotation threshold (floor 4096; default 64 MiB, or
      [EXPFINDER_QLOG_MAX_BYTES]).  When appending the next event would
      exceed it, the sink is renamed to [<sink>.1] (replacing any
      previous archive) and a fresh file is started. *)

  val emit :
    kind:kind ->
    graph_id:int ->
    epoch:int ->
    query:string ->
    strategy:string ->
    duration_ms:float ->
    counters:(string * int) list ->
    pairs:int ->
    digest:string ->
    ?trace_id:string ->
    ?error:string ->
    ?payload:Json.t ->
    unit ->
    unit
  (** Append one event (no-op without a sink).  The sequence number,
      timestamp and slow flag are assigned here; every event is flushed
      so a crash loses at most the event being written.  Sink I/O
      failures (unwritable path, full disk) never raise into the
      caller: the sink is disabled with one stderr warning, and
      {!set_sink} re-arms it. *)

  val close : unit -> unit
  (** Flush and close the sink channel (the path stays configured). *)

  val event_json : event -> Json.t

  val event_of_json : Json.t -> (event, string) result

  val load : string -> (event list, string) result
  (** Parse a JSONL file back into events (blank lines skipped); the
      error names the offending line. *)
end

(** {1 Time series retention}

    Bounded-memory, multi-resolution retention: every recorded value
    feeds one ring per resolution (default 1s x 120 / 10s x 360 /
    60s x 720, about 2 minutes / 1 hour / 12 hours), so the coarse
    rings are exact downsamples of the fine one and reads never
    allocate beyond the returned points.  {!Timeseries.sample} is the
    periodic collector driven by the server's sampler thread; it pulls
    the op-class windows, {!process_stats}, the counter registry and
    {!Alloc} into the shared instance and appends one JSONL tick to the
    [EXPFINDER_TIMESERIES] sink (rotation as in {!Qlog}, via
    [EXPFINDER_TIMESERIES_MAX_BYTES]). *)

module Timeseries : sig
  val schema_version : int
  (** Version of the JSONL tick format and of the [/timeseries.json]
      document (currently [1]). *)

  type kind =
    | Rate  (** per-tick delta of a cumulative source; aggregate = sum *)
    | Level  (** instantaneous reading; aggregate = last/min/max *)

  val kind_name : kind -> string

  type t

  val default_resolutions : (int * int) list
  (** [(res_seconds, slots)] per ring: [[(1, 120); (10, 360); (60, 720)]]. *)

  val create : ?resolutions:(int * int) list -> unit -> t
  (** A fresh store (floors: 1 s resolution, 2 slots; duplicate
      resolutions collapse). *)

  val shared : t
  (** The process-wide instance behind [/timeseries.json], the sampler
      and postmortems. *)

  val resolutions : t -> (int * int) list

  val names : t -> string list
  (** Every series ever recorded, in first-recorded order. *)

  val kind_of : t -> string -> kind option

  val record : ?now:float -> t -> kind -> string -> float -> unit
  (** Record one value into every ring ([?now] pins the clock for
      tests; non-finite values are dropped). *)

  (** One retained slot of one series. *)
  type point = {
    t_unix : int;  (** slot start, unix seconds *)
    res_s : int;
    n : int;  (** samples merged into the slot *)
    sum : float;
    vmin : float;
    vmax : float;
    last : float;
  }

  val points : ?now:float -> t -> seconds:int -> string -> point list
  (** The series' points over the trailing [seconds], oldest first,
      from the finest ring that spans the range. *)

  val window_sum : ?now:float -> t -> seconds:int -> string -> float
  (** Sum of [sum] over {!points} (the natural aggregate of a [Rate]
      series). *)

  val sample : ?now:float -> ?persist:bool -> t -> (string * float) list
  (** One sampler tick: collect every live source into [t] and (unless
      [~persist:false]) append the tick to the sink.  Returns the
      recorded [(series, value)] pairs.  Cumulative sources prime on
      the first tick and yield [Rate] deltas from the second on. *)

  val to_json : ?now:float -> ?max_points:int -> t -> Json.t
  (** The retained data as the [/timeseries.json] document: one entry
      per resolution, each series as [[t_unix, last, sum, min, max,
      count]] point arrays ([?max_points] caps the tail length per
      series per resolution). *)

  val set_sink : string option -> unit
  (** Point the tick log at a path ([None] / [Some ""] disable);
      initialised from [EXPFINDER_TIMESERIES]. *)

  val sink : unit -> string option

  (** {2 Persisted captures} *)

  type tick = { ts_unix : float; fields : (string * float) list }

  val load : string -> (tick list, string) result
  (** Parse a JSONL capture back (blank lines skipped); the error names
      the offending line. *)

  val report : ?mode:string -> tick list -> Report.t
  (** One report record per series ([TS.<name>], experiment [TS]) with
      the per-tick values as samples — two captures diff under
      [expfinder bench-diff] like any pair of bench runs. *)
end

(** {1 SLO burn-rate alerts}

    Declarative objectives evaluated from the {!Timeseries} rings with
    multi-window burn-rate rules (SRE-workbook shape): an alert fires
    only while {e both} the fast window (default 5 m) and the slow
    window (default 1 h) burn error budget faster than their
    thresholds (defaults 14.4 / 6.0), and clears as soon as either
    recovers.  The default objective set — availability per op class,
    plus p99 latency when [EXPFINDER_SLO_P99_MS] is set — comes from
    the environment ([EXPFINDER_SLO_AVAILABILITY],
    [EXPFINDER_SLO_FAST_S], [EXPFINDER_SLO_SLOW_S],
    [EXPFINDER_SLO_FAST_BURN], [EXPFINDER_SLO_SLOW_BURN],
    [EXPFINDER_SLO_LATENCY_TARGET]). *)

module Slo : sig
  type target =
    | Availability of { target : float }
        (** e.g. [0.99]: at most 1% of requests may error *)
    | Latency_p99 of { threshold_ms : float; target : float }
        (** at least [target] of slots must keep p99 under the
            threshold *)

  type objective = {
    oname : string;  (** alert name, e.g. ["query-availability"] *)
    op : string;  (** op class: ["query"] / ["batch"] / ["update"] *)
    otarget : target;
    fast_s : int;
    slow_s : int;
    fast_burn : float;
    slow_burn : float;
  }

  val availability :
    ?fast_s:int -> ?slow_s:int -> ?fast_burn:float -> ?slow_burn:float ->
    op:string -> target:float -> unit -> objective

  val latency_p99 :
    ?fast_s:int -> ?slow_s:int -> ?fast_burn:float -> ?slow_burn:float ->
    op:string -> threshold_ms:float -> target:float -> unit -> objective

  type state = Passing | Firing

  val state_name : state -> string
  (** ["ok"] / ["firing"]. *)

  (** Live evaluation state of one objective. *)
  type alert = {
    objective : objective;
    mutable state : state;
    mutable since_unix : float;  (** when the current state began *)
    mutable burn_fast : float;
    mutable burn_slow : float;
    mutable bad_fast : float;  (** bad fraction of the fast window *)
    mutable bad_slow : float;
  }

  val set_objectives : objective list -> unit
  (** Replace the active objective set (resets all alert state). *)

  val objectives_from_env : unit -> objective list
  (** The env-derived default set (used on first access when
      {!set_objectives} was never called). *)

  val alerts : unit -> alert list

  val firing : unit -> alert list

  val evaluate : ?now:float -> ?ts:Timeseries.t -> unit -> alert list
  (** Recompute every alert from the timeseries rings (default
      {!Timeseries.shared}; [?now] pins the clock).  State transitions
      are appended to the query log as [alert] events. *)

  val alert_json : alert -> Json.t

  val to_json : ?now:float -> unit -> Json.t
  (** The [/alerts.json] document. *)
end

(** {1 Prometheus exposition} *)

module Prometheus : sig
  val render : unit -> string
  (** The metric registry, the sliding windows, the process gauges and
      the SLO alert state in the Prometheus text exposition format,
      under an [expfinder_] namespace ([.] mapped to [_]), with a
      [# HELP] and [# TYPE] line per family: counters and gauges as
      themselves, histograms as summaries with p50/p95/p99 quantiles,
      windows as [expfinder_qps{op="query"}],
      [expfinder_error_rate{op=...}] and
      [expfinder_latency_ms{op=...,quantile="0.95"}] gauges, alerts as
      [expfinder_alert_active{alert=...,op=...}] (plus
      [expfinder_alert_burn{...,window="fast"|"slow"}]).  Registry
      names that sanitize to the same exposition token are
      disambiguated with a deterministic digest suffix instead of
      emitting duplicate series.  Samples {!process_stats} on each
      call; never re-evaluates alerts, so scraping cannot mutate alert
      state. *)
end

(** {1 Postmortem dumps}

    One self-contained crash artifact: reason, identity and
    [EXPFINDER_*] configuration, GC totals and allocation attribution,
    op-class window summaries, alert state, the metrics registry, the
    flight-recorder tail and the recent timeseries — written atomically
    (dot-tmp then rename) to [EXPFINDER_POSTMORTEM_DIR] on fatal signal
    or uncaught server exception, and pretty-printed by [expfinder
    postmortem FILE]. *)

module Postmortem : sig
  val schema_version : int

  val set_dir : string option -> unit
  (** Where artifacts land ([None] / [Some ""] disable); initialised
      from [EXPFINDER_POSTMORTEM_DIR].  The directory is created on
      first write. *)

  val dir : unit -> string option

  val document : ?reason:string -> unit -> Json.t
  (** Assemble the artifact document without writing it. *)

  val write : ?reason:string -> unit -> string option
  (** Atomically write one artifact ([postmortem-<pid>-<ms>.json]) and
      return its path.  [None] when no directory is configured or on
      any failure — a postmortem writer that raises during a crash
      would mask the original failure. *)

  val load : string -> (Json.t, string) result
  (** Read an artifact back, checking the schema version. *)

  val pp : Format.formatter -> Json.t -> unit
  (** Human summary of a loaded artifact: reason, identity, firing
      alerts, window summaries, GC totals. *)
end
