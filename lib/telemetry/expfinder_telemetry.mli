(** Engine-wide observability: a metrics registry, a span tracer, and
    wall-clock helpers.

    The subsystem has two activity levels:

    - {e counters, gauges and histograms} record unconditionally only
      when created with [~always:true] (the cache's per-instance
      accounting); registered metrics are otherwise gated by the global
      flag.  Recording never allocates: counters and gauges are single
      mutable ints, histogram state lives in pre-allocated arrays.
    - {e spans} ({!with_span}, {!collect}) are fully disabled unless the
      runtime flag is on ({!set_enabled}); a disabled [with_span] is one
      branch around the wrapped function.

    Naming scheme (see DESIGN.md): metric and span names are dotted
    lowercase paths, [<module>.<event>] — e.g. [bsim.worklist_pops],
    [cache.evictions], spans [plan], [candidates], [refine], [rank]. *)

val set_enabled : bool -> unit
(** Turn telemetry on or off at runtime (default: off).  Also honoured
    at startup via the [EXPFINDER_TELEMETRY=1] environment variable. *)

val enabled : unit -> bool

(** {1 JSON}

    A dependency-free JSON value with an emitter and a parser: the
    serialization substrate for metric dumps, span trees, bench reports
    and flight-recorder dumps. *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val to_string : ?pretty:bool -> t -> string
  (** Serialize.  Non-finite floats become [null]; strings are escaped.
      [~pretty:true] indents with two spaces and ends with a newline. *)

  val of_string : string -> (t, string) result
  (** Parse a complete JSON document (trailing garbage is an error). *)

  val escape : string -> string
  (** The string-literal escaping used by the emitter (no quotes). *)

  val member : string -> t -> t option
  (** Field lookup on an [Obj]; [None] on other constructors. *)

  val str_opt : t -> string option

  val int_opt : t -> int option

  val float_opt : t -> float option
  (** Accepts both [Float] and [Int]. *)

  val list_opt : t -> t list option
end

(** {1 Metrics} *)

module Counter : sig
  type t

  val create : ?always:bool -> string -> t
  (** A standalone (unregistered) counter.  [~always:true] makes it
      record even when telemetry is disabled. *)

  val name : t -> string

  val incr : t -> unit

  val add : t -> int -> unit
  (** Monotonic: saturates at [max_int] instead of wrapping. *)

  val value : t -> int

  val reset : t -> unit
end

module Gauge : sig
  type t

  val create : ?always:bool -> string -> t

  val name : t -> string

  val set : t -> int -> unit

  val value : t -> int
end

module Histogram : sig
  (** Log-scale histogram: geometric buckets with 8 buckets per doubling
      (~9% relative resolution), covering 1e-9 .. 1e12.  Count, sum, min
      and max are tracked exactly; percentiles are resolved to a bucket
      upper bound. *)

  type t

  val create : ?always:bool -> string -> t

  val name : t -> string

  val observe : t -> float -> unit
  (** Record a sample (non-positive samples land in the lowest bucket).
      Allocation-free. *)

  val count : t -> int

  val sum : t -> float

  val min_value : t -> float
  (** [nan] when empty. *)

  val max_value : t -> float
  (** [nan] when empty. *)

  val percentile : t -> float -> float
  (** [percentile h p] for [0 <= p <= 1]; [nan] when empty.  Clamped to
      the exact [min]/[max]. *)

  val reset : t -> unit
end

module Metrics : sig
  (** The process-wide registry.  [counter]/[gauge]/[histogram] create
      or return the metric registered under that name; asking for an
      existing name with a different metric kind raises
      [Invalid_argument]. *)

  val counter : ?always:bool -> string -> Counter.t

  val gauge : ?always:bool -> string -> Gauge.t

  val histogram : ?always:bool -> string -> Histogram.t

  val counters_snapshot : unit -> (string * int) list
  (** Current value of every registered counter and gauge, sorted by
      name (the per-query profile diff base). *)

  val delta :
    before:(string * int) list -> after:(string * int) list -> (string * int) list
  (** Nonzero differences [after - before], sorted by name. *)

  val reset_all : unit -> unit
  (** Reset every registered metric to zero (tests, [expfinder stats]). *)

  val pp : Format.formatter -> unit -> unit
  (** Dump the registry, one metric per line, sorted by name. *)

  val to_json : unit -> Json.t
  (** The registry as one object, sorted by name: counters and gauges as
      [{kind; value}], histograms as [{kind; count; sum; min; max; p50;
      p95; p99}] (the [expfinder stats --json] dump). *)
end

(** {1 Span tracing} *)

module Span : sig
  (** A completed timed span: a name, a duration, optional key/value
      annotations, and child spans in execution order. *)

  type t

  val name : t -> string

  val duration_ms : t -> float

  val attrs : t -> (string * string) list

  val children : t -> t list

  val find : t -> string -> t option
  (** First descendant (or the span itself) with the given name,
      depth-first. *)

  val preorder_names : t -> string list
  (** Every span name in the tree, depth-first, parents first. *)

  val pp_tree : Format.formatter -> t -> unit
  (** Human-readable indented stage tree with timings and
      annotations. *)

  val to_chrome_json : t -> string
  (** The tree as a Chrome trace-event JSON array ([ph:"X"] complete
      events, microsecond timestamps), loadable in [chrome://tracing]
      or [ui.perfetto.dev]. *)

  val to_json : t -> Json.t
  (** The tree as a nested [{name; duration_ms; attrs; children}]
      object (the report/profile serialization, unlike the flat
      Chrome-event array of {!to_chrome_json}). *)
end

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the function inside a child span of the innermost open span.
    When telemetry is disabled or no {!collect} is active, this is just
    the function call. *)

val annotate : string -> string -> unit
(** Attach a key/value annotation to the innermost open span (dropped
    when none is open). *)

val annotate_int : string -> int -> unit

val collect :
  ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a * Span.t option
(** Run the function inside a {e root} span and return the completed
    tree.  Returns [None] (plain nested span) when telemetry is
    disabled or another collection is already active — so the outermost
    caller owns the trace. *)

(** {1 Clock} *)

val now_us : unit -> float
(** Wall-clock microseconds (the tracer's clock; epoch-based). *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] and returns its result with the elapsed wall time
    in milliseconds (the benchmark harness's timer). *)

(** {1 Structured performance reports}

    Machine-readable benchmark reports ([BENCH_<tag>.json]): one record
    per measured experiment — id, workload params, raw samples,
    median/IQR — under a schema version, plus the pairing/diffing logic
    behind [expfinder bench-diff]. *)

module Report : sig
  val schema_version : int
  (** Version of the on-disk report format (currently [1]); {!load}
      rejects reports written under any other version. *)

  type sample_stats = {
    samples : float list;  (** raw samples, as measured *)
    median : float;  (** true median (mean of the middle pair when even) *)
    iqr : float;  (** [q3 - q1] *)
    q1 : float;
    q3 : float;
  }

  val stats_of_samples : float list -> sample_stats
  (** Quartiles by linear interpolation between order statistics; all
      [nan] on an empty list. *)

  type record = {
    id : string;  (** unique within a report, e.g. ["EXP-Q1.bsim.n=2000"] *)
    experiment : string;  (** the owning experiment, e.g. ["EXP-Q1"] *)
    units : string;  (** the samples' unit (almost always ["ms"]) *)
    params : (string * Json.t) list;  (** workload parameters *)
    stats : sample_stats;
  }

  type t
  (** A mutable report under construction (or loaded from disk). *)

  val create : ?tool:string -> ?mode:string -> unit -> t
  (** Fresh empty report.  [mode] records quick vs full so reports from
      different sweep sizes are not diffed against each other blindly. *)

  val add :
    t -> id:string -> ?experiment:string -> ?units:string -> ?params:(string * Json.t) list ->
    float list -> unit
  (** Append a record.  [experiment] defaults to the [id] prefix before
      the first ['.']. *)

  val records : t -> record list
  (** In insertion order. *)

  val to_json : t -> Json.t

  val write : t -> string -> unit
  (** Pretty-printed JSON to the given path. *)

  val load : string -> (t, string) result
  (** Read a report back, checking the schema version; derived stats are
      recomputed from the raw samples. *)

  (** {2 Regression diffing} *)

  type verdict = Regression | Improvement | Unchanged | Added | Removed

  type comparison = {
    cid : string;  (** record id *)
    verdict : verdict;
    old_median : float;  (** [nan] for [Added] *)
    new_median : float;  (** [nan] for [Removed] *)
    ratio : float;  (** [new_median / old_median]; [nan] when unpaired *)
  }

  val diff :
    ?threshold:float -> ?min_ms:float -> baseline:t -> candidate:t -> unit -> comparison list
  (** Pair records by id and compare medians.  A pair is a regression
      when the median grew by more than [threshold] (default 0.5, i.e.
      +50%) {e and} the Tukey intervals [q1 - 1.5*iqr, q3 + 1.5*iqr]
      of the two runs do not overlap (the IQR noise rule; the wide
      fences keep low-rep quick-mode runs from self-flagging);
      symmetrically for improvements.  Pairs whose medians are both
      below [min_ms] (default 0.05 ms) are noise and always
      [Unchanged]. *)

  val has_regression : comparison list -> bool

  val pp_diff : Format.formatter -> comparison list -> unit
  (** One line per non-[Unchanged] comparison plus a summary line. *)
end

(** {1 Flight recorder}

    An always-on, fixed-size ring buffer of recent query events (the
    last {!Recorder.capacity} queries): pattern digest, strategy,
    duration and per-query counter deltas.  Queries at least
    [EXPFINDER_SLOW_MS] milliseconds long are flagged as slow.  Dumped
    by [expfinder stats --recent] and automatically when the
    differential self-check fails. *)

module Recorder : sig
  type event = {
    seq : int;  (** monotonic sequence number of the query *)
    query : string;  (** pattern fingerprint *)
    strategy : string;  (** provenance / refinement strategy *)
    duration_ms : float;
    slow : bool;  (** duration reached the slow threshold *)
    counters : (string * int) list;  (** nonzero counter deltas *)
  }

  val capacity : unit -> int
  (** Current ring size; older events are overwritten.  Defaults to 64,
      overridable at startup via [EXPFINDER_RECORDER_CAP]. *)

  val set_capacity : int -> unit
  (** Resize the ring at runtime (floor 1).  Resizing to a different
      size drops the buffered history. *)

  val slow_threshold_ms : unit -> float option
  (** The slow-query threshold; initialised from [EXPFINDER_SLOW_MS],
      [None] when unset (nothing is flagged). *)

  val set_slow_threshold_ms : float option -> unit

  val record :
    query:string -> strategy:string -> duration_ms:float -> counters:(string * int) list -> unit
  (** Push an event (the engine calls this on every query). *)

  val recent : unit -> event list
  (** Buffered events, oldest first. *)

  val slow_events : unit -> event list

  val clear : unit -> unit

  val pp : Format.formatter -> unit -> unit

  val to_json : unit -> Json.t
end

(** {1 Process gauges} *)

val process_stats : unit -> (string * int) list
(** Sample the process: resident set size in bytes (0 where
    [/proc/self/statm] is unavailable), major-heap words, and GC
    minor/major collection counts ({!Gc.quick_stat}).  Each sample is
    also published as an always-on gauge ([process.rss_bytes],
    [process.heap_words], [process.gc_minor_collections],
    [process.gc_major_collections]). *)

(** {1 Sliding windows}

    Bucketed sliding-window aggregation for the serving path: a ring of
    per-second buckets over the last N seconds, yielding live QPS, error
    rate and latency percentiles per operation class.  Unlike the
    metric registry, windows record unconditionally — the live SLO
    surface must not depend on the telemetry flag.  Latency samples use
    the same log-scale buckets as {!Histogram} (~9% relative
    resolution, exact min/max clamping). *)

module Window : sig
  type t

  val default_seconds : int
  (** 60. *)

  val create : ?seconds:int -> string -> t
  (** A standalone (unregistered) window over the last [seconds]
      (default {!default_seconds}, floor 1) seconds. *)

  val name : t -> string

  val seconds : t -> int

  val observe : t -> ?error:bool -> ?now:float -> float -> unit
  (** [observe w ms] records one request of [ms] milliseconds in the
      bucket of the current second.  [?now] (unix seconds) pins the
      clock for tests.  Allocation-free. *)

  val reset : t -> unit

  (** A merged view of the buckets still inside the window. *)
  type summary = {
    window_s : int;
    count : int;
    errors : int;
    qps : float;  (** [count / window_s] *)
    error_rate : float;  (** 0 when the window is empty *)
    p50 : float;  (** latency percentiles in ms; [nan] when empty *)
    p95 : float;
    p99 : float;
    mean_ms : float;
    max_ms : float;
  }

  val summary : ?now:float -> t -> summary

  val summary_json : summary -> Json.t
  (** As a flat object ([qps], [p95_ms], ...); [nan] fields serialize as
      [null]. *)

  val summary_of_json : Json.t -> summary option
  (** Parse a {!summary_json} dump back (the [stats --server] client
      side); [null]/missing latency fields come back as [nan]. *)

  val pp_summary : Format.formatter -> summary -> unit
  (** One human-readable line: count, QPS, error rate, p50/p95/p99. *)

  (** {2 Registry} — operation-class windows (query/batch/update),
      created on first use by the engine and enumerated by the
      exporters. *)

  val get : ?seconds:int -> string -> t
  (** The registered window under that name, created on first use
      ([?seconds] only applies to the creating call). *)

  val all : unit -> (string * t) list
  (** Sorted by name. *)

  val reset_all : unit -> unit
end

(** {1 Query log}

    An append-only JSONL log of serving-path events — one line per
    query, batch or update batch — with an env-configurable sink
    ([EXPFINDER_QLOG]) and size-based rotation
    ([EXPFINDER_QLOG_MAX_BYTES], one archived generation at
    [<sink>.1]).  Events carry the request id, the snapshot identity
    [(graph_id, epoch)] the request ran against, the pattern digest,
    strategy, duration, per-request counter deltas, answer size and
    digest, slow/error flags, and (when available) a replayable payload
    — enough for [expfinder replay] to re-run the workload and verify
    answer digests.  See DESIGN.md for the schema. *)

module Qlog : sig
  val schema_version : int
  (** Version of the per-line event format (currently [1]); {!load}
      rejects events written under any other version. *)

  type kind = Query | Batch | Update

  val kind_name : kind -> string

  type event = {
    seq : int;  (** request id, monotonic within the process *)
    ts_unix : float;  (** wall-clock seconds at emission *)
    kind : kind;
    graph_id : int;  (** snapshot identity the request ran against *)
    epoch : int;
    query : string;  (** pattern fingerprint / batch label / ["update"] *)
    strategy : string;
    duration_ms : float;
    counters : (string * int) list;  (** nonzero counter deltas *)
    pairs : int;  (** answer size (update events: effective updates) *)
    digest : string;  (** answer digest; [""] when not applicable *)
    slow : bool;  (** duration reached [EXPFINDER_SLOW_MS] *)
    error : string option;
    payload : Json.t option;  (** replayable request body *)
  }

  val set_sink : string option -> unit
  (** Point the log at a path ([None] and [Some ""] disable).
      Initialised from
      [EXPFINDER_QLOG]; the file opens lazily on the first {!emit} and
      is appended to. *)

  val sink : unit -> string option

  val enabled : unit -> bool
  (** A sink is configured. *)

  val max_bytes : unit -> int

  val set_max_bytes : int -> unit
  (** Rotation threshold (floor 4096; default 64 MiB, or
      [EXPFINDER_QLOG_MAX_BYTES]).  When appending the next event would
      exceed it, the sink is renamed to [<sink>.1] (replacing any
      previous archive) and a fresh file is started. *)

  val emit :
    kind:kind ->
    graph_id:int ->
    epoch:int ->
    query:string ->
    strategy:string ->
    duration_ms:float ->
    counters:(string * int) list ->
    pairs:int ->
    digest:string ->
    ?error:string ->
    ?payload:Json.t ->
    unit ->
    unit
  (** Append one event (no-op without a sink).  The sequence number,
      timestamp and slow flag are assigned here; every event is flushed
      so a crash loses at most the event being written.  Sink I/O
      failures (unwritable path, full disk) never raise into the
      caller: the sink is disabled with one stderr warning, and
      {!set_sink} re-arms it. *)

  val close : unit -> unit
  (** Flush and close the sink channel (the path stays configured). *)

  val event_json : event -> Json.t

  val event_of_json : Json.t -> (event, string) result

  val load : string -> (event list, string) result
  (** Parse a JSONL file back into events (blank lines skipped); the
      error names the offending line. *)
end

(** {1 Prometheus exposition} *)

module Prometheus : sig
  val render : unit -> string
  (** The metric registry, the sliding windows and the process gauges in
      the Prometheus text exposition format, under an [expfinder_]
      namespace ([.] mapped to [_]): counters and gauges as themselves,
      histograms as summaries with p50/p95/p99 quantiles, windows as
      [expfinder_qps{op="query"}], [expfinder_error_rate{op=...}] and
      [expfinder_latency_ms{op=...,quantile="0.95"}] gauges.  Samples
      {!process_stats} on each call. *)
end
