(** Engine-wide observability: a metrics registry, a span tracer, and
    wall-clock helpers.

    The subsystem has two activity levels:

    - {e counters, gauges and histograms} record unconditionally only
      when created with [~always:true] (the cache's per-instance
      accounting); registered metrics are otherwise gated by the global
      flag.  Recording never allocates: counters and gauges are single
      mutable ints, histogram state lives in pre-allocated arrays.
    - {e spans} ({!with_span}, {!collect}) are fully disabled unless the
      runtime flag is on ({!set_enabled}); a disabled [with_span] is one
      branch around the wrapped function.

    Naming scheme (see DESIGN.md): metric and span names are dotted
    lowercase paths, [<module>.<event>] — e.g. [bsim.worklist_pops],
    [cache.evictions], spans [plan], [candidates], [refine], [rank]. *)

val set_enabled : bool -> unit
(** Turn telemetry on or off at runtime (default: off).  Also honoured
    at startup via the [EXPFINDER_TELEMETRY=1] environment variable. *)

val enabled : unit -> bool

(** {1 Metrics} *)

module Counter : sig
  type t

  val create : ?always:bool -> string -> t
  (** A standalone (unregistered) counter.  [~always:true] makes it
      record even when telemetry is disabled. *)

  val name : t -> string

  val incr : t -> unit

  val add : t -> int -> unit
  (** Monotonic: saturates at [max_int] instead of wrapping. *)

  val value : t -> int

  val reset : t -> unit
end

module Gauge : sig
  type t

  val create : ?always:bool -> string -> t

  val name : t -> string

  val set : t -> int -> unit

  val value : t -> int
end

module Histogram : sig
  (** Log-scale histogram: geometric buckets with 8 buckets per doubling
      (~9% relative resolution), covering 1e-9 .. 1e12.  Count, sum, min
      and max are tracked exactly; percentiles are resolved to a bucket
      upper bound. *)

  type t

  val create : ?always:bool -> string -> t

  val name : t -> string

  val observe : t -> float -> unit
  (** Record a sample (non-positive samples land in the lowest bucket).
      Allocation-free. *)

  val count : t -> int

  val sum : t -> float

  val min_value : t -> float
  (** [nan] when empty. *)

  val max_value : t -> float
  (** [nan] when empty. *)

  val percentile : t -> float -> float
  (** [percentile h p] for [0 <= p <= 1]; [nan] when empty.  Clamped to
      the exact [min]/[max]. *)

  val reset : t -> unit
end

module Metrics : sig
  (** The process-wide registry.  [counter]/[gauge]/[histogram] create
      or return the metric registered under that name; asking for an
      existing name with a different metric kind raises
      [Invalid_argument]. *)

  val counter : ?always:bool -> string -> Counter.t

  val gauge : ?always:bool -> string -> Gauge.t

  val histogram : ?always:bool -> string -> Histogram.t

  val counters_snapshot : unit -> (string * int) list
  (** Current value of every registered counter and gauge, sorted by
      name (the per-query profile diff base). *)

  val delta :
    before:(string * int) list -> after:(string * int) list -> (string * int) list
  (** Nonzero differences [after - before], sorted by name. *)

  val reset_all : unit -> unit
  (** Reset every registered metric to zero (tests, [expfinder stats]). *)

  val pp : Format.formatter -> unit -> unit
  (** Dump the registry, one metric per line, sorted by name. *)
end

(** {1 Span tracing} *)

module Span : sig
  (** A completed timed span: a name, a duration, optional key/value
      annotations, and child spans in execution order. *)

  type t

  val name : t -> string

  val duration_ms : t -> float

  val attrs : t -> (string * string) list

  val children : t -> t list

  val find : t -> string -> t option
  (** First descendant (or the span itself) with the given name,
      depth-first. *)

  val preorder_names : t -> string list
  (** Every span name in the tree, depth-first, parents first. *)

  val pp_tree : Format.formatter -> t -> unit
  (** Human-readable indented stage tree with timings and
      annotations. *)

  val to_chrome_json : t -> string
  (** The tree as a Chrome trace-event JSON array ([ph:"X"] complete
      events, microsecond timestamps), loadable in [chrome://tracing]
      or [ui.perfetto.dev]. *)
end

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the function inside a child span of the innermost open span.
    When telemetry is disabled or no {!collect} is active, this is just
    the function call. *)

val annotate : string -> string -> unit
(** Attach a key/value annotation to the innermost open span (dropped
    when none is open). *)

val annotate_int : string -> int -> unit

val collect :
  ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a * Span.t option
(** Run the function inside a {e root} span and return the completed
    tree.  Returns [None] (plain nested span) when telemetry is
    disabled or another collection is already active — so the outermost
    caller owns the trace. *)

(** {1 Clock} *)

val now_us : unit -> float
(** Wall-clock microseconds (the tracer's clock; epoch-based). *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] and returns its result with the elapsed wall time
    in milliseconds (the benchmark harness's timer). *)
