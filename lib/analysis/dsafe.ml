(* Dsafe: domain-safety static analysis over compiler-emitted
   typedtrees.

   The analysis reads the .cmt/.cmti files dune leaves under _build and
   produces a machine-checked inventory of everything that stands
   between this codebase and OCaml 5 domains:

   - every module-level mutable binding (toplevel [ref], [Hashtbl],
     [Buffer], mutable-field records, arrays, [lazy], and mutable cells
     captured by returned closures), because each one is shared state
     the moment two domains run the read path;
   - hazardous constructs that are banned outright ([Obj.magic],
     [Marshal.from_*] on wire input, [Random.self_init]);
   - mutable types leaking through the interfaces of the read path
     ({!Snapshot}, {!Csr}, and every module functorised over [GRAPH]),
     whose deep immutability the snapshot/epoch model depends on.

   Findings are keyed by a stable id ("<source-file>:<Module.binding>")
   and gated against a checked-in allowlist: the ratchet.  A finding
   without an allowlist entry fails the gate (new shared mutable state
   cannot slip in silently); an allowlist entry without a finding is
   stale and also fails (the list can only shrink honestly). *)

open Expfinder_telemetry

(* ------------------------------------------------------------------ *)
(* Finding model *)

type mclass =
  | Ref_cell
  | Hashtable
  | Buffer_
  | Mutable_array
  | Bytes_
  | Mutable_record
  | Lazy_block
  | Queue_
  | Stack_
  | Weak_
  | Atomic_cell
  | Mutex_lock
  | Condition_var
  | Captured_state
  | Named_mutable of string

let mclass_name = function
  | Ref_cell -> "ref"
  | Hashtable -> "hashtbl"
  | Buffer_ -> "buffer"
  | Mutable_array -> "array"
  | Bytes_ -> "bytes"
  | Mutable_record -> "mutable-record"
  | Lazy_block -> "lazy"
  | Queue_ -> "queue"
  | Stack_ -> "stack"
  | Weak_ -> "weak"
  | Atomic_cell -> "atomic"
  | Mutex_lock -> "mutex"
  | Condition_var -> "condition"
  | Captured_state -> "captured-closure-state"
  | Named_mutable n -> "mutable-type:" ^ n

type kind =
  | Mutable_binding of mclass
  | Banned of string
  | Signature_leak of string  (** the offending type constructor *)

let kind_name = function
  | Mutable_binding c -> mclass_name c
  | Banned c -> "banned:" ^ c
  | Signature_leak c -> "sig-leak:" ^ c

(* Atomic.t and Mutex.t are still mutable state — they stay in the
   inventory — but they carry their guarding discipline in the type, so
   the report marks them as intrinsically guarded. *)
let intrinsically_guarded = function
  | Mutable_binding (Atomic_cell | Mutex_lock | Condition_var) -> true
  | Mutable_binding _ | Banned _ | Signature_leak _ -> false

type finding = {
  id : string;
  file : string;
  line : int;
  kind : kind;
  detail : string;
}

(* ------------------------------------------------------------------ *)
(* Path-name matching *)

(* [Path.name] renders "Stdlib.Hashtbl.create" or "Hashtbl.create"
   depending on how the source resolved the module; suffix matching on
   a '.'-boundary accepts both without also accepting
   "MyHashtbl.create". *)
let path_has_suffix name suffix =
  let ln = String.length name and ls = String.length suffix in
  ln >= ls
  && String.sub name (ln - ls) ls = suffix
  && (ln = ls || name.[ln - ls - 1] = '.')

let any_suffix name suffixes = List.exists (path_has_suffix name) suffixes

(* Creator functions whose application at module level mints a mutable
   value of a known class. *)
let class_of_creator name =
  if any_suffix name [ "Stdlib.ref"; "ref" ] then Some Ref_cell
  else if any_suffix name [ "Hashtbl.create"; "Hashtbl.of_seq" ] then Some Hashtable
  else if any_suffix name [ "Buffer.create" ] then Some Buffer_
  else if
    any_suffix name
      [ "Array.make"; "Array.create_float"; "Array.init"; "Array.of_list"; "Array.copy" ]
  then Some Mutable_array
  else if any_suffix name [ "Bytes.create"; "Bytes.make"; "Bytes.of_string" ] then Some Bytes_
  else if any_suffix name [ "Queue.create" ] then Some Queue_
  else if any_suffix name [ "Stack.create" ] then Some Stack_
  else if any_suffix name [ "Weak.create" ] then Some Weak_
  else if any_suffix name [ "Atomic.make" ] then Some Atomic_cell
  else if any_suffix name [ "Mutex.create" ] then Some Mutex_lock
  else if any_suffix name [ "Condition.create" ] then Some Condition_var
  else if any_suffix name [ "Lazy.from_fun"; "Lazy.from_val" ] then Some Lazy_block
  else None

(* Type constructors that denote mutable storage wherever they appear. *)
let class_of_type_head name =
  if any_suffix name [ "Stdlib.ref"; "ref" ] then Some Ref_cell
  else if any_suffix name [ "Hashtbl.t" ] then Some Hashtable
  else if any_suffix name [ "Buffer.t" ] then Some Buffer_
  else if name = "array" then Some Mutable_array
  else if name = "bytes" then Some Bytes_
  else if any_suffix name [ "Queue.t" ] then Some Queue_
  else if any_suffix name [ "Stack.t" ] then Some Stack_
  else if any_suffix name [ "Weak.t" ] then Some Weak_
  else if any_suffix name [ "Atomic.t" ] then Some Atomic_cell
  else if any_suffix name [ "Mutex.t" ] then Some Mutex_lock
  else if any_suffix name [ "Condition.t" ] then Some Condition_var
  else if name = "lazy_t" || any_suffix name [ "Lazy.t" ] then Some Lazy_block
  else None

let banned_idents =
  [
    ("Obj.magic", "unchecked cast defeats every type-based safety argument");
    ("Obj.repr", "raw object surgery defeats every type-based safety argument");
    ("Marshal.from_channel", "deserializing wire input can execute arbitrary reads");
    ("Marshal.from_string", "deserializing wire input can execute arbitrary reads");
    ("Marshal.from_bytes", "deserializing wire input can execute arbitrary reads");
    ("Random.self_init", "nondeterministic seeding breaks replay verification");
  ]

let banned_of_path name =
  List.find_map
    (fun (b, why) -> if path_has_suffix name ("Stdlib." ^ b) || path_has_suffix name b then Some (b, why) else None)
    banned_idents

(* ------------------------------------------------------------------ *)
(* Type-expression walking *)

(* Record types declared with mutable fields anywhere in the scanned
   units, as '.'-boundary suffix keys ("Jsonl_sink.t"): pass 1 collects
   them so pass 2 can classify a binding like [let sink = Jsonl_sink.create ...]
   whose creator is not a known stdlib function. *)
type mutable_types = (string, unit) Hashtbl.t

let mutable_type_match (mt : mutable_types) name =
  Hashtbl.fold
    (fun suffix () acc ->
      match acc with Some _ -> acc | None -> if path_has_suffix name suffix then Some suffix else None)
    mt None

(* First mutable constructor reachable in a type expression, looking
   through tuples, type parameters and (when [through_arrows]) function
   results.  Recursive types are cut off by the visited set. *)
let type_mutable_head ?(through_arrows = false) (mt : mutable_types) ty =
  let visited = Hashtbl.create 16 in
  let rec go ty =
    let id = Types.get_id ty in
    if Hashtbl.mem visited id then None
    else begin
      Hashtbl.add visited id ();
      match Types.get_desc ty with
      | Types.Tconstr (path, args, _) -> (
        let name = Path.name path in
        match class_of_type_head name with
        | Some c -> Some (c, name)
        | None -> (
          match mutable_type_match mt name with
          | Some suffix -> Some (Named_mutable suffix, name)
          | None -> List.find_map go args))
      | Types.Ttuple parts -> List.find_map go parts
      | Types.Tarrow (_, _, result, _) -> if through_arrows then go result else None
      | Types.Tpoly (ty, _) -> go ty
      | _ -> None
    end
  in
  go ty

(* ------------------------------------------------------------------ *)
(* Pass 1: collect locally-declared mutable record types *)

let collect_mutable_types structures =
  let mt : mutable_types = Hashtbl.create 32 in
  List.iter
    (fun (str : Typedtree.structure) ->
      let rec walk prefix (items : Typedtree.structure_item list) =
        List.iter
          (fun (item : Typedtree.structure_item) ->
            match item.Typedtree.str_desc with
            | Typedtree.Tstr_type (_, decls) ->
              List.iter
                (fun (d : Typedtree.type_declaration) ->
                  let is_mutable =
                    match d.Typedtree.typ_kind with
                    | Typedtree.Ttype_record labels ->
                      List.exists
                        (fun (l : Typedtree.label_declaration) ->
                          l.Typedtree.ld_mutable = Asttypes.Mutable)
                        labels
                    | _ -> false
                  in
                  if is_mutable then
                    let key =
                      String.concat "."
                        (List.rev (Ident.name d.Typedtree.typ_id :: prefix))
                    in
                    Hashtbl.replace mt key ())
                decls
            | Typedtree.Tstr_module mb -> walk_module prefix mb
            | Typedtree.Tstr_recmodule mbs -> List.iter (walk_module prefix) mbs
            | _ -> ())
          items
      and walk_module prefix (mb : Typedtree.module_binding) =
        let name =
          match mb.Typedtree.mb_id with Some id -> Some (Ident.name id) | None -> None
        in
        let rec strip (me : Typedtree.module_expr) =
          match me.Typedtree.mod_desc with
          | Typedtree.Tmod_structure s -> Some s
          | Typedtree.Tmod_constraint (inner, _, _, _) -> strip inner
          | _ -> None
        in
        match (name, strip mb.Typedtree.mb_expr) with
        | Some n, Some s -> walk (n :: prefix) s.Typedtree.str_items
        | _ -> ()
      in
      walk [] str.Typedtree.str_items)
    structures;
  mt

(* ------------------------------------------------------------------ *)
(* Pass 2a: module-level mutable bindings *)

let rec is_function_expr (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_function _ -> true
  | Typedtree.Texp_let (_, _, body) -> is_function_expr body
  | _ -> false

(* Classify the shape of a binding's right-hand side; [None] means the
   shape alone proves nothing and the caller falls back to the type. *)
let rec classify_expr (mt : mutable_types) (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_apply (f, _) -> (
    match f.Typedtree.exp_desc with
    | Typedtree.Texp_ident (path, _, _) -> class_of_creator (Path.name path)
    | _ -> None)
  | Typedtree.Texp_record { fields; _ } ->
    if
      Array.exists
        (fun ((ld : Types.label_description), _) -> ld.Types.lbl_mut = Asttypes.Mutable)
        fields
    then Some Mutable_record
    else None
  | Typedtree.Texp_array _ -> Some Mutable_array
  | Typedtree.Texp_lazy _ -> Some Lazy_block
  | Typedtree.Texp_sequence (_, e2) -> classify_expr mt e2
  | Typedtree.Texp_ifthenelse (_, e1, Some e2) -> (
    match classify_expr mt e1 with Some c -> Some c | None -> classify_expr mt e2)
  | Typedtree.Texp_let (_, vbs, body) -> (
    match classify_expr mt body with
    | Some c -> Some c
    | None ->
      (* [let cell = ref 0 in fun () -> ...]: module-level state hiding
         behind a closure.  The cell outlives every call and is shared
         exactly like a toplevel ref. *)
      if
        is_function_expr body
        && List.exists
             (fun (vb : Typedtree.value_binding) ->
               classify_expr mt vb.Typedtree.vb_expr <> None)
             vbs
      then Some Captured_state
      else None)
  | _ -> None

let type_to_string ty =
  Format.asprintf "%a" Printtyp.type_expr ty

let scan_bindings ~file (mt : mutable_types) (str : Typedtree.structure) =
  let findings = ref [] in
  let add ~prefix ~name ~line kind detail =
    let qual = String.concat "." (List.rev (name :: prefix)) in
    findings := { id = file ^ ":" ^ qual; file; line; kind; detail } :: !findings
  in
  let rec walk prefix items =
    List.iter
      (fun (item : Typedtree.structure_item) ->
        match item.Typedtree.str_desc with
        | Typedtree.Tstr_value (_, vbs) ->
          List.iter
            (fun (vb : Typedtree.value_binding) ->
              (* [let x = e] is Tpat_var; the annotated form
                 [let x : t = e] typechecks to Tpat_alias(Tpat_any, x). *)
              match vb.Typedtree.vb_pat.Typedtree.pat_desc with
              | Typedtree.Tpat_var (ident, _)
              | Typedtree.Tpat_alias
                  ({ Typedtree.pat_desc = Typedtree.Tpat_any; _ }, ident, _) -> (
                let name = Ident.name ident in
                let line = vb.Typedtree.vb_loc.Location.loc_start.Lexing.pos_lnum in
                let expr = vb.Typedtree.vb_expr in
                match classify_expr mt expr with
                | Some c ->
                  add ~prefix ~name ~line (Mutable_binding c)
                    (type_to_string expr.Typedtree.exp_type)
                | None ->
                  (* A function value owns no storage of its own (the
                     captured-state case was handled by the shape
                     check); anything else is classified by its type,
                     which catches constructors hidden behind helper
                     calls like [Jsonl_sink.create]. *)
                  if not (is_function_expr expr) then (
                    match type_mutable_head mt expr.Typedtree.exp_type with
                    | Some (c, head) ->
                      add ~prefix ~name ~line (Mutable_binding c)
                        (Printf.sprintf "%s (via type %s)"
                           (type_to_string expr.Typedtree.exp_type)
                           head)
                    | None -> ()))
              | _ -> ())
            vbs
        | Typedtree.Tstr_module mb -> walk_module prefix mb
        | Typedtree.Tstr_recmodule mbs -> List.iter (walk_module prefix) mbs
        | Typedtree.Tstr_include incl -> (
          match incl.Typedtree.incl_mod.Typedtree.mod_desc with
          | Typedtree.Tmod_structure s -> walk prefix s.Typedtree.str_items
          | _ -> ())
        | _ -> ())
      items
  and walk_module prefix (mb : Typedtree.module_binding) =
    (* Functor bodies are skipped: their bindings are per-instantiation,
       owned by whoever holds the resulting module, not process-global
       singletons. *)
    let rec strip (me : Typedtree.module_expr) =
      match me.Typedtree.mod_desc with
      | Typedtree.Tmod_structure s -> Some s
      | Typedtree.Tmod_constraint (inner, _, _, _) -> strip inner
      | _ -> None
    in
    match (mb.Typedtree.mb_id, strip mb.Typedtree.mb_expr) with
    | Some id, Some s -> walk (Ident.name id :: prefix) s.Typedtree.str_items
    | _ -> ()
  in
  walk [] str.Typedtree.str_items;
  !findings

(* ------------------------------------------------------------------ *)
(* Pass 2b: banned constructs, anywhere in the unit *)

let scan_banned ~file (str : Typedtree.structure) =
  (* One finding per (file, construct), with every use line in the
     detail: line-stable ids keep the allowlist from churning. *)
  let hits : (string, string * int list ref) Hashtbl.t = Hashtbl.create 4 in
  let super = Tast_iterator.default_iterator in
  let expr sub (e : Typedtree.expression) =
    (match e.Typedtree.exp_desc with
    | Typedtree.Texp_ident (path, _, _) -> (
      match banned_of_path (Path.name path) with
      | Some (construct, why) -> (
        let line = e.Typedtree.exp_loc.Location.loc_start.Lexing.pos_lnum in
        match Hashtbl.find_opt hits construct with
        | Some (_, lines) -> lines := line :: !lines
        | None -> Hashtbl.replace hits construct (why, ref [ line ]))
      | None -> ())
    | _ -> ());
    super.Tast_iterator.expr sub e
  in
  let iter = { super with Tast_iterator.expr } in
  iter.Tast_iterator.structure iter str;
  Hashtbl.fold
    (fun construct (why, lines) acc ->
      let lines = List.sort_uniq compare !lines in
      {
        id = file ^ ":banned." ^ construct;
        file;
        line = (match lines with l :: _ -> l | [] -> 0);
        kind = Banned construct;
        detail =
          Printf.sprintf "%s (line%s %s)" why
            (if List.length lines > 1 then "s" else "")
            (String.concat ", " (List.map string_of_int lines));
      }
      :: acc)
    hits []

(* ------------------------------------------------------------------ *)
(* Pass 2c: read-path signature audit *)

(* The read path must stay deeply immutable: every value reachable
   through these interfaces is handed to concurrent readers once domains
   land.  A module is on the read path when it is {!Snapshot} or {!Csr},
   or when its interface contains a functor over the shared [GRAPH]
   signature. *)
let read_path_basenames = [ "snapshot.mli"; "csr.mli" ]

let rec functor_over_graph (mty : Types.module_type) =
  match mty with
  | Types.Mty_functor (Types.Named (_, Types.Mty_ident path), _) ->
    path_has_suffix (Path.name path) "GRAPH"
  | Types.Mty_functor (_, result) -> functor_over_graph result
  | _ -> false

let signature_has_graph_functor (sg : Types.signature) =
  List.exists
    (function
      | Types.Sig_module (_, _, md, _, _) -> functor_over_graph md.Types.md_type
      | _ -> false)
    sg

let scan_signature ~file (mt : mutable_types) (sg : Types.signature) =
  let findings = ref [] in
  let add ~prefix ~name ~kindword head detail =
    let qual = String.concat "." (List.rev (name :: prefix)) in
    ignore kindword;
    findings :=
      { id = file ^ ":" ^ qual; file; line = 0; kind = Signature_leak head; detail }
      :: !findings
  in
  let rec walk prefix (sg : Types.signature) =
    List.iter
      (fun item ->
        match item with
        | Types.Sig_value (ident, vd, _) -> (
          (* Arrow results only: a mutable argument type is the caller's
             state, not state this interface exposes. *)
          match type_mutable_head ~through_arrows:true mt vd.Types.val_type with
          | Some (c, head) ->
            add ~prefix ~name:(Ident.name ident) ~kindword:"val" head
              (Printf.sprintf "val %s : %s exposes %s" (Ident.name ident)
                 (type_to_string vd.Types.val_type)
                 (mclass_name c))
          | None -> ())
        | Types.Sig_type (ident, decl, _, _) -> (
          let mutable_record =
            match decl.Types.type_kind with
            | Types.Type_record (labels, _) ->
              List.exists
                (fun (l : Types.label_declaration) -> l.Types.ld_mutable = Asttypes.Mutable)
                labels
            | _ -> false
          in
          if mutable_record then
            add ~prefix ~name:(Ident.name ident) ~kindword:"type" "mutable-record"
              (Printf.sprintf "type %s exposes mutable record fields" (Ident.name ident))
          else
            match decl.Types.type_manifest with
            | Some ty -> (
              match type_mutable_head mt ty with
              | Some (c, head) ->
                add ~prefix ~name:(Ident.name ident) ~kindword:"type" head
                  (Printf.sprintf "type %s = %s exposes %s" (Ident.name ident)
                     (type_to_string ty) (mclass_name c))
              | None -> ())
            | None -> ())
        | Types.Sig_module (ident, _, md, _, _) -> walk_mty (Ident.name ident :: prefix) md.Types.md_type
        | _ -> ())
      sg
  and walk_mty prefix (mty : Types.module_type) =
    match mty with
    | Types.Mty_signature sg -> walk prefix sg
    | Types.Mty_functor (_, result) -> walk_mty prefix result
    | _ -> ()
  in
  walk [] sg;
  !findings

(* ------------------------------------------------------------------ *)
(* Unit discovery and scanning *)

type unit_info = {
  u_file : string; (* workspace-relative source path *)
  u_structure : Typedtree.structure option;
  u_signature : Types.signature option; (* from a .cmti *)
}

let read_unit path =
  match Cmt_format.read path with
  | exception _ -> None
  | cmi, cmt -> (
    let signature = Option.map (fun (i : Cmi_format.cmi_infos) -> i.Cmi_format.cmi_sign) cmi in
    match cmt with
    | None -> None
    | Some info -> (
      let source =
        match info.Cmt_format.cmt_sourcefile with
        | Some s -> s
        | None -> Filename.basename path
      in
      match info.Cmt_format.cmt_annots with
      | Cmt_format.Implementation str ->
        Some { u_file = source; u_structure = Some str; u_signature = None }
      | Cmt_format.Interface _ ->
        Some { u_file = source; u_structure = None; u_signature = signature }
      | _ -> None))

let rec find_annot_files acc dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> acc
  | entries ->
    Array.fold_left
      (fun acc entry ->
        let path = Filename.concat dir entry in
        if Sys.is_directory path then find_annot_files acc path
        else if Filename.check_suffix entry ".cmt" || Filename.check_suffix entry ".cmti"
        then path :: acc
        else acc)
      acc entries

let scan ?(mli_exempt = []) ~roots () =
  let paths = List.sort compare (List.fold_left find_annot_files [] roots) in
  let units = List.filter_map read_unit paths in
  (* Dedupe by source file: byte/native builds can both leave annots. *)
  let seen = Hashtbl.create 64 in
  let units =
    List.filter
      (fun u ->
        let key = (u.u_file, u.u_structure = None) in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      units
  in
  let structures = List.filter_map (fun u -> u.u_structure) units in
  let mt = collect_mutable_types structures in
  let impl_findings =
    List.concat_map
      (fun u ->
        match u.u_structure with
        | Some str when not (List.mem u.u_file mli_exempt) ->
          scan_bindings ~file:u.u_file mt str @ scan_banned ~file:u.u_file str
        | Some str ->
          (* Signature-only exemptions (lint/mli.allow) still get the
             banned-construct scan; only the mutable-binding inventory
             assumes a normal module. *)
          scan_banned ~file:u.u_file str
        | None -> [])
      units
  in
  let sig_findings =
    List.concat_map
      (fun u ->
        match u.u_signature with
        | Some sg
          when List.mem (Filename.basename u.u_file) read_path_basenames
               || signature_has_graph_functor sg ->
          scan_signature ~file:u.u_file mt sg
        | _ -> [])
      units
  in
  List.sort (fun a b -> compare (a.file, a.line, a.id) (b.file, b.line, b.id))
    (impl_findings @ sig_findings)

(* ------------------------------------------------------------------ *)
(* Allowlist and ratchet gate *)

type discipline =
  | Hazard
  | Thread_confined
  | Guarded
  | Epoch_published
  | Immutable_after_init

let discipline_name = function
  | Hazard -> "hazard"
  | Thread_confined -> "thread-confined"
  | Guarded -> "guarded"
  | Epoch_published -> "epoch-published"
  | Immutable_after_init -> "immutable-after-init"

let discipline_of_name = function
  | "hazard" -> Some Hazard
  | "thread-confined" -> Some Thread_confined
  | "guarded" -> Some Guarded
  | "epoch-published" -> Some Epoch_published
  | "immutable-after-init" -> Some Immutable_after_init
  | _ -> None

type allow_entry = { key : string; discipline : discipline; why : string }

let parse_allow_line line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then Ok None
  else
    match String.index_opt line ' ' with
    | None -> Error (Printf.sprintf "entry %S lacks a discipline tag" line)
    | Some i -> (
      let key = String.sub line 0 i in
      let rest = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
      let tag, why =
        match String.index_opt rest ' ' with
        | None -> (rest, "")
        | Some j ->
          ( String.sub rest 0 j,
            String.trim (String.sub rest (j + 1) (String.length rest - j - 1)) )
      in
      match discipline_of_name tag with
      | None ->
        Error
          (Printf.sprintf
             "entry %S: unknown discipline %S (want hazard | thread-confined | guarded | \
              epoch-published | immutable-after-init)"
             key tag)
      | Some discipline ->
        if why = "" then Error (Printf.sprintf "entry %S lacks a justification" key)
        else Ok (Some { key; discipline; why }))

let load_allow path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | text ->
    let rec go acc lineno = function
      | [] -> Ok (List.rev acc)
      | line :: rest -> (
        match parse_allow_line line with
        | Ok None -> go acc (lineno + 1) rest
        | Ok (Some entry) -> go (entry :: acc) (lineno + 1) rest
        | Error e -> Error (Printf.sprintf "%s:%d: %s" path lineno e))
    in
    go [] 1 (String.split_on_char '\n' text)

type gate = {
  allowed : (finding * allow_entry) list;
  unallowed : finding list;
  stale : allow_entry list;
}

let gate ~allow findings =
  let by_key = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace by_key e.key e) allow;
  let allowed, unallowed =
    List.partition_map
      (fun f ->
        match Hashtbl.find_opt by_key f.id with
        | Some e ->
          Hashtbl.remove by_key f.id;
          Left (f, e)
        | None -> Right f)
      findings
  in
  let stale =
    List.filter (fun e -> Hashtbl.mem by_key e.key) allow
  in
  { allowed; unallowed; stale }

let gate_ok ?(fail_stale = true) g =
  g.unallowed = [] && ((not fail_stale) || g.stale = [])

(* ------------------------------------------------------------------ *)
(* Reports *)

let finding_json ?entry f =
  Json.Obj
    ([
       ("id", Json.Str f.id);
       ("file", Json.Str f.file);
       ("line", Json.Int f.line);
       ("kind", Json.Str (kind_name f.kind));
       ("detail", Json.Str f.detail);
       ("intrinsically_guarded", Json.Bool (intrinsically_guarded f.kind));
     ]
    @
    match entry with
    | Some e ->
      [
        ("discipline", Json.Str (discipline_name e.discipline));
        ("why", Json.Str e.why);
      ]
    | None -> [ ("discipline", Json.Null) ])

let to_json g =
  Json.Obj
    [
      ("v", Json.Int 1);
      ("tool", Json.Str "dsafe");
      ("ok", Json.Bool (gate_ok g));
      ( "summary",
        Json.Obj
          [
            ("allowed", Json.Int (List.length g.allowed));
            ("unallowed", Json.Int (List.length g.unallowed));
            ("stale", Json.Int (List.length g.stale));
          ] );
      ("unallowed", Json.Arr (List.map (fun f -> finding_json f) g.unallowed));
      ( "stale",
        Json.Arr
          (List.map
             (fun e ->
               Json.Obj
                 [
                   ("key", Json.Str e.key);
                   ("discipline", Json.Str (discipline_name e.discipline));
                   ("why", Json.Str e.why);
                 ])
             g.stale) );
      ( "allowed",
        Json.Arr (List.map (fun (f, e) -> finding_json ~entry:e f) g.allowed) );
    ]

let short_id f =
  match String.index_opt f.id ':' with
  | Some i -> String.sub f.id (i + 1) (String.length f.id - i - 1)
  | None -> f.id

let pp_table ppf g =
  let row marker f discipline =
    Format.fprintf ppf "  %s %-26s %-38s %-20s %s@." marker (kind_name f.kind)
      (short_id f) discipline
      (Printf.sprintf "%s:%d" f.file f.line)
  in
  let count_by pred = List.length (List.filter pred g.allowed) in
  if g.allowed <> [] then begin
    Format.fprintf ppf "sanctioned mutable sites (%d):@." (List.length g.allowed);
    List.iter
      (fun (f, e) -> row " " f (discipline_name e.discipline))
      g.allowed
  end;
  if g.unallowed <> [] then begin
    Format.fprintf ppf "NOT ALLOWLISTED (%d):@." (List.length g.unallowed);
    List.iter (fun f -> row "!" f "-") g.unallowed
  end;
  if g.stale <> [] then begin
    Format.fprintf ppf "STALE allowlist entries (%d):@." (List.length g.stale);
    List.iter (fun e -> Format.fprintf ppf "  ! %s (%s)@." e.key (discipline_name e.discipline)) g.stale
  end;
  Format.fprintf ppf
    "dsafe: %d finding(s): %d sanctioned (%d guarded, %d epoch-published, %d thread-confined, \
     %d immutable-after-init, %d hazard), %d unallowed, %d stale@."
    (List.length g.allowed + List.length g.unallowed)
    (List.length g.allowed)
    (count_by (fun (_, e) -> e.discipline = Guarded))
    (count_by (fun (_, e) -> e.discipline = Epoch_published))
    (count_by (fun (_, e) -> e.discipline = Thread_confined))
    (count_by (fun (_, e) -> e.discipline = Immutable_after_init))
    (count_by (fun (_, e) -> e.discipline = Hazard))
    (List.length g.unallowed) (List.length g.stale)

(* Seed allowlist lines for every current finding: the bootstrap (and
   "how do I sanction this?") path.  Intrinsically guarded sites get the
   guarded tag; everything else starts as a hazard for a human to
   re-tag with the real discipline and justification. *)
let emit_allow ppf findings =
  List.iter
    (fun f ->
      let tag = if intrinsically_guarded f.kind then Guarded else Hazard in
      Format.fprintf ppf "%s %s TODO justify (%s)@." f.id (discipline_name tag)
        (kind_name f.kind))
    findings
