(** Domain-safety static analysis over compiler-emitted typedtrees.

    Dsafe reads the [.cmt]/[.cmti] files dune leaves under [_build] and
    produces a machine-checked inventory of everything that stands
    between this codebase and OCaml 5 domains:

    - every {e module-level mutable binding} (toplevel [ref],
      [Hashtbl], [Buffer], mutable-field records, arrays, [lazy], and
      mutable cells captured by returned closures) — each one is shared
      state the moment two domains run the read path;
    - {e banned constructs} ([Obj.magic], [Marshal.from_*] on wire
      input, [Random.self_init]);
    - {e read-path signature leaks}: mutable types reachable through
      the interfaces of [Snapshot], [Csr], and every module functorised
      over [GRAPH], whose deep immutability the snapshot/epoch model
      depends on.

    Findings carry a stable id ("<source-file>:<Module.binding>") and
    are gated against a checked-in allowlist — the {e ratchet}: a
    finding without an entry fails the gate (new shared mutable state
    cannot slip in silently), and an entry without a finding is stale
    and also fails (the list can only shrink honestly). *)

(** {1 Findings} *)

(** Storage class of a mutable binding. *)
type mclass =
  | Ref_cell
  | Hashtable
  | Buffer_
  | Mutable_array
  | Bytes_
  | Mutable_record
  | Lazy_block
  | Queue_
  | Stack_
  | Weak_
  | Atomic_cell
  | Mutex_lock
  | Condition_var
  | Captured_state  (** mutable cell captured by a returned closure *)
  | Named_mutable of string
      (** a locally-declared record type with mutable fields, by its
          dotted type name *)

val mclass_name : mclass -> string

(** What a finding reports. *)
type kind =
  | Mutable_binding of mclass
  | Banned of string  (** the banned construct's name, e.g. ["Obj.magic"] *)
  | Signature_leak of string
      (** a mutable type constructor visible through a read-path
          interface *)

val kind_name : kind -> string

val intrinsically_guarded : kind -> bool
(** [Atomic.t]/[Mutex.t]/[Condition.t] sites: still mutable state (they
    stay in the inventory) but the guarding discipline is carried by
    the type itself. *)

type finding = {
  id : string;  (** stable key: ["<source-file>:<Module.binding>"] *)
  file : string;  (** workspace-relative source path *)
  line : int;  (** 1-based; [0] for signature findings *)
  kind : kind;
  detail : string;  (** human-readable evidence (type, lines, reason) *)
}

(** {1 Scanning} *)

val scan : ?mli_exempt:string list -> roots:string list -> unit -> finding list
(** Walk [roots] recursively for [.cmt]/[.cmti] files, deduplicate by
    source file, and run all three analyses.  [mli_exempt] lists source
    files (as workspace-relative paths, i.e. the shared [lint/mli.allow]
    entries) whose implementations are signature-only by design: they
    skip the mutable-binding inventory but still get the
    banned-construct sweep.  Findings come back sorted by
    (file, line, id). *)

(** {1 Allowlist and ratchet gate} *)

(** The guarding discipline a sanctioned site claims. *)
type discipline =
  | Hazard  (** known-shared and unguarded; tracked debt *)
  | Thread_confined  (** only ever touched from one thread *)
  | Guarded  (** protected by a [Mutex]/[Atomic] protocol *)
  | Epoch_published
      (** mutated only before publication; immutable once visible *)
  | Immutable_after_init
      (** written once during module initialisation, read-only after *)

val discipline_name : discipline -> string

val discipline_of_name : string -> discipline option

type allow_entry = {
  key : string;  (** must equal a finding id *)
  discipline : discipline;
  why : string;  (** free-form justification; required non-empty *)
}

val parse_allow_line : string -> (allow_entry option, string) result
(** One allowlist line: [<id> <discipline> <justification...>].
    Blank lines and [#] comments yield [Ok None]. *)

val load_allow : string -> (allow_entry list, string) result
(** Parse a whole allow file; the error carries file:line context. *)

type gate = {
  allowed : (finding * allow_entry) list;
  unallowed : finding list;  (** findings with no allowlist entry *)
  stale : allow_entry list;  (** entries matching no finding *)
}

val gate : allow:allow_entry list -> finding list -> gate

val gate_ok : ?fail_stale:bool -> gate -> bool
(** The ratchet verdict: true iff no unallowed findings and (unless
    [~fail_stale:false]) no stale entries. *)

(** {1 Reports} *)

val to_json : gate -> Expfinder_telemetry.Json.t
(** Machine-readable report: verdict, summary counts, and all three
    finding groups with their disciplines. *)

val pp_table : Format.formatter -> gate -> unit
(** Human-readable audit table grouped by gate outcome, with a
    per-discipline summary line. *)

val emit_allow : Format.formatter -> finding list -> unit
(** Print seed allowlist lines for every finding (bootstrap / "how do I
    sanction this?" path).  Intrinsically guarded sites get the
    [guarded] tag; everything else starts as [hazard] with a TODO
    justification for a human to re-tag. *)
