(* Multicore primitives for the ExpFinder execution model.

   Everything here is deliberately small: the engine's parallelism is
   fork/join over an immutable snapshot (workers never communicate
   mid-flight), the server's is a bounded work queue feeding a fixed
   pool of domains, and writes are funnelled through one dedicated
   writer domain.  Three shapes, three modules — no scheduler, no
   effects, no task graph.

   Each shape is instrumented through the telemetry registry: channel
   depth gauges and wait histograms, per-worker busy/idle accounting,
   writer submit latency.  All metric state lives in per-instance
   records (registry cells are internally Atomic/mutex-guarded), so
   this module adds no module-level mutable bindings of its own. *)

module T = Expfinder_telemetry

let env_name = "EXPFINDER_DOMAINS"

let env_domains () =
  match Sys.getenv_opt env_name with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | Some _ | None -> None)

let default_domains () = match env_domains () with Some n -> n | None -> 1

let default_pool_domains () =
  match env_domains () with
  | Some n -> n
  | None -> max 1 (Domain.recommended_domain_count () - 1)

(* ------------------------------------------------------------------ *)
(* Fork/join                                                            *)
(* ------------------------------------------------------------------ *)

let ranges ~domains n =
  let domains = max 1 (min domains (max 1 n)) in
  let base = n / domains and extra = n mod domains in
  Array.init domains (fun i ->
      let lo = (i * base) + min i extra in
      let hi = lo + base + if i < extra then 1 else 0 in
      (lo, hi))

(* Chunk 0 runs on the calling domain, so [run ~domains:1 f] never
   spawns and is byte-identical to a plain call — that is what keeps
   the sequential path the oracle.  All workers are joined before the
   first exception (in chunk order) is re-raised, so no domain leaks
   even when a chunk fails. *)
let run ~domains f =
  let domains = max 1 domains in
  if domains = 1 then [| f 0 |]
  else
    let capture g = match g () with v -> Ok v | exception e -> Error e in
    let workers =
      Array.init (domains - 1) (fun i ->
          Domain.spawn (fun () -> capture (fun () -> f (i + 1))))
    in
    let first = capture (fun () -> f 0) in
    let results = Array.append [| first |] (Array.map Domain.join workers) in
    Array.map (function Ok v -> v | Error e -> raise e) results

(* ------------------------------------------------------------------ *)
(* Bounded channel                                                      *)
(* ------------------------------------------------------------------ *)

module Chan = struct
  (* A named channel publishes an always-on depth gauge
     [chan.<name>.depth] (updated inside the lock, so it is exact) and
     flag-gated wait histograms [chan.<name>.push_wait_us] /
     [chan.<name>.pop_wait_us] pricing backpressure stalls.  Anonymous
     channels carry no metrics and pay nothing. *)
  type 'a metrics = {
    g_depth : T.Gauge.t;
    h_push_wait : T.Histogram.t;
    h_pop_wait : T.Histogram.t;
  }

  type 'a t = {
    q : 'a Queue.t;
    capacity : int;
    m : Mutex.t;
    nonempty : Condition.t;
    nonfull : Condition.t;
    mutable closed : bool;
    metrics : 'a metrics option;
  }

  let create ?name ~capacity () =
    let metrics =
      Option.map
        (fun name ->
          {
            g_depth = T.Metrics.gauge ~always:true ("chan." ^ name ^ ".depth");
            h_push_wait = T.Metrics.histogram ("chan." ^ name ^ ".push_wait_us");
            h_pop_wait = T.Metrics.histogram ("chan." ^ name ^ ".pop_wait_us");
          })
        name
    in
    {
      q = Queue.create ();
      capacity = max 1 capacity;
      m = Mutex.create ();
      nonempty = Condition.create ();
      nonfull = Condition.create ();
      closed = false;
      metrics;
    }

  (* Wait-time measurement is armed only when the channel is named and
     telemetry is on: a [nan] start means "don't observe", keeping the
     uninstrumented fast path at two clock reads of zero. *)
  let arm t = match t.metrics with Some _ when T.enabled () -> T.now_us () | _ -> nan

  let observe_wait h t0 =
    if Float.is_finite t0 then T.Histogram.observe h (T.now_us () -. t0)

  let set_depth t =
    (* Called with [t.m] held. *)
    match t.metrics with
    | Some m -> T.Gauge.set m.g_depth (Queue.length t.q)
    | None -> ()

  let push t v =
    let t0 = arm t in
    Mutex.lock t.m;
    let rec attempt () =
      if t.closed then (
        Mutex.unlock t.m;
        invalid_arg "Expfinder_parallel.Chan.push: channel closed")
      else if Queue.length t.q >= t.capacity then (
        Condition.wait t.nonfull t.m;
        attempt ())
      else (
        Queue.push v t.q;
        set_depth t;
        Condition.signal t.nonempty;
        Mutex.unlock t.m;
        match t.metrics with
        | Some m -> observe_wait m.h_push_wait t0
        | None -> ())
    in
    attempt ()

  let pop t =
    let t0 = arm t in
    Mutex.lock t.m;
    let rec attempt () =
      if not (Queue.is_empty t.q) then (
        let v = Queue.pop t.q in
        set_depth t;
        Condition.signal t.nonfull;
        Mutex.unlock t.m;
        (match t.metrics with
        | Some m -> observe_wait m.h_pop_wait t0
        | None -> ());
        Some v)
      else if t.closed then (
        Mutex.unlock t.m;
        None)
      else (
        Condition.wait t.nonempty t.m;
        attempt ())
    in
    attempt ()

  let close t =
    Mutex.lock t.m;
    t.closed <- true;
    Condition.broadcast t.nonempty;
    Condition.broadcast t.nonfull;
    Mutex.unlock t.m

  let length t =
    Mutex.lock t.m;
    let n = Queue.length t.q in
    Mutex.unlock t.m;
    n
end

(* ------------------------------------------------------------------ *)
(* Worker pool                                                          *)
(* ------------------------------------------------------------------ *)

module Pool = struct
  (* Per-pool accounting, all always-on so [/domains.json] works in
     production with the telemetry flag off:
       [<name>.workers] / [<name>.queue_capacity]  static gauges
       [<name>.busy]                               workers mid-job now
       [<name>.tasks]                              jobs executed
       [<name>.worker<i>.tasks|busy_us|idle_us]    per-worker split
       [<name>.worker<i>.domain_id]                Domain.self of worker
       [<name>.drain_ms]                           shutdown drain span *)
  type metrics = {
    busy : int Atomic.t;
    g_busy : T.Gauge.t;
    m_tasks : T.Counter.t;
    h_drain : T.Histogram.t;
  }

  type t = {
    jobs : (unit -> unit) Chan.t;
    workers : unit Domain.t array;
    on_error : exn -> unit;
    metrics : metrics;
  }

  let create ?(name = "pool") ?(capacity = 64) ?(on_error = fun _ -> ()) ~domains
      () =
    let domains = max 1 domains in
    let jobs = Chan.create ~name:(name ^ ".jobs") ~capacity () in
    let on_error e = try on_error e with _ -> () in
    T.Gauge.set (T.Metrics.gauge ~always:true (name ^ ".workers")) domains;
    T.Gauge.set
      (T.Metrics.gauge ~always:true (name ^ ".queue_capacity"))
      (max 1 capacity);
    let metrics =
      {
        busy = Atomic.make 0;
        g_busy = T.Metrics.gauge ~always:true (name ^ ".busy");
        m_tasks = T.Metrics.counter ~always:true (name ^ ".tasks");
        h_drain = T.Metrics.histogram ~always:true (name ^ ".drain_ms");
      }
    in
    let worker i () =
      let prefix = Printf.sprintf "%s.worker%d" name i in
      T.Gauge.set
        (T.Metrics.gauge ~always:true (prefix ^ ".domain_id"))
        (Domain.self () :> int);
      let m_worker_tasks = T.Metrics.counter ~always:true (prefix ^ ".tasks") in
      let m_busy_us = T.Metrics.counter ~always:true (prefix ^ ".busy_us") in
      let m_idle_us = T.Metrics.counter ~always:true (prefix ^ ".idle_us") in
      let rec loop idle_from =
        match Chan.pop jobs with
        | None -> T.Counter.add m_idle_us (int_of_float (T.now_us () -. idle_from))
        | Some job ->
            let t0 = T.now_us () in
            T.Counter.add m_idle_us (int_of_float (t0 -. idle_from));
            T.Gauge.set metrics.g_busy (1 + Atomic.fetch_and_add metrics.busy 1);
            (try job () with e -> on_error e);
            ignore (Atomic.fetch_and_add metrics.busy (-1) : int);
            T.Gauge.set metrics.g_busy (Atomic.get metrics.busy);
            let t1 = T.now_us () in
            T.Counter.add m_busy_us (int_of_float (t1 -. t0));
            T.Counter.incr m_worker_tasks;
            T.Counter.incr metrics.m_tasks;
            loop t1
      in
      loop (T.now_us ())
    in
    {
      jobs;
      workers = Array.init domains (fun i -> Domain.spawn (worker i));
      on_error;
      metrics;
    }

  let size t = Array.length t.workers
  let submit t job = Chan.push t.jobs job

  (* The drain (close + join, i.e. every queued job finishing) is
     recorded both as a histogram sample and as a span tree folded into
     the continuous profile, so slow shutdowns show up in
     [/profile.folded] under [pool.drain]. *)
  let shutdown t =
    Chan.close t.jobs;
    let (), root =
      T.Trace.collect
        (T.Trace.make ~sampled:true ())
        "pool.drain"
        (fun () -> Array.iter Domain.join t.workers)
    in
    match root with
    | None -> ()
    | Some span ->
        T.Histogram.observe t.metrics.h_drain (T.Span.duration_ms span);
        T.Profile.record span
end

(* ------------------------------------------------------------------ *)
(* Serial executor (dedicated writer domain)                            *)
(* ------------------------------------------------------------------ *)

module Serial = struct
  (* The writer's backlog is the depth gauge of its named channel
     ([chan.serial.jobs.depth]); each submit is counted and priced
     end-to-end (enqueue wait + execution + wakeup) in
     [serial.submit_ms].  Submits are one per update batch, so the
     accounting is always-on. *)
  type t = {
    jobs : (unit -> unit) Chan.t;
    worker : unit Domain.t;
    m_submitted : T.Counter.t;
    h_submit : T.Histogram.t;
  }

  let create () =
    let jobs = Chan.create ~name:"serial.jobs" ~capacity:64 () in
    let worker =
      Domain.spawn (fun () ->
          let rec loop () =
            match Chan.pop jobs with
            | None -> ()
            | Some job ->
                job ();
                loop ()
          in
          loop ())
    in
    {
      jobs;
      worker;
      m_submitted = T.Metrics.counter ~always:true "serial.submitted";
      h_submit = T.Metrics.histogram ~always:true "serial.submit_ms";
    }

  (* The submitted closure runs on the writer domain; the caller blocks
     on a private condition cell until the result (or the exception,
     re-raised here) comes back.  The cell is per-call, so concurrent
     submitters only contend on the channel, never on each other's
     results. *)
  let submit t f =
    let t0 = T.now_us () in
    let m = Mutex.create () in
    let c = Condition.create () in
    let cell = ref None in
    Chan.push t.jobs (fun () ->
        let r = match f () with v -> Ok v | exception e -> Error e in
        Mutex.lock m;
        cell := Some r;
        Condition.signal c;
        Mutex.unlock m);
    Mutex.lock m;
    let rec await () =
      match !cell with
      | Some r -> r
      | None ->
          Condition.wait c m;
          await ()
    in
    let r = await () in
    Mutex.unlock m;
    T.Counter.incr t.m_submitted;
    T.Histogram.observe t.h_submit ((T.now_us () -. t0) /. 1000.0);
    match r with Ok v -> v | Error e -> raise e

  let shutdown t =
    Chan.close t.jobs;
    Domain.join t.worker
end
