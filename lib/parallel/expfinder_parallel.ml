(* Multicore primitives for the ExpFinder execution model.

   Everything here is deliberately small: the engine's parallelism is
   fork/join over an immutable snapshot (workers never communicate
   mid-flight), the server's is a bounded work queue feeding a fixed
   pool of domains, and writes are funnelled through one dedicated
   writer domain.  Three shapes, three modules — no scheduler, no
   effects, no task graph. *)

let env_name = "EXPFINDER_DOMAINS"

let env_domains () =
  match Sys.getenv_opt env_name with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | Some _ | None -> None)

let default_domains () = match env_domains () with Some n -> n | None -> 1

let default_pool_domains () =
  match env_domains () with
  | Some n -> n
  | None -> max 1 (Domain.recommended_domain_count () - 1)

(* ------------------------------------------------------------------ *)
(* Fork/join                                                            *)
(* ------------------------------------------------------------------ *)

let ranges ~domains n =
  let domains = max 1 (min domains (max 1 n)) in
  let base = n / domains and extra = n mod domains in
  Array.init domains (fun i ->
      let lo = (i * base) + min i extra in
      let hi = lo + base + if i < extra then 1 else 0 in
      (lo, hi))

(* Chunk 0 runs on the calling domain, so [run ~domains:1 f] never
   spawns and is byte-identical to a plain call — that is what keeps
   the sequential path the oracle.  All workers are joined before the
   first exception (in chunk order) is re-raised, so no domain leaks
   even when a chunk fails. *)
let run ~domains f =
  let domains = max 1 domains in
  if domains = 1 then [| f 0 |]
  else
    let capture g = match g () with v -> Ok v | exception e -> Error e in
    let workers =
      Array.init (domains - 1) (fun i ->
          Domain.spawn (fun () -> capture (fun () -> f (i + 1))))
    in
    let first = capture (fun () -> f 0) in
    let results = Array.append [| first |] (Array.map Domain.join workers) in
    Array.map (function Ok v -> v | Error e -> raise e) results

(* ------------------------------------------------------------------ *)
(* Bounded channel                                                      *)
(* ------------------------------------------------------------------ *)

module Chan = struct
  type 'a t = {
    q : 'a Queue.t;
    capacity : int;
    m : Mutex.t;
    nonempty : Condition.t;
    nonfull : Condition.t;
    mutable closed : bool;
  }

  let create ~capacity =
    {
      q = Queue.create ();
      capacity = max 1 capacity;
      m = Mutex.create ();
      nonempty = Condition.create ();
      nonfull = Condition.create ();
      closed = false;
    }

  let push t v =
    Mutex.lock t.m;
    let rec attempt () =
      if t.closed then (
        Mutex.unlock t.m;
        invalid_arg "Expfinder_parallel.Chan.push: channel closed")
      else if Queue.length t.q >= t.capacity then (
        Condition.wait t.nonfull t.m;
        attempt ())
      else (
        Queue.push v t.q;
        Condition.signal t.nonempty;
        Mutex.unlock t.m)
    in
    attempt ()

  let pop t =
    Mutex.lock t.m;
    let rec attempt () =
      if not (Queue.is_empty t.q) then (
        let v = Queue.pop t.q in
        Condition.signal t.nonfull;
        Mutex.unlock t.m;
        Some v)
      else if t.closed then (
        Mutex.unlock t.m;
        None)
      else (
        Condition.wait t.nonempty t.m;
        attempt ())
    in
    attempt ()

  let close t =
    Mutex.lock t.m;
    t.closed <- true;
    Condition.broadcast t.nonempty;
    Condition.broadcast t.nonfull;
    Mutex.unlock t.m

  let length t =
    Mutex.lock t.m;
    let n = Queue.length t.q in
    Mutex.unlock t.m;
    n
end

(* ------------------------------------------------------------------ *)
(* Worker pool                                                          *)
(* ------------------------------------------------------------------ *)

module Pool = struct
  type t = {
    jobs : (unit -> unit) Chan.t;
    workers : unit Domain.t array;
    on_error : exn -> unit;
  }

  let create ?(capacity = 64) ?(on_error = fun _ -> ()) ~domains () =
    let domains = max 1 domains in
    let jobs = Chan.create ~capacity in
    let on_error e = try on_error e with _ -> () in
    let worker () =
      let rec loop () =
        match Chan.pop jobs with
        | None -> ()
        | Some job ->
            (try job () with e -> on_error e);
            loop ()
      in
      loop ()
    in
    { jobs; workers = Array.init domains (fun _ -> Domain.spawn worker); on_error }

  let size t = Array.length t.workers
  let submit t job = Chan.push t.jobs job

  let shutdown t =
    Chan.close t.jobs;
    Array.iter Domain.join t.workers
end

(* ------------------------------------------------------------------ *)
(* Serial executor (dedicated writer domain)                            *)
(* ------------------------------------------------------------------ *)

module Serial = struct
  type t = { jobs : (unit -> unit) Chan.t; worker : unit Domain.t }

  let create () =
    let jobs = Chan.create ~capacity:64 in
    let worker =
      Domain.spawn (fun () ->
          let rec loop () =
            match Chan.pop jobs with
            | None -> ()
            | Some job ->
                job ();
                loop ()
          in
          loop ())
    in
    { jobs; worker }

  (* The submitted closure runs on the writer domain; the caller blocks
     on a private condition cell until the result (or the exception,
     re-raised here) comes back.  The cell is per-call, so concurrent
     submitters only contend on the channel, never on each other's
     results. *)
  let submit t f =
    let m = Mutex.create () in
    let c = Condition.create () in
    let cell = ref None in
    Chan.push t.jobs (fun () ->
        let r = match f () with v -> Ok v | exception e -> Error e in
        Mutex.lock m;
        cell := Some r;
        Condition.signal c;
        Mutex.unlock m);
    Mutex.lock m;
    let rec await () =
      match !cell with
      | Some r -> r
      | None ->
          Condition.wait c m;
          await ()
    in
    let r = await () in
    Mutex.unlock m;
    match r with Ok v -> v | Error e -> raise e

  let shutdown t =
    Chan.close t.jobs;
    Domain.join t.worker
end
