(** Multicore primitives for the ExpFinder execution model.

    Three shapes cover every use of OCaml 5 domains in this codebase:

    - {e fork/join} ({!run}): evaluation fans a pure chunk function out
      across domains and joins before returning — used by the core
      [?domains] parameters ([Candidates.compute_batch], the refinement
      fixpoints).  Workers share nothing but the immutable snapshot.
    - {e worker pool} ({!Pool}): the server's accept loop dispatches
      connection handlers to a fixed set of domains over a bounded
      channel ({!Chan}).
    - {e serial executor} ({!Serial}): updates are funnelled through a
      single dedicated writer domain, which serializes [apply_updates]
      and publishes new epochs; readers never block on it.

    Domain counts come from the [EXPFINDER_DOMAINS] environment
    variable so the whole test suite can be re-run parallel without
    touching call sites (see {!default_domains}).

    All three shapes are instrumented through the telemetry registry
    (channel depth gauges, enqueue/dequeue wait histograms, per-worker
    busy/idle accounting, writer submit latency); metric names are
    documented on each module.  Depth gauges and pool/writer counters
    are always-on; wait histograms only record while telemetry is
    enabled. *)

val env_name : string
(** Name of the controlling environment variable, ["EXPFINDER_DOMAINS"]. *)

val env_domains : unit -> int option
(** [env_domains ()] is the parsed value of [EXPFINDER_DOMAINS]: [Some n]
    for a well-formed positive integer, [None] when unset or malformed
    (malformed values are ignored rather than fatal, matching the other
    [EXPFINDER_*] knobs). *)

val default_domains : unit -> int
(** Default domain count for {e evaluation} ([?domains] parameters):
    [EXPFINDER_DOMAINS] when set, else [1] — the sequential oracle.
    Parallel evaluation is strictly opt-in so that single-threaded
    callers never pay spawn overhead. *)

val default_pool_domains : unit -> int
(** Default domain count for the {e serving} pool: [EXPFINDER_DOMAINS]
    when set, else [max 1 (Domain.recommended_domain_count () - 1)]
    (one domain is reserved for the accept loop / writer). *)

val ranges : domains:int -> int -> (int * int) array
(** [ranges ~domains n] partitions the index space [0..n-1] into at
    most [domains] contiguous [(lo, hi)] half-open ranges of
    near-equal size (earlier ranges get the remainder).  Deterministic
    in [domains] and [n]; at least one (possibly empty) range is
    always returned. *)

val run : domains:int -> (int -> 'a) -> 'a array
(** [run ~domains f] evaluates [f 0 .. f (domains-1)] concurrently and
    returns the results in chunk order.  Chunk [0] runs on the calling
    domain, so [run ~domains:1 f] spawns nothing and is equivalent to
    [[| f 0 |]] — the sequential path stays the oracle.  All spawned
    domains are joined before returning; if any chunk raised, the
    exception of the lowest-numbered failing chunk is re-raised. *)

(** Bounded multi-producer / multi-consumer channel (mutex +
    condition variables).  [push] blocks while the channel is at
    capacity; [pop] blocks while it is empty and returns [None] once
    the channel is closed {e and} drained, so consumers terminate
    deterministically. *)
module Chan : sig
  type 'a t

  val create : ?name:string -> capacity:int -> unit -> 'a t
  (** [create ~capacity ()] is an empty channel holding at most
      [max 1 capacity] elements.  A [?name]d channel publishes an
      always-on exact depth gauge [chan.<name>.depth] plus wait
      histograms [chan.<name>.push_wait_us] / [chan.<name>.pop_wait_us]
      (microseconds blocked on capacity/emptiness; recorded only while
      telemetry is enabled).  Anonymous channels carry no metrics and
      pay no instrumentation cost. *)

  val push : 'a t -> 'a -> unit
  (** Blocks until there is room.  @raise Invalid_argument if the
      channel is closed. *)

  val pop : 'a t -> 'a option
  (** Blocks until an element is available; [None] after {!close} once
      the backlog is drained. *)

  val close : 'a t -> unit
  (** Close the channel: wakes all blocked producers and consumers.
      Idempotent. *)

  val length : 'a t -> int
  (** Current backlog (a snapshot; may be stale by the time it
      returns). *)
end

(** Fixed pool of worker domains fed from a bounded channel.  Jobs are
    [unit -> unit] thunks; a job that raises does not kill its worker
    (the exception goes to [on_error], default ignore). *)
module Pool : sig
  type t

  val create :
    ?name:string ->
    ?capacity:int ->
    ?on_error:(exn -> unit) ->
    domains:int ->
    unit ->
    t
  (** [create ~domains ()] spawns [max 1 domains] workers over a
      channel bounded at [capacity] (default [64]) jobs — the bound is
      the server's backpressure: when all workers are busy and the
      queue is full, {!submit} (the accept loop) blocks instead of
      accumulating unserved connections.

      The pool registers always-on metrics under [?name] (default
      ["pool"]): gauges [<name>.workers], [<name>.queue_capacity] and
      [<name>.busy] (workers mid-job right now), counter
      [<name>.tasks], per-worker counters
      [<name>.worker<i>.tasks|busy_us|idle_us] and gauge
      [<name>.worker<i>.domain_id], histogram [<name>.drain_ms], plus
      the job channel's [chan.<name>.jobs.*] metrics. *)

  val size : t -> int
  (** Number of worker domains. *)

  val submit : t -> (unit -> unit) -> unit
  (** Enqueue a job; blocks when the queue is full.
      @raise Invalid_argument after {!shutdown}. *)

  val shutdown : t -> unit
  (** Close the queue, let the workers drain the backlog, and join
      them all.  Returns only when every worker has exited.  The drain
      is recorded in [<name>.drain_ms] and folded into the continuous
      profile under [pool.drain]. *)
end

(** Dedicated writer domain: a one-domain executor whose {!Serial.submit}
    blocks the caller until the closure has run on the writer, then
    returns its result (or re-raises its exception) — the mechanism by
    which the server serializes [apply_updates] while readers keep
    evaluating on their pinned snapshots. *)
module Serial : sig
  type t

  val create : unit -> t
  (** Spawn the writer domain.  Always-on accounting: the backlog is
      the [chan.serial.jobs.depth] gauge, submits are counted in
      [serial.submitted] and priced end-to-end (enqueue wait +
      execution + wakeup, milliseconds) in [serial.submit_ms]. *)

  val submit : t -> (unit -> 'a) -> 'a
  (** [submit t f] runs [f ()] on the writer domain, in submission
      order relative to other [submit]s, and blocks until it
      completes.  Exceptions raised by [f] are re-raised in the
      caller. *)

  val shutdown : t -> unit
  (** Drain pending jobs and join the writer domain. *)
end
