(** Qlint — static analysis of pattern queries (no data graph needed).

    The planner discovers an empty or degenerate query only after
    materialising candidate sets; most of those queries can be rejected
    or simplified by looking at the pattern alone.  This module provides
    the reasoning layers, cheapest first:

    - {e predicate satisfiability} ({!pred_unsat}): interval reasoning
      over the [Eq]/[Ne]/[Lt]/[Le]/[Gt]/[Ge] integer atoms plus
      equality/disequality conflict detection over strings, so
      [exp>=5 && exp<3] or [specialty="DBA" && specialty="SA"] is
      recognised as unsatisfiable.  Two atoms of different value types on
      the same attribute are also unsatisfiable: a stored value has one
      runtime type, and a mistyped comparison never holds (see
      {!Predicate.eval});
    - {e predicate implication} ({!implies}) and the induced
      simplification ({!simplify}) and node subsumption ({!subsumes});
    - {e structural lints} ({!analyze}): disconnected patterns,
      unconstrained nodes, bound-subsumed parallel paths, duplicate
      nodes (via {!Pattern_opt.merges});
    - {e query containment} ({!contains}): [Q1 ⊑ Q2] via simulation on
      the two pattern graphs with implication on the predicates.

    The implication lattice is deliberately incomplete: it decides
    everything expressible as per-attribute integer intervals with
    excluded points, string equality/disequality, syntactic atom
    equality, and consequences of an [Eq] pin; it does {e not} reason
    across attributes or over float/bool orderings.  [implies]/
    [contains] answering [false] therefore means "not provably", and
    every [true] is sound. *)

type severity = Error | Warning | Info
(** [Error]: the query can never match anything as written.  [Warning]:
    almost certainly not what the author meant.  [Info]: redundancy the
    evaluator will pay for but tolerate. *)

type diagnostic = {
  code : string;  (** stable lint identifier, e.g. ["unsat-predicate"] *)
  severity : severity;
  node : Pattern.pnode option;  (** anchor node, when the lint has one *)
  message : string;
  fixup : string option;  (** suggested rewrite, human-readable *)
}

val severity_to_string : severity -> string
(** ["error"], ["warning"], ["info"]. *)

val pp_diagnostic : Pattern.t -> Format.formatter -> diagnostic -> unit
(** [error[unsat-predicate] node SA: ... (fix: ...)]. *)

(** {1 Predicate reasoning} *)

val pred_unsat : Predicate.t -> string option
(** [Some reason] when no attribute record can satisfy the conjunction:
    empty integer interval (including every point excluded by [Ne]),
    conflicting string equalities, an equality contradicted by a
    disequality, or mixed value types on one attribute. *)

val implies : Predicate.t -> Predicate.t -> bool
(** [implies p q]: every attribute record satisfying [p] satisfies [q].
    Sound, not complete (see the lattice note above).  An unsatisfiable
    [p] implies everything. *)

val simplify : Predicate.t -> Predicate.t
(** Drop every atom implied by the remaining ones, e.g.
    [exp>=3 && exp>=5] becomes [exp>=5].  Satisfiability is unchanged;
    unsatisfiable predicates are returned as written. *)

val subsumes : Pattern.node_spec -> Pattern.node_spec -> bool
(** [subsumes a b]: every data node satisfying [b]'s label requirement
    and predicate also satisfies [a]'s (i.e. [a] is the weaker spec). *)

(** {1 Structural analysis} *)

val unsat_node : Pattern.t -> Pattern.pnode option
(** First node whose predicate is unsatisfiable, if any. *)

val statically_empty : Pattern.t -> bool
(** The kernel of this pattern is empty on {e every} data graph (some
    node's predicate is unsatisfiable) — the planner's fast path. *)

val analyze : Pattern.t -> diagnostic list
(** All diagnostics, most severe first:

    - [unsat-predicate] (error): a node's conditions contradict;
    - [mixed-type-atoms] (error): one attribute compared against two
      value types;
    - [disconnected] (warning): the pattern splits into independent
      components, so matches are unrelated cross products;
    - [unconstrained-node] (warning): wildcard label and [always]
      predicate — the node matches every data node;
    - [redundant-atom] (info): an atom implied by the node's others;
    - [duplicate-node] (info): {!Pattern_opt.minimise} would merge the
      node into another (reported with node names);
    - [subsumed-edge] (info): a direct edge implied by a parallel
      two-edge path with a tighter total bound. *)

val max_severity : diagnostic list -> severity option

(** {1 Query containment} *)

val contains : Pattern.t -> Pattern.t -> bool
(** [contains q1 q2]: [Q1 ⊑ Q2] — on every data graph, [M(Q1,G)] is
    inside [M(Q2,G)]: if [Q1] matches at all then so does [Q2], and
    every match of [Q1]'s output node is a match of [Q2]'s.  Decided by
    computing the maximal simulation of [q2]'s pattern graph by [q1]'s
    (edge bounds must widen, predicates must imply) and requiring it to
    be total on [q2] and to relate the output nodes.  Sound, not
    complete. *)

val superset_map : sub:Pattern.t -> sup:Pattern.t -> int array option
(** When every node of [sub] is related to some node of [sup] by the
    containment simulation, [Some m] with [m.(u)] a [sup]-node whose
    matches over-approximate [u]'s: [kernel sub u ⊆ kernel sup m.(u)] on
    every graph.  The engine uses a cached [kernel sup] to seed
    refinement of [sub] instead of scanning the whole graph. *)
