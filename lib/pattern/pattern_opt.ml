open Expfinder_graph

let bound_value = function Pattern.Bounded k -> k | Pattern.Unbounded -> max_int

let bound_of_value v = if v = max_int then Pattern.Unbounded else Pattern.Bounded v

(* Canonical constraint set of a node under a class assignment: one entry
   per target class with the tightest bound (being within k1 and within
   k2 of the same set is being within min k1 k2). *)
let canonical_out rep pattern u =
  let table = Hashtbl.create 8 in
  List.iter
    (fun (v, b) ->
      let target = rep.(v) in
      let b = bound_value b in
      match Hashtbl.find_opt table target with
      | Some b' when b' <= b -> ()
      | _ -> Hashtbl.replace table target b)
    (Pattern.out_edges pattern u);
  List.sort compare (Hashtbl.fold (fun t b acc -> (t, b) :: acc) table [])

let spec_key pattern u =
  let spec = Pattern.node_spec pattern u in
  ( Option.map Label.to_int spec.Pattern.label,
    List.sort compare
      (List.map
         (fun a -> (a.Predicate.attr, a.Predicate.op, Attr.to_string a.Predicate.value))
         (Predicate.atoms spec.Pattern.pred)) )

let minimise pattern =
  let n = Pattern.size pattern in
  let rep = Array.init n Fun.id in
  let changed = ref true in
  while !changed do
    changed := false;
    let groups = Hashtbl.create 8 in
    for u = 0 to n - 1 do
      let key = (spec_key pattern u, canonical_out rep pattern u) in
      let members = Option.value ~default:[] (Hashtbl.find_opt groups key) in
      Hashtbl.replace groups key (u :: members)
    done;
    Hashtbl.iter
      (fun (_, out) members ->
        match members with
        | [] | [ _ ] -> ()
        | members ->
          (* Merging a group whose members point at each other would
             create a pattern self-loop; keep those apart. *)
          let leader = List.fold_left min max_int members in
          let internal =
            List.exists (fun m -> List.mem_assoc rep.(m) out) members
          in
          if not internal then
            List.iter
              (fun m ->
                if rep.(m) <> leader then begin
                  rep.(m) <- leader;
                  changed := true
                end)
              members)
      groups;
    (* Normalise: representative chains collapse (rep of a rep). *)
    for u = 0 to n - 1 do
      rep.(u) <- rep.(rep.(u))
    done
  done;
  (* Renumber surviving representatives densely. *)
  let dense = Array.make n (-1) in
  let count = ref 0 in
  for u = 0 to n - 1 do
    if rep.(u) = u then begin
      dense.(u) <- !count;
      incr count
    end
  done;
  let renaming = Array.init n (fun u -> dense.(rep.(u))) in
  if !count = n then (pattern, renaming)
  else begin
    let nodes = Array.make !count (Pattern.node_spec pattern 0) in
    for u = 0 to n - 1 do
      if rep.(u) = u then nodes.(renaming.(u)) <- Pattern.node_spec pattern u
    done;
    let edges = ref [] in
    for u = 0 to n - 1 do
      if rep.(u) = u then
        List.iter
          (fun (t, b) -> edges := (renaming.(u), dense.(t), bound_of_value b) :: !edges)
          (canonical_out rep pattern u)
    done;
    let minimised =
      Pattern.make_exn ~nodes ~edges:!edges ~output:renaming.(Pattern.output pattern)
    in
    (minimised, renaming)
  end

let project_to_output pattern =
  let n = Pattern.size pattern in
  let keep = Array.make n false in
  let rec visit u =
    if not keep.(u) then begin
      keep.(u) <- true;
      List.iter (fun (v, _) -> visit v) (Pattern.out_edges pattern u)
    end
  in
  visit (Pattern.output pattern);
  let renaming = Array.make n (-1) in
  let count = ref 0 in
  for u = 0 to n - 1 do
    if keep.(u) then begin
      renaming.(u) <- !count;
      incr count
    end
  done;
  if !count = n then (pattern, renaming)
  else begin
    let nodes = Array.make !count (Pattern.node_spec pattern 0) in
    let edges = ref [] in
    for u = 0 to n - 1 do
      if keep.(u) then begin
        nodes.(renaming.(u)) <- Pattern.node_spec pattern u;
        List.iter
          (fun (v, b) -> edges := (renaming.(u), renaming.(v), b) :: !edges)
          (Pattern.out_edges pattern u)
      end
    done;
    let projected =
      Pattern.make_exn ~nodes ~edges:!edges ~output:renaming.(Pattern.output pattern)
    in
    (projected, renaming)
  end

let merges pattern =
  let _, renaming = minimise pattern in
  let n = Array.length renaming in
  let groups = Hashtbl.create 8 in
  for u = n - 1 downto 0 do
    let members = Option.value ~default:[] (Hashtbl.find_opt groups renaming.(u)) in
    Hashtbl.replace groups renaming.(u) (u :: members)
  done;
  Hashtbl.fold
    (fun _ members acc ->
      match members with leader :: (_ :: _ as rest) -> (leader, rest) :: acc | _ -> acc)
    groups []
  |> List.sort compare

let node_count_saved pattern =
  List.fold_left (fun acc (_, merged) -> acc + List.length merged) 0 (merges pattern)
