open Expfinder_graph

type severity = Error | Warning | Info

type diagnostic = {
  code : string;
  severity : severity;
  node : Pattern.pnode option;
  message : string;
  fixup : string option;
}

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let pp_diagnostic pattern ppf d =
  Format.fprintf ppf "%s[%s] %s: %s" (severity_to_string d.severity) d.code
    (match d.node with
    | Some u -> "node " ^ Pattern.name pattern u
    | None -> "pattern")
    d.message;
  match d.fixup with
  | None -> ()
  | Some f -> Format.fprintf ppf " (fix: %s)" f

(* ------------------------------------------------------------------ *)
(* Per-attribute constraint summaries.                                 *)
(* ------------------------------------------------------------------ *)

let atoms_on attr pred =
  List.filter (fun a -> String.equal a.Predicate.attr attr) (Predicate.atoms pred)

let attrs_of pred =
  List.fold_left
    (fun acc a ->
      if List.mem a.Predicate.attr acc then acc else a.Predicate.attr :: acc)
    [] (Predicate.atoms pred)
  |> List.rev

(* The integer solution set of a conjunction on one attribute: an
   interval plus excluded points.  [impossible] covers the saturating
   corners (> max_int, < min_int). *)
type interval = { lo : int; hi : int; ne : int list; impossible : bool }

let int_interval atoms =
  List.fold_left
    (fun iv a ->
      match (a.Predicate.op, a.Predicate.value) with
      | _, (Attr.Float _ | Attr.Bool _ | Attr.String _) -> iv
      | Predicate.Eq, Attr.Int c -> { iv with lo = max iv.lo c; hi = min iv.hi c }
      | Predicate.Ne, Attr.Int c -> { iv with ne = c :: iv.ne }
      | Predicate.Ge, Attr.Int c -> { iv with lo = max iv.lo c }
      | Predicate.Gt, Attr.Int c ->
        if c = max_int then { iv with impossible = true }
        else { iv with lo = max iv.lo (c + 1) }
      | Predicate.Le, Attr.Int c -> { iv with hi = min iv.hi c }
      | Predicate.Lt, Attr.Int c ->
        if c = min_int then { iv with impossible = true }
        else { iv with hi = min iv.hi (c - 1) })
    { lo = min_int; hi = max_int; ne = []; impossible = false }
    atoms

let interval_empty iv =
  iv.impossible || iv.lo > iv.hi
  ||
  (* Every point of a small interval excluded by Ne atoms. *)
  let width = Int64.sub (Int64.of_int iv.hi) (Int64.of_int iv.lo) in
  Int64.compare width (Int64.of_int (List.length iv.ne)) < 0
  &&
  let rec all_excluded x = x > iv.hi || (List.mem x iv.ne && all_excluded (x + 1)) in
  all_excluded iv.lo

let pp_int_bound v = if v = min_int || v = max_int then "∞" else string_of_int v

(* (code, message) when the atoms on [attr] admit no value. *)
let attr_conflict attr atoms =
  let types =
    List.sort_uniq compare (List.map (fun a -> Attr.type_name a.Predicate.value) atoms)
  in
  match types with
  | _ :: _ :: _ ->
    Some
      ( "mixed-type-atoms",
        Printf.sprintf "conditions compare %s against %s values; no value has two types"
          attr
          (String.concat " and " types) )
  | [ "int" ] ->
    let iv = int_interval atoms in
    if interval_empty iv then
      Some
        ( "unsat-predicate",
          Printf.sprintf "integer conditions on %s admit no value (interval [%s, %s]%s)"
            attr (pp_int_bound iv.lo) (pp_int_bound iv.hi)
            (if iv.ne = [] then ""
             else
               Printf.sprintf " minus {%s}"
                 (String.concat ", "
                    (List.map string_of_int (List.sort_uniq compare iv.ne)))) )
    else None
  | _ ->
    (* Strings (and other non-ordered reasoning): equality conflicts. *)
    let eqs =
      List.filter_map
        (fun a -> if a.Predicate.op = Predicate.Eq then Some a.Predicate.value else None)
        atoms
    in
    let nes =
      List.filter_map
        (fun a -> if a.Predicate.op = Predicate.Ne then Some a.Predicate.value else None)
        atoms
    in
    let distinct_eqs =
      match eqs with
      | v :: rest -> List.find_opt (fun w -> not (Attr.equal v w)) rest |> Option.map (fun w -> (v, w))
      | [] -> None
    in
    (match distinct_eqs with
    | Some (v, w) ->
      Some
        ( "unsat-predicate",
          Printf.sprintf "%s cannot equal both %s and %s" attr (Attr.to_string v)
            (Attr.to_string w) )
    | None -> (
      match
        List.find_opt (fun v -> List.exists (fun w -> Attr.equal v w) nes) eqs
      with
      | Some v ->
        Some
          ( "unsat-predicate",
            Printf.sprintf "%s is required to both equal and differ from %s" attr
              (Attr.to_string v) )
      | None -> None))

let unsat_reason pred =
  List.find_map (fun attr -> attr_conflict attr (atoms_on attr pred)) (attrs_of pred)

let pred_unsat pred = Option.map snd (unsat_reason pred)

(* ------------------------------------------------------------------ *)
(* Implication.                                                        *)
(* ------------------------------------------------------------------ *)

let atom_equal (a : Predicate.atom) (b : Predicate.atom) =
  String.equal a.attr b.attr && a.op = b.op && Attr.equal a.value b.value

(* Does the fixed value [c] satisfy atom [b]?  (Mirrors Predicate.eval
   on a single attribute.) *)
let atom_holds_on c (b : Predicate.atom) =
  match Attr.compare_values c b.value with
  | None -> false
  | Some cmp -> (
    match b.op with
    | Predicate.Eq -> cmp = 0
    | Predicate.Ne -> cmp <> 0
    | Predicate.Lt -> cmp < 0
    | Predicate.Le -> cmp <= 0
    | Predicate.Gt -> cmp > 0
    | Predicate.Ge -> cmp >= 0)

(* [implied_atom p_atoms b]: the conjunction of [p_atoms] (all

   constraining [b.attr]) forces [b] to hold. *)
let implied_atom p_atoms (b : Predicate.atom) =
  List.exists (fun a -> atom_equal a b) p_atoms
  || (match
        List.find_opt (fun (a : Predicate.atom) -> a.op = Predicate.Eq) p_atoms
      with
     | Some a -> atom_holds_on a.value b
     | None -> false)
  ||
  match b.value with
  | Attr.Int c ->
    (* The interval is meaningful only if the atoms pin the type to int. *)
    List.exists (fun a -> match a.Predicate.value with Attr.Int _ -> true | _ -> false) p_atoms
    &&
    let iv = int_interval p_atoms in
    (match b.op with
    | Predicate.Eq -> iv.lo = c && iv.hi = c
    | Predicate.Ne -> c < iv.lo || c > iv.hi || List.mem c iv.ne
    | Predicate.Ge -> iv.lo >= c
    | Predicate.Gt -> iv.lo > c
    | Predicate.Le -> iv.hi <= c
    | Predicate.Lt -> iv.hi < c)
  | Attr.String s when b.op = Predicate.Ne ->
    (* Pinned to a different string. *)
    List.exists
      (fun (a : Predicate.atom) ->
        a.op = Predicate.Eq
        && match a.value with Attr.String w -> not (String.equal w s) | _ -> false)
      p_atoms
  | Attr.String _ | Attr.Float _ | Attr.Bool _ -> false

let implies p q =
  unsat_reason p <> None
  || List.for_all (fun b -> implied_atom (atoms_on b.Predicate.attr p) b) (Predicate.atoms q)

let simplify p =
  if unsat_reason p <> None then p
  else begin
    let rec loop kept = function
      | [] -> Predicate.of_atoms (List.rev kept)
      | a :: rest ->
        let others = List.rev_append kept rest in
        if implied_atom (atoms_on a.Predicate.attr (Predicate.of_atoms others)) a then
          loop kept rest
        else loop (a :: kept) rest
    in
    loop [] (Predicate.atoms p)
  end

let subsumes (a : Pattern.node_spec) (b : Pattern.node_spec) =
  unsat_reason b.pred <> None
  || ((match (a.label, b.label) with
      | None, _ -> true
      | Some la, Some lb -> Label.equal la lb
      | Some _, None -> false)
     && implies b.pred a.pred)

(* ------------------------------------------------------------------ *)
(* Containment: maximal simulation of q2's pattern graph by q1's.      *)
(* ------------------------------------------------------------------ *)

let bound_le b1 b2 =
  match (b1, b2) with
  | _, Pattern.Unbounded -> true
  | Pattern.Bounded k1, Pattern.Bounded k2 -> k1 <= k2
  | Pattern.Unbounded, Pattern.Bounded _ -> false

(* r.(u2).(u1) <=> every data graph satisfies
   [kernel q1 u1 ⊆ kernel q2 u2]: u2's spec is weaker than u1's and
   every q2-edge out of u2 is covered by a tighter q1-edge out of u1
   into a related pair. *)
let containment_relation q1 q2 =
  let n1 = Pattern.size q1 and n2 = Pattern.size q2 in
  let r =
    Array.init n2 (fun u2 ->
        Array.init n1 (fun u1 ->
            subsumes (Pattern.node_spec q2 u2) (Pattern.node_spec q1 u1)))
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for u2 = 0 to n2 - 1 do
      for u1 = 0 to n1 - 1 do
        if
          r.(u2).(u1)
          && not
               (List.for_all
                  (fun (v2, b2) ->
                    List.exists
                      (fun (v1, b1) -> bound_le b1 b2 && r.(v2).(v1))
                      (Pattern.out_edges q1 u1))
                  (Pattern.out_edges q2 u2))
        then begin
          r.(u2).(u1) <- false;
          changed := true
        end
      done
    done
  done;
  r

let contains q1 q2 =
  let r = containment_relation q1 q2 in
  r.(Pattern.output q2).(Pattern.output q1)
  && Array.for_all (fun row -> Array.exists Fun.id row) r

let superset_map ~sub ~sup =
  let r = containment_relation sub sup in
  let n_sub = Pattern.size sub and n_sup = Pattern.size sup in
  let map = Array.make n_sub (-1) in
  let ok = ref true in
  for u1 = 0 to n_sub - 1 do
    let rec pick u2 = if u2 >= n_sup then -1 else if r.(u2).(u1) then u2 else pick (u2 + 1) in
    map.(u1) <- pick 0;
    if map.(u1) < 0 then ok := false
  done;
  if !ok then Some map else None

(* ------------------------------------------------------------------ *)
(* Structural lints.                                                   *)
(* ------------------------------------------------------------------ *)

let unsat_node pattern =
  let n = Pattern.size pattern in
  let rec loop u =
    if u >= n then None
    else if unsat_reason (Pattern.node_spec pattern u).Pattern.pred <> None then Some u
    else loop (u + 1)
  in
  loop 0

let statically_empty pattern = unsat_node pattern <> None

let component_count pattern =
  let n = Pattern.size pattern in
  let comp = Array.make n (-1) in
  let count = ref 0 in
  for s = 0 to n - 1 do
    if comp.(s) < 0 then begin
      let c = !count in
      incr count;
      let rec visit u =
        if comp.(u) < 0 then begin
          comp.(u) <- c;
          List.iter (fun (v, _) -> visit v) (Pattern.out_edges pattern u);
          List.iter (fun (v, _) -> visit v) (Pattern.in_edges pattern u)
        end
      in
      visit s
    end
  done;
  !count

let bound_to_string = function
  | Pattern.Bounded k -> "<=" ^ string_of_int k
  | Pattern.Unbounded -> "*"

let analyze pattern =
  let n = Pattern.size pattern in
  let diags = ref [] in
  let emit code severity node message fixup =
    diags := { code; severity; node; message; fixup } :: !diags
  in
  (* Per-node predicate diagnostics. *)
  for u = 0 to n - 1 do
    let spec = Pattern.node_spec pattern u in
    match unsat_reason spec.Pattern.pred with
    | Some (code, message) ->
      emit code Error (Some u)
        (message ^ "; this node can never match, so M(Q,G) is empty on every graph")
        (Some "relax or remove the contradictory conditions")
    | None ->
      if spec.Pattern.label = None && Predicate.is_always spec.Pattern.pred then
        emit "unconstrained-node" Warning (Some u)
          "wildcard label and no conditions: matches every data node" None;
      let simplified = simplify spec.Pattern.pred in
      if List.length (Predicate.atoms simplified) < List.length (Predicate.atoms spec.Pattern.pred)
      then
        emit "redundant-atom" Info (Some u)
          (Format.asprintf "conditions [%a] contain atoms implied by the rest" Predicate.pp
             spec.Pattern.pred)
          (Some (Format.asprintf "tighten to [%a]" Predicate.pp simplified))
  done;
  (* Disconnected pattern. *)
  let components = component_count pattern in
  if components > 1 then
    emit "disconnected" Warning None
      (Printf.sprintf
         "pattern splits into %d unconnected components; their matches are independent cross products"
         components)
      (Some "connect the components or issue them as separate queries");
  (* Duplicate nodes, named after the minimiser's merge decisions. *)
  List.iter
    (fun (leader, others) ->
      List.iter
        (fun u ->
          emit "duplicate-node" Info (Some u)
            (Printf.sprintf "node %s merged into %s by minimisation (same spec and edges)"
               (Pattern.name pattern u) (Pattern.name pattern leader))
            (Some "evaluate the minimised query instead (Pattern_opt.minimise)"))
        others)
    (Pattern_opt.merges pattern);
  (* Direct edges implied by a parallel two-edge path with tighter total
     bound: satisfying u ->(<=k1) w ->(<=k2) v forces a v-witness within
     k1+k2 hops, so the direct edge adds nothing when k1+k2 <= k. *)
  List.iter
    (fun (u, v, b) ->
      let subsumed_by w =
        if w = u || w = v then None
        else
          match (Pattern.bound_of pattern u w, Pattern.bound_of pattern w v) with
          | Some (Pattern.Bounded k1), Some (Pattern.Bounded k2) -> (
            match b with
            | Pattern.Unbounded -> Some w
            | Pattern.Bounded k when k1 + k2 <= k -> Some w
            | Pattern.Bounded _ -> None)
          | Some _, Some _ when b = Pattern.Unbounded -> Some w
          | _ -> None
      in
      let rec scan w = if w >= n then None else match subsumed_by w with Some _ as r -> r | None -> scan (w + 1) in
      match scan 0 with
      | None -> ()
      | Some w ->
        emit "subsumed-edge" Info (Some u)
          (Printf.sprintf "edge %s -> %s (%s) is implied by the path through %s"
             (Pattern.name pattern u) (Pattern.name pattern v) (bound_to_string b)
             (Pattern.name pattern w))
          (Some
             (Printf.sprintf "drop the edge %s -> %s" (Pattern.name pattern u)
                (Pattern.name pattern v))))
    (Pattern.edges pattern);
  List.stable_sort
    (fun a b -> compare (severity_rank a.severity, a.node) (severity_rank b.severity, b.node))
    (List.rev !diags)

let max_severity = function
  | [] -> None
  | diags ->
    Some
      (List.fold_left
         (fun acc d -> if severity_rank d.severity < severity_rank acc then d.severity else acc)
         Info diags)
