(** Pattern-query minimisation (from the PVLDB 2010 paper underlying the
    demo: smaller equivalent queries evaluate faster).

    Two rewrites are provided:

    - {!minimise} merges {e duplicate} pattern nodes — same name-
      irrelevant spec (label requirement and predicate) and identical
      outgoing edges (same targets, same bounds) — to a fixpoint,
      redirecting incoming edges (parallel edges keep the tighter
      bound).  The rewritten query has {e the same matches} for every
      surviving pattern node on every data graph, and the same output
      matches; generated and hand-written team queries often contain
      such duplicates ("two developers of the same kind").
    - {!project_to_output} drops the pattern nodes the output node
      cannot reach.  A node's (bounded-)simulation membership depends
      only on its pattern descendants, so the output node's matches are
      unchanged — but other nodes' matches and hence result graphs and
      ranks may differ.  Use it when only the expert list matters. *)

val minimise : Pattern.t -> Pattern.t * int array
(** [minimise q] is [(q', renaming)] with [renaming.(u)] the node of
    [q'] that represents [u].  [q'] equals [q] when nothing merged. *)

val project_to_output : Pattern.t -> Pattern.t * int array
(** [(q', renaming)] where [q'] is induced by the output node's
    descendants; [renaming.(u)] is [-1] for dropped nodes. *)

val merges : Pattern.t -> (Pattern.pnode * Pattern.pnode list) list
(** The merge decisions {!minimise} makes, as [(leader, merged)] groups
    over the {e original} node ids: every node of [merged] is folded
    into [leader] (the group's lowest id).  Empty when nothing merges.
    Qlint ({!Pattern_analysis.analyze}) renders these as named
    [duplicate-node] diagnostics. *)

val node_count_saved : Pattern.t -> int
(** Nodes removed by [minimise] (diagnostic); the total size of the
    merged sides of {!merges}. *)
