open Expfinder_graph

(** Graph updates ΔG.

    The demo exercises unit updates (a single edge insertion or deletion)
    and batch updates (a list of them); node insertion is supported as
    well for completeness.  Generators produce random update streams for
    the incremental-vs-batch experiments. *)

type t =
  | Insert_edge of int * int
  | Delete_edge of int * int
  | Insert_node of Label.t * Attrs.t

val apply : Digraph.t -> t -> bool
(** Apply one update; [false] when it was a no-op (edge already present /
    already absent).  Node insertion always succeeds. *)

val apply_batch : Digraph.t -> t list -> int
(** Apply in order; returns the number of effective updates. *)

val apply_batch_filtered : Digraph.t -> t list -> t list
(** Apply in order; returns the sublist of effective updates (no-ops such
    as inserting an existing edge are dropped). *)

val net_edge_changes : Digraph.t -> t list -> (int * int) list * (int * int) list
(** [net_edge_changes g effective] is [(inserted, deleted)]: the edges
    whose presence differs between the pre-batch and post-batch graph,
    given the post-batch graph [g] and the {e effective} update list.
    Toggled edges (inserted then deleted, or vice versa) cancel out. *)

val invert : t -> t option
(** The update undoing an edge update ([None] for node insertion). *)

val touched_sources : t list -> int list
(** Source endpoints of the edge updates (deduplicated) — the seeds of
    the affected-area computation.  Inserted nodes are not included (a
    fresh node has no edges, so only later edge updates matter). *)

val pp : Format.formatter -> t -> unit

val to_json : t -> Expfinder_telemetry.Json.t
(** The wire form shared by the query log, the serve protocol and the
    replay driver: [{"op": "+"|"-", "u": int, "v": int}] for edge
    updates, [{"op": "node", "label": string, "attrs": {..}}] (attrs as
    {!Expfinder_graph.Attr.to_string} strings) for node insertion. *)

val of_json : Expfinder_telemetry.Json.t -> (t, string) result
(** Inverse of {!to_json}; the error says which field is malformed. *)

(* Random update streams (deterministic from the Prng). *)

val random_insertions : Prng.t -> Digraph.t -> int -> t list
(** [k] edge insertions between existing nodes, avoiding existing edges
    and each other (best effort: gives up on a dense graph). *)

val random_deletions : Prng.t -> Digraph.t -> int -> t list
(** [k] distinct existing edges to delete ([k] capped at the edge
    count). *)

val random_mixed : Prng.t -> Digraph.t -> int -> t list
(** Roughly half insertions, half deletions, interleaved. *)
