open Expfinder_graph
open Expfinder_telemetry

type t =
  | Insert_edge of int * int
  | Delete_edge of int * int
  | Insert_node of Label.t * Attrs.t

let apply g = function
  | Insert_edge (u, v) -> Digraph.add_edge g u v
  | Delete_edge (u, v) -> Digraph.remove_edge g u v
  | Insert_node (label, attrs) ->
    ignore (Digraph.add_node g ~attrs label : int);
    true

let apply_batch g updates =
  List.fold_left (fun acc u -> if apply g u then acc + 1 else acc) 0 updates

let apply_batch_filtered g updates = List.filter (apply g) updates

let net_edge_changes g effective =
  (* Parity per ordered pair: an edge toggled an even number of times is
     back to its pre-batch state; odd means the final graph decides the
     direction of the net change. *)
  let parity = Hashtbl.create 16 in
  List.iter
    (fun u ->
      match u with
      | Insert_edge (a, b) | Delete_edge (a, b) ->
        let count = Option.value ~default:0 (Hashtbl.find_opt parity (a, b)) in
        Hashtbl.replace parity (a, b) (count + 1)
      | Insert_node _ -> ())
    effective;
  Hashtbl.fold
    (fun (a, b) count (ins, del) ->
      if count mod 2 = 0 then (ins, del)
      else if Digraph.has_edge g a b then ((a, b) :: ins, del)
      else (ins, (a, b) :: del))
    parity ([], [])

let invert = function
  | Insert_edge (u, v) -> Some (Delete_edge (u, v))
  | Delete_edge (u, v) -> Some (Insert_edge (u, v))
  | Insert_node _ -> None

let touched_sources updates =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun u ->
      match u with
      | Insert_edge (a, _) | Delete_edge (a, _) ->
        if Hashtbl.mem seen a then None
        else begin
          Hashtbl.add seen a ();
          Some a
        end
      | Insert_node _ -> None)
    updates

let pp ppf = function
  | Insert_edge (u, v) -> Format.fprintf ppf "+(%d,%d)" u v
  | Delete_edge (u, v) -> Format.fprintf ppf "-(%d,%d)" u v
  | Insert_node (l, _) -> Format.fprintf ppf "+node(%a)" Label.pp l

(* The wire codec shared by the query log, the serve protocol and the
   replay driver: ["+"]/["-"] edge ops carry the endpoints, ["node"]
   carries the label plus stringly-typed attributes (Attr.of_string is
   total over Attr.to_string output). *)
let to_json = function
  | Insert_edge (u, v) ->
    Json.Obj [ ("op", Json.Str "+"); ("u", Json.Int u); ("v", Json.Int v) ]
  | Delete_edge (u, v) ->
    Json.Obj [ ("op", Json.Str "-"); ("u", Json.Int u); ("v", Json.Int v) ]
  | Insert_node (label, attrs) ->
    Json.Obj
      [
        ("op", Json.Str "node");
        ("label", Json.Str (Label.to_string label));
        ( "attrs",
          Json.Obj
            (List.map (fun (k, a) -> (k, Json.Str (Attr.to_string a))) (Attrs.to_list attrs))
        );
      ]

let of_json j =
  let field name = Option.bind (Json.member name j) Json.int_opt in
  match Option.bind (Json.member "op" j) Json.str_opt with
  | Some "+" -> (
    match (field "u", field "v") with
    | Some u, Some v -> Ok (Insert_edge (u, v))
    | _ -> Error "update: \"+\" needs int fields u and v")
  | Some "-" -> (
    match (field "u", field "v") with
    | Some u, Some v -> Ok (Delete_edge (u, v))
    | _ -> Error "update: \"-\" needs int fields u and v")
  | Some "node" -> (
    match Option.bind (Json.member "label" j) Json.str_opt with
    | None -> Error "update: \"node\" needs a string label"
    | Some label -> (
      let attrs =
        match Json.member "attrs" j with
        | None | Some (Json.Obj []) -> Ok []
        | Some (Json.Obj fields) ->
          List.fold_left
            (fun acc (k, v) ->
              match (acc, Option.bind (Some v) Json.str_opt) with
              | Error e, _ -> Error e
              | Ok _, None -> Error (Printf.sprintf "update: attr %S is not a string" k)
              | Ok l, Some s -> (
                match Attr.of_string s with
                | Ok a -> Ok ((k, a) :: l)
                | Error e -> Error (Printf.sprintf "update: attr %S: %s" k e)))
            (Ok []) fields
        | Some _ -> Error "update: attrs must be an object"
      in
      match attrs with
      | Error e -> Error e
      | Ok l -> Ok (Insert_node (Label.of_string label, Attrs.of_list (List.rev l)))))
  | Some op -> Error (Printf.sprintf "update: unknown op %S" op)
  | None -> Error "update: missing op field"

let random_insertions rng g k =
  let n = Digraph.node_count g in
  if n < 2 then []
  else begin
    let chosen = Hashtbl.create (2 * k) in
    let out = ref [] in
    let placed = ref 0 and attempts = ref 0 in
    while !placed < k && !attempts < 100 * (k + 1) do
      incr attempts;
      let u = Prng.int rng n and v = Prng.int rng n in
      if u <> v && (not (Digraph.has_edge g u v)) && not (Hashtbl.mem chosen (u, v)) then begin
        Hashtbl.add chosen (u, v) ();
        out := Insert_edge (u, v) :: !out;
        incr placed
      end
    done;
    List.rev !out
  end

let random_deletions rng g k =
  let m = Digraph.edge_count g in
  let k = min k m in
  if k = 0 then []
  else begin
    (* Materialise the edge list once, then sample k distinct indices. *)
    let edges = Array.make m (0, 0) in
    let i = ref 0 in
    Digraph.iter_edges g (fun u v ->
        edges.(!i) <- (u, v);
        incr i);
    let picks = Prng.sample_without_replacement rng k m in
    Array.to_list (Array.map (fun i -> let u, v = edges.(i) in Delete_edge (u, v)) picks)
  end

let random_mixed rng g k =
  let dels = random_deletions rng g (k / 2) in
  let inss = random_insertions rng g (k - List.length dels) in
  (* Interleave so deletions and insertions alternate. *)
  let rec weave a b acc =
    match (a, b) with
    | [], rest | rest, [] -> List.rev_append acc rest
    | x :: a, y :: b -> weave a b (y :: x :: acc)
  in
  weave dels inss []
