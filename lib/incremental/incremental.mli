open Expfinder_graph
open Expfinder_pattern
open Expfinder_core

(** Incremental maintenance of M(Q,G) under graph updates (§II
    Incremental Computation Module; Fan et al., SIGMOD 2011).

    The module keeps, per registered query, the current kernel relation
    and maintains it when ΔG arrives, instead of recomputing from
    scratch.  The default mechanism is {e change-driven area growth}:

    - a node's (bounded-)simulation membership depends only on the
      candidates within its dependency balls — [kmax] hops downstream,
      where [kmax] is the largest edge bound of the pattern (the whole
      reachable set for unbounded edges);
    - the area is seeded with the candidates whose ball could contain a
      touched edge (reverse balls of radius [kmax] around each touched
      edge source, in the old and new graphs);
    - the area is refined to the greatest fixpoint with the outside
      frozen; any membership that {e actually} changed pulls the
      candidates within [kmax] upstream of it into the area, and the
      refinement repeats until no change escapes — at which point the
      frozen remainder is provably unchanged.

    Cost therefore tracks the size of the real change neighbourhood,
    which yields the paper's behaviour: large wins for unit and small
    batch updates, degrading to batch recomputation as |ΔG| grows (the
    crossovers of §III).  A conservative {!Ancestors} strategy (freeze
    everything outside the full ancestor set of the touched sources) is
    kept as the ablation baseline. *)

type t

(** How the affected area is computed.  {!Ball_closure} is the default
    change-driven algorithm; {!Ancestors} is the conservative baseline
    (one-shot, whole reverse-reachable set). *)
type area_strategy = Ball_closure | Ancestors

type report = {
  effective : int;  (** updates that actually changed the graph *)
  area : int;  (** size of the final affected area *)
  iterations : int;
      (** refinement rounds (Ball_closure growth steps); [0] when the
          area exceeded its flood budget (|V|/3) and maintenance fell
          back to a dense batch recomputation — incremental
          (bounded) simulation is unbounded in the worst case, and
          beyond that size a batch run is simply cheaper *)
  added : (int * int) list;  (** pairs added to the kernel *)
  removed : (int * int) list;  (** pairs removed from the kernel *)
}

val create : ?area_strategy:area_strategy -> Pattern.t -> Digraph.t -> t
(** Evaluate the query from scratch and start tracking the given live
    digraph.  Maintenance runs directly on it (no snapshot rebuilds), so
    apply later updates through {!apply_updates} or — after mutating it
    elsewhere — {!sync_applied}. *)

val pattern : t -> Pattern.t

val kernel : t -> Match_relation.t
(** Current kernel relation (see {!Simulation} on kernels). *)

val result_pairs : t -> (int * int) list
(** The paper's M(Q,G): the kernel's pairs when it is total, [[]]
    otherwise. *)

val digraph : t -> Digraph.t
(** The tracked graph. *)

val version : t -> int
(** The graph version the kernel is synchronised with. *)

val snapshot : t -> Snapshot.t
(** Fresh CSR snapshot of the tracked graph (test/debug convenience). *)

val apply_updates : t -> Digraph.t -> Update.t list -> report
(** Apply ΔG to the tracked digraph and maintain the kernel
    incrementally.  @raise Invalid_argument when [g] is not the tracked
    digraph or was mutated behind the module's back. *)

val sync_applied : t -> effective:Update.t list -> report
(** Maintenance after the {e effective} updates were already applied to
    the tracked digraph (e.g. by the engine, which fans one batch out to
    several trackers).  [effective] must not contain no-ops — use
    {!Update.apply_batch_filtered}. *)

val recompute : t -> unit
(** Re-evaluate from scratch (the batch baseline) and resynchronise. *)
