open Expfinder_graph
open Expfinder_pattern
open Expfinder_core
open Expfinder_telemetry

let m_syncs = Metrics.counter "incremental.syncs"

let m_floods = Metrics.counter "incremental.floods"

let m_area = Metrics.counter "incremental.area_nodes"

let m_rounds = Metrics.counter "incremental.rounds"

let m_added = Metrics.counter "incremental.pairs_added"

let m_removed = Metrics.counter "incremental.pairs_removed"

let src = Logs.Src.create "expfinder.incremental" ~doc:"incremental match maintenance"

module Log = (val Logs.src_log src : Logs.LOG)

module DDist = Distance.Make (Digraph)
module DRefine = Sparse_refine.Make (Digraph)

type area_strategy = Ball_closure | Ancestors

type t = {
  pattern : Pattern.t;
  strategy : area_strategy;
  g : Digraph.t;
  mutable expected_version : int;
  mutable kernel : Match_relation.t;
  mutable scratch : DDist.scratch;
  mutable scratch_n : int;
}

type report = {
  effective : int;
  area : int;
  iterations : int;
  added : (int * int) list;
  removed : (int * int) list;
}

let evaluate pattern csr =
  if Pattern.is_simulation_pattern pattern then Simulation.run pattern csr
  else Bounded_sim.run pattern csr

let create ?(area_strategy = Ball_closure) pattern g =
  let kernel = evaluate pattern (Snapshot.of_digraph g) in
  {
    pattern;
    strategy = area_strategy;
    g;
    expected_version = Digraph.version g;
    kernel;
    scratch = DDist.make_scratch g;
    scratch_n = Digraph.node_count g;
  }

let pattern t = t.pattern

let kernel t = t.kernel

let result_pairs t =
  if Match_relation.is_total t.kernel then Match_relation.pairs t.kernel else []

let digraph t = t.g

let version t = t.expected_version

let snapshot t = Snapshot.of_digraph t.g

let refresh_scratch t =
  if Digraph.node_count t.g > t.scratch_n then begin
    t.scratch <- DDist.make_scratch t.g;
    t.scratch_n <- Digraph.node_count t.g
  end

let recompute t =
  t.kernel <- evaluate t.pattern (Snapshot.of_digraph t.g);
  t.expected_version <- Digraph.version t.g;
  refresh_scratch t

let resize_kernel kernel ~pattern_size ~new_n =
  if Match_relation.graph_size kernel = new_n then Match_relation.copy kernel
  else
    Match_relation.of_pairs ~pattern_size ~graph_size:new_n (Match_relation.pairs kernel)

let diff_relations before after =
  let added = ref [] and removed = ref [] in
  let psize = Match_relation.pattern_size after in
  for u = psize - 1 downto 0 do
    List.iter
      (fun v -> if not (Match_relation.mem before u v) then added := (u, v) :: !added)
      (List.rev (Match_relation.matches after u));
    List.iter
      (fun v -> if not (Match_relation.mem after u v) then removed := (u, v) :: !removed)
      (List.rev (Match_relation.matches before u))
  done;
  (!added, !removed)

let is_candidate pattern g v =
  let label = Digraph.label g v and attrs = Digraph.attrs g v in
  let rec loop u =
    u < Pattern.size pattern && (Pattern.matches_node pattern u label attrs || loop (u + 1))
  in
  loop 0

(* ------------------------------------------------------------------ *)
(* Old-graph traversal without an old-graph snapshot: the pre-batch     *)
(* graph is the live graph minus the net-inserted edges plus the        *)
(* net-deleted ones, so a reverse walk can patch predecessor lists on   *)
(* the fly.                                                             *)
(* ------------------------------------------------------------------ *)

type patch = {
  net_inserted : (int * int, unit) Hashtbl.t;
  deleted_into : (int, int) Hashtbl.t; (* target -> each net-deleted source *)
}

let make_patch g effective =
  let inserted, deleted = Update.net_edge_changes g effective in
  let net_inserted = Hashtbl.create 16 in
  List.iter (fun (a, b) -> Hashtbl.replace net_inserted (a, b) ()) inserted;
  let deleted_into = Hashtbl.create 16 in
  List.iter (fun (a, b) -> Hashtbl.add deleted_into b a) deleted;
  ({ net_inserted; deleted_into }, inserted, deleted)

let iter_pred_old g patch x f =
  Digraph.iter_pred g x (fun p -> if not (Hashtbl.mem patch.net_inserted (p, x)) then f p);
  List.iter f (Hashtbl.find_all patch.deleted_into x)

(* Bounded reverse BFS on the patched old graph.  Areas are small, so a
   hashtable-based visited set is fine. *)
let old_reverse_ball g patch src k f =
  if k > 0 then begin
    let dist = Hashtbl.create 64 in
    let queue = Queue.create () in
    let push w d =
      if not (Hashtbl.mem dist w) then begin
        Hashtbl.replace dist w d;
        Queue.add w queue
      end
    in
    iter_pred_old g patch src (fun p -> push p 1);
    while not (Queue.is_empty queue) do
      let w = Queue.pop queue in
      let d = Hashtbl.find dist w in
      f w d;
      if d < k then iter_pred_old g patch w (fun p -> push p (d + 1))
    done
  end

let old_ancestors g patch srcs f =
  let seen = Hashtbl.create 64 in
  let queue = Queue.create () in
  let push w =
    if not (Hashtbl.mem seen w) then begin
      Hashtbl.replace seen w ();
      Queue.add w queue
    end
  in
  List.iter push srcs;
  while not (Queue.is_empty queue) do
    let w = Queue.pop queue in
    f w;
    iter_pred_old g patch w push
  done

let new_ancestors g srcs f =
  let n = Digraph.node_count g in
  let seen = Bitset.create n in
  let queue = Queue.create () in
  let push w =
    if not (Bitset.mem seen w) then begin
      Bitset.add seen w;
      Queue.add w queue
    end
  in
  List.iter push srcs;
  while not (Queue.is_empty queue) do
    let w = Queue.pop queue in
    f w;
    Digraph.iter_pred g w push
  done

(* ------------------------------------------------------------------ *)
(* Maintenance                                                          *)
(* ------------------------------------------------------------------ *)

let refine_over_area pattern g old_kernel area =
  let psize = Pattern.size pattern in
  let initial = Match_relation.copy old_kernel in
  Bitset.iter
    (fun v ->
      for u = 0 to psize - 1 do
        if Pattern.matches_node pattern u (Digraph.label g v) (Digraph.attrs g v) then
          Match_relation.add initial u v
        else Match_relation.remove initial u v
      done)
    area;
  if Pattern.is_simulation_pattern pattern then
    DRefine.simulation pattern g ~initial ~area
  else DRefine.bounded pattern g ~initial ~area

(* Change-driven maintenance (the shape of the SIGMOD'11 algorithms):

   1. seed the area with the candidates whose dependency ball could have
      changed — within [kmax - 1] hops upstream of a net-inserted edge's
      source in the new graph, or of a net-deleted edge's source in the
      (patched) old graph;
   2. refine over the area with the rest frozen;
   3. a node whose membership actually changed can influence candidates
      within [kmax] upstream of it — in the new graph for additions, in
      the old graph for removals; pull those in and repeat until no
      membership change escapes the area.

   At the fixpoint every frozen pair is justified, so the result is
   exactly M(Q, G ⊕ ΔG). *)
exception Flood

let sync_ball_closure t ~old_kernel ~old_n ~effective_count ~patch ~inserted ~deleted =
  let g = t.g in
  let pattern = t.pattern in
  let psize = Pattern.size pattern in
  let new_n = Digraph.node_count g in
  let kmax = Option.value ~default:1 (Pattern.max_bound pattern) in
  let area = Bitset.create new_n in
  (* Incremental (bounded) simulation is unbounded in the worst case
     (SIGMOD'11): the group search can flood a large unmatched-candidate
     region, where the sparse engines cost more than one dense batch
     run.  Cap the area and fall back to recomputation beyond it. *)
  let flood_budget = max 64 (new_n / 3) in
  let area_size = ref 0 in
  let grow v =
    Bitset.add area v;
    incr area_size;
    if !area_size > flood_budget then raise Flood
  in
  (* A node is "uncertain" when it could still join the kernel: it
     qualifies for some pattern node it does not yet match.  Uncertain
     area nodes pull their potential witnesses (forward ball) into the
     area as well — without this, a mutually supporting group of new
     matches (e.g. an inserted edge closing a cycle) is never
     discovered, since no member can join while the others are frozen
     out. *)
  let uncertain v =
    let label = Digraph.label g v and attrs = Digraph.attrs g v in
    let rec loop u =
      u < psize
      && ((Pattern.matches_node pattern u label attrs
          && not (Match_relation.mem old_kernel u v))
         || loop (u + 1))
    in
    loop 0
  in
  (* Plain inclusion: the node's membership will be re-derived, but no
     group search starts from it. *)
  let consider v =
    if (not (Bitset.mem area v)) && is_candidate pattern g v then grow v
  in
  (* Inclusion with forward expansion: an uncertain node here may belong
     to an insertion-enabled mutual group, whose other members lie in its
     forward dependency balls. *)
  let pending = Queue.create () in
  let consider_expanding v =
    if is_candidate pattern g v && not (Bitset.mem area v) then begin
      grow v;
      Queue.add v pending
    end
  in
  let drain_forward () =
    while not (Queue.is_empty pending) do
      let v = Queue.pop pending in
      if uncertain v then DDist.ball t.scratch g v kmax (fun w _ -> consider_expanding w)
    done
  in
  (* Seeds: dependency balls that can contain a changed edge.  Insertions
     can create matches — including mutually supporting groups, which
     must contain either a seed (the inserted edge lies in its ball) or a
     node downstream of the edge's target — so insertion seeds expand
     forward.  Deletions only remove matches; removal cascades are
     well-founded and handled by the backward growth alone. *)
  List.iter
    (fun (a, b) ->
      consider_expanding a;
      consider_expanding b;
      if kmax > 1 then
        DDist.reverse_ball t.scratch g a (kmax - 1) (fun v _ -> consider_expanding v))
    inserted;
  List.iter
    (fun (a, _) ->
      consider a;
      if kmax > 1 then old_reverse_ball g patch a (kmax - 1) (fun v _ -> consider v))
    deleted;
  for v = old_n to new_n - 1 do
    consider_expanding v
  done;
  drain_forward ();
  let iterations = ref 0 in
  let result = ref old_kernel in
  let continue = ref true in
  while !continue do
    incr iterations;
    let refined = refine_over_area pattern g old_kernel area in
    result := refined;
    let before = Bitset.cardinal area in
    (* Constraints are checked on the new graph, so a changed membership
       (either direction) can only influence the candidates within kmax
       hops upstream in the new graph: a lost witness matters to v only
       while it still lies in v's current ball, and a gained witness only
       through a current path. *)
    let changed = Hashtbl.create 16 in
    for u = 0 to psize - 1 do
      List.iter
        (fun v ->
          if not (Match_relation.mem old_kernel u v) then Hashtbl.replace changed v ())
        (Match_relation.matches refined u);
      List.iter
        (fun v -> if not (Match_relation.mem refined u v) then Hashtbl.replace changed v ())
        (Match_relation.matches old_kernel u)
    done;
    (* Backward-pulled nodes are re-derived but need no group search: any
       undiscovered group has its own seed or edge-target entry point. *)
    Hashtbl.iter
      (fun w () -> DDist.reverse_ball t.scratch g w kmax (fun p _ -> consider p))
      changed;
    continue := Bitset.cardinal area <> before
  done;
  let kernel = !result in
  let added, removed = diff_relations old_kernel kernel in
  t.kernel <- kernel;
  t.expected_version <- Digraph.version g;
  Log.debug (fun m ->
      m "ball-closure sync: %d updates, area %d/%d, %d rounds, +%d/-%d pairs"
        effective_count (Bitset.cardinal area) new_n !iterations (List.length added)
        (List.length removed));
  {
    effective = effective_count;
    area = Bitset.cardinal area;
    iterations = !iterations;
    added;
    removed;
  }

(* Conservative baseline (ablation EXP-A3): the affected area is the full
   ancestor set of every touched source, in the old and new graphs. *)
let sync_ancestors t ~old_kernel ~old_n ~effective_count ~patch ~inserted ~deleted =
  let g = t.g in
  let new_n = Digraph.node_count g in
  let area = Bitset.create new_n in
  let sources = List.map fst (inserted @ deleted) in
  new_ancestors g sources (fun v -> Bitset.add area v);
  old_ancestors g patch (List.map fst deleted) (fun v -> Bitset.add area v);
  for v = old_n to new_n - 1 do
    Bitset.add area v
  done;
  let kernel = refine_over_area t.pattern g old_kernel area in
  let added, removed = diff_relations old_kernel kernel in
  t.kernel <- kernel;
  t.expected_version <- Digraph.version g;
  {
    effective = effective_count;
    area = Bitset.cardinal area;
    iterations = 1;
    added;
    removed;
  }

(* Maintenance after [effective] was already applied to the tracked
   digraph. *)
let sync_applied_untraced t ~effective =
  let old_n = t.scratch_n in
  refresh_scratch t;
  let psize = Pattern.size t.pattern in
  let old_kernel =
    resize_kernel t.kernel ~pattern_size:psize ~new_n:(Digraph.node_count t.g)
  in
  if Pattern.has_unbounded_edge t.pattern then begin
    (* Unbounded edges have no dependency radius; maintain those queries
       by recomputation. *)
    recompute t;
    let added, removed = diff_relations old_kernel t.kernel in
    {
      effective = List.length effective;
      area = Digraph.node_count t.g;
      iterations = 1;
      added;
      removed;
    }
  end
  else begin
    let patch, inserted, deleted = make_patch t.g effective in
    let effective_count = List.length effective in
    match t.strategy with
    | Ball_closure -> (
      try sync_ball_closure t ~old_kernel ~old_n ~effective_count ~patch ~inserted ~deleted
      with Flood ->
        (* The affected area exceeded its budget; a dense batch run is
           cheaper than sparse refinement at that size. *)
        recompute t;
        let added, removed = diff_relations old_kernel t.kernel in
        Log.debug (fun m ->
            m "ball-closure flood: fell back to recomputation (%d updates)" effective_count);
        {
          effective = effective_count;
          area = Digraph.node_count t.g;
          iterations = 0;
          added;
          removed;
        })
    | Ancestors ->
      sync_ancestors t ~old_kernel ~old_n ~effective_count ~patch ~inserted ~deleted
  end

let sync_applied t ~effective =
  Counter.incr m_syncs;
  with_span "incremental.sync"
    ~attrs:[ ("query", Pattern.fingerprint t.pattern) ]
    (fun () ->
      let report = sync_applied_untraced t ~effective in
      Counter.add m_area report.area;
      Counter.add m_rounds report.iterations;
      Counter.add m_added (List.length report.added);
      Counter.add m_removed (List.length report.removed);
      if report.iterations = 0 then Counter.incr m_floods;
      annotate_int "area" report.area;
      annotate_int "rounds" report.iterations;
      annotate_int "added" (List.length report.added);
      annotate_int "removed" (List.length report.removed);
      report)

let apply_updates t g updates =
  if not (g == t.g) then
    invalid_arg "Incremental.apply_updates: different digraph than the tracked one";
  if Digraph.version g <> t.expected_version then
    invalid_arg "Incremental.apply_updates: digraph out of sync with tracked snapshot";
  let effective = Update.apply_batch_filtered g updates in
  sync_applied t ~effective
