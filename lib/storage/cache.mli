open Expfinder_graph
open Expfinder_pattern
open Expfinder_core

(** Query-result cache (§II: "the query engine directly returns M(Q,G)
    if it is already cached").

    Results are keyed by (pattern fingerprint, snapshot identity): the
    identity [(graph_id, epoch)] pins both the graph and its epoch, so
    the cache can never serve a stale relation — and, unlike the old
    bare-version key, never confuses a graph with its copy (both start
    at version 0 but carry distinct graph ids).  Eviction is LRU with a
    bounded entry count.

    Accounting is built on the telemetry registry: each instance keeps
    always-on {!Expfinder_telemetry.Telemetry.Counter} values (read by
    {!hits}/{!misses}/{!evictions}), and the same code paths bump the
    registered [cache.hits]/[cache.misses]/[cache.evictions]/
    [cache.stores] counters, so per-instance stats and the process-wide
    metrics dump cannot drift apart.

    All operations are serialized by an internal mutex: with the
    domain-pool server, any worker domain probes and stores while the
    writer domain clears on update, and the LRU clock/stamp updates are
    read-modify-write.  Probes return defensive copies taken under the
    lock, so callers never share a relation with the cache. *)

type t

val create : ?capacity:int -> unit -> t
(** Default capacity: 64 entries. *)

val capacity : t -> int

val length : t -> int

val find : t -> Pattern.t -> snapshot:Snapshot.identity -> Match_relation.t option
(** A hit returns a defensive copy and refreshes recency. *)

val store : t -> Pattern.t -> snapshot:Snapshot.identity -> Match_relation.t -> unit
(** Insert (copying the relation), evicting the least recently used
    entry when full. *)

val fold :
  t ->
  snapshot:Snapshot.identity ->
  init:'a ->
  f:('a -> Pattern.t -> Match_relation.t -> 'a) ->
  'a
(** Fold over the live entries of one snapshot (iteration order
    unspecified, recency untouched).  The engine scans these for a
    cached {e superset} query when the exact fingerprint misses
    (containment reuse), and batch evaluation uses the same scan to
    share relations across a batch.  The relation is the stored one —
    do not mutate it.  [f] runs with the cache lock held: it must not
    call back into this cache. *)

val invalidate_snapshot : t -> Snapshot.identity -> unit
(** Drop every entry recorded under the given snapshot identity. *)

val clear : t -> unit
(** Drop every entry and reset the hit/miss counters (the eviction
    counter is cumulative over the cache's lifetime). *)

val hits : t -> int

val misses : t -> int

val evictions : t -> int
(** Entries dropped by LRU pressure (not by {!clear} /
    {!invalidate_snapshot}). *)
