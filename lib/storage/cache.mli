open Expfinder_pattern
open Expfinder_core

(** Query-result cache (§II: "the query engine directly returns M(Q,G)
    if it is already cached").

    Results are keyed by (pattern fingerprint, graph version); a bumped
    graph version invalidates every entry for that graph, so the cache
    can never serve a stale relation.  Eviction is LRU with a bounded
    entry count.

    Accounting is built on the telemetry registry: each instance keeps
    always-on {!Expfinder_telemetry.Telemetry.Counter} values (read by
    {!hits}/{!misses}/{!evictions}), and the same code paths bump the
    registered [cache.hits]/[cache.misses]/[cache.evictions]/
    [cache.stores] counters, so per-instance stats and the process-wide
    metrics dump cannot drift apart. *)

type t

val create : ?capacity:int -> unit -> t
(** Default capacity: 64 entries. *)

val capacity : t -> int

val length : t -> int

val find : t -> Pattern.t -> graph_version:int -> Match_relation.t option
(** A hit returns a defensive copy and refreshes recency. *)

val store : t -> Pattern.t -> graph_version:int -> Match_relation.t -> unit
(** Insert (copying the relation), evicting the least recently used
    entry when full. *)

val fold :
  t ->
  graph_version:int ->
  init:'a ->
  f:('a -> Pattern.t -> Match_relation.t -> 'a) ->
  'a
(** Fold over the live entries of one graph version (iteration order
    unspecified, recency untouched).  The engine scans these for a
    cached {e superset} query when the exact fingerprint misses
    (containment reuse).  The relation is the stored one — do not
    mutate it. *)

val invalidate_version : t -> int -> unit
(** Drop every entry recorded under the given graph version. *)

val clear : t -> unit
(** Drop every entry and reset the hit/miss counters (the eviction
    counter is cumulative over the cache's lifetime). *)

val hits : t -> int

val misses : t -> int

val evictions : t -> int
(** Entries dropped by LRU pressure (not by {!clear} /
    {!invalidate_version}). *)
