open Expfinder_graph
open Expfinder_pattern
open Expfinder_core
open Expfinder_telemetry

(* Process-wide registered counters (aggregated over every cache
   instance, gated by the telemetry flag) alongside per-instance
   always-on counters: both are bumped on the same code paths, so the
   registry view can never drift from [hits]/[misses]/[evictions]. *)
let m_hits = Metrics.counter "cache.hits"

let m_misses = Metrics.counter "cache.misses"

let m_evictions = Metrics.counter "cache.evictions"

let m_stores = Metrics.counter "cache.stores"

type entry = {
  key : string * Snapshot.identity;
  pattern : Pattern.t;
  relation : Match_relation.t;
  mutable stamp : int;
}

type t = {
  capacity : int;
  table : (string * Snapshot.identity, entry) Hashtbl.t;
  mutable clock : int;
  (* Serializes every table/clock/stamp access: with the serving pool,
     any worker domain may probe or store concurrently with the writer
     domain clearing on update.  Probes copy the relation while holding
     the lock, so a returned relation is never shared. *)
  cm : Mutex.t;
  hit_count : Counter.t;
  miss_count : Counter.t;
  eviction_count : Counter.t;
}

let create ?(capacity = 64) () =
  if capacity < 1 then invalid_arg "Cache.create";
  {
    capacity;
    table = Hashtbl.create capacity;
    clock = 0;
    cm = Mutex.create ();
    hit_count = Counter.create ~always:true "cache.hits";
    miss_count = Counter.create ~always:true "cache.misses";
    eviction_count = Counter.create ~always:true "cache.evictions";
  }

let locked t f =
  Mutex.lock t.cm;
  match f () with
  | r ->
    Mutex.unlock t.cm;
    r
  | exception e ->
    Mutex.unlock t.cm;
    raise e

let capacity t = t.capacity

let length t = locked t (fun () -> Hashtbl.length t.table)

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let key_of pattern sid = (Pattern.fingerprint pattern, sid)

let find t pattern ~snapshot =
  locked t (fun () ->
      match Hashtbl.find_opt t.table (key_of pattern snapshot) with
      | Some entry ->
        entry.stamp <- tick t;
        Counter.incr t.hit_count;
        Counter.incr m_hits;
        Some (Match_relation.copy entry.relation)
      | None ->
        Counter.incr t.miss_count;
        Counter.incr m_misses;
        None)

(* Callee of [store]; runs under [cm]. *)
let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun _ entry acc ->
        match acc with
        | Some best when best.stamp <= entry.stamp -> acc
        | _ -> Some entry)
      t.table None
  in
  match victim with
  | None -> ()
  | Some entry ->
    Hashtbl.remove t.table entry.key;
    Counter.incr t.eviction_count;
    Counter.incr m_evictions

let store t pattern ~snapshot relation =
  locked t (fun () ->
      let key = key_of pattern snapshot in
      if not (Hashtbl.mem t.table key) && Hashtbl.length t.table >= t.capacity
      then evict_lru t;
      Counter.incr m_stores;
      Hashtbl.replace t.table key
        { key; pattern; relation = Match_relation.copy relation; stamp = tick t })

let fold t ~snapshot ~init ~f =
  locked t (fun () ->
      Hashtbl.fold
        (fun (_, sid) entry acc ->
          if Snapshot.identity_equal sid snapshot then
            f acc entry.pattern entry.relation
          else acc)
        t.table init)

let invalidate_snapshot t snapshot =
  locked t (fun () ->
      let victims =
        Hashtbl.fold
          (fun key _ acc ->
            if Snapshot.identity_equal (snd key) snapshot then key :: acc
            else acc)
          t.table []
      in
      List.iter (Hashtbl.remove t.table) victims)

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.table;
      Counter.reset t.hit_count;
      Counter.reset t.miss_count)

let hits t = Counter.value t.hit_count

let misses t = Counter.value t.miss_count

let evictions t = Counter.value t.eviction_count
