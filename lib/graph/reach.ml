type node = int

type t = {
  scc : Scc.t;
  desc : Bitset.t array; (* component -> strictly-below descendant components *)
  cyclic : bool array; (* component -> lies on a cycle *)
}

let compute snap =
  let g = Snapshot.csr snap in
  let scc = Scc.compute g in
  let c = Scc.count scc in
  let adj = Scc.condensation scc g in
  (* Process components in topological order of the condensation so each
     descendant set is final before its predecessors consume it. *)
  let indeg = Array.make (max c 1) 0 in
  Array.iter (fun succs -> List.iter (fun s -> indeg.(s) <- indeg.(s) + 1) succs) adj;
  let order = Array.make (max c 1) 0 in
  let queue = Queue.create () in
  for i = 0 to c - 1 do
    if indeg.(i) = 0 then Queue.add i queue
  done;
  let filled = ref 0 in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    order.(!filled) <- i;
    incr filled;
    List.iter
      (fun s ->
        indeg.(s) <- indeg.(s) - 1;
        if indeg.(s) = 0 then Queue.add s queue)
      adj.(i)
  done;
  assert (!filled = c);
  let desc = Array.init (max c 1) (fun _ -> Bitset.create c) in
  for idx = c - 1 downto 0 do
    let i = order.(idx) in
    List.iter
      (fun s ->
        Bitset.add desc.(i) s;
        Bitset.union_into desc.(i) desc.(s))
      adj.(i)
  done;
  let cyclic = Array.init (max c 1) (fun i -> c > 0 && not (Scc.is_trivial scc g i)) in
  { scc; desc; cyclic }

let reaches t u v =
  let cu = Scc.component t.scc u and cv = Scc.component t.scc v in
  if cu = cv then t.cyclic.(cu) else Bitset.mem t.desc.(cu) cv

let on_cycle t v = t.cyclic.(Scc.component t.scc v)

let component_count t = Scc.count t.scc
