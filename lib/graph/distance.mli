(** Bounded-hop distance primitives.

    Bounded simulation repeatedly asks "which nodes lie within [k] hops of
    [v]?" (forward balls) and "which nodes reach [w] within [k] hops?"
    (reverse balls).  These run in O(ball size), not O(|G|): the scratch
    distance array is reset after each call by re-walking the visited
    list, so a [scratch] can be reused across millions of calls.

    The implementation is a functor over {!Graph_intf.GRAPH}: batch
    evaluation uses the {!Snapshot} instance included at the top level,
    while incremental maintenance instantiates {!Make} with {!Digraph}
    to avoid snapshot rebuilds. *)

module Make (G : Graph_intf.GRAPH) : sig
  type scratch
  (** Reusable per-graph working memory (distance array + queue). *)

  val make_scratch : G.t -> scratch

  val ball : scratch -> G.t -> int -> int -> (int -> int -> unit) -> unit
  (** [ball s g v k f] calls [f w d] for every [w] with a nonempty path of
      length [d <= k] from [v] ([v] itself is reported only when it lies
      on a cycle of length [<= k]).  Distances are shortest nonempty path
      lengths. *)

  val reverse_ball : scratch -> G.t -> int -> int -> (int -> int -> unit) -> unit
  (** Same over reversed edges: every [w] with a nonempty path of length
      [<= k] {e to} [v]. *)

  val exists_within : scratch -> G.t -> int -> int -> (int -> bool) -> bool
  (** [exists_within s g v k p]: is there a node [w] with a nonempty path
      [v ->* w] of length [<= k] and [p w]?  Short-circuits. *)

  val distances_from : G.t -> int -> int array
  (** Unbounded single-source hop distances ([-1] when unreachable); the
      source's own distance is [0]. *)

  val eccentricity_bound : G.t -> int
  (** A safe upper bound on any finite hop distance (the node count). *)
end

(* The Snapshot instance, included for the common case. *)

type scratch

val make_scratch : Snapshot.t -> scratch

val ball : scratch -> Snapshot.t -> int -> int -> (int -> int -> unit) -> unit

val reverse_ball : scratch -> Snapshot.t -> int -> int -> (int -> int -> unit) -> unit

val exists_within : scratch -> Snapshot.t -> int -> int -> (int -> bool) -> bool

val distances_from : Snapshot.t -> int -> int array

val eccentricity_bound : Snapshot.t -> int
