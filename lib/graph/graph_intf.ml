(** The one read interface shared by every graph representation.

    {!Snapshot} (immutable epoch snapshots, the home of all batch
    evaluation), {!Csr} (the raw compressed-sparse-row storage a snapshot
    wraps) and {!Digraph} (live mutable graphs, used by incremental
    maintenance so that small updates do not pay a full snapshot rebuild)
    all satisfy it.  Algorithms that must run on more than one
    representation are functorised over this signature; everything else
    takes a {!Snapshot.t} directly. *)

module type GRAPH = sig
  type t

  val node_count : t -> int

  val label : t -> int -> Label.t

  val attrs : t -> int -> Attrs.t

  val out_degree : t -> int -> int

  val in_degree : t -> int -> int

  val iter_nodes : t -> (int -> unit) -> unit

  val iter_succ : t -> int -> (int -> unit) -> unit

  val iter_pred : t -> int -> (int -> unit) -> unit

  val fold_succ : t -> int -> ('a -> int -> 'a) -> 'a -> 'a

  val fold_pred : t -> int -> ('a -> int -> 'a) -> 'a -> 'a

  val exists_succ : t -> int -> (int -> bool) -> bool
end
