type node = int

type t = {
  graph_id : int;
  out_adj : node Vec.t Vec.t;
  in_adj : node Vec.t Vec.t;
  labels : Label.t Vec.t;
  attr_table : Attrs.t Vec.t;
  mutable edges : int;
  mutable version : int;
}

let dummy_adj : node Vec.t = Vec.create ~dummy:(-1) ()

let dummy_label = Label.of_string ""

let create ?(capacity = 16) () =
  {
    graph_id = Graph_id.fresh ();
    out_adj = Vec.create ~capacity ~dummy:dummy_adj ();
    in_adj = Vec.create ~capacity ~dummy:dummy_adj ();
    labels = Vec.create ~capacity ~dummy:dummy_label ();
    attr_table = Vec.create ~capacity ~dummy:Attrs.empty ();
    edges = 0;
    version = 0;
  }

let node_count g = Vec.length g.labels

let edge_count g = g.edges

let version g = g.version

let graph_id g = g.graph_id

let bump g = g.version <- g.version + 1

let mem_node g v = v >= 0 && v < node_count g

let check_node g v = if not (mem_node g v) then invalid_arg "Digraph: unknown node"

let add_node g ?(attrs = Attrs.empty) label =
  let id = node_count g in
  Vec.push g.labels label;
  Vec.push g.attr_table attrs;
  Vec.push g.out_adj (Vec.create ~capacity:2 ~dummy:(-1) ());
  Vec.push g.in_adj (Vec.create ~capacity:2 ~dummy:(-1) ());
  bump g;
  id

let label g v =
  check_node g v;
  Vec.get g.labels v

let attrs g v =
  check_node g v;
  Vec.get g.attr_table v

let set_attrs g v a =
  check_node g v;
  Vec.set g.attr_table v a;
  bump g

let set_label g v l =
  check_node g v;
  Vec.set g.labels v l;
  bump g

let has_edge g u v =
  check_node g u;
  check_node g v;
  Vec.exists (Int.equal v) (Vec.get g.out_adj u)

let add_edge g u v =
  check_node g u;
  check_node g v;
  if has_edge g u v then false
  else begin
    Vec.push (Vec.get g.out_adj u) v;
    Vec.push (Vec.get g.in_adj v) u;
    g.edges <- g.edges + 1;
    bump g;
    true
  end

let remove_edge g u v =
  check_node g u;
  check_node g v;
  let removed = Vec.remove_first (Int.equal v) (Vec.get g.out_adj u) in
  if removed then begin
    ignore (Vec.remove_first (Int.equal u) (Vec.get g.in_adj v) : bool);
    g.edges <- g.edges - 1;
    bump g
  end;
  removed

let out_degree g v =
  check_node g v;
  Vec.length (Vec.get g.out_adj v)

let in_degree g v =
  check_node g v;
  Vec.length (Vec.get g.in_adj v)

let iter_succ g v f =
  check_node g v;
  Vec.iter f (Vec.get g.out_adj v)

let iter_pred g v f =
  check_node g v;
  Vec.iter f (Vec.get g.in_adj v)

let fold_succ g v f acc =
  check_node g v;
  Vec.fold_left f acc (Vec.get g.out_adj v)

let fold_pred g v f acc =
  check_node g v;
  Vec.fold_left f acc (Vec.get g.in_adj v)

let exists_succ g v p =
  check_node g v;
  Vec.exists p (Vec.get g.out_adj v)

let iter_nodes g f =
  for v = 0 to node_count g - 1 do
    f v
  done

let iter_edges g f = iter_nodes g (fun u -> iter_succ g u (fun v -> f u v))

let succ_list g v =
  check_node g v;
  Vec.to_list (Vec.get g.out_adj v)

let pred_list g v =
  check_node g v;
  Vec.to_list (Vec.get g.in_adj v)

let copy g =
  let copy_adj adj =
    let out = Vec.create ~capacity:(max 1 (Vec.length adj)) ~dummy:dummy_adj () in
    Vec.iter (fun row -> Vec.push out (Vec.copy row)) adj;
    out
  in
  {
    graph_id = Graph_id.fresh ();
    out_adj = copy_adj g.out_adj;
    in_adj = copy_adj g.in_adj;
    labels = Vec.copy g.labels;
    attr_table = Vec.copy g.attr_table;
    edges = g.edges;
    version = 0;
  }

let of_edges ?attrs ~labels edge_list =
  let g = create ~capacity:(Array.length labels) () in
  Array.iteri
    (fun i l ->
      let a = match attrs with None -> Attrs.empty | Some f -> f i in
      ignore (add_node g ~attrs:a l : node))
    labels;
  List.iter (fun (u, v) -> ignore (add_edge g u v : bool)) edge_list;
  g.version <- 0;
  g

let equal_structure a b =
  node_count a = node_count b
  && edge_count a = edge_count b
  &&
  let ok = ref true in
  iter_nodes a (fun v ->
      if
        (not (Label.equal (label a v) (label b v)))
        || not (Attrs.equal (attrs a v) (attrs b v))
      then ok := false);
  if !ok then
    iter_edges a (fun u v -> if not (has_edge b u v) then ok := false);
  !ok

let pp_stats ppf g =
  let n = node_count g and m = edge_count g in
  let max_out = ref 0 in
  iter_nodes g (fun v -> if out_degree g v > !max_out then max_out := out_degree g v);
  let avg_out = if n = 0 then 0.0 else float_of_int m /. float_of_int n in
  Format.fprintf ppf "graph(nodes=%d, edges=%d, max-out-degree=%d, avg-out-degree=%.2f)" n
    m !max_out avg_out
