type node = int

type t = {
  n : int;
  m : int;
  fwd_offsets : int array; (* length n+1 *)
  fwd_targets : int array; (* length m *)
  rev_offsets : int array;
  rev_sources : int array;
  labels : Label.t array;
  attr_table : Attrs.t array;
  source_version : int;
  (* Lazily-built label-bucket memo.  Atomic because readers on any
     domain may force it concurrently: losers of the publication race
     adopt the winner's table, so at most one build is ever visible and
     the table is safely published (the Atomic store/load pair is the
     release/acquire edge the plain mutable field lacked). *)
  by_label : (Label.t, node list) Hashtbl.t option Atomic.t;
}

let of_digraph g =
  let n = Digraph.node_count g in
  let fwd_offsets = Array.make (n + 1) 0 in
  let rev_offsets = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    fwd_offsets.(v + 1) <- fwd_offsets.(v) + Digraph.out_degree g v;
    rev_offsets.(v + 1) <- rev_offsets.(v) + Digraph.in_degree g v
  done;
  let m = Digraph.edge_count g in
  let fwd_targets = Array.make (max m 1) 0 in
  let rev_sources = Array.make (max m 1) 0 in
  let fwd_pos = Array.copy fwd_offsets in
  let rev_pos = Array.copy rev_offsets in
  Digraph.iter_edges g (fun u v ->
      fwd_targets.(fwd_pos.(u)) <- v;
      fwd_pos.(u) <- fwd_pos.(u) + 1;
      rev_sources.(rev_pos.(v)) <- u;
      rev_pos.(v) <- rev_pos.(v) + 1);
  let labels = Array.init n (Digraph.label g) in
  let attr_table = Array.init n (Digraph.attrs g) in
  {
    n;
    m;
    fwd_offsets;
    fwd_targets;
    rev_offsets;
    rev_sources;
    labels;
    attr_table;
    source_version = Digraph.version g;
    by_label = Atomic.make None;
  }

let node_count t = t.n

let edge_count t = t.m

let source_version t = t.source_version

let check t v = if v < 0 || v >= t.n then invalid_arg "Csr: unknown node"

let label t v =
  check t v;
  t.labels.(v)

let attrs t v =
  check t v;
  t.attr_table.(v)

let out_degree t v =
  check t v;
  t.fwd_offsets.(v + 1) - t.fwd_offsets.(v)

let in_degree t v =
  check t v;
  t.rev_offsets.(v + 1) - t.rev_offsets.(v)

let iter_succ t v f =
  check t v;
  for i = t.fwd_offsets.(v) to t.fwd_offsets.(v + 1) - 1 do
    f t.fwd_targets.(i)
  done

let iter_pred t v f =
  check t v;
  for i = t.rev_offsets.(v) to t.rev_offsets.(v + 1) - 1 do
    f t.rev_sources.(i)
  done

let succ_array t v =
  check t v;
  Array.sub t.fwd_targets t.fwd_offsets.(v) (out_degree t v)

let fold_succ t v f acc =
  check t v;
  let acc = ref acc in
  for i = t.fwd_offsets.(v) to t.fwd_offsets.(v + 1) - 1 do
    acc := f !acc t.fwd_targets.(i)
  done;
  !acc

let fold_pred t v f acc =
  check t v;
  let acc = ref acc in
  for i = t.rev_offsets.(v) to t.rev_offsets.(v + 1) - 1 do
    acc := f !acc t.rev_sources.(i)
  done;
  !acc

let exists_succ t v p =
  check t v;
  let rec loop i = i < t.fwd_offsets.(v + 1) && (p t.fwd_targets.(i) || loop (i + 1)) in
  loop t.fwd_offsets.(v)

let has_edge t u v = exists_succ t u (Int.equal v)

let iter_nodes t f =
  for v = 0 to t.n - 1 do
    f v
  done

let iter_edges t f = iter_nodes t (fun u -> iter_succ t u (fun v -> f u v))

let nodes_with_label t l =
  let table =
    match Atomic.get t.by_label with
    | Some table -> table
    | None ->
      let table = Hashtbl.create 16 in
      (* Build in reverse so each bucket ends up in increasing node order. *)
      for v = t.n - 1 downto 0 do
        let l = t.labels.(v) in
        let bucket = Option.value ~default:[] (Hashtbl.find_opt table l) in
        Hashtbl.replace table l (v :: bucket)
      done;
      (* Concurrent forcers may both build (the content is identical
         either way); the CAS loser adopts the winner's table so all
         domains share one memo from then on. *)
      if Atomic.compare_and_set t.by_label None (Some table) then table
      else (
        match Atomic.get t.by_label with Some t' -> t' | None -> table)
  in
  Option.value ~default:[] (Hashtbl.find_opt table l)

let patched t ~source_version ~added ~removed =
  let n = t.n in
  let check_pair (u, v) =
    if u < 0 || u >= n || v < 0 || v >= n then invalid_arg "Csr.patched: unknown node"
  in
  List.iter check_pair added;
  List.iter check_pair removed;
  let removed_set = Hashtbl.create (max 1 (2 * List.length removed)) in
  List.iter (fun e -> Hashtbl.replace removed_set e ()) removed;
  let bucket tbl k x =
    Hashtbl.replace tbl k (x :: Option.value ~default:[] (Hashtbl.find_opt tbl k))
  in
  let count tbl k = Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)) in
  (* Added/removed lists come from [Update.net_edge_changes]-style net
     deltas: each added edge must be absent from [t], each removed edge
     present, and no pair may appear twice.  Degrees are computed from
     the delta counts, so a violated precondition is caught below when
     the skip count disagrees. *)
  let add_out = Hashtbl.create 16 and add_in = Hashtbl.create 16 in
  List.iter
    (fun (u, v) ->
      bucket add_out u v;
      bucket add_in v u)
    added;
  let del_out = Hashtbl.create 16 and del_in = Hashtbl.create 16 in
  List.iter
    (fun (u, v) ->
      count del_out u;
      count del_in v)
    removed;
  let m = t.m + List.length added - List.length removed in
  if m < 0 then invalid_arg "Csr.patched: more removals than edges";
  let deg tbl_add tbl_del old v =
    let adds = match Hashtbl.find_opt tbl_add v with None -> 0 | Some l -> List.length l in
    let dels = Option.value ~default:0 (Hashtbl.find_opt tbl_del v) in
    let d = old + adds - dels in
    if d < 0 then invalid_arg "Csr.patched: removed edge not present";
    d
  in
  let fwd_offsets = Array.make (n + 1) 0 in
  let rev_offsets = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    fwd_offsets.(v + 1) <- fwd_offsets.(v) + deg add_out del_out (out_degree t v) v;
    rev_offsets.(v + 1) <- rev_offsets.(v) + deg add_in del_in (in_degree t v) v
  done;
  let fwd_targets = Array.make (max m 1) 0 in
  let rev_sources = Array.make (max m 1) 0 in
  let skipped = ref 0 in
  let pos = ref 0 in
  for v = 0 to n - 1 do
    if !pos <> fwd_offsets.(v) then invalid_arg "Csr.patched: inconsistent delta";
    iter_succ t v (fun w ->
        if Hashtbl.mem removed_set (v, w) then incr skipped
        else begin
          fwd_targets.(!pos) <- w;
          incr pos
        end);
    match Hashtbl.find_opt add_out v with
    | None -> ()
    | Some ws ->
      List.iter
        (fun w ->
          fwd_targets.(!pos) <- w;
          incr pos)
        ws
  done;
  if !skipped <> List.length removed then
    invalid_arg "Csr.patched: removed edge not present";
  pos := 0;
  for v = 0 to n - 1 do
    iter_pred t v (fun u ->
        if not (Hashtbl.mem removed_set (u, v)) then begin
          rev_sources.(!pos) <- u;
          incr pos
        end);
    match Hashtbl.find_opt add_in v with
    | None -> ()
    | Some us ->
      List.iter
        (fun u ->
          rev_sources.(!pos) <- u;
          incr pos)
        us
  done;
  {
    n;
    m;
    fwd_offsets;
    fwd_targets;
    rev_offsets;
    rev_sources;
    (* Node tables are physically shared: edge deltas cannot change
       labels or attributes, and the label-bucket memo only depends on
       the (shared) label array — the memo cell itself is shared, so a
       bucket table built under any epoch serves them all. *)
    labels = t.labels;
    attr_table = t.attr_table;
    source_version;
    by_label = t.by_label;
  }

let max_out_degree t =
  let best = ref 0 in
  for v = 0 to t.n - 1 do
    best := max !best (out_degree t v)
  done;
  !best

let to_digraph t =
  let g = Digraph.create ~capacity:t.n () in
  for v = 0 to t.n - 1 do
    ignore (Digraph.add_node g ~attrs:t.attr_table.(v) t.labels.(v) : int)
  done;
  iter_edges t (fun u v -> ignore (Digraph.add_edge g u v : bool));
  g
