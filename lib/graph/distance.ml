module type GRAPH = Graph_intf.GRAPH

module Make (G : GRAPH) = struct
  type scratch = {
    dist : int array;
    queue : int array;
    mutable visited : int Vec.t;
  }

  let make_scratch g =
    let n = G.node_count g in
    {
      dist = Array.make (max n 1) (-1);
      queue = Array.make (max n 1) 0;
      visited = Vec.create ~capacity:64 ~dummy:(-1) ();
    }

  let reset s =
    Vec.iter (fun v -> s.dist.(v) <- -1) s.visited;
    Vec.clear s.visited

  (* Core bounded BFS with nonempty-path semantics: the source is *not*
     marked visited up front, so it is reported iff it lies on a short
     cycle.  [iter_next] selects forward or reverse edges. *)
  let bounded_bfs ~iter_next s g v k f =
    if k < 0 then invalid_arg "Distance: negative bound";
    if Array.length s.dist < G.node_count g then
      invalid_arg "Distance: scratch too small";
    if k > 0 then begin
      let head = ref 0 and tail = ref 0 in
      let push w d =
        s.dist.(w) <- d;
        Vec.push s.visited w;
        s.queue.(!tail) <- w;
        incr tail
      in
      iter_next g v (fun w -> if s.dist.(w) < 0 then push w 1);
      (try
         while !head < !tail do
           let w = s.queue.(!head) in
           incr head;
           let d = s.dist.(w) in
           f w d;
           if d < k then iter_next g w (fun x -> if s.dist.(x) < 0 then push x (d + 1))
         done
       with e ->
         reset s;
         raise e);
      reset s
    end

  let ball s g v k f = bounded_bfs ~iter_next:G.iter_succ s g v k f

  let reverse_ball s g v k f = bounded_bfs ~iter_next:G.iter_pred s g v k f

  exception Found

  let exists_within s g v k p =
    try
      ball s g v k (fun w _ -> if p w then raise Found);
      false
    with Found -> true

  let distances_from g src =
    let n = G.node_count g in
    let dist = Array.make n (-1) in
    let queue = Queue.create () in
    dist.(src) <- 0;
    Queue.add src queue;
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      G.iter_succ g v (fun w ->
          if dist.(w) < 0 then begin
            dist.(w) <- dist.(v) + 1;
            Queue.add w queue
          end)
    done;
    dist

  let eccentricity_bound g = G.node_count g
end

(* The snapshot instance, used pervasively by batch evaluation. *)
include Make (Snapshot)
