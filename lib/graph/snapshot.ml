type node = int

type identity = { graph_id : int; epoch : int }

let identity_equal a b = a.graph_id = b.graph_id && a.epoch = b.epoch

let compare_identity a b =
  match compare a.graph_id b.graph_id with 0 -> compare a.epoch b.epoch | c -> c

let pp_identity ppf id = Format.fprintf ppf "g%d@%d" id.graph_id id.epoch

type t = {
  csr : Csr.t;
  graph_id : int;
  (* Label histogram: the memo cell is shared across epochs of the same
     graph by [advance] (edge deltas cannot change labels), built on
     first planner estimate.  An Atomic option rather than [Lazy.t]:
     [Lazy.force] is not safe across domains, while the
     race-then-adopt-the-winner protocol is (both builders produce the
     identical table). *)
  label_counts : (Label.t, int) Hashtbl.t option Atomic.t;
  (* Degree statistics depend on edges, so each epoch gets its own
     cell.  Atomic for safe cross-domain publication; a duplicate
     computation under a race is benign and identical. *)
  max_out : int option Atomic.t;
}

let of_csr ?graph_id csr =
  let graph_id = match graph_id with Some id -> id | None -> Graph_id.fresh () in
  { csr; graph_id; label_counts = Atomic.make None; max_out = Atomic.make None }

let of_digraph g = of_csr ~graph_id:(Digraph.graph_id g) (Csr.of_digraph g)

let advance t ~version ~added ~removed =
  let csr = Csr.patched t.csr ~source_version:version ~added ~removed in
  { csr; graph_id = t.graph_id; label_counts = t.label_counts; max_out = Atomic.make None }

let csr t = t.csr

let graph_id t = t.graph_id

let epoch t = Csr.source_version t.csr

let id t = { graph_id = t.graph_id; epoch = epoch t }

let pp_id ppf t = pp_identity ppf (id t)

(* Read interface: straight delegation to the underlying CSR. *)

let node_count t = Csr.node_count t.csr

let edge_count t = Csr.edge_count t.csr

let label t v = Csr.label t.csr v

let attrs t v = Csr.attrs t.csr v

let out_degree t v = Csr.out_degree t.csr v

let in_degree t v = Csr.in_degree t.csr v

let iter_succ t v f = Csr.iter_succ t.csr v f

let iter_pred t v f = Csr.iter_pred t.csr v f

let fold_succ t v f acc = Csr.fold_succ t.csr v f acc

let fold_pred t v f acc = Csr.fold_pred t.csr v f acc

let exists_succ t v p = Csr.exists_succ t.csr v p

let has_edge t u v = Csr.has_edge t.csr u v

let iter_nodes t f = Csr.iter_nodes t.csr f

let iter_edges t f = Csr.iter_edges t.csr f

let succ_array t v = Csr.succ_array t.csr v

let nodes_with_label t l = Csr.nodes_with_label t.csr l

let label_count t l =
  let table =
    match Atomic.get t.label_counts with
    | Some table -> table
    | None ->
      let table = Hashtbl.create 16 in
      Csr.iter_nodes t.csr (fun v ->
          let l = Csr.label t.csr v in
          Hashtbl.replace table l
            (1 + Option.value ~default:0 (Hashtbl.find_opt table l)));
      if Atomic.compare_and_set t.label_counts None (Some table) then table
      else (
        match Atomic.get t.label_counts with Some t' -> t' | None -> table)
  in
  Option.value ~default:0 (Hashtbl.find_opt table l)

let max_out_degree t =
  match Atomic.get t.max_out with
  | Some d -> d
  | None ->
    let d = Csr.max_out_degree t.csr in
    Atomic.set t.max_out (Some d);
    d

let to_digraph t = Csr.to_digraph t.csr
