(** Mutable directed graph with labeled, attributed nodes.

    This is the data-graph model of the paper: each node denotes a person
    with a field label (SA, SD, BA, ...) and an attribute record; each
    directed edge denotes a collaboration.  Edges are simple (at most one
    edge per ordered pair) and unweighted; path lengths are hop counts.

    The structure supports the update operations the ExpFinder demo
    exercises — node insertion, edge insertion and edge deletion — and
    carries a monotonically increasing [version] so caches and compressed
    graphs can detect staleness.  Query evaluation does not run on this
    structure directly; build a {!Csr.t} snapshot first. *)

type t

type node = int
(** Nodes are dense integers [0 .. node_count - 1]. *)

val create : ?capacity:int -> unit -> t

val node_count : t -> int

val edge_count : t -> int

val version : t -> int
(** Bumped by every mutating operation. *)

val graph_id : t -> int
(** Process-unique identity of this graph, fresh on {!create}, {!copy}
    and {!of_edges} (see {!Graph_id}).  [(graph_id, version)] is the
    identity of the graph's current epoch: snapshots and caches key off
    the pair, so a graph and its copy — both starting at version 0 —
    can never alias. *)

val add_node : t -> ?attrs:Attrs.t -> Label.t -> node
(** Append a fresh node and return its id. *)

val label : t -> node -> Label.t

val attrs : t -> node -> Attrs.t

val set_attrs : t -> node -> Attrs.t -> unit

val set_label : t -> node -> Label.t -> unit

val mem_node : t -> node -> bool

val has_edge : t -> node -> node -> bool
(** O(out-degree of the source). *)

val add_edge : t -> node -> node -> bool
(** [add_edge g u v] inserts the edge [u -> v]; returns [false] when the
    edge already exists (the graph is unchanged).  Self-loops are
    allowed — compressed graphs need them when an equivalence class
    contains internal edges.  @raise Invalid_argument on an unknown
    endpoint. *)

val remove_edge : t -> node -> node -> bool
(** Returns [false] when the edge was absent. *)

val out_degree : t -> node -> int

val in_degree : t -> node -> int

val iter_succ : t -> node -> (node -> unit) -> unit

val iter_pred : t -> node -> (node -> unit) -> unit

val fold_succ : t -> node -> ('a -> node -> 'a) -> 'a -> 'a

val fold_pred : t -> node -> ('a -> node -> 'a) -> 'a -> 'a

val exists_succ : t -> node -> (node -> bool) -> bool

val iter_nodes : t -> (node -> unit) -> unit

val iter_edges : t -> (node -> node -> unit) -> unit

val succ_list : t -> node -> node list
val pred_list : t -> node -> node list

val copy : t -> t
(** Deep copy sharing no mutable state; the copy starts at version 0 but
    carries a fresh {!graph_id}, so its epochs never alias the
    original's. *)

val of_edges : ?attrs:(int -> Attrs.t) -> labels:Label.t array -> (int * int) list -> t
(** [of_edges ~labels edges] builds a graph with [Array.length labels]
    nodes and the given edge list.  Duplicate edges are silently
    dropped; self-loops are kept (see {!add_edge}). *)

val equal_structure : t -> t -> bool
(** Same node count, labels, attributes and edge sets. *)

val pp_stats : Format.formatter -> t -> unit
(** One-line summary: node/edge counts plus the out-degree distribution
    (max and average). *)
