let counter = ref 0

let fresh () =
  incr counter;
  !counter
