(* Atomic: graph identities are minted from whichever thread loads or
   patches a graph, and a duplicated id would silently merge two
   snapshots' telemetry. *)
let counter = Atomic.make 0

let fresh () = Atomic.fetch_and_add counter 1 + 1
