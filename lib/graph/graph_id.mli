(** Process-unique graph identifiers.

    Every {!Digraph.t} (and every snapshot derived from something other
    than a digraph, e.g. a compressed graph) carries one of these ids.
    Together with the monotonically bumped version they form the snapshot
    identity [(graph_id, epoch)]: two graphs never share an id, so cache
    entries recorded against a graph and its copy can no longer collide
    even though [Digraph.copy] resets the version counter to 0. *)

val fresh : unit -> int
(** A new id, distinct from every id handed out before in this process.
    The first id is 1, so 0 can serve as an "unidentified" sentinel. *)
