(** Immutable, identity-stamped epoch snapshots.

    A snapshot is the unit of query evaluation: every matching algorithm
    — simulation, bounded simulation, candidate extraction, the planner,
    the ball index — reads from a snapshot, never from the mutable
    {!Digraph.t}.  A snapshot wraps a {!Csr.t} (forward + reverse
    adjacency in contiguous slices) and stamps it with a globally unique
    {!identity} [(graph_id, epoch)]:

    - [graph_id] is the process-unique id of the source graph (fresh per
      {!Digraph.t}, fresh per derived graph such as a compressed
      quotient), so snapshots of a graph and its copy never alias;
    - [epoch] is the digraph version the snapshot was taken at.

    Snapshots are immutable, so an in-flight reader simply keeps the
    epoch it pinned while the engine advances to the next one.  The
    advance is copy-on-write: {!advance} applies a small net edge delta
    to the adjacency arrays while sharing the node tables (labels,
    attributes, label buckets, label histogram) with the previous epoch.

    Caches and derived indexes key off the {!identity} value, not a bare
    version int. *)

type node = int

type identity = private { graph_id : int; epoch : int }
(** A value, usable directly as a hash/comparison key. *)

val identity_equal : identity -> identity -> bool

val compare_identity : identity -> identity -> int

val pp_identity : Format.formatter -> identity -> unit

type t

val of_digraph : Digraph.t -> t
(** Full snapshot build: O(|V| + |E|) scan of the digraph.  The identity
    is [(Digraph.graph_id g, Digraph.version g)]. *)

val of_csr : ?graph_id:int -> Csr.t -> t
(** Wrap an existing CSR.  Without [?graph_id] a fresh id is minted —
    use this for derived graphs (e.g. compressed quotients) that are not
    epochs of any digraph.  The epoch is the CSR's [source_version]. *)

val advance : t -> version:int -> added:(node * node) list -> removed:(node * node) list -> t
(** Copy-on-write epoch advance: same [graph_id], epoch [version], edges
    patched by the net delta (see {!Csr.patched} for preconditions).
    Node tables and the label histogram are shared with [t], which
    remains fully usable — readers holding it are unaffected. *)

val id : t -> identity

val graph_id : t -> int

val epoch : t -> int

val pp_id : Format.formatter -> t -> unit

val csr : t -> Csr.t
(** The underlying storage, for Csr-level helpers ({!Scc}, {!Traversal},
    {!Bisimulation}) that do not need the identity. *)

(** {2 Read interface} (satisfies {!Graph_intf.GRAPH}) *)

val node_count : t -> int

val edge_count : t -> int

val label : t -> node -> Label.t

val attrs : t -> node -> Attrs.t

val out_degree : t -> node -> int

val in_degree : t -> node -> int

val iter_succ : t -> node -> (node -> unit) -> unit

val iter_pred : t -> node -> (node -> unit) -> unit

val fold_succ : t -> node -> ('a -> node -> 'a) -> 'a -> 'a

val fold_pred : t -> node -> ('a -> node -> 'a) -> 'a -> 'a

val exists_succ : t -> node -> (node -> bool) -> bool

val has_edge : t -> node -> node -> bool

val iter_nodes : t -> (node -> unit) -> unit

val iter_edges : t -> (node -> node -> unit) -> unit

val succ_array : t -> node -> int array

val nodes_with_label : t -> Label.t -> node list
(** Memoised label buckets (shared across COW epochs via the CSR). *)

(** {2 Cached statistics} *)

val label_count : t -> Label.t -> int
(** O(1) after the first call: size of the label's bucket, from a
    histogram computed once per graph (shared across COW epochs).  The
    planner's selectivity estimates read population sizes here. *)

val max_out_degree : t -> int
(** Computed once per epoch. *)

val to_digraph : t -> Digraph.t
(** Rebuild a mutable graph with identical structure (fresh id). *)
