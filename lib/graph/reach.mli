(** Full transitive reachability via SCC condensation.

    Supports pattern edges with no length bound ("*" edges): after one
    O(|G| + c²/64) precomputation (c = number of SCCs), [reaches] answers
    "is there a nonempty path u ->+ v" in O(1). *)

type t

type node = int

val compute : Snapshot.t -> t

val reaches : t -> node -> node -> bool
(** [reaches t u v] iff there is a path of length >= 1 from [u] to [v].
    [reaches t v v] holds iff [v] lies on a cycle. *)

val on_cycle : t -> node -> bool

val component_count : t -> int
