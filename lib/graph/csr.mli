(** Immutable compressed-sparse-row snapshot of a {!Digraph.t}.

    All matching algorithms, traversals and partition refinement run on
    CSR snapshots: contiguous successor/predecessor slices make bounded
    BFS and counter refinement cache-friendly, and immutability makes it
    safe to share one snapshot across algorithms.  A snapshot remembers
    the [source_version] of the digraph it was taken from. *)

type t

type node = int

val of_digraph : Digraph.t -> t

val node_count : t -> int

val edge_count : t -> int

val source_version : t -> int

val label : t -> node -> Label.t

val attrs : t -> node -> Attrs.t

val out_degree : t -> node -> int

val in_degree : t -> node -> int

val iter_succ : t -> node -> (node -> unit) -> unit

val iter_pred : t -> node -> (node -> unit) -> unit

val succ_array : t -> node -> int array
(** Fresh array of successors (for tests and pretty-printing). *)

val fold_succ : t -> node -> ('a -> node -> 'a) -> 'a -> 'a

val fold_pred : t -> node -> ('a -> node -> 'a) -> 'a -> 'a

val exists_succ : t -> node -> (node -> bool) -> bool

val has_edge : t -> node -> node -> bool
(** O(out-degree). *)

val iter_nodes : t -> (node -> unit) -> unit

val iter_edges : t -> (node -> node -> unit) -> unit

val nodes_with_label : t -> Label.t -> node list
(** All nodes carrying the given label (computed once per snapshot and
    memoised; the common entry point for candidate-set construction). *)

val patched : t -> source_version:int -> added:(node * node) list -> removed:(node * node) list -> t
(** [patched t ~source_version ~added ~removed] is a new snapshot with
    the net edge delta applied: all edges of [t] except [removed], plus
    [added].  The node tables (labels, attributes, label buckets) are
    shared physically with [t] — this is the copy-on-write epoch advance
    for small update batches, O(|V| + |E| + |Δ|) without re-reading the
    digraph.  Preconditions (checked where cheap): added edges are
    absent from [t], removed edges present, no duplicates, endpoints in
    range, and the delta must not create a new node.
    @raise Invalid_argument when a precondition is violated. *)

val max_out_degree : t -> int

val to_digraph : t -> Digraph.t
(** Rebuild a mutable graph with identical structure. *)
