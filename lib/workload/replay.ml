open Expfinder_pattern
open Expfinder_core
open Expfinder_incremental
open Expfinder_engine
open Expfinder_telemetry

type outcome = {
  event : Qlog.event;
  replay_ms : float;
  digest : string;
  matched : bool;
  skipped : string option;
}

type summary = {
  total : int;
  replayed : int;
  skipped : int;
  mismatches : int;
  outcomes : outcome list;
}

let skip event reason =
  { event; replay_ms = nan; digest = ""; matched = true; skipped = Some reason }

let batch_digest relations =
  Digest.to_hex
    (Digest.string (String.concat "" (List.map Match_relation.digest relations)))

(* Parse every element of a payload array with [parse], or say which one
   is broken. *)
let parse_all parse = function
  | Json.Arr items ->
    let rec go i acc = function
      | [] -> Ok (List.rev acc)
      | item :: rest -> (
        match parse item with
        | Ok v -> go (i + 1) (v :: acc) rest
        | Error e -> Error (Printf.sprintf "element %d: %s" i e))
    in
    go 0 [] items
  | _ -> Error "payload is not an array"

let parse_pattern = function
  | Json.Str text -> Pattern_io.of_string text
  | _ -> Error "pattern payload is not a string"

let replay_one engine (event : Qlog.event) =
  match event.error with
  | Some _ -> skip event "original request errored"
  | None -> (
    match event.payload with
    | None -> skip event "no payload (qlog sink was set mid-run?)"
    | Some payload -> (
      (* A raising event (say an update replayed against a graph missing
         the node it names) must not abort the whole replay: it is
         reported as a mismatch carrying the error text. *)
      let timed f =
        let t0 = now_us () in
        match f () with
        | r -> (Ok r, (now_us () -. t0) /. 1000.0)
        | exception e -> (Error (Printexc.to_string e), (now_us () -. t0) /. 1000.0)
      in
      let crashed replay_ms msg =
        { event; replay_ms; digest = "error: " ^ msg; matched = false; skipped = None }
      in
      match event.kind with
      | Qlog.Alert ->
        (* Alert transitions are annotations on the capture, not
           requests; nothing to replay. *)
        skip event "alert event"
      | Qlog.Query -> (
        match parse_pattern payload with
        | Error e -> skip event ("bad payload: " ^ e)
        | Ok pattern -> (
          match timed (fun () -> Engine.evaluate engine pattern) with
          | Error msg, replay_ms -> crashed replay_ms msg
          | Ok answer, replay_ms ->
            let digest = Match_relation.digest answer.Engine.relation in
            { event; replay_ms; digest; matched = digest = event.digest; skipped = None }))
      | Qlog.Batch -> (
        match parse_all parse_pattern payload with
        | Error e -> skip event ("bad payload: " ^ e)
        | Ok patterns -> (
          match timed (fun () -> Engine.evaluate_batch engine patterns) with
          | Error msg, replay_ms -> crashed replay_ms msg
          | Ok answers, replay_ms ->
            let digest = batch_digest (List.map (fun a -> a.Engine.relation) answers) in
            { event; replay_ms; digest; matched = digest = event.digest; skipped = None }))
      | Qlog.Update -> (
        match parse_all Update.of_json payload with
        | Error e -> skip event ("bad payload: " ^ e)
        | Ok ops -> (
          match timed (fun () -> Engine.apply_updates engine ops) with
          | Error msg, replay_ms -> crashed replay_ms msg
          | Ok _reports, replay_ms ->
            (* Updates carry no answer digest; correctness shows up in the
               digests of every later query against the mutated graph. *)
            { event; replay_ms; digest = ""; matched = true; skipped = None }))))

let run engine events =
  let outcomes = List.map (replay_one engine) events in
  let replayed = List.filter (fun (o : outcome) -> o.skipped = None) outcomes in
  {
    total = List.length outcomes;
    replayed = List.length replayed;
    skipped = List.length outcomes - List.length replayed;
    mismatches = List.length (List.filter (fun (o : outcome) -> not o.matched) replayed);
    outcomes;
  }

let mismatches summary = List.filter (fun (o : outcome) -> not o.matched) summary.outcomes

(* Group replayed outcomes into report records keyed by the event's
   query fingerprint: the ids depend only on the captured workload, so
   two replays of the same log (say before and after an optimisation)
   pair up under [expfinder bench-diff]. *)
let report ?(mode = "replay") summary =
  let r = Report.create ~tool:"expfinder replay" ~mode () in
  let groups : (string, float list ref * float list ref * string list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let order = ref [] in
  List.iter
    (fun (o : outcome) ->
      if o.skipped = None then begin
        let key = Printf.sprintf "%s.%s" (Qlog.kind_name o.event.Qlog.kind) o.event.Qlog.query in
        let replayed, recorded, traces =
          match Hashtbl.find_opt groups key with
          | Some cell -> cell
          | None ->
            let cell = (ref [], ref [], ref []) in
            Hashtbl.add groups key cell;
            order := key :: !order;
            cell
        in
        replayed := o.replay_ms :: !replayed;
        recorded := o.event.Qlog.duration_ms :: !recorded;
        if o.event.Qlog.trace_id <> "" then traces := o.event.Qlog.trace_id :: !traces
      end)
    summary.outcomes;
  let all_replayed = ref [] in
  List.iter
    (fun key ->
      let replayed, recorded, traces = Hashtbl.find groups key in
      (* Preserve the captured requests' identity: the trace ids the
         group's events carried at capture time (v1 logs carry none),
         so a replay report can be joined back to the original traces. *)
      let trace_param =
        if !traces = [] then []
        else
          [ ("trace_ids", Json.Arr (List.rev_map (fun t -> Json.Str t) !traces)) ]
      in
      Report.add r ~id:("REPLAY." ^ key) ~experiment:"REPLAY" ~units:"ms"
        ~params:(("requests", Json.Int (List.length !replayed)) :: trace_param)
        (List.rev !replayed);
      Report.add r ~id:("QLOG." ^ key) ~experiment:"QLOG" ~units:"ms"
        ~params:(("requests", Json.Int (List.length !recorded)) :: trace_param)
        (List.rev !recorded);
      all_replayed := !replayed @ !all_replayed)
    (List.rev !order);
  if !all_replayed <> [] then
    Report.add r ~id:"REPLAY.total" ~experiment:"REPLAY" ~units:"ms"
      ~params:[ ("requests", Json.Int (List.length !all_replayed)) ]
      !all_replayed;
  r

let pp_summary ppf summary =
  let median l =
    if l = [] then nan else (Report.stats_of_samples l).Report.median
  in
  let replayed = List.filter (fun (o : outcome) -> o.skipped = None) summary.outcomes in
  let rec_ms = median (List.map (fun (o : outcome) -> o.event.Qlog.duration_ms) replayed) in
  let rep_ms = median (List.map (fun (o : outcome) -> o.replay_ms) replayed) in
  Format.fprintf ppf "@[<v>replayed %d/%d events (%d skipped), %d digest mismatch%s@,"
    summary.replayed summary.total summary.skipped summary.mismatches
    (if summary.mismatches = 1 then "" else "es");
  if replayed <> [] then
    Format.fprintf ppf "median latency: recorded %.3f ms, replayed %.3f ms (%+.1f%%)@,"
      rec_ms rep_ms
      (if rec_ms > 0.0 then ((rep_ms /. rec_ms) -. 1.0) *. 100.0 else nan);
  List.iter
    (fun (o : outcome) ->
      match o.skipped with
      | Some reason -> Format.fprintf ppf "  skipped #%d (%s): %s@," o.event.Qlog.seq o.event.Qlog.query reason
      | None ->
        if not o.matched then
          Format.fprintf ppf "  MISMATCH #%d (%s): recorded %s, replayed %s@," o.event.Qlog.seq
            o.event.Qlog.query o.event.Qlog.digest o.digest)
    summary.outcomes;
  Format.fprintf ppf "@]"
