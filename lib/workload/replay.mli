open Expfinder_engine
open Expfinder_telemetry

(** Workload replay: re-run a captured query log
    ({!Expfinder_telemetry.Qlog}) against a fresh engine and check that
    every answer digest matches what was recorded.

    Replay is the closing half of the capture/replay loop: serve a
    workload with [EXPFINDER_QLOG] set, then feed the log back through
    {!run} on an engine built over the same base graph.  Query and
    batch events re-evaluate their recorded pattern payloads and
    compare {!Expfinder_core.Match_relation.digest} (batches: the MD5
    of the per-answer digests in input order) byte-for-byte; update
    events re-apply their recorded ΔG, so a divergence introduced by an
    update shows up in the digest of every later query.  Events that
    recorded an error, or that carry no payload, are skipped and
    counted — they are not mismatches.  An event whose replay raises
    (e.g. an update naming a node the current graph lacks) is reported
    as a mismatch whose digest carries the error text, never a crash of
    the whole replay. *)

type outcome = {
  event : Qlog.event;
  replay_ms : float;  (** this run's latency ([nan] when skipped) *)
  digest : string;  (** recomputed answer digest ([""] for updates) *)
  matched : bool;  (** digest agrees with the recorded one *)
  skipped : string option;  (** reason this event was not replayed *)
}

type summary = {
  total : int;
  replayed : int;
  skipped : int;
  mismatches : int;
  outcomes : outcome list;  (** in log order *)
}

val run : Engine.t -> Qlog.event list -> summary
(** Replay the events in log order.  The engine should hold the same
    base graph the log was captured against (updates are re-applied, so
    starting from a later state diverges by construction). *)

val mismatches : summary -> outcome list

val report : ?mode:string -> summary -> Report.t
(** The replay latencies as a bench report (mode ["replay"]): one
    [REPLAY.<kind>.<fingerprint>] record per distinct request (samples:
    this run's latencies), a paired [QLOG.<kind>.<fingerprint>] record
    holding the latencies recorded at capture time, and a [REPLAY.total]
    record over every replayed event.  Ids depend only on the captured
    workload, so two replays of the same log pair up under
    [expfinder bench-diff] — the recorded-vs-replayed delta is visible
    inside one report, and replay-vs-replay across two. *)

val pp_summary : Format.formatter -> summary -> unit
(** Counts, the recorded-vs-replayed median latency delta, and one line
    per skip or mismatch. *)
