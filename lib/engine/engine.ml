open Expfinder_graph
open Expfinder_pattern
open Expfinder_core
open Expfinder_incremental
open Expfinder_compression
open Expfinder_storage
open Expfinder_telemetry

let src = Logs.Src.create "expfinder.engine" ~doc:"ExpFinder query engine"

module Log = (val Logs.src_log src : Logs.LOG)

type provenance = From_cache | From_compressed | From_index | Direct

let provenance_name = function
  | From_cache -> "cache"
  | From_compressed -> "compressed"
  | From_index -> "ball-index"
  | Direct -> "direct"

let m_queries = Metrics.counter "engine.queries"

let m_from_cache = Metrics.counter "engine.answers.cache"

let m_from_compressed = Metrics.counter "engine.answers.compressed"

let m_from_index = Metrics.counter "engine.answers.ball_index"

let m_direct = Metrics.counter "engine.answers.direct"

let m_topk = Metrics.counter "engine.topk_queries"

let m_containment = Metrics.counter "engine.containment_hits"

let m_differential = Metrics.counter "engine.differential_checks"

let m_update_batches = Metrics.counter "engine.update_batches"

let m_updates_effective = Metrics.counter "engine.updates_effective"

let h_query_ms = Metrics.histogram "engine.query_ms"

let provenance_counter = function
  | From_cache -> m_from_cache
  | From_compressed -> m_from_compressed
  | From_index -> m_from_index
  | Direct -> m_direct

type profile = {
  query : string;  (** the pattern fingerprint *)
  provenance : provenance;
  span : Span.t;
  counters : (string * int) list;
}

type answer = {
  relation : Match_relation.t;
  total : bool;
  provenance : provenance;
  profile : profile option;
}

type expert = { node : int; name : string option; rank : Ranking.rank }

type t = {
  g : Digraph.t;
  mutable csr : Csr.t;
  cache : Cache.t;
  mutable compressed : Inc_compress.t option;
  mutable ball_index : Ball_index.t option;
  mutable ball_radius : int;
  mutable registered : (string * Incremental.t) list; (* fingerprint-keyed, in order *)
  mutable last_profile : profile option;
}

let create ?cache_capacity g =
  {
    g;
    csr = Csr.of_digraph g;
    cache = Cache.create ?capacity:cache_capacity ();
    compressed = None;
    ball_index = None;
    ball_radius = 0;
    registered = [];
    last_profile = None;
  }

let graph t = t.g

let snapshot t =
  if Csr.source_version t.csr <> Digraph.version t.g then t.csr <- Csr.of_digraph t.g;
  t.csr

(* Direct evaluation goes through the planner: candidate ordering with
   early exit, sink pruning, and strategy selection (§III "optimized
   query plans"). *)
let run_direct pattern csr = Planner.run pattern csr

(* Containment reuse: when the exact fingerprint misses but the cache
   holds the *total* kernel of a superset query Q' (every node of the
   incoming pattern related to a Q'-node by the containment simulation,
   see {!Pattern_analysis.superset_map}), that kernel bounds every
   candidate set of the incoming query from above.  Filter it by the
   pattern's own label/predicate specs and refine below it — the exact
   kernel, without scanning the data graph for candidates. *)
let from_containment t pattern ~version =
  Cache.fold t.cache ~graph_version:version ~init:None ~f:(fun acc sup relation ->
      match acc with
      | Some _ -> acc
      | None ->
        if
          Match_relation.is_total relation
          && not (Pattern.equal sup pattern)
        then
          Pattern_analysis.superset_map ~sub:pattern ~sup
          |> Option.map (fun map -> (map, relation))
        else None)
  |> Option.map (fun (map, sup_relation) ->
         let csr = snapshot t in
         let initial =
           Match_relation.create ~pattern_size:(Pattern.size pattern)
             ~graph_size:(Csr.node_count csr)
         in
         for u = 0 to Pattern.size pattern - 1 do
           List.iter
             (fun v ->
               if Pattern.matches_node pattern u (Csr.label csr v) (Csr.attrs csr v)
               then Match_relation.add initial u v)
             (Match_relation.matches sup_relation map.(u))
         done;
         with_span "containment_refine"
           ~attrs:[ ("seed_pairs", string_of_int (Match_relation.total initial)) ]
           (fun () ->
             if Pattern.is_simulation_pattern pattern then
               Simulation.run_constrained pattern csr ~initial ~mutable_set:None
             else
               Bounded_sim.run_constrained ~strategy:Bounded_sim.Naive pattern csr
                 ~initial ~mutable_set:None))

(* The untraced core of [evaluate]: cache -> registered kernel ->
   compressed -> cached superset (containment) -> ball index -> planner,
   returning the relation, where it came from, a strategy label for the
   flight recorder, and whether this call just computed it via the
   direct path (the differential checker re-verifies everything
   else). *)
let evaluate_inner t pattern =
  let version = Digraph.version t.g in
  match
    with_span "cache.lookup" (fun () -> Cache.find t.cache pattern ~graph_version:version)
  with
  | Some relation -> (relation, From_cache, "cache", false)
  | None ->
    let registered_kernel =
      match List.assoc_opt (Pattern.fingerprint pattern) t.registered with
      | Some inc when Incremental.version inc = version ->
        Some (Match_relation.copy (Incremental.kernel inc))
      | _ -> None
    in
    let relation, provenance, strategy, via_direct =
      match registered_kernel with
      | Some relation -> (relation, Direct, "registered", false)
      | None -> (
        let compressed_answer =
          match t.compressed with
          | Some inc
            when Csr.source_version (Inc_compress.snapshot inc) = version
                 && Compress.supports (Inc_compress.current inc) pattern ->
            Some (Compress.evaluate (Inc_compress.current inc) pattern)
          | _ -> None
        in
        match compressed_answer with
        | Some relation -> (relation, From_compressed, "compressed", false)
        | None -> (
          match from_containment t pattern ~version with
          | Some relation ->
            Counter.incr m_containment;
            (relation, From_cache, "containment", false)
          | None -> (
            let csr = snapshot t in
            (* Rebuild the opt-in ball index lazily after updates. *)
            (match t.ball_index with
            | Some idx
              when Ball_index.source_version idx <> Csr.source_version csr ->
              t.ball_index <-
                Some
                  (with_span "ball_index.rebuild" (fun () ->
                       Ball_index.build csr ~radius:t.ball_radius))
            | _ -> ());
            match t.ball_index with
            | Some idx when Ball_index.supports idx pattern ->
              (Ball_index.evaluate idx pattern csr, From_index, "ball-index", false)
            | _ ->
              let relation, plan = Planner.run_with_plan pattern csr in
              ( relation,
                Direct,
                "direct/" ^ Planner.strategy_name plan.Planner.strategy,
                true ))))
    in
    Cache.store t.cache pattern ~graph_version:version relation;
    (relation, provenance, strategy, via_direct)

(* EXPFINDER_CHECK=1 sanitizer: any answer that did not just come out of
   the direct path is re-evaluated directly and compared (as a query
   answer: non-total kernels all denote the empty M(Q,G)), and the
   served relation is run through the {!Verify} pair-validity and
   maximality spot checks.  Raises on divergence — the point is to fail
   tests and benches loudly. *)
let differential_check t pattern relation provenance ~via_direct =
  if Verify.differential () then begin
    Counter.incr m_differential;
    try
      let csr = snapshot t in
      if not via_direct then begin
        let direct = with_span "verify.differential" (fun () -> run_direct pattern csr) in
        if not (Verify.semantically_equal relation direct) then
          failwith
            (Printf.sprintf
               "EXPFINDER_CHECK: %s answer for query %s diverges from direct evaluation \
                (%d vs %d pairs)"
               (provenance_name provenance) (Pattern.fingerprint pattern)
               (Match_relation.total relation) (Match_relation.total direct))
      end;
      Verify.check_exn pattern csr relation
    with e ->
      (* A failed self-check is exactly what the flight recorder is for:
         dump the recent-query ring before propagating. *)
      Format.eprintf "EXPFINDER_CHECK failure; flight recorder dump:@.%a@."
        Recorder.pp ();
      raise e
  end

(* Profile plumbing shared by [evaluate] and [top_k]: snapshot the
   counter registry, run the traced body, and turn the root span (when
   this call owns the trace) plus the counter deltas into a profile. *)
let profiled t ~root ~attrs ~query f =
  let before = if enabled () then Metrics.counters_snapshot () else [] in
  let (result, provenance), span = collect ~attrs root f in
  let profile =
    match span with
    | None -> None
    | Some span ->
      Histogram.observe h_query_ms (Span.duration_ms span);
      let counters = Metrics.delta ~before ~after:(Metrics.counters_snapshot ()) in
      let p = { query; provenance; span; counters } in
      t.last_profile <- Some p;
      Some p
  in
  (result, profile)

let evaluate t pattern =
  (* Flight recorder bookkeeping is always on (unlike profiles): snapshot
     the counter registry and the clock around the whole query. *)
  let rec_before = Metrics.counters_snapshot () in
  let rec_start = now_us () in
  Counter.incr m_queries;
  let fp = Pattern.fingerprint pattern in
  let (relation, provenance, strategy), profile =
    profiled t ~root:"evaluate" ~attrs:[ ("query", fp) ] ~query:fp (fun () ->
        let relation, provenance, strategy, via_direct = evaluate_inner t pattern in
        differential_check t pattern relation provenance ~via_direct;
        Counter.incr (provenance_counter provenance);
        annotate "provenance" (provenance_name provenance);
        annotate_int "pairs" (Match_relation.total relation);
        ((relation, provenance, strategy), provenance))
  in
  Recorder.record ~query:fp ~strategy
    ~duration_ms:((now_us () -. rec_start) /. 1000.0)
    ~counters:(Metrics.delta ~before:rec_before ~after:(Metrics.counters_snapshot ()));
  Log.debug (fun m ->
      m "evaluate %s: %d pairs via %s" fp (Match_relation.total relation)
        (provenance_name provenance));
  { relation; total = Match_relation.is_total relation; provenance; profile }

let result_graph t pattern =
  let answer = evaluate t pattern in
  let relation =
    if answer.total then answer.relation
    else
      Match_relation.create ~pattern_size:(Pattern.size pattern)
        ~graph_size:(Digraph.node_count t.g)
  in
  Result_graph.build pattern (snapshot t) relation

let top_k t pattern ~k =
  Counter.incr m_topk;
  let fp = Pattern.fingerprint pattern in
  fst
  @@ profiled t ~root:"topk"
    ~attrs:[ ("query", fp); ("k", string_of_int k) ]
    ~query:fp
    (fun () ->
      let answer = evaluate t pattern in
      if not answer.total then ([], answer.provenance)
      else begin
        let csr = snapshot t in
        let gr =
          with_span "result_graph" (fun () ->
              Result_graph.build pattern csr answer.relation)
        in
        let output_matches = Match_relation.matches answer.relation (Pattern.output pattern) in
        let experts =
          with_span "rank"
            ~attrs:[ ("output_matches", string_of_int (List.length output_matches)) ]
            (fun () ->
              Ranking.top_k gr ~output_matches ~k
              |> List.map (fun (node, rank) ->
                     let name =
                       match Attrs.find (Csr.attrs csr node) "name" with
                       | Some (Attr.String s) -> Some s
                       | Some _ | None -> None
                     in
                     { node; name; rank }))
        in
        (experts, answer.provenance)
      end)

let last_profile t = t.last_profile

let pp_profile ppf p =
  Format.fprintf ppf "profile: query %s, answered via %s@." p.query
    (provenance_name p.provenance);
  Span.pp_tree ppf p.span;
  match p.counters with
  | [] -> ()
  | counters ->
    Format.fprintf ppf "counters:@.";
    List.iter (fun (name, v) -> Format.fprintf ppf "  %-38s %d@." name v) counters

let profile_json (p : profile) =
  Json.Obj
    [
      ("query", Json.Str p.query);
      ("provenance", Json.Str (provenance_name p.provenance));
      ("span", Span.to_json p.span);
      ( "counters",
        Json.Obj (List.map (fun (name, v) -> (name, Json.Int v)) p.counters) );
    ]

let enable_ball_index ?(radius = 3) t =
  t.ball_radius <- radius;
  t.ball_index <- Some (Ball_index.build (snapshot t) ~radius)

let disable_ball_index t = t.ball_index <- None

let enable_compression ?atoms t =
  t.compressed <- Some (Inc_compress.create ?atoms t.g)

let disable_compression t = t.compressed <- None

let compression t = Option.map Inc_compress.current t.compressed

let register t pattern =
  let fp = Pattern.fingerprint pattern in
  if not (List.mem_assoc fp t.registered) then
    t.registered <- t.registered @ [ (fp, Incremental.create pattern t.g) ]

let unregister t pattern =
  let fp = Pattern.fingerprint pattern in
  t.registered <- List.filter (fun (fp', _) -> fp' <> fp) t.registered

let registered t = List.map (fun (_, inc) -> Incremental.pattern inc) t.registered

let apply_updates t updates =
  Counter.incr m_update_batches;
  let effective = Update.apply_batch_filtered t.g updates in
  Counter.add m_updates_effective (List.length effective);
  let new_csr = Csr.of_digraph t.g in
  t.csr <- new_csr;
  (* Results for old versions are unreachable (keys include the version),
     but drop them eagerly to keep the cache useful. *)
  Cache.clear t.cache;
  Option.iter
    (fun inc ->
      ignore
        (Inc_compress.sync inc ~new_csr ~effective:(List.length effective) effective
          : Inc_compress.report))
    t.compressed;
  Log.debug (fun m ->
      m "apply_updates: %d effective, %d registered queries, compression %s"
        (List.length effective) (List.length t.registered)
        (if t.compressed = None then "off" else "maintained"));
  List.map (fun (_, inc) -> Incremental.sync_applied inc ~effective) t.registered

let cache_stats t = (Cache.hits t.cache, Cache.misses t.cache)

let cache_counters t = (Cache.hits t.cache, Cache.misses t.cache, Cache.evictions t.cache)

let explain t pattern = Planner.explain pattern (Planner.plan pattern (snapshot t))

(* EXPLAIN ANALYZE bypasses the cache/compression/index fast paths on
   purpose: the point is to execute the plan and confront its estimates
   with the candidate sets it actually materialised. *)
let explain_analyze t pattern =
  let csr = snapshot t in
  let _relation, plan = Planner.run_with_plan pattern csr in
  Planner.explain_analyze pattern plan
