open Expfinder_graph
open Expfinder_pattern
open Expfinder_core
open Expfinder_incremental
open Expfinder_compression
open Expfinder_storage
open Expfinder_telemetry
module Parallel = Expfinder_parallel

let src = Logs.Src.create "expfinder.engine" ~doc:"ExpFinder query engine"

module Log = (val Logs.src_log src : Logs.LOG)

type provenance = From_cache | From_compressed | From_index | Direct

let provenance_name = function
  | From_cache -> "cache"
  | From_compressed -> "compressed"
  | From_index -> "ball-index"
  | Direct -> "direct"

let m_queries = Metrics.counter "engine.queries"

let m_from_cache = Metrics.counter "engine.answers.cache"

let m_from_compressed = Metrics.counter "engine.answers.compressed"

let m_from_index = Metrics.counter "engine.answers.ball_index"

let m_direct = Metrics.counter "engine.answers.direct"

let m_topk = Metrics.counter "engine.topk_queries"

let m_containment = Metrics.counter "engine.containment_hits"

let m_differential = Metrics.counter "engine.differential_checks"

let m_update_batches = Metrics.counter "engine.update_batches"

let m_updates_effective = Metrics.counter "engine.updates_effective"

let m_snapshot_advances = Metrics.counter "engine.snapshot_advances"

let m_snapshot_rebuilds = Metrics.counter "engine.snapshot_rebuilds"

let m_batches = Metrics.counter "engine.batches"

let m_batch_queries = Metrics.counter "engine.batch_queries"

let h_query_ms = Metrics.histogram "engine.query_ms"

(* Serving-path SLO windows: always-on per-second rings feeding the
   /metrics and /stats.json surfaces (QPS, error rate, latency
   percentiles over the last minute), one per operation class. *)
let w_query = Window.get "query"

let w_batch = Window.get "batch"

let w_update = Window.get "update"

let provenance_counter = function
  | From_cache -> m_from_cache
  | From_compressed -> m_from_compressed
  | From_index -> m_from_index
  | Direct -> m_direct

type profile = {
  query : string;  (** the pattern fingerprint *)
  provenance : provenance;
  span : Span.t;
  counters : (string * int) list;
  trace_id : string;  (** "" when the request carried no trace context *)
}

type answer = {
  relation : Match_relation.t;
  total : bool;
  provenance : provenance;
  profile : profile option;
}

type expert = { node : int; name : string option; rank : Ranking.rank }

(* Concurrency model (multicore serving):

   - [snap] is the epoch-publication cell.  Readers pin one coherent
     snapshot with a single [Atomic.get] and never block on writers; the
     writer publishes the post-update epoch with [Atomic.set] once the
     new snapshot is fully built.
   - [writer] serializes everything that advances the epoch:
     [apply_updates] and the rebuild-on-external-mutation path of
     [snapshot].
   - [maint] guards the optional structures ([registered] kernels, the
     [compressed] graph, the [ball_index]).  Readers take it with
     [Mutex.try_lock] only: under contention they skip the fast path and
     fall through to containment/planner — every path computes the same
     kernel (EXPFINDER_CHECK enforces it), only provenance and latency
     differ. *)
(* Contention observability for the model above, always-on (registry
   cells are internally atomic/guarded):
     [engine.maint_skips.*]          try-lock losses per structure
     [engine.snapshot.stale_reads]   reads served the pinned pre-update
                                     snapshot because a write was in
                                     flight
     [engine.snapshot.staleness]     epochs behind (version - epoch) at
                                     the last stale read; 0 once the
                                     writer publishes
     [engine.epoch.publish_lag_ms]   apply-to-publication latency *)
type contention_metrics = {
  m_maint_skip_fast : Counter.t;
  m_maint_skip_ball : Counter.t;
  m_stale_reads : Counter.t;
  g_staleness : Gauge.t;
  h_publish_lag : Histogram.t;
}

type t = {
  g : Digraph.t;
  snap : Snapshot.t Atomic.t;
  cache : Cache.t;
  writer : Mutex.t;
  maint : Mutex.t;
  mutable compressed : Inc_compress.t option;
  mutable ball_index : Ball_index.t option;
  mutable ball_radius : int;
  mutable registered : (string * Incremental.t) list; (* fingerprint-keyed, in order *)
  last_profile : profile option Atomic.t;
  cm : contention_metrics;
}

let create ?cache_capacity g =
  {
    g;
    snap = Atomic.make (Snapshot.of_digraph g);
    cache = Cache.create ?capacity:cache_capacity ();
    writer = Mutex.create ();
    maint = Mutex.create ();
    compressed = None;
    ball_index = None;
    ball_radius = 0;
    registered = [];
    last_profile = Atomic.make None;
    cm =
      {
        m_maint_skip_fast =
          Metrics.counter ~always:true "engine.maint_skips.fastpath";
        m_maint_skip_ball =
          Metrics.counter ~always:true "engine.maint_skips.ball_index";
        m_stale_reads = Metrics.counter ~always:true "engine.snapshot.stale_reads";
        g_staleness = Metrics.gauge ~always:true "engine.snapshot.staleness";
        h_publish_lag =
          Metrics.histogram ~always:true "engine.epoch.publish_lag_ms";
      };
  }

let graph t = t.g

(* Maintenance-lock helpers.  [with_maint] blocks (maintenance ops and
   the writer's sync phase); [with_maint_opt] is the readers' variant:
   it never blocks, answering [None] when the lock is contended. *)
let with_maint t f =
  Mutex.lock t.maint;
  match f () with
  | v ->
    Mutex.unlock t.maint;
    v
  | exception e ->
    Mutex.unlock t.maint;
    raise e

let with_maint_opt t ~skip f =
  if not (Mutex.try_lock t.maint) then begin
    Counter.incr skip;
    None
  end
  else
    match f () with
    | v ->
      Mutex.unlock t.maint;
      v
    | exception e ->
      Mutex.unlock t.maint;
      raise e

(* The one place snapshot/digraph agreement is checked: the memoised
   snapshot is current unless the digraph was mutated behind the
   engine's back (all updates through [apply_updates] keep it in sync
   copy-on-write), in which case we pay one full rebuild here.
   Requires [t.writer] held (rebuilding from a digraph another domain is
   mutating would tear). *)
let snapshot_locked t =
  let s = Atomic.get t.snap in
  if Snapshot.epoch s = Digraph.version t.g then s
  else begin
    Counter.incr m_snapshot_rebuilds;
    let s = Snapshot.of_digraph t.g in
    Atomic.set t.snap s;
    s
  end

let snapshot t =
  let s = Atomic.get t.snap in
  if Snapshot.epoch s = Digraph.version t.g then s
  else if Mutex.try_lock t.writer then (
    match snapshot_locked t with
    | s ->
      Mutex.unlock t.writer;
      s
    | exception e ->
      Mutex.unlock t.writer;
      raise e)
  else begin
    (* An update is in flight (version already bumped, new epoch not yet
       published): serve the pinned pre-update snapshot rather than
       block — the update is not "done" from this reader's viewpoint. *)
    Counter.incr t.cm.m_stale_reads;
    Gauge.set t.cm.g_staleness (max 0 (Digraph.version t.g - Snapshot.epoch s));
    s
  end

(* Direct evaluation goes through the planner: candidate ordering with
   early exit, sink pruning, and strategy selection (§III "optimized
   query plans"). *)
let run_direct pattern snap = Planner.run pattern snap

(* Containment reuse: when the exact fingerprint misses but the cache
   holds the *total* kernel of a superset query Q' (every node of the
   incoming pattern related to a Q'-node by the containment simulation,
   see {!Pattern_analysis.superset_map}), that kernel bounds every
   candidate set of the incoming query from above.  Filter it by the
   pattern's own label/predicate specs and refine below it — the exact
   kernel, without scanning the data graph for candidates. *)
let from_containment ?(domains = 1) t pattern ~snap =
  let sid = Snapshot.id snap in
  Cache.fold t.cache ~snapshot:sid ~init:None ~f:(fun acc sup relation ->
      match acc with
      | Some _ -> acc
      | None ->
        if
          Match_relation.is_total relation
          && not (Pattern.equal sup pattern)
        then
          Pattern_analysis.superset_map ~sub:pattern ~sup
          |> Option.map (fun map -> (map, relation))
        else None)
  |> Option.map (fun (map, sup_relation) ->
         let initial =
           Match_relation.create ~pattern_size:(Pattern.size pattern)
             ~graph_size:(Snapshot.node_count snap)
         in
         for u = 0 to Pattern.size pattern - 1 do
           List.iter
             (fun v ->
               if Pattern.matches_node pattern u (Snapshot.label snap v) (Snapshot.attrs snap v)
               then Match_relation.add initial u v)
             (Match_relation.matches sup_relation map.(u))
         done;
         with_span "containment_refine"
           ~attrs:[ ("seed_pairs", string_of_int (Match_relation.total initial)) ]
           (fun () ->
             if Pattern.is_simulation_pattern pattern then
               Simulation.run_constrained ~domains pattern snap ~initial
                 ~mutable_set:None
             else
               Bounded_sim.run_constrained ~strategy:Bounded_sim.Naive ~domains
                 pattern snap ~initial ~mutable_set:None))

(* The untraced core of [evaluate]: cache -> registered kernel ->
   compressed -> cached superset (containment) -> ball index -> planner,
   returning the relation, where it came from, a strategy label for the
   flight recorder, and whether this call just computed it via the
   direct path (the differential checker re-verifies everything
   else). *)
let evaluate_inner t pattern =
  let snap = snapshot t in
  let sid = Snapshot.id snap in
  match
    with_span "cache.lookup" (fun () -> Cache.find t.cache pattern ~snapshot:sid)
  with
  | Some relation -> (relation, From_cache, "cache", false)
  | None ->
    let fast =
      with_maint_opt t ~skip:t.cm.m_maint_skip_fast (fun () ->
          match List.assoc_opt (Pattern.fingerprint pattern) t.registered with
          | Some inc when Incremental.version inc = Snapshot.epoch snap ->
            Some (Match_relation.copy (Incremental.kernel inc), Direct, "registered")
          | _ -> (
            match t.compressed with
            | Some inc
              when Snapshot.identity_equal (Snapshot.id (Inc_compress.snapshot inc)) sid
                   && Compress.supports (Inc_compress.current inc) pattern ->
              Some
                ( Compress.evaluate (Inc_compress.current inc) pattern,
                  From_compressed,
                  "compressed" )
            | _ -> None))
    in
    let relation, provenance, strategy, via_direct =
      match fast with
      | Some (relation, provenance, strategy) -> (relation, provenance, strategy, false)
      | None -> (
        match from_containment t pattern ~snap with
        | Some relation ->
          Counter.incr m_containment;
          (relation, From_cache, "containment", false)
        | None -> (
          let indexed =
            with_maint_opt t ~skip:t.cm.m_maint_skip_ball (fun () ->
                (* Rebuild the opt-in ball index lazily after updates. *)
                (match t.ball_index with
                | Some idx
                  when not (Snapshot.identity_equal (Ball_index.source idx) sid) ->
                  t.ball_index <-
                    Some
                      (with_span "ball_index.rebuild" (fun () ->
                           Ball_index.build snap ~radius:t.ball_radius))
                | _ -> ());
                match t.ball_index with
                | Some idx when Ball_index.supports idx pattern ->
                  Some (Ball_index.evaluate idx pattern snap)
                | _ -> None)
          in
          match indexed with
          | Some relation -> (relation, From_index, "ball-index", false)
          | None ->
            let relation, plan = Planner.run_with_plan pattern snap in
            ( relation,
              Direct,
              "direct/" ^ Planner.strategy_name plan.Planner.strategy,
              true )))
    in
    Cache.store t.cache pattern ~snapshot:sid relation;
    (relation, provenance, strategy, via_direct)

(* EXPFINDER_CHECK=1 sanitizer: any answer that did not just come out of
   the direct path is re-evaluated directly and compared (as a query
   answer: non-total kernels all denote the empty M(Q,G)), and the
   served relation is run through the {!Verify} pair-validity and
   maximality spot checks.  Raises on divergence — the point is to fail
   tests and benches loudly. *)
let differential_check t pattern relation provenance ~via_direct =
  if Verify.differential () then begin
    Counter.incr m_differential;
    try
      let snap = snapshot t in
      if not via_direct then begin
        let direct = with_span "verify.differential" (fun () -> run_direct pattern snap) in
        if not (Verify.semantically_equal relation direct) then
          failwith
            (Printf.sprintf
               "EXPFINDER_CHECK: %s answer for query %s diverges from direct evaluation \
                (%d vs %d pairs)"
               (provenance_name provenance) (Pattern.fingerprint pattern)
               (Match_relation.total relation) (Match_relation.total direct))
      end;
      Verify.check_exn pattern snap relation
    with e ->
      (* A failed self-check is exactly what the flight recorder is for:
         dump the recent-query ring before propagating. *)
      Format.eprintf "EXPFINDER_CHECK failure; flight recorder dump:@.%a@."
        Recorder.pp ();
      raise e
  end

(* Profile plumbing shared by [evaluate] and [top_k]: snapshot the
   counter registry, run the traced body under the request's context,
   and turn the root span (when this call owns the trace) plus the
   counter deltas into a profile. *)
let profiled ?(trace = Trace.ambient) t ~root ~attrs ~query f =
  let before = if enabled () then Metrics.counters_snapshot () else [] in
  let (result, provenance), span = Trace.collect trace ~attrs root f in
  let profile =
    match span with
    | None -> None
    | Some span ->
      Histogram.observe h_query_ms (Span.duration_ms span);
      let counters = Metrics.delta ~before ~after:(Metrics.counters_snapshot ()) in
      let p = { query; provenance; span; counters; trace_id = trace.Trace.trace_id } in
      Atomic.set t.last_profile (Some p);
      Some p
  in
  (result, profile)

(* Query-log plumbing.  The digest and the replayable payload are only
   materialised when a sink is configured, so the unlogged serving path
   pays nothing beyond the [Qlog.enabled] check. *)
let qlog_emit t ~kind ~query ~strategy ~duration_ms ~counters ~pairs ~digest ?(trace_id = "")
    ?error ?payload () =
  if Qlog.enabled () then begin
    let snap = Atomic.get t.snap in
    Qlog.emit ~kind ~graph_id:(Snapshot.graph_id snap) ~epoch:(Snapshot.epoch snap)
      ~query ~strategy ~duration_ms ~counters ~pairs ~digest ~trace_id ?error ?payload ()
  end

(* Finished-request bookkeeping shared by the three op classes: offer
   the request to the trace store (head + tail sampling) and record the
   op window observation, advertising the trace id as that latency
   bucket's exemplar only when the store admitted it — an exemplar must
   resolve to a stored trace. *)
let observe_traced ~trace ~window ~op ~query ~duration_ms ~error ?root () =
  let kept =
    Tracestore.record ~trace_id:trace.Trace.trace_id ~span_id:trace.Trace.span_id ~op ~query
      ~duration_ms ~error ?root ()
  in
  (* Every completed span tree also feeds the continuous folded-stack
     profile — the single fold point for the query/batch/update ops. *)
  Option.iter Profile.record root;
  Window.observe window ~error
    ?trace:(if kept then Some trace.Trace.trace_id else None)
    duration_ms

let pattern_payload pattern =
  if Qlog.enabled () then Some (Json.Str (Pattern_io.to_string pattern)) else None

let batch_payload patterns =
  if Qlog.enabled () then
    Some (Json.Arr (List.map (fun q -> Json.Str (Pattern_io.to_string q)) patterns))
  else None

let update_payload updates =
  if Qlog.enabled () then Some (Json.Arr (List.map Update.to_json updates)) else None

let relation_digest relation = if Qlog.enabled () then Match_relation.digest relation else ""

(* The combined answer digest of a batch: MD5 over the per-answer
   digests in input order — replay recomputes the same fold, so one
   field verifies the whole batch. *)
let batch_digest relations =
  Digest.to_hex
    (Digest.string (String.concat "" (List.map Match_relation.digest relations)))

let evaluate_unlabelled ?(trace = Trace.ambient) t pattern =
  (* Flight recorder bookkeeping is always on (unlike profiles): snapshot
     the counter registry and the clock around the whole query. *)
  let rec_before = Metrics.counters_snapshot () in
  let rec_start = now_us () in
  Counter.incr m_queries;
  let fp = Pattern.fingerprint pattern in
  let trace_id = trace.Trace.trace_id in
  match
    profiled ~trace t ~root:"evaluate" ~attrs:[ ("query", fp) ] ~query:fp (fun () ->
        let relation, provenance, strategy, via_direct = evaluate_inner t pattern in
        differential_check t pattern relation provenance ~via_direct;
        Counter.incr (provenance_counter provenance);
        annotate "provenance" (provenance_name provenance);
        annotate_int "pairs" (Match_relation.total relation);
        ((relation, provenance, strategy), provenance))
  with
  | exception e ->
    let duration_ms = (now_us () -. rec_start) /. 1000.0 in
    let counters = Metrics.delta ~before:rec_before ~after:(Metrics.counters_snapshot ()) in
    Recorder.record ~trace_id ~query:fp ~strategy:"error" ~duration_ms ~counters ();
    observe_traced ~trace ~window:w_query ~op:"query" ~query:fp ~duration_ms ~error:true ();
    qlog_emit t ~kind:Qlog.Query ~query:fp ~strategy:"error" ~duration_ms ~counters ~pairs:0
      ~digest:"" ~trace_id ~error:(Printexc.to_string e) ?payload:(pattern_payload pattern) ();
    raise e
  | (relation, provenance, strategy), profile ->
    let duration_ms = (now_us () -. rec_start) /. 1000.0 in
    let counters = Metrics.delta ~before:rec_before ~after:(Metrics.counters_snapshot ()) in
    Recorder.record ~trace_id ~query:fp ~strategy ~duration_ms ~counters ();
    observe_traced ~trace ~window:w_query ~op:"query" ~query:fp ~duration_ms ~error:false
      ?root:(Option.map (fun p -> p.span) profile)
      ();
    qlog_emit t ~kind:Qlog.Query ~query:fp ~strategy ~duration_ms ~counters
      ~pairs:(Match_relation.total relation)
      ~digest:(relation_digest relation)
      ~trace_id ?payload:(pattern_payload pattern) ();
    Log.debug (fun m ->
        m "evaluate %s: %d pairs via %s" fp (Match_relation.total relation)
          (provenance_name provenance));
    { relation; total = Match_relation.is_total relation; provenance; profile }

(* Allocation attribution: while the memprof sampler is active, bytes
   allocated under each op class are charged to its label. *)
let evaluate ?trace t pattern =
  Alloc.with_label "query" (fun () -> evaluate_unlabelled ?trace t pattern)

(* ------------------------------------------------------------------ *)
(* Batched evaluation                                                   *)
(* ------------------------------------------------------------------ *)

(* One batch pins one snapshot and then:

   1. serves exact cache hits;
   2. dedupes the misses by fingerprint;
   3. extracts candidates for *all* remaining queries in a single
      labelled scan ({!Candidates.compute_batch}: label buckets shared
      across the batch — the [candidates.scans] saving);
   4. evaluates supersets first, storing each kernel in the cache, so a
      later batch member contained in an earlier one is answered by the
      containment machinery (seeded refinement, no scan at all).

   Answers are identical to per-query {!evaluate}: candidate sets are
   supersets of the planner's (which additionally prunes sinks), and the
   maximal kernel below any initial superset of it is the same
   fixpoint.

   [?domains] (default [EXPFINDER_DOMAINS] or 1) fans the candidate
   scan and each query's refinement across domains; every parallel
   region merges deterministically, so answers (and counter totals) are
   digest-equal to [~domains:1]. *)
let evaluate_batch_unlabelled ?(trace = Trace.ambient)
    ?(domains = Parallel.default_domains ()) t patterns =
  Counter.incr m_batches;
  let rec_before = Metrics.counters_snapshot () in
  let rec_start = now_us () in
  let snap = snapshot t in
  let sid = Snapshot.id snap in
  let arr = Array.of_list patterns in
  let n = Array.length arr in
  Counter.add m_batch_queries n;
  let label = Printf.sprintf "batch:%d" n in
  let results : (Match_relation.t * provenance) option array = Array.make n None in
  let empty_for pattern =
    Match_relation.create ~pattern_size:(Pattern.size pattern)
      ~graph_size:(Snapshot.node_count snap)
  in
  let run_batch () =
    profiled ~trace t ~root:"evaluate_batch"
      ~attrs:[ ("queries", string_of_int n) ]
      ~query:label
      (fun () ->
        (* 1. Exact cache hits. *)
        let hits = ref 0 in
        with_span "batch_cache" (fun () ->
            Array.iteri
              (fun i pattern ->
                match Cache.find t.cache pattern ~snapshot:sid with
                | Some relation ->
                  incr hits;
                  results.(i) <- Some (relation, From_cache)
                | None -> ())
              arr);
        annotate_int "cache_hits" !hits;
        (* 2. Dedupe misses by fingerprint; [reps] holds the first index
           of each distinct query left to evaluate. *)
        let seen = Hashtbl.create 16 in
        let reps = ref [] in
        Array.iteri
          (fun i pattern ->
            if results.(i) = None then begin
              let fp = Pattern.fingerprint pattern in
              if not (Hashtbl.mem seen fp) then begin
                Hashtbl.add seen fp i;
                reps := i :: !reps
              end
            end)
          arr;
        let reps = Array.of_list (List.rev !reps) in
        (* 3. One shared candidate scan for every distinct miss. *)
        annotate_int "domains" domains;
        let initials =
          with_span "batch_candidates" (fun () ->
              Candidates.compute_batch ~domains (Array.map (fun i -> arr.(i)) reps) snap)
        in
        (* 4. Supersets first: [contains q1 q2] is transitive, so the
           count of batch members a query contains increases strictly
           along the strict containment order — descending count is a
           topological order of the containment DAG. *)
        let contained_count r =
          Array.fold_left
            (fun acc r' ->
              if r <> r' && Pattern_analysis.contains arr.(r') arr.(r) then acc + 1
              else acc)
            0 reps
        in
        let order = Array.init (Array.length reps) Fun.id in
        let scores = Array.map contained_count reps in
        Array.sort (fun a b -> compare scores.(b) scores.(a)) order;
        let containment_hits = ref 0 in
        Array.iter
          (fun j ->
            let i = reps.(j) in
            let pattern = arr.(i) in
            let relation, provenance =
              if Pattern_analysis.statically_empty pattern then
                (empty_for pattern, Direct)
              else
                match from_containment ~domains t pattern ~snap with
                | Some relation ->
                  Counter.incr m_containment;
                  incr containment_hits;
                  (relation, From_cache)
                | None ->
                  let initial = initials.(j) in
                  if not (Match_relation.is_total initial) then
                    (* Some pattern node has no candidate at all: the
                       kernel is empty (the planner's early exit). *)
                    (empty_for pattern, Direct)
                  else
                    let relation =
                      with_span "batch_refine"
                        ~attrs:[ ("query", Pattern.fingerprint pattern) ]
                        (fun () ->
                          if Pattern.is_simulation_pattern pattern then
                            Simulation.run_constrained ~domains pattern snap
                              ~initial ~mutable_set:None
                          else
                            Bounded_sim.run_constrained ~domains pattern snap
                              ~initial ~mutable_set:None)
                    in
                    (relation, Direct)
            in
            Cache.store t.cache pattern ~snapshot:sid relation;
            differential_check t pattern relation provenance ~via_direct:false;
            Counter.incr (provenance_counter provenance);
            results.(i) <- Some (relation, provenance))
          order;
        annotate_int "containment_hits" !containment_hits;
        (* 5. Duplicates pick up their representative's relation. *)
        Array.iteri
          (fun i pattern ->
            if results.(i) = None then begin
              let rep = Hashtbl.find seen (Pattern.fingerprint pattern) in
              match results.(rep) with
              | Some (relation, _) ->
                Counter.incr m_from_cache;
                results.(i) <- Some (Match_relation.copy relation, From_cache)
              | None -> assert false
            end)
          arr;
        ((), Direct))
  in
  match run_batch () with
  | exception e ->
    let duration_ms = (now_us () -. rec_start) /. 1000.0 in
    let counters = Metrics.delta ~before:rec_before ~after:(Metrics.counters_snapshot ()) in
    Recorder.record ~trace_id:trace.Trace.trace_id ~query:label ~strategy:"batch/error"
      ~duration_ms ~counters ();
    observe_traced ~trace ~window:w_batch ~op:"batch" ~query:label ~duration_ms ~error:true ();
    qlog_emit t ~kind:Qlog.Batch ~query:label ~strategy:"batch/error" ~duration_ms ~counters
      ~pairs:0 ~digest:"" ~trace_id:trace.Trace.trace_id ~error:(Printexc.to_string e)
      ?payload:(batch_payload patterns) ();
    raise e
  | (), batch_profile ->
    let duration_ms = (now_us () -. rec_start) /. 1000.0 in
    let counters = Metrics.delta ~before:rec_before ~after:(Metrics.counters_snapshot ()) in
    Recorder.record ~trace_id:trace.Trace.trace_id ~query:label ~strategy:"batch" ~duration_ms
      ~counters ();
    observe_traced ~trace ~window:w_batch ~op:"batch" ~query:label ~duration_ms ~error:false
      ?root:(Option.map (fun p -> p.span) batch_profile)
      ();
    let relations =
      List.mapi
        (fun i _ -> match results.(i) with Some (r, _) -> r | None -> assert false)
        patterns
    in
    qlog_emit t ~kind:Qlog.Batch ~query:label ~strategy:"batch" ~duration_ms ~counters
      ~pairs:(List.fold_left (fun acc r -> acc + Match_relation.total r) 0 relations)
      ~digest:(if Qlog.enabled () then batch_digest relations else "")
      ~trace_id:trace.Trace.trace_id ?payload:(batch_payload patterns) ();
    Log.debug (fun m -> m "evaluate_batch: %d queries on %a" n Snapshot.pp_id snap);
    List.mapi
      (fun i _ ->
        match results.(i) with
        | Some (relation, provenance) ->
          (* Per-answer profiles are not split out of the shared batch run;
             the whole-batch profile is available via [last_profile]. *)
          { relation; total = Match_relation.is_total relation; provenance; profile = None }
        | None -> assert false)
      patterns

let evaluate_batch ?trace ?domains t patterns =
  Alloc.with_label "batch" (fun () ->
      evaluate_batch_unlabelled ?trace ?domains t patterns)

let result_graph t pattern =
  let answer = evaluate t pattern in
  let relation =
    if answer.total then answer.relation
    else
      Match_relation.create ~pattern_size:(Pattern.size pattern)
        ~graph_size:(Digraph.node_count t.g)
  in
  Result_graph.build pattern (snapshot t) relation

let top_k t pattern ~k =
  Counter.incr m_topk;
  let fp = Pattern.fingerprint pattern in
  fst
  @@ profiled t ~root:"topk"
    ~attrs:[ ("query", fp); ("k", string_of_int k) ]
    ~query:fp
    (fun () ->
      let answer = evaluate t pattern in
      if not answer.total then ([], answer.provenance)
      else begin
        let snap = snapshot t in
        let gr =
          with_span "result_graph" (fun () ->
              Result_graph.build pattern snap answer.relation)
        in
        let output_matches = Match_relation.matches answer.relation (Pattern.output pattern) in
        let experts =
          with_span "rank"
            ~attrs:[ ("output_matches", string_of_int (List.length output_matches)) ]
            (fun () ->
              Ranking.top_k gr ~output_matches ~k
              |> List.map (fun (node, rank) ->
                     let name =
                       match Attrs.find (Snapshot.attrs snap node) "name" with
                       | Some (Attr.String s) -> Some s
                       | Some _ | None -> None
                     in
                     { node; name; rank }))
        in
        (experts, answer.provenance)
      end)

let last_profile t = Atomic.get t.last_profile

let pp_profile ppf p =
  Format.fprintf ppf "profile: query %s, answered via %s@." p.query
    (provenance_name p.provenance);
  Span.pp_tree ppf p.span;
  match p.counters with
  | [] -> ()
  | counters ->
    Format.fprintf ppf "counters:@.";
    List.iter (fun (name, v) -> Format.fprintf ppf "  %-38s %d@." name v) counters

let profile_json (p : profile) =
  Json.Obj
    [
      ("query", Json.Str p.query);
      ("provenance", Json.Str (provenance_name p.provenance));
      ("trace_id", Json.Str p.trace_id);
      ("span", Span.to_json p.span);
      ( "counters",
        Json.Obj (List.map (fun (name, v) -> (name, Json.Int v)) p.counters) );
      (* The flight-recorder tail at serialization time: the profile of a
         slow query ships with the queries that led up to it. *)
      ("recorder", Recorder.to_json ());
    ]

let enable_ball_index ?(radius = 3) t =
  let idx = Ball_index.build (snapshot t) ~radius in
  with_maint t (fun () ->
      t.ball_radius <- radius;
      t.ball_index <- Some idx)

let disable_ball_index t = with_maint t (fun () -> t.ball_index <- None)

let enable_compression ?atoms t =
  let inc = Inc_compress.create ?atoms t.g in
  with_maint t (fun () -> t.compressed <- Some inc)

let disable_compression t = with_maint t (fun () -> t.compressed <- None)

let compression t =
  with_maint t (fun () -> Option.map Inc_compress.current t.compressed)

let register t pattern =
  let fp = Pattern.fingerprint pattern in
  if not (with_maint t (fun () -> List.mem_assoc fp t.registered)) then begin
    (* Evaluate the query outside the lock; publish under it. *)
    let inc = Incremental.create pattern t.g in
    with_maint t (fun () ->
        if not (List.mem_assoc fp t.registered) then
          t.registered <- t.registered @ [ (fp, inc) ])
  end

let unregister t pattern =
  let fp = Pattern.fingerprint pattern in
  with_maint t (fun () ->
      t.registered <- List.filter (fun (fp', _) -> fp' <> fp) t.registered)

let registered t =
  with_maint t (fun () ->
      List.map (fun (_, inc) -> Incremental.pattern inc) t.registered)

(* Beyond this fraction of the edge count, rebuilding adjacency from the
   digraph beats patching it (and [Insert_node] changes the node table,
   which the COW advance shares by design). *)
let cow_delta_limit snap = 16 + (Snapshot.edge_count snap / 4)

(* Runs with [t.writer] held: one update batch at a time mutates the
   digraph and publishes the next epoch; concurrent readers keep serving
   their pinned snapshots throughout. *)
let apply_updates_locked t updates =
  Counter.incr m_update_batches;
  (* Pin (and, if the digraph was mutated externally, resync) the
     pre-update epoch before applying ΔG: readers holding it keep a
     coherent view, and the COW advance patches it. *)
  let before = snapshot_locked t in
  let t_apply = now_us () in
  let effective = Update.apply_batch_filtered t.g updates in
  Counter.add m_updates_effective (List.length effective);
  if effective <> [] then begin
    let inserts_node =
      List.exists (function Update.Insert_node _ -> true | _ -> false) effective
    in
    let next =
      if inserts_node then None
      else begin
        let added, removed = Update.net_edge_changes t.g effective in
        if List.length added + List.length removed > cow_delta_limit before then None
        else
          Some
            (with_span "snapshot.advance" (fun () ->
                 Snapshot.advance before ~version:(Digraph.version t.g) ~added ~removed))
      end
    in
    (* The epoch publication point: the new snapshot is complete before
       this store, so any reader that picks it up sees a coherent
       post-update view. *)
    (match next with
    | Some snap ->
      Counter.incr m_snapshot_advances;
      Atomic.set t.snap snap
    | None ->
      Counter.incr m_snapshot_rebuilds;
      Atomic.set t.snap (Snapshot.of_digraph t.g));
    (* Publication lag: how long readers were pinned to the stale
       snapshot, from ΔG application to the epoch store above. *)
    Histogram.observe t.cm.h_publish_lag ((now_us () -. t_apply) /. 1000.0);
    Gauge.set t.cm.g_staleness 0
  end;
  (* Results for old epochs are unreachable (keys include the identity),
     but drop them eagerly to keep the cache useful. *)
  Cache.clear t.cache;
  let published = Atomic.get t.snap in
  (* Sync the maintained structures under the maintenance lock; readers
     mid-fast-path are waited for, later readers skip the fast path
     until the lock frees. *)
  with_maint t (fun () ->
      Option.iter
        (fun inc ->
          ignore
            (Inc_compress.sync inc ~snapshot:published
               ~effective:(List.length effective) effective
              : Inc_compress.report))
        t.compressed;
      Log.debug (fun m ->
          m "apply_updates: %d effective -> %a, %d registered queries, compression %s"
            (List.length effective) Snapshot.pp_id published (List.length t.registered)
            (if t.compressed = None then "off" else "maintained"));
      ( List.map (fun (_, inc) -> Incremental.sync_applied inc ~effective) t.registered,
        List.length effective ))

let apply_updates_inner t updates =
  Mutex.lock t.writer;
  match apply_updates_locked t updates with
  | r ->
    Mutex.unlock t.writer;
    r
  | exception e ->
    Mutex.unlock t.writer;
    raise e

let apply_updates_unlabelled ?(trace = Trace.ambient) t updates =
  let rec_before = Metrics.counters_snapshot () in
  let rec_start = now_us () in
  (* The replayable payload is the *input* batch: no-ops are dropped at
     apply time, so replay reproduces the same filtering. *)
  let payload = update_payload updates in
  match
    Trace.collect trace
      ~attrs:[ ("updates", string_of_int (List.length updates)) ]
      "apply_updates"
      (fun () -> apply_updates_inner t updates)
  with
  | exception e ->
    let duration_ms = (now_us () -. rec_start) /. 1000.0 in
    let counters = Metrics.delta ~before:rec_before ~after:(Metrics.counters_snapshot ()) in
    observe_traced ~trace ~window:w_update ~op:"update" ~query:"update" ~duration_ms
      ~error:true ();
    qlog_emit t ~kind:Qlog.Update ~query:"update" ~strategy:"update/error" ~duration_ms
      ~counters ~pairs:0 ~digest:"" ~trace_id:trace.Trace.trace_id
      ~error:(Printexc.to_string e) ?payload ();
    raise e
  | (reports, effective_n), root ->
    let duration_ms = (now_us () -. rec_start) /. 1000.0 in
    let counters = Metrics.delta ~before:rec_before ~after:(Metrics.counters_snapshot ()) in
    observe_traced ~trace ~window:w_update ~op:"update" ~query:"update" ~duration_ms
      ~error:false ?root ();
    qlog_emit t ~kind:Qlog.Update ~query:"update" ~strategy:"update" ~duration_ms ~counters
      ~pairs:effective_n ~digest:"" ~trace_id:trace.Trace.trace_id ?payload ();
    reports

let apply_updates ?trace t updates =
  Alloc.with_label "update" (fun () -> apply_updates_unlabelled ?trace t updates)

let cache_stats t = (Cache.hits t.cache, Cache.misses t.cache)

let cache_counters t = (Cache.hits t.cache, Cache.misses t.cache, Cache.evictions t.cache)

let explain t pattern = Planner.explain pattern (Planner.plan pattern (snapshot t))

(* EXPLAIN ANALYZE bypasses the cache/compression/index fast paths on
   purpose: the point is to execute the plan and confront its estimates
   with the candidate sets it actually materialised. *)
let explain_analyze t pattern =
  let snap = snapshot t in
  let _relation, plan = Planner.run_with_plan pattern snap in
  Planner.explain_analyze pattern plan
