open Expfinder_graph
open Expfinder_pattern
open Expfinder_core
open Expfinder_incremental
open Expfinder_compression
open Expfinder_telemetry

(** The ExpFinder query engine (§II, Fig. 2).

    One engine owns one data graph and coordinates the four modules:

    + on a query, return the cached M(Q,G) when fresh;
    + otherwise evaluate on the maintained compressed graph when one is
      enabled and supports the query (expanding the result);
    + otherwise, when the cache holds the total kernel of a {e superset}
      query ({!Expfinder_pattern.Pattern_analysis.contains}), filter it
      by the incoming pattern's specs and refine below it instead of
      scanning the graph (containment reuse, counted by
      [engine.containment_hits], reported as {!From_cache});
    + otherwise evaluate directly (simulation engine for bound-1
      patterns, bounded simulation otherwise);
    + rank the output node's matches and select top-K experts;
    + registered queries are maintained incrementally as updates arrive,
      and the compressed graph is maintained alongside.

    All updates must flow through {!apply_updates} so that the cache,
    the compressed graph and the registered queries stay consistent.

    With [EXPFINDER_CHECK=1] in the environment (or
    {!Expfinder_core.Verify.set_differential}), every answer that did
    not come straight from the direct path is re-evaluated directly and
    compared, and all served relations are run through the
    {!Expfinder_core.Verify} checker; a divergence raises [Failure].

    Serving-path observability: every {!evaluate}, {!evaluate_batch}
    and {!apply_updates} call feeds the always-on flight recorder and
    the per-operation-class sliding windows
    ({!Expfinder_telemetry.Window} classes [query]/[batch]/[update],
    with errors flagged), and — when a query-log sink is configured
    ({!Expfinder_telemetry.Qlog}, [EXPFINDER_QLOG]) — appends one
    schema-versioned JSONL event carrying the snapshot identity,
    strategy, duration, counter deltas, answer size and digest, and a
    replayable payload consumed by [expfinder replay]. *)

type t

(** Where an answer came from (exposed for tests and experiments). *)
type provenance = From_cache | From_compressed | From_index | Direct

(** Per-query profile, populated when telemetry is enabled
    ({!Expfinder_telemetry.set_enabled}): the stage tree (plan →
    candidates → refine → rank for direct evaluation), the provenance,
    and the per-query deltas of every registered counter (candidate
    sizes, worklist pops, ball expansions, cache hits, compression
    expand cost, ...). *)
type profile = {
  query : string;  (** the pattern fingerprint *)
  provenance : provenance;
  span : Span.t;  (** the stage tree; export with {!Span.to_chrome_json} *)
  counters : (string * int) list;  (** nonzero per-query counter deltas *)
  trace_id : string;
      (** the request's trace id ([""] when it ran under the ambient
          context) *)
}

type answer = {
  relation : Match_relation.t;  (** the kernel relation *)
  total : bool;  (** whether M(Q,G) is nonempty (kernel is total) *)
  provenance : provenance;
  profile : profile option;
      (** present when telemetry is enabled and this call owned the
          trace (i.e. it was not nested under another traced call) *)
}

type expert = {
  node : int;
  name : string option;  (** the node's ["name"] attribute, if any *)
  rank : Ranking.rank;
}

val create : ?cache_capacity:int -> Digraph.t -> t
(** The engine snapshots the graph; mutate it only via
    {!apply_updates}. *)

val graph : t -> Digraph.t

val snapshot : t -> Snapshot.t
(** The engine's current-epoch snapshot, memoised: rebuilt only when the
    digraph's version disagrees (i.e. it was mutated outside
    {!apply_updates}, the single place that check lives).  All
    evaluation paths read this snapshot — queries in flight on an older
    epoch keep their pinned value untouched.

    The snapshot lives in an atomic epoch-publication cell: readers pin
    one coherent epoch with a single atomic load and never block on a
    concurrent {!apply_updates} (they serve the pre-update epoch until
    the writer publishes the next one).  The rebuild-on-external-
    mutation path is serialized with the writer. *)

val evaluate : ?trace:Trace.ctx -> t -> Pattern.t -> answer
(** Cache → compressed → cached superset (containment) → ball index →
    direct, caching the result.

    [?trace] is the request's explicit trace context (default
    {!Expfinder_telemetry.Trace.ambient}): its id is stamped into the
    flight-recorder event, the qlog event and the per-query profile,
    the finished request is offered to the
    {!Expfinder_telemetry.Tracestore} (errors and p99-exceeding
    requests always kept, the rest head-sampled), and — when admitted —
    the id is advertised as the latency bucket's histogram exemplar.
    The same contract applies to {!evaluate_batch} and
    {!apply_updates}. *)

val evaluate_batch :
  ?trace:Trace.ctx -> ?domains:int -> t -> Pattern.t list -> answer list
(** Evaluate a batch of queries against {e one} pinned snapshot.
    Answers equal per-query {!evaluate} (same relations, same [total]),
    but the batch: serves exact cache hits first, dedupes repeated
    fingerprints, extracts candidates for all remaining queries in a
    single labelled scan ({!Expfinder_core.Candidates.compute_batch} —
    compare [candidates.scans] against the sequential loop), and
    evaluates containment-supersets first so contained batch members are
    answered by seeded refinement without any scan.  Answers are
    returned in input order; [profile] is [None] on each answer — the
    whole batch's profile (root span ["evaluate_batch"]) is available
    via {!last_profile}.

    [?domains] (default [EXPFINDER_DOMAINS], or 1 — the sequential
    oracle) fans the shared candidate scan and each query's refinement
    across that many domains ({!Expfinder_core.Candidates.compute_batch},
    {!Expfinder_core.Simulation.run_constrained},
    {!Expfinder_core.Bounded_sim.run_constrained}).  Every parallel
    region partitions its work with a deterministic merge, so answers
    {e and} counter totals are digest-equal to [~domains:1]. *)

val top_k : t -> Pattern.t -> k:int -> expert list
(** Evaluate, build the result graph and rank the output node's matches
    (§II Results Ranking).  Empty when M(Q,G) is empty. *)

val result_graph : t -> Pattern.t -> Result_graph.t
(** The result graph of the query (for display / export). *)

val enable_ball_index : ?radius:int -> t -> unit
(** Opt into the precomputed distance index (default radius 3): bounded
    queries whose bounds fit the radius are answered with indexed ball
    scans instead of BFS.  The index is rebuilt lazily after updates. *)

val disable_ball_index : t -> unit

val enable_compression : ?atoms:Predicate.atom list -> t -> unit
(** Build and maintain a compressed graph with the given atom universe
    (replacing any previous one). *)

val disable_compression : t -> unit

val compression : t -> Compress.t option
(** The current compressed graph, when enabled. *)

val register : t -> Pattern.t -> unit
(** Mark a query as frequently issued: its result is kept incrementally
    maintained across updates (§II Incremental Computation Module). *)

val unregister : t -> Pattern.t -> unit

val registered : t -> Pattern.t list

val apply_updates : ?trace:Trace.ctx -> t -> Update.t list -> Incremental.report list
(** Apply ΔG: updates the graph, advances the snapshot to the next
    epoch, invalidates the cache, maintains the compressed graph and
    every registered query; returns one maintenance report per
    registered query (in registration order).

    The epoch advance is copy-on-write for small pure-edge batches: the
    next snapshot is produced by patching the pinned one with the net
    edge delta ({!Expfinder_graph.Snapshot.advance}, counted by
    [engine.snapshot_advances]), sharing the node tables physically.
    Batches that insert nodes, or whose net delta exceeds a quarter of
    the edge count, fall back to a full rebuild
    ([engine.snapshot_rebuilds]). *)

val last_profile : t -> profile option
(** The profile of the most recent traced query ({!evaluate} or
    {!top_k}), when telemetry is enabled.  The CLI's [--profile] and
    [--trace] read it after the query returns. *)

val pp_profile : Format.formatter -> profile -> unit
(** Stage tree plus per-query counters, human-readable. *)

val profile_json : profile -> Json.t
(** The profile as a [{query; provenance; trace_id; span; counters;
    recorder}]
    object (the structured-report serialization of a per-query profile).
    [recorder] is the flight-recorder ring at serialization time, so a
    slow-query profile ships with the requests that led up to it. *)

val cache_stats : t -> int * int
(** (hits, misses).  Kept for compatibility; prefer {!cache_counters},
    which also reports evictions.  Both read the same telemetry
    counters, so they can never disagree. *)

val cache_counters : t -> int * int * int
(** (hits, misses, evictions) from the cache's telemetry counters. *)

val explain : t -> Pattern.t -> string
(** The query plan direct evaluation would use (§III "optimized query
    plans"): candidate order with selectivity estimates, pruning, and
    the chosen refinement strategy. *)

val explain_analyze : t -> Pattern.t -> string
(** {!explain} plus a per-node estimated-vs-actual table.  Plans and
    {e executes} the query directly (deliberately bypassing the
    cache/compression/index fast paths, and without storing the result),
    so the estimates can be confronted with the candidate sets actually
    materialised; misestimated nodes (>4x off either way) are flagged
    and counted by [planner.misestimate]. *)
