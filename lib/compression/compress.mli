open Expfinder_graph
open Expfinder_pattern
open Expfinder_core

(** Query-preserving graph compression (§II Graph Compression Module;
    Fan et al., SIGMOD 2012).

    Nodes that are bisimilar — same label, same satisfaction of the
    declared predicate atoms, and matching successor behaviour at every
    depth — have identical (bounded-)simulation membership for every
    pattern whose conditions draw from those atoms.  Merging each
    equivalence class into one node yields a compressed graph Gc that
    the ordinary query engine evaluates directly; M(Q,G) is recovered by
    expanding each matched class into its members (linear time).

    The atom universe fixes the query class the compression preserves:
    a pattern is {!supports}-ed iff its label requirements are concrete
    or wildcard as usual and every predicate atom appears in the
    universe.  An empty universe supports exactly the label-only
    patterns. *)

type t

val compress : ?atoms:Predicate.atom list -> Snapshot.t -> t
(** Compress a snapshot.  [atoms] is the predicate-atom universe
    (default: none). *)

val signature_key : Predicate.atom list -> Snapshot.t -> int -> int
(** The partition key: label plus one satisfaction bit per atom.  Nodes
    merged by any partition used with {!of_partition} must agree on it. *)

val of_partition : ?atoms:Predicate.atom list -> Snapshot.t -> int array -> t
(** Build the compressed graph from an externally computed partition
    (used by incremental maintenance).  The partition must respect
    labels and atom signatures. *)

val atoms : t -> Predicate.atom list

val original : t -> Snapshot.t
(** The snapshot that was compressed. *)

val compressed : t -> Snapshot.t
(** Gc as an ordinary snapshot — directly queryable. *)

val block_count : t -> int

val block_of : t -> int -> int
(** Block (= Gc node) of an original node. *)

val partition : t -> int array
(** Fresh copy of the node -> block mapping (for persistence). *)

val members : t -> int -> int list
(** Original nodes of a block. *)

val node_ratio : t -> float
(** [1 - |Vc| / |V|]; the paper reports 57% average reduction. *)

val edge_ratio : t -> float

val supports : t -> Pattern.t -> bool
(** Is every predicate atom of the pattern inside the universe? *)

val evaluate_compressed : t -> Pattern.t -> Match_relation.t
(** Kernel over Gc's nodes.  @raise Invalid_argument when the pattern is
    not supported. *)

val expand : t -> Match_relation.t -> Match_relation.t
(** Linear-time post-processing: blocks to members. *)

val evaluate : t -> Pattern.t -> Match_relation.t
(** [expand (evaluate_compressed ...)]: the kernel over original
    nodes. *)
