open Expfinder_graph
open Expfinder_pattern
open Expfinder_core
open Expfinder_telemetry

let m_builds = Metrics.counter "compress.builds"

let m_evaluations = Metrics.counter "compress.evaluations"

let m_expanded_pairs = Metrics.counter "compress.expanded_pairs"

type t = {
  atoms : Predicate.atom list;
  original : Snapshot.t;
  compressed : Snapshot.t;
  block_of : int array;
  members : int list array;
}

(* Signature of a node w.r.t. the atom universe: label + one bit per
   atom.  Nodes merged by the bisimulation agree on all of it. *)
let signature_key atoms g v =
  let label = Label.to_int (Snapshot.label g v) in
  let attrs = Snapshot.attrs g v in
  let bits =
    List.fold_left
      (fun acc atom ->
        (2 * acc) + if Predicate.eval (Predicate.of_atoms [ atom ]) attrs then 1 else 0)
      0 atoms
  in
  (label * 1048576) + bits

let of_partition ?(atoms = []) g block_of =
  let nblocks = Bisimulation.block_count block_of in
  let members = Array.make (max nblocks 1) [] in
  for v = Snapshot.node_count g - 1 downto 0 do
    members.(block_of.(v)) <- v :: members.(block_of.(v))
  done;
  let gc = Digraph.create ~capacity:nblocks () in
  for b = 0 to nblocks - 1 do
    (* All members share label and atom signature; use the first as the
       representative for candidate evaluation. *)
    match members.(b) with
    | [] -> ignore (Digraph.add_node gc (Label.of_string "") : int)
    | rep :: _ -> ignore (Digraph.add_node gc ~attrs:(Snapshot.attrs g rep) (Snapshot.label g rep) : int)
  done;
  (* Within-block edges become self-loops: by stability every member of
     such a block can step to another member of the same class. *)
  Snapshot.iter_edges g (fun u v ->
      ignore (Digraph.add_edge gc block_of.(u) block_of.(v) : bool));
  { atoms; original = g; compressed = Snapshot.of_digraph gc; block_of; members }

let compress ?(atoms = []) g =
  Counter.incr m_builds;
  with_span "compress.build" (fun () ->
      let key = signature_key atoms g in
      let block_of = Bisimulation.compute (Snapshot.csr g) ~key in
      of_partition ~atoms g block_of)

let atoms t = t.atoms

let original t = t.original

let compressed t = t.compressed

let block_count t = Array.length t.members

let block_of t v =
  if v < 0 || v >= Snapshot.node_count t.original then invalid_arg "Compress.block_of";
  t.block_of.(v)

let partition t = Array.copy t.block_of

let members t b =
  if b < 0 || b >= block_count t then invalid_arg "Compress.members";
  t.members.(b)

let node_ratio t =
  let n = Snapshot.node_count t.original in
  if n = 0 then 0.0 else 1.0 -. (float_of_int (block_count t) /. float_of_int n)

let edge_ratio t =
  let m = Snapshot.edge_count t.original in
  if m = 0 then 0.0
  else 1.0 -. (float_of_int (Snapshot.edge_count t.compressed) /. float_of_int m)

let supports t pattern =
  let universe = t.atoms in
  let atom_in_universe a =
    List.exists
      (fun a' ->
        String.equal a.Predicate.attr a'.Predicate.attr
        && a.Predicate.op = a'.Predicate.op
        && Attr.equal a.Predicate.value a'.Predicate.value)
      universe
  in
  let ok = ref true in
  for u = 0 to Pattern.size pattern - 1 do
    let spec = Pattern.node_spec pattern u in
    List.iter
      (fun a -> if not (atom_in_universe a) then ok := false)
      (Predicate.atoms spec.Pattern.pred)
  done;
  !ok

let evaluate_compressed t pattern =
  if not (supports t pattern) then
    invalid_arg "Compress.evaluate_compressed: pattern conditions outside the atom universe";
  if Pattern.is_simulation_pattern pattern then Simulation.run pattern t.compressed
  else Bounded_sim.run pattern t.compressed

let expand t mc =
  with_span "compress.expand" (fun () ->
      let m =
        Match_relation.create
          ~pattern_size:(Match_relation.pattern_size mc)
          ~graph_size:(Snapshot.node_count t.original)
      in
      for u = 0 to Match_relation.pattern_size mc - 1 do
        List.iter
          (fun b -> List.iter (fun v -> Match_relation.add m u v) t.members.(b))
          (Match_relation.matches mc u)
      done;
      Counter.add m_expanded_pairs (Match_relation.total m);
      annotate_int "pairs" (Match_relation.total m);
      m)

let evaluate t pattern =
  Counter.incr m_evaluations;
  with_span "compress.evaluate" (fun () ->
      let mc = with_span "compress.kernel" (fun () -> evaluate_compressed t pattern) in
      expand t mc)
