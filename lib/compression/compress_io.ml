open Expfinder_graph
open Expfinder_pattern

let header = "expfinder-compressed 1"

let to_string compressed =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  let partition = Compress.partition compressed in
  Buffer.add_string buf (Printf.sprintf "nodes %d\n" (Array.length partition));
  List.iter
    (fun atom ->
      Buffer.add_string buf (Printf.sprintf "atom %s\n" (Pattern_io.condition_to_string atom)))
    (Compress.atoms compressed);
  Array.iteri
    (fun i b ->
      if i mod 64 = 0 then
        Buffer.add_string buf (if i = 0 then "blocks" else "\nblocks");
      Buffer.add_string buf (" " ^ string_of_int b))
    partition;
  if Array.length partition > 0 then Buffer.add_char buf '\n';
  Buffer.contents buf

let save compressed path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string compressed))

let of_string g text =
  let lines = String.split_on_char '\n' text in
  let err lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  let expected = ref (-1) in
  let atoms = ref [] in
  let blocks = ref [] in
  let count = ref 0 in
  let rec loop lineno seen_header = function
    | [] ->
      if not seen_header then Error "empty input"
      else if !expected < 0 then Error "missing nodes declaration"
      else if !count <> !expected then
        Error (Printf.sprintf "expected %d blocks, got %d" !expected !count)
      else if !expected <> Snapshot.node_count g then
        Error
          (Printf.sprintf "compressed file is for a %d-node graph, snapshot has %d" !expected
             (Snapshot.node_count g))
      else begin
        let partition = Array.make (max !expected 1) 0 in
        List.iteri (fun i b -> partition.(!expected - 1 - i) <- b) !blocks;
        let atoms = List.rev !atoms in
        (* Query preservation needs a stable, key-respecting partition;
           never trust a file. *)
        if not (Bisimulation.is_stable (Snapshot.csr g) ~key:(Compress.signature_key atoms g) partition)
        then Error "stored partition is not a bisimulation of this graph"
        else Ok (Compress.of_partition ~atoms g partition)
      end
    | line :: rest -> (
      let line = String.trim line in
      if line = "" || line.[0] = '#' then loop (lineno + 1) seen_header rest
      else if not seen_header then
        if line = header then loop (lineno + 1) true rest
        else err lineno (Printf.sprintf "expected header %S" header)
      else
        match String.split_on_char ' ' line with
        | [ "nodes"; n ] -> (
          match int_of_string_opt n with
          | Some n when n >= 0 ->
            expected := n;
            loop (lineno + 1) seen_header rest
          | _ -> err lineno (Printf.sprintf "bad node count %S" n))
        | [ "atom"; token ] -> (
          match Pattern_io.condition_of_string token with
          | Ok atom ->
            atoms := atom :: !atoms;
            loop (lineno + 1) seen_header rest
          | Error e -> err lineno e)
        | "blocks" :: values -> (
          let rec push = function
            | [] -> loop (lineno + 1) seen_header rest
            | "" :: more -> push more
            | v :: more -> (
              match int_of_string_opt v with
              | Some b when b >= 0 ->
                blocks := b :: !blocks;
                incr count;
                push more
              | _ -> err lineno (Printf.sprintf "bad block id %S" v))
          in
          push values)
        | keyword :: _ -> err lineno (Printf.sprintf "unknown record %S" keyword)
        | [] -> loop (lineno + 1) seen_header rest)
  in
  loop 1 false lines

let load g path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string g text
  | exception Sys_error e -> Error e
