open Expfinder_graph
open Expfinder_pattern
open Expfinder_incremental

(** Incremental maintenance of the compressed graph.

    On ΔG, only the ancestors of the touched edge sources can change
    equivalence class (bisimilarity, like simulation membership, is a
    property of a node's descendant subgraph).  The maintained partition
    re-keys and re-refines just that affected area against the frozen
    remainder ({!Bisimulation.refine_local}), then rebuilds Gc from the
    partition.

    The maintained partition is always a valid bisimulation — hence Gc
    stays query-preserving — but may be finer than the coarsest one
    (area nodes are not re-merged into frozen blocks), so compression
    quality can drift below the from-scratch optimum; {!fresh_block_count}
    measures the gap, and experiment EXP-C3 tracks it. *)

type t

type report = {
  effective : int;  (** updates that changed the graph *)
  area : int;  (** affected-area size *)
  blocks_before : int;
  blocks_after : int;
}

val create : ?atoms:Predicate.atom list -> Digraph.t -> t
(** Compress from scratch and start tracking. *)

val current : t -> Compress.t
(** The maintained compressed graph. *)

val snapshot : t -> Snapshot.t
(** The tracked source snapshot; its identity must match the engine's
    current epoch for {!sync}-based maintenance to be coherent. *)

val apply_updates : t -> Digraph.t -> Update.t list -> report
(** Apply ΔG and maintain.  @raise Invalid_argument when the digraph's
    identity [(graph_id, version)] differs from the tracked snapshot's
    (i.e. it was mutated behind the module's back, or it is a different
    graph altogether). *)

val sync : t -> snapshot:Snapshot.t -> effective:int -> Update.t list -> report
(** Maintenance against an externally applied ΔG, landing on the given
    post-update snapshot (see {!Expfinder_incremental.Incremental.sync}). *)

val rebuild : t -> Digraph.t -> unit
(** From-scratch recompression (the baseline, also restores coarsest-
    partition optimality). *)

val fresh_block_count : t -> int
(** Blocks of a from-scratch compression of the current graph (for
    measuring maintenance-quality drift; costs a full recompute). *)
