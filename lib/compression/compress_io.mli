open Expfinder_graph

(** Persistence of compressed graphs (§II: compressed graphs are part of
    the system's file-backed graph storage).

    A compressed graph is determined by its original graph, its node
    partition and its atom universe; the file stores the latter two (the
    original graph travels separately in the {!Graph_io} format):

    {v
    expfinder-compressed 1
    nodes <n>
    atom <condition>           (zero or more, pattern-file syntax)
    blocks <b0> <b1> ...       (node blocks in id order, 64 per line)
    v} *)

val to_string : Compress.t -> string

val save : Compress.t -> string -> unit

val of_string : Snapshot.t -> string -> (Compress.t, string) result
(** Rebuild against the original snapshot; fails when the stored node
    count does not match. *)

val load : Snapshot.t -> string -> (Compress.t, string) result
