open Expfinder_graph
open Expfinder_pattern
open Expfinder_incremental

type t = {
  atoms : Predicate.atom list;
  mutable snap : Snapshot.t;
  mutable partition : int array;
  mutable compress : Compress.t;
}

type report = {
  effective : int;
  area : int;
  blocks_before : int;
  blocks_after : int;
}

let key_of = Compress.signature_key

let create ?(atoms = []) g =
  let snap = Snapshot.of_digraph g in
  let partition = Bisimulation.compute (Snapshot.csr snap) ~key:(key_of atoms snap) in
  { atoms; snap; partition; compress = Compress.of_partition ~atoms snap partition }

let current t = t.compress

let snapshot t = t.snap

let rebuild t g =
  t.snap <- Snapshot.of_digraph g;
  t.partition <- Bisimulation.compute (Snapshot.csr t.snap) ~key:(key_of t.atoms t.snap);
  t.compress <- Compress.of_partition ~atoms:t.atoms t.snap t.partition

let sync t ~snapshot ~effective updates =
  let old_snap = t.snap in
  let old_n = Snapshot.node_count old_snap in
  let blocks_before = Bisimulation.block_count t.partition in
  let new_n = Snapshot.node_count snapshot in
  let seeds = Update.touched_sources updates in
  let area = Bitset.create new_n in
  let old_seeds = List.filter (fun v -> v < old_n) seeds in
  if old_seeds <> [] then
    Traversal.bfs_rev (Snapshot.csr old_snap) old_seeds (fun v _ -> Bitset.add area v);
  let new_seeds = List.filter (fun v -> v < new_n) seeds in
  if new_seeds <> [] then
    Traversal.bfs_rev (Snapshot.csr snapshot) new_seeds (fun v _ -> Bitset.add area v);
  for v = old_n to new_n - 1 do
    Bitset.add area v
  done;
  (* Local re-refinement pays off while the affected area is a minority
     of the graph; beyond that a fresh coarsest partition is both faster
     and optimal, so fall back (this also resets any accumulated
     drift). *)
  let partition =
    if 2 * Bitset.cardinal area > new_n then
      Bisimulation.compute (Snapshot.csr snapshot) ~key:(key_of t.atoms snapshot)
    else
      Bisimulation.refine_local (Snapshot.csr snapshot) ~key:(key_of t.atoms snapshot)
        ~prev:t.partition ~area
  in
  t.snap <- snapshot;
  t.partition <- partition;
  t.compress <- Compress.of_partition ~atoms:t.atoms snapshot partition;
  {
    effective;
    area = Bitset.cardinal area;
    blocks_before;
    blocks_after = Bisimulation.block_count partition;
  }

let apply_updates t g updates =
  if
    Digraph.graph_id g <> Snapshot.graph_id t.snap
    || Digraph.version g <> Snapshot.epoch t.snap
  then invalid_arg "Inc_compress.apply_updates: digraph out of sync with tracked snapshot";
  let effective = Update.apply_batch g updates in
  sync t ~snapshot:(Snapshot.of_digraph g) ~effective updates

let fresh_block_count t =
  Bisimulation.block_count (Bisimulation.compute (Snapshot.csr t.snap) ~key:(key_of t.atoms t.snap))
