(* ExpFinder experiment harness.

   One experiment per table/figure/quantitative claim of the ICDE 2013
   demo paper (see DESIGN.md for the index and EXPERIMENTS.md for
   paper-vs-measured).  Each experiment prints its rows; `--full` runs
   the larger sweeps, `--bechamel` additionally runs one Bechamel
   micro-benchmark per experiment, `--only STR` filters experiments by
   substring. *)

open Expfinder_graph
open Expfinder_pattern
open Expfinder_core
open Expfinder_incremental
open Expfinder_compression
open Expfinder_engine
module Telemetry = Expfinder_telemetry
module Parallel = Expfinder_parallel
module Server = Expfinder_server
module Collab = Expfinder_workload.Collab
module Synthetic = Expfinder_workload.Synthetic
module Twitter = Expfinder_workload.Twitter
module Queries = Expfinder_workload.Queries

(* ------------------------------------------------------------------ *)
(* Timing                                                               *)
(* ------------------------------------------------------------------ *)

(* All wall-clock measurement goes through the telemetry clock so the
   harness and the engine's own profiles agree on what they time. *)
let time_once f = Telemetry.time f

module Report = Telemetry.Report

(* Stats (true median — middle-pair mean for even [reps] — plus IQR and
   the raw samples) of [reps] runs; [prepare] builds a fresh input for
   each run so mutation-heavy benchmarks stay honest. *)
let time_stats_prepared ?(reps = 5) ~prepare f =
  Report.stats_of_samples
    (List.init reps (fun _ ->
         let input = prepare () in
         snd (time_once (fun () -> f input))))

let time_stats ?reps f = time_stats_prepared ?reps ~prepare:(fun () -> ()) f

let time_median ?reps f = (time_stats ?reps f).Report.median

(* ------------------------------------------------------------------ *)
(* Structured report (--json FILE)                                      *)
(* ------------------------------------------------------------------ *)

(* When --json is given, experiments append records here alongside their
   stdout rows; the driver also records one wall-clock sample per
   experiment, so every experiment is paired in a bench-diff even when
   it exposes no finer-grained timings. *)
let report : Report.t option ref = ref None

let record ~id ?(params = []) samples =
  match !report with
  | None -> ()
  | Some r -> Report.add r ~id ~params samples

let record_stats ~id ?params (s : Report.sample_stats) =
  record ~id ?params s.Report.samples

let header title = Printf.printf "\n=== %s ===\n" title

let check label ok =
  Printf.printf "  [%s] %s\n" (if ok then "ok" else "FAILED") label;
  if not ok then exit 1

(* ------------------------------------------------------------------ *)
(* Shared workloads                                                     *)
(* ------------------------------------------------------------------ *)

let flat_graph ~n = Synthetic.flat (Prng.create (1000 + n)) ~n ~avg_degree:4

(* A fixed bounded-simulation query over the synthetic label alphabet:
   an experienced SA exchanging work with an SD (2 hops each way), the
   SD near a QA, and the SA supervising a BA within 3 hops. *)
let bench_query () =
  let spec name label k =
    { Pattern.name; label = Some (Label.of_string label); pred = Predicate.ge_int "exp" k }
  in
  Pattern.make_exn
    ~nodes:[| spec "SA" "SA" 5; spec "SD" "SD" 2; spec "QA" "QA" 0; spec "BA" "BA" 3 |]
    ~edges:
      [
        (0, 1, Pattern.Bounded 2);
        (1, 2, Pattern.Bounded 2);
        (0, 3, Pattern.Bounded 3);
        (1, 0, Pattern.Bounded 2);
      ]
    ~output:0

let bench_query_sim () = Pattern.to_simulation (bench_query ())

(* ------------------------------------------------------------------ *)
(* EXP-F1 .. EXP-F4: Fig. 1 / Examples 1-3 / Fig. 5                     *)
(* ------------------------------------------------------------------ *)

let exp_fig1 ~full:_ =
  header "EXP-F1 (Example 1): match set on the Fig. 1 network";
  let g = Snapshot.of_digraph (Collab.graph ()) in
  let q = Collab.query () in
  let m = Bounded_sim.run q g in
  let expected =
    [ (0, Collab.walt); (0, Collab.bob); (1, Collab.dan); (1, Collab.mat); (1, Collab.pat);
      (2, Collab.jean); (3, Collab.eva) ]
  in
  check "M(Q,G) has exactly the paper's 7 pairs"
    (List.sort compare (Match_relation.pairs m) = List.sort compare expected);
  Printf.printf "  paper: {(SA,Bob),(SA,Walt),(SD,Mat),(SD,Dan),(SD,Pat),(BA,Jean),(ST,Eva)}\n";
  Printf.printf "  ours : %s\n"
    (String.concat ", "
       (List.map
          (fun (u, v) -> Printf.sprintf "(%s,%s)" (Pattern.name q u) (Collab.name_of v))
          (Match_relation.pairs m)))

let exp_example2 ~full:_ =
  header "EXP-F2 (Example 2): social-impact ranks";
  let g = Snapshot.of_digraph (Collab.graph ()) in
  let q = Collab.query () in
  let m = Bounded_sim.run q g in
  let gr = Result_graph.build q g m in
  let rb = Ranking.rank_of gr Collab.bob and rw = Ranking.rank_of gr Collab.walt in
  Printf.printf "  paper: f(SA,Bob) = 9/5,  f(SA,Walt) = 7/3, Bob is top-1\n";
  Printf.printf "  ours : f(SA,Bob) = %d/%d, f(SA,Walt) = %d/%d\n" rb.Ranking.num rb.Ranking.den
    rw.Ranking.num rw.Ranking.den;
  check "f(SA,Bob) = 9/5" (rb.Ranking.num = 9 && rb.Ranking.den = 5);
  check "f(SA,Walt) = 7/3" (rw.Ranking.num = 7 && rw.Ranking.den = 3);
  let top = Ranking.top_k gr ~output_matches:(Match_relation.matches m 0) ~k:1 in
  check "top-1 is Bob" (match top with [ (v, _) ] -> v = Collab.bob | _ -> false)

let exp_example3 ~full:_ =
  header "EXP-F3 (Example 3): incremental update e1";
  let g = Collab.graph () in
  let inc = Incremental.create (Collab.query ()) g in
  let src, dst = Collab.e1 in
  let report = Incremental.apply_updates inc g [ Update.Insert_edge (src, dst) ] in
  Printf.printf "  paper: DeltaM = {(SD,Fred)}, computed without touching the rest of G\n";
  Printf.printf "  ours : added %s, removed %d pairs, affected area %d node(s)\n"
    (String.concat ", "
       (List.map
          (fun (_, v) -> Printf.sprintf "(SD,%s)" (Collab.name_of v))
          report.Incremental.added))
    (List.length report.Incremental.removed)
    report.Incremental.area;
  check "delta = {(SD,Fred)}"
    (report.Incremental.added = [ (1, Collab.fred) ] && report.Incremental.removed = []);
  check "area is Fred's neighbourhood, not the graph" (report.Incremental.area <= 5)

let exp_fig5 ~full:_ =
  header "EXP-F4 (Fig. 4/5): queries Q1-Q3 and their top-1 experts";
  let engine = Engine.create (Collab.graph ()) in
  List.iter
    (fun (name, q) ->
      match Engine.top_k engine q ~k:1 with
      | [ { Engine.name = Some who; rank; _ } ] ->
        Printf.printf "  %s: top-1 = %s (rank %s)\n" name who
          (Format.asprintf "%a" Ranking.pp_rank rank)
      | _ -> check (name ^ " has a top-1") false)
    [ ("Q1", Collab.q1 ()); ("Q2", Collab.q2 ()); ("Q3", Collab.q3 ()) ];
  check "all three queries answered" true

(* ------------------------------------------------------------------ *)
(* EXP-B1: semantics comparison against the §I baselines                *)
(* ------------------------------------------------------------------ *)

let exp_semantics ~full:_ =
  header "EXP-B1 (§I): subgraph isomorphism vs simulation vs bounded simulation";
  let g = Snapshot.of_digraph (Collab.graph ()) in
  let q = Collab.query () in
  Printf.printf "  on the Fig. 1 network with query Q:\n";
  Printf.printf "  %-22s %-10s %s\n" "semantics" "matches" "note";
  let iso = Subiso.exists q g in
  Printf.printf "  %-22s %-10s %s\n" "subgraph isomorphism"
    (if iso then "yes" else "none")
    "needs a direct SA->BA edge and a bijection";
  let sim = Simulation.run (Pattern.to_simulation q) g in
  Printf.printf "  %-22s %-10s %s\n" "graph simulation"
    (if Match_relation.is_total sim then "yes" else "none")
    "edge-to-edge only; the SA->BA path is invisible";
  let bsim = Bounded_sim.run q g in
  Printf.printf "  %-22s %-10d %s\n" "bounded simulation" (Match_relation.total bsim)
    "maps SD to Mat, Dan and Pat; SA->BA over a path";
  check "only bounded simulation finds the experts"
    ((not iso)
    && (not (Match_relation.is_total sim))
    && Match_relation.is_total bsim);
  (* Runtime contrast on a permissive query where isomorphism does match:
     enumeration is exponential in the embedding count, so it is capped. *)
  let syn = Snapshot.of_digraph (flat_graph ~n:2_000) in
  let spec name label = { Pattern.name; label = Some (Label.of_string label); pred = Predicate.always } in
  let permissive =
    Pattern.make_exn
      ~nodes:[| spec "SA" "SA"; spec "SD" "SD" |]
      ~edges:[ (0, 1, Pattern.Bounded 1) ]
      ~output:0
  in
  let pairs, t_iso =
    time_once (fun () -> Subiso.matched_pairs ~max_embeddings:10_000 permissive syn)
  in
  let kernel, t_bsim = time_once (fun () -> Bounded_sim.run permissive syn) in
  Printf.printf "  synthetic (|V|=2000), 2-node query: iso %d pairs in %.1f ms (capped), bsim %d pairs in %.1f ms\n"
    (List.length pairs) t_iso (Match_relation.total kernel) t_bsim

(* ------------------------------------------------------------------ *)
(* EXP-B2: batched evaluation                                           *)
(* ------------------------------------------------------------------ *)

let exp_batch ~full =
  header "EXP-B2: batched evaluation vs a sequential loop (one pinned snapshot)";
  let n = if full then 20_000 else 5_000 in
  let g = Twitter.generate (Prng.create 61) ~n in
  let count = 12 in
  let queries = Queries.workload (Prng.create 67) ~count ~simulation:false g in
  (* Exactness and the scan saving first, with telemetry on so the
     gated [candidates.scans] counter records. *)
  let was_enabled = Telemetry.enabled () in
  Telemetry.set_enabled true;
  let scans () =
    match
      List.assoc_opt "candidates.scans" (Telemetry.Metrics.counters_snapshot ())
    with
    | Some v -> v
    | None -> 0
  in
  let e_seq = Engine.create g in
  let s0 = scans () in
  let seq_answers = List.map (fun q -> Engine.evaluate e_seq q) queries in
  let seq_scans = scans () - s0 in
  let e_batch = Engine.create g in
  let s1 = scans () in
  let batch_answers = Engine.evaluate_batch e_batch queries in
  let batch_scans = scans () - s1 in
  Telemetry.set_enabled was_enabled;
  check "batch answers equal per-query evaluation"
    (List.for_all2
       (fun (a : Engine.answer) (b : Engine.answer) ->
         Verify.semantically_equal a.Engine.relation b.Engine.relation)
       seq_answers batch_answers);
  check "batch performs fewer candidate scans" (batch_scans < seq_scans);
  Printf.printf "  candidate scans: sequential %d, batched %d\n" seq_scans batch_scans;
  let params =
    [ ("n", Telemetry.Json.Int n); ("queries", Telemetry.Json.Int count) ]
  in
  let s_seq =
    time_stats (fun () ->
        let e = Engine.create g in
        List.iter (fun q -> ignore (Engine.evaluate e q : Engine.answer)) queries)
  in
  let s_batch =
    time_stats (fun () ->
        let e = Engine.create g in
        ignore (Engine.evaluate_batch e queries : Engine.answer list))
  in
  record_stats ~id:"EXP-B2.sequential" ~params s_seq;
  record_stats ~id:"EXP-B2.batch" ~params s_batch;
  Printf.printf "  %d queries, |V| = %d: sequential %.1f ms, batched %.1f ms (%.1fx)\n" count n
    s_seq.Report.median s_batch.Report.median
    (s_seq.Report.median /. max s_batch.Report.median 0.001)

(* ------------------------------------------------------------------ *)
(* EXP-Q1: query evaluation scaling                                     *)
(* ------------------------------------------------------------------ *)

let exp_query_scaling ~full =
  header "EXP-Q1: evaluation time vs |G| (simulation vs bounded simulation)";
  Printf.printf "  %8s %9s %12s %12s %9s %9s\n" "|V|" "|E|" "t_sim ms" "t_bsim ms" "|M_sim|"
    "|M_bsim|";
  let sizes =
    if full then [ 2_000; 4_000; 8_000; 16_000; 32_000; 64_000 ]
    else [ 2_000; 4_000; 8_000; 16_000 ]
  in
  List.iter
    (fun n ->
      let g = Snapshot.of_digraph (flat_graph ~n) in
      let qs = bench_query_sim () and qb = bench_query () in
      let s_sim = time_stats (fun () -> ignore (Simulation.run qs g)) in
      let s_bsim = time_stats (fun () -> ignore (Bounded_sim.run qb g)) in
      let params = [ ("n", Telemetry.Json.Int n) ] in
      record_stats ~id:(Printf.sprintf "EXP-Q1.sim.n=%d" n) ~params s_sim;
      record_stats ~id:(Printf.sprintf "EXP-Q1.bsim.n=%d" n) ~params s_bsim;
      let m_sim = Match_relation.total (Simulation.run qs g) in
      let m_bsim = Match_relation.total (Bounded_sim.run qb g) in
      Printf.printf "  %8d %9d %12.2f %12.2f %9d %9d\n" n (Snapshot.edge_count g)
        s_sim.Report.median s_bsim.Report.median m_sim m_bsim)
    sizes;
  print_endline "  shape check: both polynomial; bounded simulation costlier than simulation"

(* ------------------------------------------------------------------ *)
(* EXP-Q2: top-K selection                                              *)
(* ------------------------------------------------------------------ *)

let exp_topk_scaling ~full =
  header "EXP-Q2: top-K selection on the Twitter-like graph";
  let n = if full then 30_000 else 10_000 in
  let g = Twitter.generate (Prng.create 42) ~n in
  let csr = Snapshot.of_digraph g in
  let q =
    Pattern.make_exn
      ~nodes:
        [|
          { Pattern.name = "DB"; label = Some (Label.of_string "DB"); pred = Predicate.ge_int "exp" 6 };
          { Pattern.name = "ML"; label = Some (Label.of_string "ML"); pred = Predicate.always };
          { Pattern.name = "Sec"; label = Some (Label.of_string "Sec"); pred = Predicate.ge_int "exp" 4 };
        |]
      ~edges:[ (1, 0, Pattern.Bounded 2); (0, 2, Pattern.Bounded 3) ]
      ~output:0
  in
  let m, t_eval = time_once (fun () -> Bounded_sim.run q csr) in
  let gr, t_build = time_once (fun () -> Result_graph.build q csr m) in
  let matches = Match_relation.matches m (Pattern.output q) in
  Printf.printf "  |V| = %d, output matches = %d, eval %.1f ms, result graph %.1f ms\n" n
    (List.length matches) t_eval t_build;
  Printf.printf "  %6s %12s %20s\n" "K" "t_topk ms" "best rank";
  List.iter
    (fun k ->
      let top, t = time_once (fun () -> Ranking.top_k gr ~output_matches:matches ~k) in
      record
        ~id:(Printf.sprintf "EXP-Q2.topk.k=%d" k)
        ~params:[ ("n", Telemetry.Json.Int n); ("k", Telemetry.Json.Int k) ]
        [ t ];
      let best =
        match top with (_, r) :: _ -> Format.asprintf "%a" Ranking.pp_rank r | [] -> "-"
      in
      Printf.printf "  %6d %12.2f %20s\n" k t best)
    [ 1; 5; 10; 25; 50 ];
  print_endline "  note: ranking cost is dominated by |M| Dijkstra runs; K only selects"

(* ------------------------------------------------------------------ *)
(* EXP-I1: incremental vs batch, unit updates                           *)
(* ------------------------------------------------------------------ *)

let unit_update_times pattern n =
  let g = flat_graph ~n in
  let rng = Prng.create (77 + n) in
  let inc = Incremental.create pattern g in
  (* Alternate insert/delete of fresh random edges through the tracker;
     median over the individual maintenance calls. *)
  let samples = ref [] in
  for _ = 1 to 5 do
    match Update.random_insertions rng g 1 with
    | [ Update.Insert_edge (a, b) ] ->
      let _, t_ins =
        time_once (fun () -> Incremental.apply_updates inc g [ Update.Insert_edge (a, b) ])
      in
      let _, t_del =
        time_once (fun () -> Incremental.apply_updates inc g [ Update.Delete_edge (a, b) ])
      in
      samples := t_ins :: t_del :: !samples
    | _ -> ()
  done;
  let t_inc = (Report.stats_of_samples !samples).Report.median in
  let t_batch =
    time_median (fun () ->
        let csr = Snapshot.of_digraph g in
        if Pattern.is_simulation_pattern pattern then ignore (Simulation.run pattern csr)
        else ignore (Bounded_sim.run pattern csr))
  in
  (t_inc, t_batch)

let exp_incremental_unit ~full =
  header "EXP-I1: incremental vs batch, unit updates (single edge)";
  let sizes =
    if full then [ 2_000; 4_000; 8_000; 16_000; 32_000 ] else [ 2_000; 4_000; 8_000; 16_000 ]
  in
  Printf.printf "  %-6s %8s %12s %12s %9s\n" "query" "|V|" "t_inc ms" "t_batch ms" "speedup";
  List.iter
    (fun (name, pattern) ->
      List.iter
        (fun n ->
          let t_inc, t_batch = unit_update_times pattern n in
          let params =
            [ ("n", Telemetry.Json.Int n); ("query", Telemetry.Json.Str name) ]
          in
          record ~id:(Printf.sprintf "EXP-I1.%s.inc.n=%d" name n) ~params [ t_inc ];
          record ~id:(Printf.sprintf "EXP-I1.%s.batch.n=%d" name n) ~params [ t_batch ];
          Printf.printf "  %-6s %8d %12.3f %12.3f %8.1fx\n" name n t_inc t_batch
            (t_batch /. max t_inc 0.001))
        sizes)
    [ ("sim", bench_query_sim ()); ("bsim", bench_query ()) ];
  print_endline "  shape check: speedup grows with |G| (unit-update cost is local)"

(* ------------------------------------------------------------------ *)
(* EXP-I2: incremental vs batch, batch updates (the 30% / 10% claims)   *)
(* ------------------------------------------------------------------ *)

let batch_sweep ~tag pattern percentages base =
  let m = Digraph.edge_count base in
  Printf.printf "  %7s %9s %12s %12s %10s\n" "|dG|/|E|" "|dG|" "t_inc ms" "t_batch ms" "winner";
  let crossover = ref None in
  List.iter
    (fun pct ->
      let count = max 1 (m * pct / 100) in
      let s_inc =
        time_stats_prepared ~reps:5
          ~prepare:(fun () ->
            let g = Digraph.copy base in
            let rng = Prng.create (pct * 131) in
            let updates = Update.random_mixed rng g count in
            let inc = Incremental.create pattern g in
            (g, inc, updates))
          (fun (g, inc, updates) -> ignore (Incremental.apply_updates inc g updates))
      in
      let s_batch =
        time_stats_prepared ~reps:5
          ~prepare:(fun () ->
            let g = Digraph.copy base in
            let rng = Prng.create (pct * 131) in
            let updates = Update.random_mixed rng g count in
            (g, updates))
          (fun (g, updates) ->
            ignore (Update.apply_batch g updates);
            let csr = Snapshot.of_digraph g in
            if Pattern.is_simulation_pattern pattern then ignore (Simulation.run pattern csr)
            else ignore (Bounded_sim.run pattern csr))
      in
      let params =
        [ ("pct", Telemetry.Json.Int pct); ("updates", Telemetry.Json.Int count) ]
      in
      record_stats ~id:(Printf.sprintf "EXP-I2.%s.inc.pct=%d" tag pct) ~params s_inc;
      record_stats ~id:(Printf.sprintf "EXP-I2.%s.batch.pct=%d" tag pct) ~params s_batch;
      let t_inc = s_inc.Report.median and t_batch = s_batch.Report.median in
      let winner = if t_inc <= t_batch then "inc" else "batch" in
      if t_inc > t_batch && !crossover = None then crossover := Some pct;
      Printf.printf "  %6d%% %9d %12.2f %12.2f %10s\n" pct count t_inc t_batch winner)
    percentages;
  match !crossover with
  | Some pct -> Printf.printf "  crossover: batch wins from ~%d%% of |E| changed\n" pct
  | None -> Printf.printf "  crossover: not reached in this sweep (incremental wins throughout)\n"

(* A sparse collaboration graph and a bounds<=2 pattern: the regime the
   SIGMOD'11 experiments report (social graphs are sparse; expert queries
   use small bounds). *)
let sparse_batch_query () =
  let spec name label k =
    { Pattern.name; label = Some (Label.of_string label); pred = Predicate.ge_int "exp" k }
  in
  Pattern.make_exn
    ~nodes:[| spec "SA" "SA" 5; spec "SD" "SD" 2; spec "QA" "QA" 0; spec "BA" "BA" 3 |]
    ~edges:
      [
        (0, 1, Pattern.Bounded 2);
        (1, 2, Pattern.Bounded 2);
        (0, 3, Pattern.Bounded 2);
        (1, 0, Pattern.Bounded 2);
      ]
    ~output:0

let exp_incremental_batch ~full =
  header "EXP-I2: incremental vs batch, batch updates";
  let n = if full then 16_000 else 8_000 in
  let base = Synthetic.flat (Prng.create 701) ~n ~avg_degree:2 in
  Printf.printf "  graph: %d nodes, %d edges (sparse collaboration network)\n"
    (Digraph.node_count base) (Digraph.edge_count base);
  Printf.printf "  -- simulation (paper: incremental wins up to ~30%% changes) --\n";
  batch_sweep ~tag:"sim" (Pattern.to_simulation (sparse_batch_query ())) [ 2; 5; 10; 20; 30; 50 ]
    base;
  Printf.printf "  -- bounded simulation (paper: incremental wins up to ~10%% changes) --\n";
  batch_sweep ~tag:"bsim" (sparse_batch_query ()) [ 1; 2; 5; 10; 20 ] base

(* ------------------------------------------------------------------ *)
(* EXP-C1: compression ratio (the 57% claim)                            *)
(* ------------------------------------------------------------------ *)

let compression_datasets ~full =
  let rng = Prng.create 5 in
  [
    ("org-2k", Synthetic.org rng ~teams:200 ~team_size:9);
    ("org-8k", Synthetic.org rng ~teams:800 ~team_size:9);
    ("twitter-5k", Twitter.generate rng ~n:5_000);
    ("twitter-20k", Twitter.generate rng ~n:20_000);
  ]
  @ if full then [ ("org-30k", Synthetic.org rng ~teams:3_000 ~team_size:9) ] else []

let exp_compression_ratio ~full =
  header "EXP-C1: compression ratio (paper: graphs reduced by 57% on average)";
  Printf.printf "  %-12s %9s %9s %9s %9s %8s %8s %10s\n" "dataset" "|V|" "|E|" "|Vc|" "|Ec|"
    "nodes%" "edges%" "t_comp ms";
  let ratios = ref [] in
  let run ?(count = true) (name, g) =
    let csr = Snapshot.of_digraph g in
    let compressed, t =
      time_once (fun () -> Compress.compress ~atoms:Queries.atom_universe csr)
    in
    let gc = Compress.compressed compressed in
    let nr = Compress.node_ratio compressed and er = Compress.edge_ratio compressed in
    if count then ratios := nr :: !ratios;
    record
      ~id:(Printf.sprintf "EXP-C1.%s" name)
      ~params:[ ("nodes", Telemetry.Json.Int (Snapshot.node_count csr)) ]
      [ t ];
    Printf.printf "  %-12s %9d %9d %9d %9d %7.1f%% %7.1f%% %10.1f\n" name (Snapshot.node_count csr)
      (Snapshot.edge_count csr) (Snapshot.node_count gc) (Snapshot.edge_count gc) (100.0 *. nr)
      (100.0 *. er) t
  in
  List.iter run (compression_datasets ~full);
  let avg = List.fold_left ( +. ) 0.0 !ratios /. float_of_int (List.length !ratios) in
  Printf.printf "  average node reduction: %.1f%% (paper: 57%%)\n" (100.0 *. avg);
  (* Uniform-random graphs carry almost no behavioural redundancy; shown
     for contrast, excluded from the average (the paper's datasets are
     social graphs). *)
  run ~count:false ("flat-8k", flat_graph ~n:8_000)

(* ------------------------------------------------------------------ *)
(* EXP-C2: querying compressed graphs (the 70% claim)                   *)
(* ------------------------------------------------------------------ *)

let exp_compressed_query ~full:_ =
  header "EXP-C2: query time, original vs compressed (paper: ~70% faster)";
  Printf.printf "  %-12s %10s %12s %12s %10s\n" "dataset" "queries" "t(G) ms" "t(Gc) ms" "saved";
  let rng = Prng.create 17 in
  let datasets =
    [
      ("org-2k", Synthetic.org rng ~teams:200 ~team_size:9);
      ("org-8k", Synthetic.org rng ~teams:800 ~team_size:9);
      ("org-20k", Synthetic.org rng ~teams:2_000 ~team_size:9);
    ]
  in
  List.iter
    (fun (name, g) ->
      let csr = Snapshot.of_digraph g in
      let compressed = Compress.compress ~atoms:Queries.atom_universe csr in
      let queries = Queries.workload rng ~count:10 ~simulation:false g in
      (* Exactness first. *)
      List.iter
        (fun q ->
          assert (
            Match_relation.equal (Bounded_sim.run q csr) (Compress.evaluate compressed q)))
        queries;
      let s_direct =
        time_stats (fun () -> List.iter (fun q -> ignore (Bounded_sim.run q csr)) queries)
      in
      let s_gc =
        time_stats (fun () ->
            List.iter (fun q -> ignore (Compress.evaluate compressed q)) queries)
      in
      record_stats ~id:(Printf.sprintf "EXP-C2.%s.direct" name) s_direct;
      record_stats ~id:(Printf.sprintf "EXP-C2.%s.compressed" name) s_gc;
      let t_direct = s_direct.Report.median and t_gc = s_gc.Report.median in
      Printf.printf "  %-12s %10d %12.1f %12.1f %9.1f%%\n" name (List.length queries) t_direct
        t_gc
        (100.0 *. (1.0 -. (t_gc /. t_direct))))
    datasets;
  print_endline "  (answers on Gc verified identical to direct evaluation before timing)"

(* ------------------------------------------------------------------ *)
(* EXP-C3: maintaining compressed graphs                                *)
(* ------------------------------------------------------------------ *)

let exp_compression_maintain ~full =
  header "EXP-C3: compressed-graph maintenance vs recompression";
  let teams = if full then 2_000 else 800 in
  let base = Synthetic.org (Prng.create 23) ~teams ~team_size:9 in
  Printf.printf "  base: %d nodes, %d edges\n" (Digraph.node_count base) (Digraph.edge_count base);
  Printf.printf "  %8s %12s %14s %10s %10s %8s\n" "|dG|" "t_maint ms" "t_rebuild ms" "blocks"
    "fresh" "drift";
  List.iter
    (fun count ->
      let g = Digraph.copy base in
      let inc = Inc_compress.create ~atoms:Queries.atom_universe g in
      let rng = Prng.create (count * 7) in
      let updates = Update.random_mixed rng g count in
      let report, t_maint = time_once (fun () -> Inc_compress.apply_updates inc g updates) in
      let fresh = Inc_compress.fresh_block_count inc in
      let _, t_rebuild = time_once (fun () -> Inc_compress.rebuild inc g) in
      Printf.printf "  %8d %12.1f %14.1f %10d %10d %7.1f%%\n" count t_maint t_rebuild
        report.Inc_compress.blocks_after fresh
        (100.0
        *. float_of_int (report.Inc_compress.blocks_after - fresh)
        /. float_of_int (max fresh 1)))
    [ 1; 10; 50; 200; 1_000 ];
  print_endline "  drift = extra blocks kept by local maintenance vs the coarsest partition"

(* ------------------------------------------------------------------ *)
(* EXP-K1: result caching                                               *)
(* ------------------------------------------------------------------ *)

let exp_cache ~full:_ =
  header "EXP-K1: cached query results";
  let g = Twitter.generate (Prng.create 31) ~n:5_000 in
  let engine = Engine.create g in
  let rng = Prng.create 57 in
  let queries = Queries.workload rng ~count:10 ~simulation:false g in
  let (), t_cold =
    time_once (fun () -> List.iter (fun q -> ignore (Engine.evaluate engine q)) queries)
  in
  let (), t_warm =
    time_once (fun () -> List.iter (fun q -> ignore (Engine.evaluate engine q)) queries)
  in
  let hits, misses = Engine.cache_stats engine in
  record ~id:"EXP-K1.cold" [ t_cold ];
  record ~id:"EXP-K1.warm" [ t_warm ];
  Printf.printf "  10 queries cold: %8.1f ms\n" t_cold;
  Printf.printf "  10 queries warm: %8.2f ms (cache hits)\n" t_warm;
  Printf.printf "  cache stats: %d hits, %d misses\n" hits misses;
  check "all warm answers were hits" (hits = 10)

(* ------------------------------------------------------------------ *)
(* Ablations                                                            *)
(* ------------------------------------------------------------------ *)

let exp_ablation_bsim_strategy ~full =
  header "EXP-A1 (ablation): bounded-simulation refinement strategy";
  Printf.printf "  %8s %14s %14s\n" "|V|" "counters ms" "naive ms";
  let sizes = if full then [ 2_000; 8_000; 32_000 ] else [ 2_000; 8_000 ] in
  List.iter
    (fun n ->
      let g = Snapshot.of_digraph (flat_graph ~n) in
      let q = bench_query () in
      let s_counters =
        time_stats (fun () -> ignore (Bounded_sim.run ~strategy:Bounded_sim.Counters q g))
      in
      let s_naive =
        time_stats (fun () -> ignore (Bounded_sim.run ~strategy:Bounded_sim.Naive q g))
      in
      let params = [ ("n", Telemetry.Json.Int n) ] in
      record_stats ~id:(Printf.sprintf "EXP-A1.counters.n=%d" n) ~params s_counters;
      record_stats ~id:(Printf.sprintf "EXP-A1.naive.n=%d" n) ~params s_naive;
      Printf.printf "  %8d %14.2f %14.2f\n" n s_counters.Report.median s_naive.Report.median)
    sizes

let exp_ablation_equivalence ~full:_ =
  header "EXP-A2 (ablation): bisimulation vs simulation-equivalence merging";
  Printf.printf "  %-10s %7s %12s %12s %14s %14s\n" "dataset" "|V|" "bisim |Vc|" "simeq |Vc|"
    "t_bisim ms" "t_simeq ms";
  let rng = Prng.create 3 in
  let datasets =
    [
      ("org", Synthetic.org rng ~teams:60 ~team_size:7);
      ("flat", Synthetic.flat rng ~n:600 ~avg_degree:3);
      ("twitter", Twitter.generate rng ~n:600);
    ]
  in
  List.iter
    (fun (name, g) ->
      let snap = Snapshot.of_digraph g in
      let csr = Snapshot.csr snap in
      let key v = Label.to_int (Snapshot.label snap v) in
      let bisim, t_b = time_once (fun () -> Bisimulation.compute csr ~key) in
      let simeq, t_s = time_once (fun () -> Sim_equivalence.compute csr ~key) in
      Printf.printf "  %-10s %7d %12d %12d %14.1f %14.1f\n" name (Snapshot.node_count snap)
        (Bisimulation.block_count bisim) (Bisimulation.block_count simeq) t_b t_s)
    datasets;
  print_endline "  simeq merges at least as much but only preserves plain-simulation queries"

let exp_ablation_area ~full =
  header "EXP-A3 (ablation): incremental affected-area strategy";
  let n = if full then 16_000 else 8_000 in
  let base = flat_graph ~n in
  Printf.printf "  base: %d nodes, %d edges; 8 unit updates per strategy\n"
    (Digraph.node_count base) (Digraph.edge_count base);
  Printf.printf "  %-14s %12s %12s %12s %12s\n" "strategy" "min area" "median area" "max area"
    "median ms";
  List.iter
    (fun (name, strategy) ->
      let areas = ref [] and times = ref [] in
      for seed = 1 to 8 do
        let g = Digraph.copy base in
        let inc = Incremental.create ~area_strategy:strategy (bench_query ()) g in
        let updates = Update.random_mixed (Prng.create seed) g 1 in
        let report, t = time_once (fun () -> Incremental.apply_updates inc g updates) in
        areas := report.Incremental.area :: !areas;
        times := t :: !times
      done;
      let areas = List.sort compare !areas and times = List.sort compare !times in
      Printf.printf "  %-14s %12d %12d %12d %12.2f\n" name (List.nth areas 0)
        (List.nth areas 4) (List.nth areas 7) (List.nth times 4))
    [ ("ball-closure", Incremental.Ball_closure); ("ancestors", Incremental.Ancestors) ];
  print_endline
    "  ball-closure stays tiny unless the update can enable a group of new matches;\n\
    \  a group search past |V|/3 bails out to one dense batch run (area = |V|).\n\
    \  ancestors always floods the reverse-reachable set and refines all of it"

let exp_ablation_ball_index ~full =
  header "EXP-A4 (ablation): precomputed distance index for query workloads";
  let n = if full then 32_000 else 8_000 in
  let g = Snapshot.of_digraph (flat_graph ~n) in
  let rng = Prng.create 43 in
  let queries =
    Queries.workload rng ~count:10 ~simulation:false (Snapshot.to_digraph g)
  in
  (* The workload's graph copy shares structure; evaluate on [g]. *)
  let idx, t_build = time_once (fun () -> Ball_index.build g ~radius:3) in
  List.iter
    (fun q -> assert (Match_relation.equal (Ball_index.evaluate idx q g) (Bounded_sim.run q g)))
    queries;
  let t_direct =
    time_median (fun () ->
        List.iter (fun q -> ignore (Bounded_sim.run q g : Match_relation.t)) queries)
  in
  let t_indexed =
    time_median (fun () ->
        List.iter (fun q -> ignore (Ball_index.evaluate idx q g : Match_relation.t)) queries)
  in
  record ~id:"EXP-A4.direct" [ t_direct ];
  record ~id:"EXP-A4.indexed" [ t_indexed ];
  Printf.printf "  |V| = %d; index: %d entries, built in %.1f ms\n" n
    (Ball_index.memory_entries idx) t_build;
  Printf.printf "  10-query workload: direct %.1f ms, indexed %.1f ms (%.1fx)\n" t_direct
    t_indexed
    (t_direct /. max t_indexed 0.001);
  Printf.printf "  break-even after ~%.0f workloads of this size\n"
    (t_build /. max (t_direct -. t_indexed) 0.001)

let exp_ablation_minimise ~full:_ =
  header "EXP-A5 (ablation): pattern-query minimisation";
  let g = Snapshot.of_digraph (flat_graph ~n:8_000) in
  (* A team query with redundant duplicate members, as a user might
     draw it: one SA leading three interchangeable SDs. *)
  let spec name label k =
    { Pattern.name; label = Some (Label.of_string label); pred = Predicate.ge_int "exp" k }
  in
  let redundant =
    Pattern.make_exn
      ~nodes:[| spec "SA" "SA" 5; spec "SD1" "SD" 2; spec "SD2" "SD" 2; spec "SD3" "SD" 2; spec "QA" "QA" 0 |]
      ~edges:
        [
          (0, 1, Pattern.Bounded 2);
          (0, 2, Pattern.Bounded 2);
          (0, 3, Pattern.Bounded 3);
          (1, 4, Pattern.Bounded 2);
          (2, 4, Pattern.Bounded 2);
          (3, 4, Pattern.Bounded 2);
        ]
      ~output:0
  in
  let minimised, renaming = Pattern_opt.minimise redundant in
  let m_full = Bounded_sim.run redundant g in
  let m_min = Bounded_sim.run minimised g in
  assert (
    Match_relation.matches m_full 0 = Match_relation.matches m_min renaming.(0));
  let t_full = time_median (fun () -> ignore (Bounded_sim.run redundant g)) in
  let t_min = time_median (fun () -> ignore (Bounded_sim.run minimised g)) in
  record ~id:"EXP-A5.full" [ t_full ];
  record ~id:"EXP-A5.minimised" [ t_min ];
  Printf.printf "  query: %d nodes/%d edges -> minimised %d nodes/%d edges\n"
    (Pattern.size redundant) (Pattern.edge_count redundant) (Pattern.size minimised)
    (Pattern.edge_count minimised);
  Printf.printf "  evaluation: %.2f ms -> %.2f ms (%.1fx), same output matches\n" t_full t_min
    (t_full /. max t_min 0.001)

(* ------------------------------------------------------------------ *)
(* EXP-T1: long-horizon telemetry cost                                  *)
(* ------------------------------------------------------------------ *)

(* The serving path pays for telemetry twice: every request records into
   its sliding window (already covered by the window benchmarks), and a
   1 Hz sampler tick folds windows + process gauges + counters into the
   retention rings and re-evaluates the SLO burn rates.  This experiment
   prices both halves so the "<= 5% serving overhead" budget in
   DESIGN.md stays an empirical number, not a hope. *)
let exp_telemetry_cost ~full =
  header "EXP-T1: telemetry retention + SLO evaluation cost";
  let module T = Telemetry.Timeseries in
  let module S = Telemetry.Slo in
  (* Half 1: raw ring writes, over a serving-sized series set and an
     hour of 1 Hz ticks (every record touches all three rings). *)
  let series =
    List.concat_map
      (fun op ->
        [ Printf.sprintf "win.%s.qps" op; Printf.sprintf "win.%s.error_rate" op;
          Printf.sprintf "win.%s.p99_ms" op; Printf.sprintf "req.%s" op;
          Printf.sprintf "err.%s" op ])
      [ "query"; "batch"; "update" ]
    @ [ "process.rss_bytes"; "process.heap_words"; "process.minor_words";
        "process.major_words"; "process.gc_pause_us_max" ]
  in
  let ticks = if full then 3600 else 900 in
  let ts = T.create () in
  let (), t_fill =
    time_once (fun () ->
        for i = 0 to ticks - 1 do
          let now = 1.0e9 +. float_of_int i in
          List.iteri
            (fun j name ->
              T.record ~now ts (if j mod 2 = 0 then T.Level else T.Rate) name
                (float_of_int ((i * 7 mod 1000) + j)))
            series
        done)
  in
  let records = ticks * List.length series in
  let per_record_us = t_fill *. 1000.0 /. float_of_int records in
  record ~id:"EXP-T1.record"
    ~params:[ ("records", Telemetry.Json.Int records) ]
    [ per_record_us ];
  Printf.printf "  %d ring writes (%d series x %d ticks): %.1f ms total, %.3f us/write\n"
    records (List.length series) ticks t_fill per_record_us;
  (* Half 2: one sampler tick against live windows and registry. *)
  let was_enabled = Telemetry.enabled () in
  Telemetry.set_enabled true;
  let w_query = Telemetry.Window.get "query" in
  for i = 0 to 999 do
    Telemetry.Window.observe w_query ~error:(i mod 97 = 0) (0.5 +. float_of_int (i mod 20))
  done;
  let live = T.create () in
  let s_tick =
    time_stats ~reps:20 (fun () -> ignore (T.sample ~persist:false live : (string * float) list))
  in
  record_stats ~id:"EXP-T1.sample" s_tick;
  Printf.printf "  sampler tick (windows + process + registry): %.3f ms median\n"
    s_tick.Report.median;
  (* Half 3: burn-rate evaluation of the default objective set over the
     populated rings. *)
  S.set_objectives
    [
      S.availability ~op:"query" ~target:0.999 ();
      S.availability ~op:"batch" ~target:0.999 ();
      S.availability ~op:"update" ~target:0.999 ();
      S.latency_p99 ~op:"query" ~threshold_ms:50.0 ~target:0.99 ();
    ];
  let now = 1.0e9 +. float_of_int ticks in
  let s_slo =
    time_stats ~reps:20 (fun () -> ignore (S.evaluate ~now ~ts () : S.alert list))
  in
  S.set_objectives [];
  Telemetry.set_enabled was_enabled;
  record_stats ~id:"EXP-T1.slo" s_slo;
  Printf.printf "  SLO evaluation (4 objectives, fast+slow windows): %.3f ms median\n"
    s_slo.Report.median;
  (* A sampler tick runs once a second; even tick + evaluation together
     at 50 ms would be 5% of wall-clock, far above anything seen.  The
     bound is deliberately loose — it guards against accidental
     quadratic blowups, not noise. *)
  check "ring write stays sub-10us" (per_record_us < 10.0);
  check "sampler tick + SLO evaluation stay under 50 ms/s (5% budget)"
    (s_tick.Report.median +. s_slo.Report.median < 50.0)

(* ------------------------------------------------------------------ *)
(* EXP-T2: continuous profiler + domain telemetry overhead              *)
(* ------------------------------------------------------------------ *)

(* The multicore observability layer adds three always-on costs to the
   serving path: folding each completed span tree into the collapsed-
   stack profile, the channel depth gauge + (flag-gated) wait
   histograms on every pool push/pop, and per-worker busy/idle
   accounting.  This experiment prices the fold and the channel
   instrumentation with telemetry off vs on, so the on/off pair can sit
   in BENCH_baseline.json and the Tukey gate flags any creep. *)
let exp_profile_cost ~full =
  header "EXP-T2: continuous profiler + channel instrumentation cost";
  let module P = Telemetry.Profile in
  let was_enabled = Telemetry.enabled () in
  (* Half 1: folding a serving-shaped span tree (root + three stages,
     each with a few children — comparable to a query's plan trace). *)
  Telemetry.set_enabled true;
  let (), root =
    Telemetry.Trace.collect
      (Telemetry.Trace.make ~sampled:true ())
      "bench.query"
      (fun () ->
        List.iter
          (fun stage ->
            Telemetry.with_span stage (fun () ->
                for _ = 1 to 3 do
                  Telemetry.with_span (stage ^ ".step") ignore
                done))
          [ "candidates"; "refine"; "rank" ])
  in
  let root = Option.get root in
  let folds = if full then 20_000 else 5_000 in
  let (), t_fold = time_once (fun () -> for _ = 1 to folds do P.record root done) in
  let per_fold_us = t_fold *. 1000.0 /. float_of_int folds in
  record ~id:"EXP-T2.fold"
    ~params:[ ("folds", Telemetry.Json.Int folds) ]
    [ per_fold_us ];
  Printf.printf "  span-tree fold (13 frames): %.3f us/fold over %d folds (%d stacks)\n"
    per_fold_us folds (List.length (P.rows ()));
  (* Half 2: instrumented channel traffic, telemetry off vs on.  The
     depth gauge always fires (it is the /domains.json backbone); the
     wait histograms only with the flag, which is what the on/off pair
     prices. *)
  let ops = if full then 200_000 else 50_000 in
  let chan_cost () =
    let c = Parallel.Chan.create ~name:"bench" ~capacity:(ops + 1) () in
    let (), t =
      time_once (fun () ->
          for i = 1 to ops do
            Parallel.Chan.push c i
          done;
          for _ = 1 to ops do
            ignore (Parallel.Chan.pop c : int option)
          done)
    in
    t *. 1000.0 /. float_of_int (2 * ops)
  in
  Telemetry.set_enabled false;
  let off_us = chan_cost () in
  Telemetry.set_enabled true;
  let on_us = chan_cost () in
  Telemetry.set_enabled was_enabled;
  record ~id:"EXP-T2.chan.off" ~params:[ ("ops", Telemetry.Json.Int (2 * ops)) ] [ off_us ];
  record ~id:"EXP-T2.chan.on" ~params:[ ("ops", Telemetry.Json.Int (2 * ops)) ] [ on_us ];
  Printf.printf
    "  instrumented chan push+pop: %.3f us/op off, %.3f us/op on (%.2fx)\n" off_us on_us
    (on_us /. Float.max off_us 0.001);
  (* Loose absolute guards: the fold must stay far below a query's
     own cost, and channel traffic must stay micro-scale either way —
     these catch accidental O(stacks) scans, not scheduler noise. *)
  check "span-tree fold stays sub-100us" (per_fold_us < 100.0);
  check "instrumented chan op stays sub-10us (flag on or off)"
    (off_us < 10.0 && on_us < 10.0)

(* ------------------------------------------------------------------ *)
(* EXP-P1 / EXP-P2: multicore execution model                           *)
(* ------------------------------------------------------------------ *)

(* EXP-P1: served QPS as the server domain pool grows.  An in-process
   server is spawned per pool size on its own Unix socket; a fixed set
   of client worker domains each holds one connection and sends the
   same query round, so the server-side pool is the only variable.
   The speedup column is honest hardware truth: on a single-core host
   every extra domain only adds scheduling overhead, so ratios near
   (or below) 1.0x there are the expected result, not a regression. *)
let exp_parallel_serve ~full =
  header "EXP-P1: served QPS vs server domain-pool size (concurrent soak)";
  let n = if full then 10_000 else 3_000 in
  let g = Twitter.generate (Prng.create 71) ~n in
  let req_texts =
    Queries.workload (Prng.create 73) ~count:4 ~simulation:false g
    |> List.map Pattern_io.to_string |> Array.of_list
  in
  let workers = 4 in
  let reqs = if full then 100 else 25 in
  let pool_sizes = if full then [ 1; 2; 4 ] else [ 1; 2 ] in
  let soak ep =
    let t0 = Telemetry.now_us () in
    let tallies =
      Parallel.run ~domains:workers (fun w ->
          Server.with_connection ep (fun fd ->
              let ok = ref 0 in
              for i = 0 to reqs - 1 do
                let text = req_texts.((w + i) mod Array.length req_texts) in
                let req =
                  Telemetry.Json.Obj
                    [ ("op", Telemetry.Json.Str "query");
                      ("pattern", Telemetry.Json.Str text) ]
                in
                match Server.request fd req with
                | Ok resp
                  when Option.bind (Telemetry.Json.member "ok" resp) (function
                         | Telemetry.Json.Bool b -> Some b
                         | _ -> None)
                       = Some true -> incr ok
                | _ -> ()
              done;
              !ok))
    in
    let elapsed_s = (Telemetry.now_us () -. t0) /. 1e6 in
    (Array.fold_left ( + ) 0 tallies, elapsed_s)
  in
  let qps_of d =
    let path =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "expfinder-p1-%d-%d.sock" (Unix.getpid ()) d)
    in
    let ep = Server.Unix_socket path in
    let engine = Engine.create g in
    let ready = Atomic.make false in
    let srv =
      Domain.spawn (fun () ->
          Server.serve ~sample_period:0.0 ~domains:d
            ~on_listen:(fun () -> Atomic.set ready true)
            engine ep)
    in
    while not (Atomic.get ready) do
      Unix.sleepf 0.002
    done;
    let ok, elapsed_s = soak ep in
    (match
       Server.with_connection ep (fun fd ->
           Server.request fd (Telemetry.Json.Obj [ ("op", Telemetry.Json.Str "shutdown") ]))
     with
    | Ok _ | Error _ -> ());
    Domain.join srv;
    check (Printf.sprintf "all %d soak requests answered ok (pool size %d)" (workers * reqs) d)
      (ok = workers * reqs);
    let qps = float_of_int ok /. max elapsed_s 1e-9 in
    record
      ~id:(Printf.sprintf "EXP-P1.domains%d" d)
      ~params:
        [ ("domains", Telemetry.Json.Int d);
          ("workers", Telemetry.Json.Int workers);
          ("requests", Telemetry.Json.Int (workers * reqs));
          ("qps", Telemetry.Json.Float qps) ]
      [ elapsed_s *. 1000.0 ];
    qps
  in
  Printf.printf "  %d client workers x %d requests, |V| = %d, host cores = %d\n" workers reqs n
    (Domain.recommended_domain_count ());
  let base = ref None in
  List.iter
    (fun d ->
      let qps = qps_of d in
      let speedup = match !base with None -> base := Some qps; 1.0 | Some b -> qps /. b in
      Printf.printf "  pool = %d domains: %8.1f req/s  (%.2fx vs 1 domain)\n" d qps speedup)
    pool_sizes

(* EXP-P2: the evaluation-side [?domains] knobs — batched candidate
   computation and the bounded-simulation refinement fixpoint — parallel
   against their own sequential oracle.  Digest equality is gated here
   too (the suite gates it more thoroughly), so the timing rows can
   never drift away from a correct configuration. *)
let exp_parallel_compute ~full =
  header "EXP-P2: parallel vs sequential compute_batch / refinement fixpoint";
  let n = if full then 20_000 else 5_000 in
  let g = Twitter.generate (Prng.create 61) ~n in
  let snap = Snapshot.of_digraph g in
  let count = 12 in
  let patterns =
    Array.of_list (Queries.workload (Prng.create 67) ~count ~simulation:false g)
  in
  let domain_counts = if full then [ 1; 2; 4 ] else [ 1; 2 ] in
  let params =
    [ ("n", Telemetry.Json.Int n); ("queries", Telemetry.Json.Int count) ]
  in
  let base = Candidates.compute_batch ~domains:1 patterns snap in
  let digests r = Array.map Match_relation.digest r in
  List.iter
    (fun d ->
      check
        (Printf.sprintf "compute_batch ~domains:%d digest-equal the sequential oracle" d)
        (digests (Candidates.compute_batch ~domains:d patterns snap) = digests base);
      check
        (Printf.sprintf "refinement ~domains:%d digest-equal the sequential oracle" d)
        (Array.for_all2
           (fun q init ->
             let refine dd =
               Bounded_sim.run_constrained ~domains:dd q snap
                 ~initial:(Match_relation.copy init) ~mutable_set:None
             in
             Match_relation.digest (refine d) = Match_relation.digest (refine 1))
           patterns base))
    domain_counts;
  let medians_cand =
    List.map
      (fun d ->
        let s =
          time_stats (fun () ->
              ignore (Candidates.compute_batch ~domains:d patterns snap : Match_relation.t array))
        in
        record_stats ~id:(Printf.sprintf "EXP-P2.candidates.domains%d" d) ~params s;
        (d, s.Report.median))
      domain_counts
  in
  let medians_refine =
    List.map
      (fun d ->
        let s =
          time_stats_prepared
            ~prepare:(fun () -> Array.map Match_relation.copy base)
            (fun inits ->
              Array.iteri
                (fun i q ->
                  ignore
                    (Bounded_sim.run_constrained ~domains:d q snap ~initial:inits.(i)
                       ~mutable_set:None
                      : Match_relation.t))
                patterns)
        in
        record_stats ~id:(Printf.sprintf "EXP-P2.refine.domains%d" d) ~params s;
        (d, s.Report.median))
      domain_counts
  in
  let row label medians =
    let seq = List.assoc 1 medians in
    List.iter
      (fun (d, m) ->
        Printf.printf "  %-12s domains = %d: %8.2f ms median  (%.2fx vs sequential)\n" label d m
          (seq /. max m 0.001))
      medians
  in
  Printf.printf "  %d queries, |V| = %d, host cores = %d\n" count n
    (Domain.recommended_domain_count ());
  row "candidates" medians_cand;
  row "refine" medians_refine

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per experiment              *)
(* ------------------------------------------------------------------ *)

let bechamel_tests () =
  let open Bechamel in
  let collab = Snapshot.of_digraph (Collab.graph ()) in
  let q = Collab.query () in
  let flat1k = Snapshot.of_digraph (flat_graph ~n:1_000) in
  let qb = bench_query () and qs = bench_query_sim () in
  let twitter1k = Snapshot.of_digraph (Twitter.generate (Prng.create 9) ~n:1_000) in
  let tw_query =
    Pattern.make_exn
      ~nodes:
        [|
          { Pattern.name = "DB"; label = Some (Label.of_string "DB"); pred = Predicate.always };
          { Pattern.name = "ML"; label = Some (Label.of_string "ML"); pred = Predicate.always };
        |]
      ~edges:[ (1, 0, Pattern.Bounded 2) ]
      ~output:0
  in
  let m_tw = Bounded_sim.run tw_query twitter1k in
  let gr_tw = Result_graph.build tw_query twitter1k m_tw in
  let tw_matches = Match_relation.matches m_tw 0 in
  (* Incremental unit update on a persistent tracker: insert then delete
     restores the state, so the function is idempotent across runs. *)
  let inc_g = flat_graph ~n:1_000 in
  let inc = Incremental.create qb inc_g in
  let a, b =
    match Update.random_insertions (Prng.create 3) inc_g 1 with
    | [ Update.Insert_edge (a, b) ] -> (a, b)
    | _ -> (0, 1)
  in
  let org = Synthetic.org (Prng.create 8) ~teams:60 ~team_size:7 in
  let org_csr = Snapshot.of_digraph org in
  let compressed = Compress.compress ~atoms:Queries.atom_universe org_csr in
  let org_query =
    match Queries.workload (Prng.create 12) ~count:1 ~simulation:false org with
    | [ q ] -> q
    | _ -> qb
  in
  let inc_c_g = Digraph.copy org in
  let inc_c = Inc_compress.create ~atoms:Queries.atom_universe inc_c_g in
  let ca, cb =
    match Update.random_insertions (Prng.create 4) inc_c_g 1 with
    | [ Update.Insert_edge (a, b) ] -> (a, b)
    | _ -> (0, 1)
  in
  let engine = Engine.create (Digraph.copy org) in
  let (_ : Engine.answer) = Engine.evaluate engine org_query in
  Test.make_grouped ~name:"expfinder"
    [
      Test.make ~name:"F1-example1-bsim-collab"
        (Staged.stage (fun () -> ignore (Bounded_sim.run q collab : Match_relation.t)));
      Test.make ~name:"F2-ranking-collab"
        (Staged.stage (fun () ->
             let m = Bounded_sim.run q collab in
             let gr = Result_graph.build q collab m in
             ignore
               (Ranking.top_k gr ~output_matches:(Match_relation.matches m 0) ~k:1
                 : (int * Ranking.rank) list)));
      Test.make ~name:"Q1-sim-flat1k"
        (Staged.stage (fun () -> ignore (Simulation.run qs flat1k : Match_relation.t)));
      Test.make ~name:"Q1-bsim-flat1k"
        (Staged.stage (fun () -> ignore (Bounded_sim.run qb flat1k : Match_relation.t)));
      Test.make ~name:"Q2-topk-twitter1k"
        (Staged.stage (fun () ->
             ignore
               (Ranking.top_k gr_tw ~output_matches:tw_matches ~k:10
                 : (int * Ranking.rank) list)));
      Test.make ~name:"I1-unit-update-flat1k"
        (Staged.stage (fun () ->
             ignore
               (Incremental.apply_updates inc inc_g [ Update.Insert_edge (a, b) ]
                 : Incremental.report);
             ignore
               (Incremental.apply_updates inc inc_g [ Update.Delete_edge (a, b) ]
                 : Incremental.report)));
      Test.make ~name:"C1-compress-org500"
        (Staged.stage (fun () ->
             ignore (Compress.compress ~atoms:Queries.atom_universe org_csr : Compress.t)));
      Test.make ~name:"C2-query-compressed-org500"
        (Staged.stage (fun () ->
             ignore (Compress.evaluate compressed org_query : Match_relation.t)));
      Test.make ~name:"C3-maintain-gc-org500"
        (Staged.stage (fun () ->
             ignore
               (Inc_compress.apply_updates inc_c inc_c_g [ Update.Insert_edge (ca, cb) ]
                 : Inc_compress.report);
             ignore
               (Inc_compress.apply_updates inc_c inc_c_g [ Update.Delete_edge (ca, cb) ]
                 : Inc_compress.report)));
      Test.make ~name:"K1-cache-hit"
        (Staged.stage (fun () -> ignore (Engine.evaluate engine org_query : Engine.answer)));
      Test.make ~name:"A1-bsim-naive-flat1k"
        (Staged.stage (fun () ->
             ignore (Bounded_sim.run ~strategy:Bounded_sim.Naive qb flat1k : Match_relation.t)));
      Test.make ~name:"A2-simeq-org500"
        (Staged.stage (fun () ->
             ignore
               (Sim_equivalence.compute (Snapshot.csr org_csr) ~key:(fun v ->
                    Label.to_int (Snapshot.label org_csr v))
                 : int array)));
    ]

let run_bechamel () =
  let open Bechamel in
  let open Toolkit in
  header "Bechamel micro-benchmarks (OLS fit per run)";
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances (bechamel_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        let ns =
          match Analyze.OLS.estimates ols_result with Some (t :: _) -> t | _ -> nan
        in
        (name, ns) :: acc)
      results []
  in
  List.iter
    (fun (name, ns) ->
      if ns >= 1_000_000.0 then Printf.printf "  %-46s %12.3f ms/run\n" name (ns /. 1_000_000.0)
      else if ns >= 1_000.0 then Printf.printf "  %-46s %12.3f us/run\n" name (ns /. 1_000.0)
      else Printf.printf "  %-46s %12.1f ns/run\n" name ns)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("EXP-F1", exp_fig1);
    ("EXP-F2", exp_example2);
    ("EXP-F3", exp_example3);
    ("EXP-F4", exp_fig5);
    ("EXP-B1", exp_semantics);
    ("EXP-B2", exp_batch);
    ("EXP-Q1", exp_query_scaling);
    ("EXP-Q2", exp_topk_scaling);
    ("EXP-I1", exp_incremental_unit);
    ("EXP-I2", exp_incremental_batch);
    ("EXP-C1", exp_compression_ratio);
    ("EXP-C2", exp_compressed_query);
    ("EXP-C3", exp_compression_maintain);
    ("EXP-K1", exp_cache);
    ("EXP-A1", exp_ablation_bsim_strategy);
    ("EXP-A2", exp_ablation_equivalence);
    ("EXP-A3", exp_ablation_area);
    ("EXP-A4", exp_ablation_ball_index);
    ("EXP-A5", exp_ablation_minimise);
    ("EXP-T1", exp_telemetry_cost);
    ("EXP-T2", exp_profile_cost);
    ("EXP-P1", exp_parallel_serve);
    ("EXP-P2", exp_parallel_compute);
  ]

let contains_substring haystack needle =
  let n = String.length haystack and k = String.length needle in
  let rec scan i = i + k <= n && (String.sub haystack i k = needle || scan (i + 1)) in
  scan 0

let () =
  let full = Array.exists (( = ) "--full") Sys.argv in
  let bechamel = Array.exists (( = ) "--bechamel") Sys.argv in
  let flag_arg name =
    let rec scan i =
      if i + 1 >= Array.length Sys.argv then None
      else if Sys.argv.(i) = name then Some Sys.argv.(i + 1)
      else scan (i + 1)
    in
    scan 1
  in
  let only =
    let rec collect i acc =
      if i >= Array.length Sys.argv then acc
      else if Sys.argv.(i) = "--only" && i + 1 < Array.length Sys.argv then
        collect (i + 2) (Sys.argv.(i + 1) :: acc)
      else collect (i + 1) acc
    in
    collect 1 []
  in
  let json_file = flag_arg "--json" in
  if json_file <> None then
    report := Some (Report.create ~mode:(if full then "full" else "quick") ());
  let selected name =
    only = [] || List.exists (fun pat -> contains_substring name pat) only
  in
  Printf.printf "ExpFinder experiment harness (%s mode)\n" (if full then "full" else "quick");
  let t0 = Telemetry.now_us () in
  List.iter
    (fun (name, f) ->
      if selected name then begin
        (* One wall-clock record per experiment, on top of whatever
           finer-grained rows the experiment itself records. *)
        let (), wall_ms = time_once (fun () -> f ~full) in
        record ~id:name [ wall_ms ]
      end)
    experiments;
  if bechamel then run_bechamel ();
  (match (json_file, !report) with
  | Some path, Some r ->
    Report.write r path;
    Printf.printf "\nstructured report: %d records -> %s\n" (List.length (Report.records r)) path
  | _ -> ());
  Printf.printf "\ntotal harness time: %.1f s\n" ((Telemetry.now_us () -. t0) /. 1e6)
