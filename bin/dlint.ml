(* dlint: the Dsafe domain-safety gate as a command-line tool.

   Scans the .cmt/.cmti trees under the given roots (default: the dune
   byte-code annots for lib/ and bin/) and checks every finding against
   the checked-in allowlist.  Exit 0 iff the ratchet holds: no finding
   missing from the allowlist, no stale allowlist entry.

     dlint [--allow FILE] [--mli-allow FILE] [--json FILE]
           [--emit-allow] [--no-fail-stale] [ROOT...]

   Kept free of module-level mutable state on purpose — this binary is
   in its own scan scope. *)

module Dsafe = Expfinder_analysis.Dsafe

let usage () =
  prerr_endline
    "usage: dlint [--allow FILE] [--mli-allow FILE] [--json FILE]\n\
    \             [--emit-allow] [--no-fail-stale] [ROOT...]\n\n\
     Scans _build .cmt/.cmti trees for module-level mutable state, banned\n\
     constructs and read-path signature leaks, then gates the findings\n\
     against the allowlist (default lint/dsafe.allow).\n\n\
    \  --allow FILE      allowlist to gate against (default lint/dsafe.allow)\n\
    \  --mli-allow FILE  shared lint-mli exemption list; listed sources skip\n\
    \                    the mutable-binding inventory (signature-only files)\n\
    \  --json FILE       also write the full report as JSON\n\
    \  --emit-allow      print seed allowlist lines for all findings and exit\n\
    \  --no-fail-stale   tolerate allowlist entries with no matching finding"

let default_roots = [ "_build/default/lib"; "_build/default/bin" ]

(* lint/mli.allow lines are "<path> <justification...>"; only the path
   matters here. *)
let load_mli_allow path =
  match open_in path with
  | exception Sys_error _ -> []
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | exception End_of_file -> List.rev acc
          | line -> (
            let line = String.trim line in
            if line = "" || line.[0] = '#' then go acc
            else
              match String.index_opt line ' ' with
              | Some i -> go (String.sub line 0 i :: acc)
              | None -> go (line :: acc))
        in
        go [])

let main () =
  let rec parse (allow, mli_allow, json, emit, fail_stale, roots) = function
    | [] -> (allow, mli_allow, json, emit, fail_stale, List.rev roots)
    | "--allow" :: v :: rest -> parse (v, mli_allow, json, emit, fail_stale, roots) rest
    | "--mli-allow" :: v :: rest -> parse (allow, v, json, emit, fail_stale, roots) rest
    | "--json" :: v :: rest -> parse (allow, mli_allow, Some v, emit, fail_stale, roots) rest
    | "--emit-allow" :: rest -> parse (allow, mli_allow, json, true, fail_stale, roots) rest
    | "--no-fail-stale" :: rest -> parse (allow, mli_allow, json, emit, false, roots) rest
    | ("--help" | "-h") :: _ ->
      usage ();
      exit 0
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' ->
      Printf.eprintf "dlint: unknown option %s\n" arg;
      usage ();
      exit 2
    | root :: rest -> parse (allow, mli_allow, json, emit, fail_stale, root :: roots) rest
  in
  let allow_path, mli_allow_path, json_path, emit, fail_stale, roots =
    parse ("lint/dsafe.allow", "lint/mli.allow", None, false, true, [])
      (List.tl (Array.to_list Sys.argv))
  in
  let roots = if roots = [] then default_roots else roots in
  let missing = List.filter (fun r -> not (Sys.file_exists r)) roots in
  if missing <> [] then begin
    Printf.eprintf "dlint: no such root(s): %s (run `dune build` first?)\n"
      (String.concat ", " missing);
    exit 2
  end;
  let mli_exempt = load_mli_allow mli_allow_path in
  let findings = Dsafe.scan ~mli_exempt ~roots () in
  if emit then begin
    Dsafe.emit_allow Format.std_formatter findings;
    exit 0
  end;
  let allow =
    match Dsafe.load_allow allow_path with
    | Ok entries -> entries
    | Error e ->
      Printf.eprintf "dlint: cannot read allowlist %s: %s\n" allow_path e;
      exit 2
  in
  let gate = Dsafe.gate ~allow findings in
  Dsafe.pp_table Format.std_formatter gate;
  (match json_path with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc
          (Expfinder_telemetry.Json.to_string ~pretty:true (Dsafe.to_json gate))));
  if Dsafe.gate_ok ~fail_stale gate then exit 0
  else begin
    if gate.Dsafe.unallowed <> [] then
      prerr_endline
        "dlint: unallowed findings — either remove the shared mutable state or add a \
         justified entry to lint/dsafe.allow (seed one with --emit-allow)";
    if fail_stale && gate.Dsafe.stale <> [] then
      prerr_endline
        "dlint: stale allowlist entries — the sites are gone; delete the entries so the \
         ratchet tightens";
    exit 1
  end

let () = main ()
