(* ExpFinder command-line front-end.

   The demo paper drives everything through a GUI; this CLI exposes the
   same actions as subcommands: generate/manage data graphs, run pattern
   queries, select top-K experts, compress graphs, apply updates, and
   walk through the paper's Fig. 1 example.  DOT output substitutes the
   result-graph visualisation. *)

open Expfinder_graph
open Expfinder_pattern
open Expfinder_core
open Expfinder_incremental
open Expfinder_compression
open Expfinder_engine
module Telemetry = Expfinder_telemetry
module Parallel = Expfinder_parallel
module Server = Expfinder_server
module Dashboard = Expfinder_dashboard.Dashboard
module Collab = Expfinder_workload.Collab
module Synthetic = Expfinder_workload.Synthetic
module Twitter = Expfinder_workload.Twitter
module Queries = Expfinder_workload.Queries
module Replay = Expfinder_workload.Replay

let ( let* ) = Result.bind

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

(* --- shared loading helpers --------------------------------------------- *)

let load_graph path =
  match Graph_io.load path with
  | Ok g -> Ok g
  | Error e -> err "cannot load graph %s: %s" path e

let load_pattern path =
  match Pattern_io.load path with
  | Ok p -> Ok p
  | Error e -> err "cannot load pattern %s: %s" path e

let parse_atom_list text =
  if text = "" then Ok []
  else
    let rec loop acc = function
      | [] -> Ok (List.rev acc)
      | token :: rest -> (
        (* Reuse the pattern-file condition syntax, e.g. exp>=5. *)
        match Pattern_io.of_string
                (Printf.sprintf "expfinder-pattern 1\nnode 0 x * %s\noutput 0\n" token)
        with
        | Ok p -> (
          match Predicate.atoms (Pattern.node_spec p 0).Pattern.pred with
          | [ atom ] -> loop (atom :: acc) rest
          | _ -> err "bad condition %S" token)
        | Error e -> err "bad condition %S: %s" token e)
    in
    loop [] (String.split_on_char ',' text)

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc contents)

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

(* Telemetry must be on before the engine runs the query, and the
   profile must be grabbed right after the primary call: later
   result-graph re-evaluations hit the cache and would replace it. *)
let setup_telemetry ~profile ~trace = if profile || trace <> None then Telemetry.set_enabled true

let emit_profile ~profile ~trace = function
  | None -> ()
  | Some p ->
    if profile then Format.printf "%a" Engine.pp_profile p;
    (match trace with
    | None -> ()
    | Some path ->
      (* Requests that ran under an explicit trace context export on
         their own pid lane; ambient single-query runs keep the
         historical single-lane output byte for byte. *)
      let trace_id = if p.Engine.trace_id = "" then None else Some p.Engine.trace_id in
      write_file path (Telemetry.Span.to_chrome_json ?trace_id p.Engine.span);
      Printf.printf "chrome trace written to %s (open in chrome://tracing or ui.perfetto.dev)\n"
        path)

let or_die = function
  | Ok () -> 0
  | Error e ->
    Printf.eprintf "expfinder: %s\n" e;
    1

(* --- gen ------------------------------------------------------------------ *)

let gen verbose kind n avg_degree teams team_size seed output =
  setup_logs verbose;
  or_die
    (let rng = Prng.create seed in
     let* g =
       match kind with
       | "flat" -> Ok (Synthetic.flat rng ~n ~avg_degree)
       | "org" -> Ok (Synthetic.org rng ~teams ~team_size)
       | "twitter" -> Ok (Twitter.generate rng ~n)
       | "collab" -> Ok (Collab.graph ())
       | other -> err "unknown dataset kind %S (flat|org|twitter|collab)" other
     in
     Graph_io.save g output;
     Printf.printf "wrote %s: %d nodes, %d edges\n" output (Digraph.node_count g)
       (Digraph.edge_count g);
     Ok ())

(* --- import ------------------------------------------------------------------ *)

let import verbose edges_file label exp_max seed output =
  setup_logs verbose;
  or_die
    (let rng = Prng.create seed in
     let node_label = Label.of_string label in
     let node_init _ =
       ( node_label,
         if exp_max > 0 then Attrs.of_list [ Attrs.int "exp" (Prng.int rng (exp_max + 1)) ]
         else Attrs.empty )
     in
     let* g =
       match Graph_io.load_edge_list ~node_init edges_file with
       | Ok g -> Ok g
       | Error e -> err "cannot import %s: %s" edges_file e
     in
     Graph_io.save g output;
     Printf.printf "imported %s: %d nodes, %d edges -> %s\n" edges_file
       (Digraph.node_count g) (Digraph.edge_count g) output;
     Ok ())

(* --- stats ------------------------------------------------------------------ *)

(* One-shot HTTP fetch with every transport failure folded into the
   result: [sockaddr] raises [Failure] on unresolvable hosts, which
   previously escaped as an uncaught exception from [stats --server]. *)
let http_get_result spec endpoint path =
  match Server.http_get endpoint path with
  | Ok r -> Ok r
  | Error e -> err "cannot reach %s: %s" spec e
  | exception Unix.Unix_error (e, fn, _) ->
    err "cannot reach %s: %s: %s" spec fn (Unix.error_message e)
  | exception Failure msg -> err "cannot reach %s: %s" spec msg

(* The live half of [stats]: fetch /stats.json from a running
   [expfinder serve] and print the sliding-window SLO summary. *)
let stats_from_server spec json =
  let* endpoint = Server.endpoint_of_string spec in
  let* status, body = http_get_result spec endpoint "/stats.json" in
  let* () = if status = 200 then Ok () else err "server answered HTTP %d" status in
  if json then begin
    print_string body;
    Ok ()
  end
  else
    let* doc =
      match Telemetry.Json.of_string body with
      | Ok doc -> Ok doc
      | Error e -> err "bad /stats.json from %s: %s" spec e
    in
    let open Telemetry.Json in
    let int_field name = Option.bind (member name doc) int_opt in
    Printf.printf "server %s: graph %d, epoch %d\n" spec
      (Option.value ~default:0 (int_field "graph_id"))
      (Option.value ~default:0 (int_field "epoch"));
    (match member "windows" doc with
    | Some (Obj windows) when windows <> [] ->
      List.iter
        (fun (op, summary_json) ->
          match Telemetry.Window.summary_of_json summary_json with
          | Some summary ->
            Format.printf "%-6s %a@." op Telemetry.Window.pp_summary summary
          | None -> ())
        windows
    | _ -> print_endline "no operation windows yet (no requests served)");
    (match member "process" doc with
    | Some (Obj fields) ->
      let gauge name = Option.value ~default:0 (Option.bind (List.assoc_opt name fields) int_opt) in
      Printf.printf "process: rss %.1f MiB, heap %.1f MiB, gc %d minor / %d major, up %ds\n"
        (float_of_int (gauge "process.rss_bytes") /. 1048576.0)
        (float_of_int (gauge "process.heap_words" * (Sys.word_size / 8)) /. 1048576.0)
        (gauge "process.gc_minor_collections")
        (gauge "process.gc_major_collections")
        (gauge "uptime.seconds")
    | _ -> ());
    (* Domain-pool summary (absent from pre-pool servers: stay silent;
       workers=0 means single-domain serving). *)
    (match member "pool" doc with
    | Some pool ->
      let pi name = Option.value ~default:0 (Option.bind (member name pool) int_opt) in
      if pi "workers" > 0 then
        Printf.printf
          "pool: %d worker(s), %d busy, queue %d/%d, %d tasks, writer backlog %d\n"
          (pi "workers") (pi "busy") (pi "queue_depth") (pi "queue_capacity")
          (pi "tasks") (pi "writer_backlog")
      else print_endline "pool: single-domain serving (no worker pool)"
    | None -> ());
    (* Older servers serve /stats.json without the alerts member; stay
       silent rather than failing the whole summary. *)
    (match member "alerts" doc with
    | Some alerts_doc -> (
      match Dashboard.firing_alerts alerts_doc with
      | [] ->
        let n =
          match Option.bind (member "alerts" alerts_doc) list_opt with
          | Some l -> List.length l
          | None -> 0
        in
        if n > 0 then Printf.printf "alerts: %d configured, none firing\n" n
      | firing ->
        List.iter
          (fun a ->
            let str name = Option.value ~default:"?" (Option.bind (member name a) str_opt) in
            let burn name =
              Option.value ~default:nan (Option.bind (member name a) float_opt)
            in
            Printf.printf "ALERT %s (op %s): burn fast %.1fx, slow %.1fx\n" (str "name")
              (str "op") (burn "burn_fast") (burn "burn_slow"))
          firing)
    | None -> ());
    Ok ()

let stats verbose graph_file server query_file json recent =
  setup_logs verbose;
  or_die
    (match server with
    | Some spec -> stats_from_server spec json
    | None ->
      let* graph_file =
        match graph_file with
        | Some f -> Ok f
        | None -> err "stats: either --graph or --server is required"
      in
      let* g = load_graph graph_file in
      let csr = Csr.of_digraph g in
      Format.printf "%a@." Digraph.pp_stats g;
      let labels = Queries.distinct_labels g in
      Printf.printf "labels: %s\n"
        (String.concat ", "
           (Array.to_list (Array.map (fun l -> Label.to_string l) labels)));
      let scc = Scc.compute csr in
      Printf.printf "strongly connected components: %d\n" (Scc.count scc);
      let* () =
        match query_file with
        | None -> Ok ()
        | Some qf ->
          (* Run one telemetry-enabled evaluation and dump the metric
             registry plus the per-query profile. *)
          let* q = load_pattern qf in
          Telemetry.set_enabled true;
          Telemetry.Metrics.reset_all ();
          let engine = Engine.create g in
          let answer = Engine.evaluate engine q in
          Printf.printf "\nquery %s: %d match pairs\n"
            (Pattern.fingerprint q)
            (Match_relation.total answer.Engine.relation);
          if not json then begin
            Format.printf "@.metrics:@.%a@." Telemetry.Metrics.pp ();
            Option.iter (Format.printf "%a" Engine.pp_profile) answer.Engine.profile
          end;
          Ok ()
      in
      (* Machine-readable dump, whether or not a query ran: one combined
         document, so consumers get the registry and the flight recorder
         in a single parse. *)
      if json then
        print_string
          (Telemetry.Json.to_string ~pretty:true
             (Telemetry.Json.Obj
                [
                  ("metrics", Telemetry.Metrics.to_json ());
                  ("recorder", Telemetry.Recorder.to_json ());
                ]));
      if recent && not json then Format.printf "%a" Telemetry.Recorder.pp ();
      Ok ())

(* --- analyze ------------------------------------------------------------------ *)

let analyze verbose pattern_file explain_containment =
  setup_logs verbose;
  or_die
    (let* q = load_pattern pattern_file in
     let diags = Pattern_analysis.analyze q in
     if diags = [] then
       Printf.printf "no diagnostics: %d nodes, %d edges, all satisfiable and connected\n"
         (Pattern.size q) (Pattern.edge_count q)
     else
       List.iter (fun d -> Format.printf "%a@." (Pattern_analysis.pp_diagnostic q) d) diags;
     if Pattern_analysis.statically_empty q then
       print_endline
         "M(Q,G) is empty on every data graph; the planner answers this query without \
          evaluation";
     (match explain_containment with
     | None -> Ok ()
     | Some other_file ->
       let* q2 = load_pattern other_file in
       Printf.printf "contains(this, other): %b\ncontains(other, this): %b\n"
         (Pattern_analysis.contains q q2) (Pattern_analysis.contains q2 q);
       Ok ()))

(* --- explain ------------------------------------------------------------------ *)

let explain_query verbose graph_file pattern_file analyze =
  setup_logs verbose;
  or_die
    (let* g = load_graph graph_file in
     let* q = load_pattern pattern_file in
     let engine = Engine.create g in
     print_string
       (if analyze then Engine.explain_analyze engine q else Engine.explain engine q);
     Ok ())

(* --- bench-diff --------------------------------------------------------------- *)

let bench_diff verbose old_file new_file threshold =
  setup_logs verbose;
  or_die
    (let load path =
       match Telemetry.Report.load path with
       | Ok r -> Ok r
       | Error e -> err "cannot load report %s: %s" path e
     in
     let* baseline = load old_file in
     let* candidate = load new_file in
     let comparisons = Telemetry.Report.diff ~threshold ~baseline ~candidate () in
     Format.printf "%a@." Telemetry.Report.pp_diff comparisons;
     if Telemetry.Report.has_regression comparisons then
       err "performance regression vs %s (threshold +%.0f%%)" old_file (100.0 *. threshold)
     else Ok ())

(* --- query ------------------------------------------------------------------ *)

let print_matches q m =
  if not (Match_relation.is_total m) then print_endline "no match (M(Q,G) is empty)"
  else
    for u = 0 to Pattern.size q - 1 do
      Printf.printf "%s -> [%s]\n" (Pattern.name q u)
        (String.concat "; " (List.map string_of_int (Match_relation.matches m u)))
    done

let query verbose graph_file pattern_file dot_output summary drill explain profile trace check =
  setup_logs verbose;
  setup_telemetry ~profile ~trace;
  if check then Verify.set_differential true;
  or_die
    (let* g = load_graph graph_file in
     let* q = load_pattern pattern_file in
     let engine = Engine.create g in
     if explain then print_string (Engine.explain engine q);
     let answer = Engine.evaluate engine q in
     print_matches q answer.Engine.relation;
     emit_profile ~profile ~trace answer.Engine.profile;
     let result_graph = lazy (Engine.result_graph engine q) in
     if summary then begin
       (* Roll-up: the global structure of the result graph. *)
       let gr = Lazy.force result_graph in
       Format.printf "%a@." (Result_graph.pp_summary q) (Result_graph.roll_up q gr)
     end;
     let* () =
       match drill with
       | None -> Ok ()
       | Some name -> (
         (* Drill-down: per-match detail for one pattern node. *)
         match Pattern.pnode_of_name q name with
         | None -> err "no pattern node named %S" name
         | Some u ->
           let gr = Lazy.force result_graph in
           List.iter
             (fun d -> Format.printf "%a@." Result_graph.pp_detail d)
             (Result_graph.drill_down q (Engine.snapshot engine) gr u);
           Ok ())
     in
     (match dot_output with
     | None -> ()
     | Some path ->
       let gr = Lazy.force result_graph in
       write_file path (Result_graph.to_dot q (Engine.snapshot engine) gr);
       Printf.printf "result graph written to %s\n" path);
     Ok ())

(* --- topk ------------------------------------------------------------------ *)

let topk verbose graph_file pattern_file k dot_output profile trace check =
  setup_logs verbose;
  setup_telemetry ~profile ~trace;
  if check then Verify.set_differential true;
  or_die
    (let* g = load_graph graph_file in
     let* q = load_pattern pattern_file in
     let engine = Engine.create g in
     let experts = Engine.top_k engine q ~k in
     let topk_profile = Engine.last_profile engine in
     if experts = [] then print_endline "no experts found"
     else
       List.iteri
         (fun i { Engine.node; name; rank } ->
           Printf.printf "#%d: node %d%s  rank %s\n" (i + 1) node
             (match name with Some n -> Printf.sprintf " (%s)" n | None -> "")
             (Format.asprintf "%a" Ranking.pp_rank rank))
         experts;
     (match (dot_output, experts) with
     | Some path, { Engine.node = best; _ } :: _ ->
       let gr = Engine.result_graph engine q in
       write_file path (Result_graph.to_dot ~highlight:[ best ] q (Engine.snapshot engine) gr);
       Printf.printf "result graph (top-1 highlighted) written to %s\n" path
     | Some path, [] ->
       let gr = Engine.result_graph engine q in
       write_file path (Result_graph.to_dot q (Engine.snapshot engine) gr)
     | None, _ -> ());
     emit_profile ~profile ~trace topk_profile;
     Ok ())

(* --- batch ------------------------------------------------------------------ *)

(* A batch file either inlines patterns — stanzas each starting with the
   usual "expfinder-pattern" header line — or, when no header appears,
   lists one pattern file path per line (# comments and blanks
   ignored). *)
let load_batch path =
  let ic = open_in path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let lines = String.split_on_char '\n' contents in
  let is_header l =
    String.length l >= 17 && String.equal (String.sub l 0 17) "expfinder-pattern"
  in
  let parse_stanzas () =
    let stanzas =
      List.fold_left
        (fun acc line ->
          if is_header line then [ line ] :: acc
          else match acc with [] -> acc | s :: rest -> (line :: s) :: rest)
        [] lines
      |> List.rev_map (fun s -> String.concat "\n" (List.rev s))
    in
    List.fold_left
      (fun acc text ->
        let* qs = acc in
        match Pattern_io.of_string text with
        | Ok q -> Ok (q :: qs)
        | Error e -> err "bad pattern stanza in %s: %s" path e)
      (Ok []) stanzas
    |> Result.map List.rev
  in
  let parse_file_list () =
    List.fold_left
      (fun acc line ->
        let* qs = acc in
        let line = String.trim line in
        if line = "" || line.[0] = '#' then Ok qs
        else
          let* q = load_pattern line in
          Ok (q :: qs))
      (Ok []) lines
    |> Result.map List.rev
  in
  let* qs = if List.exists is_header lines then parse_stanzas () else parse_file_list () in
  if qs = [] then err "batch file %s holds no patterns" path else Ok qs

let batch verbose graph_file batch_file profile trace check =
  setup_logs verbose;
  setup_telemetry ~profile ~trace;
  if check then Verify.set_differential true;
  or_die
    (let* g = load_graph graph_file in
     let* qs = load_batch batch_file in
     let engine = Engine.create g in
     let answers = Engine.evaluate_batch engine qs in
     List.iteri
       (fun i (q, a) ->
         let via =
           match a.Engine.provenance with
           | Engine.From_cache -> "cache"
           | Engine.From_compressed -> "compressed"
           | Engine.From_index -> "ball-index"
           | Engine.Direct -> "direct"
         in
         Printf.printf "[%d] %s: %s (via %s)\n" i (Pattern.fingerprint q)
           (if a.Engine.total then
              Printf.sprintf "%d match pairs" (Match_relation.total a.Engine.relation)
            else "no match")
           via)
       (List.combine qs answers);
     emit_profile ~profile ~trace (Engine.last_profile engine);
     Ok ())

(* --- compress ------------------------------------------------------------- *)

let compress_cmd verbose graph_file atoms_text output partition_output =
  setup_logs verbose;
  or_die
    (let* g = load_graph graph_file in
     let* atoms = parse_atom_list atoms_text in
     let snap = Snapshot.of_digraph g in
     let compressed = Compress.compress ~atoms snap in
     Printf.printf "original:   %d nodes, %d edges\n" (Snapshot.node_count snap)
       (Snapshot.edge_count snap);
     Printf.printf "compressed: %d nodes, %d edges\n"
       (Snapshot.node_count (Compress.compressed compressed))
       (Snapshot.edge_count (Compress.compressed compressed));
     Printf.printf "reduction:  %.1f%% nodes, %.1f%% edges\n"
       (100.0 *. Compress.node_ratio compressed)
       (100.0 *. Compress.edge_ratio compressed);
     (match output with
     | None -> ()
     | Some path ->
       Graph_io.save (Snapshot.to_digraph (Compress.compressed compressed)) path;
       Printf.printf "compressed graph written to %s\n" path);
     (match partition_output with
     | None -> ()
     | Some path ->
       Compress_io.save compressed path;
       Printf.printf "partition written to %s (load against the original graph)\n" path);
     Ok ())

(* --- update ----------------------------------------------------------------- *)

let parse_edge text =
  match String.split_on_char ',' text with
  | [ u; v ] -> (
    match (int_of_string_opt u, int_of_string_opt v) with
    | Some u, Some v -> Ok (u, v)
    | _ -> err "bad edge %S (expected u,v)" text)
  | _ -> err "bad edge %S (expected u,v)" text

let update verbose graph_file inserts deletes pattern_file output =
  setup_logs verbose;
  or_die
    (let* g = load_graph graph_file in
     let* ins =
       List.fold_left
         (fun acc t -> Result.bind acc (fun l -> Result.map (fun e -> e :: l) (parse_edge t)))
         (Ok []) inserts
     in
     let* del =
       List.fold_left
         (fun acc t -> Result.bind acc (fun l -> Result.map (fun e -> e :: l) (parse_edge t)))
         (Ok []) deletes
     in
     let updates =
       List.map (fun (u, v) -> Update.Delete_edge (u, v)) (List.rev del)
       @ List.map (fun (u, v) -> Update.Insert_edge (u, v)) (List.rev ins)
     in
     let* () =
       match pattern_file with
       | None ->
         let effective = Update.apply_batch g updates in
         Printf.printf "applied %d/%d updates\n" effective (List.length updates);
         Ok ()
       | Some pf ->
         let* q = load_pattern pf in
         let inc = Incremental.create q g in
         let report = Incremental.apply_updates inc g updates in
         Printf.printf "applied %d/%d updates; affected area: %d nodes\n"
           report.Incremental.effective (List.length updates) report.Incremental.area;
         let show tag pairs =
           List.iter
             (fun (u, v) -> Printf.printf "%s (%s, %d)\n" tag (Pattern.name q u) v)
             pairs
         in
         show "+" report.Incremental.added;
         show "-" report.Incremental.removed;
         Ok ()
     in
     (match output with
     | None -> ()
     | Some path ->
       Graph_io.save g path;
       Printf.printf "updated graph written to %s\n" path);
     Ok ())

(* --- serve / client / replay -------------------------------------------------- *)

let serve_run verbose graph_file socket_spec max_connections =
  setup_logs verbose;
  or_die
    (let* g = load_graph graph_file in
     let* endpoint = Server.endpoint_of_string socket_spec in
     let engine = Engine.create g in
     let max_connections = if max_connections <= 0 then max_int else max_connections in
     (* SIGPIPE would kill the server when a client disconnects mid-write;
        the write errors are handled per-connection instead. *)
     (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
     (* Long-horizon telemetry: GC pause attribution via the runtime's
        own event ring (opt out with EXPFINDER_GC_EVENTS=0) and
        statistical allocation attribution when EXPFINDER_MEMPROF_RATE
        is set.  Both stay inert for every other subcommand. *)
     if Sys.getenv_opt "EXPFINDER_GC_EVENTS" <> Some "0" then
       ignore (Telemetry.Gcpause.start () : bool);
     ignore (Telemetry.Alloc.start_from_env () : bool);
     let sample_period =
       match Option.bind (Sys.getenv_opt "EXPFINDER_SAMPLE_PERIOD_S") float_of_string_opt with
       | Some p -> p
       | None -> 1.0
     in
     (* A fatal signal must leave a postmortem artifact before the
        process dies (when EXPFINDER_POSTMORTEM_DIR is set).  Exit codes
        mirror the default dispositions (128 + signo). *)
     let on_signal signo name =
       Sys.Signal_handle
         (fun _ ->
           ignore (Telemetry.Postmortem.write ~reason:("signal " ^ name) () : string option);
           Stdlib.exit (128 + signo))
     in
     if Telemetry.Postmortem.dir () <> None then begin
       (try Sys.set_signal Sys.sigterm (on_signal 15 "SIGTERM") with Invalid_argument _ -> ());
       try Sys.set_signal Sys.sigint (on_signal 2 "SIGINT") with Invalid_argument _ -> ()
     end;
     match
       Server.serve ~max_connections ~sample_period
         ~on_listen:(fun () ->
           Printf.printf "serving %s on %s\n%!" graph_file (Server.endpoint_to_string endpoint))
         engine endpoint
     with
     | () ->
       Telemetry.Qlog.close ();
       Ok ()
     | exception Unix.Unix_error (e, fn, _) -> err "serve: %s: %s" fn (Unix.error_message e))

let client_run verbose socket_spec ping query_files batch_file inserts deletes repeat shutdown
    trace concurrency =
  setup_logs verbose;
  or_die
    (let* endpoint = Server.endpoint_of_string socket_spec in
     let* queries =
       List.fold_left
         (fun acc qf ->
           let* l = acc in
           let* q = load_pattern qf in
           Ok
             (Telemetry.Json.Obj
                [
                  ("op", Telemetry.Json.Str "query");
                  ("pattern", Telemetry.Json.Str (Pattern_io.to_string q));
                ]
             :: l))
         (Ok []) query_files
       |> Result.map List.rev
     in
     let* batch_req =
       match batch_file with
       | None -> Ok []
       | Some bf ->
         let* qs = load_batch bf in
         Ok
           [
             Telemetry.Json.Obj
               [
                 ("op", Telemetry.Json.Str "batch");
                 ( "patterns",
                   Telemetry.Json.Arr
                     (List.map (fun q -> Telemetry.Json.Str (Pattern_io.to_string q)) qs) );
               ];
           ]
     in
     let* update_req =
       let* del =
         List.fold_left
           (fun acc t -> Result.bind acc (fun l -> Result.map (fun e -> e :: l) (parse_edge t)))
           (Ok []) deletes
       in
       let* ins =
         List.fold_left
           (fun acc t -> Result.bind acc (fun l -> Result.map (fun e -> e :: l) (parse_edge t)))
           (Ok []) inserts
       in
       let ops =
         List.map (fun (u, v) -> Update.Delete_edge (u, v)) (List.rev del)
         @ List.map (fun (u, v) -> Update.Insert_edge (u, v)) (List.rev ins)
       in
       if ops = [] then Ok []
       else
         Ok
           [
             Telemetry.Json.Obj
               [
                 ("op", Telemetry.Json.Str "update");
                 ("ops", Telemetry.Json.Arr (List.map Update.to_json ops));
               ];
           ]
     in
     let round = queries @ batch_req @ update_req in
     let requests =
       (if ping then [ Telemetry.Json.Obj [ ("op", Telemetry.Json.Str "ping") ] ] else [])
       @ List.concat (List.init (max 1 repeat) (fun _ -> round))
       @
       if shutdown then [ Telemetry.Json.Obj [ ("op", Telemetry.Json.Str "shutdown") ] ] else []
     in
     let* () =
       if requests = [] then err "client: nothing to send (use --ping, --query, --batch or --shutdown)"
       else Ok ()
     in
     (* With --trace, every traced op carries a client-minted context on
        the wire (minted per send, so --repeat rounds get distinct ids)
        and the server's trace_id answer is surfaced on its own line,
        ready for [expfinder trace show]. *)
     let with_trace req =
       if not trace then req
       else
         match req with
         | Telemetry.Json.Obj fields
           when (match List.assoc_opt "op" fields with
                | Some (Telemetry.Json.Str op) ->
                  op = "query" || op = "batch" || op = "update"
                | _ -> false) ->
           let ctx = Telemetry.Trace.make ~sampled:true () in
           Telemetry.Json.Obj
             (fields @ [ ("trace", Telemetry.Json.Str (Telemetry.Trace.to_wire ctx)) ])
         | other -> other
     in
     let is_shutdown = function
       | Telemetry.Json.Obj fields -> (
         match List.assoc_opt "op" fields with
         | Some (Telemetry.Json.Str "shutdown") -> true
         | _ -> false)
       | _ -> false
     in
     if concurrency > 1 then begin
       (* Soak mode: every worker domain opens its own connection and
          sends the full round sequence; the shutdown request (if any)
          goes on a fresh connection only after all workers joined, so
          no worker races the server teardown.  Per-response output is
          suppressed — the workers only tally — and one summary line
          with the aggregate request rate is printed instead. *)
       let soak = List.filter (fun r -> not (is_shutdown r)) requests in
       let send_round () =
         Server.with_connection endpoint (fun fd ->
             List.fold_left
               (fun (ok, errs) req ->
                 match Server.request fd (with_trace req) with
                 | Error _ -> (ok, errs + 1)
                 | Ok resp ->
                   (match
                      Option.bind (Telemetry.Json.member "ok" resp) (function
                        | Telemetry.Json.Bool b -> Some b
                        | _ -> None)
                    with
                   | Some true -> (ok + 1, errs)
                   | _ -> (ok, errs + 1)))
               (0, 0) soak)
       in
       let t0 = Telemetry.now_us () in
       let tallies =
         Parallel.run ~domains:concurrency (fun _ ->
             try send_round () with Unix.Unix_error _ -> (0, List.length soak))
       in
       let elapsed_s = (Telemetry.now_us () -. t0) /. 1e6 in
       let ok = Array.fold_left (fun a (o, _) -> a + o) 0 tallies in
       let errs = Array.fold_left (fun a (_, e) -> a + e) 0 tallies in
       let total = ok + errs in
       Printf.printf "soak: %d workers, %d requests (%d ok, %d err) in %.3f s = %.1f req/s\n"
         concurrency total ok errs elapsed_s
         (if elapsed_s > 0. then float_of_int total /. elapsed_s else 0.);
       let* () = if errs > 0 then err "client: %d soak requests failed" errs else Ok () in
       if shutdown then
         match
           Server.with_connection endpoint (fun fd ->
               Server.request fd (Telemetry.Json.Obj [ ("op", Telemetry.Json.Str "shutdown") ]))
         with
         | Ok _ -> Ok ()
         | Error e -> err "client: shutdown: %s" e
         | exception Unix.Unix_error (e, fn, _) ->
           err "cannot reach %s: %s: %s" socket_spec fn (Unix.error_message e)
       else Ok ()
     end
     else
       match
         Server.with_connection endpoint (fun fd ->
             List.fold_left
               (fun acc req ->
                 let* () = acc in
                 match Server.request fd (with_trace req) with
                 | Error e -> err "client: %s" e
                 | Ok resp ->
                   print_endline (Telemetry.Json.to_string resp);
                   if trace then
                     Option.iter
                       (Printf.printf "trace %s\n")
                       (Option.bind (Telemetry.Json.member "trace_id" resp) Telemetry.Json.str_opt);
                   (match Option.bind (Telemetry.Json.member "ok" resp) (function
                      | Telemetry.Json.Bool b -> Some b
                      | _ -> None)
                    with
                   | Some false ->
                     err "server refused: %s"
                       (Option.value ~default:"unknown error"
                          (Option.bind
                             (Telemetry.Json.member "error" resp)
                             Telemetry.Json.str_opt))
                   | _ -> Ok ()))
               (Ok ()) requests)
       with
       | result -> result
       | exception Unix.Unix_error (e, fn, _) ->
         err "cannot reach %s: %s: %s" socket_spec fn (Unix.error_message e))

let replay_run verbose graph_file log_file report_file =
  setup_logs verbose;
  or_die
    (let* g = load_graph graph_file in
     let* events =
       match Telemetry.Qlog.load log_file with
       | Ok events -> Ok events
       | Error e -> err "cannot load query log %s: %s" log_file e
     in
     let* () = if events = [] then err "query log %s holds no events" log_file else Ok () in
     (* With EXPFINDER_QLOG still set, re-running the events would append
        fresh entries to the very log being verified. *)
     Telemetry.Qlog.set_sink None;
     let engine = Engine.create g in
     let summary = Replay.run engine events in
     Format.printf "%a@." Replay.pp_summary summary;
     (match report_file with
     | None -> ()
     | Some path ->
       Telemetry.Report.write (Replay.report summary) path;
       Printf.printf "replay report written to %s\n" path);
     if summary.Replay.mismatches > 0 then
       err "replay: %d answer digest mismatch(es) against %s" summary.Replay.mismatches log_file
     else Ok ())

(* --- trace ------------------------------------------------------------------- *)

(* Trace explorer: fetch the server's in-process trace store and either
   tabulate it or render one trace's span tree.  Lookup happens
   client-side over the fetched document so [show] sees exactly what
   [list] printed, races with ring eviction notwithstanding. *)
let trace_explorer verbose socket_spec action id =
  setup_logs verbose;
  or_die
    (let* endpoint = Server.endpoint_of_string socket_spec in
     let* status, body = http_get_result socket_spec endpoint "/traces.json" in
     let* () =
       if status = 200 then Ok () else err "server answered HTTP %d for /traces.json" status
     in
     let* doc =
       match Telemetry.Json.of_string body with
       | Ok d -> Ok d
       | Error e -> err "bad /traces.json from %s: %s" socket_spec e
     in
     let traces =
       match Telemetry.Json.member "traces" doc with
       | Some (Telemetry.Json.Arr items) ->
         List.filter_map Telemetry.Tracestore.stored_of_json items
       | _ -> []
     in
     match action with
     | "list" ->
       if traces = [] then
         print_endline
           "no stored traces (the store keeps errors, p99-exceeding requests and a head sample)"
       else begin
         Printf.printf "%-32s %-6s %-8s %10s  %s\n" "TRACE" "OP" "KEPT" "MS" "QUERY";
         List.iter
           (fun (s : Telemetry.Tracestore.stored) ->
             Printf.printf "%-32s %-6s %-8s %10.3f  %s%s\n" s.Telemetry.Tracestore.strace_id
               s.Telemetry.Tracestore.sop s.Telemetry.Tracestore.skept
               s.Telemetry.Tracestore.sduration_ms s.Telemetry.Tracestore.squery
               (if s.Telemetry.Tracestore.serror then "  [error]" else ""))
           traces
       end;
       Ok ()
     | "show" ->
       let* id = match id with Some i -> Ok i | None -> err "trace show: missing trace ID" in
       let matches (s : Telemetry.Tracestore.stored) =
         let tid = s.Telemetry.Tracestore.strace_id in
         String.length id <= String.length tid && String.sub tid 0 (String.length id) = id
       in
       (match List.filter matches traces with
       | [ s ] ->
         Format.printf "%a@." Telemetry.Tracestore.pp_stored s;
         Ok ()
       | [] -> err "no stored trace matches %S (try 'expfinder trace list')" id
       | _ :: _ :: _ -> err "trace id prefix %S is ambiguous" id)
     | other -> err "unknown trace action %S (expected list or show)" other)

(* --- get / top / postmortem / timeseries ------------------------------------- *)

(* Raw observability scrape: the plumbing `stats --server` and `top`
   share, exposed directly so scripts (and the soak-smoke target) can
   assert on endpoint bodies without parsing our pretty-printers. *)
let get_run verbose socket_spec path =
  setup_logs verbose;
  or_die
    (let* endpoint = Server.endpoint_of_string socket_spec in
     let* status, body = http_get_result socket_spec endpoint path in
     print_string body;
     if status = 200 then Ok () else err "server answered HTTP %d for %s" status path)

let fetch_doc endpoint path =
  match Server.http_get endpoint path with
  | Ok (200, body) -> (
    match Telemetry.Json.of_string body with Ok d -> Some d | Error _ -> None)
  | Ok _ | Error _ -> None
  | exception Unix.Unix_error _ -> None
  | exception Failure _ -> None

let top_run verbose socket_spec interval once as_json width =
  setup_logs verbose;
  or_die
    (let* endpoint = Server.endpoint_of_string socket_spec in
     let poll () =
       ( fetch_doc endpoint "/stats.json",
         fetch_doc endpoint "/timeseries.json",
         fetch_doc endpoint "/alerts.json",
         fetch_doc endpoint "/domains.json" )
     in
     let frame (stats, timeseries, alerts, domains) =
       Dashboard.render ~width ?stats ?timeseries ?alerts ?domains ()
     in
     let first = poll () in
     let* () =
       match first with
       | None, None, None, None ->
         err "cannot reach %s (no observability endpoint answered)" socket_spec
       | _ -> Ok ()
     in
     if once then begin
       (if as_json then
          (* One machine-readable object holding every document the
             dashboard renders, for CI/soak scraping. *)
          let stats, timeseries, alerts, domains = first in
          let field name = function Some d -> [ (name, d) ] | None -> [] in
          print_endline
            (Telemetry.Json.to_string ~pretty:true
               (Telemetry.Json.Obj
                  (field "stats" stats @ field "timeseries" timeseries
                  @ field "alerts" alerts @ field "domains" domains)))
        else print_string (frame first));
       Ok ()
     end
     else
       (* Repaint in place until interrupted; a poll that fails mid-run
          degrades to placeholder cells instead of tearing the loop
          down. *)
       let rec loop docs =
         print_string "\027[2J\027[H";
         print_string (frame docs);
         Printf.printf "\npolling %s every %.1fs — Ctrl-C to quit\n%!" socket_spec interval;
         Unix.sleepf (Float.max 0.1 interval);
         loop (poll ())
       in
       loop first)

(* Fetch the continuous profile as collapsed-stack text.  --top parses
   the lines client-side (the wire format stays pure folded text, so
   it pipes straight into flamegraph.pl / speedscope). *)
let profile_run verbose socket_spec reset top_n =
  setup_logs verbose;
  or_die
    (let* endpoint = Server.endpoint_of_string socket_spec in
     let path = if reset then "/profile.folded?reset=1" else "/profile.folded" in
     let* status, body = http_get_result socket_spec endpoint path in
     let* () = if status = 200 then Ok () else err "server answered HTTP %d" status in
     (match top_n with
     | None -> print_string body
     | Some n ->
       let parse line =
         match String.rindex_opt line ' ' with
         | None -> None
         | Some i ->
           let stack = String.sub line 0 i in
           let ns = String.sub line (i + 1) (String.length line - i - 1) in
           Option.map (fun ns -> (stack, ns)) (float_of_string_opt ns)
       in
       let rows =
         String.split_on_char '\n' body
         |> List.filter_map (fun l ->
                let l = String.trim l in
                if l = "" then None else parse l)
         |> List.sort (fun (_, a) (_, b) -> compare b a)
       in
       if rows = [] then print_endline "profile: no folded stacks yet"
       else begin
         Printf.printf "%12s  %s\n" "self" "stack";
         List.iteri
           (fun i (stack, ns) ->
             if i < n then Printf.printf "%10.3fms  %s\n" (ns /. 1e6) stack)
           rows
       end);
     Ok ())

let postmortem_run verbose file json =
  setup_logs verbose;
  or_die
    (let* doc =
       match Telemetry.Postmortem.load file with
       | Ok d -> Ok d
       | Error e -> err "cannot load postmortem %s: %s" file e
     in
     if json then print_string (Telemetry.Json.to_string ~pretty:true doc)
     else Format.printf "%a@." Telemetry.Postmortem.pp doc;
     Ok ())

let timeseries_run verbose file report_file =
  setup_logs verbose;
  or_die
    (let* ticks =
       match Telemetry.Timeseries.load file with
       | Ok t -> Ok t
       | Error e -> err "cannot load timeseries capture %s: %s" file e
     in
     let* () = if ticks = [] then err "timeseries capture %s holds no ticks" file else Ok () in
     let series = Hashtbl.create 64 in
     List.iter
       (fun t ->
         List.iter
           (fun (name, v) ->
             let n, _ = Option.value ~default:(0, 0.0) (Hashtbl.find_opt series name) in
             Hashtbl.replace series name (n + 1, v))
           t.Telemetry.Timeseries.fields)
       ticks;
     let t0 = (List.hd ticks).Telemetry.Timeseries.ts_unix in
     let tn = (List.hd (List.rev ticks)).Telemetry.Timeseries.ts_unix in
     Printf.printf "%s: %d ticks spanning %.1fs, %d series\n" file (List.length ticks)
       (tn -. t0) (Hashtbl.length series);
     let names = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) series []) in
     List.iter
       (fun name ->
         let n, last = Hashtbl.find series name in
         Printf.printf "  %-40s %5d ticks  last %g\n" name n last)
       names;
     (match report_file with
     | None -> ()
     | Some path ->
       Telemetry.Report.write (Telemetry.Timeseries.report ticks) path;
       Printf.printf "timeseries report written to %s\n" path);
     Ok ())

(* --- demo -------------------------------------------------------------------- *)

let demo verbose () =
  setup_logs verbose;
  let g = Collab.graph () in
  let q = Collab.query () in
  let engine = Engine.create g in
  print_endline "== ExpFinder demo: the paper's Fig. 1 example ==";
  Printf.printf "collaboration network: %d people, %d edges\n" (Digraph.node_count g)
    (Digraph.edge_count g);
  print_endline "\n-- Example 1: M(Q,G) --";
  let answer = Engine.evaluate engine q in
  for u = 0 to Pattern.size q - 1 do
    Printf.printf "%s -> %s\n" (Pattern.name q u)
      (String.concat ", " (List.map Collab.name_of (Match_relation.matches answer.Engine.relation u)))
  done;
  print_endline "\n-- Example 2: top-K ranking --";
  List.iteri
    (fun i { Engine.name; rank; _ } ->
      Printf.printf "#%d %s  f = %s\n" (i + 1)
        (Option.value ~default:"?" name)
        (Format.asprintf "%a" Ranking.pp_rank rank))
    (Engine.top_k engine q ~k:2);
  print_endline "\n-- Example 3: incremental update (insert e1) --";
  Engine.register engine q;
  let src, dst = Collab.e1 in
  (match Engine.apply_updates engine [ Update.Insert_edge (src, dst) ] with
  | [ report ] ->
    Printf.printf "inserted (%s, %s); affected area: %d node(s)\n" (Collab.name_of src)
      (Collab.name_of dst) report.Incremental.area;
    List.iter
      (fun (u, v) -> Printf.printf "new match: (%s, %s)\n" (Pattern.name q u) (Collab.name_of v))
      report.Incremental.added
  | _ -> ());
  0

(* --- cmdliner plumbing -------------------------------------------------------- *)

open Cmdliner

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Enable debug logging.")

let graph_arg =
  Arg.(required & opt (some file) None & info [ "g"; "graph" ] ~docv:"FILE" ~doc:"Data graph file.")

let pattern_arg =
  Arg.(
    required & opt (some file) None & info [ "q"; "query" ] ~docv:"FILE" ~doc:"Pattern query file.")

let dot_arg =
  Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE" ~doc:"Write the result graph in DOT format.")

let profile_arg =
  Arg.(value & flag & info [ "profile" ] ~doc:"Enable telemetry and print the per-query stage tree and counters.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Enable telemetry and write the query's span tree as Chrome trace-event JSON.")

let check_arg =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:
          "Differential self-check: re-evaluate cached/compressed/indexed answers via the \
           direct path and verify the served relation (same as EXPFINDER_CHECK=1).")

let gen_cmd =
  let kind = Arg.(value & opt string "flat" & info [ "kind" ] ~docv:"KIND" ~doc:"flat|org|twitter|collab") in
  let n = Arg.(value & opt int 1000 & info [ "n" ] ~doc:"Node count (flat/twitter).") in
  let deg = Arg.(value & opt int 4 & info [ "avg-degree" ] ~doc:"Average out-degree (flat).") in
  let teams = Arg.(value & opt int 50 & info [ "teams" ] ~doc:"Team count (org).") in
  let tsize = Arg.(value & opt int 8 & info [ "team-size" ] ~doc:"Team size (org).") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed.") in
  let out = Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.") in
  Cmd.v (Cmd.info "gen" ~doc:"Generate a data graph")
    Term.(const gen $ verbose_arg $ kind $ n $ deg $ teams $ tsize $ seed $ out)

let import_cmd =
  let edges = Arg.(required & opt (some file) None & info [ "edges" ] ~docv:"FILE" ~doc:"SNAP-style edge list (src dst per line, # comments).") in
  let label = Arg.(value & opt string "node" & info [ "label" ] ~doc:"Label for all imported nodes.") in
  let exp_max = Arg.(value & opt int 0 & info [ "random-exp" ] ~docv:"MAX" ~doc:"Assign random exp attributes in [0..MAX] (0 = none).") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed for random attributes.") in
  let out = Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output graph file.") in
  Cmd.v (Cmd.info "import" ~doc:"Import a real-world edge list as a data graph")
    Term.(const import $ verbose_arg $ edges $ label $ exp_max $ seed $ out)

let stats_cmd =
  let graph_opt =
    Arg.(
      value
      & opt (some file) None
      & info [ "g"; "graph" ] ~docv:"FILE" ~doc:"Data graph file (omit with $(b,--server)).")
  in
  let server =
    Arg.(
      value
      & opt (some string) None
      & info [ "server" ] ~docv:"ENDPOINT"
          ~doc:
            "Fetch /stats.json from a running $(b,expfinder serve) at $(docv) (a socket path, \
             $(i,PORT) or $(i,HOST:PORT)) and print the live sliding-window summary (QPS, error \
             rate, p50/p95/p99 latency per operation class) instead of graph statistics.")
  in
  let q =
    Arg.(
      value
      & opt (some file) None
      & info [ "q"; "query" ] ~docv:"FILE"
          ~doc:"Also run this query with telemetry on and dump the metric registry and profile.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Dump the metric registry (and, with $(b,--recent), the flight recorder) as JSON \
                instead of the pretty-printed tables.")
  in
  let recent =
    Arg.(
      value & flag
      & info [ "recent" ]
          ~doc:"Dump the flight recorder: the most recent query events with strategy, duration \
                and counter deltas (slow queries flagged per EXPFINDER_SLOW_MS).")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Print statistics of a data graph (and optionally telemetry metrics), or the live \
          window summary of a running server")
    Term.(const stats $ verbose_arg $ graph_opt $ server $ q $ json $ recent)

let explain_cmd =
  let analyze =
    Arg.(
      value & flag
      & info [ "analyze" ]
          ~doc:"Execute the plan and print per-node estimated vs actual candidate counts, \
                matches and refinement removals (misestimates flagged).")
  in
  Cmd.v
    (Cmd.info "explain" ~doc:"Print the query plan, optionally with execution feedback")
    Term.(const explain_query $ verbose_arg $ graph_arg $ pattern_arg $ analyze)

let bench_diff_cmd =
  let old_file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"OLD.json" ~doc:"Baseline report.")
  in
  let new_file =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"NEW.json" ~doc:"Candidate report.")
  in
  let threshold =
    Arg.(
      value & opt float 0.5
      & info [ "threshold" ] ~docv:"FRAC"
          ~doc:"Median growth beyond this fraction (with non-overlapping IQRs) is a regression.")
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:"Compare two bench reports; non-zero exit on performance regressions")
    Term.(const bench_diff $ verbose_arg $ old_file $ new_file $ threshold)

let query_cmd =
  let summary = Arg.(value & flag & info [ "summary" ] ~doc:"Roll-up view of the result graph.") in
  let drill =
    Arg.(value & opt (some string) None & info [ "drill" ] ~docv:"NODE" ~doc:"Drill down into the matches of this pattern node.")
  in
  let explain = Arg.(value & flag & info [ "explain" ] ~doc:"Print the query plan.") in
  Cmd.v (Cmd.info "query" ~doc:"Evaluate a pattern query (bounded simulation)")
    Term.(
      const query $ verbose_arg $ graph_arg $ pattern_arg $ dot_arg $ summary $ drill $ explain
      $ profile_arg $ trace_arg $ check_arg)

let analyze_cmd =
  let contains =
    Arg.(
      value
      & opt (some file) None
      & info [ "contains" ] ~docv:"FILE"
          ~doc:"Also decide containment between this query and the pattern in $(docv).")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Statically analyze a pattern query (Qlint): satisfiability, lints, containment")
    Term.(const analyze $ verbose_arg $ pattern_arg $ contains)

let topk_cmd =
  let k = Arg.(value & opt int 3 & info [ "k" ] ~doc:"Number of experts.") in
  Cmd.v (Cmd.info "topk" ~doc:"Rank matches of the output node and select top-K experts")
    Term.(
      const topk $ verbose_arg $ graph_arg $ pattern_arg $ k $ dot_arg $ profile_arg $ trace_arg
      $ check_arg)

let batch_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:
            "Batch file: either inline patterns (stanzas each opened by the usual \
             $(b,expfinder-pattern) header) or one pattern file path per line.")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Evaluate a batch of pattern queries against one snapshot, sharing candidate scans \
          and containment across the batch")
    Term.(const batch $ verbose_arg $ graph_arg $ file $ profile_arg $ trace_arg $ check_arg)

let compress_cmd_t =
  let atoms =
    Arg.(value & opt string "" & info [ "atoms" ] ~docv:"CONDS" ~doc:"Comma-separated predicate atoms the compression must preserve, e.g. exp>=2,exp>=5.")
  in
  let out = Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the compressed graph.") in
  let part = Arg.(value & opt (some string) None & info [ "save-partition" ] ~docv:"FILE" ~doc:"Persist the partition for later reuse.") in
  Cmd.v (Cmd.info "compress" ~doc:"Compress a graph (query-preserving bisimulation)")
    Term.(const compress_cmd $ verbose_arg $ graph_arg $ atoms $ out $ part)

let update_cmd =
  let ins = Arg.(value & opt_all string [] & info [ "insert" ] ~docv:"U,V" ~doc:"Insert edge (repeatable).") in
  let del = Arg.(value & opt_all string [] & info [ "delete" ] ~docv:"U,V" ~doc:"Delete edge (repeatable).") in
  let q = Arg.(value & opt (some file) None & info [ "q"; "query" ] ~docv:"FILE" ~doc:"Maintain this query incrementally and show the delta.") in
  let out = Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the updated graph.") in
  Cmd.v (Cmd.info "update" ~doc:"Apply edge updates, optionally maintaining a query incrementally")
    Term.(const update $ verbose_arg $ graph_arg $ ins $ del $ q $ out)

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"ENDPOINT"
        ~doc:
          "Server endpoint: a Unix-domain socket path, a bare $(i,PORT) (binds 127.0.0.1), or \
           $(i,HOST:PORT).  A spec containing '/' or starting with '.' is always read as a \
           socket path, even if it looks like $(i,HOST:PORT).")

let serve_cmd =
  let max_connections =
    Arg.(
      value & opt int 0
      & info [ "max-connections" ] ~docv:"N"
          ~doc:"Stop after serving $(docv) connections (0 = serve until a shutdown request).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve pattern queries over a socket, with live /metrics, /healthz and /stats.json"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Loads the graph, builds one engine, and answers newline-delimited JSON requests \
              (ops: query, batch, update, ping, stats, shutdown) until a client sends \
              {\"op\": \"shutdown\"}.  HTTP GETs on the same socket serve /metrics (Prometheus \
              text format), /healthz, /stats.json, /timeseries.json (multi-resolution \
              retention rings) and /alerts.json (SLO burn-rate alerts).";
           `P
             "Set $(b,EXPFINDER_QLOG) to capture every served request in the structured query \
              log, ready for $(b,expfinder replay); $(b,EXPFINDER_TIMESERIES) to persist one \
              JSONL telemetry tick per sampler period; $(b,EXPFINDER_MEMPROF_RATE) to enable \
              statistical allocation attribution; $(b,EXPFINDER_POSTMORTEM_DIR) to write a \
              crash artifact on fatal signals and uncaught exceptions.  SLO objectives tune \
              via EXPFINDER_SLO_* (see $(b,expfinder top)).";
         ])
    Term.(const serve_run $ verbose_arg $ graph_arg $ socket_arg $ max_connections)

let client_cmd =
  let ping = Arg.(value & flag & info [ "ping" ] ~doc:"Send a ping first.") in
  let queries =
    Arg.(
      value & opt_all file []
      & info [ "q"; "query" ] ~docv:"FILE" ~doc:"Send this pattern query (repeatable).")
  in
  let batch =
    Arg.(
      value
      & opt (some file) None
      & info [ "batch" ] ~docv:"FILE"
          ~doc:"Send the patterns of this batch file as one batch request.")
  in
  let inserts =
    Arg.(
      value & opt_all string []
      & info [ "insert" ] ~docv:"U,V"
          ~doc:"Include edge insertion $(docv) in an update request (repeatable).")
  in
  let deletes =
    Arg.(
      value & opt_all string []
      & info [ "delete" ] ~docv:"U,V"
          ~doc:"Include edge deletion $(docv) in an update request (repeatable).")
  in
  let repeat =
    Arg.(
      value & opt int 1
      & info [ "repeat" ] ~docv:"N" ~doc:"Send the query/batch/update round $(docv) times.")
  in
  let shutdown =
    Arg.(value & flag & info [ "shutdown" ] ~doc:"Ask the server to shut down afterwards.")
  in
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:
            "Propagate a client-minted trace context with every query/batch/update and print \
             each response's trace id on its own $(b,trace ID) line (drill down with \
             $(b,expfinder trace show ID)).")
  in
  let concurrency =
    Arg.(
      value & opt int 1
      & info [ "concurrency" ] ~docv:"N"
          ~doc:
            "Soak the server from $(docv) concurrent worker domains, each on its own \
             connection sending the full query/batch/update round $(b,--repeat) times.  \
             Per-response output is replaced by one summary line with the aggregate request \
             rate; $(b,--shutdown) is sent after all workers finish.")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Send requests to a running expfinder serve and print the JSON responses")
    Term.(
      const client_run $ verbose_arg $ socket_arg $ ping $ queries $ batch $ inserts $ deletes
      $ repeat $ shutdown $ trace $ concurrency)

let trace_cmd =
  let action =
    Arg.(
      value & pos 0 string "list"
      & info [] ~docv:"ACTION" ~doc:"$(b,list) (default) or $(b,show) $(i,ID).")
  in
  let id =
    Arg.(
      value
      & pos 1 (some string) None
      & info [] ~docv:"ID" ~doc:"Trace id (or unique prefix) to show.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Explore the trace store of a running expfinder serve"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Fetches /traces.json — the server's bounded in-process trace store (errors and \
              p99-exceeding requests always kept, the rest head-sampled; capacity via \
              EXPFINDER_TRACE_CAP) — and either tabulates the stored traces ($(b,list)) or \
              renders one trace's span tree with per-span self times and the critical path \
              marked ($(b,show) $(i,ID)).  Trace ids come from $(b,expfinder client --trace) \
              responses, /stats.json exemplars, or the qlog.";
         ])
    Term.(const trace_explorer $ verbose_arg $ socket_arg $ action $ id)

let get_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"PATH"
          ~doc:"HTTP path to fetch, e.g. /metrics, /stats.json, /timeseries.json, /alerts.json.")
  in
  Cmd.v
    (Cmd.info "get"
       ~doc:"Fetch one observability endpoint from a running expfinder serve and print the body")
    Term.(const get_run $ verbose_arg $ socket_arg $ path)

let top_cmd =
  let interval =
    Arg.(
      value & opt float 2.0
      & info [ "interval" ] ~docv:"SECONDS" ~doc:"Refresh period (default 2s).")
  in
  let once =
    Arg.(value & flag & info [ "once" ] ~doc:"Paint a single frame and exit (no screen clear).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "With $(b,--once): print one JSON object holding the fetched documents \
             (stats/timeseries/alerts/domains) instead of the rendered frame, for scripted \
             scraping in CI and soaks.")
  in
  let width =
    Arg.(value & opt int 40 & info [ "width" ] ~docv:"COLS" ~doc:"Sparkline width in cells.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Live terminal dashboard for a running expfinder serve"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Polls /stats.json, /timeseries.json, /alerts.json and /domains.json and repaints \
              one frame per interval: per-op QPS, error rate and p99 latency with QPS \
              sparklines, firing SLO alerts with burn rates, RSS / GC-pause trends from the \
              retention rings, and a domains pane (per-worker utilization, queue-depth and \
              writer-backlog sparklines).";
         ])
    Term.(const top_run $ verbose_arg $ socket_arg $ interval $ once $ json $ width)

let profile_cmd =
  let reset =
    Arg.(
      value & flag
      & info [ "reset" ]
          ~doc:"Return the accumulated profile, then clear it (interval profiling).")
  in
  let top_n =
    Arg.(
      value
      & opt (some int) None
      & info [ "top" ] ~docv:"N"
          ~doc:"Print the N hottest stacks by self time instead of raw folded text.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Fetch the continuous folded-stack profile from a running expfinder serve"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Scrapes /profile.folded: every served request's span tree is folded into \
              collapsed-stack lines ($(i,domain-N;frame;frame self-ns)) compatible with \
              flamegraph.pl and speedscope.  Raw output pipes straight into those tools; \
              $(b,--top) summarizes the hottest stacks inline and $(b,--reset) makes \
              consecutive scrapes cover disjoint intervals.";
         ])
    Term.(const profile_run $ verbose_arg $ socket_arg $ reset $ top_n)

let postmortem_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Postmortem artifact written to EXPFINDER_POSTMORTEM_DIR.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the raw artifact instead of the summary.")
  in
  Cmd.v
    (Cmd.info "postmortem"
       ~doc:"Pretty-print a crash artifact: alerts, windows, GC state and the flight recorder")
    Term.(const postmortem_run $ verbose_arg $ file $ json)

let timeseries_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"JSONL capture written via EXPFINDER_TIMESERIES.")
  in
  let report =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:
            "Convert the capture to a bench report (one record per series), so two captures \
             diff under $(b,expfinder bench-diff).")
  in
  Cmd.v
    (Cmd.info "timeseries" ~doc:"Summarize a telemetry timeseries capture (EXPFINDER_TIMESERIES)")
    Term.(const timeseries_run $ verbose_arg $ file $ report)

let replay_cmd =
  let log_file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"LOG.jsonl" ~doc:"Query log captured via EXPFINDER_QLOG.")
  in
  let report =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:
            "Write the replay latencies as a bench report (schema shared with the bench \
             harness, so two replay reports diff under $(b,expfinder bench-diff)).")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Re-run a captured query log and verify every answer digest matches"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Replays the log in order against a fresh engine over the given graph: queries and \
              batches re-evaluate their recorded patterns and must reproduce the recorded \
              answer digests byte for byte; updates re-apply their recorded ΔG.  Exits non-zero \
              on any digest mismatch.";
         ])
    Term.(const replay_run $ verbose_arg $ graph_arg $ log_file $ report)

let demo_cmd = Cmd.v (Cmd.info "demo" ~doc:"Walk through the paper's Fig. 1 example") Term.(const demo $ verbose_arg $ const ())

let main_cmd =
  let doc = "finding experts in social networks by graph pattern matching" in
  Cmd.group (Cmd.info "expfinder" ~version:"1.0.0" ~doc)
    [
      gen_cmd;
      import_cmd;
      stats_cmd;
      analyze_cmd;
      explain_cmd;
      bench_diff_cmd;
      query_cmd;
      batch_cmd;
      topk_cmd;
      compress_cmd_t;
      update_cmd;
      serve_cmd;
      client_cmd;
      trace_cmd;
      get_cmd;
      top_cmd;
      profile_cmd;
      postmortem_cmd;
      timeseries_cmd;
      replay_cmd;
      demo_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
