(* Compression: bisimulation partitions, query preservation on the
   compressed graph, incremental maintenance, and the simulation-
   equivalence ablation scheme. *)

open Expfinder_graph
open Expfinder_pattern
open Expfinder_core
open Expfinder_incremental
open Expfinder_compression
module Collab = Expfinder_workload.Collab

let labels = Array.map Label.of_string [| "A"; "B"; "C" |]

let random_graph ?(max_n = 30) rng =
  let n = 1 + Prng.int rng max_n in
  let m = Prng.int rng (3 * n) in
  Generators.erdos_renyi rng ~n ~m (fun _ ->
      (Prng.choose rng labels, Attrs.of_list [ Attrs.int "exp" (Prng.int rng 4) ]))

let universe =
  [
    { Predicate.attr = "exp"; op = Predicate.Ge; value = Attr.Int 1 };
    { Predicate.attr = "exp"; op = Predicate.Ge; value = Attr.Int 2 };
    { Predicate.attr = "exp"; op = Predicate.Ge; value = Attr.Int 3 };
  ]

let random_pattern rng ~simulation =
  let c =
    {
      Pattern_gen.default with
      nodes = 1 + Prng.int rng 4;
      extra_edges = Prng.int rng 3;
      max_bound = 3;
      condition_prob = 0.5;
      condition_attr = "exp";
      condition_range = (1, 3);
    }
  in
  let c = if simulation then Pattern_gen.simulation_config c else c in
  Pattern_gen.generate rng c ~labels

(* --- partition structure ------------------------------------------- *)

let test_two_diamonds_merge () =
  (* Two isomorphic, disjoint diamonds must collapse into one. *)
  let a = Label.of_string "A" and b = Label.of_string "B" and c = Label.of_string "C" in
  let labels = [| a; b; b; c; a; b; b; c |] in
  let edges = [ (0, 1); (0, 2); (1, 3); (2, 3); (4, 5); (4, 6); (5, 7); (6, 7) ] in
  let g = Csr.of_digraph (Digraph.of_edges ~labels edges) in
  let block_of = Bisimulation.compute g ~key:(fun v -> Label.to_int (Csr.label g v)) in
  Alcotest.(check int) "3 blocks" 3 (Bisimulation.block_count block_of);
  Alcotest.(check int) "roots merged" block_of.(0) block_of.(4);
  Alcotest.(check int) "middles merged" block_of.(1) block_of.(6);
  Alcotest.(check int) "sinks merged" block_of.(3) block_of.(7);
  Alcotest.(check bool) "stable" true
    (Bisimulation.is_stable g ~key:(fun v -> Label.to_int (Csr.label g v)) block_of)

let test_distinguished_by_depth () =
  (* A -> B -> B -> C: the two B nodes differ (one reaches C directly). *)
  let a = Label.of_string "A" and b = Label.of_string "B" and c = Label.of_string "C" in
  let labels = [| a; b; b; c |] in
  let g = Csr.of_digraph (Digraph.of_edges ~labels [ (0, 1); (1, 2); (2, 3) ]) in
  let block_of = Bisimulation.compute g ~key:(fun v -> Label.to_int (Csr.label g v)) in
  Alcotest.(check int) "4 blocks" 4 (Bisimulation.block_count block_of);
  Alcotest.(check bool) "B nodes split" true (block_of.(1) <> block_of.(2))

let prop_partition_stable seed =
  let rng = Prng.create seed in
  let g = Csr.of_digraph (random_graph rng) in
  let key v = Label.to_int (Csr.label g v) in
  Bisimulation.is_stable g ~key (Bisimulation.compute g ~key)

(* --- query preservation --------------------------------------------- *)

let prop_query_preserved ~simulation seed =
  let rng = Prng.create seed in
  let g = Snapshot.of_digraph (random_graph rng) in
  let compressed = Compress.compress ~atoms:universe g in
  let pattern = random_pattern rng ~simulation in
  if not (Compress.supports compressed pattern) then true
  else begin
    let direct =
      if Pattern.is_simulation_pattern pattern then Simulation.run pattern g
      else Bounded_sim.run pattern g
    in
    Match_relation.equal direct (Compress.evaluate compressed pattern)
  end

let test_collab_compression () =
  let g = Snapshot.of_digraph (Collab.graph ()) in
  let atoms =
    [
      { Predicate.attr = "exp"; op = Predicate.Ge; value = Attr.Int 2 };
      { Predicate.attr = "exp"; op = Predicate.Ge; value = Attr.Int 3 };
      { Predicate.attr = "exp"; op = Predicate.Ge; value = Attr.Int 5 };
    ]
  in
  let compressed = Compress.compress ~atoms g in
  Alcotest.(check bool) "supports Q" true (Compress.supports compressed (Collab.query ()));
  let direct = Bounded_sim.run (Collab.query ()) g in
  Alcotest.(check bool) "Q preserved" true
    (Match_relation.equal direct (Compress.evaluate compressed (Collab.query ())))

let test_unsupported_pattern_rejected () =
  let g = Snapshot.of_digraph (Collab.graph ()) in
  let compressed = Compress.compress g in
  (* Q uses exp conditions, none of which are in the empty universe. *)
  Alcotest.(check bool) "not supported" false
    (Compress.supports compressed (Collab.query ()));
  Alcotest.check_raises "evaluate rejects"
    (Invalid_argument "Compress.evaluate_compressed: pattern conditions outside the atom universe")
    (fun () -> ignore (Compress.evaluate compressed (Collab.query ()) : Match_relation.t))

let test_ratio_bounds () =
  let rng = Prng.create 11 in
  let g = Snapshot.of_digraph (random_graph rng) in
  let compressed = Compress.compress g in
  let r = Compress.node_ratio compressed in
  Alcotest.(check bool) "ratio in [0,1)" true (r >= 0.0 && r < 1.0);
  Alcotest.(check int) "members partition nodes" (Snapshot.node_count g)
    (List.concat_map (Compress.members compressed)
       (List.init (Compress.block_count compressed) Fun.id)
    |> List.length)

(* --- incremental maintenance ---------------------------------------- *)

let prop_maintained_gc_preserves seed =
  let rng = Prng.create seed in
  let g = random_graph rng in
  let inc = Inc_compress.create ~atoms:universe g in
  let ok = ref true in
  for _round = 1 to 3 do
    let updates = Update.random_mixed rng g (1 + Prng.int rng 6) in
    let _ = Inc_compress.apply_updates inc g updates in
    let compressed = Inc_compress.current inc in
    let pattern = random_pattern rng ~simulation:(Prng.bool rng) in
    if Compress.supports compressed pattern then begin
      let csr = Inc_compress.snapshot inc in
      let direct =
        if Pattern.is_simulation_pattern pattern then Simulation.run pattern csr
        else Bounded_sim.run pattern csr
      in
      if not (Match_relation.equal direct (Compress.evaluate compressed pattern)) then
        ok := false
    end
  done;
  !ok

let prop_maintained_no_coarser seed =
  (* The maintained partition may be finer than optimal, never coarser. *)
  let rng = Prng.create seed in
  let g = random_graph rng in
  let inc = Inc_compress.create g in
  let updates = Update.random_mixed rng g (1 + Prng.int rng 6) in
  let report = Inc_compress.apply_updates inc g updates in
  report.blocks_after >= Inc_compress.fresh_block_count inc

(* --- simulation-equivalence ablation -------------------------------- *)

let prop_sim_equiv_preserves_sim seed =
  let rng = Prng.create seed in
  let g = Snapshot.of_digraph (random_graph ~max_n:20 rng) in
  let key v = Label.to_int (Snapshot.label g v) in
  let partition = Sim_equivalence.compute (Snapshot.csr g) ~key in
  let compressed = Compress.of_partition g partition in
  let pattern =
    random_pattern rng ~simulation:true
  in
  (* Label-only pattern: strip conditions so the empty universe applies. *)
  let nodes =
    Array.init (Pattern.size pattern) (fun u ->
        { (Pattern.node_spec pattern u) with Pattern.pred = Predicate.always })
  in
  let pattern = Pattern.make_exn ~nodes ~edges:(Pattern.edges pattern) ~output:0 in
  let direct = Simulation.run pattern g in
  Match_relation.equal direct (Compress.evaluate compressed pattern)

let prop_sim_equiv_at_least_as_coarse seed =
  let rng = Prng.create seed in
  let g = Csr.of_digraph (random_graph ~max_n:20 rng) in
  let key v = Label.to_int (Csr.label g v) in
  let bisim = Bisimulation.block_count (Bisimulation.compute g ~key) in
  let simeq = Bisimulation.block_count (Sim_equivalence.compute g ~key) in
  simeq <= bisim

(* --- persistence ------------------------------------------------------ *)

let test_compress_io_roundtrip () =
  let g = Snapshot.of_digraph (Collab.graph ()) in
  let atoms =
    [
      { Predicate.attr = "exp"; op = Predicate.Ge; value = Attr.Int 2 };
      { Predicate.attr = "exp"; op = Predicate.Ge; value = Attr.Int 5 };
    ]
  in
  let compressed = Compress.compress ~atoms g in
  match Compress_io.of_string g (Compress_io.to_string compressed) with
  | Error e -> Alcotest.fail e
  | Ok loaded ->
    Alcotest.(check int) "block count" (Compress.block_count compressed)
      (Compress.block_count loaded);
    Alcotest.(check (list (pair int int))) "partition preserved"
      (Array.to_list (Compress.partition compressed) |> List.mapi (fun i b -> (i, b)))
      (Array.to_list (Compress.partition loaded) |> List.mapi (fun i b -> (i, b)));
    Alcotest.(check int) "atoms preserved" 2 (List.length (Compress.atoms loaded))

let test_compress_io_rejects_wrong_graph () =
  let g = Snapshot.of_digraph (Collab.graph ()) in
  let compressed = Compress.compress g in
  let other =
    let dg = Collab.graph () in
    ignore (Digraph.add_node dg (Label.of_string "SA") : int);
    Snapshot.of_digraph dg
  in
  match Compress_io.of_string other (Compress_io.to_string compressed) with
  | Ok _ -> Alcotest.fail "accepted wrong graph"
  | Error _ -> ()

let test_compress_io_rejects_tampered_partition () =
  let g = Snapshot.of_digraph (Collab.graph ()) in
  let compressed = Compress.compress g in
  (* Merge two nodes with different labels by hand: must be rejected. *)
  let text = Compress_io.to_string compressed in
  let tampered =
    String.split_on_char '\n' text
    |> List.map (fun line ->
           if String.length line > 6 && String.sub line 0 6 = "blocks" then
             (* all nodes in block 0 *)
             "blocks 0 0 0 0 0 0 0 0 0"
           else line)
    |> String.concat "\n"
  in
  match Compress_io.of_string g tampered with
  | Ok _ -> Alcotest.fail "accepted unsound partition"
  | Error _ -> ()

let test_compress_io_bad_inputs () =
  let g = Snapshot.of_digraph (Collab.graph ()) in
  List.iter
    (fun text ->
      match Compress_io.of_string g text with
      | Ok _ -> Alcotest.fail "accepted malformed input"
      | Error _ -> ())
    [
      "";
      "wrong header";
      "expfinder-compressed 1\nnodes 9\n";
      (* missing blocks *)
      "expfinder-compressed 1\nnodes 2\nblocks 0 1 1";
      (* too many *)
      "expfinder-compressed 1\nnodes 9\nfrobnicate";
    ]

let qcheck_cases =
  [
    QCheck.Test.make ~count:50 ~name:"partition is stable" QCheck.small_int (fun s ->
        prop_partition_stable (s + 1));
    QCheck.Test.make ~count:50 ~name:"sim query preserved" QCheck.small_int (fun s ->
        prop_query_preserved ~simulation:true (s + 1));
    QCheck.Test.make ~count:40 ~name:"bsim query preserved" QCheck.small_int (fun s ->
        prop_query_preserved ~simulation:false (s + 1));
    QCheck.Test.make ~count:30 ~name:"maintained Gc preserves queries" QCheck.small_int
      (fun s -> prop_maintained_gc_preserves (s + 1));
    QCheck.Test.make ~count:30 ~name:"maintained partition never coarser" QCheck.small_int
      (fun s -> prop_maintained_no_coarser (s + 1));
    QCheck.Test.make ~count:30 ~name:"sim-equivalence preserves sim queries"
      QCheck.small_int (fun s -> prop_sim_equiv_preserves_sim (s + 1));
    QCheck.Test.make ~count:30 ~name:"sim-equivalence merges at least as much"
      QCheck.small_int (fun s -> prop_sim_equiv_at_least_as_coarse (s + 1));
  ]

let () =
  Alcotest.run "compression"
    [
      ( "bisimulation",
        [
          Alcotest.test_case "two diamonds merge" `Quick test_two_diamonds_merge;
          Alcotest.test_case "depth distinguishes" `Quick test_distinguished_by_depth;
        ] );
      ( "compress",
        [
          Alcotest.test_case "collab graph" `Quick test_collab_compression;
          Alcotest.test_case "unsupported rejected" `Quick test_unsupported_pattern_rejected;
          Alcotest.test_case "ratio bounds" `Quick test_ratio_bounds;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "roundtrip" `Quick test_compress_io_roundtrip;
          Alcotest.test_case "wrong graph rejected" `Quick test_compress_io_rejects_wrong_graph;
          Alcotest.test_case "tampered rejected" `Quick test_compress_io_rejects_tampered_partition;
          Alcotest.test_case "bad inputs" `Quick test_compress_io_bad_inputs;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_cases);
    ]
