(* End-to-end serving-path tests: run `expfinder serve` as a subprocess
   with the query log on, drive it over its socket (JSONL queries,
   batches, updates, plus the HTTP observability endpoints), shut it
   down, and close the loop with `expfinder replay` + `bench-diff` on
   the captured log. *)

open Expfinder_telemetry
module Server = Expfinder_server
module Dashboard = Expfinder_dashboard.Dashboard

let exe =
  let candidates =
    [
      Filename.concat (Filename.dirname Sys.executable_name) "../bin/expfinder.exe";
      "_build/default/bin/expfinder.exe";
      "../bin/expfinder.exe";
    ]
  in
  List.find_opt Sys.file_exists candidates

let with_tmpdir f =
  let dir = Filename.temp_file "expfinder-serve" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun file -> Sys.remove (Filename.concat dir file)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let run exe args =
  let cmd = Filename.quote_command exe args ^ " 2>/dev/null" in
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  let code = match status with Unix.WEXITED c -> c | _ -> -1 in
  (code, Buffer.contents buf)

let contains haystack needle =
  let n = String.length haystack and k = String.length needle in
  let rec scan i = i + k <= n && (String.sub haystack i k = needle || scan (i + 1)) in
  scan 0

let paper_query =
  "expfinder-pattern 1\n\
   node 0 SA SA exp>=int:5\n\
   node 1 SD SD exp>=int:2\n\
   node 2 BA BA exp>=int:3\n\
   node 3 ST ST exp>=int:2\n\
   edge 0 1 2\n\
   edge 1 0 2\n\
   edge 0 2 3\n\
   edge 3 2 1\n\
   output 0\n"

(* Start `expfinder serve` as a child process (stdout/stderr to
   /dev/null, EXPFINDER_QLOG set), wait until it answers a ping, run
   [f], and always reap the child. *)
let with_server ?(extra_env = []) exe ~graph ~socket ~qlog f =
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let env =
    Array.append (Unix.environment ())
      (Array.of_list (Printf.sprintf "EXPFINDER_QLOG=%s" qlog :: extra_env))
  in
  let pid =
    Unix.create_process_env exe
      [| exe; "serve"; "-g"; graph; "--socket"; socket |]
      env Unix.stdin devnull devnull
  in
  Unix.close devnull;
  let endpoint =
    match Server.endpoint_of_string socket with
    | Ok ep -> ep
    | Error _ -> Server.Unix_socket socket
  in
  Fun.protect
    ~finally:(fun () ->
      (* Normal exit path is the shutdown op; the kill only fires when
         an assertion failed mid-flight. *)
      (match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ ->
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] pid)
      | _ -> ()))
    (fun () ->
      let rec wait_ready attempts =
        if attempts = 0 then Alcotest.fail "server did not come up within 10s"
        else
          match
            Server.with_connection endpoint (fun fd ->
                Server.request fd (Json.Obj [ ("op", Json.Str "ping") ]))
          with
          | Ok _ -> ()
          | Error _ -> Unix.sleepf 0.1; wait_ready (attempts - 1)
          | exception Unix.Unix_error (_, _, _) ->
            Unix.sleepf 0.1;
            wait_ready (attempts - 1)
      in
      wait_ready 100;
      f endpoint)

let ok_of json =
  match Option.bind (Json.member "ok" json) (function Json.Bool b -> Some b | _ -> None) with
  | Some b -> b
  | None -> false

let str_field name json = Option.bind (Json.member name json) Json.str_opt

let request_exn fd req =
  match Server.request fd req with
  | Ok resp -> resp
  | Error e -> Alcotest.failf "request failed: %s" e

(* The acceptance-criteria flow: >= 50 queries over the socket, live
   /metrics with nonzero QPS and a p95 quantile, /healthz, /stats.json,
   then shutdown and a digest-identical replay whose reports bench-diff
   cleanly. *)
let serve_e2e exe () =
  with_tmpdir (fun dir ->
      let graph = Filename.concat dir "collab.graph" in
      let socket = Filename.concat dir "serve.sock" in
      let qlog = Filename.concat dir "qlog.jsonl" in
      let code, _ = run exe [ "gen"; "--kind"; "collab"; "-o"; graph ] in
      Alcotest.(check int) "gen exits 0" 0 code;
      with_server exe ~graph ~socket ~qlog
        ~extra_env:[ "EXPFINDER_SAMPLE_PERIOD_S=0.2" ]
        (fun endpoint ->
          (* 50 queries on one connection; every answer must agree. *)
          let digests =
            Server.with_connection endpoint (fun fd ->
                List.init 50 (fun _ ->
                    let resp =
                      request_exn fd
                        (Json.Obj
                           [ ("op", Json.Str "query"); ("pattern", Json.Str paper_query) ])
                    in
                    Alcotest.(check bool) "query ok" true (ok_of resp);
                    match str_field "digest" resp with
                    | Some d -> d
                    | None -> Alcotest.fail "query response carries no digest"))
          in
          (match digests with
          | first :: rest ->
            Alcotest.(check bool) "all 50 digests agree" true
              (List.for_all (String.equal first) rest)
          | [] -> Alcotest.fail "no answers");
          (* A batch and an update, so the replay covers every event
             kind.  The update inserts the paper's e1 edge. *)
          Server.with_connection endpoint (fun fd ->
              let resp =
                request_exn fd
                  (Json.Obj
                     [
                       ("op", Json.Str "batch");
                       ("patterns", Json.Arr [ Json.Str paper_query; Json.Str paper_query ]);
                     ])
              in
              Alcotest.(check bool) "batch ok" true (ok_of resp);
              (match Option.bind (Json.member "answers" resp) Json.list_opt with
              | Some answers -> Alcotest.(check int) "batch answers" 2 (List.length answers)
              | None -> Alcotest.fail "batch response carries no answers");
              let resp =
                request_exn fd
                  (Json.Obj
                     [
                       ("op", Json.Str "update");
                       ( "ops",
                         Json.Arr
                           [
                             Json.Obj
                               [ ("op", Json.Str "+"); ("u", Json.Int 1); ("v", Json.Int 5) ];
                           ] );
                     ])
              in
              Alcotest.(check bool) "update ok" true (ok_of resp);
              let resp =
                request_exn fd
                  (Json.Obj [ ("op", Json.Str "query"); ("pattern", Json.Str paper_query) ])
              in
              Alcotest.(check bool) "post-update query ok" true (ok_of resp));
          (* Malformed requests answer ok:false without killing the
             server. *)
          Server.with_connection endpoint (fun fd ->
              let resp = request_exn fd (Json.Obj [ ("op", Json.Str "nonsense") ]) in
              Alcotest.(check bool) "unknown op refused" false (ok_of resp);
              let resp =
                request_exn fd
                  (Json.Obj [ ("op", Json.Str "query"); ("pattern", Json.Str "not a pattern") ])
              in
              Alcotest.(check bool) "bad pattern refused" false (ok_of resp));
          (* HTTP observability endpoints. *)
          (match Server.http_get endpoint "/healthz" with
          | Ok (status, body) ->
            Alcotest.(check int) "/healthz status" 200 status;
            Alcotest.(check bool) "/healthz body" true (contains body "ok")
          | Error e -> Alcotest.failf "/healthz: %s" e);
          (match Server.http_get endpoint "/metrics" with
          | Ok (status, body) ->
            Alcotest.(check int) "/metrics status" 200 status;
            Alcotest.(check bool) "query window exported" true
              (contains body "expfinder_qps{op=\"query\"}");
            Alcotest.(check bool) "p95 latency exported" true
              (contains body "expfinder_latency_ms{op=\"query\",quantile=\"0.95\"}");
            Alcotest.(check bool) "engine counters exported" true
              (contains body "expfinder_engine_queries");
            (* The QPS gauge must be live (nonzero) after 50 queries. *)
            let nonzero_qps =
              String.split_on_char '\n' body
              |> List.exists (fun line ->
                     match String.index_opt line ' ' with
                     | Some i when String.sub line 0 i = "expfinder_qps{op=\"query\"}" ->
                       (match
                          float_of_string_opt
                            (String.sub line (i + 1) (String.length line - i - 1))
                        with
                       | Some v -> v > 0.0
                       | None -> false)
                     | _ -> false)
            in
            Alcotest.(check bool) "query QPS is nonzero" true nonzero_qps
          | Error e -> Alcotest.failf "/metrics: %s" e);
          (match Server.http_get endpoint "/stats.json" with
          | Ok (status, body) -> (
            Alcotest.(check int) "/stats.json status" 200 status;
            match Json.of_string body with
            | Error e -> Alcotest.failf "/stats.json does not parse: %s" e
            | Ok doc -> (
              match
                Option.bind (Json.member "windows" doc) (Json.member "query")
                |> Option.map Window.summary_of_json
              with
              | Some (Some s) ->
                Alcotest.(check bool) "window counted the queries" true (s.Window.count >= 50)
              | _ -> Alcotest.fail "/stats.json has no query window"))
          | Error e -> Alcotest.failf "/stats.json: %s" e);
          (* /timeseries.json: wait for the sampler thread's first tick
             (0.2s period here), then check the multi-resolution shape. *)
          let rec wait_timeseries attempts =
            if attempts = 0 then Alcotest.fail "sampler produced no timeseries within 10s"
            else
              match Server.http_get endpoint "/timeseries.json" with
              | Ok (200, body) -> (
                match Json.of_string body with
                | Error e -> Alcotest.failf "/timeseries.json does not parse: %s" e
                | Ok doc -> (
                  let sampled =
                    match Option.bind (Json.member "resolutions" doc) Json.list_opt with
                    | Some (finest :: _) -> (
                      match Option.bind (Json.member "series" finest) (function
                        | Json.Obj kvs -> Some kvs
                        | _ -> None)
                      with
                      | Some (_ :: _) -> true
                      | _ -> false)
                    | _ -> false
                  in
                  if sampled then doc
                  else begin
                    Unix.sleepf 0.1;
                    wait_timeseries (attempts - 1)
                  end))
              | Ok (status, _) -> Alcotest.failf "/timeseries.json status %d" status
              | Error e -> Alcotest.failf "/timeseries.json: %s" e
          in
          let ts_doc = wait_timeseries 100 in
          (match Option.bind (Json.member "resolutions" ts_doc) Json.list_opt with
          | Some rings ->
            Alcotest.(check bool) "at least three retention resolutions" true
              (List.length rings >= 3);
            let res_of r =
              match Option.bind (Json.member "res_s" r) Json.int_opt with
              | Some s -> s
              | None -> Alcotest.fail "ring without res_s"
            in
            let res = List.map res_of rings in
            Alcotest.(check (list int)) "resolution ladder" [ 1; 10; 60 ] res
          | None -> Alcotest.fail "/timeseries.json has no resolutions");
          (match Option.bind (Json.member "series_kinds" ts_doc) (function
             | Json.Obj kvs -> Some (List.map fst kvs)
             | _ -> None)
          with
          | Some names ->
            Alcotest.(check bool) "query qps series is sampled" true
              (List.mem "win.query.qps" names)
          | None -> Alcotest.fail "/timeseries.json has no series_kinds");
          (* /alerts.json: default objectives are configured and the
             healthy run must not be firing. *)
          (match Server.http_get endpoint "/alerts.json" with
          | Ok (status, body) -> (
            Alcotest.(check int) "/alerts.json status" 200 status;
            match Json.of_string body with
            | Error e -> Alcotest.failf "/alerts.json does not parse: %s" e
            | Ok doc -> (
              match Option.bind (Json.member "alerts" doc) Json.list_opt with
              | Some alerts ->
                Alcotest.(check bool) "objectives configured" true (alerts <> []);
                Alcotest.(check int) "no alert fires on a healthy run" 0
                  (List.length (Dashboard.firing_alerts doc))
              | None -> Alcotest.fail "/alerts.json has no alerts member"))
          | Error e -> Alcotest.failf "/alerts.json: %s" e);
          (match Server.http_get endpoint "/no-such-path" with
          | Ok (status, _) -> Alcotest.(check int) "unknown path is 404" 404 status
          | Error e -> Alcotest.failf "/no-such-path: %s" e);
          (* Clean shutdown over the wire. *)
          Server.with_connection endpoint (fun fd ->
              let resp = request_exn fd (Json.Obj [ ("op", Json.Str "shutdown") ]) in
              Alcotest.(check bool) "shutdown acknowledged" true (ok_of resp)));
      (* The captured log replays with byte-identical digests... *)
      let rep1 = Filename.concat dir "replay1.json" in
      let rep2 = Filename.concat dir "replay2.json" in
      let code, out = run exe [ "replay"; qlog; "-g"; graph; "--report"; rep1 ] in
      Alcotest.(check int) "replay exits 0" 0 code;
      Alcotest.(check bool) "no digest mismatches" true (contains out "0 digest mismatches");
      Alcotest.(check bool) "all events replayed" true (contains out "replayed 53/53");
      (* ... and replay reports pair up under bench-diff.  A report
         diffed against itself must be exactly clean; two separate runs
         are diffed with a huge threshold because sub-millisecond
         medians are pure scheduling noise under parallel test load. *)
      let code, out = run exe [ "bench-diff"; rep1; rep1 ] in
      Alcotest.(check int) "bench-diff accepts replay reports" 0 code;
      Alcotest.(check bool) "records were paired" true (contains out "record(s)");
      let code, _ = run exe [ "replay"; qlog; "-g"; graph; "--report"; rep2 ] in
      Alcotest.(check int) "second replay exits 0" 0 code;
      let code, _ = run exe [ "bench-diff"; rep1; rep2; "--threshold"; "1000" ] in
      Alcotest.(check int) "two replay runs pair cleanly" 0 code;
      (* A tampered log is caught with a non-zero exit: flip the first
         hex digit of the first non-empty recorded digest. *)
      let tampered = Filename.concat dir "tampered.jsonl" in
      let ic = open_in qlog in
      let contents = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let marker = "\"digest\":\"" in
      let rec find_digest i =
        if i + String.length marker >= String.length contents then
          Alcotest.fail "captured log holds no digest"
        else if String.sub contents i (String.length marker) = marker
                && contents.[i + String.length marker] <> '"' then
          i + String.length marker
        else find_digest (i + 1)
      in
      let pos = find_digest 0 in
      let flipped = Bytes.of_string contents in
      Bytes.set flipped pos (if contents.[pos] = 'f' then '0' else 'f');
      let oc = open_out tampered in
      output_string oc (Bytes.to_string flipped);
      close_out oc;
      let code, out = run exe [ "replay"; tampered; "-g"; graph ] in
      Alcotest.(check bool) "tampered replay exits non-zero" true (code <> 0);
      Alcotest.(check bool) "mismatch reported" true (contains out "MISMATCH"))

(* `expfinder stats --server` over TCP: the satellite regression.  The
   spec "127.0.0.1:PORT" must resolve, fetch /stats.json and print the
   window/alert summary with exit 0. *)
let stats_tcp_e2e exe () =
  with_tmpdir (fun dir ->
      let graph = Filename.concat dir "collab.graph" in
      let qlog = Filename.concat dir "qlog.jsonl" in
      let code, _ = run exe [ "gen"; "--kind"; "collab"; "-o"; graph ] in
      Alcotest.(check int) "gen exits 0" 0 code;
      let port = 15000 + (Unix.getpid () mod 20000) in
      let spec = Printf.sprintf "127.0.0.1:%d" port in
      with_server exe ~graph ~socket:spec ~qlog (fun endpoint ->
          (* One query so the window summary has something to print. *)
          Server.with_connection endpoint (fun fd ->
              let resp =
                request_exn fd
                  (Json.Obj [ ("op", Json.Str "query"); ("pattern", Json.Str paper_query) ])
              in
              Alcotest.(check bool) "query over TCP ok" true (ok_of resp));
          let code, out = run exe [ "stats"; "--server"; spec ] in
          Alcotest.(check int) "stats --server host:port exits 0" 0 code;
          Alcotest.(check bool) "prints the server header" true
            (contains out ("server " ^ spec));
          Alcotest.(check bool) "prints the query window" true (contains out "query");
          Alcotest.(check bool) "prints the alert summary" true
            (contains out "alerts:" || contains out "ALERT ");
          (* An unresolvable host errors cleanly instead of raising. *)
          let code, _ = run exe [ "stats"; "--server"; "no-such-host.invalid:80" ] in
          Alcotest.(check bool) "unresolvable host is a clean error" true (code <> 0);
          Server.with_connection endpoint (fun fd ->
              let resp = request_exn fd (Json.Obj [ ("op", Json.Str "shutdown") ]) in
              Alcotest.(check bool) "shutdown acknowledged" true (ok_of resp))))

(* One-shot raw HTTP exchange: the server answers a single GET and
   closes, so reading to EOF yields status line, headers and body in
   one string — which is what the traceparent-echo assertions need
   (Server.http_get drops the headers). *)
let raw_http endpoint request =
  Server.with_connection endpoint (fun fd ->
      let bytes = Bytes.of_string request in
      let off = ref 0 in
      while !off < Bytes.length bytes do
        off := !off + Unix.write fd bytes !off (Bytes.length bytes - !off)
      done;
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 1024 in
      let rec read_all () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          read_all ()
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ()
      in
      read_all ();
      Buffer.contents buf)

(* End-to-end trace propagation, parameterized over the transport: the
   client mints a context, the response/qlog/trace-store all carry the
   same trace id, and a malformed context (JSONL field or traceparent
   header) degrades to a fresh mint rather than an error. *)
let trace_e2e ~tcp exe () =
  with_tmpdir (fun dir ->
      let graph = Filename.concat dir "collab.graph" in
      let qlog = Filename.concat dir "qlog.jsonl" in
      let code, _ = run exe [ "gen"; "--kind"; "collab"; "-o"; graph ] in
      Alcotest.(check int) "gen exits 0" 0 code;
      let socket =
        if tcp then
          Printf.sprintf "127.0.0.1:%d" (17000 + (Unix.getpid () mod 20000))
        else Filename.concat dir "serve.sock"
      in
      let ctx = Trace.make ~sampled:true () in
      with_server exe ~graph ~socket ~qlog (fun endpoint ->
          (* First query after boot is head-sampled, so the store must
             hold it — send the minted context in compact wire form. *)
          let resp =
            Server.with_connection endpoint (fun fd ->
                request_exn fd
                  (Json.Obj
                     [
                       ("op", Json.Str "query");
                       ("pattern", Json.Str paper_query);
                       ("trace", Json.Str (Trace.to_wire ctx));
                     ]))
          in
          Alcotest.(check bool) "traced query ok" true (ok_of resp);
          Alcotest.(check (option string)) "response adopts the client's trace id"
            (Some ctx.Trace.trace_id)
            (str_field "trace_id" resp);
          (match Server.http_get endpoint "/traces.json" with
          | Ok (200, body) ->
            Alcotest.(check bool) "/traces.json resolves the trace id" true
              (contains body ctx.Trace.trace_id)
          | Ok (status, _) -> Alcotest.failf "/traces.json -> HTTP %d" status
          | Error e -> Alcotest.failf "/traces.json failed: %s" e);
          (* The trace explorer renders the same store over the wire. *)
          let code, out =
            run exe [ "trace"; "--socket"; socket; "show"; ctx.Trace.trace_id ]
          in
          Alcotest.(check int) "trace show exits 0" 0 code;
          Alcotest.(check bool) "trace show names the trace id" true
            (contains out ctx.Trace.trace_id);
          let code, out = run exe [ "trace"; "--socket"; socket; "list" ] in
          Alcotest.(check int) "trace list exits 0" 0 code;
          Alcotest.(check bool) "trace list includes the trace id" true
            (contains out ctx.Trace.trace_id);
          (* client --trace end to end: the response's trace id is
             printed and resolvable in the store. *)
          let pat = Filename.concat dir "paper.pattern" in
          let oc = open_out pat in
          output_string oc paper_query;
          close_out oc;
          let code, out = run exe [ "client"; "--socket"; socket; "--trace"; "-q"; pat ] in
          Alcotest.(check int) "client --trace exits 0" 0 code;
          Alcotest.(check bool) "client --trace prints a trace line" true
            (contains out "trace ");
          (* A malformed trace field still answers, under a freshly
             minted (valid, different) id. *)
          let resp =
            Server.with_connection endpoint (fun fd ->
                request_exn fd
                  (Json.Obj
                     [
                       ("op", Json.Str "query");
                       ("pattern", Json.Str paper_query);
                       ("trace", Json.Str "not-a-trace");
                     ]))
          in
          Alcotest.(check bool) "malformed trace still answers" true (ok_of resp);
          (match str_field "trace_id" resp with
          | None -> Alcotest.fail "no trace_id on the fallback response"
          | Some tid ->
            Alcotest.(check bool) "fallback id is a fresh valid mint" true
              (Trace.valid_trace_id tid && tid <> ctx.Trace.trace_id));
          (* Same degradation on the HTTP side: a malformed traceparent
             header yields 200 plus a well-formed echoed header. *)
          let reply =
            raw_http endpoint
              "GET /healthz HTTP/1.1\r\ntraceparent: garbage-in\r\n\r\n"
          in
          Alcotest.(check bool) "malformed traceparent scrape succeeds" true
            (contains reply "200");
          Alcotest.(check bool) "echoed traceparent is well-formed" true
            (contains reply "traceparent: 00-");
          Alcotest.(check bool) "echoed traceparent is not the garbage" true
            (not (contains reply "garbage-in"));
          (* A well-formed traceparent header is adopted verbatim. *)
          let reply =
            raw_http endpoint
              (Printf.sprintf "GET /healthz HTTP/1.1\r\ntraceparent: %s\r\n\r\n"
                 (Trace.to_traceparent ctx))
          in
          Alcotest.(check bool) "well-formed traceparent is adopted" true
            (contains reply ctx.Trace.trace_id);
          Server.with_connection endpoint (fun fd ->
              let resp = request_exn fd (Json.Obj [ ("op", Json.Str "shutdown") ]) in
              Alcotest.(check bool) "shutdown acknowledged" true (ok_of resp)));
      (* After a clean shutdown the qlog carries the adopted id on its
         query event. *)
      match Qlog.load qlog with
      | Error e -> Alcotest.failf "qlog load failed: %s" e
      | Ok events ->
        Alcotest.(check bool) "qlog records the adopted trace id" true
          (List.exists (fun e -> e.Qlog.trace_id = ctx.Trace.trace_id) events))

(* Dashboard rendering from canned documents: the `expfinder top` frame
   is pure string building, so it is testable without a server. *)
let canned_stats =
  {|{"graph_id": 7, "epoch": 3,
     "windows": {"query": {"window_s": 60, "count": 120, "errors": 2,
                           "qps": 2.0, "error_rate": 0.016,
                           "p50_ms": 1.0, "p95_ms": 4.0, "p99_ms": 9.0,
                           "mean_ms": 1.5, "max_ms": 12.0}},
     "process": {"process.rss_bytes": 104857600,
                 "process.heap_words": 1310720,
                 "uptime.seconds": 3725}}|}

let canned_timeseries =
  {|{"v": 1, "now_unix": 1000.0,
     "series_kinds": {"win.query.qps": "rate", "proc.rss_bytes": "level"},
     "point": "[t_unix,last,sum,min,max,count]",
     "resolutions":
       [{"res_s": 1, "slots": 4, "span_s": 4,
         "series": {"win.query.qps": [[997,1.0,1.0,1.0,1.0,1],
                                      [998,2.0,2.0,2.0,2.0,1],
                                      [999,4.0,4.0,4.0,4.0,1]],
                    "proc.rss_bytes": [[999,104857600,104857600,104857600,104857600,1]]}},
        {"res_s": 10, "slots": 4, "span_s": 40, "series": {}}]}|}

let canned_alerts =
  {|{"v": 1, "now_unix": 1000.0,
     "alerts": [{"name": "query-availability", "op": "query",
                 "kind": "availability", "target": 0.999,
                 "fast_s": 300, "slow_s": 3600,
                 "fast_burn_threshold": 14.4, "slow_burn_threshold": 3.0,
                 "state": "firing", "firing": true,
                 "burn_fast": 20.0, "burn_slow": 5.0,
                 "bad_fast": 0.02, "bad_slow": 0.005},
                {"name": "query-latency", "op": "query",
                 "kind": "latency_p99", "threshold_ms": 50.0, "target": 0.99,
                 "fast_s": 300, "slow_s": 3600,
                 "fast_burn_threshold": 14.4, "slow_burn_threshold": 3.0,
                 "state": "passing", "firing": false,
                 "burn_fast": 0.0, "burn_slow": 0.0,
                 "bad_fast": 0.0, "bad_slow": 0.0}]}|}

let parse_doc s =
  match Json.of_string s with
  | Ok doc -> doc
  | Error e -> Alcotest.failf "canned document does not parse: %s" e

let test_dashboard_sparkline () =
  Alcotest.(check string) "empty input" "" (Dashboard.sparkline []);
  Alcotest.(check string) "all-NaN input" "" (Dashboard.sparkline [ nan; nan ]);
  let ramp = Dashboard.sparkline [ 0.0; 1.0; 2.0; 3.0; 4.0; 5.0; 6.0; 7.0 ] in
  Alcotest.(check int) "one block char per value" (8 * 3) (String.length ramp);
  Alcotest.(check string) "ramp starts at the lowest block" "\xe2\x96\x81"
    (String.sub ramp 0 3);
  Alcotest.(check string) "ramp ends at the highest block" "\xe2\x96\x88"
    (String.sub ramp (String.length ramp - 3) 3);
  (* Constant series render flat rather than exploding on max=min. *)
  let flat = Dashboard.sparkline [ 5.0; 5.0; 5.0 ] in
  Alcotest.(check int) "constant series renders" (3 * 3) (String.length flat);
  let tail = Dashboard.sparkline ~width:2 [ 1.0; 2.0; 3.0 ] in
  Alcotest.(check int) "width keeps only the tail" (2 * 3) (String.length tail)

let test_dashboard_series_tail () =
  let doc = parse_doc canned_timeseries in
  Alcotest.(check (list (float 1e-9))) "finest-resolution last column, oldest first"
    [ 1.0; 2.0; 4.0 ]
    (Dashboard.series_tail doc "win.query.qps");
  Alcotest.(check (list (float 1e-9))) "unknown series is empty" []
    (Dashboard.series_tail doc "no.such.series")

let test_dashboard_render () =
  let stats = parse_doc canned_stats in
  let timeseries = parse_doc canned_timeseries in
  let alerts = parse_doc canned_alerts in
  let frame = Dashboard.render ~stats ~timeseries ~alerts () in
  Alcotest.(check int) "one firing alert in the canned doc" 1
    (List.length (Dashboard.firing_alerts alerts));
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "frame mentions %S" needle) true
        (contains frame needle))
    [ "query"; "query-availability"; "graph 7"; "epoch 3"; "1h02m" ];
  (* The frame must still paint with no documents at all. *)
  let empty = Dashboard.render () in
  Alcotest.(check bool) "empty frame still paints" true (String.length empty > 0);
  Alcotest.(check bool) "empty frame shows placeholders" true (contains empty "-")

let dashboard_suite =
  ( "dashboard",
    [
      Alcotest.test_case "sparkline" `Quick test_dashboard_sparkline;
      Alcotest.test_case "series_tail" `Quick test_dashboard_series_tail;
      Alcotest.test_case "render" `Quick test_dashboard_render;
    ] )

(* Endpoint classification: path-shaped specs are always Unix sockets
   (even "/tmp/expfinder:1", whose suffix parses as a port, and the
   all-digit "./8080"); everything else tries bare-port then host:port. *)
let test_endpoint_of_string () =
  let show = function
    | Server.Unix_socket p -> "unix:" ^ p
    | Server.Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p
  in
  let check spec expected =
    match Server.endpoint_of_string spec with
    | Ok ep -> Alcotest.(check string) spec expected (show ep)
    | Error e -> Alcotest.failf "%s: unexpected error: %s" spec e
  in
  check "8080" "tcp:127.0.0.1:8080";
  check "example.org:8080" "tcp:example.org:8080";
  check ":8080" "tcp:127.0.0.1:8080";
  check "serve.sock" "unix:serve.sock";
  check "/tmp/expfinder.sock" "unix:/tmp/expfinder.sock";
  check "/tmp/expfinder:1" "unix:/tmp/expfinder:1";
  check "./8080" "unix:./8080";
  List.iter
    (fun spec ->
      match Server.endpoint_of_string spec with
      | Error _ -> ()
      | Ok ep -> Alcotest.failf "%S must be rejected, parsed as %s" spec (show ep))
    [ ""; "99999"; "host:99999" ]

let unit_suite =
  ("endpoint", [ Alcotest.test_case "endpoint_of_string" `Quick test_endpoint_of_string ])

let () =
  match exe with
  | None ->
    print_endline "expfinder.exe not built; running only the unit tests";
    Alcotest.run "serve" [ unit_suite; dashboard_suite ]
  | Some exe ->
    Alcotest.run "serve"
      [
        unit_suite;
        dashboard_suite;
        ( "e2e",
          [
            Alcotest.test_case "serve/observe/replay" `Quick (serve_e2e exe);
            Alcotest.test_case "stats --server over TCP" `Quick (stats_tcp_e2e exe);
            Alcotest.test_case "trace propagation over unix socket" `Quick
              (trace_e2e ~tcp:false exe);
            Alcotest.test_case "trace propagation over TCP" `Quick
              (trace_e2e ~tcp:true exe);
          ] );
      ]
