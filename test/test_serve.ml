(* End-to-end serving-path tests: run `expfinder serve` as a subprocess
   with the query log on, drive it over its socket (JSONL queries,
   batches, updates, plus the HTTP observability endpoints), shut it
   down, and close the loop with `expfinder replay` + `bench-diff` on
   the captured log. *)

open Expfinder_telemetry
module Server = Expfinder_server

let exe =
  let candidates =
    [
      Filename.concat (Filename.dirname Sys.executable_name) "../bin/expfinder.exe";
      "_build/default/bin/expfinder.exe";
      "../bin/expfinder.exe";
    ]
  in
  List.find_opt Sys.file_exists candidates

let with_tmpdir f =
  let dir = Filename.temp_file "expfinder-serve" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun file -> Sys.remove (Filename.concat dir file)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let run exe args =
  let cmd = Filename.quote_command exe args ^ " 2>/dev/null" in
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  let code = match status with Unix.WEXITED c -> c | _ -> -1 in
  (code, Buffer.contents buf)

let contains haystack needle =
  let n = String.length haystack and k = String.length needle in
  let rec scan i = i + k <= n && (String.sub haystack i k = needle || scan (i + 1)) in
  scan 0

let paper_query =
  "expfinder-pattern 1\n\
   node 0 SA SA exp>=int:5\n\
   node 1 SD SD exp>=int:2\n\
   node 2 BA BA exp>=int:3\n\
   node 3 ST ST exp>=int:2\n\
   edge 0 1 2\n\
   edge 1 0 2\n\
   edge 0 2 3\n\
   edge 3 2 1\n\
   output 0\n"

(* Start `expfinder serve` as a child process (stdout/stderr to
   /dev/null, EXPFINDER_QLOG set), wait until it answers a ping, run
   [f], and always reap the child. *)
let with_server exe ~graph ~socket ~qlog f =
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let env =
    Array.append (Unix.environment ()) [| Printf.sprintf "EXPFINDER_QLOG=%s" qlog |]
  in
  let pid =
    Unix.create_process_env exe
      [| exe; "serve"; "-g"; graph; "--socket"; socket |]
      env Unix.stdin devnull devnull
  in
  Unix.close devnull;
  let endpoint = Server.Unix_socket socket in
  Fun.protect
    ~finally:(fun () ->
      (* Normal exit path is the shutdown op; the kill only fires when
         an assertion failed mid-flight. *)
      (match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ ->
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] pid)
      | _ -> ()))
    (fun () ->
      let rec wait_ready attempts =
        if attempts = 0 then Alcotest.fail "server did not come up within 10s"
        else
          match
            Server.with_connection endpoint (fun fd ->
                Server.request fd (Json.Obj [ ("op", Json.Str "ping") ]))
          with
          | Ok _ -> ()
          | Error _ -> Unix.sleepf 0.1; wait_ready (attempts - 1)
          | exception Unix.Unix_error (_, _, _) ->
            Unix.sleepf 0.1;
            wait_ready (attempts - 1)
      in
      wait_ready 100;
      f endpoint)

let ok_of json =
  match Option.bind (Json.member "ok" json) (function Json.Bool b -> Some b | _ -> None) with
  | Some b -> b
  | None -> false

let str_field name json = Option.bind (Json.member name json) Json.str_opt

let request_exn fd req =
  match Server.request fd req with
  | Ok resp -> resp
  | Error e -> Alcotest.failf "request failed: %s" e

(* The acceptance-criteria flow: >= 50 queries over the socket, live
   /metrics with nonzero QPS and a p95 quantile, /healthz, /stats.json,
   then shutdown and a digest-identical replay whose reports bench-diff
   cleanly. *)
let serve_e2e exe () =
  with_tmpdir (fun dir ->
      let graph = Filename.concat dir "collab.graph" in
      let socket = Filename.concat dir "serve.sock" in
      let qlog = Filename.concat dir "qlog.jsonl" in
      let code, _ = run exe [ "gen"; "--kind"; "collab"; "-o"; graph ] in
      Alcotest.(check int) "gen exits 0" 0 code;
      with_server exe ~graph ~socket ~qlog (fun endpoint ->
          (* 50 queries on one connection; every answer must agree. *)
          let digests =
            Server.with_connection endpoint (fun fd ->
                List.init 50 (fun _ ->
                    let resp =
                      request_exn fd
                        (Json.Obj
                           [ ("op", Json.Str "query"); ("pattern", Json.Str paper_query) ])
                    in
                    Alcotest.(check bool) "query ok" true (ok_of resp);
                    match str_field "digest" resp with
                    | Some d -> d
                    | None -> Alcotest.fail "query response carries no digest"))
          in
          (match digests with
          | first :: rest ->
            Alcotest.(check bool) "all 50 digests agree" true
              (List.for_all (String.equal first) rest)
          | [] -> Alcotest.fail "no answers");
          (* A batch and an update, so the replay covers every event
             kind.  The update inserts the paper's e1 edge. *)
          Server.with_connection endpoint (fun fd ->
              let resp =
                request_exn fd
                  (Json.Obj
                     [
                       ("op", Json.Str "batch");
                       ("patterns", Json.Arr [ Json.Str paper_query; Json.Str paper_query ]);
                     ])
              in
              Alcotest.(check bool) "batch ok" true (ok_of resp);
              (match Option.bind (Json.member "answers" resp) Json.list_opt with
              | Some answers -> Alcotest.(check int) "batch answers" 2 (List.length answers)
              | None -> Alcotest.fail "batch response carries no answers");
              let resp =
                request_exn fd
                  (Json.Obj
                     [
                       ("op", Json.Str "update");
                       ( "ops",
                         Json.Arr
                           [
                             Json.Obj
                               [ ("op", Json.Str "+"); ("u", Json.Int 1); ("v", Json.Int 5) ];
                           ] );
                     ])
              in
              Alcotest.(check bool) "update ok" true (ok_of resp);
              let resp =
                request_exn fd
                  (Json.Obj [ ("op", Json.Str "query"); ("pattern", Json.Str paper_query) ])
              in
              Alcotest.(check bool) "post-update query ok" true (ok_of resp));
          (* Malformed requests answer ok:false without killing the
             server. *)
          Server.with_connection endpoint (fun fd ->
              let resp = request_exn fd (Json.Obj [ ("op", Json.Str "nonsense") ]) in
              Alcotest.(check bool) "unknown op refused" false (ok_of resp);
              let resp =
                request_exn fd
                  (Json.Obj [ ("op", Json.Str "query"); ("pattern", Json.Str "not a pattern") ])
              in
              Alcotest.(check bool) "bad pattern refused" false (ok_of resp));
          (* HTTP observability endpoints. *)
          (match Server.http_get endpoint "/healthz" with
          | Ok (status, body) ->
            Alcotest.(check int) "/healthz status" 200 status;
            Alcotest.(check bool) "/healthz body" true (contains body "ok")
          | Error e -> Alcotest.failf "/healthz: %s" e);
          (match Server.http_get endpoint "/metrics" with
          | Ok (status, body) ->
            Alcotest.(check int) "/metrics status" 200 status;
            Alcotest.(check bool) "query window exported" true
              (contains body "expfinder_qps{op=\"query\"}");
            Alcotest.(check bool) "p95 latency exported" true
              (contains body "expfinder_latency_ms{op=\"query\",quantile=\"0.95\"}");
            Alcotest.(check bool) "engine counters exported" true
              (contains body "expfinder_engine_queries");
            (* The QPS gauge must be live (nonzero) after 50 queries. *)
            let nonzero_qps =
              String.split_on_char '\n' body
              |> List.exists (fun line ->
                     match String.index_opt line ' ' with
                     | Some i when String.sub line 0 i = "expfinder_qps{op=\"query\"}" ->
                       (match
                          float_of_string_opt
                            (String.sub line (i + 1) (String.length line - i - 1))
                        with
                       | Some v -> v > 0.0
                       | None -> false)
                     | _ -> false)
            in
            Alcotest.(check bool) "query QPS is nonzero" true nonzero_qps
          | Error e -> Alcotest.failf "/metrics: %s" e);
          (match Server.http_get endpoint "/stats.json" with
          | Ok (status, body) -> (
            Alcotest.(check int) "/stats.json status" 200 status;
            match Json.of_string body with
            | Error e -> Alcotest.failf "/stats.json does not parse: %s" e
            | Ok doc -> (
              match
                Option.bind (Json.member "windows" doc) (Json.member "query")
                |> Option.map Window.summary_of_json
              with
              | Some (Some s) ->
                Alcotest.(check bool) "window counted the queries" true (s.Window.count >= 50)
              | _ -> Alcotest.fail "/stats.json has no query window"))
          | Error e -> Alcotest.failf "/stats.json: %s" e);
          (match Server.http_get endpoint "/no-such-path" with
          | Ok (status, _) -> Alcotest.(check int) "unknown path is 404" 404 status
          | Error e -> Alcotest.failf "/no-such-path: %s" e);
          (* Clean shutdown over the wire. *)
          Server.with_connection endpoint (fun fd ->
              let resp = request_exn fd (Json.Obj [ ("op", Json.Str "shutdown") ]) in
              Alcotest.(check bool) "shutdown acknowledged" true (ok_of resp)));
      (* The captured log replays with byte-identical digests... *)
      let rep1 = Filename.concat dir "replay1.json" in
      let rep2 = Filename.concat dir "replay2.json" in
      let code, out = run exe [ "replay"; qlog; "-g"; graph; "--report"; rep1 ] in
      Alcotest.(check int) "replay exits 0" 0 code;
      Alcotest.(check bool) "no digest mismatches" true (contains out "0 digest mismatches");
      Alcotest.(check bool) "all events replayed" true (contains out "replayed 53/53");
      (* ... and replay reports pair up under bench-diff.  A report
         diffed against itself must be exactly clean; two separate runs
         are diffed with a huge threshold because sub-millisecond
         medians are pure scheduling noise under parallel test load. *)
      let code, out = run exe [ "bench-diff"; rep1; rep1 ] in
      Alcotest.(check int) "bench-diff accepts replay reports" 0 code;
      Alcotest.(check bool) "records were paired" true (contains out "record(s)");
      let code, _ = run exe [ "replay"; qlog; "-g"; graph; "--report"; rep2 ] in
      Alcotest.(check int) "second replay exits 0" 0 code;
      let code, _ = run exe [ "bench-diff"; rep1; rep2; "--threshold"; "1000" ] in
      Alcotest.(check int) "two replay runs pair cleanly" 0 code;
      (* A tampered log is caught with a non-zero exit: flip the first
         hex digit of the first non-empty recorded digest. *)
      let tampered = Filename.concat dir "tampered.jsonl" in
      let ic = open_in qlog in
      let contents = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let marker = "\"digest\":\"" in
      let rec find_digest i =
        if i + String.length marker >= String.length contents then
          Alcotest.fail "captured log holds no digest"
        else if String.sub contents i (String.length marker) = marker
                && contents.[i + String.length marker] <> '"' then
          i + String.length marker
        else find_digest (i + 1)
      in
      let pos = find_digest 0 in
      let flipped = Bytes.of_string contents in
      Bytes.set flipped pos (if contents.[pos] = 'f' then '0' else 'f');
      let oc = open_out tampered in
      output_string oc (Bytes.to_string flipped);
      close_out oc;
      let code, out = run exe [ "replay"; tampered; "-g"; graph ] in
      Alcotest.(check bool) "tampered replay exits non-zero" true (code <> 0);
      Alcotest.(check bool) "mismatch reported" true (contains out "MISMATCH"))

(* Endpoint classification: path-shaped specs are always Unix sockets
   (even "/tmp/expfinder:1", whose suffix parses as a port, and the
   all-digit "./8080"); everything else tries bare-port then host:port. *)
let test_endpoint_of_string () =
  let show = function
    | Server.Unix_socket p -> "unix:" ^ p
    | Server.Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p
  in
  let check spec expected =
    match Server.endpoint_of_string spec with
    | Ok ep -> Alcotest.(check string) spec expected (show ep)
    | Error e -> Alcotest.failf "%s: unexpected error: %s" spec e
  in
  check "8080" "tcp:127.0.0.1:8080";
  check "example.org:8080" "tcp:example.org:8080";
  check ":8080" "tcp:127.0.0.1:8080";
  check "serve.sock" "unix:serve.sock";
  check "/tmp/expfinder.sock" "unix:/tmp/expfinder.sock";
  check "/tmp/expfinder:1" "unix:/tmp/expfinder:1";
  check "./8080" "unix:./8080";
  List.iter
    (fun spec ->
      match Server.endpoint_of_string spec with
      | Error _ -> ()
      | Ok ep -> Alcotest.failf "%S must be rejected, parsed as %s" spec (show ep))
    [ ""; "99999"; "host:99999" ]

let unit_suite =
  ("endpoint", [ Alcotest.test_case "endpoint_of_string" `Quick test_endpoint_of_string ])

let () =
  match exe with
  | None ->
    print_endline "expfinder.exe not built; running only the unit tests";
    Alcotest.run "serve" [ unit_suite ]
  | Some exe ->
    Alcotest.run "serve"
      [
        unit_suite;
        ("e2e", [ Alcotest.test_case "serve/observe/replay" `Quick (serve_e2e exe) ]);
      ]
