(* Storage: the query-result cache and the file-backed store. *)

open Expfinder_graph
open Expfinder_pattern
open Expfinder_core
open Expfinder_storage
module Collab = Expfinder_workload.Collab

let sample_relation () =
  Match_relation.of_pairs ~pattern_size:2 ~graph_size:9 [ (0, 1); (1, 4) ]

(* Two identities of the same graph at consecutive epochs. *)
let sid_pair () =
  let g = Collab.graph () in
  let s0 = Snapshot.id (Snapshot.of_digraph g) in
  ignore (Digraph.add_edge g 0 3 : bool);
  let s1 = Snapshot.id (Snapshot.of_digraph g) in
  (s0, s1)

(* --- Cache ----------------------------------------------------------- *)

let test_cache_hit_and_miss () =
  let cache = Cache.create () in
  let q = Collab.query () in
  let sid0, sid1 = sid_pair () in
  Alcotest.(check bool) "cold miss" true (Cache.find cache q ~snapshot:sid0 = None);
  Cache.store cache q ~snapshot:sid0 (sample_relation ());
  (match Cache.find cache q ~snapshot:sid0 with
  | Some r -> Alcotest.(check bool) "hit returns stored" true (Match_relation.equal r (sample_relation ()))
  | None -> Alcotest.fail "expected hit");
  Alcotest.(check bool) "other epoch misses" true (Cache.find cache q ~snapshot:sid1 = None);
  Alcotest.(check (pair int int)) "stats" (1, 2) (Cache.hits cache, Cache.misses cache)

let test_cache_copy_does_not_alias () =
  (* Regression: Digraph.copy resets the version to 0, so a bare-version
     key would serve a copy the original's cached results.  Identities
     carry a process-unique graph id, so the copy must miss. *)
  let cache = Cache.create () in
  let q = Collab.query () in
  let base = Collab.graph () in
  (* Both copies restart at version 0: a bare-version key cannot tell
     them apart, the graph id can. *)
  let g = Digraph.copy base in
  let copy = Digraph.copy base in
  Alcotest.(check bool) "copy has a fresh graph id" true
    (Digraph.graph_id copy <> Digraph.graph_id g);
  let sid = Snapshot.id (Snapshot.of_digraph g) in
  let sid_copy = Snapshot.id (Snapshot.of_digraph copy) in
  Alcotest.(check int) "same epoch" sid.Snapshot.epoch sid_copy.Snapshot.epoch;
  Cache.store cache q ~snapshot:sid (sample_relation ());
  Alcotest.(check bool) "original hits" true (Cache.find cache q ~snapshot:sid <> None);
  Alcotest.(check bool) "copy misses" true (Cache.find cache q ~snapshot:sid_copy = None)

let test_cache_is_defensive () =
  let cache = Cache.create () in
  let q = Collab.query () in
  let sid0, _ = sid_pair () in
  let r = sample_relation () in
  Cache.store cache q ~snapshot:sid0 r;
  Match_relation.remove r 0 1;
  (* Mutating the original must not affect the cached copy... *)
  (match Cache.find cache q ~snapshot:sid0 with
  | Some cached -> Alcotest.(check bool) "stored copy intact" true (Match_relation.mem cached 0 1)
  | None -> Alcotest.fail "expected hit");
  (* ...nor mutating a returned hit. *)
  (match Cache.find cache q ~snapshot:sid0 with
  | Some hit -> Match_relation.remove hit 1 4
  | None -> Alcotest.fail "expected hit");
  match Cache.find cache q ~snapshot:sid0 with
  | Some cached -> Alcotest.(check bool) "hit copy intact" true (Match_relation.mem cached 1 4)
  | None -> Alcotest.fail "expected hit"

let test_cache_lru_eviction () =
  let cache = Cache.create ~capacity:2 () in
  let q1 = Collab.query () and q2 = Collab.q1 () and q3 = Collab.q2 () in
  let sid0, _ = sid_pair () in
  Cache.store cache q1 ~snapshot:sid0 (sample_relation ());
  Cache.store cache q2 ~snapshot:sid0 (sample_relation ());
  (* Touch q1 so q2 is the LRU entry, then insert q3. *)
  ignore (Cache.find cache q1 ~snapshot:sid0 : Match_relation.t option);
  Cache.store cache q3 ~snapshot:sid0 (sample_relation ());
  Alcotest.(check int) "capacity respected" 2 (Cache.length cache);
  Alcotest.(check int) "eviction counted" 1 (Cache.evictions cache);
  Alcotest.(check bool) "q1 kept" true (Cache.find cache q1 ~snapshot:sid0 <> None);
  Alcotest.(check bool) "q2 evicted" true (Cache.find cache q2 ~snapshot:sid0 = None);
  Alcotest.(check bool) "q3 kept" true (Cache.find cache q3 ~snapshot:sid0 <> None);
  (* The eviction counter survives [clear]: it is cumulative. *)
  Cache.clear cache;
  Alcotest.(check int) "evictions cumulative across clear" 1 (Cache.evictions cache)

let test_cache_invalidation () =
  let cache = Cache.create () in
  let q = Collab.query () in
  let sid0, sid1 = sid_pair () in
  Cache.store cache q ~snapshot:sid0 (sample_relation ());
  Cache.store cache q ~snapshot:sid1 (sample_relation ());
  Cache.invalidate_snapshot cache sid0;
  Alcotest.(check bool) "old epoch gone" true (Cache.find cache q ~snapshot:sid0 = None);
  Alcotest.(check bool) "new epoch kept" true (Cache.find cache q ~snapshot:sid1 <> None);
  Cache.clear cache;
  Alcotest.(check int) "cleared" 0 (Cache.length cache);
  Alcotest.(check (pair int int)) "stats reset" (0, 0) (Cache.hits cache, Cache.misses cache)

(* --- Graph store ------------------------------------------------------- *)

let with_store f =
  let dir = Filename.temp_file "expfinder" "" in
  Sys.remove dir;
  let store = Graph_store.open_dir dir in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f store)

let test_store_graph_roundtrip () =
  with_store (fun store ->
      let g = Collab.graph () in
      Graph_store.save_graph store "collab" g;
      Alcotest.(check (list string)) "listed" [ "collab" ] (Graph_store.list_graphs store);
      match Graph_store.load_graph store "collab" with
      | Ok g' -> Alcotest.(check bool) "roundtrip" true (Digraph.equal_structure g g')
      | Error e -> Alcotest.fail e)

let test_store_pattern_roundtrip () =
  with_store (fun store ->
      let q = Collab.query () in
      Graph_store.save_pattern store "q" q;
      Alcotest.(check (list string)) "listed" [ "q" ] (Graph_store.list_patterns store);
      match Graph_store.load_pattern store "q" with
      | Ok q' -> Alcotest.(check bool) "roundtrip" true (Pattern.equal q q')
      | Error e -> Alcotest.fail e)

let test_store_result_roundtrip () =
  with_store (fun store ->
      let pairs = [ (0, 1); (1, 4); (3, 8) ] in
      Graph_store.save_result store "m" pairs;
      match Graph_store.load_result store "m" with
      | Ok pairs' -> Alcotest.(check (list (pair int int))) "roundtrip" pairs pairs'
      | Error e -> Alcotest.fail e)

let test_store_missing_and_remove () =
  with_store (fun store ->
      (match Graph_store.load_graph store "nope" with
      | Ok _ -> Alcotest.fail "expected error"
      | Error _ -> ());
      Graph_store.save_graph store "g" (Collab.graph ());
      Graph_store.remove store "g";
      Alcotest.(check (list string)) "removed" [] (Graph_store.list_graphs store))

let test_store_rejects_bad_names () =
  with_store (fun store ->
      List.iter
        (fun name ->
          match Graph_store.save_graph store name (Collab.graph ()) with
          | () -> Alcotest.fail ("accepted bad name " ^ name)
          | exception Invalid_argument _ -> ())
        [ ""; "a/b"; ".hidden" ])

let () =
  Alcotest.run "storage"
    [
      ( "cache",
        [
          Alcotest.test_case "hit and miss" `Quick test_cache_hit_and_miss;
          Alcotest.test_case "copy does not alias" `Quick test_cache_copy_does_not_alias;
          Alcotest.test_case "defensive copies" `Quick test_cache_is_defensive;
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "invalidation" `Quick test_cache_invalidation;
        ] );
      ( "store",
        [
          Alcotest.test_case "graph roundtrip" `Quick test_store_graph_roundtrip;
          Alcotest.test_case "pattern roundtrip" `Quick test_store_pattern_roundtrip;
          Alcotest.test_case "result roundtrip" `Quick test_store_result_roundtrip;
          Alcotest.test_case "missing and remove" `Quick test_store_missing_and_remove;
          Alcotest.test_case "bad names" `Quick test_store_rejects_bad_names;
        ] );
    ]
