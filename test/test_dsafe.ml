(* The dsafe analyzer against its seeded fixture library: every hazard
   class is reported, the ratchet gate passes exactly when the allowlist
   covers the findings, and the dlint executable exits non-zero on a
   fresh unallowed hazard.  Runs with cwd [_build/default/test], so the
   fixture's typedtrees are under [fixtures/dsafe_fixture/]. *)

module Dsafe = Expfinder_analysis.Dsafe

let fixture_root = "fixtures/dsafe_fixture"

let dlint_exe = Filename.concat ".." (Filename.concat "bin" "dlint.exe")

let scan_fixture () = Dsafe.scan ~roots:[ fixture_root ] ()

let find_by_suffix findings suffix =
  List.find_opt
    (fun (f : Dsafe.finding) ->
      let id = f.Dsafe.id in
      let ls = String.length suffix and li = String.length id in
      li >= ls && String.sub id (li - ls) ls = suffix)
    findings

let check_class findings suffix expected =
  match find_by_suffix findings suffix with
  | None -> Alcotest.failf "no finding for %s" suffix
  | Some f ->
    Alcotest.(check string)
      (suffix ^ " class") expected
      (Dsafe.kind_name f.Dsafe.kind)

(* --- detection ---------------------------------------------------------- *)

let test_detects_every_class () =
  let findings = scan_fixture () in
  check_class findings ":counter" "ref";
  check_class findings ":table" "hashtbl";
  check_class findings ":buf" "buffer";
  check_class findings ":cells" "array";
  check_class findings ":literal" "array";
  check_class findings ":the_box" "mutable-record";
  check_class findings ":via_fn" "mutable-type:box";
  check_class findings ":page" "lazy";
  check_class findings ":next" "captured-closure-state";
  check_class findings ":guarded" "atomic";
  check_class findings ":lock" "mutex";
  check_class findings ":banned.Obj.magic" "banned:Obj.magic";
  check_class findings ":banned.Random.self_init" "banned:Random.self_init";
  check_class findings ":banned.Marshal.from_string" "banned:Marshal.from_string"

let test_no_false_positives () =
  let findings = scan_fixture () in
  (* [mk] and the banned-construct wrappers are plain functions: they own
     no module-level storage and must not be inventoried as bindings. *)
  List.iter
    (fun suffix ->
      match find_by_suffix findings suffix with
      | Some f when f.Dsafe.kind <> Dsafe.Banned "Obj.magic" ->
        (match f.Dsafe.kind with
        | Dsafe.Mutable_binding _ -> Alcotest.failf "function %s inventoried" suffix
        | _ -> ())
      | _ -> ())
    [ ":mk"; ":casted"; ":seeded"; ":unmarshal" ]

let test_intrinsically_guarded () =
  let findings = scan_fixture () in
  let guarded_of suffix =
    match find_by_suffix findings suffix with
    | Some f -> Dsafe.intrinsically_guarded f.Dsafe.kind
    | None -> Alcotest.failf "no finding for %s" suffix
  in
  Alcotest.(check bool) "atomic guarded" true (guarded_of ":guarded");
  Alcotest.(check bool) "mutex guarded" true (guarded_of ":lock");
  Alcotest.(check bool) "ref not guarded" false (guarded_of ":counter")

(* --- ratchet gate ------------------------------------------------------- *)

let full_allow findings =
  List.map
    (fun (f : Dsafe.finding) ->
      { Dsafe.key = f.Dsafe.id; discipline = Dsafe.Hazard; why = "fixture" })
    findings

let test_gate_passes_when_allowlisted () =
  let findings = scan_fixture () in
  let g = Dsafe.gate ~allow:(full_allow findings) findings in
  Alcotest.(check bool) "gate ok" true (Dsafe.gate_ok g);
  Alcotest.(check int) "all allowed" (List.length findings) (List.length g.Dsafe.allowed);
  Alcotest.(check int) "none unallowed" 0 (List.length g.Dsafe.unallowed)

let test_gate_fails_on_fresh_hazard () =
  let findings = scan_fixture () in
  (* Dropping one entry simulates a fresh unallowlisted hazard. *)
  let incomplete =
    List.filter
      (fun (e : Dsafe.allow_entry) ->
        not (Filename.check_suffix e.Dsafe.key ":counter"))
      (full_allow findings)
  in
  let g = Dsafe.gate ~allow:incomplete findings in
  Alcotest.(check bool) "gate fails" false (Dsafe.gate_ok g);
  Alcotest.(check int) "one unallowed" 1 (List.length g.Dsafe.unallowed)

let test_gate_fails_on_stale_entry () =
  let findings = scan_fixture () in
  let stale_entry =
    { Dsafe.key = "fixtures/gone.ml:Removed.site"; discipline = Dsafe.Guarded; why = "gone" }
  in
  let g = Dsafe.gate ~allow:(stale_entry :: full_allow findings) findings in
  Alcotest.(check bool) "gate fails on stale" false (Dsafe.gate_ok g);
  Alcotest.(check int) "one stale" 1 (List.length g.Dsafe.stale);
  Alcotest.(check bool)
    "tolerated with ~fail_stale:false" true
    (Dsafe.gate_ok ~fail_stale:false g)

(* --- allow-file syntax --------------------------------------------------- *)

let test_parse_allow_line () =
  (match Dsafe.parse_allow_line "# comment" with
  | Ok None -> ()
  | _ -> Alcotest.fail "comment should parse to None");
  (match Dsafe.parse_allow_line "   " with
  | Ok None -> ()
  | _ -> Alcotest.fail "blank should parse to None");
  (match Dsafe.parse_allow_line "a.ml:x guarded behind a mutex" with
  | Ok (Some e) ->
    Alcotest.(check string) "key" "a.ml:x" e.Dsafe.key;
    Alcotest.(check string) "tag" "guarded" (Dsafe.discipline_name e.Dsafe.discipline);
    Alcotest.(check string) "why" "behind a mutex" e.Dsafe.why
  | _ -> Alcotest.fail "valid entry should parse");
  (match Dsafe.parse_allow_line "a.ml:x nonsense why" with
  | Error _ -> ()
  | _ -> Alcotest.fail "unknown discipline must be rejected");
  (match Dsafe.parse_allow_line "a.ml:x guarded" with
  | Error _ -> ()
  | _ -> Alcotest.fail "missing justification must be rejected");
  match Dsafe.parse_allow_line "a.ml:x" with
  | Error _ -> ()
  | _ -> Alcotest.fail "missing tag must be rejected"

(* --- the dlint executable end-to-end ------------------------------------ *)

let run argv =
  let cmd = String.concat " " (List.map Filename.quote argv) in
  Sys.command (cmd ^ " >/dev/null 2>&1")

let with_temp_file f =
  let path = Filename.temp_file "dsafe_test" ".allow" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let test_dlint_exit_codes () =
  with_temp_file (fun allow ->
      (* Bootstrap a complete allowlist with --emit-allow... *)
      let rc =
        Sys.command
          (Printf.sprintf "%s --emit-allow %s > %s 2>/dev/null"
             (Filename.quote dlint_exe) (Filename.quote fixture_root) (Filename.quote allow))
      in
      Alcotest.(check int) "emit-allow exits 0" 0 rc;
      (* ...which must make the gate pass... *)
      let rc = run [ dlint_exe; "--allow"; allow; fixture_root ] in
      Alcotest.(check int) "complete allowlist passes" 0 rc;
      (* ...and dropping one entry (a fresh hazard) must fail it. *)
      let lines =
        let ic = open_in allow in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let rec go acc =
              match input_line ic with
              | exception End_of_file -> List.rev acc
              | l -> go (l :: acc)
            in
            go [])
      in
      Alcotest.(check bool) "fixture has findings" true (List.length lines > 5);
      let oc = open_out allow in
      List.iteri (fun i l -> if i > 0 then output_string oc (l ^ "\n")) lines;
      close_out oc;
      let rc = run [ dlint_exe; "--allow"; allow; fixture_root ] in
      Alcotest.(check int) "missing entry fails" 1 rc)

let test_dlint_stale_entry_fails () =
  with_temp_file (fun allow ->
      let rc =
        Sys.command
          (Printf.sprintf "%s --emit-allow %s > %s 2>/dev/null"
             (Filename.quote dlint_exe) (Filename.quote fixture_root) (Filename.quote allow))
      in
      Alcotest.(check int) "emit-allow exits 0" 0 rc;
      let oc = open_out_gen [ Open_append ] 0o644 allow in
      output_string oc "fixtures/gone.ml:Removed.site guarded site no longer exists\n";
      close_out oc;
      let rc = run [ dlint_exe; "--allow"; allow; fixture_root ] in
      Alcotest.(check int) "stale entry fails" 1 rc;
      let rc = run [ dlint_exe; "--allow"; allow; "--no-fail-stale"; fixture_root ] in
      Alcotest.(check int) "--no-fail-stale tolerates it" 0 rc)

let test_dlint_json_report () =
  with_temp_file (fun allow ->
      with_temp_file (fun json ->
          let rc =
            Sys.command
              (Printf.sprintf "%s --emit-allow %s > %s 2>/dev/null"
                 (Filename.quote dlint_exe) (Filename.quote fixture_root)
                 (Filename.quote allow))
          in
          Alcotest.(check int) "emit-allow exits 0" 0 rc;
          let rc = run [ dlint_exe; "--allow"; allow; "--json"; json; fixture_root ] in
          Alcotest.(check int) "gate passes" 0 rc;
          let ic = open_in_bin json in
          let text =
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          in
          match Expfinder_telemetry.Json.of_string text with
          | Error e -> Alcotest.failf "report is not valid JSON: %s" e
          | Ok doc ->
            let module Json = Expfinder_telemetry.Json in
            (match Json.member "ok" doc with
            | Some (Json.Bool true) -> ()
            | _ -> Alcotest.fail "report lacks ok=true");
            (match Option.bind (Json.member "summary" doc) (Json.member "unallowed") with
            | Some (Json.Int 0) -> ()
            | _ -> Alcotest.fail "summary.unallowed should be 0")))

let () =
  Alcotest.run "dsafe"
    [
      ( "scan",
        [
          Alcotest.test_case "detects every hazard class" `Quick test_detects_every_class;
          Alcotest.test_case "functions are not inventoried" `Quick test_no_false_positives;
          Alcotest.test_case "atomic/mutex intrinsically guarded" `Quick
            test_intrinsically_guarded;
        ] );
      ( "gate",
        [
          Alcotest.test_case "passes when fully allowlisted" `Quick
            test_gate_passes_when_allowlisted;
          Alcotest.test_case "fails on a fresh hazard" `Quick test_gate_fails_on_fresh_hazard;
          Alcotest.test_case "fails on a stale entry" `Quick test_gate_fails_on_stale_entry;
          Alcotest.test_case "allow-file syntax" `Quick test_parse_allow_line;
        ] );
      ( "dlint",
        [
          Alcotest.test_case "exit codes" `Quick test_dlint_exit_codes;
          Alcotest.test_case "stale entries" `Quick test_dlint_stale_entry_fails;
          Alcotest.test_case "json report" `Quick test_dlint_json_report;
        ] );
    ]
