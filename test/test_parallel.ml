(* Multicore execution model: the parallel primitives, the ?domains
   evaluation paths (digest-equal to the sequential oracle by
   construction — verified here by property), and the epoch-pinning
   contract under a concurrent writer. *)

open Expfinder_graph
open Expfinder_pattern
open Expfinder_core
open Expfinder_incremental
open Expfinder_engine
module Telemetry = Expfinder_telemetry
module Parallel = Expfinder_parallel
module Collab = Expfinder_workload.Collab
module Queries = Expfinder_workload.Queries

let labels = Array.map Label.of_string [| "A"; "B"; "C" |]

let random_digraph ?(max_n = 25) rng =
  let n = 2 + Prng.int rng max_n in
  let m = Prng.int rng (3 * n) in
  Generators.erdos_renyi rng ~n ~m (fun _ ->
      (Prng.choose rng labels, Attrs.of_list [ Attrs.int "exp" (Prng.int rng 4) ]))

(* --- primitives -------------------------------------------------------- *)

let prop_ranges_partition seed =
  let rng = Prng.create seed in
  let n = Prng.int rng 50 in
  let domains = 1 + Prng.int rng 8 in
  let ranges = Parallel.ranges ~domains n in
  let covered = Array.to_list ranges |> List.concat_map (fun (lo, hi) ->
      List.init (hi - lo) (fun i -> lo + i))
  in
  (* Contiguous, disjoint, covering, clamped to at most one range per
     item, and balanced to within one item. *)
  let k = Array.length ranges in
  covered = List.init n Fun.id
  && k = (if n = 0 then 1 else min domains n)
  && Array.for_all
       (fun (lo, hi) ->
         let size = hi - lo in
         size >= n / k && size <= (n / k) + 1)
       ranges

let test_run_join_order () =
  let results = Parallel.run ~domains:4 (fun i -> i * i) in
  Alcotest.(check (list int)) "chunk results in order" [ 0; 1; 4; 9 ]
    (Array.to_list results)

let test_run_propagates_exception () =
  match Parallel.run ~domains:3 (fun i -> if i = 1 then failwith "boom" else i) with
  | _ -> Alcotest.fail "expected the chunk exception to propagate"
  | exception Failure msg -> Alcotest.(check string) "first error wins" "boom" msg

let test_chan_fifo_and_close () =
  let c = Parallel.Chan.create ~capacity:8 () in
  List.iter (fun i -> Parallel.Chan.push c i) [ 1; 2; 3 ];
  Alcotest.(check int) "queued" 3 (Parallel.Chan.length c);
  Parallel.Chan.close c;
  (* Close drains: queued items still pop, then None. *)
  Alcotest.(check (list (option int))) "fifo then end-of-stream"
    [ Some 1; Some 2; Some 3; None ]
    (List.init 4 (fun _ -> Parallel.Chan.pop c));
  match Parallel.Chan.push c 4 with
  | () -> Alcotest.fail "push on a closed channel must raise"
  | exception Invalid_argument _ -> ()

let test_chan_bounded_blocks_until_popped () =
  let c = Parallel.Chan.create ~capacity:1 () in
  Parallel.Chan.push c 1;
  (* The second push must block until a consumer pops. *)
  let consumer =
    Domain.spawn (fun () ->
        let a = Parallel.Chan.pop c in
        let b = Parallel.Chan.pop c in
        (a, b))
  in
  Parallel.Chan.push c 2;
  Parallel.Chan.close c;
  let a, b = Domain.join consumer in
  Alcotest.(check (pair (option int) (option int))) "both delivered" (Some 1, Some 2) (a, b)

let test_pool_runs_all_jobs () =
  let hits = Atomic.make 0 in
  let errors = Atomic.make 0 in
  let pool =
    Parallel.Pool.create ~domains:3 ~on_error:(fun _ -> Atomic.incr errors) ()
  in
  Alcotest.(check int) "pool size" 3 (Parallel.Pool.size pool);
  for _ = 1 to 50 do
    Parallel.Pool.submit pool (fun () -> Atomic.incr hits)
  done;
  Parallel.Pool.submit pool (fun () -> failwith "job error");
  Parallel.Pool.shutdown pool;
  Alcotest.(check int) "every job ran before shutdown returned" 50 (Atomic.get hits);
  Alcotest.(check int) "the failing job hit the error sink" 1 (Atomic.get errors)

let test_serial_orders_and_propagates () =
  let w = Parallel.Serial.create () in
  let log = ref [] in
  let r1 = Parallel.Serial.submit w (fun () -> log := 1 :: !log; "one") in
  let r2 = Parallel.Serial.submit w (fun () -> log := 2 :: !log; "two") in
  Alcotest.(check (list string)) "results returned to submitters" [ "one"; "two" ] [ r1; r2 ];
  Alcotest.(check (list int)) "applied in submission order" [ 2; 1 ] !log;
  (match Parallel.Serial.submit w (fun () -> failwith "writer boom") with
  | _ -> Alcotest.fail "expected the writer exception on the submitter"
  | exception Failure msg -> Alcotest.(check string) "propagated" "writer boom" msg);
  (* The writer survives a failing job. *)
  Alcotest.(check string) "writer still alive" "after"
    (Parallel.Serial.submit w (fun () -> "after"));
  Parallel.Serial.shutdown w

(* --- pool/channel metrics under contention ----------------------------- *)

let test_pool_metrics_under_contention () =
  (* Saturate a 2-worker, capacity-2 pool: both workers block on a gate,
     two more jobs fill the bounded queue, and a fifth submit must wait
     for capacity.  The depth gauge, wait histograms and per-worker
     accounting all have to move. *)
  let was = Telemetry.enabled () in
  Telemetry.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Telemetry.set_enabled was)
    (fun () ->
      let depth = Telemetry.Metrics.gauge ~always:true "chan.tpool.jobs.depth" in
      let busy = Telemetry.Metrics.gauge ~always:true "tpool.busy" in
      let h_push = Telemetry.Metrics.histogram "chan.tpool.jobs.push_wait_us" in
      let h_pop = Telemetry.Metrics.histogram "chan.tpool.jobs.pop_wait_us" in
      let base_push = Telemetry.Histogram.count h_push in
      let base_pop = Telemetry.Histogram.count h_pop in
      let gate_m = Mutex.create () in
      let gate_c = Condition.create () in
      let gate_open = ref false in
      let wait_gate () =
        Mutex.lock gate_m;
        while not !gate_open do
          Condition.wait gate_c gate_m
        done;
        Mutex.unlock gate_m
      in
      let ran = Atomic.make 0 in
      let pool = Parallel.Pool.create ~name:"tpool" ~capacity:2 ~domains:2 () in
      for _ = 1 to 4 do
        Parallel.Pool.submit pool (fun () ->
            wait_gate ();
            Atomic.incr ran)
      done;
      (* Wait for both workers to hold a job, so the two remaining jobs
         sit in the queue and the gauge reads the true backlog. *)
      let rec await_busy tries =
        if Telemetry.Gauge.value busy < 2 && tries > 0 then begin
          Unix.sleepf 0.01;
          await_busy (tries - 1)
        end
      in
      await_busy 500;
      Alcotest.(check int) "both workers mid-job" 2 (Telemetry.Gauge.value busy);
      let depth_during = Telemetry.Gauge.value depth in
      (* The fifth submit blocks on the full queue, from a helper domain
         so this test can open the gate underneath it. *)
      let submitter =
        Domain.spawn (fun () -> Parallel.Pool.submit pool (fun () -> Atomic.incr ran))
      in
      Unix.sleepf 0.02;
      Mutex.lock gate_m;
      gate_open := true;
      Condition.broadcast gate_c;
      Mutex.unlock gate_m;
      Domain.join submitter;
      Parallel.Pool.shutdown pool;
      Alcotest.(check int) "every job ran" 5 (Atomic.get ran);
      Alcotest.(check bool) "depth gauge saw the backlog"
        true (depth_during >= 2);
      Alcotest.(check int) "depth gauge drained to zero" 0
        (Telemetry.Gauge.value depth);
      Alcotest.(check int) "busy gauge returned to zero" 0
        (Telemetry.Gauge.value busy);
      Alcotest.(check bool) "push-wait histogram moved" true
        (Telemetry.Histogram.count h_push > base_push);
      Alcotest.(check bool) "pop-wait histogram moved" true
        (Telemetry.Histogram.count h_pop > base_pop);
      let counter name =
        Telemetry.Counter.value (Telemetry.Metrics.counter ~always:true name)
      in
      Alcotest.(check int) "per-worker task counters account for every job" 5
        (counter "tpool.worker0.tasks" + counter "tpool.worker1.tasks");
      Alcotest.(check int) "aggregate task counter agrees" 5 (counter "tpool.tasks");
      Alcotest.(check bool) "busy/idle accounting accumulated" true
        (counter "tpool.worker0.busy_us" + counter "tpool.worker1.busy_us" >= 0
        && counter "tpool.worker0.idle_us" + counter "tpool.worker1.idle_us" > 0))

(* --- parallel evaluation is the sequential oracle ---------------------- *)

let digests relations = List.map Match_relation.digest relations

let prop_compute_batch_oracle seed =
  let rng = Prng.create seed in
  let g = random_digraph rng in
  let snap = Snapshot.of_digraph g in
  let queries =
    Queries.workload rng ~count:(1 + Prng.int rng 5) ~simulation:(Prng.bool rng) g
  in
  let qs = Array.of_list queries in
  let before = Telemetry.Metrics.counters_snapshot () in
  let seq = Candidates.compute_batch ~domains:1 qs snap in
  let mid = Telemetry.Metrics.counters_snapshot () in
  let par = Candidates.compute_batch ~domains:(2 + Prng.int rng 3) qs snap in
  let after = Telemetry.Metrics.counters_snapshot () in
  let candidate_deltas b a =
    Telemetry.Metrics.delta ~before:b ~after:a
    |> List.filter (fun (name, _) -> String.length name >= 10 && String.sub name 0 10 = "candidates")
    |> List.sort compare
  in
  (* Same relations *and* the same counter totals: parallel chunks tally
     locally and flush once, so observability is domain-count-blind. *)
  digests (Array.to_list seq) = digests (Array.to_list par)
  && candidate_deltas before mid = candidate_deltas mid after

let prop_refine_oracle seed =
  let rng = Prng.create seed in
  let g = random_digraph rng in
  let snap = Snapshot.of_digraph g in
  let simulation = Prng.bool rng in
  let queries = Queries.workload rng ~count:2 ~simulation g in
  let domains = 2 + Prng.int rng 3 in
  List.for_all
    (fun q ->
      let initial = Candidates.compute q snap in
      if Pattern.is_simulation_pattern q then
        let seq = Simulation.run_constrained ~domains:1 q snap ~initial ~mutable_set:None in
        let par = Simulation.run_constrained ~domains q snap ~initial ~mutable_set:None in
        Match_relation.digest seq = Match_relation.digest par
      else
        List.for_all
          (fun strategy ->
            let seq =
              Bounded_sim.run_constrained ~strategy ~domains:1 q snap ~initial
                ~mutable_set:None
            in
            let par =
              Bounded_sim.run_constrained ~strategy ~domains q snap ~initial
                ~mutable_set:None
            in
            Match_relation.digest seq = Match_relation.digest par)
          [ Bounded_sim.Counters; Bounded_sim.Naive ])
    queries

let prop_evaluate_batch_oracle seed =
  let rng = Prng.create seed in
  let g = random_digraph rng in
  let queries =
    Queries.workload rng ~count:(2 + Prng.int rng 6) ~simulation:(Prng.bool rng) g
  in
  (* Two fresh engines (digests ignore graph identity): one runs the
     sequential oracle, the other fans out across domains. *)
  let seq = Engine.evaluate_batch ~domains:1 (Engine.create g) queries in
  let par =
    Engine.evaluate_batch ~domains:(2 + Prng.int rng 3) (Engine.create (Digraph.copy g))
      queries
  in
  List.length seq = List.length par
  && List.for_all2
       (fun (a : Engine.answer) (b : Engine.answer) ->
         Match_relation.digest a.relation = Match_relation.digest b.relation
         && a.total = b.total)
       seq par

(* --- epoch pinning under a concurrent writer --------------------------- *)

let test_pinned_snapshot_under_writer () =
  let rng = Prng.create 7 in
  let g = Collab.graph () in
  let engine = Engine.create g in
  let q =
    match Queries.workload (Prng.create 11) ~count:1 ~simulation:true g with
    | [ q ] -> q
    | _ -> Alcotest.fail "workload did not yield one query"
  in
  let snap0 = Engine.snapshot engine in
  let epoch0 = Snapshot.epoch snap0 in
  let d0 = Match_relation.digest (Planner.run q snap0) in
  (* The reader evaluates on its pinned epoch in a loop; the writer
     advances epochs under it.  Immutable snapshots mean every re-read
     yields the same digest, however many updates land meanwhile.  The
     iteration count is fixed (not stop-flag-driven) so the test does
     not depend on scheduling on single-core hosts. *)
  let reader =
    Domain.spawn (fun () ->
        let stable = ref true in
        for _ = 1 to 60 do
          if Match_relation.digest (Planner.run q snap0) <> d0 then stable := false
        done;
        !stable)
  in
  for _ = 1 to 8 do
    ignore
      (Engine.apply_updates engine (Update.random_mixed rng g 3) : Incremental.report list)
  done;
  let stable = Domain.join reader in
  Alcotest.(check bool) "pinned-epoch answers never changed" true stable;
  Alcotest.(check int) "the pinned snapshot itself is untouched" epoch0
    (Snapshot.epoch snap0);
  (* The writer's epochs published: the engine's current snapshot moved
     on and answers on it match a from-scratch engine over the final
     graph. *)
  Alcotest.(check bool) "epoch advanced" true
    (Snapshot.epoch (Engine.snapshot engine) > epoch0);
  let fresh = Engine.create (Digraph.copy g) in
  Alcotest.(check string) "post-update answers match a fresh engine"
    (Match_relation.digest (Engine.evaluate fresh q).relation)
    (Match_relation.digest (Engine.evaluate engine q).relation)

let test_concurrent_readers_during_updates () =
  (* Engine-level interleaving: readers evaluate through the engine (cache,
     recorder, windows — all shared state) while updates apply.  The
     assertion is absence of crashes plus every answer digest belonging
     to some published epoch's answer set. *)
  let rng = Prng.create 23 in
  let g = Collab.graph () in
  let engine = Engine.create g in
  let q =
    match Queries.workload (Prng.create 5) ~count:1 ~simulation:true g with
    | [ q ] -> q
    | _ -> Alcotest.fail "workload did not yield one query"
  in
  (* Collect the answer digest on every epoch the writer will publish. *)
  let shadow = Digraph.copy g in
  let batches = List.init 6 (fun _ -> Update.random_mixed rng shadow 2) in
  let valid = Hashtbl.create 16 in
  let record_epoch dg =
    let snap = Snapshot.of_digraph dg in
    Hashtbl.replace valid (Match_relation.digest (Planner.run q snap)) ()
  in
  record_epoch shadow;
  List.iter
    (fun batch ->
      ignore (Update.apply_batch_filtered shadow batch : Update.t list);
      record_epoch shadow)
    batches;
  let reader =
    Domain.spawn (fun () ->
        let bad = ref 0 in
        for _ = 1 to 120 do
          let answer = Engine.evaluate engine q in
          if not (Hashtbl.mem valid (Match_relation.digest answer.relation)) then incr bad
        done;
        !bad)
  in
  List.iter
    (fun batch ->
      ignore (Engine.apply_updates engine batch : Incremental.report list))
    batches;
  let bad = Domain.join reader in
  Alcotest.(check int) "every answer matched some published epoch" 0 bad

(* --- per-domain trace roots -------------------------------------------- *)

let test_domain_local_trace_roots () =
  (* Two domains collect concurrently.  The open-span chain is
     Domain.DLS, so each root tree must contain exactly its own spans —
     no interleaving in the exported tree. *)
  let run tag =
    let ctx = Telemetry.Trace.make ~sampled:true () in
    Telemetry.Trace.collect ctx ("root-" ^ tag) (fun () ->
        for i = 1 to 40 do
          Telemetry.Trace.with_span ctx
            (Printf.sprintf "child-%s-%d" tag i)
            (fun () -> ignore (Sys.opaque_identity i))
        done)
  in
  let other = Domain.spawn (fun () -> run "a") in
  let (), root_b = run "b" in
  let (), root_a = Domain.join other in
  let names = function
    | None -> Alcotest.fail "collect under a sampled ctx must return a root"
    | Some root -> Telemetry.Span.preorder_names root
  in
  let foreign tag l =
    List.filter
      (fun n -> not (String.starts_with ~prefix:("child-" ^ tag ^ "-") n))
      (List.tl l)
  in
  let names_a = names root_a and names_b = names root_b in
  Alcotest.(check int) "domain a kept all its spans" 41 (List.length names_a);
  Alcotest.(check int) "domain b kept all its spans" 41 (List.length names_b);
  Alcotest.(check (list string)) "no b-spans under a's root" [] (foreign "a" names_a);
  Alcotest.(check (list string)) "no a-spans under b's root" [] (foreign "b" names_b)

(* ----------------------------------------------------------------------- *)

let qtest name count prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count ~name QCheck.small_int (fun s -> prop (s + 1)))

let () =
  Alcotest.run "parallel"
    [
      ( "primitives",
        [
          qtest "ranges partition [0,n)" 120 prop_ranges_partition;
          Alcotest.test_case "run joins in chunk order" `Quick test_run_join_order;
          Alcotest.test_case "run propagates chunk errors" `Quick
            test_run_propagates_exception;
          Alcotest.test_case "chan fifo/close" `Quick test_chan_fifo_and_close;
          Alcotest.test_case "chan capacity blocks" `Quick
            test_chan_bounded_blocks_until_popped;
          Alcotest.test_case "pool drains on shutdown" `Quick test_pool_runs_all_jobs;
          Alcotest.test_case "serial writer orders and propagates" `Quick
            test_serial_orders_and_propagates;
          Alcotest.test_case "pool metrics move under contention" `Quick
            test_pool_metrics_under_contention;
        ] );
      ( "oracle",
        [
          qtest "compute_batch ~domains = sequential" 40 prop_compute_batch_oracle;
          qtest "refine ~domains = sequential" 30 prop_refine_oracle;
          qtest "evaluate_batch ~domains digest-equal" 30 prop_evaluate_batch_oracle;
        ] );
      ( "interleaving",
        [
          Alcotest.test_case "pinned snapshot stable under writer" `Quick
            test_pinned_snapshot_under_writer;
          Alcotest.test_case "engine readers during updates" `Quick
            test_concurrent_readers_during_updates;
          Alcotest.test_case "per-domain trace roots" `Quick
            test_domain_local_trace_roots;
        ] );
    ]
