(* Unit and property tests for predicates, pattern queries, pattern I/O
   and the random pattern generator. *)

open Expfinder_graph
open Expfinder_pattern

(* --- Predicate --------------------------------------------------------- *)

let attrs = Attrs.of_list [ Attrs.int "exp" 5; Attrs.str "role" "DBA"; Attrs.float "score" 1.5 ]

let test_predicate_eval () =
  let check name pred expected = Alcotest.(check bool) name expected (Predicate.eval pred attrs) in
  check "always" Predicate.always true;
  check "ge true" (Predicate.ge_int "exp" 5) true;
  check "ge false" (Predicate.ge_int "exp" 6) false;
  check "gt" (Predicate.gt_int "exp" 4) true;
  check "le" (Predicate.le_int "exp" 5) true;
  check "lt false" (Predicate.lt_int "exp" 5) false;
  check "eq str" (Predicate.eq_str "role" "DBA") true;
  check "ne" (Predicate.atom "role" Predicate.Ne (Attr.String "SA")) true;
  check "conj both" (Predicate.conj (Predicate.ge_int "exp" 3) (Predicate.eq_str "role" "DBA")) true;
  check "conj one fails" (Predicate.conj (Predicate.ge_int "exp" 9) (Predicate.eq_str "role" "DBA")) false;
  check "missing attr" (Predicate.ge_int "age" 1) false;
  check "type mismatch" (Predicate.eq_str "exp" "5") false;
  check "float compare" (Predicate.atom "score" Predicate.Gt (Attr.Float 1.0)) true

let test_predicate_ops_roundtrip () =
  List.iter
    (fun op ->
      match Predicate.op_of_string (Predicate.op_to_string op) with
      | Some op' -> Alcotest.(check bool) "op roundtrip" true (op = op')
      | None -> Alcotest.fail "op roundtrip failed")
    [ Predicate.Eq; Ne; Lt; Le; Gt; Ge ];
  Alcotest.(check bool) "unknown op" true (Predicate.op_of_string "~=" = None)

let test_predicate_edge_cases () =
  let check name pred expected = Alcotest.(check bool) name expected (Predicate.eval pred attrs) in
  (* A comparison over a missing attribute never holds — not even Ne,
     which still requires a comparable stored value. *)
  check "ne on missing attr" (Predicate.atom "age" Predicate.Ne (Attr.Int 3)) false;
  check "ne on mistyped attr" (Predicate.atom "exp" Predicate.Ne (Attr.String "DBA")) false;
  check "lt on missing attr" (Predicate.lt_int "age" 100) false;
  (* Int and Float never compare, in either direction. *)
  check "int attr vs float atom" (Predicate.atom "exp" Predicate.Eq (Attr.Float 5.0)) false;
  check "float attr vs int atom" (Predicate.atom "score" Predicate.Gt (Attr.Int 1)) false;
  (* Contradictory conjunctions evaluate to false, matching what Qlint
     proves statically. *)
  let contradictions =
    [
      Predicate.conj (Predicate.ge_int "exp" 5) (Predicate.lt_int "exp" 3);
      Predicate.conj (Predicate.eq_str "role" "DBA") (Predicate.eq_str "role" "SA");
      Predicate.conj (Predicate.eq_int "exp" 5) (Predicate.atom "exp" Predicate.Ne (Attr.Int 5));
    ]
  in
  List.iter
    (fun p ->
      Alcotest.(check bool) "contradiction never matches" false (Predicate.eval p attrs);
      Alcotest.(check bool) "and Qlint flags it" true (Pattern_analysis.pred_unsat p <> None))
    contradictions

(* --- Pattern validation ------------------------------------------------- *)

let sa = Label.of_string "SA"
let sd = Label.of_string "SD"

let spec name label pred = { Pattern.name; label = Some label; pred }

let two_nodes = [| spec "SA" sa Predicate.always; spec "SD" sd Predicate.always |]

let test_pattern_validation () =
  let expect_error msg nodes edges output =
    match Pattern.make ~nodes ~edges ~output with
    | Ok _ -> Alcotest.fail ("accepted: " ^ msg)
    | Error _ -> ()
  in
  expect_error "empty" [||] [] 0;
  expect_error "output range" two_nodes [] 2;
  expect_error "edge range" two_nodes [ (0, 5, Pattern.Bounded 1) ] 0;
  expect_error "self loop" two_nodes [ (1, 1, Pattern.Bounded 1) ] 0;
  expect_error "zero bound" two_nodes [ (0, 1, Pattern.Bounded 0) ] 0;
  expect_error "duplicate edge" two_nodes
    [ (0, 1, Pattern.Bounded 1); (0, 1, Pattern.Bounded 2) ]
    0;
  match Pattern.make ~nodes:two_nodes ~edges:[ (0, 1, Pattern.Bounded 2) ] ~output:0 with
  | Ok p ->
    Alcotest.(check int) "size" 2 (Pattern.size p);
    Alcotest.(check int) "edges" 1 (Pattern.edge_count p)
  | Error e -> Alcotest.fail e

let test_pattern_accessors () =
  let p =
    Pattern.make_exn ~nodes:two_nodes
      ~edges:[ (0, 1, Pattern.Bounded 2); (1, 0, Pattern.Unbounded) ]
      ~output:1
  in
  Alcotest.(check int) "output" 1 (Pattern.output p);
  Alcotest.(check string) "name" "SD" (Pattern.name p 1);
  Alcotest.(check bool) "bound_of" true (Pattern.bound_of p 0 1 = Some (Pattern.Bounded 2));
  Alcotest.(check bool) "bound_of none" true (Pattern.bound_of p 0 0 = None);
  Alcotest.(check bool) "max bound" true (Pattern.max_bound p = Some 2);
  Alcotest.(check bool) "has unbounded" true (Pattern.has_unbounded_edge p);
  Alcotest.(check bool) "not simulation" false (Pattern.is_simulation_pattern p);
  let s = Pattern.to_simulation p in
  Alcotest.(check bool) "to_simulation" true (Pattern.is_simulation_pattern s);
  Alcotest.(check bool) "pnode_of_name" true (Pattern.pnode_of_name p "SA" = Some 0);
  Alcotest.(check bool) "pnode_of_name missing" true (Pattern.pnode_of_name p "XX" = None)

let test_matches_node () =
  let p =
    Pattern.make_exn
      ~nodes:[| spec "SA" sa (Predicate.ge_int "exp" 5) |]
      ~edges:[] ~output:0
  in
  let good = Attrs.of_list [ Attrs.int "exp" 7 ] in
  let bad = Attrs.of_list [ Attrs.int "exp" 3 ] in
  Alcotest.(check bool) "label+pred" true (Pattern.matches_node p 0 sa good);
  Alcotest.(check bool) "wrong label" false (Pattern.matches_node p 0 sd good);
  Alcotest.(check bool) "pred fails" false (Pattern.matches_node p 0 sa bad);
  let wild =
    Pattern.make_exn ~nodes:[| { Pattern.name = "any"; label = None; pred = Predicate.always } |]
      ~edges:[] ~output:0
  in
  Alcotest.(check bool) "wildcard" true (Pattern.matches_node wild 0 sd bad)

let test_fingerprint () =
  let p1 = Pattern.make_exn ~nodes:two_nodes ~edges:[ (0, 1, Pattern.Bounded 2) ] ~output:0 in
  let p2 = Pattern.make_exn ~nodes:two_nodes ~edges:[ (0, 1, Pattern.Bounded 2) ] ~output:0 in
  let p3 = Pattern.make_exn ~nodes:two_nodes ~edges:[ (0, 1, Pattern.Bounded 3) ] ~output:0 in
  Alcotest.(check string) "equal patterns same fp" (Pattern.fingerprint p1) (Pattern.fingerprint p2);
  Alcotest.(check bool) "different bound different fp" true
    (Pattern.fingerprint p1 <> Pattern.fingerprint p3);
  Alcotest.(check bool) "equal" true (Pattern.equal p1 p2);
  Alcotest.(check bool) "not equal" false (Pattern.equal p1 p3)

(* --- Pattern I/O -------------------------------------------------------- *)

let paper_query_text =
  "expfinder-pattern 1\n\
   node 0 SA SA exp>=int:5\n\
   node 1 SD SD exp>=int:2\n\
   node 2 BA BA exp>=int:3\n\
   node 3 ST ST exp>=int:2\n\
   edge 0 1 2\n\
   edge 1 0 2\n\
   edge 0 2 3\n\
   edge 3 2 1\n\
   output 0\n"

let test_io_parse_paper_query () =
  match Pattern_io.of_string paper_query_text with
  | Error e -> Alcotest.fail e
  | Ok p ->
    let q = Expfinder_workload.Collab.query () in
    Alcotest.(check bool) "equals Collab.query" true (Pattern.equal p q)

let test_io_roundtrip () =
  let q = Expfinder_workload.Collab.query () in
  match Pattern_io.of_string (Pattern_io.to_string q) with
  | Ok q' -> Alcotest.(check bool) "roundtrip" true (Pattern.equal q q')
  | Error e -> Alcotest.fail e

let test_io_unbounded_and_wildcard () =
  let p =
    Pattern.make_exn
      ~nodes:[| { Pattern.name = "any"; label = None; pred = Predicate.always }; spec "SD" sd Predicate.always |]
      ~edges:[ (0, 1, Pattern.Unbounded) ]
      ~output:0
  in
  match Pattern_io.of_string (Pattern_io.to_string p) with
  | Ok p' -> Alcotest.(check bool) "roundtrip */unbounded" true (Pattern.equal p p')
  | Error e -> Alcotest.fail e

let test_io_errors () =
  let bad input =
    match Pattern_io.of_string input with Ok _ -> Alcotest.fail "accepted" | Error _ -> ()
  in
  bad "";
  bad "nonsense";
  bad "expfinder-pattern 1\nnode 0 SA SA\n";
  (* missing output *)
  bad "expfinder-pattern 1\nnode 0 SA SA\nedge 0 0 1\noutput 0";
  (* self loop *)
  bad "expfinder-pattern 1\nnode 0 SA SA\noutput 3";
  (* output out of range *)
  bad "expfinder-pattern 1\nnode 0 SA SA exp>>int:1\noutput 0"

let prop_io_roundtrip seed =
  let rng = Prng.create seed in
  let labels = Array.map Label.of_string [| "A"; "B"; "C" |] in
  let config =
    {
      Pattern_gen.default with
      nodes = 1 + Prng.int rng 5;
      extra_edges = Prng.int rng 4;
      max_bound = 4;
      unbounded_prob = 0.2;
    }
  in
  let p = Pattern_gen.generate rng config ~labels in
  match Pattern_io.of_string (Pattern_io.to_string p) with
  | Ok p' -> Pattern.equal p p'
  | Error _ -> false

(* Qlint-flagged patterns must serialize like any other: inject a
   contradictory conjunction (and extra Ne/Lt/Eq atoms, covering every
   operator's syntax) into a generated pattern and round-trip it. *)
let prop_io_roundtrip_flagged seed =
  let rng = Prng.create seed in
  let labels = Array.map Label.of_string [| "A"; "B"; "C" |] in
  let config =
    { Pattern_gen.default with nodes = 1 + Prng.int rng 4; extra_edges = Prng.int rng 3 }
  in
  let p = Pattern_gen.generate rng config ~labels in
  let victim = Prng.int rng (Pattern.size p) in
  let contradiction =
    match Prng.int rng 3 with
    | 0 -> Predicate.conj (Predicate.ge_int "exp" 5) (Predicate.lt_int "exp" 3)
    | 1 -> Predicate.conj (Predicate.eq_str "specialty" "DBA") (Predicate.eq_str "specialty" "SA")
    | _ ->
      Predicate.conj (Predicate.eq_int "exp" 4) (Predicate.atom "exp" Predicate.Ne (Attr.Int 4))
  in
  let nodes =
    Array.init (Pattern.size p) (fun u ->
        let s = Pattern.node_spec p u in
        if u = victim then { s with Pattern.pred = Predicate.conj s.Pattern.pred contradiction }
        else s)
  in
  let flagged = Pattern.make_exn ~nodes ~edges:(Pattern.edges p) ~output:(Pattern.output p) in
  Pattern_analysis.statically_empty flagged
  &&
  match Pattern_io.of_string (Pattern_io.to_string flagged) with
  | Error _ -> false
  | Ok p' -> Pattern.equal flagged p' && Pattern_analysis.statically_empty p'

let test_dot () =
  let dot = Pattern_io.to_dot (Expfinder_workload.Collab.query ()) in
  Alcotest.(check bool) "nonempty" true (String.length dot > 40)

(* --- Pattern generator --------------------------------------------------- *)

let prop_generated_patterns_valid seed =
  let rng = Prng.create seed in
  let labels = Array.map Label.of_string [| "A"; "B" |] in
  let config =
    { Pattern_gen.default with nodes = 1 + Prng.int rng 6; extra_edges = Prng.int rng 5 }
  in
  let p = Pattern_gen.generate rng config ~labels in
  (* Output reaches every node: follow edges from node 0. *)
  let n = Pattern.size p in
  let seen = Array.make n false in
  let rec dfs u =
    if not seen.(u) then begin
      seen.(u) <- true;
      List.iter (fun (v, _) -> dfs v) (Pattern.out_edges p u)
    end
  in
  dfs (Pattern.output p);
  Array.for_all Fun.id seen && Pattern.output p = 0

let prop_simulation_config_bounds seed =
  let rng = Prng.create seed in
  let labels = Array.map Label.of_string [| "A"; "B" |] in
  let config = Pattern_gen.simulation_config { Pattern_gen.default with unbounded_prob = 0.5 } in
  Pattern.is_simulation_pattern (Pattern_gen.generate rng config ~labels)

let qcheck_cases =
  [
    QCheck.Test.make ~count:100 ~name:"pattern io roundtrip" QCheck.small_int (fun s ->
        prop_io_roundtrip (s + 1));
    QCheck.Test.make ~count:100 ~name:"flagged pattern io roundtrip" QCheck.small_int (fun s ->
        prop_io_roundtrip_flagged (s + 1));
    QCheck.Test.make ~count:100 ~name:"generated patterns connected" QCheck.small_int
      (fun s -> prop_generated_patterns_valid (s + 1));
    QCheck.Test.make ~count:50 ~name:"simulation config forces bound 1" QCheck.small_int
      (fun s -> prop_simulation_config_bounds (s + 1));
  ]

let () =
  Alcotest.run "pattern"
    [
      ( "predicate",
        [
          Alcotest.test_case "eval" `Quick test_predicate_eval;
          Alcotest.test_case "ops roundtrip" `Quick test_predicate_ops_roundtrip;
          Alcotest.test_case "edge cases" `Quick test_predicate_edge_cases;
        ] );
      ( "pattern",
        [
          Alcotest.test_case "validation" `Quick test_pattern_validation;
          Alcotest.test_case "accessors" `Quick test_pattern_accessors;
          Alcotest.test_case "matches_node" `Quick test_matches_node;
          Alcotest.test_case "fingerprint" `Quick test_fingerprint;
        ] );
      ( "io",
        [
          Alcotest.test_case "parse paper query" `Quick test_io_parse_paper_query;
          Alcotest.test_case "roundtrip" `Quick test_io_roundtrip;
          Alcotest.test_case "wildcard/unbounded" `Quick test_io_unbounded_and_wildcard;
          Alcotest.test_case "errors" `Quick test_io_errors;
          Alcotest.test_case "dot" `Quick test_dot;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_cases);
    ]
