(* Deeper substrate coverage: reference-based properties for SCC,
   shortest paths, traversal orders, and the small utility modules. *)

open Expfinder_graph

let label_a = Label.of_string "A"

let random_csr ?(max_n = 25) ?(density = 3) rng =
  let n = 1 + Prng.int rng max_n in
  Csr.of_digraph
    (Generators.erdos_renyi rng ~n ~m:(Prng.int rng (density * n)) (fun _ ->
         (label_a, Attrs.empty)))

(* --- SCC vs mutual-reachability reference ------------------------------ *)

let prop_scc_reference seed =
  let rng = Prng.create seed in
  let g = random_csr rng in
  let n = Csr.node_count g in
  let scc = Scc.compute g in
  let reachable = Array.init n (fun v -> Traversal.reachable_from g [ v ]) in
  let ok = ref true in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      let mutual = Bitset.mem reachable.(u) v && Bitset.mem reachable.(v) u in
      if Scc.component scc u = Scc.component scc v <> mutual then ok := false
    done
  done;
  !ok

let prop_scc_members_partition seed =
  let rng = Prng.create seed in
  let g = random_csr rng in
  let scc = Scc.compute g in
  let total =
    List.init (Scc.count scc) (Scc.component_size scc) |> List.fold_left ( + ) 0
  in
  total = Csr.node_count g

let prop_condensation_acyclic seed =
  let rng = Prng.create seed in
  let g = random_csr rng in
  let scc = Scc.compute g in
  let adj = Scc.condensation scc g in
  (* Build the condensation as a digraph and check it is a DAG. *)
  let labels = Array.make (max (Scc.count scc) 1) label_a in
  let edges = ref [] in
  Array.iteri (fun c succs -> List.iter (fun s -> edges := (c, s) :: !edges) succs) adj;
  Scc.count scc = 0 || Traversal.is_dag (Csr.of_digraph (Digraph.of_edges ~labels !edges))

(* --- traversal orders ---------------------------------------------------- *)

let prop_postorder_visits_once seed =
  let rng = Prng.create seed in
  let g = random_csr rng in
  let seen = Hashtbl.create 16 in
  Traversal.dfs_postorder g (fun v ->
      if Hashtbl.mem seen v then failwith "revisit";
      Hashtbl.replace seen v ());
  Hashtbl.length seen = Csr.node_count g

let prop_topological_respects_edges seed =
  let rng = Prng.create seed in
  let n = 2 + Prng.int rng 25 in
  let g =
    Csr.of_digraph
      (Generators.random_dag rng ~n ~m:(Prng.int rng (3 * n)) (fun _ -> (label_a, Attrs.empty)))
  in
  match Traversal.topological_order g with
  | None -> false
  | Some order ->
    let position = Array.make n 0 in
    Array.iteri (fun i v -> position.(v) <- i) order;
    let ok = ref true in
    Csr.iter_edges g (fun u v -> if position.(u) >= position.(v) then ok := false);
    !ok

let prop_bfs_layers_monotone seed =
  let rng = Prng.create seed in
  let g = random_csr rng in
  let order = ref [] in
  Traversal.bfs g [ 0 ] (fun _ d -> order := d :: !order);
  let rec non_decreasing = function
    | a :: b :: rest -> b <= a && non_decreasing (b :: rest)
    | _ -> true
  in
  (* order is reversed, so distances must be non-increasing *)
  non_decreasing !order

(* --- shortest paths ------------------------------------------------------ *)

(* Bellman-Ford reference for Wgraph.dijkstra. *)
let bellman_ford w src =
  let n = Wgraph.node_count w in
  let dist = Array.make n max_int in
  dist.(src) <- 0;
  for _ = 1 to n do
    Wgraph.iter_edges w (fun u v weight ->
        if dist.(u) < max_int && dist.(u) + weight < dist.(v) then
          dist.(v) <- dist.(u) + weight)
  done;
  Array.map (fun d -> if d = max_int then -1 else d) dist

let random_wgraph rng =
  let n = 1 + Prng.int rng 20 in
  let w = Wgraph.create n in
  for _ = 1 to Prng.int rng (3 * n) do
    let u = Prng.int rng n and v = Prng.int rng n in
    if u <> v then Wgraph.add_edge w u v (1 + Prng.int rng 9)
  done;
  w

let prop_dijkstra_reference seed =
  let rng = Prng.create seed in
  let w = random_wgraph rng in
  let src = Prng.int rng (Wgraph.node_count w) in
  Wgraph.dijkstra w src = bellman_ford w src

let prop_dijkstra_rev_is_transpose seed =
  let rng = Prng.create seed in
  let w = random_wgraph rng in
  let src = Prng.int rng (Wgraph.node_count w) in
  Wgraph.dijkstra_rev w src = Wgraph.dijkstra (Wgraph.transpose w) src

let test_transpose_involution () =
  let rng = Prng.create 3 in
  let w = random_wgraph rng in
  let t2 = Wgraph.transpose (Wgraph.transpose w) in
  Alcotest.(check int) "edge count" (Wgraph.edge_count w) (Wgraph.edge_count t2);
  Wgraph.iter_edges w (fun u v d ->
      Alcotest.(check (option int)) "weight preserved" (Some d) (Wgraph.weight t2 u v))

(* --- Distance vs reference ----------------------------------------------- *)

let prop_distances_from_reference seed =
  let rng = Prng.create seed in
  let g = random_csr rng in
  let src = Prng.int rng (Csr.node_count g) in
  let expected = Array.make (Csr.node_count g) (-1) in
  Traversal.bfs g [ src ] (fun v d -> expected.(v) <- d);
  Distance.distances_from (Snapshot.of_csr g) src = expected

let prop_digraph_distance_instance_agrees seed =
  (* The functor instance over Digraph must agree with the Snapshot one. *)
  let rng = Prng.create seed in
  let n = 1 + Prng.int rng 20 in
  let dg =
    Generators.erdos_renyi rng ~n ~m:(Prng.int rng (3 * n)) (fun _ -> (label_a, Attrs.empty))
  in
  let csr = Snapshot.of_digraph dg in
  let module DD = Distance.Make (Digraph) in
  let s_csr = Distance.make_scratch csr in
  let s_dg = DD.make_scratch dg in
  let ok = ref true in
  for v = 0 to n - 1 do
    for k = 1 to 3 do
      let a = Hashtbl.create 8 and b = Hashtbl.create 8 in
      Distance.ball s_csr csr v k (fun w d -> Hashtbl.replace a w d);
      DD.ball s_dg dg v k (fun w d -> Hashtbl.replace b w d);
      if Hashtbl.length a <> Hashtbl.length b then ok := false;
      Hashtbl.iter (fun w d -> if Hashtbl.find_opt b w <> Some d then ok := false) a
    done
  done;
  !ok

(* --- utility modules ------------------------------------------------------ *)

let test_vec_roundtrip_and_blit () =
  let xs = [ 5; 4; 3; 2; 1 ] in
  let v = Vec.of_list ~dummy:0 xs in
  Alcotest.(check (list int)) "roundtrip" xs (Vec.to_list v);
  let arr = Array.make 7 9 in
  Vec.blit_into_array v arr 1;
  Alcotest.(check (list int)) "blit" [ 9; 5; 4; 3; 2; 1; 9 ] (Array.to_list arr);
  let c = Vec.copy v in
  Vec.set c 0 42;
  Alcotest.(check int) "copy independent" 5 (Vec.get v 0);
  Alcotest.(check (list int)) "to_array" xs (Array.to_list (Vec.to_array v))

let test_prng_split_independence () =
  let a = Prng.create 1 in
  let b = Prng.split a in
  let xs = List.init 10 (fun _ -> Prng.int a 1_000_000) in
  let ys = List.init 10 (fun _ -> Prng.int b 1_000_000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys);
  let c = Prng.copy a in
  Alcotest.(check int) "copy continues identically" (Prng.int a 1000) (Prng.int c 1000)

let test_prng_shuffle_is_permutation () =
  let rng = Prng.create 4 in
  let arr = Array.init 50 Fun.id in
  Prng.shuffle rng arr;
  Alcotest.(check (list int)) "permutation" (List.init 50 Fun.id)
    (List.sort compare (Array.to_list arr))

let test_attrs_union_bias () =
  let a = Attrs.of_list [ Attrs.int "x" 1; Attrs.int "y" 2 ] in
  let b = Attrs.of_list [ Attrs.int "y" 9; Attrs.str "z" "s" ] in
  let u = Attrs.union a b in
  Alcotest.(check bool) "b wins" true (Attrs.find u "y" = Some (Attr.Int 9));
  Alcotest.(check bool) "a kept" true (Attrs.find u "x" = Some (Attr.Int 1));
  Alcotest.(check int) "merged size" 3 (Attrs.cardinal u);
  let rendered = Format.asprintf "%a" Attrs.pp u in
  Alcotest.(check bool) "pp renders" true (String.length rendered > 5)

let test_label_index_complete () =
  let rng = Prng.create 5 in
  let labels = Array.map Label.of_string [| "A"; "B" |] in
  let g =
    Csr.of_digraph
      (Generators.erdos_renyi rng ~n:40 ~m:60 (fun _ -> (Prng.choose rng labels, Attrs.empty)))
  in
  let indexed =
    List.length (Csr.nodes_with_label g labels.(0))
    + List.length (Csr.nodes_with_label g labels.(1))
  in
  Alcotest.(check int) "index covers all nodes" 40 indexed;
  Alcotest.(check (list int)) "missing label" []
    (Csr.nodes_with_label g (Label.of_string "no-such-label-anywhere"))

let test_csr_source_version () =
  let g = Expfinder_workload.Collab.graph () in
  let c1 = Csr.of_digraph g in
  ignore (Digraph.add_edge g 0 3 : bool);
  let c2 = Csr.of_digraph g in
  Alcotest.(check bool) "version advanced" true
    (Csr.source_version c2 > Csr.source_version c1)

let test_self_loop_semantics () =
  let g = Digraph.of_edges ~labels:[| label_a |] [ (0, 0) ] in
  let c = Snapshot.of_digraph g in
  Alcotest.(check int) "self loop kept" 1 (Snapshot.edge_count c);
  let scratch = Distance.make_scratch c in
  let found = ref None in
  Distance.ball scratch c 0 1 (fun w d -> if w = 0 then found := Some d);
  Alcotest.(check (option int)) "self at distance 1" (Some 1) !found;
  let r = Reach.compute c in
  Alcotest.(check bool) "on cycle" true (Reach.on_cycle r 0)

let qcheck_cases =
  [
    QCheck.Test.make ~count:40 ~name:"scc = mutual reachability" QCheck.small_int (fun s ->
        prop_scc_reference (s + 1));
    QCheck.Test.make ~count:60 ~name:"scc members partition" QCheck.small_int (fun s ->
        prop_scc_members_partition (s + 1));
    QCheck.Test.make ~count:40 ~name:"condensation acyclic" QCheck.small_int (fun s ->
        prop_condensation_acyclic (s + 1));
    QCheck.Test.make ~count:60 ~name:"postorder visits once" QCheck.small_int (fun s ->
        prop_postorder_visits_once (s + 1));
    QCheck.Test.make ~count:60 ~name:"topological respects edges" QCheck.small_int (fun s ->
        prop_topological_respects_edges (s + 1));
    QCheck.Test.make ~count:60 ~name:"bfs layers monotone" QCheck.small_int (fun s ->
        prop_bfs_layers_monotone (s + 1));
    QCheck.Test.make ~count:60 ~name:"dijkstra = bellman-ford" QCheck.small_int (fun s ->
        prop_dijkstra_reference (s + 1));
    QCheck.Test.make ~count:60 ~name:"dijkstra_rev = transpose" QCheck.small_int (fun s ->
        prop_dijkstra_rev_is_transpose (s + 1));
    QCheck.Test.make ~count:60 ~name:"distances_from = bfs" QCheck.small_int (fun s ->
        prop_distances_from_reference (s + 1));
    QCheck.Test.make ~count:30 ~name:"Digraph distance instance = Csr instance"
      QCheck.small_int (fun s -> prop_digraph_distance_instance_agrees (s + 1));
  ]

let () =
  Alcotest.run "graph_extra"
    [
      ( "utilities",
        [
          Alcotest.test_case "vec roundtrip/blit" `Quick test_vec_roundtrip_and_blit;
          Alcotest.test_case "prng split" `Quick test_prng_split_independence;
          Alcotest.test_case "prng shuffle" `Quick test_prng_shuffle_is_permutation;
          Alcotest.test_case "attrs union" `Quick test_attrs_union_bias;
          Alcotest.test_case "wgraph transpose" `Quick test_transpose_involution;
        ] );
      ( "csr",
        [
          Alcotest.test_case "label index" `Quick test_label_index_complete;
          Alcotest.test_case "source version" `Quick test_csr_source_version;
          Alcotest.test_case "self loops" `Quick test_self_loop_semantics;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_cases);
    ]
