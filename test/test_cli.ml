(* End-to-end CLI tests: drive bin/expfinder.exe as a subprocess through
   the full file-based workflow (gen -> stats -> query -> topk ->
   compress -> update), checking outputs and exit codes. *)

let exe =
  (* dune places the test binary in _build/default/test/; the CLI lives
     next door in bin/. *)
  let candidates =
    [
      Filename.concat (Filename.dirname Sys.executable_name) "../bin/expfinder.exe";
      "_build/default/bin/expfinder.exe";
      "../bin/expfinder.exe";
    ]
  in
  List.find_opt Sys.file_exists candidates

let with_tmpdir f =
  let dir = Filename.temp_file "expfinder-cli" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun file -> Sys.remove (Filename.concat dir file)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let run exe args =
  let cmd =
    Filename.quote_command exe args ^ " 2>/dev/null"
  in
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  let code = match status with Unix.WEXITED c -> c | _ -> -1 in
  (code, Buffer.contents buf)

let contains haystack needle =
  let n = String.length haystack and k = String.length needle in
  let rec scan i = i + k <= n && (String.sub haystack i k = needle || scan (i + 1)) in
  scan 0

let paper_query =
  "expfinder-pattern 1\n\
   node 0 SA SA exp>=int:5\n\
   node 1 SD SD exp>=int:2\n\
   node 2 BA BA exp>=int:3\n\
   node 3 ST ST exp>=int:2\n\
   edge 0 1 2\n\
   edge 1 0 2\n\
   edge 0 2 3\n\
   edge 3 2 1\n\
   output 0\n"

let write path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

let cli_workflow exe () =
  with_tmpdir (fun dir ->
      let graph = Filename.concat dir "collab.graph" in
      let query = Filename.concat dir "q.pattern" in
      write query paper_query;
      (* gen *)
      let code, out = run exe [ "gen"; "--kind"; "collab"; "-o"; graph ] in
      Alcotest.(check int) "gen exits 0" 0 code;
      Alcotest.(check bool) "gen reports size" true (contains out "9 nodes");
      (* stats *)
      let code, out = run exe [ "stats"; "-g"; graph ] in
      Alcotest.(check int) "stats exits 0" 0 code;
      Alcotest.(check bool) "stats nodes" true (contains out "nodes=9");
      (* query with summary *)
      let code, out = run exe [ "query"; "-g"; graph; "-q"; query; "--summary" ] in
      Alcotest.(check int) "query exits 0" 0 code;
      Alcotest.(check bool) "SA matches" true (contains out "SA -> [0; 1]");
      Alcotest.(check bool) "summary rendered" true (contains out "witness edges");
      (* topk with dot *)
      let dot = Filename.concat dir "gr.dot" in
      let code, out = run exe [ "topk"; "-g"; graph; "-q"; query; "-k"; "2"; "--dot"; dot ] in
      Alcotest.(check int) "topk exits 0" 0 code;
      Alcotest.(check bool) "Bob first" true (contains out "#1: node 1 (Bob)");
      Alcotest.(check bool) "exact rank" true (contains out "9/5");
      Alcotest.(check bool) "dot written" true (Sys.file_exists dot);
      (* update with incremental delta *)
      let code, out =
        run exe [ "update"; "-g"; graph; "--insert"; "7,2"; "-q"; query ]
      in
      Alcotest.(check int) "update exits 0" 0 code;
      Alcotest.(check bool) "delta reported" true (contains out "+ (SD, 7)");
      (* compress *)
      let code, out =
        run exe [ "compress"; "-g"; graph; "--atoms"; "exp>=2,exp>=3,exp>=5" ]
      in
      Alcotest.(check int) "compress exits 0" 0 code;
      Alcotest.(check bool) "reduction reported" true (contains out "reduction:");
      (* demo reproduces the paper *)
      let code, out = run exe [ "demo" ] in
      Alcotest.(check int) "demo exits 0" 0 code;
      Alcotest.(check bool) "demo rank" true (contains out "9/5");
      Alcotest.(check bool) "demo delta" true (contains out "(SD, Fred)"))

(* One record per report, with IQR-tight samples so the diff verdict is
   deterministic. *)
let report_json ~median =
  Printf.sprintf
    "{\"schema_version\": 1, \"tool\": \"test\", \"mode\": \"quick\", \"created_unix\": 0.0,\n\
    \ \"records\": [{\"id\": \"EXP-Q1.bsim.n=2000\", \"experiment\": \"EXP-Q1\",\n\
    \ \"unit\": \"ms\", \"params\": {}, \"samples\": [%.1f, %.1f, %.1f]}]}\n"
    (median -. 0.1) median (median +. 0.1)

let cli_observability exe () =
  with_tmpdir (fun dir ->
      let graph = Filename.concat dir "collab.graph" in
      let query = Filename.concat dir "q.pattern" in
      write query paper_query;
      let code, _ = run exe [ "gen"; "--kind"; "collab"; "-o"; graph ] in
      Alcotest.(check int) "gen exits 0" 0 code;
      (* explain, plan only *)
      let code, out = run exe [ "explain"; "-g"; graph; "-q"; query ] in
      Alcotest.(check int) "explain exits 0" 0 code;
      Alcotest.(check bool) "plan printed" true (contains out "strategy:");
      Alcotest.(check bool) "no actuals without --analyze" false (contains out "act.cand");
      (* explain --analyze: estimated-vs-actual table *)
      let code, out = run exe [ "explain"; "-g"; graph; "-q"; query; "--analyze" ] in
      Alcotest.(check int) "explain --analyze exits 0" 0 code;
      Alcotest.(check bool) "est vs actual table" true (contains out "act.cand");
      Alcotest.(check bool) "per-node rows" true (contains out "SA");
      (* stats --json: machine-readable registry *)
      let code, out = run exe [ "stats"; "-g"; graph; "-q"; query; "--json" ] in
      Alcotest.(check int) "stats --json exits 0" 0 code;
      Alcotest.(check bool) "registry as JSON" true (contains out "\"engine.queries\"");
      Alcotest.(check bool) "counter kinds" true (contains out "\"kind\": \"counter\"");
      Alcotest.(check bool) "histograms serialized" true (contains out "\"p95\"");
      (* stats --recent: the flight recorder captured the query *)
      let code, out = run exe [ "stats"; "-g"; graph; "-q"; query; "--recent" ] in
      Alcotest.(check int) "stats --recent exits 0" 0 code;
      Alcotest.(check bool) "flight recorder dumped" true (contains out "flight recorder");
      Alcotest.(check bool) "query event recorded" true (contains out "direct/"))

let cli_bench_diff exe () =
  with_tmpdir (fun dir ->
      let old_file = Filename.concat dir "old.json" in
      let same_file = Filename.concat dir "same.json" in
      let slow_file = Filename.concat dir "slow.json" in
      write old_file (report_json ~median:10.0);
      write same_file (report_json ~median:10.05);
      write slow_file (report_json ~median:25.0);
      let code, out = run exe [ "bench-diff"; old_file; same_file ] in
      Alcotest.(check int) "identical medians exit 0" 0 code;
      Alcotest.(check bool) "no regression reported" false (contains out "REGRESSION");
      let code, out = run exe [ "bench-diff"; old_file; slow_file ] in
      Alcotest.(check bool) "2.5x slowdown exits non-zero" true (code <> 0);
      Alcotest.(check bool) "regression reported" true (contains out "REGRESSION");
      (* The improvement direction does not gate. *)
      let code, out = run exe [ "bench-diff"; slow_file; old_file ] in
      Alcotest.(check int) "improvement exits 0" 0 code;
      Alcotest.(check bool) "improvement reported" true (contains out "improved");
      (* A custom threshold turns the same pair into a pass. *)
      let code, _ = run exe [ "bench-diff"; old_file; slow_file; "--threshold"; "2.0" ] in
      Alcotest.(check int) "looser threshold passes" 0 code;
      (* Corrupt input is a clean error, not a crash. *)
      let bad = Filename.concat dir "bad.json" in
      write bad "{not json";
      let code, _ = run exe [ "bench-diff"; old_file; bad ] in
      Alcotest.(check int) "bad report rejected" 1 code)

let cli_errors exe () =
  with_tmpdir (fun dir ->
      let missing = Filename.concat dir "missing.graph" in
      let code, _ = run exe [ "stats"; "-g"; missing ] in
      Alcotest.(check bool) "missing file fails" true (code <> 0);
      let bad = Filename.concat dir "bad.graph" in
      write bad "not a graph\n";
      let code, _ = run exe [ "stats"; "-g"; bad ] in
      Alcotest.(check int) "bad graph rejected" 1 code;
      let code, _ = run exe [ "gen"; "--kind"; "nonsense"; "-o"; Filename.concat dir "x" ] in
      Alcotest.(check int) "unknown kind rejected" 1 code)

let () =
  match exe with
  | None ->
    (* Binary not built (e.g. running a partial build); nothing to test. *)
    Alcotest.run "cli" [ ("skipped", [] ) ]
  | Some exe ->
    Alcotest.run "cli"
      [
        ( "workflow",
          [
            Alcotest.test_case "full file workflow" `Quick (cli_workflow exe);
            Alcotest.test_case "observability commands" `Quick (cli_observability exe);
            Alcotest.test_case "bench-diff gate" `Quick (cli_bench_diff exe);
            Alcotest.test_case "error handling" `Quick (cli_errors exe);
          ] );
      ]
