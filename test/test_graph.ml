(* Unit and property tests for the graph substrate. *)

open Expfinder_graph

(* --- Vec ------------------------------------------------------------ *)

let test_vec_basics () =
  let v = Vec.create ~dummy:0 () in
  Alcotest.(check bool) "empty" true (Vec.is_empty v);
  for i = 1 to 100 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get 41" 42 (Vec.get v 41);
  Vec.set v 41 0;
  Alcotest.(check int) "set" 0 (Vec.get v 41);
  Alcotest.(check int) "pop" 100 (Vec.pop v);
  Alcotest.(check int) "top" 99 (Vec.top v);
  Alcotest.(check int) "fold sum" (4950 - 42) (Vec.fold_left ( + ) 0 v);
  Vec.clear v;
  Alcotest.(check int) "cleared" 0 (Vec.length v)

let test_vec_remove_first () =
  let v = Vec.of_list ~dummy:0 [ 1; 2; 3; 4 ] in
  Alcotest.(check bool) "removed" true (Vec.remove_first (fun x -> x = 2) v);
  Alcotest.(check int) "length" 3 (Vec.length v);
  Alcotest.(check bool) "2 gone" false (Vec.exists (fun x -> x = 2) v);
  Alcotest.(check bool) "absent" false (Vec.remove_first (fun x -> x = 9) v)

let test_vec_bounds () =
  let v = Vec.make 3 7 in
  Alcotest.check_raises "get out of bounds" (Invalid_argument "Vec.get") (fun () ->
      ignore (Vec.get v 3 : int));
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop") (fun () ->
      ignore (Vec.pop (Vec.create ~dummy:0 ()) : int))

(* --- Prng ------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  let xs = List.init 20 (fun _ -> Prng.int a 1000) in
  let ys = List.init 20 (fun _ -> Prng.int b 1000) in
  Alcotest.(check (list int)) "same stream" xs ys

let test_prng_bounds () =
  let rng = Prng.create 7 in
  for _ = 1 to 1000 do
    let x = Prng.int rng 10 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 10);
    let y = Prng.int_in rng 5 9 in
    Alcotest.(check bool) "in closed range" true (y >= 5 && y <= 9);
    let f = Prng.float rng 2.0 in
    Alcotest.(check bool) "float range" true (f >= 0.0 && f < 2.0)
  done

let test_prng_sample () =
  let rng = Prng.create 3 in
  let s = Prng.sample_without_replacement rng 10 50 in
  Alcotest.(check int) "10 samples" 10 (Array.length s);
  let sorted = List.sort_uniq compare (Array.to_list s) in
  Alcotest.(check int) "distinct" 10 (List.length sorted);
  List.iter (fun x -> Alcotest.(check bool) "range" true (x >= 0 && x < 50)) sorted;
  let all = Prng.sample_without_replacement rng 20 20 in
  Alcotest.(check (list int)) "k = n is a permutation" (List.init 20 Fun.id)
    (List.sort compare (Array.to_list all))

(* --- Bitset ---------------------------------------------------------- *)

let test_bitset_basics () =
  let s = Bitset.create 200 in
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 64;
  Bitset.add s 199;
  Alcotest.(check bool) "mem 63" true (Bitset.mem s 63);
  Alcotest.(check bool) "not mem 1" false (Bitset.mem s 1);
  Alcotest.(check int) "cardinal" 4 (Bitset.cardinal s);
  Alcotest.(check (list int)) "to_list" [ 0; 63; 64; 199 ] (Bitset.to_list s);
  Bitset.remove s 63;
  Alcotest.(check int) "after remove" 3 (Bitset.cardinal s);
  Alcotest.check_raises "out of bounds" (Invalid_argument "Bitset: out of bounds")
    (fun () -> Bitset.add s 200)

let prop_bitset_model seed =
  (* Compare against a list-based model under random ops. *)
  let rng = Prng.create seed in
  let n = 1 + Prng.int rng 150 in
  let s = Bitset.create n in
  let model = Hashtbl.create 16 in
  for _ = 1 to 300 do
    let i = Prng.int rng n in
    if Prng.bool rng then begin
      Bitset.add s i;
      Hashtbl.replace model i ()
    end
    else begin
      Bitset.remove s i;
      Hashtbl.remove model i
    end
  done;
  let expected = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) model []) in
  Bitset.to_list s = expected && Bitset.cardinal s = List.length expected

let test_bitset_setops () =
  let a = Bitset.create 100 and b = Bitset.create 100 in
  List.iter (Bitset.add a) [ 1; 2; 3 ];
  List.iter (Bitset.add b) [ 2; 3; 4 ];
  let u = Bitset.copy a in
  Bitset.union_into u b;
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4 ] (Bitset.to_list u);
  let i = Bitset.copy a in
  Bitset.inter_into i b;
  Alcotest.(check (list int)) "inter" [ 2; 3 ] (Bitset.to_list i);
  Alcotest.(check bool) "subset" true (Bitset.subset i u);
  Alcotest.(check bool) "not subset" false (Bitset.subset u i)

(* --- Pqueue ----------------------------------------------------------- *)

let test_pqueue_order () =
  let h = Pqueue.create () in
  List.iter (fun p -> Pqueue.push h p p) [ 5; 1; 4; 1; 3; 9; 0 ];
  let rec drain acc =
    match Pqueue.pop_min h with None -> List.rev acc | Some (p, _) -> drain (p :: acc)
  in
  Alcotest.(check (list int)) "sorted" [ 0; 1; 1; 3; 4; 5; 9 ] (drain [])

let prop_pqueue_sorts seed =
  let rng = Prng.create seed in
  let xs = List.init (1 + Prng.int rng 100) (fun _ -> Prng.int rng 1000) in
  let h = Pqueue.create () in
  List.iter (fun x -> Pqueue.push h x x) xs;
  let rec drain acc =
    match Pqueue.pop_min h with None -> List.rev acc | Some (p, _) -> drain (p :: acc)
  in
  drain [] = List.sort compare xs

(* --- Label / Attr / Attrs --------------------------------------------- *)

let test_label_interning () =
  let a = Label.of_string "interning-test-a" in
  let a' = Label.of_string "interning-test-a" in
  let b = Label.of_string "interning-test-b" in
  Alcotest.(check bool) "idempotent" true (Label.equal a a');
  Alcotest.(check bool) "distinct" false (Label.equal a b);
  Alcotest.(check string) "round trip" "interning-test-a" (Label.to_string a)

let test_attr_parse_roundtrip () =
  List.iter
    (fun v ->
      match Attr.of_string (Attr.to_string v) with
      | Ok v' -> Alcotest.(check bool) (Attr.to_string v) true (Attr.equal v v')
      | Error e -> Alcotest.fail e)
    [ Attr.Int 42; Attr.Int (-3); Attr.Float 2.5; Attr.Bool true; Attr.String "DBA" ]

let test_attr_inference () =
  Alcotest.(check bool) "int inferred" true (Attr.of_string "17" = Ok (Attr.Int 17));
  Alcotest.(check bool) "bool inferred" true (Attr.of_string "true" = Ok (Attr.Bool true));
  Alcotest.(check bool) "string fallback" true (Attr.of_string "hello" = Ok (Attr.String "hello"));
  Alcotest.(check bool) "cross-type compare" true
    (Attr.compare_values (Attr.Int 1) (Attr.String "1") = None)

let test_attrs_ops () =
  let a = Attrs.of_list [ Attrs.int "exp" 5; Attrs.str "name" "Bob"; Attrs.int "exp" 7 ] in
  Alcotest.(check int) "last wins, dedup" 2 (Attrs.cardinal a);
  Alcotest.(check bool) "exp=7" true (Attrs.find a "exp" = Some (Attr.Int 7));
  let b = Attrs.set a "exp" (Attr.Int 9) in
  Alcotest.(check bool) "set" true (Attrs.find b "exp" = Some (Attr.Int 9));
  Alcotest.(check bool) "original untouched" true (Attrs.find a "exp" = Some (Attr.Int 7));
  let c = Attrs.remove b "name" in
  Alcotest.(check bool) "removed" false (Attrs.mem c "name");
  Alcotest.(check bool) "sorted bindings" true
    (Attrs.to_list a = List.sort (fun (k1, _) (k2, _) -> compare k1 k2) (Attrs.to_list a))

(* --- Digraph / Csr ----------------------------------------------------- *)

let small_graph () =
  let l = Label.of_string "X" in
  Digraph.of_edges ~labels:[| l; l; l; l |] [ (0, 1); (1, 2); (2, 0); (2, 3) ]

let test_digraph_basics () =
  let g = small_graph () in
  Alcotest.(check int) "nodes" 4 (Digraph.node_count g);
  Alcotest.(check int) "edges" 4 (Digraph.edge_count g);
  Alcotest.(check bool) "has 0->1" true (Digraph.has_edge g 0 1);
  Alcotest.(check bool) "no 1->0" false (Digraph.has_edge g 1 0);
  Alcotest.(check bool) "duplicate rejected" false (Digraph.add_edge g 0 1);
  Alcotest.(check bool) "self loop allowed" true (Digraph.add_edge g 3 3);
  Alcotest.(check bool) "remove" true (Digraph.remove_edge g 3 3);
  Alcotest.(check bool) "remove absent" false (Digraph.remove_edge g 3 3);
  Alcotest.(check int) "out degree 2" 2 (Digraph.out_degree g 2);
  Alcotest.(check int) "in degree 0 of 0" 1 (Digraph.in_degree g 0);
  Alcotest.(check (list int)) "succ 2" [ 0; 3 ] (List.sort compare (Digraph.succ_list g 2))

let test_digraph_version_and_copy () =
  let g = small_graph () in
  let v0 = Digraph.version g in
  ignore (Digraph.add_edge g 3 0 : bool);
  Alcotest.(check bool) "version bumped" true (Digraph.version g > v0);
  let copy = Digraph.copy g in
  Alcotest.(check bool) "copy equal" true (Digraph.equal_structure g copy);
  ignore (Digraph.remove_edge copy 3 0 : bool);
  Alcotest.(check bool) "copy independent" true (Digraph.has_edge g 3 0)

let test_csr_mirrors_digraph () =
  let g = small_graph () in
  let c = Csr.of_digraph g in
  Alcotest.(check int) "nodes" 4 (Csr.node_count c);
  Alcotest.(check int) "edges" 4 (Csr.edge_count c);
  Alcotest.(check bool) "has edge" true (Csr.has_edge c 2 3);
  Alcotest.(check int) "out degree" 2 (Csr.out_degree c 2);
  Alcotest.(check int) "in degree" 1 (Csr.in_degree c 3);
  let back = Csr.to_digraph c in
  Alcotest.(check bool) "roundtrip" true (Digraph.equal_structure g back);
  Alcotest.(check (list int)) "label index" [ 0; 1; 2; 3 ]
    (List.sort compare (Csr.nodes_with_label c (Label.of_string "X")))

let prop_csr_roundtrip seed =
  let rng = Prng.create seed in
  let labels = Array.map Label.of_string [| "A"; "B" |] in
  let n = 1 + Prng.int rng 30 in
  let g =
    Generators.erdos_renyi rng ~n ~m:(Prng.int rng (2 * n)) (fun _ ->
        (Prng.choose rng labels, Attrs.empty))
  in
  Digraph.equal_structure g (Csr.to_digraph (Csr.of_digraph g))

(* --- Traversal / Distance / Scc / Reach -------------------------------- *)

let test_bfs_distances () =
  let c = Csr.of_digraph (small_graph ()) in
  let seen = Hashtbl.create 8 in
  Traversal.bfs c [ 0 ] (fun v d -> Hashtbl.replace seen v d);
  Alcotest.(check int) "d(0)" 0 (Hashtbl.find seen 0);
  Alcotest.(check int) "d(1)" 1 (Hashtbl.find seen 1);
  Alcotest.(check int) "d(2)" 2 (Hashtbl.find seen 2);
  Alcotest.(check int) "d(3)" 3 (Hashtbl.find seen 3)

let test_ancestors () =
  let c = Csr.of_digraph (small_graph ()) in
  Alcotest.(check (list int)) "ancestors of 3" [ 0; 1; 2; 3 ]
    (Bitset.to_list (Traversal.ancestors_of c [ 3 ]))

let test_topological () =
  let l = Label.of_string "X" in
  let dag = Csr.of_digraph (Digraph.of_edges ~labels:[| l; l; l |] [ (0, 1); (1, 2) ]) in
  Alcotest.(check bool) "dag" true (Traversal.is_dag dag);
  let cyc = Csr.of_digraph (small_graph ()) in
  Alcotest.(check bool) "cycle" false (Traversal.is_dag cyc)

let test_ball_nonempty_path_semantics () =
  let c = Snapshot.of_digraph (small_graph ()) in
  let scratch = Distance.make_scratch c in
  (* Ball of 0 with k=3 over cycle 0->1->2->0 plus 2->3. *)
  let found = Hashtbl.create 8 in
  Distance.ball scratch c 0 3 (fun v d -> Hashtbl.replace found v d);
  Alcotest.(check (option int)) "1 at 1" (Some 1) (Hashtbl.find_opt found 1);
  Alcotest.(check (option int)) "2 at 2" (Some 2) (Hashtbl.find_opt found 2);
  Alcotest.(check (option int)) "0 itself at 3 (cycle)" (Some 3) (Hashtbl.find_opt found 0);
  Alcotest.(check (option int)) "3 at 3" (Some 3) (Hashtbl.find_opt found 3);
  (* With k=2 the source must not appear. *)
  Hashtbl.reset found;
  Distance.ball scratch c 0 2 (fun v d -> Hashtbl.replace found v d);
  Alcotest.(check (option int)) "no self at k=2" None (Hashtbl.find_opt found 0);
  (* k=0 finds nothing. *)
  Hashtbl.reset found;
  Distance.ball scratch c 0 0 (fun v d -> Hashtbl.replace found v d);
  Alcotest.(check int) "k=0 empty" 0 (Hashtbl.length found)

let test_reverse_ball_symmetry () =
  let rng = Prng.create 23 in
  let labels = [| Label.of_string "A" |] in
  let g =
    Snapshot.of_digraph
      (Generators.erdos_renyi rng ~n:30 ~m:80 (fun _ -> (labels.(0), Attrs.empty)))
  in
  let scratch = Distance.make_scratch g in
  for k = 1 to 3 do
    for v = 0 to 29 do
      let fwd = Hashtbl.create 8 in
      Distance.ball scratch g v k (fun w d -> Hashtbl.replace fwd w d);
      Hashtbl.iter
        (fun w d ->
          (* w in ball(v,k) at distance d iff v in reverse_ball(w,k) at d. *)
          let found = ref None in
          Distance.reverse_ball scratch g w k (fun p d' -> if p = v then found := Some d');
          Alcotest.(check (option int))
            (Printf.sprintf "symmetry v=%d w=%d k=%d" v w k)
            (Some d) !found)
        fwd
    done
  done

let test_scc () =
  let c = Csr.of_digraph (small_graph ()) in
  let scc = Scc.compute c in
  Alcotest.(check int) "2 components" 2 (Scc.count scc);
  Alcotest.(check int) "0,1,2 together" (Scc.component scc 0) (Scc.component scc 1);
  Alcotest.(check bool) "3 separate" true (Scc.component scc 3 <> Scc.component scc 0);
  Alcotest.(check bool) "cycle comp nontrivial" false
    (Scc.is_trivial scc c (Scc.component scc 0));
  Alcotest.(check bool) "3 trivial" true (Scc.is_trivial scc c (Scc.component scc 3))

let test_reach () =
  let c = Snapshot.of_digraph (small_graph ()) in
  let r = Reach.compute c in
  Alcotest.(check bool) "0 reaches 3" true (Reach.reaches r 0 3);
  Alcotest.(check bool) "3 reaches nothing" false (Reach.reaches r 3 0);
  Alcotest.(check bool) "0 on cycle reaches itself" true (Reach.reaches r 0 0);
  Alcotest.(check bool) "3 not on cycle" false (Reach.reaches r 3 3)

let prop_reach_equals_bfs seed =
  let rng = Prng.create seed in
  let labels = [| Label.of_string "A" |] in
  let n = 1 + Prng.int rng 25 in
  let g =
    Snapshot.of_digraph
      (Generators.erdos_renyi rng ~n ~m:(Prng.int rng (3 * n)) (fun _ ->
           (labels.(0), Attrs.empty)))
  in
  let r = Reach.compute g in
  let ok = ref true in
  for u = 0 to n - 1 do
    (* Nonempty-path reachability via BFS from u's successors. *)
    let reachable = Bitset.create n in
    let seeds = Snapshot.fold_succ g u (fun acc w -> w :: acc) [] in
    Traversal.bfs (Snapshot.csr g) seeds (fun v _ -> Bitset.add reachable v);
    for v = 0 to n - 1 do
      if Reach.reaches r u v <> Bitset.mem reachable v then ok := false
    done
  done;
  !ok

(* --- Wgraph ------------------------------------------------------------ *)

let test_wgraph_dijkstra () =
  let w = Wgraph.create 5 in
  Wgraph.add_edge w 0 1 2;
  Wgraph.add_edge w 1 2 2;
  Wgraph.add_edge w 0 2 10;
  Wgraph.add_edge w 2 3 1;
  let d = Wgraph.dijkstra w 0 in
  Alcotest.(check int) "d(2) via 1" 4 d.(2);
  Alcotest.(check int) "d(3)" 5 d.(3);
  Alcotest.(check int) "unreachable" (-1) d.(4);
  let dr = Wgraph.dijkstra_rev w 3 in
  Alcotest.(check int) "rev d(0)" 5 dr.(0)

let test_wgraph_min_weight_kept () =
  let w = Wgraph.create 2 in
  Wgraph.add_edge w 0 1 5;
  Wgraph.add_edge w 0 1 3;
  Wgraph.add_edge w 0 1 7;
  Alcotest.(check (option int)) "min kept" (Some 3) (Wgraph.weight w 0 1);
  Alcotest.(check int) "single edge" 1 (Wgraph.edge_count w)

let prop_dijkstra_unit_weights_is_bfs seed =
  let rng = Prng.create seed in
  let labels = [| Label.of_string "A" |] in
  let n = 1 + Prng.int rng 30 in
  let g =
    Snapshot.of_digraph
      (Generators.erdos_renyi rng ~n ~m:(Prng.int rng (3 * n)) (fun _ ->
           (labels.(0), Attrs.empty)))
  in
  let w = Wgraph.create n in
  Snapshot.iter_edges g (fun u v -> Wgraph.add_edge w u v 1);
  let src = Prng.int rng n in
  Wgraph.dijkstra w src = Distance.distances_from g src

(* --- Generators --------------------------------------------------------- *)

let test_generator_sizes () =
  let rng = Prng.create 5 in
  let labels = [| Label.of_string "A" |] in
  let init _ = (labels.(0), Attrs.empty) in
  let er = Generators.erdos_renyi rng ~n:100 ~m:300 init in
  Alcotest.(check int) "er nodes" 100 (Digraph.node_count er);
  Alcotest.(check int) "er edges" 300 (Digraph.edge_count er);
  let sf = Generators.scale_free rng ~n:200 ~out_degree:3 init in
  Alcotest.(check int) "sf nodes" 200 (Digraph.node_count sf);
  Alcotest.(check bool) "sf edges bounded" true (Digraph.edge_count sf <= 3 * 200);
  let dag = Generators.random_dag rng ~n:50 ~m:120 init in
  Alcotest.(check bool) "dag acyclic" true (Traversal.is_dag (Csr.of_digraph dag))

let test_scale_free_skew () =
  let rng = Prng.create 9 in
  let labels = [| Label.of_string "A" |] in
  let sf = Generators.scale_free rng ~n:500 ~out_degree:3 (fun _ -> (labels.(0), Attrs.empty)) in
  let max_in = ref 0 in
  Digraph.iter_nodes sf (fun v -> max_in := max !max_in (Digraph.in_degree sf v));
  (* Preferential attachment must concentrate in-degree well above the mean. *)
  Alcotest.(check bool) "hub exists" true (!max_in > 15)

(* --- Graph_io ------------------------------------------------------------ *)

let collab_like () =
  let labels = Array.map Label.of_string [| "SA"; "SD" |] in
  Digraph.of_edges ~labels
    ~attrs:(fun i ->
      Attrs.of_list [ Attrs.str "name" (Printf.sprintf "p %d" i); Attrs.int "exp" i ])
    [ (0, 1); (1, 0) ]

let test_io_roundtrip () =
  let g = collab_like () in
  match Graph_io.of_string (Graph_io.to_string g) with
  | Ok g' -> Alcotest.(check bool) "roundtrip" true (Digraph.equal_structure g g')
  | Error e -> Alcotest.fail e

let test_io_escaping () =
  Alcotest.(check string) "escape/unescape" "a b=c%d"
    (Graph_io.unescape (Graph_io.escape "a b=c%d"))

let test_io_errors () =
  let bad input msg =
    match Graph_io.of_string input with
    | Ok _ -> Alcotest.fail ("accepted bad input: " ^ msg)
    | Error _ -> ()
  in
  bad "" "empty";
  bad "wrong header" "header";
  bad "expfinder-graph 1\nnode 1 A" "non-dense id";
  bad "expfinder-graph 1\nnode 0 A\nedge 0 5" "unknown endpoint";
  bad "expfinder-graph 1\nfrob 1 2" "unknown record"

let prop_io_roundtrip seed =
  let rng = Prng.create seed in
  let labels = Array.map Label.of_string [| "A"; "B"; "C" |] in
  let n = 1 + Prng.int rng 25 in
  let g =
    Generators.erdos_renyi rng ~n ~m:(Prng.int rng (2 * n)) (fun i ->
        ( Prng.choose rng labels,
          Attrs.of_list [ Attrs.int "exp" (Prng.int rng 9); Attrs.str "name" (Printf.sprintf "n%d" i) ]
        ))
  in
  match Graph_io.of_string (Graph_io.to_string g) with
  | Ok g' -> Digraph.equal_structure g g'
  | Error _ -> false

let contains_substring haystack needle =
  let n = String.length haystack and k = String.length needle in
  let rec scan i = i + k <= n && (String.sub haystack i k = needle || scan (i + 1)) in
  scan 0

let test_dot_export () =
  let g = collab_like () in
  let dot = Graph_io.to_dot ~highlight:[ 0 ] g in
  Alcotest.(check bool) "digraph" true (String.length dot > 0 && String.sub dot 0 7 = "digraph");
  Alcotest.(check bool) "highlight present" true (contains_substring dot "fillcolor=red");
  Alcotest.(check bool) "edge present" true (contains_substring dot "n0 -> n1")

let test_edge_list_import () =
  let text = "# SNAP-style comment\n5\t7\n7 5\n\n5 9\n# trailing\n9\t5\n" in
  match Graph_io.of_edge_list text with
  | Error e -> Alcotest.fail e
  | Ok g ->
    Alcotest.(check int) "3 distinct nodes" 3 (Digraph.node_count g);
    Alcotest.(check int) "4 edges" 4 (Digraph.edge_count g);
    (* first-appearance renumbering: 5 -> 0, 7 -> 1, 9 -> 2 *)
    Alcotest.(check bool) "0 -> 1" true (Digraph.has_edge g 0 1);
    Alcotest.(check bool) "1 -> 0" true (Digraph.has_edge g 1 0);
    Alcotest.(check bool) "2 -> 0" true (Digraph.has_edge g 2 0)

let test_edge_list_errors () =
  List.iter
    (fun text ->
      match Graph_io.of_edge_list text with
      | Ok _ -> Alcotest.fail ("accepted " ^ text)
      | Error _ -> ())
    [ "1 2 3"; "a b"; "-1 2" ]

let test_edge_list_node_init () =
  let l = Label.of_string "user" in
  match Graph_io.of_edge_list ~node_init:(fun i -> (l, Attrs.of_list [ Attrs.int "id" i ])) "3 4" with
  | Error e -> Alcotest.fail e
  | Ok g ->
    Alcotest.(check bool) "label applied" true (Label.equal (Digraph.label g 0) l);
    Alcotest.(check bool) "attr applied" true
      (Attrs.find (Digraph.attrs g 1) "id" = Some (Attr.Int 1))

let qcheck_cases =
  [
    QCheck.Test.make ~count:100 ~name:"bitset model" QCheck.small_int (fun s ->
        prop_bitset_model (s + 1));
    QCheck.Test.make ~count:100 ~name:"pqueue sorts" QCheck.small_int (fun s ->
        prop_pqueue_sorts (s + 1));
    QCheck.Test.make ~count:50 ~name:"csr roundtrip" QCheck.small_int (fun s ->
        prop_csr_roundtrip (s + 1));
    QCheck.Test.make ~count:30 ~name:"reach = bfs" QCheck.small_int (fun s ->
        prop_reach_equals_bfs (s + 1));
    QCheck.Test.make ~count:50 ~name:"dijkstra(1) = bfs" QCheck.small_int (fun s ->
        prop_dijkstra_unit_weights_is_bfs (s + 1));
    QCheck.Test.make ~count:50 ~name:"graph io roundtrip" QCheck.small_int (fun s ->
        prop_io_roundtrip (s + 1));
  ]

let () =
  Alcotest.run "graph"
    [
      ( "vec",
        [
          Alcotest.test_case "basics" `Quick test_vec_basics;
          Alcotest.test_case "remove_first" `Quick test_vec_remove_first;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
        ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "sampling" `Quick test_prng_sample;
        ] );
      ( "bitset",
        [
          Alcotest.test_case "basics" `Quick test_bitset_basics;
          Alcotest.test_case "set ops" `Quick test_bitset_setops;
        ] );
      ("pqueue", [ Alcotest.test_case "ordering" `Quick test_pqueue_order ]);
      ( "attrs",
        [
          Alcotest.test_case "label interning" `Quick test_label_interning;
          Alcotest.test_case "attr roundtrip" `Quick test_attr_parse_roundtrip;
          Alcotest.test_case "attr inference" `Quick test_attr_inference;
          Alcotest.test_case "attrs ops" `Quick test_attrs_ops;
        ] );
      ( "digraph",
        [
          Alcotest.test_case "basics" `Quick test_digraph_basics;
          Alcotest.test_case "version and copy" `Quick test_digraph_version_and_copy;
          Alcotest.test_case "csr mirror" `Quick test_csr_mirrors_digraph;
        ] );
      ( "traversal",
        [
          Alcotest.test_case "bfs distances" `Quick test_bfs_distances;
          Alcotest.test_case "ancestors" `Quick test_ancestors;
          Alcotest.test_case "topological" `Quick test_topological;
          Alcotest.test_case "ball semantics" `Quick test_ball_nonempty_path_semantics;
          Alcotest.test_case "reverse ball symmetry" `Quick test_reverse_ball_symmetry;
          Alcotest.test_case "scc" `Quick test_scc;
          Alcotest.test_case "reach" `Quick test_reach;
        ] );
      ( "wgraph",
        [
          Alcotest.test_case "dijkstra" `Quick test_wgraph_dijkstra;
          Alcotest.test_case "min weight" `Quick test_wgraph_min_weight_kept;
        ] );
      ( "generators",
        [
          Alcotest.test_case "sizes" `Quick test_generator_sizes;
          Alcotest.test_case "scale-free skew" `Quick test_scale_free_skew;
        ] );
      ( "io",
        [
          Alcotest.test_case "roundtrip" `Quick test_io_roundtrip;
          Alcotest.test_case "escaping" `Quick test_io_escaping;
          Alcotest.test_case "errors" `Quick test_io_errors;
          Alcotest.test_case "dot export" `Quick test_dot_export;
          Alcotest.test_case "edge-list import" `Quick test_edge_list_import;
          Alcotest.test_case "edge-list errors" `Quick test_edge_list_errors;
          Alcotest.test_case "edge-list node_init" `Quick test_edge_list_node_init;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_cases);
    ]
