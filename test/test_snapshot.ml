(* Snapshot identity, copy-on-write epoch advance, and the batched
   query service: the engine-facing contract that every answer is
   computed against one immutable, identity-keyed view of the graph. *)

open Expfinder_graph
open Expfinder_pattern
open Expfinder_core
open Expfinder_incremental
open Expfinder_engine
module Telemetry = Expfinder_telemetry
module Collab = Expfinder_workload.Collab
module Queries = Expfinder_workload.Queries
module Synthetic = Expfinder_workload.Synthetic

let labels = Array.map Label.of_string [| "A"; "B"; "C" |]

let random_digraph ?(max_n = 25) rng =
  let n = 2 + Prng.int rng max_n in
  let m = Prng.int rng (3 * n) in
  Generators.erdos_renyi rng ~n ~m (fun _ ->
      (Prng.choose rng labels, Attrs.of_list [ Attrs.int "exp" (Prng.int rng 4) ]))

(* --- identity ---------------------------------------------------------- *)

let test_identity () =
  let g = Collab.graph () in
  let s = Snapshot.of_digraph g in
  Alcotest.(check int) "graph id" (Digraph.graph_id g) (Snapshot.graph_id s);
  Alcotest.(check int) "epoch = digraph version" (Digraph.version g) (Snapshot.epoch s);
  let s' = Snapshot.of_digraph g in
  Alcotest.(check bool) "separately built snapshots agree" true
    (Snapshot.identity_equal (Snapshot.id s) (Snapshot.id s'));
  ignore (Digraph.add_edge g 0 3 : bool);
  Alcotest.(check bool) "mutation changes identity" false
    (Snapshot.identity_equal (Snapshot.id s) (Snapshot.id (Snapshot.of_digraph g)))

let test_copy_gets_fresh_graph_id () =
  let g = Collab.graph () in
  let c1 = Digraph.copy g and c2 = Digraph.copy g in
  Alcotest.(check bool) "copies distinct from original" true
    (Digraph.graph_id c1 <> Digraph.graph_id g);
  Alcotest.(check bool) "copies distinct from each other" true
    (Digraph.graph_id c1 <> Digraph.graph_id c2);
  (* Both copies sit at version 0 — only the graph id separates them. *)
  Alcotest.(check int) "both at epoch 0" (Digraph.version c1) (Digraph.version c2);
  Alcotest.(check bool) "identities still distinct" false
    (Snapshot.identity_equal
       (Snapshot.id (Snapshot.of_digraph c1))
       (Snapshot.id (Snapshot.of_digraph c2)))

(* --- copy-on-write advance -------------------------------------------- *)

let sorted_succ s v = List.sort compare (Snapshot.fold_succ s v (fun acc w -> w :: acc) [])

let sorted_pred s v = List.sort compare (Snapshot.fold_pred s v (fun acc w -> w :: acc) [])

let same_structure a b =
  Snapshot.node_count a = Snapshot.node_count b
  && Snapshot.edge_count a = Snapshot.edge_count b
  &&
  let ok = ref true in
  Snapshot.iter_nodes a (fun v ->
      if not (Label.equal (Snapshot.label a v) (Snapshot.label b v)) then ok := false;
      if sorted_succ a v <> sorted_succ b v then ok := false;
      if sorted_pred a v <> sorted_pred b v then ok := false);
  !ok

let prop_advance_equals_rebuild seed =
  let rng = Prng.create seed in
  let g = random_digraph rng in
  let before = Snapshot.of_digraph g in
  let updates = Update.random_mixed rng g (1 + Prng.int rng 8) in
  let effective = Update.apply_batch_filtered g updates in
  let added, removed = Update.net_edge_changes g effective in
  let advanced =
    Snapshot.advance before ~version:(Digraph.version g) ~added ~removed
  in
  let fresh = Snapshot.of_digraph g in
  Snapshot.identity_equal (Snapshot.id advanced) (Snapshot.id fresh)
  && same_structure advanced fresh

let edge_set s =
  let t = Hashtbl.create 64 in
  Snapshot.iter_edges s (fun u v -> Hashtbl.replace t (u, v) ());
  t

let prop_net_changes_match_epoch_delta seed =
  (* [net_edge_changes] must report exactly the symmetric difference of
     the edge sets before and after the batch — toggles cancel. *)
  let rng = Prng.create seed in
  let g = random_digraph rng in
  let before = edge_set (Snapshot.of_digraph g) in
  let updates = Update.random_mixed rng g (1 + Prng.int rng 8) in
  (* Inject explicit toggles so cancellation paths are exercised. *)
  let updates =
    match updates with
    | Update.Insert_edge (a, b) :: rest ->
      (Update.Insert_edge (a, b) :: Update.Delete_edge (a, b) :: Update.Insert_edge (a, b)
       :: rest)
    | rest -> rest
  in
  let effective = Update.apply_batch_filtered g updates in
  let added, removed = Update.net_edge_changes g effective in
  let after = edge_set (Snapshot.of_digraph g) in
  let observed_added =
    Hashtbl.fold (fun e () acc -> if Hashtbl.mem before e then acc else e :: acc) after []
  in
  let observed_removed =
    Hashtbl.fold (fun e () acc -> if Hashtbl.mem after e then acc else e :: acc) before []
  in
  List.sort compare added = List.sort compare observed_added
  && List.sort compare removed = List.sort compare observed_removed

let test_toggle_cancellation () =
  let g = Collab.graph () in
  let s0 = Snapshot.of_digraph g in
  let batch = [ Update.Insert_edge (0, 3); Update.Delete_edge (0, 3) ] in
  let effective = Update.apply_batch_filtered g batch in
  Alcotest.(check int) "both effective" 2 (List.length effective);
  let added, removed = Update.net_edge_changes g effective in
  Alcotest.(check (list (pair int int))) "toggle cancels: no insert" [] added;
  Alcotest.(check (list (pair int int))) "toggle cancels: no delete" [] removed;
  let s1 = Snapshot.advance s0 ~version:(Digraph.version g) ~added ~removed in
  Alcotest.(check bool) "empty delta advances structure unchanged" true
    (same_structure s0 s1);
  Alcotest.(check bool) "but the epoch moved" true (Snapshot.epoch s1 > Snapshot.epoch s0)

(* --- engine epoch discipline ------------------------------------------- *)

let counter name =
  match List.assoc_opt name (Telemetry.Metrics.counters_snapshot ()) with
  | Some v -> v
  | None -> 0

let test_engine_advances_cow () =
  Telemetry.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Telemetry.set_enabled false)
    (fun () ->
      let g = Synthetic.flat (Prng.create 5) ~n:300 ~avg_degree:4 in
      let engine = Engine.create g in
      let sid0 = Snapshot.id (Engine.snapshot engine) in
      let advances0 = counter "engine.snapshot_advances" in
      (* A small pure-edge batch must advance copy-on-write... *)
      let updates = Update.random_mixed (Prng.create 6) g 4 in
      ignore (Engine.apply_updates engine updates : Incremental.report list);
      let sid1 = Snapshot.id (Engine.snapshot engine) in
      Alcotest.(check bool) "epoch advanced" true (sid1.Snapshot.epoch > sid0.Snapshot.epoch);
      Alcotest.(check int) "same graph id" sid0.Snapshot.graph_id sid1.Snapshot.graph_id;
      Alcotest.(check int) "served by Snapshot.advance" (advances0 + 1)
        (counter "engine.snapshot_advances");
      Alcotest.(check bool) "snapshot matches digraph" true
        (same_structure (Engine.snapshot engine) (Snapshot.of_digraph g));
      (* ...while a node insertion forces a rebuild. *)
      let rebuilds0 = counter "engine.snapshot_rebuilds" in
      ignore
        (Engine.apply_updates engine
           [ Update.Insert_node (Label.of_string "SA", Attrs.empty) ]
          : Incremental.report list);
      Alcotest.(check int) "node insert rebuilds" (rebuilds0 + 1)
        (counter "engine.snapshot_rebuilds");
      Alcotest.(check int) "rebuilt view sees the node" (Digraph.node_count g)
        (Snapshot.node_count (Engine.snapshot engine)))

let random_edge_updates rng g k = Update.random_mixed rng g k

let prop_queries_fresh_after_updates seed =
  (* Interleave update batches with per-query and batched evaluation;
     every answer must match direct evaluation on the post-update
     graph. *)
  let rng = Prng.create seed in
  let g = Synthetic.org rng ~teams:6 ~team_size:5 in
  let engine = Engine.create g in
  let queries = Queries.workload rng ~count:4 ~simulation:false g in
  let ok = ref true in
  for round = 1 to 4 do
    let updates = random_edge_updates rng g (1 + Prng.int rng 5) in
    ignore (Engine.apply_updates engine updates : Incremental.report list);
    let fresh = Snapshot.of_digraph (Engine.graph engine) in
    let check_one q (a : Engine.answer) =
      let direct =
        if Pattern.is_simulation_pattern q then Simulation.run q fresh
        else Bounded_sim.run q fresh
      in
      if not (Verify.semantically_equal a.Engine.relation direct) then ok := false
    in
    if round mod 2 = 0 then
      List.iter2 check_one queries (Engine.evaluate_batch engine queries)
    else List.iter (fun q -> check_one q (Engine.evaluate engine q)) queries
  done;
  !ok

(* --- batched evaluation ------------------------------------------------ *)

let test_batch_equals_sequential_with_fewer_scans () =
  Telemetry.set_enabled true;
  (* The differential checker (EXPFINDER_CHECK=1) re-runs every shared
     answer through direct evaluation, which performs its own candidate
     scans — pin it off so the counter isolates the batch saving. *)
  let was_differential = Verify.differential () in
  Verify.set_differential false;
  Fun.protect
    ~finally:(fun () ->
      Telemetry.set_enabled false;
      Verify.set_differential was_differential)
    (fun () ->
      let g = Synthetic.org (Prng.create 11) ~teams:10 ~team_size:6 in
      let queries = Queries.workload (Prng.create 13) ~count:8 ~simulation:false g in
      let seq_engine = Engine.create g in
      let s0 = counter "candidates.scans" in
      let seq = List.map (fun q -> Engine.evaluate seq_engine q) queries in
      let seq_scans = counter "candidates.scans" - s0 in
      let batch_engine = Engine.create g in
      let s1 = counter "candidates.scans" in
      let batch = Engine.evaluate_batch batch_engine queries in
      let batch_scans = counter "candidates.scans" - s1 in
      List.iter2
        (fun (a : Engine.answer) (b : Engine.answer) ->
          Alcotest.(check bool) "batch answer equals per-query answer" true
            (Verify.semantically_equal a.Engine.relation b.Engine.relation);
          Alcotest.(check bool) "total flag agrees" true (a.Engine.total = b.Engine.total))
        seq batch;
      Alcotest.(check bool)
        (Printf.sprintf "batch scans fewer (%d < %d)" batch_scans seq_scans)
        true
        (batch_scans < seq_scans))

let test_batch_duplicates_and_cache () =
  let g = Collab.graph () in
  let engine = Engine.create g in
  let q = Collab.query () in
  (* Duplicates inside one batch are evaluated once and served as cache
     copies, in input order. *)
  match Engine.evaluate_batch engine [ q; Collab.q1 (); q ] with
  | [ a0; _; a2 ] ->
    Alcotest.(check bool) "duplicate answer equal" true
      (Match_relation.equal a0.Engine.relation a2.Engine.relation);
    Alcotest.(check bool) "duplicate served from cache" true
      (a2.Engine.provenance = Engine.From_cache);
    (* A second batch on the same epoch is all cache hits. *)
    (match Engine.evaluate_batch engine [ q ] with
    | [ a ] ->
      Alcotest.(check bool) "warm batch hits cache" true
        (a.Engine.provenance = Engine.From_cache)
    | _ -> Alcotest.fail "expected one answer")
  | _ -> Alcotest.fail "expected three answers"

let test_batch_empty_and_mutation_isolation () =
  let engine = Engine.create (Collab.graph ()) in
  Alcotest.(check int) "empty batch" 0 (List.length (Engine.evaluate_batch engine []));
  (* Answers must be private copies: mutating one must not corrupt the
     cache serving the next call. *)
  let q = Collab.query () in
  (match Engine.evaluate_batch engine [ q ] with
  | [ a ] -> Match_relation.remove a.Engine.relation 0 Collab.bob
  | _ -> Alcotest.fail "expected one answer");
  match Engine.evaluate_batch engine [ q ] with
  | [ a ] ->
    Alcotest.(check bool) "cache unharmed by caller mutation" true
      (Match_relation.mem a.Engine.relation 0 Collab.bob)
  | _ -> Alcotest.fail "expected one answer"

let qcheck_cases =
  [
    QCheck.Test.make ~count:60 ~name:"advance = rebuild" QCheck.small_int (fun s ->
        prop_advance_equals_rebuild (s + 1));
    QCheck.Test.make ~count:60 ~name:"net changes = observed epoch delta" QCheck.small_int
      (fun s -> prop_net_changes_match_epoch_delta (s + 1));
    QCheck.Test.make ~count:20 ~name:"queries stay fresh across updates" QCheck.small_int
      (fun s -> prop_queries_fresh_after_updates (s + 1));
  ]

let () =
  Alcotest.run "snapshot"
    [
      ( "identity",
        [
          Alcotest.test_case "graph id and epoch" `Quick test_identity;
          Alcotest.test_case "copies get fresh ids" `Quick test_copy_gets_fresh_graph_id;
        ] );
      ( "epochs",
        [
          Alcotest.test_case "toggle cancellation" `Quick test_toggle_cancellation;
          Alcotest.test_case "engine advances copy-on-write" `Quick test_engine_advances_cow;
        ] );
      ( "batch",
        [
          Alcotest.test_case "equals sequential, fewer scans" `Quick
            test_batch_equals_sequential_with_fewer_scans;
          Alcotest.test_case "duplicates and cache" `Quick test_batch_duplicates_and_cache;
          Alcotest.test_case "empty batch and isolation" `Quick
            test_batch_empty_and_mutation_isolation;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_cases);
    ]
