(* Cross-module edge cases that the per-module suites do not reach:
   exception safety of reusable scratch memory, update-parity semantics,
   maintained-partition stability, multi-artifact stores, and exact
   ranking on a crafted weighted result graph. *)

open Expfinder_graph
open Expfinder_pattern
open Expfinder_core
open Expfinder_incremental
open Expfinder_compression
open Expfinder_storage
module Collab = Expfinder_workload.Collab
module Queries = Expfinder_workload.Queries
module Synthetic = Expfinder_workload.Synthetic

(* --- Distance scratch is exception-safe -------------------------------- *)

let test_scratch_survives_raising_callback () =
  let l = Label.of_string "A" in
  let g = Snapshot.of_digraph (Digraph.of_edges ~labels:[| l; l; l |] [ (0, 1); (1, 2) ]) in
  let scratch = Distance.make_scratch g in
  (* exists_within raises internally (Found) to short-circuit; afterwards
     the scratch must be clean for the next traversal. *)
  Alcotest.(check bool) "found" true (Distance.exists_within scratch g 0 2 (fun w -> w = 1));
  let seen = ref [] in
  Distance.ball scratch g 0 2 (fun w d -> seen := (w, d) :: !seen);
  Alcotest.(check (list (pair int int))) "scratch reset between calls" [ (1, 1); (2, 2) ]
    (List.sort compare !seen);
  (* A user callback that raises must also leave the scratch clean. *)
  (try Distance.ball scratch g 0 2 (fun _ _ -> failwith "user error") with Failure _ -> ());
  let again = ref 0 in
  Distance.ball scratch g 0 2 (fun _ _ -> incr again);
  Alcotest.(check int) "clean after user exception" 2 !again

(* --- Update parity semantics ------------------------------------------- *)

let test_net_edge_changes_parity () =
  let g = Collab.graph () in
  (* insert then delete the same edge: no net change *)
  let batch = [ Update.Insert_edge (0, 3); Update.Delete_edge (0, 3) ] in
  let effective = Update.apply_batch_filtered g batch in
  Alcotest.(check int) "both effective" 2 (List.length effective);
  let ins, del = Update.net_edge_changes g effective in
  Alcotest.(check (list (pair int int))) "no net insert" [] ins;
  Alcotest.(check (list (pair int int))) "no net delete" [] del;
  (* delete an existing edge then reinsert it: also no net change *)
  let batch = [ Update.Delete_edge (1, 4); Update.Insert_edge (1, 4) ] in
  let effective = Update.apply_batch_filtered g batch in
  let ins, del = Update.net_edge_changes g effective in
  Alcotest.(check int) "toggled back" 0 (List.length ins + List.length del);
  (* triple toggle: net insertion *)
  let batch =
    [ Update.Insert_edge (0, 3); Update.Delete_edge (0, 3); Update.Insert_edge (0, 3) ]
  in
  let effective = Update.apply_batch_filtered g batch in
  let ins, del = Update.net_edge_changes g effective in
  Alcotest.(check (list (pair int int))) "net insert" [ (0, 3) ] ins;
  Alcotest.(check (list (pair int int))) "no delete" [] del

let test_apply_batch_filtered_drops_noops () =
  let g = Collab.graph () in
  let batch = [ Update.Insert_edge (1, 4) (* already exists *); Update.Insert_edge (0, 3) ] in
  let effective = Update.apply_batch_filtered g batch in
  Alcotest.(check int) "one effective" 1 (List.length effective)

(* --- maintained bisimulation partition stays a bisimulation ------------- *)

let prop_maintained_partition_stable seed =
  let rng = Prng.create seed in
  let g = Synthetic.org rng ~teams:8 ~team_size:4 in
  let inc = Inc_compress.create ~atoms:Queries.atom_universe g in
  let ok = ref true in
  for _round = 1 to 3 do
    let updates = Update.random_mixed rng g (1 + Prng.int rng 5) in
    let _ = Inc_compress.apply_updates inc g updates in
    let compressed = Inc_compress.current inc in
    let snap = Inc_compress.snapshot inc in
    let partition =
      Array.init (Snapshot.node_count snap) (fun v -> Compress.block_of compressed v)
    in
    if
      not
        (Bisimulation.is_stable (Snapshot.csr snap)
           ~key:(Compress.signature_key (Compress.atoms compressed) snap)
           partition)
    then ok := false
  done;
  !ok

(* --- stores hold many artifacts ----------------------------------------- *)

let test_store_many_artifacts () =
  let dir = Filename.temp_file "expfinder-multi" "" in
  Sys.remove dir;
  let store = Graph_store.open_dir dir in
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      Graph_store.save_graph store "alpha" (Collab.graph ());
      Graph_store.save_graph store "beta" (Collab.graph ());
      Graph_store.save_pattern store "alpha" (Collab.query ());
      Graph_store.save_pattern store "q2" (Collab.q2 ());
      Graph_store.save_result store "alpha" [ (0, 1) ];
      Alcotest.(check (list string)) "graphs sorted" [ "alpha"; "beta" ]
        (Graph_store.list_graphs store);
      Alcotest.(check (list string)) "patterns sorted" [ "alpha"; "q2" ]
        (Graph_store.list_patterns store);
      (* removing one name removes all its artifacts but not others *)
      Graph_store.remove store "alpha";
      Alcotest.(check (list string)) "beta stays" [ "beta" ] (Graph_store.list_graphs store);
      Alcotest.(check (list string)) "q2 stays" [ "q2" ] (Graph_store.list_patterns store);
      match Graph_store.load_result store "alpha" with
      | Ok _ -> Alcotest.fail "result should be gone"
      | Error _ -> ())

(* --- exact ranking on a crafted weighted result graph -------------------- *)

let test_ranking_on_crafted_graph () =
  (* Pattern A -(3)-> B over a path graph a0 -> x -> b0, plus a1 -> b0:
     matches A:{a0,a1}, B:{b0}; Gr edges a0->b0 (2), a1->b0 (1).
     f(A,a0) = 2/1, f(A,a1) = 1/1, so a1 is top-1. *)
  let la = Label.of_string "A" and lb = Label.of_string "B" and lx = Label.of_string "X" in
  let g =
    Snapshot.of_digraph
      (Digraph.of_edges ~labels:[| la; lx; lb; la |] [ (0, 1); (1, 2); (3, 2) ])
  in
  let q =
    Pattern.make_exn
      ~nodes:
        [|
          { Pattern.name = "A"; label = Some la; pred = Predicate.always };
          { Pattern.name = "B"; label = Some lb; pred = Predicate.always };
        |]
      ~edges:[ (0, 1, Pattern.Bounded 3) ]
      ~output:0
  in
  let m = Bounded_sim.run q g in
  let gr = Result_graph.build q g m in
  Alcotest.(check (option int)) "a0 -> b0 weight 2" (Some 2) (Result_graph.weight gr 0 2);
  Alcotest.(check (option int)) "a1 -> b0 weight 1" (Some 1) (Result_graph.weight gr 3 2);
  let r0 = Ranking.rank_of gr 0 and r3 = Ranking.rank_of gr 3 in
  Alcotest.(check (pair int int)) "f(a0) = 2/1" (2, 1) (r0.Ranking.num, r0.Ranking.den);
  Alcotest.(check (pair int int)) "f(a1) = 1/1" (1, 1) (r3.Ranking.num, r3.Ranking.den);
  (* b0 is ranked by its two ancestors: (2 + 1) / 2. *)
  let rb = Ranking.rank_of gr 2 in
  Alcotest.(check (pair int int)) "f(b0) = 3/2" (3, 2) (rb.Ranking.num, rb.Ranking.den);
  match Ranking.top_k gr ~output_matches:(Match_relation.matches m 0) ~k:1 with
  | [ (v, _) ] -> Alcotest.(check int) "a1 wins" 3 v
  | _ -> Alcotest.fail "expected one"

(* --- pattern generator produces requested unbounded edges ---------------- *)

let test_pattern_gen_unbounded_stats () =
  let rng = Prng.create 8 in
  let labels = Array.map Label.of_string [| "A"; "B" |] in
  let config =
    { Pattern_gen.default with nodes = 4; extra_edges = 2; unbounded_prob = 1.0 }
  in
  let p = Pattern_gen.generate rng config ~labels in
  Alcotest.(check bool) "all edges unbounded" true
    (List.for_all (fun (_, _, b) -> b = Pattern.Unbounded) (Pattern.edges p));
  Alcotest.(check bool) "max_bound none" true (Pattern.max_bound p = None)

(* --- wgraph validation ---------------------------------------------------- *)

let test_wgraph_validation () =
  let w = Wgraph.create 3 in
  Alcotest.check_raises "negative weight" (Invalid_argument "Wgraph.add_edge: negative weight")
    (fun () -> Wgraph.add_edge w 0 1 (-1));
  Alcotest.check_raises "unknown node" (Invalid_argument "Wgraph: unknown node") (fun () ->
      Wgraph.add_edge w 0 7 1);
  Alcotest.check_raises "negative size" (Invalid_argument "Wgraph.create") (fun () ->
      ignore (Wgraph.create (-1)))

let qcheck_cases =
  [
    QCheck.Test.make ~count:30 ~name:"maintained partition is a bisimulation"
      QCheck.small_int (fun s -> prop_maintained_partition_stable (s + 1));
  ]

let () =
  Alcotest.run "extra_coverage"
    [
      ( "robustness",
        [
          Alcotest.test_case "scratch exception safety" `Quick
            test_scratch_survives_raising_callback;
          Alcotest.test_case "wgraph validation" `Quick test_wgraph_validation;
        ] );
      ( "updates",
        [
          Alcotest.test_case "net-change parity" `Quick test_net_edge_changes_parity;
          Alcotest.test_case "filtered no-ops" `Quick test_apply_batch_filtered_drops_noops;
        ] );
      ("storage", [ Alcotest.test_case "many artifacts" `Quick test_store_many_artifacts ]);
      ( "semantics",
        [
          Alcotest.test_case "crafted ranking" `Quick test_ranking_on_crafted_graph;
          Alcotest.test_case "unbounded generator" `Quick test_pattern_gen_unbounded_stats;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_cases);
    ]
