(* Core matching: the production engines (HHK simulation, bounded
   simulation with both strategies) checked against a brute-force
   reference implementation of the paper's definition, plus result-graph
   and ranking behaviour. *)

open Expfinder_graph
open Expfinder_pattern
open Expfinder_core

let labels = Array.map Label.of_string [| "A"; "B"; "C" |]

let random_graph rng =
  let n = 1 + Prng.int rng 25 in
  let m = Prng.int rng (3 * n) in
  Generators.erdos_renyi rng ~n ~m (fun _ ->
      (Prng.choose rng labels, Attrs.of_list [ Attrs.int "exp" (Prng.int rng 4) ]))

let random_pattern rng ~simulation ~unbounded =
  let c =
    {
      Pattern_gen.default with
      nodes = 1 + Prng.int rng 4;
      extra_edges = Prng.int rng 3;
      max_bound = 3;
      unbounded_prob = (if unbounded then 0.3 else 0.0);
      condition_prob = 0.5;
      condition_range = (0, 3);
    }
  in
  let c = if simulation then Pattern_gen.simulation_config c else c in
  Pattern_gen.generate rng c ~labels

(* Brute-force greatest fixpoint straight from the definition: all-pairs
   nonempty-path distances + sweep-until-stable.  O(n^2·m) — fine for the
   tiny random graphs used here. *)
let reference pattern g =
  let n = Snapshot.node_count g in
  let scratch = Distance.make_scratch g in
  let dist = Array.make_matrix (max n 1) (max n 1) (-1) in
  for v = 0 to n - 1 do
    Distance.ball scratch g v n (fun w d -> dist.(v).(w) <- d)
  done;
  let m =
    Match_relation.create ~pattern_size:(Pattern.size pattern) ~graph_size:n
  in
  for u = 0 to Pattern.size pattern - 1 do
    for v = 0 to n - 1 do
      if Pattern.matches_node pattern u (Snapshot.label g v) (Snapshot.attrs g v) then
        Match_relation.add m u v
    done
  done;
  let changed = ref true in
  while !changed do
    changed := false;
    for u = 0 to Pattern.size pattern - 1 do
      List.iter
        (fun v ->
          let ok =
            List.for_all
              (fun (u', b) ->
                List.exists
                  (fun w ->
                    dist.(v).(w) >= 1
                    &&
                    match b with
                    | Pattern.Unbounded -> true
                    | Pattern.Bounded k -> dist.(v).(w) <= k)
                  (Match_relation.matches m u'))
              (Pattern.out_edges pattern u)
          in
          if not ok then begin
            Match_relation.remove m u v;
            changed := true
          end)
        (Match_relation.matches m u)
    done
  done;
  m

let prop_simulation_matches_reference seed =
  let rng = Prng.create seed in
  let g = Snapshot.of_digraph (random_graph rng) in
  let pattern = random_pattern rng ~simulation:true ~unbounded:false in
  Match_relation.equal (Simulation.run pattern g) (reference pattern g)

let prop_bsim_counters_matches_reference seed =
  let rng = Prng.create seed in
  let g = Snapshot.of_digraph (random_graph rng) in
  let pattern = random_pattern rng ~simulation:false ~unbounded:false in
  Match_relation.equal
    (Bounded_sim.run ~strategy:Bounded_sim.Counters pattern g)
    (reference pattern g)

let prop_bsim_naive_matches_reference seed =
  let rng = Prng.create seed in
  let g = Snapshot.of_digraph (random_graph rng) in
  let pattern = random_pattern rng ~simulation:false ~unbounded:true in
  Match_relation.equal
    (Bounded_sim.run ~strategy:Bounded_sim.Naive pattern g)
    (reference pattern g)

let prop_bsim_strategies_agree seed =
  let rng = Prng.create seed in
  let g = Snapshot.of_digraph (random_graph rng) in
  let pattern = random_pattern rng ~simulation:false ~unbounded:true in
  Match_relation.equal
    (Bounded_sim.run ~strategy:Bounded_sim.Counters pattern g)
    (Bounded_sim.run ~strategy:Bounded_sim.Naive pattern g)

let prop_bound1_equals_simulation seed =
  let rng = Prng.create seed in
  let g = Snapshot.of_digraph (random_graph rng) in
  let pattern = random_pattern rng ~simulation:true ~unbounded:false in
  Match_relation.equal (Simulation.run pattern g) (Bounded_sim.run pattern g)

let prop_kernel_consistent seed =
  let rng = Prng.create seed in
  let g = Snapshot.of_digraph (random_graph rng) in
  let pattern = random_pattern rng ~simulation:false ~unbounded:false in
  let m = Bounded_sim.run pattern g in
  Bounded_sim.consistent pattern g m

let prop_relaxing_bounds_grows_matches seed =
  (* Monotonicity: raising a bound can only add matches. *)
  let rng = Prng.create seed in
  let g = Snapshot.of_digraph (random_graph rng) in
  let pattern = random_pattern rng ~simulation:false ~unbounded:false in
  let relaxed_edges =
    List.map
      (fun (u, v, b) ->
        match b with
        | Pattern.Bounded k -> (u, v, Pattern.Bounded (k + 1))
        | Pattern.Unbounded -> (u, v, Pattern.Unbounded))
      (Pattern.edges pattern)
  in
  let nodes = Array.init (Pattern.size pattern) (Pattern.node_spec pattern) in
  let relaxed = Pattern.make_exn ~nodes ~edges:relaxed_edges ~output:(Pattern.output pattern) in
  let tight = Bounded_sim.run pattern g in
  let loose = Bounded_sim.run relaxed g in
  List.for_all
    (fun (u, v) -> Match_relation.mem loose u v)
    (Match_relation.pairs tight)

(* --- Match_relation ------------------------------------------------------ *)

let test_match_relation_ops () =
  let m = Match_relation.create ~pattern_size:2 ~graph_size:10 in
  Alcotest.(check bool) "not total" false (Match_relation.is_total m);
  Match_relation.add m 0 3;
  Match_relation.add m 1 5;
  Match_relation.add m 1 2;
  Alcotest.(check bool) "total" true (Match_relation.is_total m);
  Alcotest.(check int) "total pairs" 3 (Match_relation.total m);
  Alcotest.(check (list (pair int int))) "pairs" [ (0, 3); (1, 2); (1, 5) ] (Match_relation.pairs m);
  let c = Match_relation.copy m in
  Match_relation.remove c 0 3;
  Alcotest.(check bool) "copy independent" true (Match_relation.mem m 0 3);
  Alcotest.(check bool) "not equal" false (Match_relation.equal m c);
  let m2 = Match_relation.of_pairs ~pattern_size:2 ~graph_size:10 (Match_relation.pairs m) in
  Alcotest.(check bool) "of_pairs" true (Match_relation.equal m m2);
  Match_relation.clear m;
  Alcotest.(check int) "cleared" 0 (Match_relation.total m)

(* --- Candidates ----------------------------------------------------------- *)

let test_candidates_respect_predicates () =
  let g = Snapshot.of_digraph (Expfinder_workload.Collab.graph ()) in
  let q = Expfinder_workload.Collab.query () in
  let c = Candidates.compute q g in
  (* SD candidates: everyone with the SD label and exp >= 2, including
     Fred (edge constraints are not applied yet). *)
  Alcotest.(check (list int)) "SD candidates"
    (List.sort compare
       Expfinder_workload.Collab.[ dan; mat; pat; fred ])
    (Match_relation.matches c 1);
  (* SA candidates need exp >= 5. *)
  Alcotest.(check (list int)) "SA candidates"
    Expfinder_workload.Collab.[ walt; bob ]
    (Match_relation.matches c 0)

(* --- Empty / degenerate cases ---------------------------------------------- *)

let test_no_match_is_untotal () =
  let g = Snapshot.of_digraph (Expfinder_workload.Collab.graph ()) in
  let nodes =
    [| { Pattern.name = "CEO"; label = Some (Label.of_string "CEO"); pred = Predicate.always } |]
  in
  let p = Pattern.make_exn ~nodes ~edges:[] ~output:0 in
  let m = Bounded_sim.run p g in
  Alcotest.(check bool) "untotal" false (Match_relation.is_total m);
  Alcotest.(check int) "no pairs" 0 (Match_relation.total m)

let test_single_node_pattern () =
  let g = Snapshot.of_digraph (Expfinder_workload.Collab.graph ()) in
  let nodes =
    [| { Pattern.name = "SA"; label = Some (Label.of_string "SA"); pred = Predicate.always } |]
  in
  let p = Pattern.make_exn ~nodes ~edges:[] ~output:0 in
  let m = Simulation.run p g in
  Alcotest.(check (list int)) "both SAs"
    Expfinder_workload.Collab.[ walt; bob ]
    (Match_relation.matches m 0)

let test_empty_graph () =
  let g = Snapshot.of_digraph (Digraph.create ()) in
  let nodes =
    [| { Pattern.name = "SA"; label = Some (Label.of_string "SA"); pred = Predicate.always } |]
  in
  let p = Pattern.make_exn ~nodes ~edges:[] ~output:0 in
  Alcotest.(check int) "no matches" 0 (Match_relation.total (Bounded_sim.run p g));
  Alcotest.(check int) "sim no matches" 0 (Match_relation.total (Simulation.run p g))

(* --- Result graph / ranking ------------------------------------------------ *)

let test_result_graph_empty_relation () =
  let g = Snapshot.of_digraph (Expfinder_workload.Collab.graph ()) in
  let q = Expfinder_workload.Collab.query () in
  let empty = Match_relation.create ~pattern_size:(Pattern.size q) ~graph_size:(Snapshot.node_count g) in
  let gr = Result_graph.build q g empty in
  Alcotest.(check int) "no nodes" 0 (Result_graph.node_count gr);
  Alcotest.(check int) "no edges" 0 (Result_graph.edge_count gr)

let test_result_graph_roles () =
  let g = Snapshot.of_digraph (Expfinder_workload.Collab.graph ()) in
  let q = Expfinder_workload.Collab.query () in
  let m = Bounded_sim.run q g in
  let gr = Result_graph.build q g m in
  Alcotest.(check (list int)) "Bob matches SA" [ 0 ]
    (Result_graph.pattern_nodes_of gr Expfinder_workload.Collab.bob);
  Alcotest.(check (list int)) "unmatched node has no roles" []
    (Result_graph.pattern_nodes_of gr Expfinder_workload.Collab.bill);
  Alcotest.(check bool) "mem" true (Result_graph.mem_data_node gr Expfinder_workload.Collab.eva);
  Alcotest.(check bool) "not mem" false (Result_graph.mem_data_node gr Expfinder_workload.Collab.bill);
  let dot = Result_graph.to_dot q g ~highlight:[ Expfinder_workload.Collab.bob ] gr in
  Alcotest.(check bool) "dot nonempty" true (String.length dot > 40)

let test_rank_isolated_node_infinite () =
  (* A pattern with one node: result graph has no edges, every rank is
     infinite, and top-k falls back to node-id order. *)
  let g = Snapshot.of_digraph (Expfinder_workload.Collab.graph ()) in
  let nodes =
    [| { Pattern.name = "SA"; label = Some (Label.of_string "SA"); pred = Predicate.always } |]
  in
  let p = Pattern.make_exn ~nodes ~edges:[] ~output:0 in
  let m = Simulation.run p g in
  let gr = Result_graph.build p g m in
  let r = Ranking.rank_of gr Expfinder_workload.Collab.bob in
  Alcotest.(check bool) "infinite" true (r.Ranking.den = 0);
  Alcotest.(check bool) "inf = inf" true (Ranking.compare_rank r r = 0);
  Alcotest.(check bool) "inf to float" true (Ranking.rank_to_float r = infinity);
  match Ranking.top_k gr ~output_matches:(Match_relation.matches m 0) ~k:2 with
  | [ (first, _); (second, _) ] ->
    Alcotest.(check int) "tie broken by id" Expfinder_workload.Collab.walt first;
    Alcotest.(check int) "second" Expfinder_workload.Collab.bob second
  | _ -> Alcotest.fail "expected two"

let test_rank_compare () =
  let open Ranking in
  Alcotest.(check bool) "9/5 < 7/3" true (compare_rank { num = 9; den = 5 } { num = 7; den = 3 } < 0);
  Alcotest.(check bool) "equal cross" true (compare_rank { num = 1; den = 2 } { num = 2; den = 4 } = 0);
  Alcotest.(check bool) "finite < inf" true (compare_rank { num = 100; den = 1 } { num = 0; den = 0 } < 0)

let test_top_k_sizes () =
  let g = Snapshot.of_digraph (Expfinder_workload.Collab.graph ()) in
  let q = Expfinder_workload.Collab.query () in
  let m = Bounded_sim.run q g in
  let gr = Result_graph.build q g m in
  let matches = Match_relation.matches m 0 in
  Alcotest.(check int) "k=0" 0 (List.length (Ranking.top_k gr ~output_matches:matches ~k:0));
  Alcotest.(check int) "k=1" 1 (List.length (Ranking.top_k gr ~output_matches:matches ~k:1));
  Alcotest.(check int) "k larger than matches" 2
    (List.length (Ranking.top_k gr ~output_matches:matches ~k:10));
  Alcotest.check_raises "k<0" (Invalid_argument "Ranking.top_k") (fun () ->
      ignore (Ranking.top_k gr ~output_matches:matches ~k:(-1)))

let prop_result_graph_weights_within_bounds seed =
  let rng = Prng.create seed in
  let g = Snapshot.of_digraph (random_graph rng) in
  let pattern = random_pattern rng ~simulation:false ~unbounded:false in
  let m = Bounded_sim.run pattern g in
  let gr = Result_graph.build pattern g m in
  let max_bound = Option.value ~default:1 (Pattern.max_bound pattern) in
  let ok = ref true in
  Result_graph.iter_edges gr (fun _ _ d -> if d < 1 || d > max_bound then ok := false);
  !ok

(* --- ball index ---------------------------------------------------------- *)

let test_ball_index_contents () =
  let rng = Prng.create 17 in
  let g = Snapshot.of_digraph (random_graph rng) in
  let idx = Ball_index.build g ~radius:3 in
  let scratch = Distance.make_scratch g in
  for v = 0 to Snapshot.node_count g - 1 do
    let from_bfs = Hashtbl.create 8 in
    Distance.ball scratch g v 3 (fun w d -> Hashtbl.replace from_bfs w d);
    let from_idx = Hashtbl.create 8 in
    Ball_index.iter_ball idx v (fun w d -> Hashtbl.replace from_idx w d);
    Alcotest.(check int)
      (Printf.sprintf "ball size of %d" v)
      (Hashtbl.length from_bfs) (Hashtbl.length from_idx);
    Hashtbl.iter
      (fun w d ->
        Alcotest.(check (option int)) "distance agrees" (Some d) (Hashtbl.find_opt from_idx w))
      from_bfs
  done

let test_ball_index_supports () =
  let g = Snapshot.of_digraph (Expfinder_workload.Collab.graph ()) in
  let idx = Ball_index.build g ~radius:3 in
  Alcotest.(check bool) "paper query supported" true
    (Ball_index.supports idx (Expfinder_workload.Collab.query ()));
  Alcotest.(check bool) "unbounded unsupported" false
    (Ball_index.supports idx (Expfinder_workload.Collab.q3 ()));
  let idx1 = Ball_index.build g ~radius:1 in
  Alcotest.(check bool) "radius too small" false
    (Ball_index.supports idx1 (Expfinder_workload.Collab.query ()));
  Alcotest.check_raises "unsupported evaluate raises"
    (Invalid_argument "Ball_index.evaluate: pattern bounds exceed the index radius")
    (fun () ->
      ignore (Ball_index.evaluate idx1 (Expfinder_workload.Collab.query ()) g))

let prop_ball_index_evaluate seed =
  let rng = Prng.create seed in
  let g = Snapshot.of_digraph (random_graph rng) in
  let pattern = random_pattern rng ~simulation:false ~unbounded:false in
  let idx = Ball_index.build g ~radius:3 in
  if not (Ball_index.supports idx pattern) then true
  else Match_relation.equal (Ball_index.evaluate idx pattern g) (Bounded_sim.run pattern g)

(* --- roll-up / drill-down ---------------------------------------------- *)

let fig1_result_graph () =
  let g = Snapshot.of_digraph (Expfinder_workload.Collab.graph ()) in
  let q = Expfinder_workload.Collab.query () in
  let m = Bounded_sim.run q g in
  (g, q, Result_graph.build q g m)

let test_roll_up () =
  let _, q, gr = fig1_result_graph () in
  let s = Result_graph.roll_up q gr in
  Alcotest.(check (list int)) "match counts" [ 2; 3; 1; 1 ]
    (Array.to_list s.Result_graph.match_counts);
  let stats_for u u' =
    List.find
      (fun e -> e.Result_graph.source = u && e.Result_graph.target = u')
      s.Result_graph.edge_summaries
  in
  let sa_sd = stats_for 0 1 in
  Alcotest.(check int) "SA->SD realised" 3 sa_sd.Result_graph.realised;
  Alcotest.(check int) "SA->SD min" 1 sa_sd.Result_graph.min_dist;
  let sa_ba = stats_for 0 2 in
  Alcotest.(check int) "SA->BA realised" 2 sa_ba.Result_graph.realised;
  Alcotest.(check int) "SA->BA min" 3 sa_ba.Result_graph.min_dist;
  let st_ba = stats_for 3 2 in
  Alcotest.(check int) "ST->BA realised" 1 st_ba.Result_graph.realised;
  (* Rendering succeeds and is non-trivial. *)
  let text = Format.asprintf "%a" (Result_graph.pp_summary q) s in
  Alcotest.(check bool) "summary renders" true (String.length text > 50)

let test_drill_down () =
  let g, q, gr = fig1_result_graph () in
  let details = Result_graph.drill_down q g gr 0 in
  (match details with
  | [ walt; bob ] ->
    Alcotest.(check string) "Walt first" "Walt" walt.Result_graph.display;
    Alcotest.(check string) "then Bob" "Bob" bob.Result_graph.display;
    Alcotest.(check (list (pair int int)))
      "Bob's result successors"
      [ (Expfinder_workload.Collab.jean, 3); (Expfinder_workload.Collab.dan, 1);
        (Expfinder_workload.Collab.pat, 2) ]
      (List.sort compare bob.Result_graph.out_edges)
  | _ -> Alcotest.fail "expected exactly Walt and Bob");
  Alcotest.check_raises "bad pattern node" (Invalid_argument "Result_graph.drill_down")
    (fun () -> ignore (Result_graph.drill_down q g gr 9))

let qcheck_cases =
  [
    QCheck.Test.make ~count:100 ~name:"simulation = reference" QCheck.small_int (fun s ->
        prop_simulation_matches_reference (s + 1));
    QCheck.Test.make ~count:100 ~name:"bsim counters = reference" QCheck.small_int (fun s ->
        prop_bsim_counters_matches_reference (s + 1));
    QCheck.Test.make ~count:60 ~name:"bsim naive (unbounded) = reference" QCheck.small_int
      (fun s -> prop_bsim_naive_matches_reference (s + 1));
    QCheck.Test.make ~count:60 ~name:"bsim strategies agree" QCheck.small_int (fun s ->
        prop_bsim_strategies_agree (s + 1));
    QCheck.Test.make ~count:60 ~name:"bound-1 bsim = simulation" QCheck.small_int (fun s ->
        prop_bound1_equals_simulation (s + 1));
    QCheck.Test.make ~count:60 ~name:"kernel is consistent" QCheck.small_int (fun s ->
        prop_kernel_consistent (s + 1));
    QCheck.Test.make ~count:60 ~name:"relaxing bounds grows matches" QCheck.small_int
      (fun s -> prop_relaxing_bounds_grows_matches (s + 1));
    QCheck.Test.make ~count:60 ~name:"result-graph weights within bounds" QCheck.small_int
      (fun s -> prop_result_graph_weights_within_bounds (s + 1));
    QCheck.Test.make ~count:60 ~name:"ball-index evaluate = bsim" QCheck.small_int
      (fun s -> prop_ball_index_evaluate (s + 1));
  ]

let () =
  Alcotest.run "core"
    [
      ( "match_relation",
        [
          Alcotest.test_case "operations" `Quick test_match_relation_ops;
          Alcotest.test_case "candidates" `Quick test_candidates_respect_predicates;
        ] );
      ( "degenerate",
        [
          Alcotest.test_case "no match" `Quick test_no_match_is_untotal;
          Alcotest.test_case "single node" `Quick test_single_node_pattern;
          Alcotest.test_case "empty graph" `Quick test_empty_graph;
        ] );
      ( "result_graph",
        [
          Alcotest.test_case "empty relation" `Quick test_result_graph_empty_relation;
          Alcotest.test_case "roles" `Quick test_result_graph_roles;
        ] );
      ( "ranking",
        [
          Alcotest.test_case "isolated = infinite" `Quick test_rank_isolated_node_infinite;
          Alcotest.test_case "compare" `Quick test_rank_compare;
          Alcotest.test_case "top-k sizes" `Quick test_top_k_sizes;
        ] );
      ( "views",
        [
          Alcotest.test_case "roll up" `Quick test_roll_up;
          Alcotest.test_case "drill down" `Quick test_drill_down;
        ] );
      ( "ball_index",
        [
          Alcotest.test_case "contents = BFS" `Quick test_ball_index_contents;
          Alcotest.test_case "supports" `Quick test_ball_index_supports;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_cases);
    ]
