(* The query engine: provenance (cache / compressed / direct), top-K,
   registered-query maintenance, and consistency across update streams. *)

open Expfinder_graph
open Expfinder_pattern
open Expfinder_core
open Expfinder_incremental
open Expfinder_engine
module Collab = Expfinder_workload.Collab
module Queries = Expfinder_workload.Queries
module Synthetic = Expfinder_workload.Synthetic

let test_provenance_cache () =
  let engine = Engine.create (Collab.graph ()) in
  let q = Collab.query () in
  let first = Engine.evaluate engine q in
  Alcotest.(check bool) "first direct" true (first.Engine.provenance = Engine.Direct);
  let second = Engine.evaluate engine q in
  Alcotest.(check bool) "second cached" true (second.Engine.provenance = Engine.From_cache);
  Alcotest.(check bool) "same relation" true
    (Match_relation.equal first.Engine.relation second.Engine.relation);
  Alcotest.(check bool) "total" true first.Engine.total

let test_provenance_compressed () =
  let engine = Engine.create (Collab.graph ()) in
  let q = Collab.query () in
  Engine.enable_compression ~atoms:Queries.atom_universe engine;
  (* Q's conditions are exp>=2/3/5; 5 is not in the workload universe, so
     use a dedicated universe that covers Q. *)
  Engine.enable_compression
    ~atoms:
      [
        { Predicate.attr = "exp"; op = Predicate.Ge; value = Attr.Int 2 };
        { Predicate.attr = "exp"; op = Predicate.Ge; value = Attr.Int 3 };
        { Predicate.attr = "exp"; op = Predicate.Ge; value = Attr.Int 5 };
      ]
    engine;
  let answer = Engine.evaluate engine q in
  Alcotest.(check bool) "from compressed" true (answer.Engine.provenance = Engine.From_compressed);
  let direct = Bounded_sim.run q (Engine.snapshot engine) in
  Alcotest.(check bool) "matches direct" true (Match_relation.equal answer.Engine.relation direct);
  Engine.disable_compression engine;
  Alcotest.(check bool) "compression off" true (Engine.compression engine = None)

let test_unsupported_pattern_falls_back () =
  let engine = Engine.create (Collab.graph ()) in
  Engine.enable_compression engine;
  (* empty universe: Q unsupported *)
  let answer = Engine.evaluate engine (Collab.query ()) in
  Alcotest.(check bool) "direct fallback" true (answer.Engine.provenance = Engine.Direct);
  Alcotest.(check bool) "still total" true answer.Engine.total

let test_top_k_names () =
  let engine = Engine.create (Collab.graph ()) in
  match Engine.top_k engine (Collab.query ()) ~k:2 with
  | [ first; second ] ->
    Alcotest.(check (option string)) "top-1 Bob" (Some "Bob") first.Engine.name;
    Alcotest.(check (option string)) "top-2 Walt" (Some "Walt") second.Engine.name;
    Alcotest.(check bool) "ranks ordered" true
      (Ranking.compare_rank first.Engine.rank second.Engine.rank <= 0)
  | _ -> Alcotest.fail "expected two experts"

let test_top_k_empty_when_no_match () =
  let engine = Engine.create (Collab.graph ()) in
  let nodes =
    [| { Pattern.name = "CEO"; label = Some (Label.of_string "CEO"); pred = Predicate.always } |]
  in
  let p = Pattern.make_exn ~nodes ~edges:[] ~output:0 in
  Alcotest.(check int) "no experts" 0 (List.length (Engine.top_k engine p ~k:5))

let test_updates_invalidate_cache () =
  let engine = Engine.create (Collab.graph ()) in
  let q = Collab.query () in
  ignore (Engine.evaluate engine q : Engine.answer);
  ignore (Engine.apply_updates engine [ Update.Insert_edge (fst Collab.e1, snd Collab.e1) ]
           : Incremental.report list);
  let after = Engine.evaluate engine q in
  Alcotest.(check bool) "fresh answer" true (after.Engine.provenance <> Engine.From_cache);
  Alcotest.(check bool) "Fred matched now" true (Match_relation.mem after.Engine.relation 1 Collab.fred)

let test_registered_query_maintained () =
  let engine = Engine.create (Collab.graph ()) in
  let q = Collab.query () in
  Engine.register engine q;
  Alcotest.(check int) "registered" 1 (List.length (Engine.registered engine));
  let reports =
    Engine.apply_updates engine [ Update.Insert_edge (fst Collab.e1, snd Collab.e1) ]
  in
  (match reports with
  | [ report ] ->
    Alcotest.(check (list (pair int int))) "maintained delta" [ (1, Collab.fred) ]
      report.Incremental.added
  | _ -> Alcotest.fail "expected one report");
  (* The registered kernel now answers without recomputation. *)
  let answer = Engine.evaluate engine q in
  Alcotest.(check bool) "Fred present" true (Match_relation.mem answer.Engine.relation 1 Collab.fred);
  Engine.unregister engine q;
  Alcotest.(check int) "unregistered" 0 (List.length (Engine.registered engine))

let test_engine_consistency_under_updates () =
  (* Everything stays consistent across a stream of random update batches:
     registered kernel = compressed answer = direct recomputation. *)
  let rng = Prng.create 99 in
  let g = Synthetic.org rng ~teams:8 ~team_size:5 in
  let engine = Engine.create g in
  Engine.enable_compression ~atoms:Queries.atom_universe engine;
  let q =
    match Queries.workload rng ~count:1 ~simulation:false (Engine.graph engine) with
    | [ q ] -> q
    | _ -> Alcotest.fail "workload"
  in
  Engine.register engine q;
  for _round = 1 to 5 do
    let updates = Update.random_mixed rng (Engine.graph engine) 4 in
    ignore (Engine.apply_updates engine updates : Incremental.report list);
    let direct = Bounded_sim.run q (Engine.snapshot engine) in
    let answer = Engine.evaluate engine q in
    Alcotest.(check bool) "engine = direct" true
      (Match_relation.equal answer.Engine.relation direct);
    match Engine.compression engine with
    | Some compressed when Expfinder_compression.Compress.supports compressed q ->
      Alcotest.(check bool) "compressed = direct" true
        (Match_relation.equal (Expfinder_compression.Compress.evaluate compressed q) direct)
    | _ -> ()
  done

let test_ball_index_provenance () =
  let engine = Engine.create (Collab.graph ()) in
  Engine.enable_ball_index ~radius:3 engine;
  let q = Collab.query () in
  let answer = Engine.evaluate engine q in
  Alcotest.(check bool) "answered from index" true
    (answer.Engine.provenance = Engine.From_index);
  let direct = Bounded_sim.run q (Engine.snapshot engine) in
  Alcotest.(check bool) "matches direct" true
    (Match_relation.equal answer.Engine.relation direct);
  (* Updates invalidate the index; it is rebuilt lazily and stays
     correct. *)
  ignore
    (Engine.apply_updates engine [ Update.Insert_edge (fst Collab.e1, snd Collab.e1) ]
      : Incremental.report list);
  let after = Engine.evaluate engine q in
  Alcotest.(check bool) "still from index" true (after.Engine.provenance = Engine.From_index);
  Alcotest.(check bool) "Fred found via index" true
    (Match_relation.mem after.Engine.relation 1 Collab.fred);
  (* Unsupported patterns (unbounded edges) fall back to the planner. *)
  let q3 = Collab.q3 () in
  let fallback = Engine.evaluate engine q3 in
  Alcotest.(check bool) "unbounded falls back" true
    (fallback.Engine.provenance = Engine.Direct);
  Engine.disable_ball_index engine;
  ignore (Engine.apply_updates engine [] : Incremental.report list);
  let off = Engine.evaluate engine q in
  Alcotest.(check bool) "disabled -> direct" true (off.Engine.provenance = Engine.Direct)

let test_result_graph_empty_when_no_match () =
  let engine = Engine.create (Collab.graph ()) in
  let nodes =
    [| { Pattern.name = "CEO"; label = Some (Label.of_string "CEO"); pred = Predicate.always } |]
  in
  let p = Pattern.make_exn ~nodes ~edges:[] ~output:0 in
  let gr = Engine.result_graph engine p in
  Alcotest.(check int) "empty result graph" 0 (Result_graph.node_count gr)

let test_register_is_idempotent () =
  let engine = Engine.create (Collab.graph ()) in
  let q = Collab.query () in
  Engine.register engine q;
  Engine.register engine q;
  Alcotest.(check int) "registered once" 1 (List.length (Engine.registered engine));
  (* A structurally equal but separately built pattern shares the
     fingerprint and therefore the registration. *)
  Engine.register engine (Collab.query ());
  Alcotest.(check int) "still once" 1 (List.length (Engine.registered engine))

let test_all_features_agree () =
  (* Cache + compression + ball index + registration all enabled: every
     answer, whatever its provenance, equals direct evaluation. *)
  let rng = Prng.create 123 in
  let g = Synthetic.org rng ~teams:30 ~team_size:6 in
  let engine = Engine.create g in
  Engine.enable_compression ~atoms:Queries.atom_universe engine;
  Engine.enable_ball_index ~radius:3 engine;
  let queries = Queries.workload rng ~count:6 ~simulation:false (Engine.graph engine) in
  List.iter (Engine.register engine) [ List.hd queries ];
  for _round = 1 to 3 do
    List.iter
      (fun q ->
        let answer = Engine.evaluate engine q in
        let direct = Bounded_sim.run q (Engine.snapshot engine) in
        Alcotest.(check bool)
          (Printf.sprintf "answer (%s) = direct"
             (match answer.Engine.provenance with
             | Engine.From_cache -> "cache"
             | Engine.From_compressed -> "compressed"
             | Engine.From_index -> "index"
             | Engine.Direct -> "direct"))
          true
          (Match_relation.equal answer.Engine.relation direct))
      queries;
    let updates = Update.random_mixed rng (Engine.graph engine) 5 in
    ignore (Engine.apply_updates engine updates : Incremental.report list)
  done

let test_cache_stats () =
  let engine = Engine.create (Collab.graph ()) in
  let q = Collab.query () in
  ignore (Engine.evaluate engine q : Engine.answer);
  ignore (Engine.evaluate engine q : Engine.answer);
  let hits, misses = Engine.cache_stats engine in
  Alcotest.(check bool) "one hit, one miss" true (hits >= 1 && misses >= 1)

(* Containment reuse: a cached superset query answers a contained query
   without touching the whole graph. *)
let loose_query () =
  let q = Collab.query () in
  let nodes =
    Array.init (Pattern.size q) (fun u ->
        let s = Pattern.node_spec q u in
        { s with Pattern.pred = Predicate.always })
  in
  let edges =
    List.map
      (fun (u, v, b) ->
        (u, v, match b with Pattern.Bounded k -> Pattern.Bounded (k + 1) | b -> b))
      (Pattern.edges q)
  in
  Pattern.make_exn ~nodes ~edges ~output:(Pattern.output q)

let test_containment_reuse () =
  let open Expfinder_telemetry in
  set_enabled true;
  Fun.protect ~finally:(fun () -> set_enabled false) @@ fun () ->
  let engine = Engine.create (Collab.graph ()) in
  let tight = Collab.query () and loose = loose_query () in
  Alcotest.(check bool) "precondition: tight ⊑ loose" true
    (Pattern_analysis.contains tight loose);
  let hits = Metrics.counter "engine.containment_hits" in
  let before = Counter.value hits in
  let first = Engine.evaluate engine loose in
  Alcotest.(check bool) "superset evaluated directly" true
    (first.Engine.provenance = Engine.Direct);
  let second = Engine.evaluate engine tight in
  Alcotest.(check bool) "contained query served from the cached superset" true
    (second.Engine.provenance = Engine.From_cache);
  Alcotest.(check int) "containment hit counted" (before + 1) (Counter.value hits);
  let direct = Bounded_sim.run tight (Engine.snapshot engine) in
  Alcotest.(check bool) "answer equals direct evaluation" true
    (Match_relation.equal second.Engine.relation direct);
  (* The reused answer is cached under the tight fingerprint: a third
     evaluation is an exact cache hit, no containment scan. *)
  let third = Engine.evaluate engine tight in
  Alcotest.(check bool) "then an exact hit" true (third.Engine.provenance = Engine.From_cache);
  Alcotest.(check int) "no second containment hit" (before + 1) (Counter.value hits)

let test_differential_mode_passes () =
  Verify.set_differential true;
  Fun.protect ~finally:(fun () -> Verify.set_differential false) @@ fun () ->
  let engine = Engine.create (Collab.graph ()) in
  let q = Collab.query () in
  let first = Engine.evaluate engine q in
  let second = Engine.evaluate engine q in
  Alcotest.(check bool) "cached answer survives the differential check" true
    (second.Engine.provenance = Engine.From_cache);
  Alcotest.(check bool) "answers agree" true
    (Match_relation.equal first.Engine.relation second.Engine.relation);
  let contained = Engine.evaluate engine (loose_query ()) in
  Alcotest.(check bool) "direct answer passes the sanitizer" true contained.Engine.total;
  Engine.enable_ball_index engine;
  let indexed = Engine.evaluate engine q in
  Alcotest.(check bool) "indexed answer passes too" true indexed.Engine.total

let () =
  Alcotest.run "engine"
    [
      ( "evaluate",
        [
          Alcotest.test_case "cache provenance" `Quick test_provenance_cache;
          Alcotest.test_case "compressed provenance" `Quick test_provenance_compressed;
          Alcotest.test_case "unsupported falls back" `Quick test_unsupported_pattern_falls_back;
          Alcotest.test_case "ball index" `Quick test_ball_index_provenance;
          Alcotest.test_case "cache stats" `Quick test_cache_stats;
          Alcotest.test_case "containment reuse" `Quick test_containment_reuse;
          Alcotest.test_case "differential mode" `Quick test_differential_mode_passes;
        ] );
      ( "topk",
        [
          Alcotest.test_case "names and order" `Quick test_top_k_names;
          Alcotest.test_case "empty on no match" `Quick test_top_k_empty_when_no_match;
          Alcotest.test_case "empty result graph" `Quick test_result_graph_empty_when_no_match;
        ] );
      ( "features",
        [
          Alcotest.test_case "register idempotent" `Quick test_register_is_idempotent;
          Alcotest.test_case "all features agree" `Quick test_all_features_agree;
        ] );
      ( "updates",
        [
          Alcotest.test_case "cache invalidation" `Quick test_updates_invalidate_cache;
          Alcotest.test_case "registered maintained" `Quick test_registered_query_maintained;
          Alcotest.test_case "consistency stream" `Quick test_engine_consistency_under_updates;
        ] );
    ]
