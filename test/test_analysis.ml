(* Qlint static analysis and the Verify self-checker: predicate
   satisfiability/implication, structural lints, query containment
   (with a randomized soundness property), the planner's static-empty
   fast path, and lint-cleanliness of every shipped example query. *)

open Expfinder_graph
open Expfinder_pattern
open Expfinder_core
open Expfinder_engine
open Expfinder_telemetry
module Collab = Expfinder_workload.Collab
module PA = Pattern_analysis

let with_telemetry on f =
  set_enabled on;
  Fun.protect ~finally:(fun () -> set_enabled false) f

let spec ?label ?(pred = Predicate.always) name =
  { Pattern.name; label = Option.map Label.of_string label; pred }

let ne_int attr c = Predicate.atom attr Predicate.Ne (Attr.Int c)

let conj_all = List.fold_left Predicate.conj Predicate.always

(* --- predicate satisfiability ------------------------------------------- *)

let test_unsat_interval () =
  let p = Predicate.conj (Predicate.ge_int "exp" 5) (Predicate.lt_int "exp" 3) in
  Alcotest.(check bool) "exp>=5 && exp<3 unsat" true (PA.pred_unsat p <> None);
  let q = Predicate.conj (Predicate.ge_int "exp" 3) (Predicate.le_int "exp" 3) in
  Alcotest.(check bool) "exp>=3 && exp<=3 sat" true (PA.pred_unsat q = None);
  let saturated = Predicate.atom "exp" Predicate.Gt (Attr.Int max_int) in
  Alcotest.(check bool) "exp > max_int unsat" true (PA.pred_unsat saturated <> None)

let test_unsat_string_conflict () =
  let p = Predicate.conj (Predicate.eq_str "specialty" "DBA") (Predicate.eq_str "specialty" "SA") in
  Alcotest.(check bool) "two string equalities unsat" true (PA.pred_unsat p <> None);
  let q =
    Predicate.conj (Predicate.eq_str "specialty" "DBA")
      (Predicate.atom "specialty" Predicate.Ne (Attr.String "DBA"))
  in
  Alcotest.(check bool) "eq and ne of same value unsat" true (PA.pred_unsat q <> None);
  let r =
    Predicate.conj (Predicate.eq_str "specialty" "DBA")
      (Predicate.atom "specialty" Predicate.Ne (Attr.String "SA"))
  in
  Alcotest.(check bool) "eq DBA, ne SA sat" true (PA.pred_unsat r = None)

let test_unsat_ne_exhaustion () =
  (* exp in [0,1] with both points excluded. *)
  let p =
    conj_all
      [ Predicate.ge_int "exp" 0; Predicate.le_int "exp" 1; ne_int "exp" 0; ne_int "exp" 1 ]
  in
  Alcotest.(check bool) "interval exhausted by Ne" true (PA.pred_unsat p <> None);
  let q = conj_all [ Predicate.ge_int "exp" 0; Predicate.le_int "exp" 1; ne_int "exp" 0 ] in
  Alcotest.(check bool) "one point left" true (PA.pred_unsat q = None)

let test_unsat_mixed_types () =
  let p = Predicate.conj (Predicate.eq_int "x" 3) (Predicate.eq_str "x" "three") in
  match PA.pred_unsat p with
  | None -> Alcotest.fail "mixed-type atoms must be unsatisfiable"
  | Some _ -> ()

(* --- implication and simplification ------------------------------------- *)

let test_implies () =
  let ge k = Predicate.ge_int "exp" k in
  Alcotest.(check bool) "exp>=5 => exp>=3" true (PA.implies (ge 5) (ge 3));
  Alcotest.(check bool) "exp>=3 =/=> exp>=5" false (PA.implies (ge 3) (ge 5));
  Alcotest.(check bool) "anything => true" true (PA.implies (ge 3) Predicate.always);
  Alcotest.(check bool) "eq pin evaluates" true
    (PA.implies (Predicate.eq_int "exp" 5) (Predicate.gt_int "exp" 2));
  Alcotest.(check bool) "string pin implies ne" true
    (PA.implies (Predicate.eq_str "s" "DBA") (Predicate.atom "s" Predicate.Ne (Attr.String "SA")));
  (* Unsat implies everything. *)
  let bot = Predicate.conj (ge 5) (Predicate.lt_int "exp" 3) in
  Alcotest.(check bool) "unsat => anything" true (PA.implies bot (Predicate.eq_str "s" "x"));
  (* No cross-attribute reasoning: false means "not provably". *)
  Alcotest.(check bool) "different attribute not implied" false
    (PA.implies (ge 5) (Predicate.ge_int "other" 0))

let test_simplify () =
  let p = Predicate.conj (Predicate.ge_int "exp" 3) (Predicate.ge_int "exp" 5) in
  let s = PA.simplify p in
  Alcotest.(check int) "one atom survives" 1 (List.length (Predicate.atoms s));
  Alcotest.(check bool) "the tighter one" true (Predicate.equal s (Predicate.ge_int "exp" 5));
  let q = Predicate.conj (Predicate.ge_int "exp" 5) (Predicate.eq_str "s" "DBA") in
  Alcotest.(check bool) "irredundant unchanged" true (Predicate.equal (PA.simplify q) q);
  let bot = Predicate.conj (Predicate.ge_int "exp" 5) (Predicate.lt_int "exp" 3) in
  Alcotest.(check bool) "unsat left as written" true (Predicate.equal (PA.simplify bot) bot)

let test_subsumes () =
  let weak = spec "w" ~pred:(Predicate.ge_int "exp" 2) ~label:"SA" in
  let tight = spec "t" ~pred:(Predicate.ge_int "exp" 5) ~label:"SA" in
  let wildcard = spec "any" in
  Alcotest.(check bool) "weaker spec subsumes tighter" true (PA.subsumes weak tight);
  Alcotest.(check bool) "tighter does not subsume weaker" false (PA.subsumes tight weak);
  Alcotest.(check bool) "wildcard subsumes everything" true (PA.subsumes wildcard tight);
  Alcotest.(check bool) "labelled does not subsume wildcard" false (PA.subsumes tight wildcard);
  let other = spec "o" ~pred:(Predicate.ge_int "exp" 5) ~label:"SD" in
  Alcotest.(check bool) "different labels never subsume" false (PA.subsumes weak other)

(* --- structural lints ---------------------------------------------------- *)

let unsat_query () =
  Pattern.make_exn
    ~nodes:
      [|
        spec "SA" ~label:"SA"
          ~pred:(Predicate.conj (Predicate.ge_int "exp" 5) (Predicate.lt_int "exp" 3));
        spec "SD" ~label:"SD" ~pred:(Predicate.ge_int "exp" 2);
      |]
    ~edges:[ (0, 1, Pattern.Bounded 2) ]
    ~output:0

let find_code code diags = List.filter (fun d -> d.PA.code = code) diags

let test_analyze_unsat () =
  let q = unsat_query () in
  Alcotest.(check bool) "statically empty" true (PA.statically_empty q);
  Alcotest.(check bool) "unsat node is SA" true (PA.unsat_node q = Some 0);
  let diags = PA.analyze q in
  (match find_code "unsat-predicate" diags with
  | [ d ] ->
    Alcotest.(check bool) "severity error" true (d.PA.severity = PA.Error);
    Alcotest.(check bool) "anchored at SA" true (d.PA.node = Some 0)
  | _ -> Alcotest.fail "expected exactly one unsat-predicate diagnostic");
  Alcotest.(check bool) "max severity error" true (PA.max_severity diags = Some PA.Error)

let test_analyze_structure () =
  (* Two unconnected components, an unconstrained node, a redundant atom
     and a subsumed direct edge, all in one query. *)
  let q =
    Pattern.make_exn
      ~nodes:
        [|
          spec "SA" ~label:"SA"
            ~pred:(Predicate.conj (Predicate.ge_int "exp" 3) (Predicate.ge_int "exp" 5));
          spec "SD" ~label:"SD";
          spec "BA" ~label:"BA";
          spec "anyone";
          spec "ST" ~label:"ST";
        |]
      ~edges:
        [
          (0, 1, Pattern.Bounded 1);
          (1, 2, Pattern.Bounded 2);
          (0, 2, Pattern.Bounded 3);
          (3, 4, Pattern.Bounded 1);
        ]
      ~output:0
  in
  let diags = PA.analyze q in
  Alcotest.(check int) "disconnected" 1 (List.length (find_code "disconnected" diags));
  (match find_code "unconstrained-node" diags with
  | [ d ] -> Alcotest.(check bool) "anchored at the wildcard node" true (d.PA.node = Some 3)
  | _ -> Alcotest.fail "expected one unconstrained-node diagnostic");
  (match find_code "redundant-atom" diags with
  | [ d ] ->
    Alcotest.(check bool) "anchored at SA" true (d.PA.node = Some 0);
    Alcotest.(check bool) "fixup suggests the tight form" true
      (match d.PA.fixup with Some f -> f = "tighten to [exp>=5]" | None -> false)
  | _ -> Alcotest.fail "expected one redundant-atom diagnostic");
  (match find_code "subsumed-edge" diags with
  | [ d ] ->
    Alcotest.(check bool) "names the path node" true
      (match String.index_opt d.PA.message 'S' with Some _ -> true | None -> false);
    Alcotest.(check bool) "mentions SD" true
      (let msg = d.PA.message in
       let re = "through SD" in
       let n = String.length msg and m = String.length re in
       let rec scan i = i + m <= n && (String.sub msg i m = re || scan (i + 1)) in
       scan 0)
  | _ -> Alcotest.fail "expected one subsumed-edge diagnostic");
  (* Errors first, infos last. *)
  let ranks =
    List.map (fun d -> match d.PA.severity with PA.Error -> 0 | PA.Warning -> 1 | PA.Info -> 2) diags
  in
  Alcotest.(check bool) "sorted by severity" true (List.sort compare ranks = ranks)

let test_analyze_duplicates () =
  let q =
    Pattern.make_exn
      ~nodes:
        [|
          spec "SA" ~label:"A" ~pred:(Predicate.ge_int "exp" 2);
          spec "SD1" ~label:"B";
          spec "SD2" ~label:"B";
          spec "ST" ~label:"C";
        |]
      ~edges:
        [
          (0, 1, Pattern.Bounded 2);
          (0, 2, Pattern.Bounded 3);
          (1, 3, Pattern.Bounded 1);
          (2, 3, Pattern.Bounded 1);
        ]
      ~output:0
  in
  match find_code "duplicate-node" (PA.analyze q) with
  | [ d ] ->
    Alcotest.(check bool) "merged node is SD2" true (d.PA.node = Some 2);
    Alcotest.(check string) "named message"
      "node SD2 merged into SD1 by minimisation (same spec and edges)" d.PA.message
  | _ -> Alcotest.fail "expected one duplicate-node diagnostic"

let test_clean_query_has_no_diagnostics () =
  Alcotest.(check int) "Fig. 1 query is lint-clean" 0 (List.length (PA.analyze (Collab.query ())))

(* --- containment --------------------------------------------------------- *)

let tight_query () = Collab.query ()

let loose_query () =
  (* The Fig. 1 query with every threshold dropped and bounds widened:
     a strict superset query. *)
  let q = Collab.query () in
  let nodes =
    Array.init (Pattern.size q) (fun u ->
        let s = Pattern.node_spec q u in
        { s with Pattern.pred = Predicate.always })
  in
  let edges =
    List.map
      (fun (u, v, b) ->
        ( u,
          v,
          match b with Pattern.Bounded k -> Pattern.Bounded (k + 1) | b -> b ))
      (Pattern.edges q)
  in
  Pattern.make_exn ~nodes ~edges ~output:(Pattern.output q)

let test_contains_hand_cases () =
  let tight = tight_query () and loose = loose_query () in
  Alcotest.(check bool) "tight ⊑ loose" true (PA.contains tight loose);
  Alcotest.(check bool) "loose ⋢ tight" false (PA.contains loose tight);
  Alcotest.(check bool) "reflexive" true (PA.contains tight tight);
  (* Unbounded edges only widen. *)
  let unbounded =
    let q = Collab.query () in
    Pattern.make_exn
      ~nodes:(Array.init (Pattern.size q) (Pattern.node_spec q))
      ~edges:(List.map (fun (u, v, _) -> (u, v, Pattern.Unbounded)) (Pattern.edges q))
      ~output:(Pattern.output q)
  in
  Alcotest.(check bool) "bounded ⊑ unbounded" true (PA.contains tight unbounded);
  Alcotest.(check bool) "unbounded ⋢ bounded" false (PA.contains unbounded tight)

let test_superset_map () =
  let tight = tight_query () and loose = loose_query () in
  (match PA.superset_map ~sub:tight ~sup:loose with
  | None -> Alcotest.fail "superset map expected"
  | Some map ->
    Alcotest.(check int) "covers every node" (Pattern.size tight) (Array.length map);
    Array.iter (fun u -> Alcotest.(check bool) "in range" true (u >= 0 && u < Pattern.size loose)) map);
  Alcotest.(check bool) "no map the other way" true (PA.superset_map ~sub:loose ~sup:tight = None)

let labels = Array.map Label.of_string [| "A"; "B"; "C" |]

let random_graph rng =
  let n = 5 + Prng.int rng 30 in
  let m = Prng.int rng (4 * n) in
  Generators.erdos_renyi rng ~n ~m (fun _ ->
      (Prng.choose rng labels, Attrs.of_list [ Attrs.int "exp" (Prng.int rng 6) ]))

(* Loosen [q]: drop predicates and widen bounds at random.  By
   construction [contains q loosened] must hold, and on every graph the
   loosened query's answer must cover the original's. *)
let loosen rng q =
  let nodes =
    Array.init (Pattern.size q) (fun u ->
        let s = Pattern.node_spec q u in
        let pred = if Prng.int rng 2 = 0 then Predicate.always else s.Pattern.pred in
        let label = if Prng.int rng 4 = 0 then None else s.Pattern.label in
        { s with Pattern.pred; label })
  in
  let edges =
    List.map
      (fun (u, v, b) ->
        let b =
          match b with
          | Pattern.Unbounded -> Pattern.Unbounded
          | Pattern.Bounded k ->
            if Prng.int rng 4 = 0 then Pattern.Unbounded else Pattern.Bounded (k + Prng.int rng 3)
        in
        (u, v, b))
      (Pattern.edges q)
  in
  Pattern.make_exn ~nodes ~edges ~output:(Pattern.output q)

let prop_containment_sound seed =
  let rng = Prng.create seed in
  let q1 =
    Pattern_gen.generate rng
      { Pattern_gen.default with nodes = 1 + Prng.int rng 4; extra_edges = Prng.int rng 2 }
      ~labels
  in
  let q2 = loosen rng q1 in
  (* The loosened query is provably a superset... *)
  PA.contains q1 q2
  &&
  (* ... and the answers agree with that on a random graph. *)
  let g = Snapshot.of_digraph (random_graph rng) in
  let m1 = Bounded_sim.run q1 g in
  let m2 = Bounded_sim.run q2 g in
  (not (Match_relation.is_total m1))
  || (Match_relation.is_total m2
     && List.for_all
          (fun v -> Match_relation.mem m2 (Pattern.output q2) v)
          (Match_relation.matches m1 (Pattern.output q1)))

(* Even queries Qlint rejects must round-trip containment soundly:
   a statically empty query is contained in anything that covers its
   shape, because its answer is empty everywhere. *)
let test_contains_statically_empty () =
  let bot = unsat_query () in
  let top =
    Pattern.make_exn
      ~nodes:[| spec "SA" ~label:"SA"; spec "SD" ~label:"SD" |]
      ~edges:[ (0, 1, Pattern.Bounded 2) ]
      ~output:0
  in
  Alcotest.(check bool) "empty query contained in its shape" true (PA.contains bot top)

(* --- Verify: the self-check sanitizer ------------------------------------ *)

let test_verify_accepts_kernel () =
  let g = Snapshot.of_digraph (Collab.graph ()) in
  let q = Collab.query () in
  let m = Bounded_sim.run q g in
  Alcotest.(check bool) "kernel is total" true (Match_relation.is_total m);
  let report = Verify.check q g m in
  Alcotest.(check (list string)) "no errors" [] report.Verify.errors;
  Alcotest.(check bool) "pairs were checked" true (report.Verify.checked_pairs > 0);
  Verify.check_exn q g m

let test_verify_rejects_bogus_pair () =
  let g = Snapshot.of_digraph (Collab.graph ()) in
  let q = Collab.query () in
  let m = Bounded_sim.run q g in
  (* Adding any non-matching data node to SA's row breaks validity. *)
  let v =
    let rec first v = if Match_relation.mem m 0 v then first (v + 1) else v in
    first 0
  in
  let corrupt = Match_relation.copy m in
  Match_relation.add corrupt 0 v;
  let report = Verify.check q g corrupt in
  Alcotest.(check bool) "validity violation reported" true (report.Verify.errors <> [])

let test_verify_rejects_dropped_pair () =
  let g = Snapshot.of_digraph (Collab.graph ()) in
  let q = Collab.query () in
  let m = Bounded_sim.run q g in
  (* Drop one match of a node that has several: the relation stays
     total but is no longer maximal (or loses a needed witness). *)
  let u =
    let rec scan u =
      if u >= Pattern.size q then None
      else if Match_relation.count m u >= 2 then Some u
      else scan (u + 1)
    in
    scan 0
  in
  match u with
  | None -> Alcotest.fail "fixture: expected a pattern node with >= 2 matches"
  | Some u ->
    let corrupt = Match_relation.copy m in
    Match_relation.remove corrupt u (List.hd (Match_relation.matches m u));
    Alcotest.(check bool) "still total" true (Match_relation.is_total corrupt);
    let report = Verify.check q g corrupt in
    Alcotest.(check bool) "non-maximality reported" true (report.Verify.errors <> [])

let test_semantic_equality () =
  let mk pairs = Match_relation.of_pairs ~pattern_size:2 ~graph_size:3 pairs in
  let nt1 = mk [ (0, 1) ] and nt2 = mk [ (0, 2) ] in
  Alcotest.(check bool) "two non-total kernels are the same answer" true
    (Verify.semantically_equal nt1 nt2);
  let t1 = mk [ (0, 1); (1, 2) ] and t2 = mk [ (0, 1); (1, 1) ] in
  Alcotest.(check bool) "different total kernels differ" false (Verify.semantically_equal t1 t2);
  Alcotest.(check bool) "equal total kernels agree" true
    (Verify.semantically_equal t1 (Match_relation.copy t1));
  Alcotest.(check bool) "total vs non-total differ" false (Verify.semantically_equal t1 nt1)

(* --- the planner's static-empty fast path -------------------------------- *)

let test_static_empty_fast_path () =
  with_telemetry true (fun () ->
      let engine = Engine.create (Collab.graph ()) in
      let c = Metrics.counter "planner.static_empty" in
      let before = Counter.value c in
      let answer = Engine.evaluate engine (unsat_query ()) in
      Alcotest.(check bool) "answer is empty" false answer.Engine.total;
      Alcotest.(check int) "static_empty counted once" (before + 1) (Counter.value c);
      match Engine.last_profile engine with
      | None -> Alcotest.fail "telemetry is on: a profile is expected"
      | Some p ->
        let names = Span.preorder_names p.Engine.span in
        Alcotest.(check bool) "plan span present" true (List.mem "plan" names);
        Alcotest.(check bool) "no candidates stage" false (List.mem "candidates" names);
        Alcotest.(check bool) "no refine stage" false (List.mem "refine" names))

(* --- every shipped example query is lint-clean --------------------------- *)

let example_queries () =
  let mk name nodes edges = (name, Pattern.make_exn ~nodes ~edges ~output:0) in
  [
    ("fig1 (collab)", Collab.query ());
    mk "quickstart"
      [|
        spec "SA" ~label:"SA" ~pred:(Predicate.ge_int "exp" 5);
        spec "SD" ~label:"SD" ~pred:(Predicate.ge_int "exp" 2);
        spec "BA" ~label:"BA" ~pred:(Predicate.ge_int "exp" 3);
        spec "ST" ~label:"ST" ~pred:(Predicate.ge_int "exp" 2);
      |]
      [
        (0, 1, Pattern.Bounded 2);
        (1, 0, Pattern.Bounded 2);
        (0, 2, Pattern.Bounded 3);
        (3, 2, Pattern.Bounded 1);
      ];
    mk "team_formation"
      [|
        spec "lead" ~label:"PM" ~pred:(Predicate.ge_int "exp" 5);
        spec "dba" ~label:"DBA" ~pred:(Predicate.ge_int "exp" 5);
        spec "qa" ~label:"QA" ~pred:(Predicate.ge_int "exp" 2);
        spec "architect" ~label:"SA" ~pred:(Predicate.ge_int "exp" 5);
      |]
      [
        (0, 3, Pattern.Bounded 1);
        (3, 0, Pattern.Bounded 1);
        (1, 0, Pattern.Bounded 2);
        (2, 0, Pattern.Bounded 2);
      ];
    mk "twitter_influencers"
      [|
        spec "db_expert" ~label:"DB" ~pred:(Predicate.ge_int "exp" 6);
        spec "ml_fan" ~label:"ML";
        spec "sys_fan" ~label:"Sys";
        spec "sec_source" ~label:"Sec" ~pred:(Predicate.ge_int "exp" 4);
      |]
      [ (1, 0, Pattern.Bounded 2); (2, 0, Pattern.Bounded 2); (0, 3, Pattern.Bounded 3) ];
    mk "dynamic_collaboration"
      [|
        spec "SA" ~label:"SA" ~pred:(Predicate.ge_int "exp" 5);
        spec "SD" ~label:"SD" ~pred:(Predicate.ge_int "exp" 2);
        spec "QA" ~label:"QA";
      |]
      [ (0, 1, Pattern.Bounded 2); (0, 2, Pattern.Bounded 2); (1, 2, Pattern.Bounded 2) ];
    mk "movie_recommendation"
      [|
        spec "rec" ~label:"Movie"
          ~pred:(Predicate.conj (Predicate.eq_str "genre" "scifi") (Predicate.ge_int "rating" 7));
        spec "fan" ~label:"User";
        spec "seed" ~label:"Movie" ~pred:(Predicate.eq_str "name" "The Seed Film");
      |]
      [ (0, 1, Pattern.Bounded 1); (1, 2, Pattern.Bounded 1) ];
  ]

let test_examples_lint_clean () =
  List.iter
    (fun (name, q) ->
      match PA.analyze q with
      | [] -> ()
      | diags ->
        Alcotest.failf "%s: unexpected diagnostics:@ %a" name
          (Format.pp_print_list (PA.pp_diagnostic q))
          diags)
    (example_queries ())

(* --- properties ----------------------------------------------------------- *)

let qcheck_cases =
  [
    QCheck.Test.make ~count:120 ~name:"containment is sound" QCheck.small_int (fun s ->
        prop_containment_sound (s + 1));
    QCheck.Test.make ~count:120 ~name:"simplify preserves semantics" QCheck.small_int (fun s ->
        let rng = Prng.create (s + 1) in
        let q =
          Pattern_gen.generate rng
            { Pattern_gen.default with nodes = 1 + Prng.int rng 3; condition_prob = 1.0 }
            ~labels
        in
        let g = Snapshot.of_digraph (random_graph rng) in
        let simplified =
          Pattern.make_exn
            ~nodes:
              (Array.init (Pattern.size q) (fun u ->
                   let s = Pattern.node_spec q u in
                   { s with Pattern.pred = PA.simplify s.Pattern.pred }))
            ~edges:(Pattern.edges q) ~output:(Pattern.output q)
        in
        Match_relation.equal (Bounded_sim.run q g) (Bounded_sim.run simplified g));
  ]

let () =
  Alcotest.run "analysis"
    [
      ( "satisfiability",
        [
          Alcotest.test_case "integer intervals" `Quick test_unsat_interval;
          Alcotest.test_case "string conflicts" `Quick test_unsat_string_conflict;
          Alcotest.test_case "Ne exhaustion" `Quick test_unsat_ne_exhaustion;
          Alcotest.test_case "mixed types" `Quick test_unsat_mixed_types;
        ] );
      ( "implication",
        [
          Alcotest.test_case "implies" `Quick test_implies;
          Alcotest.test_case "simplify" `Quick test_simplify;
          Alcotest.test_case "subsumes" `Quick test_subsumes;
        ] );
      ( "lints",
        [
          Alcotest.test_case "unsat node" `Quick test_analyze_unsat;
          Alcotest.test_case "structural" `Quick test_analyze_structure;
          Alcotest.test_case "duplicates named" `Quick test_analyze_duplicates;
          Alcotest.test_case "clean query" `Quick test_clean_query_has_no_diagnostics;
        ] );
      ( "containment",
        [
          Alcotest.test_case "hand cases" `Quick test_contains_hand_cases;
          Alcotest.test_case "superset map" `Quick test_superset_map;
          Alcotest.test_case "statically empty" `Quick test_contains_statically_empty;
        ] );
      ( "verify",
        [
          Alcotest.test_case "accepts the kernel" `Quick test_verify_accepts_kernel;
          Alcotest.test_case "rejects a bogus pair" `Quick test_verify_rejects_bogus_pair;
          Alcotest.test_case "rejects a dropped pair" `Quick test_verify_rejects_dropped_pair;
          Alcotest.test_case "semantic equality" `Quick test_semantic_equality;
        ] );
      ( "planner",
        [ Alcotest.test_case "static-empty fast path" `Quick test_static_empty_fast_path ] );
      ("examples", [ Alcotest.test_case "lint-clean" `Quick test_examples_lint_clean ]);
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_cases);
    ]
